package qof

// Resilient execution: context-aware variants of the facade's indexing and
// query entry points, per-query resource budgets, and panic isolation.
//
// Every operation here is cooperative — cancellation and deadlines are
// polled inside the region kernels and per parsed candidate, so they take
// effect mid-evaluation, not just between queries — and fail-safe: a failed
// or abandoned execution never publishes cache entries and always leaves
// the File or Corpus fully usable. See docs/ROBUSTNESS.md for the contract.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"qof/internal/algebra"
	"qof/internal/engine"
	"qof/internal/qerr"
	"qof/internal/text"
	"qof/internal/xsql"
)

// ErrBudgetExceeded is returned (wrapped) when a query exceeds a resource
// budget set with WithMaxRegions or WithMaxEvalBytes. Cancellation and
// deadlines surface as context.Canceled and context.DeadlineExceeded.
var ErrBudgetExceeded = qerr.ErrBudgetExceeded

// ErrInternal is returned (wrapped) when a panic was recovered at an API
// boundary. The engine remains usable; the error carries the panic value
// and, for queries, the expression being evaluated.
var ErrInternal = qerr.ErrInternal

// queryConfig collects the effects of QueryOptions.
type queryConfig struct {
	lim         engine.Limits
	fileTimeout time.Duration
	partial     bool
	files       []string
}

// QueryOption configures a single query execution (QueryContext,
// ExecuteContext).
type QueryOption func(*queryConfig)

func applyQueryOptions(opts []QueryOption) queryConfig {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithMaxRegions caps the cumulative number of regions the index evaluation
// (phase 1) may produce for this query; exceeding it fails the query with
// an error wrapping ErrBudgetExceeded. n < 1 means unlimited.
func WithMaxRegions(n int) QueryOption {
	return func(c *queryConfig) { c.lim.MaxRegions = n }
}

// WithMaxEvalBytes caps the document bytes parsed in phase 2 (full scans
// included) for this query; exceeding it fails the query with an error
// wrapping ErrBudgetExceeded. n < 1 means unlimited.
func WithMaxEvalBytes(n int) QueryOption {
	return func(c *queryConfig) { c.lim.MaxEvalBytes = n }
}

// WithFileTimeout bounds each file's evaluation separately in a corpus
// query: a file exceeding it fails with context.DeadlineExceeded while the
// other files run to completion. It has no effect on single-file queries
// (use a context deadline there).
func WithFileTimeout(d time.Duration) QueryOption {
	return func(c *queryConfig) { c.fileTimeout = d }
}

// WithPartialResults makes a corpus query degrade instead of failing:
// files whose evaluation errors are reported in CorpusResults.Degraded
// with attribution, and the remaining files' results are returned.
func WithPartialResults() QueryOption {
	return func(c *queryConfig) { c.partial = true }
}

// WithFiles restricts a corpus query to the named files, preserving corpus
// order; names not in the corpus are ignored. It has no effect on
// single-file queries. The serving layer uses it to evaluate one replica
// group's files on a shard that also carries copies of other files.
func WithFiles(names ...string) QueryOption {
	return func(c *queryConfig) { c.files = append([]string(nil), names...) }
}

// catchPanic converts a panic crossing an API boundary into an error
// wrapping ErrInternal, annotated with what was being evaluated. Use as
// `defer catchPanic(&err, "querying %q", src)`.
func catchPanic(err *error, format string, args ...any) {
	if p := recover(); p != nil {
		*err = fmt.Errorf("qof: %s: panic: %v: %w", fmt.Sprintf(format, args...), p, qerr.ErrInternal)
	}
}

// IndexContext is Index under a context: the parse and index build check
// cancellation at stage boundaries, so an abandoned build stops promptly.
func (s *Schema) IndexContext(ctx context.Context, name, content string, opts ...IndexOption) (f *File, err error) {
	defer catchPanic(&err, "indexing %s", name)
	cfg := applyOptions(opts)
	doc := text.NewDocument(name, content)
	in, _, err := s.cat.Grammar.BuildInstanceContext(ctx, doc, cfg.spec)
	if err != nil {
		return nil, err
	}
	return &File{schema: s, eng: newEngine(s.cat, in, cfg)}, nil
}

// QueryContext is Query under a context and per-query resource budgets.
// Cancellation and deadlines take effect mid-evaluation (the engine polls
// inside its kernels and per parsed candidate); budget violations wrap
// ErrBudgetExceeded. A failed query is never cached and leaves the File
// fully usable.
func (f *File) QueryContext(ctx context.Context, src string, opts ...QueryOption) (res *Results, err error) {
	defer catchPanic(&err, "querying %q", src)
	cfg := applyQueryOptions(opts)
	q, err := xsql.Parse(src)
	if err != nil {
		return nil, err
	}
	r, err := f.eng.ExecuteContext(ctx, q, cfg.lim)
	if err != nil {
		return nil, err
	}
	return convertResults(f.eng.Instance().Document(), r), nil
}

// EvalContext is Eval under a context: the region-algebra evaluation polls
// cancellation inside its kernels.
func (f *File) EvalContext(ctx context.Context, src string) (spans []Span, err error) {
	defer catchPanic(&err, "evaluating %q", src)
	e, err := algebra.Parse(src)
	if err != nil {
		return nil, err
	}
	var st algebra.Stats
	set, err := algebra.NewEvaluator(f.eng.Instance()).EvalContext(ctx, e, &st, nil)
	if err != nil {
		return nil, err
	}
	doc := f.eng.Instance().Document()
	spans = make([]Span, 0, set.Len())
	for _, r := range set.Regions() {
		spans = append(spans, Span{Start: r.Start, End: r.End, Text: doc.Slice(r.Start, r.End)})
	}
	return spans, nil
}

// AddAllContext is Corpus.AddAll under a context: cancellation is checked
// before and inside every document build. Every failing document is
// reported in the joined error with attribution; on any failure nothing is
// added.
func (c *Corpus) AddAllContext(ctx context.Context, files map[string]string, opts ...IndexOption) (err error) {
	defer catchPanic(&err, "adding %d files", len(files))
	cfg := applyOptions(opts)
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	docs := make([]*text.Document, len(names))
	for i, name := range names {
		docs[i] = text.NewDocument(name, files[name])
	}
	return c.c.AddAllContext(ctx, docs, cfg.spec)
}

// FileError attributes a failure to one corpus file.
type FileError struct {
	File string
	Err  error
}

// CorpusStats aggregates execution statistics over the files of a corpus
// query. The result-facing fields (Results through FullScan) are
// partition-invariant: splitting the same files across several corpora (as
// the qofd shards do) and summing per-corpus stats yields the same totals as
// one corpus holding them all. The shared-execution counters (SharedScans,
// CSEHits, ParseDedups) are observational — they describe how much work this
// execution shared with concurrent queries, which depends on scheduling.
type CorpusStats struct {
	// Results is the total number of result rows across files.
	Results int
	// Candidates is the total number of candidate regions phase 1 produced.
	Candidates int
	// Parsed is the total number of regions parsed in phase 2.
	Parsed int
	// ParsedBytes is the total number of document bytes parsed.
	ParsedBytes int
	// Exact reports that at least one file's answer needed no filtering.
	Exact bool
	// FullScan reports that the index offered no narrowing on some file.
	FullScan bool
	// SharedScans is the number of word-leaf lookups answered by a batched
	// multi-pattern scan (shared execution; always 0 otherwise).
	SharedScans int
	// CSEHits is the number of subexpression or candidate-set evaluations
	// this query received from a concurrent query via cross-query CSE.
	CSEHits int
	// ParseDedups is the number of phase-2 parses this query shared instead
	// of performing itself.
	ParseDedups int
}

// CorpusResults is the outcome of a corpus query run with ExecuteContext.
type CorpusResults struct {
	// Hits lists the files with at least one result, in corpus order.
	Hits []CorpusHit
	// Degraded lists files whose evaluation failed, when the query ran
	// with WithPartialResults; Hits then covers only the files that
	// succeeded. Empty means the result is complete.
	Degraded []FileError
	// Stats aggregates execution statistics over the files that succeeded.
	Stats CorpusStats
}

// DegradedError joins the per-file failures into one attributed error, or
// nil when the result is complete. errors.Is matches each underlying cause
// (context.DeadlineExceeded, ErrBudgetExceeded, ...).
func (r *CorpusResults) DegradedError() error {
	if len(r.Degraded) == 0 {
		return nil
	}
	er := &engine.CorpusResult{}
	for _, f := range r.Degraded {
		er.Degraded = append(er.Degraded, engine.FileFailure{File: f.File, Err: f.Err})
	}
	return er.DegradedError()
}

// ExecuteContext is Corpus.Query under a context and per-query options.
// Canceling ctx stops every file's evaluation at its next poll point;
// WithFileTimeout bounds each file separately; WithPartialResults degrades
// to attributed partial results instead of failing. Without partial mode, a
// failure in any file fails the call with one joined error naming every
// failed file.
func (c *Corpus) ExecuteContext(ctx context.Context, src string, opts ...QueryOption) (out *CorpusResults, err error) {
	defer catchPanic(&err, "querying %q", src)
	cfg := applyQueryOptions(opts)
	q, err := xsql.Parse(src)
	if err != nil {
		return nil, err
	}
	res, err := c.c.ExecuteContext(ctx, q, engine.ExecOptions{
		Limits:      cfg.lim,
		FileTimeout: cfg.fileTimeout,
		Partial:     cfg.partial,
		Files:       cfg.files,
	})
	if res == nil {
		return nil, err
	}
	out = &CorpusResults{Stats: CorpusStats{
		Results:     res.Stats.Results,
		Candidates:  res.Stats.Candidates,
		Parsed:      res.Stats.Parsed,
		ParsedBytes: res.Stats.ParsedBytes,
		Exact:       res.Stats.Exact,
		FullScan:    res.Stats.FullScan,
		SharedScans: res.Stats.SharedScans,
		CSEHits:     res.Stats.CSEHits,
		ParseDedups: res.Stats.ParseDedups,
	}}
	for _, h := range res.Hits {
		hit := CorpusHit{File: h.File, Values: append([]string(nil), h.Strings...)}
		for _, r := range h.Regions.Regions() {
			hit.Spans = append(hit.Spans, Span{Start: r.Start, End: r.End})
		}
		out.Hits = append(out.Hits, hit)
	}
	for _, f := range res.Degraded {
		out.Degraded = append(out.Degraded, FileError{File: f.File, Err: f.Err})
	}
	return out, err
}
