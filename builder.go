package qof

// SchemaBuilder constructs custom structuring schemas through the public
// API, mirroring the paper's Section 4 schema definitions: terminal
// classes, productions (with literals, terminals, non-terminals and
// separated repetitions) and class bindings.
//
//	b := qof.NewSchemaBuilder("Log")
//	b.Terminal("Word", `[a-z]+`)
//	b.Rule("Log", qof.Rep("Line", ""))
//	b.Rule("Line", qof.Lit("> "), qof.NT("Msg"))
//	b.Rule("Msg", qof.Term("Word"))
//	b.BindClass("Lines", "Line")
//	schema, err := b.Build()

import (
	"qof/internal/compile"
	"qof/internal/grammar"
)

// Elem is one element of a production's right-hand side; build with Lit,
// Term, NT and Rep.
type Elem = grammar.Elem

// Lit is a literal text element.
func Lit(text string) Elem { return grammar.Lit(text) }

// Term references a terminal class declared with Terminal.
func Term(name string) Elem { return grammar.Term(name) }

// NT references a non-terminal.
func NT(name string) Elem { return grammar.NT(name) }

// Rep is zero or more name occurrences separated by sep (may be empty).
// With whitespace skipping on (the default), write separators without
// surrounding spaces.
func Rep(name, sep string) Elem { return grammar.Rep(name, sep) }

// SchemaBuilder accumulates a schema definition; errors surface at Build.
type SchemaBuilder struct {
	g       *grammar.Grammar
	classes map[string]string
	err     error
}

// NewSchemaBuilder starts a schema with the given root non-terminal.
func NewSchemaBuilder(root string) *SchemaBuilder {
	return &SchemaBuilder{g: grammar.NewGrammar(root), classes: make(map[string]string)}
}

// Terminal declares a terminal class matched by an RE2 pattern.
func (b *SchemaBuilder) Terminal(name, pattern string) *SchemaBuilder {
	if b.err == nil {
		b.err = b.g.AddTerminal(name, pattern)
	}
	return b
}

// Rule appends a production alternative for lhs. Alternatives are tried in
// order (PEG semantics).
func (b *SchemaBuilder) Rule(lhs string, rhs ...Elem) *SchemaBuilder {
	b.g.AddProduction(lhs, rhs...)
	return b
}

// SkipWhitespace controls whether the parser skips ASCII whitespace before
// every element (default true).
func (b *SchemaBuilder) SkipWhitespace(on bool) *SchemaBuilder {
	b.g.SkipSpace = on
	return b
}

// BindClass maps an XSQL class name to the non-terminal whose regions form
// its extent.
func (b *SchemaBuilder) BindClass(class, nonTerminal string) *SchemaBuilder {
	b.classes[class] = nonTerminal
	return b
}

// Build validates the grammar and returns the schema.
func (b *SchemaBuilder) Build() (*Schema, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	cat := compile.NewCatalog(b.g)
	for class, nt := range b.classes {
		cat.Bind(class, nt)
	}
	return &Schema{cat: cat}, nil
}
