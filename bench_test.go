package qof_test

// Repository-level benchmarks: one per experiment of EXPERIMENTS.md (E1–E10)
// plus micro-benchmarks of the core substrate operations. They reuse the
// experiment setups so a `go test -bench=.` run exercises exactly the
// workloads the qofbench tables report.

import (
	"fmt"
	"testing"

	"qof/internal/algebra"
	"qof/internal/bibtex"
	"qof/internal/engine"
	"qof/internal/experiments"
	"qof/internal/grammar"
	"qof/internal/scan"
	"qof/internal/text"
	"qof/internal/xsql"
)

const benchRefs = 1000

const changQuery = `SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`

func bibtexSetup(b *testing.B, spec grammar.IndexSpec) *experiments.BibtexSetup {
	b.Helper()
	s, err := experiments.NewBibtexSetup(benchRefs, spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// --- E1: index evaluation vs full scan vs grep ---

func BenchmarkE1IndexQuery(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	q := xsql.MustParse(changQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Engine.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1FullScan(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	q := xsql.MustParse(changQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scan.FullScan(s.Cat, s.Doc, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Grep(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan.Grep(s.Doc, "Chang")
	}
}

// --- E2: unoptimized vs optimized inclusion expressions ---

func benchExpr(b *testing.B, src string, layered bool) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	ev := algebra.NewEvaluator(s.Instance)
	ev.UseLayeredDirect = layered
	e := algebra.MustParse(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2Original(b *testing.B) {
	benchExpr(b, `Reference >d Authors >d Name >d contains(Last_Name, "Chang")`, false)
}

func BenchmarkE2OriginalLayered(b *testing.B) {
	benchExpr(b, `Reference >d Authors >d Name >d contains(Last_Name, "Chang")`, true)
}

func BenchmarkE2Optimized(b *testing.B) {
	benchExpr(b, `Reference > Authors > contains(Last_Name, "Chang")`, false)
}

// --- E3: ⊃ vs ⊃d vs layered ⊃d over nesting depth ---

func benchSgmlExpr(b *testing.B, depth int, src string, layered bool) {
	s, err := experiments.NewSgmlSetup(depth, 2)
	if err != nil {
		b.Fatal(err)
	}
	ev := algebra.NewEvaluator(s.Instance)
	ev.UseLayeredDirect = layered
	e := algebra.MustParse(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3PlainInclusion(b *testing.B) {
	for _, depth := range []int{5, 7, 9} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			benchSgmlExpr(b, depth, `Section > Section`, false)
		})
	}
}

func BenchmarkE3DirectInclusion(b *testing.B) {
	for _, depth := range []int{5, 7, 9} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			benchSgmlExpr(b, depth, `Section >d Section`, false)
		})
	}
}

func BenchmarkE3LayeredDirect(b *testing.B) {
	for _, depth := range []int{5, 7, 9} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			benchSgmlExpr(b, depth, `Section >d Section`, true)
		})
	}
}

// --- E4/E5: indexing choices ---

func benchQueryUnderSpec(b *testing.B, spec grammar.IndexSpec) {
	s := bibtexSetup(b, spec)
	q := xsql.MustParse(changQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Engine.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4FullIndex(b *testing.B) { benchQueryUnderSpec(b, grammar.IndexSpec{}) }

func BenchmarkE4PartialIndex(b *testing.B) {
	benchQueryUnderSpec(b, grammar.IndexSpec{
		Names: []string{bibtex.NTReference, bibtex.NTKey, bibtex.NTLastName},
	})
}

func BenchmarkE5Exact63(b *testing.B) {
	benchQueryUnderSpec(b, grammar.IndexSpec{
		Names: []string{bibtex.NTReference, bibtex.NTAuthors, bibtex.NTEditors, bibtex.NTLastName},
	})
}

// --- E6: path variables ---

func BenchmarkE6StarVariable(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	q := xsql.MustParse(`SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Engine.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6Enumerated(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	q := xsql.MustParse(`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang" OR r.Editors.Name.Last_Name = "Chang"`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Engine.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: value joins ---

func BenchmarkE7JoinIndexAssisted(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	q := xsql.MustParse(`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Engine.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7JoinFullLoad(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	q := xsql.MustParse(`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scan.FullScan(s.Cat, s.Doc, q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: index build cost along the indexing ladder ---

func BenchmarkE8IndexBuild(b *testing.B) {
	cfg := bibtex.DefaultConfig(benchRefs)
	content, _ := bibtex.Generate(cfg)
	doc := text.NewDocument("bench.bib", content)
	specs := map[string]grammar.IndexSpec{
		"root-only": {Names: []string{bibtex.NTReference}},
		"advisor":   {Names: []string{bibtex.NTReference, bibtex.NTAuthors, bibtex.NTLastName}},
		"full":      {},
	}
	for name, spec := range specs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.NewBibtexSetupFromDoc(doc, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E9: selective indexing ---

func BenchmarkE9GlobalLastName(b *testing.B) {
	benchQueryUnderSpec(b, grammar.IndexSpec{
		Names: []string{bibtex.NTReference, bibtex.NTLastName},
	})
}

func BenchmarkE9ScopedLastName(b *testing.B) {
	benchQueryUnderSpec(b, grammar.IndexSpec{
		Names:  []string{bibtex.NTReference},
		Scoped: []grammar.ScopedName{{Name: bibtex.NTLastName, Within: bibtex.NTAuthors}},
	})
}

// --- E10: transitive closure ---

func BenchmarkE10ClosureLocate(b *testing.B) {
	s, err := experiments.NewSgmlSetup(7, 2)
	if err != nil {
		b.Fatal(err)
	}
	ev := algebra.NewEvaluator(s.Instance)
	e := algebra.MustParse(`Section > contains(Para, "needle")`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10ClosureTraverse(b *testing.B) {
	s, err := experiments.NewSgmlSetup(7, 2)
	if err != nil {
		b.Fatal(err)
	}
	q := xsql.MustParse(`SELECT s FROM Sections s WHERE s.*X.Para CONTAINS "needle"`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scan.FullScan(s.Cat, s.Doc, q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- X1: incremental index maintenance ---

const benchEditedReference = `@INCOLLECTION{Edited01,
AUTHOR = "Y. F. Chang",
TITLE = "A Revised Entry",
BOOKTITLE = "Updates on Files",
YEAR = "1994",
EDITOR = "T. Milo",
PUBLISHER = "ACM Press",
PAGES = "1--12",
REFERRED = "",
KEYWORDS = "updates",
ABSTRACT = "an edited reference",
}`

func BenchmarkX1IncrementalUpdate(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	target := s.Instance.MustRegion(bibtex.NTReference).At(benchRefs / 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := engine.ReplaceRegion(s.Cat, s.Instance, bibtex.NTReference, target, benchEditedReference); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX1FullRebuild(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Cat.Grammar.BuildInstance(s.Doc, grammar.IndexSpec{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- X2: concurrent query serving ---

// BenchmarkConcurrentExecute drives N client goroutines of mixed queries
// against one shared engine and reports queries/sec; the sweep over worker
// counts shows throughput scaling (compare the queries/s metric of
// workers1 vs workers4 — scaling requires GOMAXPROCS > 1).
func BenchmarkConcurrentExecute(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	queries := make([]*xsql.Query, len(experiments.ConcurrencyQueries))
	for i, src := range experiments.ConcurrencyQueries {
		queries[i] = xsql.MustParse(src)
	}
	for _, workers := range experiments.ConcurrencyWorkers {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ResetTimer()
			elapsed, err := experiments.ServeConcurrent(s.Engine, queries, workers, b.N)
			if err != nil {
				b.Fatal(err)
			}
			if sec := elapsed.Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "queries/s")
			}
		})
	}
}

// BenchmarkRepeatedQueryCache isolates the cross-query result cache: the
// same mixed workload against one engine with the cache disabled and one
// with it on. Both variants share the warm plan cache and parse identical
// candidates; the delta is phase-1 index evaluation served from cache.
func BenchmarkRepeatedQueryCache(b *testing.B) {
	queries := make([]*xsql.Query, len(experiments.ConcurrencyQueries))
	for i, src := range experiments.ConcurrencyQueries {
		queries[i] = xsql.MustParse(src)
	}
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			s := bibtexSetup(b, grammar.IndexSpec{})
			if !cached {
				s.Engine.DisableResultCache()
			}
			for _, q := range queries { // warm plan (and result) caches
				if _, err := s.Engine.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Engine.Execute(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkMicroIndexBuildFull(b *testing.B) {
	content, _ := bibtex.Generate(bibtex.DefaultConfig(benchRefs))
	doc := text.NewDocument("bench.bib", content)
	g := bibtex.Grammar()
	b.SetBytes(int64(doc.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.BuildInstance(doc, grammar.IndexSpec{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroWordLookup(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	words := s.Instance.Words()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		words.MatchPoints("Chang")
	}
}

func BenchmarkMicroPrefixLookup(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	words := s.Instance.Words()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		words.PrefixMatchPoints("Cha")
	}
}

func BenchmarkMicroIncluding(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	refs := s.Instance.MustRegion(bibtex.NTReference)
	lasts := s.Instance.MustRegion(bibtex.NTLastName)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refs.Including(lasts)
	}
}

func BenchmarkMicroDirectIncluding(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	refs := s.Instance.MustRegion(bibtex.NTReference)
	authors := s.Instance.MustRegion(bibtex.NTAuthors)
	u := s.Instance.Universe()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.DirectlyIncluding(refs, authors)
	}
}

func BenchmarkMicroOptimize(b *testing.B) {
	cat := bibtex.Catalog()
	in := bibtexSetup(b, grammar.IndexSpec{}).Instance
	q := xsql.MustParse(changQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.Compile(q, in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroParseCandidate(b *testing.B) {
	s := bibtexSetup(b, grammar.IndexSpec{})
	ref := s.Instance.MustRegion(bibtex.NTReference).At(0)
	g := s.Cat.Grammar
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ParseAs(s.Doc, bibtex.NTReference, ref.Start, ref.End); err != nil {
			b.Fatal(err)
		}
	}
}
