package qof_test

// The fault matrix drives every registered failpoint, under every injection
// kind, through the public facade, and asserts the robustness contract: an
// injected failure surfaces as a typed error (ErrInjected for injected
// errors, ErrInternal for recovered panics) or degrades cleanly (cache
// faults never fail a query), never hangs, and always leaves the engine
// fully usable — proven by re-running a known query after every single case
// and, in TestFaultMatrixPostFaultOracle, by differential testing a
// post-fault engine against the reference evaluator.
//
// Set QOF_FAULT_MATRIX=full to extend the matrix with the delay kind.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"qof"
	"qof/internal/bibtex"
	"qof/internal/faultinject"
	"qof/internal/index"
	"qof/internal/qgen"
	"qof/internal/refeval/diff"
	"qof/internal/serve"
	"qof/internal/xsql"
)

const matrixQuery = `SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`

// queryOnce runs matrixQuery on f and verifies the known answer; it is both
// the faulted operation for the query-path failpoints and the post-fault
// health check.
func queryOnce(f *qof.File) error {
	res, err := f.Query(matrixQuery)
	if err != nil {
		return err
	}
	if res.Len() != 1 {
		return fmt.Errorf("got %d results, want 1", res.Len())
	}
	return nil
}

// containsOnce runs a σ_contains query — the shape whose word atom the
// batched multi-pattern scan answers — and verifies the known answer.
func containsOnce(f *qof.File) error {
	res, err := f.Query(`SELECT r FROM References r WHERE r.Title CONTAINS "Taylor"`)
	if err != nil {
		return err
	}
	if res.Len() != 1 {
		return fmt.Errorf("got %d results, want 1", res.Len())
	}
	return nil
}

// matrixCase wires one failpoint to the facade operation that crosses it.
// setup builds all fixtures BEFORE injection is configured (so fixture
// construction never trips the failpoint itself) and returns the operation
// to run under injection plus a health check to run after Reset.
type matrixCase struct {
	point string
	// degrades marks failpoints whose error kind must NOT fail the
	// operation: cache faults turn into a forced miss or a dropped entry.
	degrades bool
	// panicDegrades marks failpoints whose panic kind must not fail the
	// operation either: a panicking hedged attempt loses the race while
	// the primary still answers completely.
	panicDegrades bool
	setup         func(t *testing.T) (op, check func() error)
}

func fileFixture(t *testing.T) *qof.File {
	t.Helper()
	f, err := qof.BibTeX().Index("matrix.bib", bibtex.SampleEntry)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func matrixCases() []matrixCase {
	queryCase := func(point string, degrades bool) matrixCase {
		return matrixCase{point: point, degrades: degrades,
			setup: func(t *testing.T) (func() error, func() error) {
				f := fileFixture(t)
				return func() error { return queryOnce(f) }, func() error { return queryOnce(f) }
			}}
	}
	return []matrixCase{
		{point: faultinject.IndexBuild,
			setup: func(t *testing.T) (func() error, func() error) {
				op := func() error {
					_, err := qof.BibTeX().Index("matrix.bib", bibtex.SampleEntry)
					return err
				}
				return op, func() error { return queryOnce(fileFixture(t)) }
			}},
		{point: faultinject.PersistSave,
			setup: func(t *testing.T) (func() error, func() error) {
				f := fileFixture(t)
				op := func() error { return f.Save(io.Discard) }
				check := func() error {
					if err := f.Save(io.Discard); err != nil {
						return err
					}
					return queryOnce(f)
				}
				return op, check
			}},
		{point: faultinject.PersistLoad,
			setup: func(t *testing.T) (func() error, func() error) {
				var buf bytes.Buffer
				if err := fileFixture(t).Save(&buf); err != nil {
					t.Fatal(err)
				}
				load := func() error {
					f, err := qof.BibTeX().Load(bytes.NewReader(buf.Bytes()), "matrix.bib", bibtex.SampleEntry)
					if err != nil {
						return err
					}
					return queryOnce(f)
				}
				return load, load
			}},
		queryCase(faultinject.PlanCacheGet, true),
		queryCase(faultinject.PlanCachePut, true),
		queryCase(faultinject.ResultCacheGet, true),
		queryCase(faultinject.ResultCachePut, true),
		queryCase(faultinject.Phase2, false),
		{point: faultinject.EngineCSE, degrades: true,
			// A faulted CSE join makes the query bypass sharing and evaluate
			// solo — the answer is unchanged. A lone query on a shared file
			// crosses the gate deterministically.
			setup: func(t *testing.T) (func() error, func() error) {
				f, err := qof.BibTeX().Index("matrix.bib", bibtex.SampleEntry, qof.WithSharedExecution())
				if err != nil {
					t.Fatal(err)
				}
				return func() error { return queryOnce(f) }, func() error { return queryOnce(f) }
			}},
		{point: faultinject.ScanMPM, degrades: true,
			// The batch scan only runs when >= 2 queries with scannable
			// word atoms overlap, so the operation stampedes the shared
			// file with a σ_contains query until a batch forms and crosses
			// the failpoint; phase-2 parallelism gives each query a yield
			// point so the stampede overlaps even on one CPU. A faulted
			// scan degrades the whole batch to per-query index probes; a
			// panicking one surfaces as the leader's ErrInternal while the
			// other members still answer.
			setup: func(t *testing.T) (func() error, func() error) {
				f, err := qof.BibTeX().Index("matrix.bib", bibtex.SampleEntry,
					qof.WithSharedExecution(), qof.WithParallelism(4))
				if err != nil {
					t.Fatal(err)
				}
				op := func() error {
					var firstErr error
					for round := 0; round < 500 && faultinject.Hits(faultinject.ScanMPM) == 0; round++ {
						var wg sync.WaitGroup
						errs := make([]error, 8)
						for i := range errs {
							wg.Add(1)
							go func(i int) {
								defer wg.Done()
								errs[i] = containsOnce(f)
							}(i)
						}
						wg.Wait()
						for _, err := range errs {
							if err != nil && firstErr == nil {
								firstErr = err
							}
						}
					}
					return firstErr
				}
				return op, func() error { return containsOnce(f) }
			}},
		{point: faultinject.CorpusFile,
			setup: func(t *testing.T) (func() error, func() error) {
				c := qof.BibTeX().NewCorpus()
				files := map[string]string{
					"a.bib": bibtex.SampleEntry, "b.bib": bibtex.SampleEntry, "c.bib": bibtex.SampleEntry,
				}
				if err := c.AddAll(files); err != nil {
					t.Fatal(err)
				}
				op := func() error {
					_, err := c.Query(matrixQuery)
					return err
				}
				check := func() error {
					hits, err := c.Query(matrixQuery)
					if err != nil {
						return err
					}
					if len(hits) != 3 {
						return fmt.Errorf("got %d corpus hits, want 3", len(hits))
					}
					return nil
				}
				return op, check
			}},
		{point: faultinject.ServeShard,
			setup: func(t *testing.T) (func() error, func() error) {
				// One replica per file: with no copy to fail over to, a
				// faulted scatter leg degrades rather than fails, and the
				// typed cause must survive through DegradedError.
				srv := serveFixture(t, 1)
				op := func() error {
					resp, err := srv.Execute(t.Context(), serve.Request{Query: matrixQuery})
					if err != nil {
						return err
					}
					return resp.DegradedError()
				}
				return op, func() error { return serveHealthy(t, srv) }
			}},
		{point: faultinject.ServeReplica,
			setup: func(t *testing.T) (func() error, func() error) {
				// Two replicas, with the primary of a.bib pinned open so its
				// group deterministically routes to the secondary — whose
				// failover attempt then faults. With both replicas down the
				// group degrades with the typed cause; after Reset the
				// secondary is healthy again and failover completes the
				// answer even though the pin stays.
				srv := serveFixture(t, 2)
				srv.ForceBreaker(serve.ShardOf("a.bib", 2), true)
				op := func() error {
					resp, err := srv.Execute(t.Context(), serve.Request{Query: matrixQuery})
					if err != nil {
						return err
					}
					return resp.DegradedError()
				}
				return op, func() error { return serveHealthy(t, srv) }
			}},
		{point: faultinject.ServeHedge, degrades: true, panicDegrades: true,
			setup: func(t *testing.T) (func() error, func() error) {
				// Two replicas and a near-zero hedge delay: every group
				// hedges to its secondary almost immediately. A faulted
				// hedge loses the race while the healthy primary answers,
				// so the response stays complete whatever the kind. The
				// timer still races the primary, so the operation retries
				// until a hedge actually crossed the failpoint.
				srv := serveFixtureCfg(t, serve.Config{
					Schema: qof.BibTeX(), Shards: 2, Replicas: 2,
					HedgeAfter: time.Nanosecond,
				})
				op := func() error {
					var firstErr error
					for round := 0; round < 500 && faultinject.Hits(faultinject.ServeHedge) == 0; round++ {
						resp, err := srv.Execute(t.Context(), serve.Request{Query: matrixQuery})
						if err != nil {
							return err
						}
						if err := resp.DegradedError(); err != nil && firstErr == nil {
							firstErr = err
						}
					}
					return firstErr
				}
				return op, func() error { return serveHealthy(t, srv) }
			}},
		{point: faultinject.ServePublish,
			setup: func(t *testing.T) (func() error, func() error) {
				srv := serveFixture(t, 2)
				op := func() error {
					_, err := srv.Publish(map[string]string{
						"a.bib": bibtex.SampleEntry, "b.bib": bibtex.SampleEntry, "c.bib": bibtex.SampleEntry,
					})
					return err
				}
				// A failed publish must leave the previous generation
				// serving; a clean one must swap in the next epoch.
				check := func() error {
					if err := op(); err != nil {
						return err
					}
					return serveHealthy(t, srv)
				}
				return op, check
			}},
	}
}

// serveFixture builds a published 2-shard daemon with the given replica
// count for the serve.* cases.
func serveFixture(t *testing.T, replicas int) *serve.Server {
	t.Helper()
	return serveFixtureCfg(t, serve.Config{Schema: qof.BibTeX(), Shards: 2, Replicas: replicas})
}

// serveFixtureCfg builds and publishes a daemon under an explicit config.
func serveFixtureCfg(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish(map[string]string{
		"a.bib": bibtex.SampleEntry, "b.bib": bibtex.SampleEntry, "c.bib": bibtex.SampleEntry,
	}); err != nil {
		t.Fatal(err)
	}
	return srv
}

// serveHealthy asserts the daemon answers the known query completely.
func serveHealthy(t *testing.T, srv *serve.Server) error {
	resp, err := srv.Execute(t.Context(), serve.Request{Query: matrixQuery})
	if err != nil {
		return err
	}
	if err := resp.DegradedError(); err != nil {
		return err
	}
	if len(resp.Hits) != 3 {
		return fmt.Errorf("got %d daemon hits, want 3", len(resp.Hits))
	}
	return nil
}

// runGuarded runs op on its own goroutine with a generous watchdog — an
// injected fault that deadlocks or leaks an unrecovered panic is exactly
// what the matrix exists to catch.
func runGuarded(t *testing.T, op func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- fmt.Errorf("panic crossed the API boundary: %v", p)
			}
		}()
		done <- op()
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("operation hung under fault injection")
		return nil
	}
}

func TestFaultMatrix(t *testing.T) {
	if faultinject.Active() {
		t.Fatal("injection already active at test entry")
	}
	kinds := []string{"error", "panic"}
	if os.Getenv("QOF_FAULT_MATRIX") == "full" {
		kinds = append(kinds, "delay:5ms")
	}
	covered := make(map[string]bool)
	for _, mc := range matrixCases() {
		covered[mc.point] = true
		for _, kind := range kinds {
			t.Run(mc.point+"/"+kind, func(t *testing.T) {
				op, check := mc.setup(t)
				if err := faultinject.Configure(mc.point + "=" + kind); err != nil {
					t.Fatal(err)
				}
				err := runGuarded(t, op)
				if faultinject.Hits(mc.point) == 0 {
					t.Errorf("operation never crossed failpoint %s", mc.point)
				}
				faultinject.Reset()
				switch {
				case strings.HasPrefix(kind, "delay"):
					if err != nil {
						t.Errorf("delay fault failed the operation: %v", err)
					}
				case kind == "error" && mc.degrades:
					if err != nil {
						t.Errorf("cache fault failed the operation: %v", err)
					}
				case kind == "error":
					if !errors.Is(err, faultinject.ErrInjected) {
						t.Errorf("err = %v, want ErrInjected", err)
					}
				case kind == "panic" && mc.panicDegrades:
					if err != nil {
						t.Errorf("losing-attempt panic failed the operation: %v", err)
					}
				case kind == "panic":
					if !errors.Is(err, qof.ErrInternal) {
						t.Errorf("err = %v, want ErrInternal", err)
					}
				}
				// Whatever the fault did, the engine serves correctly now.
				if err := runGuarded(t, check); err != nil {
					t.Errorf("post-fault health check: %v", err)
				}
			})
		}
	}
	// A failpoint added to the catalog without a matrix case is a hole in
	// the robustness suite; fail loudly instead of silently shrinking.
	for _, name := range faultinject.Catalog() {
		if !covered[name] {
			t.Errorf("catalog failpoint %s has no fault-matrix case", name)
		}
	}
}

// TestFaultMatrixCorpusPartial is the degraded-mode leg: with per-file
// faults injected, a partial corpus query reports every file in Degraded
// with typed attribution instead of failing, and recovers fully.
func TestFaultMatrixCorpusPartial(t *testing.T) {
	c := qof.BibTeX().NewCorpus()
	files := map[string]string{"a.bib": bibtex.SampleEntry, "b.bib": bibtex.SampleEntry}
	if err := c.AddAll(files); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"error", "panic"} {
		if err := faultinject.Configure(faultinject.CorpusFile + "=" + kind); err != nil {
			t.Fatal(err)
		}
		res, err := c.ExecuteContext(t.Context(), matrixQuery, qof.WithPartialResults())
		faultinject.Reset()
		if err != nil {
			t.Fatalf("%s: partial query failed outright: %v", kind, err)
		}
		if len(res.Hits) != 0 || len(res.Degraded) != 2 {
			t.Fatalf("%s: hits=%d degraded=%d, want 0/2", kind, len(res.Hits), len(res.Degraded))
		}
		want := error(faultinject.ErrInjected)
		if kind == "panic" {
			want = qof.ErrInternal
		}
		for _, fe := range res.Degraded {
			if !errors.Is(fe.Err, want) {
				t.Errorf("%s: %s failed with %v, want %v", kind, fe.File, fe.Err, want)
			}
		}
		if err := res.DegradedError(); !errors.Is(err, want) || !strings.Contains(err.Error(), "a.bib") {
			t.Errorf("%s: DegradedError = %v", kind, err)
		}
	}
	res, err := c.ExecuteContext(t.Context(), matrixQuery)
	if err != nil || len(res.Hits) != 2 || len(res.Degraded) != 0 {
		t.Fatalf("post-fault corpus query: hits=%v err=%v", res, err)
	}
}

// TestFaultMatrixPostFaultOracle hammers one engine with every failpoint in
// error mode, then differentially tests it against the reference evaluator:
// a fault must never poison a cache or tear the instance in a way that
// changes later answers.
func TestFaultMatrixPostFaultOracle(t *testing.T) {
	d := qgen.BibTeX(7)
	h, err := diff.New(d, 0, d.Specs[0])
	if err != nil {
		t.Fatal(err)
	}
	g := qgen.NewQueryGen(d, 11)
	queries := make([]*xsql.Query, 6)
	for i := range queries {
		queries[i] = g.Query()
	}
	var saved bytes.Buffer
	if err := h.In.Save(&saved); err != nil {
		t.Fatal(err)
	}
	for _, point := range faultinject.Catalog() {
		if err := faultinject.Configure(point + "=error"); err != nil {
			t.Fatal(err)
		}
		// Cross every path the failpoints guard; errors are the point.
		for _, q := range queries {
			h.Eng.Execute(q)
		}
		h.In.Save(io.Discard)
		index.Load(bytes.NewReader(saved.Bytes()), d.Doc)
		d.Cat.Grammar.BuildInstance(d.Doc, d.Specs[0])
		faultinject.Reset()
		for i, q := range queries {
			if err := h.CheckQuery(q); err != nil {
				t.Errorf("after %s fault, query %d diverges from oracle: %v", point, i, err)
			}
		}
	}
}
