package qof

// The public API: a thin facade over the internal packages, so that a
// downstream user can define a structuring schema, index files, and query
// them without touching internals.
//
//	schema, _ := qof.BibTeX()
//	file, _ := schema.Index("refs.bib", content)
//	res, _ := file.Query(`SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)

import (
	"context"
	"fmt"
	"io"

	"qof/internal/advisor"
	"qof/internal/bibtex"
	"qof/internal/compile"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/index"
	"qof/internal/logs"
	"qof/internal/region"
	"qof/internal/sgml"
	"qof/internal/srccode"
	"qof/internal/text"
	"qof/internal/xsql"
)

// Schema couples a structuring schema (grammar + database mapping) with its
// class bindings; it is the entry point for indexing and querying files of
// one format.
type Schema struct {
	cat *compile.Catalog
}

// BibTeX returns the built-in bibliography schema (class References).
func BibTeX() *Schema { return &Schema{cat: bibtex.Catalog()} }

// Logs returns the built-in server-log schema (class Entries).
func Logs() *Schema { return &Schema{cat: logs.Catalog()} }

// SGML returns the built-in nested-document schema (classes Docs, Sections).
func SGML() *Schema { return &Schema{cat: sgml.Catalog()} }

// SourceCode returns the built-in source-code schema (class Decls).
func SourceCode() *Schema { return &Schema{cat: srccode.Catalog()} }

// RIG renders the schema's region inclusion graph, one "A -> B" line per
// possible direct inclusion.
func (s *Schema) RIG() string { return s.cat.RIG.String() }

// indexConfig collects the effects of IndexOptions: the indexing choice
// plus execution configuration for the resulting File or Corpus.
type indexConfig struct {
	spec          grammar.IndexSpec
	parallelism   int
	materializing bool
	shared        bool
}

// IndexOption configures Index, Load and NewCorpus.
type IndexOption func(*indexConfig)

func applyOptions(opts []IndexOption) indexConfig {
	var cfg indexConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithRegions restricts indexing to the given region names (partial
// indexing); the default indexes every non-terminal.
func WithRegions(names ...string) IndexOption {
	return func(c *indexConfig) { c.spec.Names = append(c.spec.Names, names...) }
}

// WithScopedRegion selectively indexes name only inside within regions.
func WithScopedRegion(name, within string) IndexOption {
	return func(c *indexConfig) {
		c.spec.Scoped = append(c.spec.Scoped, grammar.ScopedName{Name: name, Within: within})
	}
}

// WithParallelism sets the degree of parallelism for query execution:
// on a File, up to n worker goroutines parse and filter candidate regions
// within one query; on a Corpus, up to n files are queried concurrently.
// Values below 2 evaluate sequentially (the default). Results are identical
// either way — parallel execution preserves document order and statistics.
func WithParallelism(n int) IndexOption {
	return func(c *indexConfig) { c.parallelism = n }
}

// WithMaterializing selects the materializing reference executor: phase 1
// computes the complete candidate set before any candidate is parsed. The
// default executor streams candidates through an iterator pipeline so that
// LIMIT, budgets and cancellation stop the work early; results are
// identical either way (see docs/STREAMING.md). The option exists for
// differential testing and for peak-memory comparisons.
func WithMaterializing() IndexOption {
	return func(c *indexConfig) { c.materializing = true }
}

// WithSharedExecution enables cross-query work sharing: the word literals of
// concurrently executing queries are answered by one batched multi-pattern
// scan, identical cache-worthy subexpressions evaluate once (cross-query
// CSE), and a candidate region needed by several in-flight queries is parsed
// once. Sharing never changes any query's results or its result-facing
// statistics, and a query arriving at an idle file runs immediately — the
// batching window is work-conserving. See docs/SHARED_EXECUTION.md.
func WithSharedExecution() IndexOption {
	return func(c *indexConfig) { c.shared = true }
}

// File is an indexed document ready for querying.
type File struct {
	schema *Schema
	eng    *engine.Engine
}

// Index parses and indexes a document held in memory. The returned File is
// safe for concurrent queries.
func (s *Schema) Index(name, content string, opts ...IndexOption) (*File, error) {
	return s.IndexContext(context.Background(), name, content, opts...)
}

// Load re-attaches a persisted index (written by Save) to the document
// content, verifying it has not changed. Indexing-choice options are
// ignored (the persisted index fixes them); WithParallelism applies.
func (s *Schema) Load(r io.Reader, name, content string, opts ...IndexOption) (f *File, err error) {
	defer catchPanic(&err, "loading %s", name)
	cfg := applyOptions(opts)
	in, err := index.Load(r, text.NewDocument(name, content))
	if err != nil {
		return nil, err
	}
	return &File{schema: s, eng: newEngine(s.cat, in, cfg)}, nil
}

func newEngine(cat *compile.Catalog, in *index.Instance, cfg indexConfig) *engine.Engine {
	eng := engine.New(cat, in)
	eng.Parallelism = cfg.parallelism
	eng.Materializing = cfg.materializing
	if cfg.shared {
		eng.EnableSharedExecution()
	}
	return eng
}

// engineConfig recovers the execution configuration of an existing engine,
// so edits (Replace, InsertAfter, Delete) produce Files that execute the
// same way as the original.
func engineConfig(eng *engine.Engine) indexConfig {
	return indexConfig{
		parallelism:   eng.Parallelism,
		materializing: eng.Materializing,
		shared:        eng.SharedExecution(),
	}
}

// Save persists the file's indexes.
func (f *File) Save(w io.Writer) (err error) {
	defer catchPanic(&err, "saving %s", f.Name())
	return f.eng.Instance().Save(w)
}

// Name returns the document name.
func (f *File) Name() string { return f.eng.Instance().Document().Name() }

// Span is a region of the document with its text.
type Span struct {
	Start, End int
	Text       string
}

// Stats summarizes how a query executed.
type Stats struct {
	// Candidates is the number of candidate regions the index produced.
	Candidates int
	// Parsed is the number of regions parsed (0 for index-only answers).
	Parsed int
	// ParsedBytes is the number of document bytes parsed.
	ParsedBytes int
	// Exact reports that the index computed the answer with no filtering.
	Exact bool
	// FullScan reports that the index offered no narrowing.
	FullScan bool
	// PlanCached reports that the compiled plan came from the plan cache
	// (a repeat query skipped parse, compile and optimize).
	PlanCached bool
}

// Results is a query outcome: whole-object selects fill Spans, projections
// fill Values.
type Results struct {
	Spans   []Span
	Values  []string
	Stats   Stats
	explain string
}

// Len reports the number of results.
func (r *Results) Len() int {
	if r.Values != nil {
		return len(r.Values)
	}
	return len(r.Spans)
}

// Explain renders the query plan (candidate expressions, rewrites applied,
// exactness classification).
func (r *Results) Explain() string { return r.explain }

// Query runs an XSQL query (see the xsql package comment for the dialect)
// against the file.
func (f *File) Query(src string) (*Results, error) {
	return f.QueryContext(context.Background(), src)
}

func convertResults(doc *text.Document, res *engine.Result) *Results {
	out := &Results{explain: res.Plan.Explain()}
	out.Stats = Stats{
		Candidates:  res.Stats.Candidates,
		Parsed:      res.Stats.Parsed,
		ParsedBytes: res.Stats.ParsedBytes,
		Exact:       res.Stats.Exact,
		FullScan:    res.Stats.FullScan,
		PlanCached:  res.Stats.PlanCached,
	}
	if res.Projected {
		out.Values = append([]string(nil), res.Strings...)
		return out
	}
	for _, r := range res.Regions.Regions() {
		out.Spans = append(out.Spans, Span{Start: r.Start, End: r.End, Text: doc.Slice(r.Start, r.End)})
	}
	return out
}

// Eval evaluates a raw region-algebra expression (see the algebra package
// comment for the syntax) and returns the matching spans.
func (f *File) Eval(src string) ([]Span, error) {
	return f.EvalContext(context.Background(), src)
}

// Replace applies an in-place edit: the span (which must be an indexed
// region of the given name) is replaced by newText, re-parsing only the
// replacement. It returns the updated file; the receiver is unchanged.
func (f *File) Replace(regionName string, span Span, newText string) (*File, error) {
	_, in, err := engine.ReplaceRegion(f.schema.cat, f.eng.Instance(), regionName,
		regionOf(span), newText)
	if err != nil {
		return nil, err
	}
	return &File{schema: f.schema, eng: newEngine(f.schema.cat, in, engineConfig(f.eng))}, nil
}

// InsertAfter inserts newText (a complete occurrence of regionName's
// format) immediately after the span, parsing only the insertion.
func (f *File) InsertAfter(regionName string, span Span, newText string) (*File, error) {
	_, in, err := engine.InsertAfter(f.schema.cat, f.eng.Instance(), regionName,
		regionOf(span), newText)
	if err != nil {
		return nil, err
	}
	return &File{schema: f.schema, eng: newEngine(f.schema.cat, in, engineConfig(f.eng))}, nil
}

// Delete removes the span (an indexed region of regionName) without any
// re-parsing.
func (f *File) Delete(regionName string, span Span) (*File, error) {
	_, in, err := engine.DeleteRegion(f.schema.cat, f.eng.Instance(), regionName, regionOf(span))
	if err != nil {
		return nil, err
	}
	return &File{schema: f.schema, eng: newEngine(f.schema.cat, in, engineConfig(f.eng))}, nil
}

// Content returns the file's current text.
func (f *File) Content() string { return f.eng.Instance().Document().Content() }

// Corpus queries many files of one schema together.
type Corpus struct {
	schema *Schema
	c      *engine.Corpus
}

// NewCorpus creates an empty corpus. With WithParallelism(n), queries run
// against up to n files concurrently. The Corpus is safe for concurrent
// queries once every file is added.
func (s *Schema) NewCorpus(opts ...IndexOption) *Corpus {
	cfg := applyOptions(opts)
	ec := engine.NewCorpus(s.cat)
	ec.Parallelism = cfg.parallelism
	ec.Materializing = cfg.materializing
	ec.Shared = cfg.shared
	return &Corpus{schema: s, c: ec}
}

// Add indexes a document and adds it to the corpus.
func (c *Corpus) Add(name, content string, opts ...IndexOption) error {
	cfg := applyOptions(opts)
	return c.c.Add(text.NewDocument(name, content), cfg.spec)
}

// AddAll indexes the named documents and adds them to the corpus in order.
// With WithParallelism on the corpus, the index builds run concurrently;
// the result is identical to sequential Adds. On error nothing is added,
// and the returned error joins one attributed error per failed document.
func (c *Corpus) AddAll(files map[string]string, opts ...IndexOption) error {
	return c.AddAllContext(context.Background(), files, opts...)
}

// CorpusHit is one file's results.
type CorpusHit struct {
	File   string
	Spans  []Span
	Values []string
}

// Query runs the query against every file and merges the outcomes.
func (c *Corpus) Query(src string) ([]CorpusHit, error) {
	res, err := c.ExecuteContext(context.Background(), src)
	if err != nil {
		return nil, err
	}
	return res.Hits, nil
}

// Advise recommends which regions to index so the given query workload is
// fully computed by the indexing engine (Section 7 of the paper). It
// returns the recommended region names and a human-readable report.
func (s *Schema) Advise(queries ...string) ([]string, string, error) {
	var parsed []*xsql.Query
	for _, src := range queries {
		q, err := xsql.Parse(src)
		if err != nil {
			return nil, "", fmt.Errorf("qof: query %q: %w", src, err)
		}
		parsed = append(parsed, q)
	}
	rec, err := advisor.Recommend(s.cat, parsed)
	if err != nil {
		return nil, "", err
	}
	return rec.Names, rec.String(), nil
}

func regionOf(s Span) (r regionT) { r.Start, r.End = s.Start, s.End; return }

// regionT aliases the internal region type for the facade's conversions.
type regionT = region.Region
