// Package qof is a from-scratch Go reproduction of "Optimizing Queries on
// Files" (Mariano P. Consens and Tova Milo, SIGMOD 1994): a framework that
// gives semi-structured files a database query interface by compiling
// object-database queries into optimized expressions over a text-indexing
// engine.
//
// The implementation lives under internal/ (see DESIGN.md for the full
// inventory):
//
//   - internal/text, internal/index: the text-indexing substrate (word
//     index with PAT-style sistring search, named region indexes,
//     persistence);
//   - internal/region, internal/algebra: the PAT region algebra and its
//     evaluator;
//   - internal/rig, internal/optimizer: region inclusion graphs and the
//     paper's polynomial optimization algorithm (Theorem 3.6);
//   - internal/grammar, internal/db, internal/xsql: structuring schemas,
//     the object-database substrate, and the XSQL-like query language;
//   - internal/compile, internal/engine: query compilation (full and
//     partial indexing, exactness analysis) and two-phase execution;
//   - internal/advisor: Section 7's index selection;
//   - internal/bibtex, internal/logs, internal/sgml, internal/srccode: the
//     built-in file formats with deterministic generators;
//   - internal/scan: the full-scan and grep baselines;
//   - internal/experiments: the harness regenerating every table of
//     EXPERIMENTS.md.
//
// The root package is the public API: Schema (built-ins via BibTeX, Logs,
// SGML, SourceCode, or custom formats via NewSchemaBuilder), File (Index,
// Query, Eval, Save/Load, Replace/InsertAfter/Delete), Corpus, and Advise.
// The qof CLI (cmd/qof) and the experiment runner (cmd/qofbench) expose the
// workflow end to end; the benchmarks in bench_test.go mirror the
// experiments under testing.B.
package qof
