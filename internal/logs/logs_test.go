package logs_test

import (
	"testing"

	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/logs"
	"qof/internal/scan"
	"qof/internal/text"
	"qof/internal/xsql"
)

func TestGeneratedLogParses(t *testing.T) {
	content, st := logs.Generate(logs.DefaultConfig(80))
	g := logs.Grammar()
	doc := text.NewDocument("app.log", content)
	tree, err := g.Parse(doc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := len(tree.Find(logs.NTEntry)); got != st.NumEntries {
		t.Fatalf("entries = %d, want %d", got, st.NumEntries)
	}
	in, _, err := g.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Universe().ProperlyNested() {
		t.Error("log regions must nest")
	}
	if err := g.DeriveRIG().Satisfies(in); err != nil {
		t.Errorf("RIG violated: %v", err)
	}
}

func TestLogQueries(t *testing.T) {
	content, st := logs.Generate(logs.DefaultConfig(120))
	cat := logs.Catalog()
	doc := text.NewDocument("app.log", content)
	in, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(cat, in)

	cases := []struct {
		src  string
		want int
	}{
		{`SELECT e FROM Entries e WHERE e.Level = "ERROR"`, st.Errors},
		{`SELECT e FROM Entries e WHERE e.Proc.Program = "nginx"`, st.TargetEntries},
		{`SELECT e FROM Entries e WHERE e.Level = "ERROR" AND e.Proc.Program = "nginx"`, st.TargetErrors},
		{`SELECT e FROM Entries e WHERE e.*X.Program = "nginx"`, st.TargetEntries},
	}
	for _, tc := range cases {
		res, err := eng.Execute(xsql.MustParse(tc.src))
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if res.Stats.Results != tc.want {
			t.Errorf("%s: results = %d, want %d\n%s", tc.src, res.Stats.Results, tc.want, res.Plan.Explain())
		}
		if !res.Stats.Exact {
			t.Errorf("%s: full indexing should be exact", tc.src)
		}
		// Cross-check with the baseline.
		base, err := scan.FullScan(cat, doc, xsql.MustParse(tc.src))
		if err != nil {
			t.Fatal(err)
		}
		if len(base.Objects) != tc.want {
			t.Errorf("%s: baseline = %d, want %d", tc.src, len(base.Objects), tc.want)
		}
	}
}

func TestLogPartialIndexing(t *testing.T) {
	content, st := logs.Generate(logs.DefaultConfig(100))
	cat := logs.Catalog()
	doc := text.NewDocument("app.log", content)
	in, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{
		Names: []string{logs.NTEntry, logs.NTLevel},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(cat, in)
	res, err := eng.Execute(xsql.MustParse(`SELECT e FROM Entries e WHERE e.Level = "ERROR"`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Results != st.Errors {
		t.Fatalf("results = %d, want %d", res.Stats.Results, st.Errors)
	}
	// Program queries degrade to supersets via word containment.
	res2, err := eng.Execute(xsql.MustParse(`SELECT e FROM Entries e WHERE e.Proc.Program = "nginx"`))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Results != st.TargetEntries {
		t.Fatalf("program results = %d, want %d", res2.Stats.Results, st.TargetEntries)
	}
	if res2.Stats.Exact {
		t.Error("program query cannot be exact without a Program index")
	}
}
