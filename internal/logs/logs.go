// Package logs provides a second domain from the paper's motivation list
// ("electronic documents, programs, log files, …"): a structuring schema
// for structured server log files and a deterministic generator. One entry
// looks like
//
//	[1994-05-24 12:00:01] ERROR nginx(233): connection refused from host42
//
// and is viewed in the database as a tuple with Timestamp, Level, Proc
// (Program + Pid) and Message attributes.
package logs

import (
	"fmt"
	"math/rand"
	"strings"

	"qof/internal/compile"
	"qof/internal/grammar"
)

// Non-terminal names of the schema.
const (
	NTLog       = "Log"
	NTEntry     = "Entry"
	NTTimestamp = "Timestamp"
	NTLevel     = "Level"
	NTProc      = "Proc"
	NTProgram   = "Program"
	NTPid       = "Pid"
	NTMessage   = "Message"
)

// ClassEntries is the XSQL class bound to Entry regions.
const ClassEntries = "Entries"

// Grammar builds the log-file structuring schema.
func Grammar() *grammar.Grammar {
	g := grammar.NewGrammar(NTLog)
	g.MustAddTerminal("DateTime", `[0-9]{4}-[0-9]{2}-[0-9]{2} [0-9]{2}:[0-9]{2}:[0-9]{2}`)
	g.MustAddTerminal("LevelWord", `INFO|WARN|ERROR|DEBUG`)
	g.MustAddTerminal("Ident", `[a-z][a-z0-9_-]*`)
	g.MustAddTerminal("Num", `[0-9]+`)
	g.MustAddTerminal("Line", `[^\n]+`)

	g.AddProduction(NTLog, grammar.Rep(NTEntry, ""))
	g.AddProduction(NTEntry,
		grammar.Lit("["), grammar.NT(NTTimestamp), grammar.Lit("]"),
		grammar.NT(NTLevel), grammar.NT(NTProc), grammar.Lit(":"),
		grammar.NT(NTMessage))
	g.AddProduction(NTTimestamp, grammar.Term("DateTime"))
	g.AddProduction(NTLevel, grammar.Term("LevelWord"))
	g.AddProduction(NTProc, grammar.NT(NTProgram), grammar.Lit("("), grammar.NT(NTPid), grammar.Lit(")"))
	g.AddProduction(NTProgram, grammar.Term("Ident"))
	g.AddProduction(NTPid, grammar.Term("Num"))
	g.AddProduction(NTMessage, grammar.Term("Line"))
	if err := g.Validate(); err != nil {
		panic("logs: invalid grammar: " + err.Error())
	}
	return g
}

// Catalog builds the compile catalog with the standard class binding.
func Catalog() *compile.Catalog {
	cat := compile.NewCatalog(Grammar())
	cat.Bind(ClassEntries, NTEntry)
	return cat
}

// Config controls the log generator.
type Config struct {
	NumEntries int
	Seed       int64
	// ErrorShare is the fraction of ERROR entries; the rest spread over
	// INFO/WARN/DEBUG.
	ErrorShare float64
	// TargetProgram appears in TargetShare of the entries.
	TargetProgram string
	TargetShare   float64
}

// DefaultConfig generates a workload with 5% errors and the target program
// "nginx" on 10% of entries.
func DefaultConfig(n int) Config {
	return Config{
		NumEntries:    n,
		Seed:          1994,
		ErrorShare:    0.05,
		TargetProgram: "nginx",
		TargetShare:   0.10,
	}
}

// Stats is the generator's ground truth.
type Stats struct {
	NumEntries    int
	Errors        int
	TargetEntries int // entries of TargetProgram
	TargetErrors  int // ERROR entries of TargetProgram
}

// Generate produces a deterministic synthetic log and its ground truth.
func Generate(cfg Config) (string, Stats) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sb strings.Builder
	st := Stats{NumEntries: cfg.NumEntries}
	programs := []string{"cron", "sshd", "postfix", "kernel", "app-server", "db-worker"}
	others := []string{"INFO", "WARN", "DEBUG"}
	for i := 0; i < cfg.NumEntries; i++ {
		level := others[rng.Intn(len(others))]
		if rng.Float64() < cfg.ErrorShare {
			level = "ERROR"
		}
		prog := programs[rng.Intn(len(programs))]
		if cfg.TargetProgram != "" && rng.Float64() < cfg.TargetShare {
			prog = cfg.TargetProgram
		}
		if level == "ERROR" {
			st.Errors++
		}
		if prog == cfg.TargetProgram {
			st.TargetEntries++
			if level == "ERROR" {
				st.TargetErrors++
			}
		}
		fmt.Fprintf(&sb, "[1994-%02d-%02d %02d:%02d:%02d] %s %s(%d): %s\n",
			1+rng.Intn(12), 1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60),
			level, prog, 100+rng.Intn(900), message(rng))
	}
	return sb.String(), st
}

func message(rng *rand.Rand) string {
	verbs := []string{"connection refused", "request served", "timeout waiting",
		"retry scheduled", "cache miss", "handshake complete", "queue drained"}
	return fmt.Sprintf("%s from host%02d code=%d",
		verbs[rng.Intn(len(verbs))], rng.Intn(50), rng.Intn(16))
}
