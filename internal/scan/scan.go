// Package scan implements the comparison baselines of the experiments:
//
//   - FullScan is the "standard database implementation" the paper
//     contrasts against ([ACM93]): parse the entire file with the
//     structuring schema, construct every object, load the class extents
//     into the database, and evaluate the query there. The whole file is
//     scanned and parsed regardless of selectivity.
//   - Grep is the raw text-search baseline: it finds every whole-word
//     occurrence of a constant by scanning the file, which is fast but —
//     as Section 2 stresses — cannot answer structural queries (it cannot
//     tell an author named Chang from an editor named Chang).
package scan

import (
	"fmt"

	"qof/internal/compile"
	"qof/internal/db"
	"qof/internal/grammar"
	"qof/internal/text"
	"qof/internal/xsql"
)

// FullScanResult is the outcome of the parse-everything baseline.
type FullScanResult struct {
	Objects     []db.Value
	Strings     []string // projection results, when the query projects
	Projected   bool
	ObjectsSeen int // objects constructed (the whole extent)
	BytesParsed int
}

// FullScan evaluates the query by building the complete database image of
// the document and filtering in the database.
func FullScan(cat *compile.Catalog, doc *text.Document, q *xsql.Query) (*FullScanResult, error) {
	tree, err := cat.Grammar.Parse(doc)
	if err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	res := &FullScanResult{BytesParsed: doc.Len(), Projected: len(q.Select.Segs) > 0}

	// Load every class extent mentioned by the query.
	database := db.NewDatabase()
	content := doc.Content()
	for _, f := range q.From {
		nt, ok := cat.ClassNT(f.Class)
		if !ok {
			return nil, fmt.Errorf("scan: class %q is not bound", f.Class)
		}
		if database.Count(f.Class) > 0 {
			continue
		}
		for _, node := range tree.Find(nt) {
			database.Insert(f.Class, grammar.BuildValue(node, content))
			res.ObjectsSeen++
		}
	}

	// Nested-loop evaluation with the same condition semantics as the
	// engine's residual filter.
	env := make(xsql.Env, len(q.From))
	seen := make(map[db.Value]bool)
	var loop func(i int) error
	loop = func(i int) error {
		if i < len(q.From) {
			for _, o := range database.Extent(q.From[i].Class) {
				env[q.From[i].Var] = o.Val
				if err := loop(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		ok, err := xsql.EvalCond(env, q.Where)
		if err != nil || !ok {
			return err
		}
		obj := env[q.Select.Var]
		if seen[obj] {
			return nil
		}
		seen[obj] = true
		if res.Projected {
			res.Strings = append(res.Strings, db.NavigateStrings(obj, q.Select.Steps())...)
		} else {
			res.Objects = append(res.Objects, obj)
		}
		return nil
	}
	if err := loop(0); err != nil {
		return nil, err
	}
	return res, nil
}

// GrepResult is the outcome of the raw text-search baseline.
type GrepResult struct {
	Occurrences  int // whole-word occurrences of the constant
	BytesScanned int
}

// Grep scans the document for whole-word occurrences of w, the way a
// text-search tool would. It answers "where does the word occur", not the
// structural query.
func Grep(doc *text.Document, w string) GrepResult {
	content := doc.Content()
	res := GrepResult{BytesScanned: len(content)}
	if w == "" {
		return res
	}
	for i := 0; i+len(w) <= len(content); i++ {
		if content[i:i+len(w)] == w && text.IsWord(content, i, i+len(w)) {
			res.Occurrences++
		}
	}
	return res
}
