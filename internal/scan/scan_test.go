package scan_test

import (
	"testing"

	"qof/internal/bibtex"
	"qof/internal/scan"
	"qof/internal/text"
	"qof/internal/xsql"
)

func TestFullScanGroundTruth(t *testing.T) {
	cfg := bibtex.DefaultConfig(50)
	cfg.TargetAuthorShare = 0.2
	cfg.TargetEditorShare = 0.2
	content, st := bibtex.Generate(cfg)
	cat := bibtex.Catalog()
	doc := text.NewDocument("c.bib", content)

	res, err := scan.FullScan(cat, doc, xsql.MustParse(
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != st.TargetAsAuthor {
		t.Fatalf("objects = %d, want %d", len(res.Objects), st.TargetAsAuthor)
	}
	if res.ObjectsSeen != st.NumRefs {
		t.Errorf("ObjectsSeen = %d, want %d (full scan builds everything)", res.ObjectsSeen, st.NumRefs)
	}
	if res.BytesParsed != doc.Len() {
		t.Errorf("BytesParsed = %d, want %d", res.BytesParsed, doc.Len())
	}
	if res.Projected {
		t.Error("whole-object select misflagged")
	}
}

func TestFullScanProjection(t *testing.T) {
	content, _ := bibtex.Generate(bibtex.DefaultConfig(10))
	cat := bibtex.Catalog()
	doc := text.NewDocument("c.bib", content)
	res, err := scan.FullScan(cat, doc, xsql.MustParse(
		`SELECT r.Key FROM References r`))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Projected || len(res.Strings) != 10 {
		t.Fatalf("projection: %v", res.Strings)
	}
}

func TestFullScanErrors(t *testing.T) {
	cat := bibtex.Catalog()
	doc := text.NewDocument("c.bib", "not a bibliography")
	if _, err := scan.FullScan(cat, doc, xsql.MustParse(`SELECT r FROM References r`)); err == nil {
		t.Error("unparseable input accepted")
	}
	ok, _ := bibtex.Generate(bibtex.DefaultConfig(1))
	doc2 := text.NewDocument("c.bib", ok)
	if _, err := scan.FullScan(cat, doc2, xsql.MustParse(`SELECT x FROM Unknown x`)); err == nil {
		t.Error("unbound class accepted")
	}
}

func TestGrepWholeWords(t *testing.T) {
	doc := text.NewDocument("t", "Chang the Changing Chang changling")
	res := scan.Grep(doc, "Chang")
	if res.Occurrences != 2 {
		t.Fatalf("occurrences = %d, want 2", res.Occurrences)
	}
	if res.BytesScanned != doc.Len() {
		t.Error("BytesScanned")
	}
}
