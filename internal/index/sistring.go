package index

// PAT's sistring array orders word-start positions by the text that follows
// them. Sorting Go string suffixes directly degenerates to O(n² log n) byte
// comparisons on repetitive documents, where every comparison scans a long
// shared prefix. Instead, the byte-level suffixes of the document are ranked
// with Manber–Myers prefix doubling — O(n log n) via counting sorts — and
// the tokens are ordered by the rank at their start position, making each
// sort comparison O(1).
//
// The standard library's index/suffixarray builds an equivalent structure
// (and is still used for substring search) but exposes neither the sorted
// order nor ranks, so the ranks are computed here. All working arrays are
// int32: document offsets fit comfortably, and halving the memory traffic
// matters — the counting sorts are bandwidth-bound.

// suffixRanks returns rank[i] = the position of suffix s[i:] in the sorted
// order of all suffixes of s.
func suffixRanks(s string) []int32 {
	return suffixRanksAt(s, nil)
}

// suffixRanksAt computes suffix ranks like suffixRanks but, when starts is
// non-empty, may stop doubling as soon as the ranks at those offsets are
// pairwise distinct. Ranks at other offsets are then only correct up to the
// resolved prefix length; relative order among the starts is exact. The
// sistring build passes token starts here, which on natural text converges
// a few rounds before every interior position is resolved.
func suffixRanksAt(s string, starts []int) []int32 {
	n := len(s)
	if n == 0 {
		return nil
	}
	rank := make([]int32, n)
	for i := 0; i < n; i++ {
		rank[i] = int32(s[i]) + 1 // rank 0 is reserved for "past the end"
	}
	sa := make([]int32, n)  // suffix offsets, sorted by current rank pair
	sa2 := make([]int32, n) // offsets pre-sorted by the pair's second rank
	tmp := make([]int32, n)
	top := max(n+2, 258) // counting-sort domain: byte ranks, then [1, n]
	cnt := make([]int32, top)
	// countingSort stably sorts the offsets in src by rank into sa.
	countingSort := func(src []int32) {
		for i := range cnt {
			cnt[i] = 0
		}
		for i := 0; i < n; i++ {
			cnt[rank[i]]++
		}
		for i := 1; i < top; i++ {
			cnt[i] += cnt[i-1]
		}
		for i := n - 1; i >= 0; i-- {
			j := src[i]
			cnt[rank[j]]--
			sa[cnt[rank[j]]] = j
		}
	}
	// seen stamps the round each class was last observed at a start
	// offset, detecting duplicate classes without re-zeroing per round.
	var seen []int32
	if len(starts) > 0 {
		seen = make([]int32, n+1)
	}
	distinctAtStarts := func(round int32) bool {
		if seen == nil {
			return false
		}
		for _, p := range starts {
			r := rank[p]
			if seen[r] == round {
				return false
			}
			seen[r] = round
		}
		return true
	}
	for i := 0; i < n; i++ {
		sa2[i] = int32(i)
	}
	countingSort(sa2)
	for k, round := 1, int32(1); ; k, round = k*2, round+1 {
		// Order by the second key rank[i+k] (an empty suffix sorts first)
		// by shifting the previous round's order, then stable counting
		// sort by the first key.
		p := 0
		for i := n - k; i < n; i++ {
			sa2[p] = int32(i)
			p++
		}
		for _, i := range sa {
			if int(i) >= k {
				sa2[p] = i - int32(k)
				p++
			}
		}
		countingSort(sa2)
		// Re-rank: adjacent suffixes share a rank iff both keys match.
		second := func(i int32) int32 {
			if int(i)+k < n {
				return rank[int(i)+k]
			}
			return 0
		}
		tmp[sa[0]] = 1
		classes := 1
		for i := 1; i < n; i++ {
			a, b := sa[i-1], sa[i]
			if rank[a] == rank[b] && second(a) == second(b) {
				tmp[b] = tmp[a]
			} else {
				tmp[b] = tmp[a] + 1
				classes++
			}
		}
		copy(rank, tmp)
		if classes == n || distinctAtStarts(round) {
			break
		}
	}
	for i := 0; i < n; i++ {
		rank[i]--
	}
	return rank
}
