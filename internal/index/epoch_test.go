package index

import (
	"testing"

	"qof/internal/region"
	"qof/internal/text"
)

// TestEpochBumps verifies that every mutating operation advances the epoch,
// the contract the engine's result cache keys rely on.
func TestEpochBumps(t *testing.T) {
	doc := text.NewDocument("d", "alpha beta gamma")
	in := NewInstance(doc)
	e0 := in.Epoch()

	set := region.FromRegions([]region.Region{{Start: 0, End: 5}})
	in.Define("A", set)
	e1 := in.Epoch()
	if e1 <= e0 {
		t.Fatalf("Define did not bump epoch: %d -> %d", e0, e1)
	}

	in.DefineScoped("B", "A", set)
	e2 := in.Epoch()
	if e2 <= e1 {
		t.Fatalf("DefineScoped did not bump epoch: %d -> %d", e1, e2)
	}

	in.Drop("B")
	e3 := in.Epoch()
	if e3 <= e2 {
		t.Fatalf("Drop did not bump epoch: %d -> %d", e2, e3)
	}

	// A spliced instance starts past its parent so stale cache entries
	// cannot collide even before its regions are redefined.
	newDoc := text.NewDocument("d", "alpha beta delta")
	spliced := SpliceInstance(in, newDoc, 11, 16, 16)
	if spliced.Epoch() <= e3-1 {
		t.Fatalf("spliced epoch %d not past parent %d", spliced.Epoch(), e3)
	}
}
