package index

import (
	"sort"

	"qof/internal/region"
	"qof/internal/text"
)

// Splice derives the word index of an edited document from this one
// without re-scanning the unchanged text: the bytes [editStart, oldEnd) of
// the old document were replaced by newDoc[editStart:newEnd). Tokens
// strictly before and after the edit are reused (the latter shifted), and
// only a small window around the edit is re-tokenized. Posting lists are
// adjusted index-wise, so no strings outside the window are re-hashed —
// the dominant cost of word-index construction.
//
// Tokens are maximal word runs, so a token ending before editStart is
// followed by an unchanged non-word byte and cannot merge with the new
// text; symmetrically for tokens starting after oldEnd. Tokens touching
// the edit boundaries fall inside the re-tokenized window.
func (x *WordIndex) Splice(newDoc *text.Document, editStart, oldEnd, newEnd int) *WordIndex {
	delta := newEnd - oldEnd

	// i: first old token not entirely before the edit window.
	i := sort.Search(len(x.tokens), func(k int) bool { return x.tokens[k].End >= editStart })
	// j: first old token entirely after the edit window.
	j := sort.Search(len(x.tokens), func(k int) bool { return x.tokens[k].Start > oldEnd })
	if j < i {
		j = i
	}

	// Re-tokenize the window [lo, hi) of the new document.
	lo := 0
	if i > 0 {
		lo = x.tokens[i-1].End
	}
	hi := newDoc.Len()
	if j < len(x.tokens) {
		hi = x.tokens[j].Start + delta
	}
	content := newDoc.Content()
	windowToks := text.Tokenize(content[lo:hi])
	for k := range windowToks {
		windowToks[k].Start += lo
		windowToks[k].End += lo
	}

	// New token slice: left + window + shifted right.
	tokens := make([]text.Token, 0, i+len(windowToks)+len(x.tokens)-j)
	tokens = append(tokens, x.tokens[:i]...)
	tokens = append(tokens, windowToks...)
	for _, t := range x.tokens[j:] {
		tokens = append(tokens, text.Token{Start: t.Start + delta, End: t.End + delta})
	}

	// Posting lists: keep left indexes, insert window indexes, shift
	// right indexes. Each per-word list stays sorted because the three
	// parts occupy disjoint, increasing index ranges.
	deltaTok := len(windowToks) - (j - i)
	out := &WordIndex{doc: newDoc, tokens: tokens, byWord: make(map[string][]int, len(x.byWord))}
	for w, list := range x.byWord {
		var nl []int
		for _, ti := range list {
			if ti < i {
				nl = append(nl, ti)
			}
		}
		if len(nl) > 0 {
			out.byWord[w] = nl
		}
	}
	for k, tok := range windowToks {
		w := newDoc.Token(tok)
		out.byWord[w] = append(out.byWord[w], i+k)
	}
	for w, list := range x.byWord {
		for _, ti := range list {
			if ti >= j {
				out.byWord[w] = append(out.byWord[w], ti+deltaTok)
			}
		}
	}
	out.words = make([]string, 0, len(out.byWord))
	for w := range out.byWord {
		out.words = append(out.words, w)
	}
	sort.Strings(out.words)
	// sistring and suffix arrays are lazy and depend on the whole text;
	// they rebuild on first use.
	return out
}

// SpliceInstance derives a new, empty-region instance over the edited
// document with a spliced word index; callers install the spliced region
// sets themselves.
func SpliceInstance(old *Instance, newDoc *text.Document, editStart, oldEnd, newEnd int) *Instance {
	in := NewInstanceFromWords(old.words.Splice(newDoc, editStart, oldEnd, newEnd))
	// Start past the parent's epoch so results cached against the old
	// contents can never be served for the spliced document.
	in.epoch.Store(old.Epoch() + 1)
	return in
}

// NewInstanceFromWords creates an empty instance reusing an existing word
// index.
func NewInstanceFromWords(w *WordIndex) *Instance {
	return &Instance{
		words:   w,
		regions: make(map[string]region.Set),
		scopes:  make(map[string]string),
	}
}
