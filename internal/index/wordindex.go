// Package index implements the text-indexing engine underneath the region
// algebra: a word index recording the location of every word occurrence in a
// document (the PAT system's sistring index), named region indices, and a
// persistent on-disk format for both.
//
// The paper assumes "that this is a service given by the underlying text
// indexing system" — this package is that service, reimplemented from the
// published PAT semantics: match points are word-start positions, regions
// are position pairs, and selection combines the two.
package index

import (
	"index/suffixarray"
	"sort"
	"strings"
	"sync"

	"qof/internal/region"
	"qof/internal/text"
)

// WordIndex records the position of every word occurrence in a document.
// It supports exact-word lookup through an inverted map and PAT-style
// sistring (semi-infinite string) prefix search through an array of word
// starts sorted by the text that follows them.
//
// A WordIndex is immutable after construction except for the lazily built
// sistring and suffix arrays, whose one-time construction is synchronized —
// concurrent queries may share one WordIndex freely.
type WordIndex struct {
	doc      *text.Document
	tokens   []text.Token     // all word occurrences, sorted by Start
	byWord   map[string][]int // word -> indexes into tokens
	words    []string         // distinct words, sorted
	sisOnce  sync.Once
	sistring []int // token indexes sorted by doc[token.Start:]; built lazily
	sufOnce  sync.Once
	suffixes *suffixarray.Index // byte-level suffix array; built lazily
}

// NewWordIndex tokenizes the document and builds the word index.
func NewWordIndex(doc *text.Document) *WordIndex {
	return newWordIndex(doc, doc.Tokens())
}

func newWordIndex(doc *text.Document, tokens []text.Token) *WordIndex {
	idx := &WordIndex{
		doc:    doc,
		tokens: tokens,
		byWord: make(map[string][]int),
	}
	for i, tok := range tokens {
		w := doc.Token(tok)
		idx.byWord[w] = append(idx.byWord[w], i)
	}
	idx.words = make([]string, 0, len(idx.byWord))
	for w := range idx.byWord {
		idx.words = append(idx.words, w)
	}
	sort.Strings(idx.words)
	return idx
}

// sistringArray returns the token indexes in lexicographic order of the
// text following each token (PAT's sistring order). It is built on first
// use: sorting semi-infinite strings is the most expensive part of word
// indexing and only prefix search needs it. Token order is derived from
// byte-level suffix ranks (see suffixRanks) so each comparison is O(1)
// regardless of how repetitive the document is.
func (x *WordIndex) sistringArray() []int {
	x.sisOnce.Do(func() {
		if len(x.tokens) == 0 {
			return
		}
		starts := make([]int, len(x.tokens))
		arr := make([]int, len(x.tokens))
		for i, tok := range x.tokens {
			starts[i] = tok.Start
			arr[i] = i
		}
		rank := suffixRanksAt(x.doc.Content(), starts)
		sort.Slice(arr, func(a, b int) bool {
			return rank[x.tokens[arr[a]].Start] < rank[x.tokens[arr[b]].Start]
		})
		x.sistring = arr
	})
	return x.sistring
}

// sortSistringNaive is the direct suffix-comparison sort the ranked build
// replaced. It is kept as the correctness and performance reference for
// tests and benchmarks only.
func (x *WordIndex) sortSistringNaive() []int {
	content := x.doc.Content()
	arr := make([]int, len(x.tokens))
	for i := range arr {
		arr[i] = i
	}
	sort.Slice(arr, func(a, b int) bool {
		return content[x.tokens[arr[a]].Start:] < content[x.tokens[arr[b]].Start:]
	})
	return arr
}

// Document returns the indexed document.
func (x *WordIndex) Document() *text.Document { return x.doc }

// TokenCount reports the number of word occurrences in the document.
func (x *WordIndex) TokenCount() int { return len(x.tokens) }

// WordCount reports the number of distinct words in the document.
func (x *WordIndex) WordCount() int { return len(x.words) }

// Tokens returns all word occurrences sorted by start position. Callers must
// not modify the returned slice.
func (x *WordIndex) Tokens() []text.Token { return x.tokens }

// ForEachWord calls fn for every distinct word with its occurrence count,
// in sorted word order. It is the statistics collector's view of the
// inverted index.
func (x *WordIndex) ForEachWord(fn func(w string, occurrences int)) {
	for _, w := range x.words {
		fn(w, len(x.byWord[w]))
	}
}

// Occurrences returns the tokens of every occurrence of the exact word w,
// sorted by start position.
func (x *WordIndex) Occurrences(w string) []text.Token {
	idxs := x.byWord[w]
	out := make([]text.Token, len(idxs))
	for i, ti := range idxs {
		out[i] = x.tokens[ti]
	}
	return out
}

// MatchPoints returns the match points (start positions) of the exact word
// w, the paper's "sets of match points ... position in the text of indexed
// strings". Regions of width equal to the word are returned so that match
// points compose with the region operators.
func (x *WordIndex) MatchPoints(w string) region.Set {
	occ := x.Occurrences(w)
	rs := make([]region.Region, len(occ))
	for i, tok := range occ {
		rs[i] = region.Region{Start: tok.Start, End: tok.End}
	}
	return region.FromRegions(rs)
}

// PrefixMatchPoints returns match points of every word beginning with the
// given prefix, found by binary search over the sistring array exactly as in
// PAT's lexicographical search.
func (x *WordIndex) PrefixMatchPoints(prefix string) region.Set {
	content := x.doc.Content()
	sistring := x.sistringArray()
	lo := sort.Search(len(sistring), func(i int) bool {
		return content[x.tokens[sistring[i]].Start:] >= prefix
	})
	var rs []region.Region
	for i := lo; i < len(sistring); i++ {
		tok := x.tokens[sistring[i]]
		if !strings.HasPrefix(content[tok.Start:], prefix) {
			break
		}
		if tok.Len() >= len(prefix) {
			rs = append(rs, region.Region{Start: tok.Start, End: tok.End})
		}
	}
	return region.FromRegions(rs)
}

// SubstringMatchPoints returns a region for every occurrence of the
// substring s anywhere in the document (not only at word boundaries),
// using a byte-level suffix array built on first use — the lexical search
// PAT performs on arbitrary sistrings.
func (x *WordIndex) SubstringMatchPoints(s string) region.Set {
	if s == "" {
		return region.Empty
	}
	x.sufOnce.Do(func() {
		x.suffixes = suffixarray.New([]byte(x.doc.Content()))
	})
	offsets := x.suffixes.Lookup([]byte(s), -1)
	rs := make([]region.Region, len(offsets))
	for i, off := range offsets {
		rs[i] = region.Region{Start: off, End: off + len(s)}
	}
	return region.FromRegions(rs)
}

// PrefixWords returns the distinct words beginning with the given prefix.
func (x *WordIndex) PrefixWords(prefix string) []string {
	lo := sort.SearchStrings(x.words, prefix)
	var out []string
	for i := lo; i < len(x.words) && strings.HasPrefix(x.words[i], prefix); i++ {
		out = append(out, x.words[i])
	}
	return out
}

// SelectContaining implements the σ_w selection of the region algebra: the
// regions of s that contain (at least one occurrence of) exactly the word w,
// where containment means the whole word lies within the region. It runs in
// O(|s| log occ(w)).
func (x *WordIndex) SelectContaining(s region.Set, w string) region.Set {
	out, _ := x.SelectContainingCtl(s, w, nil)
	return out
}

// SelectContainingCtl is SelectContaining with cooperative cancellation:
// check is polled periodically during the selection sweep.
func (x *WordIndex) SelectContainingCtl(s region.Set, w string, check region.Checker) (region.Set, error) {
	occ := x.Occurrences(w)
	if len(occ) == 0 {
		return region.Empty, nil
	}
	return s.FilterCtl(func(r region.Region) bool {
		i := sort.Search(len(occ), func(i int) bool { return occ[i].Start >= r.Start })
		return i < len(occ) && occ[i].End <= r.End
	}, check)
}

// SelectPrefix returns the regions of s whose text starts with p. As with
// SelectEquals, the compiler emits it only for faithful leaf regions.
func (x *WordIndex) SelectPrefix(s region.Set, p string) region.Set {
	out, _ := x.SelectPrefixCtl(s, p, nil)
	return out
}

// SelectPrefixCtl is SelectPrefix with cooperative cancellation.
func (x *WordIndex) SelectPrefixCtl(s region.Set, p string, check region.Checker) (region.Set, error) {
	content := x.doc.Content()
	return s.FilterCtl(func(r region.Region) bool {
		return strings.HasPrefix(content[r.Start:r.End], p)
	}, check)
}

// SelectEquals returns the regions of s whose text is exactly w. The query
// compiler only emits it for leaf regions whose text equals their database
// value (bare-terminal productions); for other regions it falls back to
// word containment plus filtering.
func (x *WordIndex) SelectEquals(s region.Set, w string) region.Set {
	out, _ := x.SelectEqualsCtl(s, w, nil)
	return out
}

// SelectEqualsCtl is SelectEquals with cooperative cancellation.
func (x *WordIndex) SelectEqualsCtl(s region.Set, w string, check region.Checker) (region.Set, error) {
	content := x.doc.Content()
	return s.FilterCtl(func(r region.Region) bool {
		return content[r.Start:r.End] == w
	}, check)
}
