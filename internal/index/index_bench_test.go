package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"qof/internal/region"
	"qof/internal/text"
)

// benchDoc builds an n-word document with a skewed vocabulary.
func benchDoc(nWords int) *text.Document {
	rng := rand.New(rand.NewSource(3))
	var sb strings.Builder
	for i := 0; i < nWords; i++ {
		fmt.Fprintf(&sb, "w%03d ", rng.Intn(700))
	}
	return text.NewDocument("bench", sb.String())
}

func BenchmarkWordIndexBuild(b *testing.B) {
	doc := benchDoc(100000)
	b.SetBytes(int64(doc.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewWordIndex(doc)
	}
}

func BenchmarkMatchPoints(b *testing.B) {
	x := NewWordIndex(benchDoc(100000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MatchPoints("w042")
	}
}

func BenchmarkPrefixMatchPoints(b *testing.B) {
	x := NewWordIndex(benchDoc(100000))
	x.PrefixMatchPoints("w0") // force sistring construction outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.PrefixMatchPoints("w04")
	}
}

func BenchmarkSistringBuild(b *testing.B) {
	doc := benchDoc(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		x := NewWordIndex(doc)
		b.StartTimer()
		x.PrefixMatchPoints("w")
	}
}

func BenchmarkSelectContaining(b *testing.B) {
	doc := benchDoc(100000)
	x := NewWordIndex(doc)
	// 1000 disjoint regions of ~100 words each.
	var rs []region.Region
	step := doc.Len() / 1000
	for i := 0; i < 1000; i++ {
		rs = append(rs, region.Region{Start: i * step, End: i*step + step - 1})
	}
	set := region.FromRegions(rs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.SelectContaining(set, "w042")
	}
}

func BenchmarkSaveLoad(b *testing.B) {
	doc := benchDoc(50000)
	in := NewInstance(doc)
	var rs []region.Region
	step := doc.Len() / 2000
	for i := 0; i < 2000; i++ {
		rs = append(rs, region.Region{Start: i * step, End: i*step + step - 1})
	}
	in.Define("R", region.FromRegions(rs))
	var buf bytes.Buffer
	if err := in.Save(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(bytes.NewReader(data), doc); err != nil {
			b.Fatal(err)
		}
	}
}
