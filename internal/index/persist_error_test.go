package index

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"qof/internal/region"
	"qof/internal/text"
)

func savedIndex(t *testing.T) (*text.Document, []byte) {
	t.Helper()
	doc := text.NewDocument("t", "alpha beta gamma")
	in := NewInstance(doc)
	in.Define("Word", region.FromRegions([]region.Region{{Start: 0, End: 5}, {Start: 6, End: 10}}))
	var buf bytes.Buffer
	if err := in.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return doc, buf.Bytes()
}

func TestLoadCorruptMagic(t *testing.T) {
	doc, data := savedIndex(t)
	data[0] ^= 0xff
	if _, err := Load(bytes.NewReader(data), doc); !errors.Is(err, ErrBadMagic) {
		t.Errorf("corrupt magic: err = %v, want ErrBadMagic", err)
	}
}

func TestLoadVersionMismatch(t *testing.T) {
	doc, data := savedIndex(t)
	copy(data, "QOFIX99\n")
	_, err := Load(bytes.NewReader(data), doc)
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Errorf("future version: err = %v, want ErrUnsupportedVersion", err)
	}
	if err == nil || !strings.Contains(err.Error(), "QOFIX99") {
		t.Errorf("version error should name the offending magic, got %v", err)
	}
}

func TestLoadEmptyStreamEOF(t *testing.T) {
	doc, _ := savedIndex(t)
	if _, err := Load(bytes.NewReader(nil), doc); !errors.Is(err, io.EOF) {
		t.Errorf("empty stream: err = %v, want io.EOF in chain", err)
	}
}

func TestLoadTruncationWrapsEOF(t *testing.T) {
	doc, data := savedIndex(t)
	for cut := 0; cut < len(data); cut++ {
		_, err := Load(bytes.NewReader(data[:cut]), doc)
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes: Load succeeded", cut, len(data))
		}
	}
}
