package index

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"qof/internal/region"
	"qof/internal/text"
)

// Instance is an instance of a region index in the paper's sense: a mapping
// from region names to sets of regions over one indexed document, together
// with the document's word index. It is the store the region algebra
// evaluates against.
//
// An Instance is safe for concurrent readers once indexing is finished:
// Define/DefineScoped/Drop are build-time operations and must not overlap
// with queries, but every read path (Region, Words, Universe, ...) may be
// called from any number of goroutines. The only mutable state after
// building — the lazily computed universe here and the lazy sistring and
// suffix arrays in WordIndex — is guarded internally.
type Instance struct {
	words   *WordIndex
	regions map[string]region.Set
	scopes  map[string]string // name -> surrounding region name for selective indexes

	uniMu    sync.Mutex
	universe *region.Universe // guarded by uniMu; lazily built, nil when stale

	// epoch counts the mutations applied to this instance. Caches keyed by
	// instance contents (the engine's cross-query result cache) include the
	// epoch in their keys so Define/Drop/Splice invalidate them.
	epoch atomic.Uint64
}

// NewInstance creates an empty instance over the document.
func NewInstance(doc *text.Document) *Instance {
	return &Instance{
		words:   NewWordIndex(doc),
		regions: make(map[string]region.Set),
		scopes:  make(map[string]string),
	}
}

// Document returns the indexed document.
func (in *Instance) Document() *text.Document { return in.words.Document() }

// Words returns the word index of the document.
func (in *Instance) Words() *WordIndex { return in.words }

// Define installs (or replaces) the instance of the region name as a global
// (unscoped) index.
func (in *Instance) Define(name string, s region.Set) {
	in.regions[name] = s
	delete(in.scopes, name)
	in.invalidateUniverse()
}

// DefineScoped installs a selectively indexed region name whose instance
// covers only occurrences inside `within` regions (Section 7 of the paper:
// "index only those that reside in some Authors region"). Query compilation
// uses the name only on paths passing through the scope.
func (in *Instance) DefineScoped(name, within string, s region.Set) {
	in.regions[name] = s
	in.scopes[name] = within
	in.invalidateUniverse()
}

// Scope returns the scope of a selectively indexed name ("" for global or
// unindexed names).
func (in *Instance) Scope(name string) string { return in.scopes[name] }

// Drop removes a region name from the instance, e.g. to simulate a more
// partial indexing choice.
func (in *Instance) Drop(name string) {
	delete(in.regions, name)
	delete(in.scopes, name)
	in.invalidateUniverse()
}

func (in *Instance) invalidateUniverse() {
	in.uniMu.Lock()
	in.universe = nil
	in.uniMu.Unlock()
	in.epoch.Add(1)
}

// Epoch returns the instance's mutation counter. It increases on every
// Define, DefineScoped and Drop, and a spliced instance starts one past its
// parent, so equal epochs on one instance imply identical region contents.
func (in *Instance) Epoch() uint64 { return in.epoch.Load() }

// Has reports whether the region name is indexed.
func (in *Instance) Has(name string) bool {
	_, ok := in.regions[name]
	return ok
}

// Region returns the instance of the region name and whether it is indexed.
func (in *Instance) Region(name string) (region.Set, bool) {
	s, ok := in.regions[name]
	return s, ok
}

// MustRegion returns the instance of the region name, panicking if the name
// is not indexed.
func (in *Instance) MustRegion(name string) region.Set {
	s, ok := in.regions[name]
	if !ok {
		panic(fmt.Sprintf("index: region %q is not indexed", name))
	}
	return s
}

// Names returns the indexed region names in sorted order.
func (in *Instance) Names() []string {
	names := make([]string, 0, len(in.regions))
	for n := range in.regions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Universe returns the universe of all indexed regions, used by the direct
// inclusion operators. It is cached until the instance changes; the cache
// fill is guarded so concurrent queries may trigger it safely.
func (in *Instance) Universe() *region.Universe {
	in.uniMu.Lock()
	defer in.uniMu.Unlock()
	if in.universe == nil {
		sets := make([]region.Set, 0, len(in.regions))
		for _, s := range in.regions {
			sets = append(sets, s)
		}
		in.universe = region.NewUniverse(sets...)
	}
	return in.universe
}

// RegionCount reports the total number of indexed regions across all names.
func (in *Instance) RegionCount() int {
	n := 0
	for _, s := range in.regions {
		n += s.Len()
	}
	return n
}

// SizeBytes estimates the in-memory footprint of the index structures
// (region endpoints plus word-index postings), used by the indexing-tradeoff
// experiments. It deliberately excludes the document text itself.
func (in *Instance) SizeBytes() int {
	const regionBytes = 16 // two int64 endpoints
	size := in.RegionCount() * regionBytes
	size += in.words.TokenCount() * 24 // token (start,end) + sistring entry
	return size
}

// Restrict returns a new instance over the same document keeping only the
// given region names (names that are not indexed are ignored). It models the
// paper's partial indexing: same document, fewer region indices.
func (in *Instance) Restrict(names ...string) *Instance {
	out := &Instance{
		words:   in.words,
		regions: make(map[string]region.Set, len(names)),
		scopes:  make(map[string]string),
	}
	for _, n := range names {
		if s, ok := in.regions[n]; ok {
			out.regions[n] = s
			if w, ok := in.scopes[n]; ok {
				out.scopes[n] = w
			}
		}
	}
	return out
}
