package index

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"qof/internal/region"
	"qof/internal/text"
)

const sampleBib = `@INCOLLECTION{Corl82a,
AUTHOR = "G. F. Corliss and Y. F. Chang",
TITLE = "Solving Ordinary Differential Equations Using Taylor Series",
YEAR = "1982",
EDITOR = "A. Griewank and G. F. Corliss",
}`

func newTestIndex(t *testing.T) *WordIndex {
	t.Helper()
	return NewWordIndex(text.NewDocument("sample.bib", sampleBib))
}

func TestForEachWord(t *testing.T) {
	x := newTestIndex(t)
	total, distinct := 0, 0
	prev := ""
	x.ForEachWord(func(w string, occ int) {
		if w <= prev {
			t.Fatalf("words not in sorted order: %q after %q", w, prev)
		}
		prev = w
		if occ != len(x.Occurrences(w)) {
			t.Errorf("%q: reported %d, occurrences %d", w, occ, len(x.Occurrences(w)))
		}
		distinct++
		total += occ
	})
	if distinct != x.WordCount() || total != x.TokenCount() {
		t.Errorf("visited %d/%d, want %d/%d", distinct, total, x.WordCount(), x.TokenCount())
	}
}

func TestWordIndexCounts(t *testing.T) {
	x := newTestIndex(t)
	if x.TokenCount() == 0 || x.WordCount() == 0 {
		t.Fatal("empty index")
	}
	if x.WordCount() > x.TokenCount() {
		t.Error("more distinct words than tokens")
	}
	// "Corliss" appears twice, "Chang" once.
	if got := len(x.Occurrences("Corliss")); got != 2 {
		t.Errorf("Corliss occurrences = %d, want 2", got)
	}
	if got := len(x.Occurrences("Chang")); got != 1 {
		t.Errorf("Chang occurrences = %d, want 1", got)
	}
	if got := len(x.Occurrences("nosuchword")); got != 0 {
		t.Errorf("nosuchword occurrences = %d", got)
	}
}

func TestMatchPoints(t *testing.T) {
	x := newTestIndex(t)
	mp := x.MatchPoints("Chang")
	if mp.Len() != 1 {
		t.Fatalf("MatchPoints = %v", mp)
	}
	r := mp.At(0)
	if sampleBib[r.Start:r.End] != "Chang" {
		t.Errorf("match point text = %q", sampleBib[r.Start:r.End])
	}
}

func TestPrefixSearch(t *testing.T) {
	x := newTestIndex(t)
	// Words starting with "Cor": Corl82a, Corliss (x2).
	mp := x.PrefixMatchPoints("Cor")
	if mp.Len() != 3 {
		t.Fatalf("PrefixMatchPoints(Cor) = %v, want 3 regions", mp)
	}
	for _, r := range mp.Regions() {
		if !strings.HasPrefix(sampleBib[r.Start:r.End], "Cor") {
			t.Errorf("bad prefix match %q", sampleBib[r.Start:r.End])
		}
	}
	words := x.PrefixWords("Cor")
	if len(words) != 2 || words[0] != "Corl82a" || words[1] != "Corliss" {
		t.Errorf("PrefixWords = %v", words)
	}
	if x.PrefixMatchPoints("zzz").Len() != 0 {
		t.Error("no matches expected")
	}
	// The full-word prefix matches the word itself.
	if x.PrefixMatchPoints("Chang").Len() != 1 {
		t.Error("exact word as prefix")
	}
}

func TestPrefixMatchesExhaustive(t *testing.T) {
	// Property: PrefixMatchPoints(p) equals the brute-force scan over
	// tokens, for random documents and prefixes.
	rng := rand.New(rand.NewSource(7))
	alpha := []string{"ab", "abc", "b", "ba", "c", "ca", "cab"}
	for trial := 0; trial < 100; trial++ {
		var sb strings.Builder
		for i := 0; i < 40; i++ {
			sb.WriteString(alpha[rng.Intn(len(alpha))])
			sb.WriteByte(' ')
		}
		doc := text.NewDocument("t", sb.String())
		x := NewWordIndex(doc)
		prefix := alpha[rng.Intn(len(alpha))]
		got := x.PrefixMatchPoints(prefix)
		var want []region.Region
		for _, tok := range doc.Tokens() {
			if strings.HasPrefix(doc.Token(tok), prefix) {
				want = append(want, region.Region{Start: tok.Start, End: tok.End})
			}
		}
		if !got.Equal(region.FromRegions(want)) {
			t.Fatalf("trial %d: prefix %q: got %v want %v", trial, prefix, got, region.FromRegions(want))
		}
	}
}

func TestSelectContaining(t *testing.T) {
	x := newTestIndex(t)
	// Two regions: the AUTHOR line and the EDITOR line.
	author := lineRegion(t, "AUTHOR")
	editor := lineRegion(t, "EDITOR")
	s := region.FromRegions([]region.Region{author, editor})
	if got := x.SelectContaining(s, "Chang"); got.Len() != 1 || got.At(0) != author {
		t.Errorf("SelectContaining(Chang) = %v", got)
	}
	if got := x.SelectContaining(s, "Corliss"); got.Len() != 2 {
		t.Errorf("SelectContaining(Corliss) = %v", got)
	}
	if got := x.SelectContaining(s, "Griewank"); got.Len() != 1 || got.At(0) != editor {
		t.Errorf("SelectContaining(Griewank) = %v", got)
	}
	if got := x.SelectContaining(s, "zzz"); !got.IsEmpty() {
		t.Errorf("SelectContaining(zzz) = %v", got)
	}
}

func TestSelectContainingWholeWordsOnly(t *testing.T) {
	doc := text.NewDocument("t", "the Changing of Chang here")
	x := NewWordIndex(doc)
	whole := region.FromRegions([]region.Region{{Start: 0, End: doc.Len()}})
	// "Chang" as a whole word occurs once (inside "Changing" must not count).
	got := x.SelectContaining(whole, "Chang")
	if got.Len() != 1 {
		t.Fatalf("whole-document selection = %v", got)
	}
	firstHalf := region.FromRegions([]region.Region{{Start: 0, End: 12}}) // "the Changing"
	if got := x.SelectContaining(firstHalf, "Chang"); !got.IsEmpty() {
		t.Errorf("Chang-in-Changing selected: %v", got)
	}
}

func TestSelectEquals(t *testing.T) {
	x := newTestIndex(t)
	// Equality is raw text equality: a region holding `"1982"` (with
	// quotes) equals exactly that.
	start := strings.Index(sampleBib, `"1982"`)
	s := region.FromRegions([]region.Region{{Start: start, End: start + 6}})
	if got := x.SelectEquals(s, `"1982"`); got.Len() != 1 {
		t.Errorf("SelectEquals(quoted) = %v", got)
	}
	if got := x.SelectEquals(s, "1982"); !got.IsEmpty() {
		t.Errorf("SelectEquals(bare) = %v, want empty (raw equality)", got)
	}
	// A bare region equals its text.
	ystart := strings.Index(sampleBib, "1982")
	y := region.FromRegions([]region.Region{{Start: ystart, End: ystart + 4}})
	if got := x.SelectEquals(y, "1982"); got.Len() != 1 {
		t.Errorf("SelectEquals(bare region) = %v", got)
	}
	// Multi-word equality.
	astart := strings.Index(sampleBib, `G. F. Corliss and Y. F. Chang`)
	a := region.FromRegions([]region.Region{{Start: astart, End: astart + 29}})
	if got := x.SelectEquals(a, "G. F. Corliss and Y. F. Chang"); got.Len() != 1 {
		t.Errorf("multi-word SelectEquals = %v", got)
	}
}

// lineRegion finds the region of the line starting with the given keyword.
func lineRegion(t *testing.T, kw string) region.Region {
	t.Helper()
	start := strings.Index(sampleBib, kw)
	if start < 0 {
		t.Fatalf("keyword %q not in sample", kw)
	}
	end := start + strings.IndexByte(sampleBib[start:], '\n')
	return region.Region{Start: start, End: end}
}

func TestInstanceBasics(t *testing.T) {
	doc := text.NewDocument("sample.bib", sampleBib)
	in := NewInstance(doc)
	if in.Has("Reference") {
		t.Error("empty instance has no regions")
	}
	in.Define("Reference", region.FromRegions([]region.Region{{Start: 0, End: doc.Len()}}))
	in.Define("Author", region.FromRegions([]region.Region{{Start: 23, End: 60}}))
	if !in.Has("Reference") || !in.Has("Author") {
		t.Error("Has")
	}
	if got := in.Names(); len(got) != 2 || got[0] != "Author" || got[1] != "Reference" {
		t.Errorf("Names = %v", got)
	}
	if in.RegionCount() != 2 {
		t.Errorf("RegionCount = %d", in.RegionCount())
	}
	if _, ok := in.Region("Nope"); ok {
		t.Error("Region(Nope)")
	}
	if got := in.MustRegion("Author"); got.Len() != 1 {
		t.Errorf("MustRegion = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustRegion on unknown name must panic")
			}
		}()
		in.MustRegion("Nope")
	}()
	u := in.Universe()
	if u.All().Len() != 2 {
		t.Errorf("Universe = %v", u.All())
	}
	// Universe cache invalidation.
	in.Define("Editor", region.FromRegions([]region.Region{{Start: 100, End: 130}}))
	if in.Universe().All().Len() != 3 {
		t.Error("universe not rebuilt after Define")
	}
	in.Drop("Editor")
	if in.Universe().All().Len() != 2 {
		t.Error("universe not rebuilt after Drop")
	}
	if in.SizeBytes() <= 0 {
		t.Error("SizeBytes")
	}
}

func TestRestrict(t *testing.T) {
	doc := text.NewDocument("d", "a b c")
	in := NewInstance(doc)
	in.Define("A", region.FromRegions([]region.Region{{Start: 0, End: 1}}))
	in.Define("B", region.FromRegions([]region.Region{{Start: 2, End: 3}}))
	r := in.Restrict("A", "Missing")
	if !r.Has("A") || r.Has("B") || r.Has("Missing") {
		t.Errorf("Restrict: %v", r.Names())
	}
	if r.Document() != doc {
		t.Error("Restrict must share document")
	}
}

func TestDefineScoped(t *testing.T) {
	doc := text.NewDocument("d", "a b c d")
	in := NewInstance(doc)
	in.DefineScoped("Name", "Authors", region.FromRegions([]region.Region{{Start: 0, End: 1}}))
	if in.Scope("Name") != "Authors" {
		t.Errorf("Scope = %q", in.Scope("Name"))
	}
	if in.Scope("Missing") != "" {
		t.Error("unknown scope")
	}
	// Redefining globally clears the scope.
	in.Define("Name", region.FromRegions([]region.Region{{Start: 0, End: 1}}))
	if in.Scope("Name") != "" {
		t.Error("Define must clear scope")
	}
	in.DefineScoped("Name", "Editors", region.Empty)
	in.Drop("Name")
	if in.Scope("Name") != "" {
		t.Error("Drop must clear scope")
	}
	// Restrict keeps scopes.
	in.DefineScoped("Last", "Authors", region.Empty)
	in.Define("Ref", region.Empty)
	r := in.Restrict("Last", "Ref")
	if r.Scope("Last") != "Authors" || r.Scope("Ref") != "" {
		t.Error("Restrict scope propagation")
	}
}

func TestSaveLoadPreservesScopes(t *testing.T) {
	doc := text.NewDocument("d", "a b c d")
	in := NewInstance(doc)
	in.Define("Ref", region.FromRegions([]region.Region{{Start: 0, End: 7}}))
	in.DefineScoped("Name", "Authors", region.FromRegions([]region.Region{{Start: 2, End: 3}}))
	var buf bytes.Buffer
	if err := in.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scope("Name") != "Authors" || got.Scope("Ref") != "" {
		t.Errorf("scopes after load: Name=%q Ref=%q", got.Scope("Name"), got.Scope("Ref"))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	doc := text.NewDocument("sample.bib", sampleBib)
	in := NewInstance(doc)
	in.Define("Reference", region.FromRegions([]region.Region{{Start: 0, End: doc.Len()}}))
	in.Define("Author", region.FromRegions([]region.Region{{Start: 23, End: 60}, {Start: 23, End: 40}}))
	in.Define("Empty", region.Empty)

	var buf bytes.Buffer
	if err := in.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf, doc)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(got.Names()) != 3 {
		t.Fatalf("Names = %v", got.Names())
	}
	for _, name := range in.Names() {
		a, b := in.MustRegion(name), got.MustRegion(name)
		if !a.Equal(b) {
			t.Errorf("region %q: %v != %v", name, a, b)
		}
	}
	if got.Words().TokenCount() != in.Words().TokenCount() {
		t.Errorf("token count %d != %d", got.Words().TokenCount(), in.Words().TokenCount())
	}
	// Loaded index answers queries identically.
	if got.Words().MatchPoints("Chang").Len() != 1 {
		t.Error("loaded word index broken")
	}
}

func TestLoadRejectsChangedDocument(t *testing.T) {
	doc := text.NewDocument("sample.bib", sampleBib)
	in := NewInstance(doc)
	var buf bytes.Buffer
	if err := in.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := text.NewDocument("sample.bib", sampleBib+" tampered")
	if _, err := Load(bytes.NewReader(buf.Bytes()), other); err != ErrIndexMismatch {
		t.Errorf("Load on changed doc: err = %v, want ErrIndexMismatch", err)
	}
	// Same length, different content.
	mutated := []byte(sampleBib)
	mutated[0] = '#'
	other2 := text.NewDocument("sample.bib", string(mutated))
	if _, err := Load(bytes.NewReader(buf.Bytes()), other2); err != ErrIndexMismatch {
		t.Errorf("Load on mutated doc: err = %v, want ErrIndexMismatch", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	doc := text.NewDocument("d", "x")
	if _, err := Load(bytes.NewReader([]byte("not an index")), doc); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil), doc); err == nil {
		t.Error("empty input accepted")
	}
}

func TestSaveLoadLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		sb.WriteString("w")
		sb.WriteString(strings.Repeat("x", rng.Intn(5)))
		sb.WriteByte(' ')
	}
	doc := text.NewDocument("big", sb.String())
	in := NewInstance(doc)
	var rs []region.Region
	for i := 0; i < 500; i++ {
		a := rng.Intn(doc.Len())
		b := a + rng.Intn(doc.Len()-a)
		rs = append(rs, region.Region{Start: a, End: b + 1})
	}
	in.Define("R", region.FromRegions(rs))
	var buf bytes.Buffer
	if err := in.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, doc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.MustRegion("R").Equal(in.MustRegion("R")) {
		t.Error("round trip mismatch")
	}
}

func TestSubstringMatchPoints(t *testing.T) {
	x := newTestIndex(t)
	// "114--144" spans words; substring search finds it.
	got := x.SubstringMatchPoints("ing Taylor")
	if got.Len() != 1 {
		t.Fatalf("substring = %v", got)
	}
	r := got.At(0)
	if sampleBib[r.Start:r.End] != "ing Taylor" {
		t.Errorf("text = %q", sampleBib[r.Start:r.End])
	}
	// Multiple occurrences.
	if got := x.SubstringMatchPoints("Corliss"); got.Len() != 2 {
		t.Errorf("Corliss = %v", got)
	}
	if got := x.SubstringMatchPoints("zzz"); !got.IsEmpty() {
		t.Errorf("absent = %v", got)
	}
	if got := x.SubstringMatchPoints(""); !got.IsEmpty() {
		t.Errorf("empty = %v", got)
	}
}

func TestLoadFuzzedBytesNeverPanics(t *testing.T) {
	// Corrupting a valid index file must produce errors, not panics or
	// bogus instances that violate the document bounds.
	doc := text.NewDocument("f", strings.Repeat("word ", 40))
	in := NewInstance(doc)
	in.Define("R", region.FromRegions([]region.Region{{Start: 0, End: 10}, {Start: 20, End: 30}}))
	var buf bytes.Buffer
	if err := in.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		data := append([]byte(nil), valid...)
		for k := 0; k < 1+rng.Intn(3); k++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			got, err := Load(bytes.NewReader(data), doc)
			if err != nil {
				return
			}
			for _, name := range got.Names() {
				for _, r := range got.MustRegion(name).Regions() {
					if r.Start < 0 || r.End > doc.Len() || r.Start > r.End {
						t.Fatalf("trial %d: out-of-bounds region %v accepted", trial, r)
					}
				}
			}
		}()
	}
	// Truncations too.
	for cut := 0; cut < len(valid); cut += 7 {
		if _, err := Load(bytes.NewReader(valid[:cut]), doc); err == nil && cut < len(valid) {
			t.Fatalf("truncated index (%d bytes) accepted", cut)
		}
	}
}

// TestSpliceMatchesFresh is the splice correctness property: for random
// documents and random edits, the spliced word index is indistinguishable
// from one built from scratch over the edited document.
func TestSpliceMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	words := []string{"alpha", "beta", "gamma", "x1", "", "-", "  "}
	randText := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			if rng.Intn(3) > 0 {
				sb.WriteByte(' ')
			}
		}
		return sb.String()
	}
	for trial := 0; trial < 400; trial++ {
		oldContent := randText(30)
		oldDoc := text.NewDocument("old", oldContent)
		old := NewWordIndex(oldDoc)

		// Random edit: replace [a, b) by replacement text.
		a := rng.Intn(len(oldContent) + 1)
		b := a + rng.Intn(len(oldContent)-a+1)
		repl := randText(rng.Intn(6))
		newContent := oldContent[:a] + repl + oldContent[b:]
		newDoc := text.NewDocument("new", newContent)

		got := old.Splice(newDoc, a, b, a+len(repl))
		want := NewWordIndex(newDoc)

		if got.TokenCount() != want.TokenCount() || got.WordCount() != want.WordCount() {
			t.Fatalf("trial %d: edit [%d,%d)->%q on %q:\n tokens %d vs %d, words %d vs %d",
				trial, a, b, repl, oldContent,
				got.TokenCount(), want.TokenCount(), got.WordCount(), want.WordCount())
		}
		for k, tok := range want.Tokens() {
			if got.Tokens()[k] != tok {
				t.Fatalf("trial %d: token %d: %v vs %v", trial, k, got.Tokens()[k], tok)
			}
		}
		for _, w := range want.PrefixWords("") {
			a := got.MatchPoints(w)
			b := want.MatchPoints(w)
			if !a.Equal(b) {
				t.Fatalf("trial %d: word %q: %v vs %v", trial, w, a, b)
			}
		}
		// Prefix search works on the spliced index (lazy sistrings).
		if !got.PrefixMatchPoints("al").Equal(want.PrefixMatchPoints("al")) {
			t.Fatalf("trial %d: prefix search differs", trial)
		}
	}
}
