package index

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"qof/internal/faultinject"
	"qof/internal/region"
	"qof/internal/text"
)

// On-disk index format. All integers are unsigned varints; token and region
// start positions are delta-encoded against the previous entry, which keeps
// indexes for large documents compact. The document text itself is not
// stored: the loader re-attaches the index to a document and verifies the
// document has not changed using its length and CRC.
const indexMagic = "QOFIX01\n"

// ErrIndexMismatch is returned by Load when the persisted index was built
// over a different document than the one supplied.
var ErrIndexMismatch = errors.New("index: persisted index does not match document")

var (
	// ErrBadMagic reports a stream that is not a qof index file at all.
	ErrBadMagic = errors.New("index: bad magic (not a qof index file)")
	// ErrUnsupportedVersion reports a qof index file written by a
	// different, incompatible format version.
	ErrUnsupportedVersion = errors.New("index: unsupported format version")
)

// Save writes the instance (word tokens and all region indices) to w.
func (in *Instance) Save(w io.Writer) error {
	if err := faultinject.Hit(faultinject.PersistSave); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return err
	}
	doc := in.Document()
	writeString(bw, doc.Name())
	writeUvarint(bw, uint64(doc.Len()))
	writeUvarint(bw, uint64(crc32.ChecksumIEEE([]byte(doc.Content()))))

	toks := in.words.Tokens()
	writeUvarint(bw, uint64(len(toks)))
	prev := 0
	for _, t := range toks {
		writeUvarint(bw, uint64(t.Start-prev))
		writeUvarint(bw, uint64(t.End-t.Start))
		prev = t.Start
	}

	names := in.Names()
	writeUvarint(bw, uint64(len(names)))
	for _, name := range names {
		writeString(bw, name)
		writeString(bw, in.scopes[name])
		s := in.regions[name]
		writeUvarint(bw, uint64(s.Len()))
		prev := 0
		for _, r := range s.Regions() {
			writeUvarint(bw, uint64(r.Start-prev))
			writeUvarint(bw, uint64(r.End-r.Start))
			prev = r.Start
		}
	}
	return bw.Flush()
}

// Load reads an instance previously written by Save and re-attaches it to
// doc. It returns ErrIndexMismatch if doc differs from the document the
// index was built over.
func Load(r io.Reader, doc *text.Document) (*Instance, error) {
	if err := faultinject.Hit(faultinject.PersistLoad); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		if bytes.HasPrefix(magic, []byte("QOFIX")) {
			return nil, fmt.Errorf("%w: got %q, want %q", ErrUnsupportedVersion, magic, indexMagic)
		}
		return nil, ErrBadMagic
	}
	if _, err := readString(br); err != nil { // stored name is informational
		return nil, fmt.Errorf("index: reading document name: %w", err)
	}
	docLen, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading document length: %w", err)
	}
	sum, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading document checksum: %w", err)
	}
	if int(docLen) != doc.Len() || uint32(sum) != crc32.ChecksumIEEE([]byte(doc.Content())) {
		return nil, ErrIndexMismatch
	}

	nTok, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading token count: %w", err)
	}
	toks := make([]text.Token, nTok)
	prev := uint64(0)
	for i := range toks {
		ds, err := readUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading token table: %w", err)
		}
		ln, err := readUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading token table: %w", err)
		}
		start := prev + ds
		if start+ln > docLen {
			return nil, errors.New("index: corrupt token table")
		}
		toks[i] = text.Token{Start: int(start), End: int(start + ln)}
		prev = start
	}
	in := &Instance{
		words:   newWordIndex(doc, toks),
		regions: make(map[string]region.Set),
		scopes:  make(map[string]string),
	}

	nNames, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading class count: %w", err)
	}
	for i := uint64(0); i < nNames; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading class name: %w", err)
		}
		scope, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading scope for %q: %w", name, err)
		}
		if scope != "" {
			in.scopes[name] = scope
		}
		cnt, err := readUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: reading region count for %q: %w", name, err)
		}
		rs := make([]region.Region, cnt)
		prev := uint64(0)
		for j := range rs {
			ds, err := readUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: reading region table for %q: %w", name, err)
			}
			ln, err := readUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: reading region table for %q: %w", name, err)
			}
			start := prev + ds
			if start+ln > docLen {
				return nil, fmt.Errorf("index: corrupt region table for %q", name)
			}
			rs[j] = region.Region{Start: int(start), End: int(start + ln)}
			prev = start
		}
		in.regions[name] = region.FromRegions(rs)
	}
	return in, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", errors.New("index: unreasonable string length")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
