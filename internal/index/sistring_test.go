package index

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"qof/internal/text"
)

// TestSuffixRanksMatchesNaive checks the prefix-doubling ranks against a
// direct sort of all suffixes on random and adversarially repetitive inputs.
func TestSuffixRanksMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 300)
	for i := range random {
		random[i] = byte('a' + rng.Intn(4))
	}
	cases := map[string]string{
		"empty":      "",
		"single":     "x",
		"random":     string(random),
		"repetitive": strings.Repeat("abc ", 100),
		"runs":       strings.Repeat("a", 200) + strings.Repeat("b", 100),
		"mixed":      "the cat saw the cat saw the dog",
	}
	for name, s := range cases {
		t.Run(name, func(t *testing.T) {
			got := suffixRanks(s)
			order := make([]int, len(s))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool { return s[order[a]:] < s[order[b]:] })
			for rank, off := range order {
				if int(got[off]) != rank {
					t.Fatalf("suffix %q: rank %d, want %d", s[off:], got[off], rank)
				}
			}
		})
	}
}

// TestSistringRankedMatchesNaive checks that the ranked sistring build
// produces exactly the order of the naive full-suffix sort it replaced.
func TestSistringRankedMatchesNaive(t *testing.T) {
	docs := map[string]*text.Document{
		"bench":      benchDoc(500),
		"repetitive": text.NewDocument("rep", strings.Repeat("lorem ipsum dolor ", 60)),
		"empty":      text.NewDocument("empty", ""),
	}
	for name, doc := range docs {
		t.Run(name, func(t *testing.T) {
			x := NewWordIndex(doc)
			got := x.sistringArray()
			want := x.sortSistringNaive()
			if len(got) != len(want) {
				t.Fatalf("length %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sistring[%d] = token %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

// repetitiveDoc triggers the naive sort's quadratic behavior: every suffix
// comparison scans a long shared prefix.
func repetitiveDoc(nWords int) *text.Document {
	var sb strings.Builder
	for i := 0; i < nWords; i++ {
		sb.WriteString("lorem ipsum ")
	}
	return text.NewDocument("rep", sb.String())
}

func benchmarkSistring(b *testing.B, nWords int, naive bool) {
	doc := repetitiveDoc(nWords)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		x := NewWordIndex(doc)
		b.StartTimer()
		if naive {
			x.sortSistringNaive()
		} else {
			x.sistringArray()
		}
	}
}

func BenchmarkSistringRepetitive(b *testing.B) {
	for _, n := range []int{2000, 8000} {
		b.Run(fmt.Sprintf("ranked-%dw", n), func(b *testing.B) { benchmarkSistring(b, n, false) })
		b.Run(fmt.Sprintf("naive-%dw", n), func(b *testing.B) { benchmarkSistring(b, n, true) })
	}
}
