// Package bibtex provides the paper's running example as a reusable domain:
// a structuring schema for BIBTEX bibliography files (Figure 1 / Section
// 4.1) and a deterministic synthetic generator with controllable size and
// selectivity, used by the examples, the integration tests and every
// benchmark that reproduces a BIBTEX experiment.
package bibtex

import (
	"qof/internal/compile"
	"qof/internal/grammar"
)

// Non-terminal names of the schema, exported for queries and index specs.
const (
	NTRefSet    = "Ref_Set"
	NTReference = "Reference"
	NTKey       = "Key"
	NTAuthors   = "Authors"
	NTEditors   = "Editors"
	NTName      = "Name"
	NTFirstName = "First_Name"
	NTLastName  = "Last_Name"
	NTTitle     = "Title"
	NTBooktitle = "Booktitle"
	NTYear      = "Year"
	NTPublisher = "Publisher"
	NTPages     = "Pages"
	NTKeywords  = "Keywords"
	NTKeyword   = "Keyword"
	NTReferred  = "Referred"
	NTRefKey    = "RefKey"
	NTAbstract  = "Abstract"
)

// ClassReferences is the XSQL class bound to Reference regions.
const ClassReferences = "References"

// Grammar builds the BIBTEX structuring schema. The layout follows the
// paper's Figure 1; every field is wrapped in its delimiters so that parent
// and child regions never coincide.
func Grammar() *grammar.Grammar {
	g := grammar.NewGrammar(NTRefSet)
	g.MustAddTerminal("Ident", `[A-Za-z][A-Za-z0-9]*`)
	g.MustAddTerminal("Initials", `[A-Z]\.(?: [A-Z]\.)*`)
	g.MustAddTerminal("Word", `[A-Za-z][A-Za-z0-9'-]*`)
	g.MustAddTerminal("Text", `[^"]*`)
	g.MustAddTerminal("Phrase", `[A-Za-z0-9][A-Za-z0-9 '-]*`)
	g.MustAddTerminal("Num", `[0-9]+`)
	g.MustAddTerminal("PageRange", `[0-9]+--[0-9]+`)

	g.AddProduction(NTRefSet, grammar.Rep(NTReference, ""))
	g.AddProduction(NTReference,
		grammar.Lit("@INCOLLECTION{"), grammar.NT(NTKey), grammar.Lit(","),
		grammar.Lit("AUTHOR ="), grammar.NT(NTAuthors), grammar.Lit(","),
		grammar.Lit("TITLE ="), grammar.NT(NTTitle), grammar.Lit(","),
		grammar.Lit("BOOKTITLE ="), grammar.NT(NTBooktitle), grammar.Lit(","),
		grammar.Lit("YEAR ="), grammar.NT(NTYear), grammar.Lit(","),
		grammar.Lit("EDITOR ="), grammar.NT(NTEditors), grammar.Lit(","),
		grammar.Lit("PUBLISHER ="), grammar.NT(NTPublisher), grammar.Lit(","),
		grammar.Lit("PAGES ="), grammar.NT(NTPages), grammar.Lit(","),
		grammar.Lit("REFERRED ="), grammar.NT(NTReferred), grammar.Lit(","),
		grammar.Lit("KEYWORDS ="), grammar.NT(NTKeywords), grammar.Lit(","),
		grammar.Lit("ABSTRACT ="), grammar.NT(NTAbstract), grammar.Lit(","),
		grammar.Lit("}"))
	g.AddProduction(NTKey, grammar.Term("Ident"))
	g.AddProduction(NTAuthors, grammar.Lit(`"`), grammar.Rep(NTName, "and"), grammar.Lit(`"`))
	g.AddProduction(NTEditors, grammar.Lit(`"`), grammar.Rep(NTName, "and"), grammar.Lit(`"`))
	g.AddProduction(NTName, grammar.NT(NTFirstName), grammar.NT(NTLastName))
	g.AddProduction(NTFirstName, grammar.Term("Initials"))
	g.AddProduction(NTLastName, grammar.Term("Word"))
	g.AddProduction(NTTitle, grammar.Lit(`"`), grammar.Term("Text"), grammar.Lit(`"`))
	g.AddProduction(NTBooktitle, grammar.Lit(`"`), grammar.Term("Text"), grammar.Lit(`"`))
	g.AddProduction(NTYear, grammar.Lit(`"`), grammar.Term("Num"), grammar.Lit(`"`))
	g.AddProduction(NTPublisher, grammar.Lit(`"`), grammar.Term("Text"), grammar.Lit(`"`))
	g.AddProduction(NTPages, grammar.Lit(`"`), grammar.Term("PageRange"), grammar.Lit(`"`))
	g.AddProduction(NTReferred, grammar.Lit(`"`), grammar.Rep(NTRefKey, ";"), grammar.Lit(`"`))
	g.AddProduction(NTRefKey, grammar.Lit("["), grammar.Term("Ident"), grammar.Lit("]"))
	g.AddProduction(NTKeywords, grammar.Lit(`"`), grammar.Rep(NTKeyword, ";"), grammar.Lit(`"`))
	g.AddProduction(NTKeyword, grammar.Term("Phrase"))
	g.AddProduction(NTAbstract, grammar.Lit(`"`), grammar.Term("Text"), grammar.Lit(`"`))
	if err := g.Validate(); err != nil {
		panic("bibtex: invalid grammar: " + err.Error())
	}
	return g
}

// Catalog builds the compile catalog with the standard class binding
// (References → Reference).
func Catalog() *compile.Catalog {
	cat := compile.NewCatalog(Grammar())
	cat.Bind(ClassReferences, NTReference)
	return cat
}

// SampleEntry reproduces the paper's Figure 1 entry in this schema's
// canonical layout. It is the quickstart document of the examples and the
// golden input of the figure tests.
const SampleEntry = `@INCOLLECTION{Corl82a,
AUTHOR = "G. F. Corliss and Y. F. Chang",
TITLE = "Solving Ordinary Differential Equations Using Taylor Series",
BOOKTITLE = "Automatic Differentiation of Algorithms",
YEAR = "1982",
EDITOR = "A. Griewank and G. F. Corliss",
PUBLISHER = "SIAM",
PAGES = "114--144",
REFERRED = "[Aber88a]; [Corl88a]; [Gupt85a]",
KEYWORDS = "point algorithm; Taylor series; radius of convergence",
ABSTRACT = "A Fortran pre-processor uses automatic differentiation to write a Fortran program to solve the system",
}
`
