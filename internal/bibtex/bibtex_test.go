package bibtex

import (
	"strings"
	"testing"

	"qof/internal/db"
	"qof/internal/grammar"
	"qof/internal/text"
)

func TestSampleEntryParses(t *testing.T) {
	g := Grammar()
	doc := text.NewDocument("sample.bib", SampleEntry)
	tree, err := g.Parse(doc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	refs := tree.Find(NTReference)
	if len(refs) != 1 {
		t.Fatalf("references = %d", len(refs))
	}
	v := grammar.BuildValue(refs[0], doc.Content()).(*db.Tuple)
	if key, _ := v.Get(NTKey); key.(db.String) != "Corl82a" {
		t.Errorf("Key = %v", key)
	}
	lasts := db.NavigateStrings(v, db.PathOf(NTAuthors, NTName, NTLastName))
	if len(lasts) != 2 || lasts[0] != "Corliss" || lasts[1] != "Chang" {
		t.Errorf("author last names = %v", lasts)
	}
	eds := db.NavigateStrings(v, db.PathOf(NTEditors, NTName, NTLastName))
	if len(eds) != 2 || eds[0] != "Griewank" || eds[1] != "Corliss" {
		t.Errorf("editor last names = %v", eds)
	}
	kws := db.NavigateStrings(v, db.PathOf(NTKeywords, NTKeyword))
	if len(kws) != 3 || kws[0] != "point algorithm" {
		t.Errorf("keywords = %v", kws)
	}
	refsTo := db.NavigateStrings(v, db.PathOf(NTReferred, NTRefKey))
	if len(refsTo) != 3 || refsTo[0] != "Aber88a" {
		t.Errorf("referred = %v", refsTo)
	}
	if pages, _ := v.Get(NTPages); pages.(db.String) != "114--144" {
		t.Errorf("Pages = %v", pages)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(50)
	a, sa := Generate(cfg)
	b, sb := Generate(cfg)
	if a != b || sa != sb {
		t.Fatal("generation is not deterministic")
	}
	cfg.Seed = 7
	c, _ := Generate(cfg)
	if a == c {
		t.Fatal("seed has no effect")
	}
}

func TestGenerateParsesAndCounts(t *testing.T) {
	cfg := DefaultConfig(120)
	cfg.TargetAuthorShare = 0.2
	cfg.TargetEditorShare = 0.3
	content, st := Generate(cfg)
	g := Grammar()
	doc := text.NewDocument("gen.bib", content)
	tree, err := g.Parse(doc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	refs := tree.Find(NTReference)
	if len(refs) != 120 {
		t.Fatalf("references = %d", len(refs))
	}
	// Recompute ground truth through the database image and compare.
	var asAuthor, asEditor, either, selfEd int
	for _, r := range refs {
		v := grammar.BuildValue(r, content)
		au := db.NavigateStrings(v, db.PathOf(NTAuthors, NTName, NTLastName))
		ed := db.NavigateStrings(v, db.PathOf(NTEditors, NTName, NTLastName))
		hasAu := contains(au, cfg.TargetName)
		hasEd := contains(ed, cfg.TargetName)
		if hasAu {
			asAuthor++
		}
		if hasEd {
			asEditor++
		}
		if hasAu || hasEd {
			either++
		}
		if intersects(au, ed) {
			selfEd++
		}
	}
	if asAuthor != st.TargetAsAuthor || asEditor != st.TargetAsEditor ||
		either != st.TargetAsEither || selfEd != st.SelfEditedByAuth {
		t.Errorf("stats mismatch: parsed (%d,%d,%d,%d) vs generator (%d,%d,%d,%d)",
			asAuthor, asEditor, either, selfEd,
			st.TargetAsAuthor, st.TargetAsEditor, st.TargetAsEither, st.SelfEditedByAuth)
	}
	if st.TargetAsAuthor == 0 || st.TargetAsEditor == 0 {
		t.Error("target shares produced no occurrences; experiments would be vacuous")
	}
	if st.TargetAsEither >= 120 {
		t.Error("target occurs everywhere; selectivity lost")
	}
}

func TestGeneratedRegionsNestStrictly(t *testing.T) {
	content, _ := Generate(DefaultConfig(30))
	g := Grammar()
	doc := text.NewDocument("gen.bib", content)
	in, _, err := g.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Universe().ProperlyNested() {
		t.Fatal("regions must nest properly")
	}
	if err := g.DeriveRIG().Satisfies(in); err != nil {
		t.Fatalf("instance violates derived RIG: %v", err)
	}
	// No two regions of different names coincide (strict-inclusion model).
	seen := make(map[[2]int]string)
	for _, name := range in.Names() {
		for _, r := range in.MustRegion(name).Regions() {
			k := [2]int{r.Start, r.End}
			if other, ok := seen[k]; ok && other != name {
				t.Fatalf("regions coincide: %s and %s at %v", other, name, r)
			}
			seen[k] = name
		}
	}
}

func TestCatalogBinding(t *testing.T) {
	cat := Catalog()
	nt, ok := cat.ClassNT(ClassReferences)
	if !ok || nt != NTReference {
		t.Fatalf("binding = %q %v", nt, ok)
	}
	if !cat.RIG.IsPath(NTReference, NTAuthors, NTName, NTLastName) {
		t.Error("paper's query path missing from RIG")
	}
	if !strings.Contains(cat.RIG.String(), "Authors -> Name") {
		t.Error("RIG edges")
	}
}

func contains(ss []string, w string) bool {
	for _, s := range ss {
		if s == w {
			return true
		}
	}
	return false
}

func intersects(a, b []string) bool {
	set := make(map[string]bool, len(a))
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		if set[s] {
			return true
		}
	}
	return false
}
