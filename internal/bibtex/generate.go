package bibtex

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config controls the synthetic bibliography generator. The zero value is
// not useful; start from DefaultConfig.
type Config struct {
	// NumRefs is the number of references to generate.
	NumRefs int
	// Seed makes generation deterministic.
	Seed int64
	// MaxAuthors and MaxEditors bound the people per field (≥1 each).
	MaxAuthors int
	MaxEditors int
	// AbstractWords is the abstract length in words.
	AbstractWords int
	// MaxKeywords bounds keywords per reference (≥1).
	MaxKeywords int

	// TargetName is a last name with controlled selectivity: it appears
	// as an author in TargetAuthorShare of the references and as an
	// editor in TargetEditorShare of them (shares in [0,1], applied
	// independently). Every experiment queries this name, so the shares
	// directly set answer size and candidate-set inflation.
	TargetName        string
	TargetAuthorShare float64
	TargetEditorShare float64
}

// DefaultConfig generates a workload resembling the paper's scenario:
// the target name "Chang" authors 1% of the references and edits 5%.
func DefaultConfig(numRefs int) Config {
	return Config{
		NumRefs:           numRefs,
		Seed:              1994,
		MaxAuthors:        3,
		MaxEditors:        2,
		AbstractWords:     30,
		MaxKeywords:       4,
		TargetName:        "Chang",
		TargetAuthorShare: 0.01,
		TargetEditorShare: 0.05,
	}
}

// Stats reports ground-truth facts about a generated corpus, used by tests
// to validate query answers independently of the engine.
type Stats struct {
	NumRefs          int
	TargetAsAuthor   int // references where TargetName is an author
	TargetAsEditor   int // references where TargetName is an editor
	TargetAsEither   int // union of the two
	SelfEditedByAuth int // references where some editor is also an author
}

// Generate produces a deterministic synthetic bibliography and its ground
// truth.
func Generate(cfg Config) (string, Stats) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sb strings.Builder
	var st Stats
	st.NumRefs = cfg.NumRefs
	for i := 0; i < cfg.NumRefs; i++ {
		authors := people(rng, 1+rng.Intn(max(cfg.MaxAuthors, 1)))
		editors := people(rng, 1+rng.Intn(max(cfg.MaxEditors, 1)))
		asAuthor := rng.Float64() < cfg.TargetAuthorShare
		asEditor := rng.Float64() < cfg.TargetEditorShare
		if cfg.TargetName != "" {
			if asAuthor {
				authors[rng.Intn(len(authors))] = person{first: initials(rng), last: cfg.TargetName}
			}
			if asEditor {
				editors[rng.Intn(len(editors))] = person{first: initials(rng), last: cfg.TargetName}
			}
		}
		// Recompute ground truth from the final lists (a random author
		// could collide with the target name).
		isAuthor := containsLast(authors, cfg.TargetName)
		isEditor := containsLast(editors, cfg.TargetName)
		if isAuthor {
			st.TargetAsAuthor++
		}
		if isEditor {
			st.TargetAsEditor++
		}
		if isAuthor || isEditor {
			st.TargetAsEither++
		}
		if sharesLast(authors, editors) {
			st.SelfEditedByAuth++
		}

		fmt.Fprintf(&sb, "@INCOLLECTION{%s,\n", fmt.Sprintf("Key%06d", i))
		fmt.Fprintf(&sb, "AUTHOR = %q,\n", joinPeople(authors))
		fmt.Fprintf(&sb, "TITLE = %q,\n", titleFor(rng, i))
		fmt.Fprintf(&sb, "BOOKTITLE = %q,\n", "Proceedings of Volume "+word(rng))
		fmt.Fprintf(&sb, "YEAR = \"%d\",\n", 1970+rng.Intn(25))
		fmt.Fprintf(&sb, "EDITOR = %q,\n", joinPeople(editors))
		fmt.Fprintf(&sb, "PUBLISHER = %q,\n", publishers[rng.Intn(len(publishers))])
		lo := 1 + rng.Intn(400)
		fmt.Fprintf(&sb, "PAGES = \"%d--%d\",\n", lo, lo+rng.Intn(40))
		fmt.Fprintf(&sb, "REFERRED = %q,\n", referred(rng, i, cfg.NumRefs))
		fmt.Fprintf(&sb, "KEYWORDS = %q,\n", keywords(rng, 1+rng.Intn(max(cfg.MaxKeywords, 1))))
		fmt.Fprintf(&sb, "ABSTRACT = %q,\n", abstract(rng, cfg.AbstractWords))
		sb.WriteString("}\n")
	}
	return sb.String(), st
}

type person struct{ first, last string }

func people(rng *rand.Rand, n int) []person {
	out := make([]person, n)
	for i := range out {
		out[i] = person{first: initials(rng), last: lastNames[rng.Intn(len(lastNames))]}
	}
	return out
}

func containsLast(ps []person, last string) bool {
	for _, p := range ps {
		if p.last == last {
			return true
		}
	}
	return false
}

func sharesLast(a, b []person) bool {
	for _, p := range a {
		for _, q := range b {
			if p.last == q.last {
				return true
			}
		}
	}
	return false
}

func joinPeople(ps []person) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.first + " " + p.last
	}
	return strings.Join(parts, " and ")
}

func initials(rng *rand.Rand) string {
	n := 1 + rng.Intn(2)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = string(rune('A'+rng.Intn(26))) + "."
	}
	return strings.Join(parts, " ")
}

func titleFor(rng *rand.Rand, i int) string {
	return fmt.Sprintf("On the %s of %s Systems %d",
		capitalize(word(rng)), capitalize(word(rng)), i)
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func referred(rng *rand.Rand, i, total int) string {
	n := rng.Intn(4)
	parts := make([]string, 0, n)
	for k := 0; k < n; k++ {
		parts = append(parts, fmt.Sprintf("[Key%06d]", rng.Intn(max(total, 1))))
	}
	return strings.Join(parts, "; ")
}

func keywords(rng *rand.Rand, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = word(rng) + " " + word(rng)
	}
	return strings.Join(parts, "; ")
}

func abstract(rng *rand.Rand, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = word(rng)
	}
	return strings.Join(parts, " ")
}

// word draws from a skewed vocabulary: common words are drawn far more
// often than rare ones, approximating natural text.
func word(rng *rand.Rand) string {
	// Squaring the uniform draw skews towards low indexes.
	f := rng.Float64()
	return vocabulary[int(f*f*float64(len(vocabulary)))]
}

var publishers = []string{"SIAM", "ACM Press", "Springer", "North-Holland", "Wiley", "MIT Press"}

var lastNames = buildLastNames()

func buildLastNames() []string {
	base := []string{
		"Corliss", "Griewank", "Aberth", "Gupta", "Rall", "Moore", "Tompa",
		"Salminen", "Gonnet", "Abiteboul", "Cluet", "Kifer", "Sagiv",
		"Mendelzon", "Hull", "Vianu", "Ullman", "Codd", "Gray", "Stonebraker",
	}
	for i := 0; i < 180; i++ {
		base = append(base, fmt.Sprintf("Author%03d", i))
	}
	return base
}

var vocabulary = buildVocabulary()

func buildVocabulary() []string {
	base := []string{
		"the", "of", "a", "and", "to", "in", "for", "with", "on", "system",
		"algorithm", "differential", "equation", "automatic", "series",
		"taylor", "convergence", "radius", "program", "solve", "method",
		"numerical", "analysis", "error", "bound", "order", "point",
		"derivative", "function", "interval", "computation", "fortran",
	}
	for i := 0; i < 400; i++ {
		base = append(base, fmt.Sprintf("term%03d", i))
	}
	return base
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
