package bibtex

// Golden tests pinning the reproduction of the paper's figures: the sample
// entry (Figure 1), its parse tree with regions (Figure 2), and the partial
// RIG of Section 6.1 (Figure 3's indexing choice).

import (
	"strings"
	"testing"

	"qof/internal/text"
)

func TestFigureGoldens(t *testing.T) {
	g := Grammar()
	doc := text.NewDocument("sample.bib", SampleEntry)
	tree, err := g.Parse(doc)
	if err != nil {
		t.Fatal(err)
	}

	// Figure 2: the parse tree under full indexing. The exact skeleton of
	// the first levels is pinned; offsets are byte positions in
	// SampleEntry.
	dump := tree.Dump("")
	wantPrefix := strings.TrimLeft(`
Ref_Set [0,519)
  Reference [0,519)
    Key [14,21)
      <Ident> [14,21)
    Authors [32,63)
      Name [33,46)
        First_Name [33,38)
          <Initials> [33,38)
        Last_Name [39,46)
          <Word> [39,46)
      Name [51,62)
`, "\n")
	if !strings.HasPrefix(dump, wantPrefix) {
		t.Errorf("Figure 2 parse tree changed:\n%s", dump[:min(len(dump), 600)])
	}
	// Structural invariants of the figure: every Name sits under Authors
	// or Editors, every Last_Name under a Name.
	for _, name := range tree.Find(NTName) {
		if len(name.Find(NTLastName)) != 1 {
			t.Errorf("Name %v without exactly one Last_Name", name)
		}
	}
	if got := len(tree.Find(NTName)); got != 4 {
		t.Errorf("Figure 1 has 2 authors + 2 editors, found %d names", got)
	}

	// Figure 3 / Section 6.1: the RIG projected onto
	// {Reference, Key, Last_Name}.
	partial := g.DeriveRIG().Project(NTReference, NTKey, NTLastName)
	const wantRIG = "Reference -> Key\nReference -> Last_Name"
	if partial.String() != wantRIG {
		t.Errorf("Figure 3 partial RIG:\n%s\nwant:\n%s", partial, wantRIG)
	}

	// The Section 3.2 RIG fragment: Reference above Authors and Editors,
	// both above Name, Name above First/Last_Name.
	full := g.DeriveRIG()
	for _, e := range [][2]string{
		{NTReference, NTAuthors}, {NTReference, NTEditors},
		{NTAuthors, NTName}, {NTEditors, NTName},
		{NTName, NTFirstName}, {NTName, NTLastName},
	} {
		if !full.HasEdge(e[0], e[1]) {
			t.Errorf("RIG edge %v missing", e)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
