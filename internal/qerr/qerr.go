// Package qerr declares the typed sentinel errors of the resilience layer.
// They live in their own leaf package so that every layer (region kernels,
// algebra evaluator, engine, facade) can wrap them without import cycles;
// the public facade re-exports them as qof.ErrBudgetExceeded and
// qof.ErrInternal.
//
// Cancellation and deadlines are not redeclared here: those surface as
// context.Canceled and context.DeadlineExceeded, so callers use errors.Is
// with the standard sentinels.
package qerr

import "errors"

// ErrBudgetExceeded is wrapped by errors reporting that a query ran past a
// per-query resource budget (qof.WithMaxRegions, qof.WithMaxEvalBytes).
// Unlike a deadline it is deterministic: the same query over the same index
// under the same budget always trips at the same point.
var ErrBudgetExceeded = errors.New("resource budget exceeded")

// ErrInternal is wrapped by errors produced when a panic was recovered at an
// isolation boundary (the facade, a phase-2 worker, a per-file corpus
// evaluation). The engine remains usable after such an error: all shared
// state is immutable during execution, so an abandoned evaluation cannot
// tear it.
var ErrInternal = errors.New("internal error (recovered panic)")
