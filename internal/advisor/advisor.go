// Package advisor implements Section 7 of the paper: choosing what to
// index. Given a structuring schema and a query workload, it computes a
// region-index choice sufficient to fully compute every query with the
// indexing engine:
//
//   - the non-terminals explicitly mentioned by each query's optimized
//     inclusion expression must be indexed, and
//   - for every remaining ⊃d subexpression Ai ⊃d Aj, one non-terminal
//     (other than Ai, Aj) on each RIG path from Ai to Aj must be indexed,
//     so that non-direct inclusions can be ruled out — per the paper, one
//     per path suffices.
//
// The advisor additionally suggests selective (region-scoped) indexing when
// the workload only ever reaches a name through a single parent (the
// paper's "index only last names of authors" guideline), and verifies its
// recommendation by recompiling the workload against it.
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"qof/internal/compile"
	"qof/internal/grammar"
	"qof/internal/index"
	"qof/internal/optimizer"
	"qof/internal/region"
	"qof/internal/rig"
	"qof/internal/text"
	"qof/internal/xsql"
)

// QueryNeed records why names were selected for one query.
type QueryNeed struct {
	Query    string
	Explicit []string   // names in the optimized full-index expression
	Hitting  [][]string // per remaining ⊃d pair: the separator names chosen
	Exact    bool       // verification: the plan over the recommendation is exact
}

// Recommendation is the advisor's output.
type Recommendation struct {
	// Names is the recommended global region-index set.
	Names []string
	// Scoped lists optional selective-indexing refinements: names that
	// the workload only reaches through a single parent. Applying them
	// saves further space but (in this implementation) trades away the
	// exactness classification, so they are reported separately rather
	// than folded into Names.
	Scoped []grammar.ScopedName
	// PerQuery explains the choice.
	PerQuery []QueryNeed
	// FullCount is the number of names full indexing would use, for
	// savings reports.
	FullCount int
}

// Spec converts the recommendation into an index specification (globals
// only; see Scoped for the optional refinements).
func (r *Recommendation) Spec() grammar.IndexSpec {
	return grammar.IndexSpec{Names: append([]string(nil), r.Names...)}
}

func (r *Recommendation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "recommended indexes (%d of %d): %s\n",
		len(r.Names), r.FullCount, strings.Join(r.Names, ", "))
	for _, sc := range r.Scoped {
		fmt.Fprintf(&sb, "selective option: index %s only within %s\n", sc.Name, sc.Within)
	}
	for _, q := range r.PerQuery {
		fmt.Fprintf(&sb, "query %s: explicit %v", q.Query, q.Explicit)
		for _, h := range q.Hitting {
			fmt.Fprintf(&sb, ", separators %v", h)
		}
		fmt.Fprintf(&sb, " (exact=%v)\n", q.Exact)
	}
	return sb.String()
}

// Recommend computes an index recommendation for the workload.
func Recommend(cat *compile.Catalog, queries []*xsql.Query) (*Recommendation, error) {
	rec := &Recommendation{FullCount: len(cat.Grammar.FullIndexSpec().Names)}
	chosen := make(map[string]bool)
	parents := make(map[string]map[string]bool) // leaf -> set of direct parents used

	fullRIG := cat.RIG
	for _, q := range queries {
		need := QueryNeed{Query: q.String()}
		paths, err := workloadPaths(cat, q)
		if err != nil {
			return nil, err
		}
		for _, full := range paths {
			explicit, hitting := analyzePath(fullRIG, full)
			for _, n := range explicit {
				if !chosen[n] {
					chosen[n] = true
				}
			}
			need.Explicit = mergeUnique(need.Explicit, explicit)
			for _, h := range hitting {
				for _, n := range h {
					chosen[n] = true
				}
				need.Hitting = append(need.Hitting, h)
			}
			recordParent(parents, full)
		}
		rec.PerQuery = append(rec.PerQuery, need)
	}

	rec.Names = make([]string, 0, len(chosen))
	for n := range chosen {
		rec.Names = append(rec.Names, n)
	}
	sort.Strings(rec.Names)

	// Selective suggestions: a chosen name whose workload occurrences all
	// sit under one concrete parent.
	for leaf, ps := range parents {
		if !chosen[leaf] || len(ps) != 1 {
			continue
		}
		for p := range ps {
			if p != "*" && p != leaf {
				rec.Scoped = append(rec.Scoped, grammar.ScopedName{Name: leaf, Within: p})
			}
		}
	}
	sort.Slice(rec.Scoped, func(i, j int) bool { return rec.Scoped[i].Name < rec.Scoped[j].Name })

	// Verification: compile the workload against the recommendation and
	// record exactness. The verification instance only needs the indexed
	// name set, not real regions.
	verifyIn := emptyInstance(rec.Names)
	for i, q := range queries {
		plan, err := cat.Compile(q, verifyIn)
		if err != nil {
			return nil, err
		}
		exact := !plan.Trivial
		for _, vp := range plan.Vars {
			if !vp.Exact {
				exact = false
			}
		}
		rec.PerQuery[i].Exact = exact
	}
	return rec, nil
}

// workloadPaths extracts every concrete full path the query touches:
// comparison paths, join sides and the projection.
func workloadPaths(cat *compile.Catalog, q *xsql.Query) ([][]string, error) {
	var out [][]string
	addPath := func(p xsql.Path) error {
		nt, ok := cat.ClassNT(classOf(q, p.Var))
		if !ok {
			return fmt.Errorf("advisor: class for variable %q is not bound", p.Var)
		}
		paths, _ := cat.ResolvePaths(nt, p.Segs)
		out = append(out, paths...)
		return nil
	}
	for _, c := range xsql.Conds(q.Where) {
		switch c := c.(type) {
		case xsql.CmpConst:
			if err := addPath(c.Path); err != nil {
				return nil, err
			}
		case xsql.CmpContains:
			if err := addPath(c.Path); err != nil {
				return nil, err
			}
		case xsql.CmpStarts:
			if err := addPath(c.Path); err != nil {
				return nil, err
			}
		case xsql.CmpPaths:
			if err := addPath(c.L); err != nil {
				return nil, err
			}
			if err := addPath(c.R); err != nil {
				return nil, err
			}
		}
	}
	if len(q.Select.Segs) > 0 {
		if err := addPath(q.Select); err != nil {
			return nil, err
		}
	}
	if len(out) == 0 {
		// No paths: the query still needs the class regions themselves.
		nt, ok := cat.ClassNT(classOf(q, q.Select.Var))
		if !ok {
			return nil, fmt.Errorf("advisor: class for variable %q is not bound", q.Select.Var)
		}
		out = append(out, []string{nt})
	}
	return out, nil
}

func classOf(q *xsql.Query, v string) string {
	cls, _ := q.ClassOf(v)
	return cls
}

// analyzePath simulates full indexing for one concrete path: build the
// all-⊃d chain, optimize it against the full RIG, and return the explicit
// names plus, per surviving ⊃d pair, the chosen separator names (one per
// RIG path, per the paper's rule).
func analyzePath(g *rig.Graph, full []string) (explicit []string, hitting [][]string) {
	names, direct := chainFromFull(full)
	if len(names) == 1 {
		return names, nil
	}
	ch, err := optimizer.NewChain(names, direct, nil, false)
	if err != nil {
		return names, nil
	}
	opt, _ := optimizer.Optimize(ch, g)
	explicit = append([]string(nil), opt.Names...)
	for i := range opt.Direct {
		if !opt.Direct[i] {
			continue
		}
		seps := separators(g, opt.Names[i], opt.Names[i+1])
		if len(seps) > 0 {
			hitting = append(hitting, seps)
		}
	}
	return explicit, hitting
}

// chainFromFull converts a full path (with "*" gaps) to chain form.
func chainFromFull(full []string) (names []string, direct []bool) {
	gap := false
	for _, n := range full {
		if n == "*" {
			gap = true
			continue
		}
		if len(names) > 0 {
			direct = append(direct, !gap)
		}
		names = append(names, n)
		gap = false
	}
	return names, direct
}

// separators returns a small set of names hitting every RIG path from a to
// b (interior nodes only): greedy set cover over the simple paths.
func separators(g *rig.Graph, a, b string) []string {
	paths := simplePaths(g, a, b, 256)
	// Paths that are bare edges need no separator and cannot have one;
	// they are excluded (the ⊃d then relies on the edge relation itself).
	var interiors [][]string
	for _, p := range paths {
		if len(p) > 2 {
			interiors = append(interiors, p[1:len(p)-1])
		}
	}
	var out []string
	covered := make([]bool, len(interiors))
	for {
		remaining := 0
		counts := make(map[string]int)
		for i, in := range interiors {
			if covered[i] {
				continue
			}
			remaining++
			for _, n := range in {
				counts[n]++
			}
		}
		if remaining == 0 {
			return out
		}
		best, bestC := "", 0
		for n, c := range counts {
			if c > bestC || (c == bestC && n < best) {
				best, bestC = n, c
			}
		}
		out = append(out, best)
		for i, in := range interiors {
			if covered[i] {
				continue
			}
			for _, n := range in {
				if n == best {
					covered[i] = true
					break
				}
			}
		}
	}
}

// simplePaths enumerates simple paths from a to b, capped.
func simplePaths(g *rig.Graph, a, b string, cap int) [][]string {
	var out [][]string
	onPath := map[string]bool{a: true}
	var cur []string
	var dfs func(n string)
	dfs = func(n string) {
		if len(out) >= cap {
			return
		}
		for _, s := range g.Successors(n) {
			if s == b {
				p := append([]string{a}, cur...)
				out = append(out, append(p, b))
				if len(out) >= cap {
					return
				}
			}
			if !onPath[s] && s != b {
				onPath[s] = true
				cur = append(cur, s)
				dfs(s)
				cur = cur[:len(cur)-1]
				onPath[s] = false
			}
		}
	}
	dfs(a)
	return out
}

func mergeUnique(dst []string, src []string) []string {
	seen := make(map[string]bool, len(dst))
	for _, n := range dst {
		seen[n] = true
	}
	for _, n := range src {
		if !seen[n] {
			seen[n] = true
			dst = append(dst, n)
		}
	}
	return dst
}

// recordParent tracks, for each path leaf, the concrete name immediately
// before it in the full path (or "*" when a star precedes).
func recordParent(parents map[string]map[string]bool, full []string) {
	if len(full) < 2 {
		return
	}
	leaf := full[len(full)-1]
	if leaf == "*" {
		return
	}
	parent := full[len(full)-2]
	if parents[leaf] == nil {
		parents[leaf] = make(map[string]bool)
	}
	parents[leaf][parent] = true
}

// emptyInstance builds an instance over an empty document indexing the
// given names, used only so that compilation sees the indexing choice.
func emptyInstance(names []string) *index.Instance {
	in := index.NewInstance(text.NewDocument("advisor-verify", ""))
	for _, n := range names {
		in.Define(n, region.Empty)
	}
	return in
}
