package advisor_test

import (
	"reflect"
	"strings"
	"testing"

	"qof/internal/advisor"
	"qof/internal/bibtex"
	"qof/internal/compile"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/text"
	"qof/internal/xsql"
)

const changQuery = `SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`

func TestRecommendPaperExample(t *testing.T) {
	cat := bibtex.Catalog()
	rec, err := advisor.Recommend(cat, []*xsql.Query{xsql.MustParse(changQuery)})
	if err != nil {
		t.Fatal(err)
	}
	// The optimized expression is Reference ⊃ Authors ⊃ σ(Last_Name), so
	// the explicit names are exactly these three; no ⊃d survives, so no
	// separators are needed.
	want := []string{"Authors", "Last_Name", "Reference"}
	if !reflect.DeepEqual(rec.Names, want) {
		t.Fatalf("Names = %v, want %v\n%s", rec.Names, want, rec)
	}
	if len(rec.PerQuery) != 1 || len(rec.PerQuery[0].Hitting) != 0 {
		t.Errorf("hitting sets = %+v", rec.PerQuery)
	}
	if !rec.PerQuery[0].Exact {
		t.Error("recommendation must make the query exact")
	}
	if rec.FullCount <= len(rec.Names) {
		t.Errorf("no savings over full indexing: %d vs %d", rec.FullCount, len(rec.Names))
	}
	// Selective suggestion: the workload only reaches Last_Name via Name.
	found := false
	for _, sc := range rec.Scoped {
		if sc.Name == "Last_Name" && sc.Within == "Name" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected selective suggestion for Last_Name within Name: %+v", rec.Scoped)
	}
	if !strings.Contains(rec.String(), "recommended indexes") {
		t.Error("String")
	}
}

func TestRecommendedSpecIsExactOnRealData(t *testing.T) {
	cat := bibtex.Catalog()
	queries := []*xsql.Query{
		xsql.MustParse(changQuery),
		xsql.MustParse(`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = "Corliss"`),
		xsql.MustParse(`SELECT r FROM References r WHERE r.Key = "Key000007"`),
	}
	rec, err := advisor.Recommend(cat, queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, need := range rec.PerQuery {
		if !need.Exact {
			t.Errorf("query %s not exact under recommendation %v", need.Query, rec.Names)
		}
	}
	// Execute against a real corpus: results must match full indexing.
	content, st := bibtex.Generate(bibtex.DefaultConfig(40))
	doc := text.NewDocument("c.bib", content)
	inRec, _, err := cat.Grammar.BuildInstance(doc, rec.Spec())
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(cat, inRec)
	res, err := eng.Execute(xsql.MustParse(changQuery))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Exact {
		t.Errorf("plan not exact under recommendation:\n%s", res.Plan.Explain())
	}
	if res.Stats.Results != st.TargetAsAuthor {
		t.Errorf("results = %d, want %d", res.Stats.Results, st.TargetAsAuthor)
	}
}

func TestRecommendSeparatorsForDirectPairs(t *testing.T) {
	// A schema where the optimized chain keeps a ⊃d: self-nested
	// sections. Query: direct parts of a section.
	g := grammar.NewGrammar("Doc")
	g.MustAddTerminal("W", `[a-z]+`)
	g.AddProduction("Doc", grammar.Lit("<doc>"), grammar.Rep("Section", ""), grammar.Lit("</doc>"))
	g.AddProduction("Section", grammar.Lit("<s>"), grammar.NT("Head"), grammar.Rep("Section", ""), grammar.Rep("Para", ""), grammar.Lit("</s>"))
	g.AddProduction("Head", grammar.Lit("<h>"), grammar.Term("W"), grammar.Lit("</h>"))
	g.AddProduction("Para", grammar.Lit("<p>"), grammar.Term("W"), grammar.Lit("</p>"))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cat := compile.NewCatalog(g)
	cat.Bind("Docs", "Doc")
	rec, err := advisor.Recommend(cat, []*xsql.Query{
		xsql.MustParse(`SELECT d FROM Docs d WHERE d.Section.Head = "intro"`),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Doc ⊃d Section survives (Doc→Section→Section paths do not all start
	// with... they do start with the edge, but Section is not rightmost).
	// Either way the recommendation must cover the query names.
	for _, n := range []string{"Doc", "Section", "Head"} {
		if !has(rec.Names, n) {
			t.Errorf("missing %s in %v\n%s", n, rec.Names, rec)
		}
	}
}

func TestSeparatorHittingSet(t *testing.T) {
	// A diamond with two unindexable routes: R → (X|Y) → L plus a direct
	// R → L edge. The chain R ⊃d L survives optimization (multiple
	// paths), so the advisor must index a separator on each interior
	// route: both X and Y.
	g := grammar.NewGrammar("Top")
	g.MustAddTerminal("W", `[a-z]+`)
	g.AddProduction("Top", grammar.Rep("R", ""))
	g.AddProduction("R", grammar.Lit("<r>"), grammar.NT("X"), grammar.NT("Y"), grammar.NT("L"), grammar.Lit("</r>"))
	g.AddProduction("X", grammar.Lit("<x>"), grammar.NT("L"), grammar.Lit("</x>"))
	g.AddProduction("Y", grammar.Lit("<y>"), grammar.NT("L"), grammar.Lit("</y>"))
	g.AddProduction("L", grammar.Lit("<l>"), grammar.Term("W"), grammar.Lit("</l>"))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cat := compile.NewCatalog(g)
	cat.Bind("Rs", "R")
	rec, err := advisor.Recommend(cat, []*xsql.Query{
		xsql.MustParse(`SELECT r FROM Rs r WHERE r.L CONTAINS "w"`),
	})
	if err != nil {
		t.Fatal(err)
	}
	// r.L navigates R's direct L attribute; the region chain R ⊃d L needs
	// X and Y indexed to rule out the nested Ls.
	for _, want := range []string{"R", "L", "X", "Y"} {
		if !has(rec.Names, want) {
			t.Errorf("missing %s in %v\n%s", want, rec.Names, rec)
		}
	}
	if !rec.PerQuery[0].Exact {
		t.Errorf("recommendation should make the query exact:\n%s", rec)
	}
	// Verify on data: <r><x><l>b</l></x><y><l>w</l></y><l>w</l></r> — the
	// direct L is "w", the nested X-L is "b".
	content := "<r><x><l>b</l></x><y><l>w</l></y><l>w</l></r>"
	doc := text.NewDocument("d", content)
	in, _, err := g.BuildInstance(doc, rec.Spec())
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(cat, in)
	res, err := eng.Execute(xsql.MustParse(`SELECT r FROM Rs r WHERE r.L CONTAINS "w"`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Results != 1 || !res.Stats.Exact {
		t.Errorf("results=%d exact=%v\n%s", res.Stats.Results, res.Stats.Exact, res.Plan.Explain())
	}
	// Sanity: the direct-attribute query distinguishes nested Ls — with
	// "w" only in a nested position it does not match.
	content2 := "<r><x><l>w</l></x><y><l>b</l></y><l>b</l></r>"
	doc2 := text.NewDocument("d2", content2)
	in2, _, err := g.BuildInstance(doc2, rec.Spec())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := engine.New(cat, in2).Execute(xsql.MustParse(`SELECT r FROM Rs r WHERE r.L CONTAINS "w"`))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Results != 0 {
		t.Errorf("nested-only w matched: %d\n%s", res2.Stats.Results, res2.Plan.Explain())
	}
}

func TestRecommendJoinAndProjection(t *testing.T) {
	cat := bibtex.Catalog()
	rec, err := advisor.Recommend(cat, []*xsql.Query{
		xsql.MustParse(`SELECT r.Key FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"Reference", "Authors", "Editors", "Last_Name", "Key"} {
		if !has(rec.Names, n) {
			t.Errorf("missing %s in %v", n, rec.Names)
		}
	}
}

func TestRecommendNoWhere(t *testing.T) {
	cat := bibtex.Catalog()
	rec, err := advisor.Recommend(cat, []*xsql.Query{
		xsql.MustParse(`SELECT r FROM References r`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.Names, []string{"Reference"}) {
		t.Errorf("Names = %v", rec.Names)
	}
}

func TestRecommendUnboundClass(t *testing.T) {
	cat := bibtex.Catalog()
	_, err := advisor.Recommend(cat, []*xsql.Query{
		xsql.MustParse(`SELECT x FROM Unknown x WHERE x.A = "1"`),
	})
	if err == nil {
		t.Error("unbound class accepted")
	}
}

func has(ss []string, w string) bool {
	for _, s := range ss {
		if s == w {
			return true
		}
	}
	return false
}
