package optimizer_test

// Property tests for Theorem 3.6: the rewrite system of Propositions
// 3.5(a)/(b) is finite Church–Rosser, so (1) applying applicable rewrites
// in any order terminates in the same normal form — the one Optimize
// computes — and (2) rewriting preserves query results on every instance
// satisfying the RIG. Both properties are checked on random chains over
// the real BibTeX and SGML region inclusion graphs.

import (
	"fmt"
	"math/rand"
	"testing"

	"qof/internal/algebra"
	"qof/internal/bibtex"
	"qof/internal/grammar"
	"qof/internal/index"
	"qof/internal/optimizer"
	"qof/internal/rig"
	"qof/internal/sgml"
	"qof/internal/text"
)

// randomChain builds a random inclusion/projection chain over g, drawing
// names from nodes (a subset of g's nodes). Most chains follow a random
// RIG walk (so they are satisfiable); some splice in an unrelated node to
// cover trivial chains too.
func randomChain(rng *rand.Rand, g *rig.Graph, nodes, words []string) *optimizer.Chain {
	allowed := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		allowed[n] = true
	}
	names := []string{nodes[rng.Intn(len(nodes))]}
	depth := 2 + rng.Intn(4)
	for len(names) < depth {
		if rng.Intn(8) == 0 {
			names = append(names, nodes[rng.Intn(len(nodes))])
			continue
		}
		var succ []string
		for _, s := range g.Successors(names[len(names)-1]) {
			if allowed[s] {
				succ = append(succ, s)
			}
		}
		if len(succ) == 0 {
			break
		}
		names = append(names, succ[rng.Intn(len(succ))])
	}
	if len(names) < 2 {
		names = append(names, nodes[rng.Intn(len(nodes))])
	}
	direct := make([]bool, len(names)-1)
	for i := range direct {
		direct[i] = rng.Intn(2) == 0
	}
	var sel *optimizer.Selection
	switch rng.Intn(3) {
	case 0:
		sel = &optimizer.Selection{Mode: algebra.SelContains, Word: words[rng.Intn(len(words))]}
	case 1:
		sel = &optimizer.Selection{Mode: algebra.SelEquals, Word: words[rng.Intn(len(words))]}
	}
	asc := rng.Intn(2) == 0
	c, err := optimizer.NewChain(names, direct, sel, asc)
	if err != nil {
		panic(err)
	}
	return c
}

// rewriteRandomly applies applicable rewrites in random order until none
// remain. Every rewrite strictly shrinks names+direct-flags, so the loop
// terminates; the cap is pure paranoia.
func rewriteRandomly(t *testing.T, rng *rand.Rand, c *optimizer.Chain, g *rig.Graph) *optimizer.Chain {
	t.Helper()
	cur := c.Clone()
	for steps := 0; ; steps++ {
		if steps > 100 {
			t.Fatalf("rewriting of %s did not terminate", c)
		}
		sites := optimizer.ApplicableRewrites(cur, g)
		if len(sites) == 0 {
			return cur
		}
		cur = optimizer.ApplyRewrite(cur, sites[rng.Intn(len(sites))])
	}
}

func graphsUnderTest(t *testing.T) map[string]struct {
	g     *rig.Graph
	words []string
} {
	t.Helper()
	return map[string]struct {
		g     *rig.Graph
		words []string
	}{
		"bibtex": {bibtex.Catalog().RIG, []string{"Chang", "Corliss", "the", "algorithm"}},
		"sgml":   {sgml.Catalog().RIG, []string{"needle", "the", "section"}},
	}
}

// TestTheorem36Confluence: every random application order reaches the
// normal form Optimize computes, and that normal form admits no further
// rewrites.
func TestTheorem36Confluence(t *testing.T) {
	for name, tc := range graphsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(36))
			for trial := 0; trial < 300; trial++ {
				c := randomChain(rng, tc.g, tc.g.Nodes(), tc.words)
				normal, _ := optimizer.Optimize(c, tc.g)
				if sites := optimizer.ApplicableRewrites(normal, tc.g); len(sites) != 0 {
					t.Fatalf("trial %d: Optimize(%s) = %s still admits %d rewrites (first: %s)",
						trial, c, normal, len(sites), sites[0].Rw)
				}
				for order := 0; order < 5; order++ {
					got := rewriteRandomly(t, rng, c, tc.g)
					if !got.Equal(normal) {
						t.Fatalf("trial %d order %d: random order reached %s, Optimize reached %s (input %s)",
							trial, order, got, normal, c)
					}
				}
			}
		})
	}
}

// TestTheorem36PreservesResults: on concrete instances, the optimized
// chain evaluates to exactly the same region set as the original — the
// "most efficient version is equivalent" half of the theorem.
func TestTheorem36PreservesResults(t *testing.T) {
	bibContent, _ := bibtex.Generate(bibtex.DefaultConfig(40))
	sgmlContent, _ := sgml.Generate(sgml.DefaultConfig(4, 2))

	type setup struct {
		g     *rig.Graph
		in    *index.Instance
		words []string
	}
	setups := map[string]setup{}
	{
		cat := bibtex.Catalog()
		doc := text.NewDocument("prop.bib", bibContent)
		in, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{})
		if err != nil {
			t.Fatal(err)
		}
		setups["bibtex"] = setup{cat.RIG, in, []string{"Chang", "Corliss", "the", "algorithm"}}
	}
	{
		cat := sgml.Catalog()
		doc := text.NewDocument("prop.sgml", sgmlContent)
		in, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{})
		if err != nil {
			t.Fatal(err)
		}
		setups["sgml"] = setup{cat.RIG, in, []string{"needle", "the", "section"}}
	}

	for name, tc := range setups {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(94))
			ev := algebra.NewEvaluator(tc.in)
			// Chains must evaluate, so draw names from the indexed regions
			// only (the RIG also has unindexed helper nodes like the root).
			var indexed []string
			for _, n := range tc.g.Nodes() {
				if _, ok := tc.in.Region(n); ok {
					indexed = append(indexed, n)
				}
			}
			for trial := 0; trial < 150; trial++ {
				c := randomChain(rng, tc.g, indexed, tc.words)
				normal, _ := optimizer.Optimize(c, tc.g)
				random := rewriteRandomly(t, rng, c, tc.g)
				want, err := ev.Eval(c.Expr())
				if err != nil {
					t.Fatalf("trial %d: eval %s: %v", trial, c, err)
				}
				for which, oc := range map[string]*optimizer.Chain{"Optimize": normal, "random order": random} {
					got, err := ev.Eval(oc.Expr())
					if err != nil {
						t.Fatalf("trial %d: eval %s chain %s: %v", trial, which, oc, err)
					}
					if !got.Equal(want) {
						t.Fatalf("trial %d: %s result differs:\n  original  %s = %v\n  rewritten %s = %v",
							trial, which, c, regions(want), oc, regions(got))
					}
				}
			}
		})
	}
}

func regions(s interface{ Len() int }) string { return fmt.Sprintf("%d regions", s.Len()) }
