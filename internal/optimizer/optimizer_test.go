package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"qof/internal/algebra"
	"qof/internal/index"
	"qof/internal/region"
	"qof/internal/rig"
	"qof/internal/text"
)

// bibtexRIG is the RIG of the paper's Section 3.2 example.
func bibtexRIG() *rig.Graph {
	g := rig.New("Reference", "Key", "Authors", "Title", "Editors", "Name", "First_Name", "Last_Name")
	g.AddEdge("Reference", "Key")
	g.AddEdge("Reference", "Authors")
	g.AddEdge("Reference", "Title")
	g.AddEdge("Reference", "Editors")
	g.AddEdge("Authors", "Name")
	g.AddEdge("Editors", "Name")
	g.AddEdge("Name", "First_Name")
	g.AddEdge("Name", "Last_Name")
	return g
}

func chain(t *testing.T, src string) *Chain {
	t.Helper()
	c, ok := FromExpr(algebra.MustParse(src))
	if !ok {
		t.Fatalf("FromExpr(%q) did not recognize a chain", src)
	}
	return c
}

func TestFromExprDesc(t *testing.T) {
	c := chain(t, `Reference >d Authors >d Name >d contains(Last_Name, "Chang")`)
	if c.Asc {
		t.Error("desc chain flagged Asc")
	}
	want := []string{"Reference", "Authors", "Name", "Last_Name"}
	for i, n := range want {
		if c.Names[i] != n {
			t.Fatalf("Names = %v", c.Names)
		}
	}
	for _, d := range c.Direct {
		if !d {
			t.Fatalf("Direct = %v", c.Direct)
		}
	}
	if c.Sel == nil || c.Sel.Word != "Chang" || c.Sel.Mode != algebra.SelContains {
		t.Fatalf("Sel = %+v", c.Sel)
	}
	if c.Deepest() != "Last_Name" {
		t.Errorf("Deepest = %q", c.Deepest())
	}
	// Round trip.
	if got := c.Expr().String(); got != `Reference >d Authors >d Name >d contains(Last_Name, "Chang")` {
		t.Errorf("Expr = %q", got)
	}
}

func TestFromExprAsc(t *testing.T) {
	c := chain(t, `Last_Name <d Name <d Authors <d Reference`)
	if !c.Asc {
		t.Error("asc chain not flagged")
	}
	want := []string{"Reference", "Authors", "Name", "Last_Name"}
	for i, n := range want {
		if c.Names[i] != n {
			t.Fatalf("Names = %v (container-first expected)", c.Names)
		}
	}
	if got := c.Expr().String(); got != `Last_Name <d Name <d Authors <d Reference` {
		t.Errorf("Expr = %q", got)
	}
	// With a selection on the deepest name.
	c2 := chain(t, `contains(Last_Name, "Chang") < Authors < Reference`)
	if c2.Sel == nil || c2.Sel.Word != "Chang" {
		t.Fatalf("Sel = %+v", c2.Sel)
	}
	if got := c2.Expr().String(); got != `contains(Last_Name, "Chang") < Authors < Reference` {
		t.Errorf("Expr = %q", got)
	}
}

func TestFromExprRejects(t *testing.T) {
	for _, src := range []string{
		`A + B`,
		`A & B`,
		`(A > B) > C`, // left-nested: not a right-grouped chain
		`contains(A > B, "w")`,
		`A > word("w")`,
		`innermost(A)`,
		`A > contains(B, "w") > C`, // selection not on the deepest name
		`A < B > C`,
		`word("w")`,
	} {
		if _, ok := FromExpr(algebra.MustParse(src)); ok {
			t.Errorf("FromExpr(%q) matched, want reject", src)
		}
	}
}

func TestPaperOptimizationExample(t *testing.T) {
	// Section 3.2: Reference ⊃d Authors ⊃d Name ⊃d σ"Chang"(Last_Name)
	// optimizes to Reference ⊃ Authors ⊃ σ"Chang"(Last_Name).
	g := bibtexRIG()
	c := chain(t, `Reference >d Authors >d Name >d contains(Last_Name, "Chang")`)
	opt, log := Optimize(c, g)
	want := `Reference > Authors > contains(Last_Name, "Chang")`
	if got := opt.Expr().String(); got != want {
		t.Fatalf("Optimize = %q, want %q\nlog: %v", got, want, log)
	}
	// Three ⊃d→⊃ conversions plus one shortening.
	var conv, short int
	for _, rw := range log {
		switch rw.Kind {
		case RuleDirectToPlain:
			conv++
		case RuleShorten:
			short++
		}
	}
	if conv != 3 || short != 1 {
		t.Errorf("rewrites = %d conversions, %d shortenings (log %v)", conv, short, log)
	}
	// The shortening removed Name.
	found := false
	for _, rw := range log {
		if rw.Kind == RuleShorten && rw.Via == "Name" {
			found = true
			if !strings.Contains(rw.Reason, "Name") {
				t.Errorf("reason = %q", rw.Reason)
			}
		}
	}
	if !found {
		t.Errorf("no shortening via Name in %v", log)
	}
}

func TestPaperProjectionExample(t *testing.T) {
	// Section 5.2: Last_Name ⊂d Name ⊂d Authors ⊂d Reference optimizes to
	// Last_Name ⊂ Authors ⊂ Reference.
	g := bibtexRIG()
	c := chain(t, `Last_Name <d Name <d Authors <d Reference`)
	opt, _ := Optimize(c, g)
	if got := opt.Expr().String(); got != `Last_Name < Authors < Reference` {
		t.Fatalf("Optimize = %q", got)
	}
}

func TestCannotDropAuthors(t *testing.T) {
	// The paper stresses that the Authors test cannot be removed: paths
	// through Editors would let editor last names slip in.
	g := bibtexRIG()
	c := chain(t, `Reference > Authors > contains(Last_Name, "Chang")`)
	opt, log := Optimize(c, g)
	if !opt.Equal(c) {
		t.Fatalf("already-optimal chain changed: %v (log %v)", opt.Expr(), log)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	g := bibtexRIG()
	c := chain(t, `Reference >d Authors >d Name >d contains(Last_Name, "Chang")`)
	once, _ := Optimize(c, g)
	twice, log := Optimize(once, g)
	if !once.Equal(twice) || len(log) != 0 {
		t.Fatalf("not idempotent: %v -> %v (log %v)", once.Expr(), twice.Expr(), log)
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	g := bibtexRIG()
	c := chain(t, `Reference >d Authors`)
	before := c.Expr().String()
	Optimize(c, g)
	if c.Expr().String() != before {
		t.Fatal("input chain mutated")
	}
}

func TestRightmostRuleWithCycle(t *testing.T) {
	// Self-nested sections: Doc → Section → Section | Para.
	g := rig.New()
	g.AddEdge("Doc", "Section")
	g.AddEdge("Section", "Section")
	g.AddEdge("Section", "Para")
	// Doc ⊃d Section: not the only path (Doc→Section→Section), but every
	// Doc→Section path starts with the edge, and Section is rightmost.
	c := chain(t, `Doc >d contains(Section, "w")`)
	opt, _ := Optimize(c, g)
	if got := opt.Expr().String(); got != `Doc > contains(Section, "w")` {
		t.Fatalf("rightmost rule: %q", got)
	}
	// Mid-chain the same pair must NOT convert.
	c2 := chain(t, `Doc >d Section >d Para`)
	opt2, _ := Optimize(c2, g)
	if opt2.Direct[0] {
		// (Doc,Section) has multiple paths and is not rightmost-adjacent.
		t.Log("pair kept direct as expected")
	} else {
		t.Fatalf("mid-chain conversion applied unsoundly: %v", opt2.Expr())
	}
	// (Section, Para): Section→Para edge is not the only path
	// (Section→Section→Para); Para rightmost, but paths may start with
	// (Section, Section). Must stay direct.
	if !opt2.Direct[1] {
		t.Fatalf("Section >d Para converted unsoundly: %v", opt2.Expr())
	}
}

func TestEqualsSelectionBlocksRightmostRule(t *testing.T) {
	g := rig.New()
	g.AddEdge("Doc", "Section")
	g.AddEdge("Section", "Section")
	// contains: rule applies (word containment is monotone).
	c := chain(t, `Doc >d contains(Section, "w")`)
	if opt, _ := Optimize(c, g); opt.Direct[0] {
		t.Fatal("contains selection should allow the rightmost rule")
	}
	// equals: rule must be suppressed.
	c2 := chain(t, `Doc >d equals(Section, "w")`)
	if opt, _ := Optimize(c2, g); !opt.Direct[0] {
		t.Fatal("equals selection must block the rightmost rule")
	}
	// The only-path case is fine even with equals.
	g2 := rig.New()
	g2.AddEdge("Doc", "Section")
	c3 := chain(t, `Doc >d equals(Section, "w")`)
	if opt, _ := Optimize(c3, g2); opt.Direct[0] {
		t.Fatal("only-path conversion is sound under equals")
	}
}

func TestAscRightmostRule(t *testing.T) {
	// Projection chain: Para ⊂d Section — every Section→Para path ends
	// with the edge even though Sections self-nest, so the conversion is
	// allowed at the written-rightmost (container) end.
	g := rig.New()
	g.AddEdge("Doc", "Section")
	g.AddEdge("Section", "Section")
	g.AddEdge("Section", "Para")
	c := chain(t, `Para <d Section`)
	opt, _ := Optimize(c, g)
	if opt.Direct[0] {
		t.Fatalf("Para <d Section should convert: %v", opt.Expr())
	}
	// Doc ⊂-side: Section ⊂d Doc has paths Doc→Section→Section ending
	// with (Section, Section) ≠ (Doc, Section): must stay direct.
	c2 := chain(t, `Section <d Doc`)
	opt2, _ := Optimize(c2, g)
	if !opt2.Direct[0] {
		t.Fatalf("Section <d Doc converted unsoundly: %v", opt2.Expr())
	}
}

func TestSelfNestedShortenBlocked(t *testing.T) {
	g := rig.New()
	g.AddEdge("Doc", "Section")
	g.AddEdge("Section", "Section")
	g.AddEdge("Section", "Para")
	// Doc ⊃ Section ⊃ Section selects sections nested at depth ≥ 2; it
	// must NOT collapse to Doc ⊃ Section (depth ≥ 1).
	c := chain(t, `Doc > Section > Section`)
	opt, log := Optimize(c, g)
	if !opt.Equal(c) {
		t.Fatalf("self-nested chain shortened: %v (log %v)", opt.Expr(), log)
	}
	// But with a genuinely interposed node the rule still fires.
	g2 := rig.New()
	g2.AddEdge("A", "B")
	g2.AddEdge("B", "C")
	c2 := chain(t, `A > B > C`)
	opt2, _ := Optimize(c2, g2)
	if got := opt2.Expr().String(); got != `A > C` {
		t.Fatalf("A > B > C: %q", got)
	}
}

func TestTrivial(t *testing.T) {
	g := bibtexRIG()
	// The paper's e3 = Reference ⊃ Title ⊃ Last_Name is always empty.
	c := chain(t, `Reference > Title > Last_Name`)
	triv, why := Trivial(c, g)
	if !triv {
		t.Fatal("e3 should be trivial")
	}
	if !strings.Contains(why.String(), "Title") || !strings.Contains(why.String(), "Last_Name") {
		t.Errorf("reason = %v", why)
	}
	// 3.3(i): ⊃d with no edge.
	c2 := chain(t, `Reference >d Name`)
	triv2, why2 := Trivial(c2, g)
	if !triv2 || !why2.Direct {
		t.Fatalf("Reference >d Name: trivial=%v why=%v", triv2, why2)
	}
	// ...while Reference ⊃ Name is fine (path exists).
	c3 := chain(t, `Reference > Name`)
	if triv3, _ := Trivial(c3, g); triv3 {
		t.Fatal("Reference > Name is not trivial")
	}
	if _, why4 := Trivial(c3, g); why4.String() != "not trivial" {
		t.Errorf("non-trivial reason = %v", why4)
	}
}

func TestOptimizeExprComposite(t *testing.T) {
	g := bibtexRIG()
	src := `(Reference >d Authors >d Name >d contains(Last_Name, "Chang")) + (Reference >d Editors >d Name >d contains(Last_Name, "Corliss"))`
	e, log := OptimizeExpr(algebra.MustParse(src), g)
	want := algebra.MustParse(`(Reference > Authors > contains(Last_Name, "Chang")) + (Reference > Editors > contains(Last_Name, "Corliss"))`)
	if !algebra.Equal(e, want) {
		t.Fatalf("OptimizeExpr = %q, want %q", e, want)
	}
	if len(log) != 8 {
		t.Errorf("rewrites = %d, want 8 (3 conversions + 1 shortening per chain)", len(log))
	}
	// Non-chain expressions pass through untouched.
	e2, log2 := OptimizeExpr(algebra.MustParse(`innermost(word("x"))`), g)
	if e2.String() != `innermost(word("x"))` || len(log2) != 0 {
		t.Errorf("passthrough: %v %v", e2, log2)
	}
}

func TestTrivialExpr(t *testing.T) {
	g := bibtexRIG()
	cases := []struct {
		src  string
		want bool
	}{
		{`Reference > Title > Last_Name`, true},
		{`(Reference > Title > Last_Name) & (Reference > Authors)`, true},
		{`(Reference > Authors) & (Reference > Title > Last_Name)`, true},
		{`(Reference > Title > Last_Name) + (Reference > Authors)`, false},
		{`(Reference > Title > Last_Name) + (Title > Key)`, true},
		{`(Reference > Title > Last_Name) - Reference`, true},
		{`Reference - (Reference > Title > Last_Name)`, false},
		{`innermost(Reference > Title > Last_Name)`, true},
		{`contains(Reference > Title > Last_Name, "w")`, true},
		{`Reference > Authors`, false},
	}
	for _, tc := range cases {
		got, _ := TrivialExpr(algebra.MustParse(tc.src), g)
		if got != tc.want {
			t.Errorf("TrivialExpr(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestNewChainValidation(t *testing.T) {
	if _, err := NewChain(nil, nil, nil, false); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := NewChain([]string{"A", "B"}, []bool{true, false}, nil, false); err == nil {
		t.Error("mismatched operator count accepted")
	}
	c, err := NewChain([]string{"A", "B"}, []bool{true}, nil, false)
	if err != nil || c.String() != "A >d B" {
		t.Errorf("NewChain: %v %v", c, err)
	}
}

func TestRewriteString(t *testing.T) {
	g := bibtexRIG()
	c := chain(t, `Reference >d Authors >d Name >d contains(Last_Name, "Chang")`)
	_, log := Optimize(c, g)
	for _, rw := range log {
		s := rw.String()
		if !strings.Contains(s, "3.5") {
			t.Errorf("rewrite string %q", s)
		}
	}
}

// --- Soundness: optimized chains agree with originals on instances that
// --- satisfy the RIG (Definition 3.2), using schema-shaped instances.

// genInstance builds a random properly nested instance that satisfies g by
// growing a forest from root: each region's children are drawn from its RIG
// successors and strictly nested inside it.
func genInstance(rng *rand.Rand, g *rig.Graph, root string, span int) *index.Instance {
	doc := text.NewDocument("gen", strings.Repeat("a b c d ", (span+7)/8)[:span])
	groups := make(map[string][]region.Region)
	var build func(name string, lo, hi, depth int)
	build = func(name string, lo, hi, depth int) {
		groups[name] = append(groups[name], region.Region{Start: lo, End: hi})
		succ := g.Successors(name)
		if len(succ) == 0 || depth > 4 || hi-lo < 6 {
			return
		}
		// Carve up to 3 disjoint child slots strictly inside (lo, hi).
		cur := lo + 1
		for k := 0; k < 3 && cur+2 < hi-1; k++ {
			w := 2 + rng.Intn(hi-1-cur-2+1)
			if w > hi-1-cur {
				w = hi - 1 - cur
			}
			if rng.Intn(4) > 0 {
				build(succ[rng.Intn(len(succ))], cur, cur+w, depth+1)
			}
			cur += w + 1
		}
	}
	n := 1 + rng.Intn(3)
	seg := span / n
	for i := 0; i < n; i++ {
		build(root, i*seg, i*seg+seg-1, 0)
	}
	in := index.NewInstance(doc)
	for _, node := range g.Nodes() {
		in.Define(node, region.FromRegions(groups[node]))
	}
	return in
}

// randomChain builds a random chain along RIG paths from root so that it is
// non-trivial by construction.
func randomChain(rng *rand.Rand, g *rig.Graph, root string, asc bool) *Chain {
	names := []string{root}
	cur := root
	for len(names) < 2+rng.Intn(3) {
		succ := g.Successors(cur)
		if len(succ) == 0 {
			break
		}
		cur = succ[rng.Intn(len(succ))]
		names = append(names, cur)
	}
	if len(names) < 2 {
		names = append(names, g.Successors(root)[0])
	}
	direct := make([]bool, len(names)-1)
	for i := range direct {
		direct[i] = rng.Intn(2) == 0
	}
	var sel *Selection
	switch rng.Intn(3) {
	case 0:
		sel = &Selection{Mode: algebra.SelContains, Word: "b"}
	case 1:
		sel = &Selection{Mode: algebra.SelEquals, Word: "a b"}
	}
	c, _ := NewChain(names, direct, sel, asc)
	return c
}

func soundnessRIGs() map[string]*rig.Graph {
	cyclic := rig.New()
	cyclic.AddEdge("Doc", "Section")
	cyclic.AddEdge("Section", "Section")
	cyclic.AddEdge("Section", "Para")
	cyclic.AddEdge("Doc", "Para")
	diamond := rig.New()
	diamond.AddEdge("R", "A")
	diamond.AddEdge("R", "B")
	diamond.AddEdge("A", "N")
	diamond.AddEdge("B", "N")
	diamond.AddEdge("N", "L")
	return map[string]*rig.Graph{
		"bibtex":  bibtexRIG(),
		"cyclic":  cyclic,
		"diamond": diamond,
	}
}

func rootOf(name string) string {
	switch name {
	case "bibtex":
		return "Reference"
	case "cyclic":
		return "Doc"
	default:
		return "R"
	}
}

func TestOptimizeSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for gname, g := range soundnessRIGs() {
		root := rootOf(gname)
		for trial := 0; trial < 60; trial++ {
			in := genInstance(rng, g, root, 120)
			if err := g.Satisfies(in); err != nil {
				t.Fatalf("%s trial %d: generator violates RIG: %v", gname, trial, err)
			}
			for q := 0; q < 6; q++ {
				c := randomChain(rng, g, root, q%2 == 1)
				opt, log := Optimize(c, g)
				ev := algebra.NewEvaluator(in)
				a, err := ev.Eval(c.Expr())
				if err != nil {
					t.Fatalf("%s: eval original %v: %v", gname, c.Expr(), err)
				}
				b, err := ev.Eval(opt.Expr())
				if err != nil {
					t.Fatalf("%s: eval optimized %v: %v", gname, opt.Expr(), err)
				}
				if !a.Equal(b) {
					t.Fatalf("%s trial %d: %v != optimized %v\noriginal  %v\noptimized %v\nrewrites %v\nnames %v",
						gname, trial, a, b, c.Expr(), opt.Expr(), log, in.Names())
				}
			}
		}
	}
}

func TestTrivialSoundness(t *testing.T) {
	// Every chain flagged trivial evaluates to ∅ on satisfying instances.
	rng := rand.New(rand.NewSource(35))
	g := bibtexRIG()
	allNames := g.Nodes()
	for trial := 0; trial < 80; trial++ {
		in := genInstance(rng, g, "Reference", 120)
		names := []string{allNames[rng.Intn(len(allNames))], allNames[rng.Intn(len(allNames))]}
		if rng.Intn(2) == 0 {
			names = append(names, allNames[rng.Intn(len(allNames))])
		}
		direct := make([]bool, len(names)-1)
		for i := range direct {
			direct[i] = rng.Intn(2) == 0
		}
		c, _ := NewChain(names, direct, nil, false)
		triv, _ := Trivial(c, g)
		if !triv {
			continue
		}
		got, err := algebra.NewEvaluator(in).Eval(c.Expr())
		if err != nil {
			t.Fatal(err)
		}
		if !got.IsEmpty() {
			t.Fatalf("trivial chain %v evaluated to %v", c.Expr(), got)
		}
	}
}

// TestConfluence applies the rewrite rules in random order and checks the
// normal form matches Optimize's — Theorem 3.6's finite Church–Rosser
// property.
func TestConfluence(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for gname, g := range soundnessRIGs() {
		root := rootOf(gname)
		for trial := 0; trial < 200; trial++ {
			c := randomChain(rng, g, root, rng.Intn(2) == 1)
			want, _ := Optimize(c, g)
			got := randomOrderOptimize(rng, c, g)
			if !want.Equal(got) {
				t.Fatalf("%s trial %d: %v:\n deterministic %v\n random-order  %v",
					gname, trial, c.Expr(), want.Expr(), got.Expr())
			}
		}
	}
}

// randomOrderOptimize repeatedly applies a randomly chosen applicable
// rewrite until none applies.
func randomOrderOptimize(rng *rand.Rand, c *Chain, g *rig.Graph) *Chain {
	cur := c.Clone()
	for {
		type move struct {
			conv bool
			i    int
		}
		var moves []move
		for i := range cur.Direct {
			if cur.Direct[i] {
				if _, ok := directToPlain(cur, i, g); ok {
					moves = append(moves, move{conv: true, i: i})
				}
			}
		}
		for i := 0; i+2 < len(cur.Names); i++ {
			if _, ok := shortenAt(cur, i, g); ok {
				moves = append(moves, move{i: i})
			}
		}
		if len(moves) == 0 {
			return cur
		}
		m := moves[rng.Intn(len(moves))]
		if m.conv {
			cur.Direct[m.i] = false
		} else {
			removeAt(cur, m.i+1)
		}
	}
}

func BenchmarkOptimizeChain(b *testing.B) {
	g := bibtexRIG()
	c := chainB(b, `Reference >d Authors >d Name >d contains(Last_Name, "Chang")`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimize(c, g)
	}
}

func chainB(b *testing.B, src string) *Chain {
	b.Helper()
	c, ok := FromExpr(algebra.MustParse(src))
	if !ok {
		b.Fatal("not a chain")
	}
	return c
}
