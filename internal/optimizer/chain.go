// Package optimizer implements the paper's central contribution: the
// polynomial-time optimization of inclusion expressions with respect to a
// region inclusion graph (Section 3.2).
//
// An inclusion expression is a right-grouped chain of region names combined
// with ⊃/⊃d (selection chains, Section 5.1) or with ⊂/⊂d (projection
// chains, Section 5.2), optionally ending in a word selection on the
// deepest name. The optimizer applies exactly the paper's two rewrite
// rules:
//
//   - Proposition 3.5(a): replace Ri ⊃d Rj by Ri ⊃ Rj when the edge
//     (Ri, Rj) is the only RIG path from Ri to Rj, or when Rj is the
//     rightmost region of the expression and every path from Ri to Rj
//     starts with that edge (for projection chains the travel direction is
//     reversed, so the mirrored condition requires every path to end with
//     the edge).
//   - Proposition 3.5(b): shorten Ri ⊃ Rj ⊃ Rk to Ri ⊃ Rk when every RIG
//     path from Ri to Rk passes through Rj.
//
// By Theorem 3.6 the rewrite system is finite Church–Rosser, so the result
// is the unique most efficient version of the input; the property tests
// validate confluence by applying rules in random order.
//
// One deviation from the paper is deliberate: the rightmost case of rule
// (a) is suppressed when the rightmost name carries an equality selection
// (equals(...), which this system uses for leaf-attribute constants).
// Equality is not monotone under region growth, so the paper's argument —
// which only considers the word-containment σ — does not carry over.
package optimizer

import (
	"fmt"
	"strings"

	"qof/internal/algebra"
)

// Selection is an optional word selection applied to the deepest name of a
// chain.
type Selection struct {
	Mode algebra.SelMode
	Word string
}

// Chain is an inclusion expression in normalized, container-first form:
// Names[0] is the outermost region, Names[len-1] the deepest. Direct[i]
// records whether the operator between Names[i] and Names[i+1] is direct
// (⊃d/⊂d). Asc distinguishes the written form: false for selection chains
// (A1 ⊃ A2 ⊃ … σ(An)), true for projection chains written deepest-first
// (An ⊂ … ⊂ A1).
type Chain struct {
	Names  []string
	Direct []bool
	Sel    *Selection
	Asc    bool
}

// NewChain builds a container-first chain, validating the shape.
func NewChain(names []string, direct []bool, sel *Selection, asc bool) (*Chain, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("optimizer: chain needs at least one name")
	}
	if len(direct) != len(names)-1 {
		return nil, fmt.Errorf("optimizer: chain with %d names needs %d operators, got %d",
			len(names), len(names)-1, len(direct))
	}
	return &Chain{Names: names, Direct: direct, Sel: sel, Asc: asc}, nil
}

// Clone returns a deep copy of the chain.
func (c *Chain) Clone() *Chain {
	return &Chain{
		Names:  append([]string(nil), c.Names...),
		Direct: append([]bool(nil), c.Direct...),
		Sel:    c.Sel,
		Asc:    c.Asc,
	}
}

// Equal reports whether two chains are identical.
func (c *Chain) Equal(d *Chain) bool {
	if len(c.Names) != len(d.Names) || c.Asc != d.Asc {
		return false
	}
	for i := range c.Names {
		if c.Names[i] != d.Names[i] {
			return false
		}
	}
	for i := range c.Direct {
		if c.Direct[i] != d.Direct[i] {
			return false
		}
	}
	if (c.Sel == nil) != (d.Sel == nil) {
		return false
	}
	return c.Sel == nil || *c.Sel == *d.Sel
}

// Deepest returns the innermost region name (where a selection applies).
func (c *Chain) Deepest() string { return c.Names[len(c.Names)-1] }

// Expr converts the chain back to a region-algebra expression in its
// written direction.
func (c *Chain) Expr() algebra.Expr {
	deep := algebra.Expr(algebra.Name{Ident: c.Deepest()})
	if c.Sel != nil {
		deep = algebra.Select{Mode: c.Sel.Mode, W: c.Sel.Word, Arg: deep}
	}
	if !c.Asc {
		// A1 op (A2 op (… σ(An))).
		e := deep
		for i := len(c.Names) - 2; i >= 0; i-- {
			op := algebra.OpIncluding
			if c.Direct[i] {
				op = algebra.OpDirIncluding
			}
			e = algebra.Binary{Op: op, L: algebra.Name{Ident: c.Names[i]}, R: e}
		}
		return e
	}
	// σ(An) op (An-1 op (… A1)): written deepest-first with ⊂ operators.
	e := algebra.Expr(algebra.Name{Ident: c.Names[0]})
	for i := 1; i < len(c.Names); i++ {
		op := algebra.OpIncluded
		if c.Direct[i-1] {
			op = algebra.OpDirIncluded
		}
		var l algebra.Expr = algebra.Name{Ident: c.Names[i]}
		if i == len(c.Names)-1 {
			l = deep
		}
		e = algebra.Binary{Op: op, L: l, R: e}
	}
	return e
}

// String renders the chain in its written direction using ASCII operators.
func (c *Chain) String() string { return c.Expr().String() }

// Pretty renders the chain with the paper's symbols.
func (c *Chain) Pretty() string { return algebra.Pretty(c.Expr()) }

// FromExpr recognizes an inclusion expression and returns it in normalized
// chain form. The second result is false when e is not an inclusion chain
// (it may still contain chains as subexpressions; see OptimizeExpr).
func FromExpr(e algebra.Expr) (*Chain, bool) {
	// Try the selection-chain shape first: Name op (Name op (… σ(Name))).
	if c, ok := descChain(e); ok {
		return c, true
	}
	if c, ok := ascChain(e); ok {
		return c, true
	}
	return nil, false
}

// descChain matches A1 {⊃|⊃d} (A2 … σ(An)).
func descChain(e algebra.Expr) (*Chain, bool) {
	var names []string
	var direct []bool
	for {
		b, ok := e.(algebra.Binary)
		if !ok {
			break
		}
		if b.Op != algebra.OpIncluding && b.Op != algebra.OpDirIncluding {
			return nil, false
		}
		n, ok := b.L.(algebra.Name)
		if !ok {
			return nil, false
		}
		names = append(names, n.Ident)
		direct = append(direct, b.Op == algebra.OpDirIncluding)
		e = b.R
	}
	if len(names) == 0 {
		return nil, false
	}
	last, sel, ok := leafName(e)
	if !ok {
		return nil, false
	}
	names = append(names, last)
	return &Chain{Names: names, Direct: direct, Sel: sel}, true
}

// ascChain matches σ(An) {⊂|⊂d} (An-1 … A1) and normalizes to
// container-first order.
func ascChain(e algebra.Expr) (*Chain, bool) {
	b, ok := e.(algebra.Binary)
	if !ok || (b.Op != algebra.OpIncluded && b.Op != algebra.OpDirIncluded) {
		return nil, false
	}
	deepName, sel, ok := leafName(b.L)
	if !ok {
		return nil, false
	}
	var names []string // deepest-first while collecting
	var direct []bool
	names = append(names, deepName)
	e = algebra.Expr(b)
	for {
		b, ok := e.(algebra.Binary)
		if !ok {
			break
		}
		if b.Op != algebra.OpIncluded && b.Op != algebra.OpDirIncluded {
			return nil, false
		}
		if len(direct) > 0 {
			// Interior left operands must be bare names.
			n, ok := b.L.(algebra.Name)
			if !ok {
				return nil, false
			}
			names = append(names, n.Ident)
		}
		direct = append(direct, b.Op == algebra.OpDirIncluded)
		e = b.R
	}
	n, ok := e.(algebra.Name)
	if !ok {
		return nil, false
	}
	names = append(names, n.Ident)
	// Reverse into container-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	for i, j := 0, len(direct)-1; i < j; i, j = i+1, j-1 {
		direct[i], direct[j] = direct[j], direct[i]
	}
	return &Chain{Names: names, Direct: direct, Sel: sel, Asc: true}, true
}

// leafName matches Name or σ(Name).
func leafName(e algebra.Expr) (string, *Selection, bool) {
	switch e := e.(type) {
	case algebra.Name:
		return e.Ident, nil, true
	case algebra.Select:
		n, ok := e.Arg.(algebra.Name)
		if !ok {
			return "", nil, false
		}
		return n.Ident, &Selection{Mode: e.Mode, Word: e.W}, true
	}
	return "", nil, false
}

// opString renders the written operator between Names[i] and Names[i+1].
func (c *Chain) opString(i int) string {
	var sb strings.Builder
	if c.Asc {
		sb.WriteByte('<')
	} else {
		sb.WriteByte('>')
	}
	if c.Direct[i] {
		sb.WriteByte('d')
	}
	return sb.String()
}
