package optimizer

import (
	"testing"

	"qof/internal/algebra"
	"qof/internal/stats"
)

// orderStats fabricates statistics where Small is much cheaper than Big.
func orderStats() *stats.Stats {
	return &stats.Stats{
		DocLen: 1000, TotalTokens: 200, DistinctWords: 50,
		Regions: map[string]int{"Small": 2, "Big": 500, "Mid": 50},
		WordOcc: map[string]int{"w": 3},
	}
}

func TestOrderOperands(t *testing.T) {
	st := orderStats()
	for _, tc := range []struct{ in, want string }{
		// Commutative operators get the cheap side first.
		{`Big & Small`, `Small & Big`},
		{`Big + Small`, `Small + Big`},
		{`Small & Big`, `Small & Big`}, // already ordered
		// Non-commutative operators keep their operand roles.
		{`Big - Small`, `Big - Small`},
		{`Big > Small`, `Big > Small`},
		{`Small < Big`, `Small < Big`},
		// Recursion reaches nested operands on every side.
		{`(Big & Small) - (Big + Small)`, `(Small & Big) - (Small + Big)`},
		{`innermost(Big & Small)`, `innermost(Small & Big)`},
		{`contains(Big & Small, "w")`, `contains(Small & Big, "w")`},
		{`near(Big & Small, Mid, 2)`, `near(Small & Big, Mid, 2)`},
		{`freq(Big & Small, "w", 2)`, `freq(Small & Big, "w", 2)`},
		// Leaves pass through untouched.
		{`word("w")`, `word("w")`},
	} {
		got := OrderOperands(algebra.MustParse(tc.in), st)
		if got.String() != algebra.MustParse(tc.want).String() {
			t.Errorf("OrderOperands(%s) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestOrderOperandsNilStats(t *testing.T) {
	e := algebra.MustParse(`Big & Small`)
	if got := OrderOperands(e, nil); got.String() != e.String() {
		t.Errorf("nil stats must be a no-op, got %s", got)
	}
}
