package optimizer

import (
	"qof/internal/algebra"
	"qof/internal/stats"
)

// OrderOperands canonically orders the operands of the commutative set
// operators (∩, ∪) with the estimated-cheaper side first, recursively. For
// ∩ the evaluator then evaluates the cheap side first and can prove the
// intersection empty without touching the expensive side; for ∪ the order
// only normalizes plans. The transformation permutes operands of
// commutative operators and nothing else, so it picks among semantically
// equal, Theorem 3.6-equivalent forms — the optimizer's correctness
// guarantees (validated by the rewrite property tests) are untouched.
func OrderOperands(e algebra.Expr, st *stats.Stats) algebra.Expr {
	if st == nil {
		return e
	}
	switch e := e.(type) {
	case algebra.Binary:
		l := OrderOperands(e.L, st)
		r := OrderOperands(e.R, st)
		if e.Op == algebra.OpUnion || e.Op == algebra.OpIntersect {
			if cheaper(algebra.EstimateCost(r, st), algebra.EstimateCost(l, st)) {
				l, r = r, l
			}
		}
		return algebra.Binary{Op: e.Op, L: l, R: r}
	case algebra.Unary:
		return algebra.Unary{Op: e.Op, Arg: OrderOperands(e.Arg, st)}
	case algebra.Select:
		return algebra.Select{Mode: e.Mode, W: e.W, Arg: OrderOperands(e.Arg, st)}
	case algebra.Near:
		return algebra.Near{E: OrderOperands(e.E, st), To: OrderOperands(e.To, st), K: e.K}
	case algebra.Freq:
		return algebra.Freq{Arg: OrderOperands(e.Arg, st), W: e.W, N: e.N}
	default:
		return e
	}
}

// cheaper orders estimates by evaluation cost, breaking ties by output
// cardinality: when two operands are equally cheap to produce (two bare
// names, say), the smaller set first makes the ∩ sweep scan less and is
// likelier to trigger the evaluator's empty-operand short-circuit.
func cheaper(a, b algebra.Estimate) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	return a.Card < b.Card
}
