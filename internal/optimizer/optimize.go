package optimizer

import (
	"fmt"

	"qof/internal/algebra"
	"qof/internal/rig"
)

// RuleKind identifies which of the paper's rewrite rules fired.
type RuleKind int

// The rewrite rules of Proposition 3.5 and the triviality test of
// Proposition 3.3.
const (
	RuleDirectToPlain RuleKind = iota // 3.5(a): ⊃d → ⊃
	RuleShorten                       // 3.5(b): Ri ⊃ Rj ⊃ Rk → Ri ⊃ Rk
)

// Rewrite records one applied rule, for EXPLAIN output and tests.
type Rewrite struct {
	Kind   RuleKind
	Names  [2]string // the pair (a) or the (outer, inner) endpoints (b)
	Via    string    // for RuleShorten: the removed middle name
	Reason string
}

func (r Rewrite) String() string {
	switch r.Kind {
	case RuleDirectToPlain:
		return fmt.Sprintf("3.5(a): %s >d %s => %s > %s (%s)",
			r.Names[0], r.Names[1], r.Names[0], r.Names[1], r.Reason)
	default:
		return fmt.Sprintf("3.5(b): %s > %s > %s => %s > %s (%s)",
			r.Names[0], r.Via, r.Names[1], r.Names[0], r.Names[1], r.Reason)
	}
}

// TrivialReason explains why an expression is trivially empty
// (Proposition 3.3), or is empty if it is not.
type TrivialReason struct {
	Direct   bool
	From, To string
}

func (t TrivialReason) String() string {
	if t.From == "" {
		return "not trivial"
	}
	if t.Direct {
		return fmt.Sprintf("3.3(i): no RIG edge (%s, %s): %s can never directly include %s",
			t.From, t.To, t.From, t.To)
	}
	return fmt.Sprintf("3.3(ii): no RIG path from %s to %s: %s can never include %s",
		t.From, t.To, t.From, t.To)
}

// Trivial implements Proposition 3.3: it reports whether the chain's result
// is empty on every instance satisfying g, with the reason.
func Trivial(c *Chain, g *rig.Graph) (bool, TrivialReason) {
	for i := 0; i+1 < len(c.Names); i++ {
		from, to := c.Names[i], c.Names[i+1]
		if c.Direct[i] {
			if !g.HasEdge(from, to) {
				return true, TrivialReason{Direct: true, From: from, To: to}
			}
		} else if !g.HasPath(from, to) {
			return true, TrivialReason{From: from, To: to}
		}
	}
	return false, TrivialReason{}
}

// Optimize computes the unique most efficient version of the chain with
// respect to g (Theorem 3.6), returning the optimized chain and the list of
// rewrites applied. The input chain is not modified. Optimize assumes the
// chain is non-trivial (check with Trivial first); on a trivial chain the
// rewrites are still sound but the caller should simply return the empty
// set instead of evaluating.
func Optimize(c *Chain, g *rig.Graph) (*Chain, []Rewrite) {
	out := c.Clone()
	var log []Rewrite

	// Step 1: replace ⊃d by ⊃ wherever Proposition 3.5(a) allows.
	for i := range out.Direct {
		if !out.Direct[i] {
			continue
		}
		if rw, ok := directToPlain(out, i, g); ok {
			out.Direct[i] = false
			log = append(log, rw)
		}
	}

	// Step 2: repeatedly shorten Ri ⊃ Rj ⊃ Rk per Proposition 3.5(b)
	// until no rule applies. The system is finite Church–Rosser
	// (Theorem 3.6 via Sethi's theorem), so scan order does not affect
	// the result.
	for {
		applied := false
		for i := 0; i+2 < len(out.Names); i++ {
			if rw, ok := shortenAt(out, i, g); ok {
				removeAt(out, i+1)
				log = append(log, rw)
				applied = true
				break
			}
		}
		if !applied {
			return out, log
		}
	}
}

// RewriteSite is one applicable rewrite at a concrete position in a chain:
// for RuleDirectToPlain, Pos is the index of the ⊃d pair; for RuleShorten,
// Pos is the index of the first name of the Ri ⊃ Rj ⊃ Rk triple. Sites are
// the unit of the confluence property (Theorem 3.6): applying applicable
// sites in any order until none remain reaches the same normal form that
// Optimize computes.
type RewriteSite struct {
	Kind RuleKind
	Pos  int
	Rw   Rewrite
}

// ApplicableRewrites enumerates every rewrite Propositions 3.5(a)/(b)
// allow on c with respect to g. The chain is not modified.
func ApplicableRewrites(c *Chain, g *rig.Graph) []RewriteSite {
	var sites []RewriteSite
	for i := range c.Direct {
		if !c.Direct[i] {
			continue
		}
		if rw, ok := directToPlain(c, i, g); ok {
			sites = append(sites, RewriteSite{Kind: RuleDirectToPlain, Pos: i, Rw: rw})
		}
	}
	for i := 0; i+2 < len(c.Names); i++ {
		if rw, ok := shortenAt(c, i, g); ok {
			sites = append(sites, RewriteSite{Kind: RuleShorten, Pos: i, Rw: rw})
		}
	}
	return sites
}

// ApplyRewrite returns a copy of c with the site applied. The site must
// come from ApplicableRewrites on this chain.
func ApplyRewrite(c *Chain, s RewriteSite) *Chain {
	out := c.Clone()
	switch s.Kind {
	case RuleDirectToPlain:
		out.Direct[s.Pos] = false
	default:
		removeAt(out, s.Pos+1)
	}
	return out
}

// directToPlain checks Proposition 3.5(a) for the pair at position i.
func directToPlain(c *Chain, i int, g *rig.Graph) (Rewrite, bool) {
	from, to := c.Names[i], c.Names[i+1]
	if g.OnlyPathIsEdge(from, to) {
		return Rewrite{
			Kind:   RuleDirectToPlain,
			Names:  [2]string{from, to},
			Reason: fmt.Sprintf("the edge (%s, %s) is the only RIG path", from, to),
		}, true
	}
	if !c.rightmostPair(i) {
		return Rewrite{}, false
	}
	if !c.Asc {
		// Selection chain: the rightmost (deepest) name must not carry
		// an equality selection — equality is not preserved when the
		// witness region grows to the direct child (see package doc).
		if c.Sel != nil && c.Sel.Mode == algebra.SelEquals {
			return Rewrite{}, false
		}
		if g.AllPathsStartWithEdge(from, to) {
			return Rewrite{
				Kind:   RuleDirectToPlain,
				Names:  [2]string{from, to},
				Reason: fmt.Sprintf("%s is rightmost and every RIG path %s→%s starts with the edge", to, from, to),
			}, true
		}
		return Rewrite{}, false
	}
	// Projection chain: evaluation travels upward, so the mirrored
	// condition requires every path to end with the edge, and the special
	// pair is the one whose container is the written-rightmost name.
	if g.AllPathsEndWithEdge(from, to) {
		return Rewrite{
			Kind:   RuleDirectToPlain,
			Names:  [2]string{from, to},
			Reason: fmt.Sprintf("%s is rightmost and every RIG path %s→%s ends with the edge", from, from, to),
		}, true
	}
	return Rewrite{}, false
}

// rightmostPair reports whether pair i is the pair adjacent to the
// written-rightmost region of the chain: the deepest pair for selection
// chains, the outermost pair for projection chains (which are written
// deepest-first).
func (c *Chain) rightmostPair(i int) bool {
	if c.Asc {
		return i == 0
	}
	return i == len(c.Names)-2
}

// shortenAt checks Proposition 3.5(b) for the triple starting at i.
func shortenAt(c *Chain, i int, g *rig.Graph) (Rewrite, bool) {
	if c.Direct[i] || c.Direct[i+1] {
		return Rewrite{}, false // the rule requires plain inclusions
	}
	from, via, to := c.Names[i], c.Names[i+1], c.Names[i+2]
	if !g.AllPathsThrough(from, via, to) {
		return Rewrite{}, false
	}
	return Rewrite{
		Kind:   RuleShorten,
		Names:  [2]string{from, to},
		Via:    via,
		Reason: fmt.Sprintf("every RIG path %s→%s passes through %s", from, to, via),
	}, true
}

// removeAt deletes the middle name Names[j] (j ≥ 1) and merges the two
// adjacent operators into one plain inclusion.
func removeAt(c *Chain, j int) {
	c.Names = append(c.Names[:j], c.Names[j+1:]...)
	c.Direct = append(c.Direct[:j-1], c.Direct[j:]...)
	c.Direct[j-1] = false
}

// OptimizeExpr optimizes every maximal inclusion-chain subexpression of e
// with respect to g, leaving other operators (union, intersection,
// difference, ι, ω) in place. This is how composite queries — boolean
// selection criteria compose chains with set operators (Section 5.2) — are
// optimized. It returns the rewritten expression and all rewrites applied.
func OptimizeExpr(e algebra.Expr, g *rig.Graph) (algebra.Expr, []Rewrite) {
	if c, ok := FromExpr(e); ok {
		oc, log := Optimize(c, g)
		return oc.Expr(), log
	}
	switch e := e.(type) {
	case algebra.Binary:
		l, log1 := OptimizeExpr(e.L, g)
		r, log2 := OptimizeExpr(e.R, g)
		return algebra.Binary{Op: e.Op, L: l, R: r}, append(log1, log2...)
	case algebra.Unary:
		a, log := OptimizeExpr(e.Arg, g)
		return algebra.Unary{Op: e.Op, Arg: a}, log
	case algebra.Select:
		a, log := OptimizeExpr(e.Arg, g)
		return algebra.Select{Mode: e.Mode, W: e.W, Arg: a}, log
	default:
		return e, nil
	}
}

// TrivialExpr reports whether e contains a trivially-empty chain whose
// emptiness forces the whole expression to be empty. It is conservative:
// it only propagates emptiness through operators that preserve it
// (everything except union and difference right-hand sides).
func TrivialExpr(e algebra.Expr, g *rig.Graph) (bool, TrivialReason) {
	if c, ok := FromExpr(e); ok {
		return Trivial(c, g)
	}
	switch e := e.(type) {
	case algebra.Binary:
		switch e.Op {
		case algebra.OpUnion:
			lt, lr := TrivialExpr(e.L, g)
			if !lt {
				return false, TrivialReason{}
			}
			rt, _ := TrivialExpr(e.R, g)
			if rt {
				return true, lr
			}
			return false, TrivialReason{}
		case algebra.OpDiff:
			return TrivialExpr(e.L, g)
		default:
			// Intersection and inclusions are empty when either
			// side is.
			if t, r := TrivialExpr(e.L, g); t {
				return t, r
			}
			return TrivialExpr(e.R, g)
		}
	case algebra.Unary:
		return TrivialExpr(e.Arg, g)
	case algebra.Select:
		return TrivialExpr(e.Arg, g)
	}
	return false, TrivialReason{}
}
