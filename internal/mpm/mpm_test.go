package mpm

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"qof/internal/faultinject"
	"qof/internal/index"
	"qof/internal/region"
	"qof/internal/text"
)

func TestScannable(t *testing.T) {
	cases := []struct {
		w    string
		want bool
	}{
		{"", false},
		{"chang", true},
		{"Chang", true},
		{"x86", true},
		{"1994", true},
		{"naïve", true},
		{"日本語", true},
		{"two words", false},
		{"semi;colon", false},
		{"dash-ed", false},
		{"dot.", false},
		{"@misc", false},
	}
	for _, c := range cases {
		if got := Scannable(c.w); got != c.want {
			t.Errorf("Scannable(%q) = %v, want %v", c.w, got, c.want)
		}
	}
}

// assertParity scans content for pats and checks every pattern's set against
// the word index's postings — the package's exactness contract.
func assertParity(t *testing.T, content string, pats []string) {
	t.Helper()
	a := Compile(pats)
	words := index.NewWordIndex(text.NewDocument("parity.txt", content))
	r, err := a.Scan(content)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	for _, w := range pats {
		if !Scannable(w) {
			if _, ok := r.Lookup(w); ok {
				t.Errorf("non-scannable %q answered by the scan", w)
			}
			continue
		}
		got, ok := r.Lookup(w)
		if !ok {
			t.Fatalf("scannable %q missing from scan result", w)
		}
		want := words.MatchPoints(w)
		if !regionEqual(got, want) {
			t.Errorf("pattern %q: scan %v, index %v", w, got.Regions(), want.Regions())
		}
	}
}

func regionEqual(a, b region.Set) bool {
	ra, rb := a.Regions(), b.Regions()
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

func TestScanParity(t *testing.T) {
	content := `@article{chang94, author = {C. Chang and D. Chang},
  title = {Optimizing Queries on Files}, year = {1994},
  note  = {ab abc b ababab changchang xchang changx Chang},
  tags  = {naïve naïvete café 日本語 x86 86x}}`
	pats := []string{
		"chang", "Chang", "changchang", // case-distinct, self-overlapping
		"ab", "abc", "b", "ababab", // nested and overlapping patterns
		"1994", "year", "author",
		"naïve", "café", "日本語", "x86", // multi-byte and mixed
		"missing", "zzz", // no occurrences
		"two words", "", // not scannable
	}
	assertParity(t, content, pats)
}

// TestScanParityRandom cross-checks automaton output against the word index
// on randomized documents whose words are drawn from a small alphabet, so
// overlaps, substrings and repeats are common.
func TestScanParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1994))
	vocab := []string{"a", "ab", "ba", "aba", "bab", "abab", "x", "xy", "café", "日本"}
	seps := []string{" ", ", ", "\n", "--", "\t"}
	for round := 0; round < 50; round++ {
		var b strings.Builder
		for i := 0; i < 40; i++ {
			b.WriteString(vocab[rng.Intn(len(vocab))])
			b.WriteString(seps[rng.Intn(len(seps))])
		}
		pats := make([]string, 0, 6)
		for i := 0; i < 6; i++ {
			pats = append(pats, vocab[rng.Intn(len(vocab))])
		}
		assertParity(t, b.String(), pats)
	}
}

func TestCompileEmpty(t *testing.T) {
	if a := Compile(nil); a != nil {
		t.Errorf("Compile(nil) = %v, want nil", a)
	}
	if a := Compile([]string{"", "two words"}); a != nil {
		t.Errorf("Compile(non-scannable) = %v, want nil", a)
	}
	var a *Automaton
	r, err := a.Scan("anything")
	if r != nil || err != nil {
		t.Errorf("nil Scan = (%v, %v), want (nil, nil)", r, err)
	}
	if a.Patterns() != 0 {
		t.Errorf("nil Patterns() = %d, want 0", a.Patterns())
	}
}

func TestCompileDedups(t *testing.T) {
	a := Compile([]string{"chang", "chang", "li", "chang"})
	if got := a.Patterns(); got != 2 {
		t.Errorf("Patterns() = %d, want 2", got)
	}
}

func TestResultNil(t *testing.T) {
	var r *Result
	if s, ok := r.Lookup("w"); ok || s.Len() != 0 {
		t.Errorf("nil Lookup = (%v, %v), want (empty, false)", s, ok)
	}
	if r.Patterns() != 0 {
		t.Errorf("nil Patterns() = %d, want 0", r.Patterns())
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Errorf("FromContext(empty) = %v, want nil", got)
	}
	if got := FromContext(nil); got != nil {
		t.Errorf("FromContext(nil) = %v, want nil", got)
	}
	ctx := NewContext(context.Background(), nil)
	if got := FromContext(ctx); got != nil {
		t.Errorf("FromContext(NewContext(nil)) = %v, want nil", got)
	}
	r := &Result{sets: map[string]region.Set{"w": region.Empty}}
	ctx = NewContext(context.Background(), r)
	if got := FromContext(ctx); got != r {
		t.Errorf("FromContext = %v, want %v", got, r)
	}
}

func TestScanFault(t *testing.T) {
	if err := faultinject.Configure(faultinject.ScanMPM + "=error"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	a := Compile([]string{"chang"})
	r, err := a.Scan("chang li chang")
	if err == nil {
		t.Fatal("Scan with injected fault: no error")
	}
	if r != nil {
		t.Errorf("Scan with injected fault returned a result: %v", r)
	}
}
