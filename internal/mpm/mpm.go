// Package mpm implements batched multi-pattern word scanning: the word
// literals (σ_w atoms) of every query in a batch are compiled into one
// Aho-Corasick automaton whose single pass over the document text answers
// all of their postings lookups at once, replacing N independent index
// probes with one scan (the literal-prefilter technique from the regular
// expression indexing literature, applied to the paper's word selections).
//
// Exactness contract: for every compiled pattern w, the scan produces the
// same region set index.WordIndex.MatchPoints(w) returns — one region per
// whole-token occurrence. Only patterns that tokenize to exactly one word
// (every rune a text.IsWordRune) are scannable; a match [i, i+len(w)) is
// accepted only when text.IsWord holds, i.e. the occurrence is delimited by
// word boundaries on both sides, which is precisely when the tokenizer
// emits it as one token. UTF-8 self-synchronization guarantees byte-level
// matches of rune-clean patterns always fall on rune boundaries.
package mpm

import (
	"context"
	"sync"

	"qof/internal/faultinject"
	"qof/internal/region"
	"qof/internal/text"
)

// Automaton is a compiled multi-pattern matcher: a byte-level Aho-Corasick
// DFA (goto and failure transitions flattened into one dense delta table)
// over the batch's scannable word literals. Immutable after Compile;
// concurrent Scans may share one Automaton freely.
type Automaton struct {
	delta [][256]int32 // delta[state][b]: next state after reading b
	out   [][]int32    // pattern ids whose occurrence ends at this state
	pats  []string     // scannable patterns by id
}

// Scannable reports whether w can be answered by the automaton: non-empty
// and entirely word runes, so it tokenizes to exactly one token and the
// whole-token occurrences the scan finds coincide with the word index's
// postings. Anything else (phrases, punctuation, empty) falls back to the
// per-query index probe — which for such patterns is empty anyway, since
// tokens never contain non-word runes.
func Scannable(w string) bool {
	if w == "" {
		return false
	}
	for _, r := range w {
		if !text.IsWordRune(r) {
			return false
		}
	}
	return true
}

// Compile builds the automaton over the scannable subset of words,
// deduplicated. It returns nil when no pattern is scannable; a nil
// *Automaton scans nothing.
func Compile(words []string) *Automaton {
	seen := make(map[string]bool, len(words))
	var pats []string
	for _, w := range words {
		if !seen[w] && Scannable(w) {
			seen[w] = true
			pats = append(pats, w)
		}
	}
	if len(pats) == 0 {
		return nil
	}
	a := &Automaton{pats: pats}
	// Trie construction; -1 marks transitions to fill from failure links.
	a.addState()
	for pid, p := range pats {
		s := int32(0)
		for i := 0; i < len(p); i++ {
			b := p[i]
			if a.delta[s][b] < 0 {
				a.delta[s][b] = a.addState()
			}
			s = a.delta[s][b]
		}
		a.out[s] = append(a.out[s], int32(pid))
	}
	// BFS over the trie computing failure links and flattening them into a
	// full DFA: unset transitions route where the failure state would go,
	// and output sets absorb their failure state's outputs.
	fail := make([]int32, len(a.delta))
	queue := make([]int32, 0, len(a.delta))
	for b := 0; b < 256; b++ {
		if s := a.delta[0][b]; s > 0 {
			fail[s] = 0
			queue = append(queue, s)
		} else {
			a.delta[0][b] = 0
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if f := fail[s]; len(a.out[f]) > 0 {
			a.out[s] = append(a.out[s], a.out[f]...)
		}
		for b := 0; b < 256; b++ {
			if t := a.delta[s][b]; t > 0 {
				fail[t] = a.delta[fail[s]][b]
				queue = append(queue, t)
			} else {
				a.delta[s][b] = a.delta[fail[s]][b]
			}
		}
	}
	return a
}

func (a *Automaton) addState() int32 {
	a.delta = append(a.delta, [256]int32{})
	for b := range a.delta[len(a.delta)-1] {
		a.delta[len(a.delta)-1][b] = -1
	}
	a.out = append(a.out, nil)
	return int32(len(a.delta) - 1)
}

// Patterns reports how many distinct patterns the automaton matches.
func (a *Automaton) Patterns() int {
	if a == nil {
		return 0
	}
	return len(a.pats)
}

// rec is one accepted occurrence, accumulated in pooled scratch during the
// scan and distributed into per-pattern sets afterwards.
type rec struct {
	pid   int32
	start int
}

// scratch is the per-scan match accumulator, recycled across scans. It
// never leaves this package: Scan drains it into freshly allocated
// per-pattern region slices before returning.
type scratch struct {
	recs []rec
}

// scratchMaxCap bounds how large a recycled match buffer may be; scans over
// pathological documents fall back to garbage-collected growth.
const scratchMaxCap = 1 << 16

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func putScratch(sc *scratch) {
	if cap(sc.recs) > scratchMaxCap {
		return
	}
	sc.recs = sc.recs[:0]
	scratchPool.Put(sc)
}

// Scan runs the automaton over content and returns every pattern's
// whole-word occurrence set. A nil automaton returns a nil Result. The
// scan.mpm failpoint fires here: an injected error abandons the batch scan
// and every query in the batch degrades to its own index probes.
func (a *Automaton) Scan(content string) (*Result, error) {
	if a == nil {
		return nil, nil
	}
	if err := faultinject.Hit(faultinject.ScanMPM); err != nil {
		return nil, err
	}
	sc := getScratch()
	state := int32(0)
	for i := 0; i < len(content); i++ {
		state = a.delta[state][content[i]]
		for _, pid := range a.out[state] {
			start := i + 1 - len(a.pats[pid])
			if text.IsWord(content, start, i+1) {
				sc.recs = append(sc.recs, rec{pid: pid, start: start})
			}
		}
	}
	// Size each pattern's slice exactly, then distribute. The AC pass emits
	// matches in increasing end position and patterns have fixed length, so
	// each per-pattern slice arrives sorted, matching postings order.
	counts := make([]int32, len(a.pats))
	for _, m := range sc.recs {
		counts[m.pid]++
	}
	sets := make(map[string]region.Set, len(a.pats))
	bufs := make([][]region.Region, len(a.pats))
	for pid, n := range counts {
		if n > 0 {
			bufs[pid] = make([]region.Region, 0, n)
		}
	}
	for _, m := range sc.recs {
		bufs[m.pid] = append(bufs[m.pid], region.Region{Start: m.start, End: m.start + len(a.pats[m.pid])})
	}
	for pid, rs := range bufs {
		sets[a.pats[pid]] = region.FromRegions(rs)
	}
	putScratch(sc)
	return &Result{sets: sets}, nil
}

// Result holds the per-pattern occurrence sets of one batch scan. Immutable
// after Scan; every query of the batch reads it concurrently.
type Result struct {
	sets map[string]region.Set
}

// Lookup returns the occurrence set for w when w was part of the scan. The
// second result is false — and the caller must probe the index itself —
// for patterns outside the batch. A nil Result answers nothing.
func (r *Result) Lookup(w string) (region.Set, bool) {
	if r == nil {
		return region.Empty, false
	}
	s, ok := r.sets[w]
	return s, ok
}

// Patterns reports how many patterns the scan answered.
func (r *Result) Patterns() int {
	if r == nil {
		return 0
	}
	return len(r.sets)
}

type ctxKey struct{}

// NewContext attaches a batch scan result to ctx; the evaluator picks it up
// once per evaluation and answers Word leaves from it.
func NewContext(ctx context.Context, r *Result) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext extracts the batch scan result, nil when none is attached.
func FromContext(ctx context.Context) *Result {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Result)
	return r
}
