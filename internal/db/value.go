// Package db implements the object-database substrate the paper assumes
// (it used the O2 system): complex values — strings, tuples, sets — classes
// with extents of objects, path navigation including wildcard paths, and
// value joins. It is deliberately small: the paper relies only on object
// construction, attribute navigation, selection and join, and this package
// provides exactly that surface for the query engine and the full-scan
// baseline.
package db

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates value shapes.
type Kind int

// Value kinds.
const (
	KindString Kind = iota
	KindTuple
	KindSet
)

// Value is a complex database value: a string, a tuple of named attributes,
// or a set of values.
type Value interface {
	Kind() Kind
	// String renders the value in a stable literal form.
	String() string
}

// String is an atomic string value.
type String string

// Kind returns KindString.
func (String) Kind() Kind { return KindString }

func (s String) String() string { return fmt.Sprintf("%q", string(s)) }

// Tuple is an ordered collection of named attributes.
type Tuple struct {
	names  []string
	values map[string]Value
}

// NewTuple creates an empty tuple.
func NewTuple() *Tuple {
	return &Tuple{values: make(map[string]Value)}
}

// Kind returns KindTuple.
func (*Tuple) Kind() Kind { return KindTuple }

// Put sets an attribute, keeping first-set order for rendering. It returns
// the tuple for chaining.
func (t *Tuple) Put(name string, v Value) *Tuple {
	if _, ok := t.values[name]; !ok {
		t.names = append(t.names, name)
	}
	t.values[name] = v
	return t
}

// Get returns the attribute value and whether it exists.
func (t *Tuple) Get(name string) (Value, bool) {
	v, ok := t.values[name]
	return v, ok
}

// Attrs returns the attribute names in insertion order.
func (t *Tuple) Attrs() []string {
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// Len reports the number of attributes.
func (t *Tuple) Len() int { return len(t.names) }

func (t *Tuple) String() string {
	var sb strings.Builder
	sb.WriteString("tuple(")
	for i, n := range t.names {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(n)
		sb.WriteString(": ")
		sb.WriteString(t.values[n].String())
	}
	sb.WriteString(")")
	return sb.String()
}

// Set is a collection of values. Sets preserve insertion order (they behave
// as the paper's set- or list-valued attributes).
type Set struct {
	elems []Value
}

// NewSet creates a set with the given elements.
func NewSet(elems ...Value) *Set { return &Set{elems: elems} }

// Kind returns KindSet.
func (*Set) Kind() Kind { return KindSet }

// Add appends an element.
func (s *Set) Add(v Value) { s.elems = append(s.elems, v) }

// Elems returns the elements. Callers must not modify the slice.
func (s *Set) Elems() []Value { return s.elems }

// Len reports the number of elements.
func (s *Set) Len() int { return len(s.elems) }

func (s *Set) String() string {
	parts := make([]string, len(s.elems))
	for i, e := range s.elems {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Equal reports deep value equality. Set equality is order-insensitive.
func Equal(a, b Value) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch a := a.(type) {
	case String:
		return a == b.(String)
	case *Tuple:
		bt := b.(*Tuple)
		if a.Len() != bt.Len() {
			return false
		}
		for _, n := range a.names {
			bv, ok := bt.Get(n)
			if !ok || !Equal(a.values[n], bv) {
				return false
			}
		}
		return true
	case *Set:
		bs := b.(*Set)
		if a.Len() != bs.Len() {
			return false
		}
		// Order-insensitive comparison via canonical rendering.
		ka := make([]string, a.Len())
		kb := make([]string, bs.Len())
		for i, e := range a.elems {
			ka[i] = e.String()
		}
		for i, e := range bs.elems {
			kb[i] = e.String()
		}
		sort.Strings(ka)
		sort.Strings(kb)
		for i := range ka {
			if ka[i] != kb[i] {
				return false
			}
		}
		return true
	}
	return false
}

// Strings flattens a value into the atomic strings it contains, depth-first.
// A leaf attribute compare ("= w") matches when one of these equals w.
func Strings(v Value) []string {
	var out []string
	var walk func(Value)
	walk = func(v Value) {
		switch v := v.(type) {
		case String:
			out = append(out, string(v))
		case *Tuple:
			for _, n := range v.names {
				walk(v.values[n])
			}
		case *Set:
			for _, e := range v.elems {
				walk(e)
			}
		case nil:
		}
	}
	walk(v)
	return out
}
