package db

import (
	"reflect"
	"testing"
)

// reference builds the tuple for one bibliographic reference with the given
// author and editor last names.
func reference(key string, authors, editors []string) *Tuple {
	mkNames := func(lasts []string) *Set {
		s := NewSet()
		for _, l := range lasts {
			s.Add(NewTuple().
				Put("First_Name", String("X")).
				Put("Last_Name", String(l)))
		}
		return s
	}
	return NewTuple().
		Put("Key", String(key)).
		Put("Authors", mkNames(authors)).
		Put("Editors", mkNames(editors))
}

func TestTupleBasics(t *testing.T) {
	tp := NewTuple().Put("A", String("x")).Put("B", String("y"))
	if tp.Kind() != KindTuple || tp.Len() != 2 {
		t.Fatal("tuple shape")
	}
	if got := tp.Attrs(); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Errorf("Attrs = %v", got)
	}
	v, ok := tp.Get("A")
	if !ok || v.(String) != "x" {
		t.Errorf("Get(A) = %v %v", v, ok)
	}
	if _, ok := tp.Get("C"); ok {
		t.Error("Get(C)")
	}
	tp.Put("A", String("z")) // overwrite keeps order
	if got := tp.Attrs(); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Errorf("Attrs after overwrite = %v", got)
	}
	if tp.String() != `tuple(A: "z", B: "y")` {
		t.Errorf("String = %s", tp.String())
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(String("a"))
	s.Add(String("b"))
	if s.Kind() != KindSet || s.Len() != 2 {
		t.Fatal("set shape")
	}
	if s.String() != `{"a", "b"}` {
		t.Errorf("String = %s", s.String())
	}
	if String("a").Kind() != KindString {
		t.Error("string kind")
	}
}

func TestEqual(t *testing.T) {
	a := reference("k", []string{"Chang"}, nil)
	b := reference("k", []string{"Chang"}, nil)
	if !Equal(a, b) {
		t.Error("equal tuples")
	}
	c := reference("k", []string{"Corliss"}, nil)
	if Equal(a, c) {
		t.Error("different tuples")
	}
	// Set equality ignores order.
	s1 := NewSet(String("a"), String("b"))
	s2 := NewSet(String("b"), String("a"))
	if !Equal(s1, s2) {
		t.Error("set order")
	}
	if Equal(s1, NewSet(String("a"))) {
		t.Error("set size")
	}
	if Equal(String("a"), s1) {
		t.Error("kind mismatch")
	}
	if !Equal(nil, nil) || Equal(nil, String("a")) {
		t.Error("nil cases")
	}
	// Tuples with same size but different attribute names.
	t1 := NewTuple().Put("A", String("x"))
	t2 := NewTuple().Put("B", String("x"))
	if Equal(t1, t2) {
		t.Error("attr names")
	}
}

func TestStrings(t *testing.T) {
	r := reference("k", []string{"Chang", "Corliss"}, []string{"Griewank"})
	got := Strings(r)
	want := []string{"k", "X", "Chang", "X", "Corliss", "X", "Griewank"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Strings = %v", got)
	}
	if Strings(nil) != nil {
		t.Error("nil")
	}
}

func TestDatabase(t *testing.T) {
	d := NewDatabase()
	d.DefineClass("References")
	o1 := d.Insert("References", reference("a", []string{"Chang"}, nil))
	o2 := d.Insert("References", reference("b", nil, []string{"Chang"}))
	d.Insert("Other", String("x"))
	if o1.ID == o2.ID {
		t.Error("OIDs must differ")
	}
	if d.Count("References") != 2 || d.Count("Other") != 1 || d.Count("Nope") != 0 {
		t.Error("counts")
	}
	if got := d.Classes(); !reflect.DeepEqual(got, []string{"References", "Other"}) {
		t.Errorf("Classes = %v", got)
	}
	ext := d.Extent("References")
	if len(ext) != 2 || ext[0] != o1 || ext[1] != o2 {
		t.Error("extent")
	}
	if o1.String() == "" || o1.Class != "References" {
		t.Error("object fields")
	}
}

func TestNavigatePlain(t *testing.T) {
	r := reference("k", []string{"Chang", "Corliss"}, []string{"Griewank"})
	got := NavigateStrings(r, PathOf("Authors", "Last_Name"))
	if !reflect.DeepEqual(got, []string{"Chang", "Corliss"}) {
		t.Errorf("authors = %v", got)
	}
	if got := NavigateStrings(r, PathOf("Editors", "Last_Name")); !reflect.DeepEqual(got, []string{"Griewank"}) {
		t.Errorf("editors = %v", got)
	}
	if got := Navigate(r, PathOf("Missing")); got != nil {
		t.Errorf("missing attr = %v", got)
	}
	if got := Navigate(r, PathOf("Key", "Deeper")); got != nil {
		t.Errorf("string navigation = %v", got)
	}
	if got := Navigate(nil, PathOf("A")); got != nil {
		t.Errorf("nil value = %v", got)
	}
	// Empty path returns the value itself.
	if got := Navigate(r, nil); len(got) != 1 || got[0] != Value(r) {
		t.Errorf("empty path = %v", got)
	}
}

func TestNavigateAny(t *testing.T) {
	r := reference("k", []string{"Chang"}, []string{"Griewank"})
	// r.X.Last_Name with exactly one wildcard step: Authors or Editors.
	steps := []Step{{Any: true}, {Attr: "Last_Name"}}
	got := SortedUnique(NavigateStrings(r, steps))
	if !reflect.DeepEqual(got, []string{"Chang", "Griewank"}) {
		t.Errorf("any-step = %v", got)
	}
}

func TestNavigateStar(t *testing.T) {
	r := reference("k", []string{"Chang"}, []string{"Griewank"})
	// r.*X.Last_Name: any path to a Last_Name (the paper's Section 5.3).
	steps := []Step{{Star: true}, {Attr: "Last_Name"}}
	got := SortedUnique(NavigateStrings(r, steps))
	if !reflect.DeepEqual(got, []string{"Chang", "Griewank"}) {
		t.Errorf("star = %v", got)
	}
	// Star can match the empty path.
	if got := Navigate(String("x"), []Step{{Star: true}}); len(got) != 1 {
		t.Errorf("star at leaf = %v", got)
	}
	if !HasLeaf(r, steps, "Chang") || HasLeaf(r, steps, "Nope") {
		t.Error("HasLeaf")
	}
}

func TestStepString(t *testing.T) {
	if (Step{Star: true}).String() != "*" || (Step{Any: true}).String() != "?" || (Step{Attr: "A"}).String() != "A" {
		t.Error("Step.String")
	}
}

func TestSortedUnique(t *testing.T) {
	got := SortedUnique([]string{"b", "a", "b", "a", "c"})
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("SortedUnique = %v", got)
	}
	if got := SortedUnique(nil); len(got) != 0 {
		t.Errorf("nil = %v", got)
	}
}
