package db

import (
	"fmt"
	"sort"
)

// OID identifies an object within one Database.
type OID int

// Object is a class member: an identity plus a complex value.
type Object struct {
	ID    OID
	Class string
	Val   Value
}

func (o *Object) String() string {
	return fmt.Sprintf("%s#%d%s", o.Class, o.ID, o.Val.String())
}

// Database is an in-memory object database: named classes with extents.
type Database struct {
	classes map[string][]*Object
	order   []string
	nextOID OID
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{classes: make(map[string][]*Object)}
}

// DefineClass registers a class (idempotent).
func (d *Database) DefineClass(name string) {
	if _, ok := d.classes[name]; !ok {
		d.classes[name] = nil
		d.order = append(d.order, name)
	}
}

// Insert creates an object of the class with the given value and adds it to
// the class extent.
func (d *Database) Insert(class string, v Value) *Object {
	d.DefineClass(class)
	d.nextOID++
	o := &Object{ID: d.nextOID, Class: class, Val: v}
	d.classes[class] = append(d.classes[class], o)
	return o
}

// Extent returns the objects of the class in insertion order.
func (d *Database) Extent(class string) []*Object {
	return d.classes[class]
}

// Classes returns the class names in definition order.
func (d *Database) Classes() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Count reports the extent size of a class.
func (d *Database) Count(class string) int { return len(d.classes[class]) }

// Step is one component of a path expression. Exactly one field is set:
// Attr navigates a named attribute, Any ("X") navigates exactly one
// arbitrary attribute, and Star ("*X") navigates zero or more arbitrary
// attributes (Section 5.3's extended path expressions).
type Step struct {
	Attr string
	Any  bool
	Star bool
}

func (s Step) String() string {
	switch {
	case s.Star:
		return "*"
	case s.Any:
		return "?"
	default:
		return s.Attr
	}
}

// PathOf builds a plain attribute path.
func PathOf(attrs ...string) []Step {
	steps := make([]Step, len(attrs))
	for i, a := range attrs {
		steps[i] = Step{Attr: a}
	}
	return steps
}

// Navigate evaluates a path expression against a value, with the usual
// object-database semantics: navigating into a set applies the remaining
// path to every element. It returns every value the path reaches.
func Navigate(v Value, steps []Step) []Value {
	if v == nil {
		return nil
	}
	if len(steps) == 0 {
		return []Value{v}
	}
	switch val := v.(type) {
	case *Set:
		var out []Value
		for _, e := range val.Elems() {
			out = append(out, Navigate(e, steps)...)
		}
		return out
	case *Tuple:
		step := steps[0]
		switch {
		case step.Star:
			// Zero steps consumed here, or descend one attribute
			// keeping the star.
			out := Navigate(v, steps[1:])
			for _, a := range val.Attrs() {
				child, _ := val.Get(a)
				out = append(out, Navigate(child, steps)...)
			}
			return out
		case step.Any:
			var out []Value
			for _, a := range val.Attrs() {
				child, _ := val.Get(a)
				out = append(out, Navigate(child, steps[1:])...)
			}
			return out
		default:
			child, ok := val.Get(step.Attr)
			if !ok {
				return nil
			}
			return Navigate(child, steps[1:])
		}
	case String:
		if steps[0].Star {
			// A star may consume zero steps at a leaf.
			return Navigate(v, steps[1:])
		}
		return nil
	}
	return nil
}

// NavigateStrings evaluates the path and flattens the results to their
// atomic strings, the form used by selections and joins.
func NavigateStrings(v Value, steps []Step) []string {
	var out []string
	for _, r := range Navigate(v, steps) {
		out = append(out, Strings(r)...)
	}
	return out
}

// HasLeaf reports whether the path reaches some atomic string equal to w.
func HasLeaf(v Value, steps []Step, w string) bool {
	for _, s := range NavigateStrings(v, steps) {
		if s == w {
			return true
		}
	}
	return false
}

// SortedUnique sorts and deduplicates a string slice in place, returning it.
// Shared by join and projection result handling.
func SortedUnique(ss []string) []string {
	sort.Strings(ss)
	w := 0
	for i, s := range ss {
		if i == 0 || s != ss[w-1] {
			ss[w] = s
			w++
		}
	}
	return ss[:w]
}
