package xsql

import (
	"strings"
	"testing"
	"testing/quick"

	"qof/internal/db"
)

// sampleRef builds a reference tuple with the given author and editor last
// names for EvalCond tests.
func sampleRef(authors, editors []string) *db.Tuple {
	names := func(lasts []string) *db.Tuple {
		set := db.NewSet()
		for _, l := range lasts {
			set.Add(db.NewTuple().
				Put("First_Name", db.String("A")).
				Put("Last_Name", db.String(l)))
		}
		return db.NewTuple().Put("Name", set)
	}
	return db.NewTuple().
		Put("Key", db.String("k1")).
		Put("Authors", names(authors)).
		Put("Editors", names(editors))
}

func TestEvalCondConst(t *testing.T) {
	env := Env{"r": sampleRef([]string{"Chang", "Corliss"}, []string{"Griewank"})}
	eval := func(src string) bool {
		t.Helper()
		q := MustParse("SELECT r FROM References r WHERE " + src)
		got, err := EvalCond(env, q.Where)
		if err != nil {
			t.Fatalf("EvalCond(%s): %v", src, err)
		}
		return got
	}
	if !eval(`r.Authors.Name.Last_Name = "Chang"`) {
		t.Error("Chang as author")
	}
	if eval(`r.Editors.Name.Last_Name = "Chang"`) {
		t.Error("Chang is not an editor")
	}
	if !eval(`r.*X.Last_Name = "Griewank"`) {
		t.Error("star path")
	}
	if !eval(`r.Authors.Name.Last_Name = "Chang" AND r.Key = "k1"`) {
		t.Error("AND")
	}
	if eval(`r.Authors.Name.Last_Name = "Chang" AND r.Key = "zz"`) {
		t.Error("AND false")
	}
	if !eval(`r.Key = "zz" OR r.Key = "k1"`) {
		t.Error("OR")
	}
	if !eval(`NOT r.Key = "zz"`) {
		t.Error("NOT")
	}
	if eval(`r.Missing = "x"`) {
		t.Error("missing attribute")
	}
}

func TestEvalCondJoin(t *testing.T) {
	both := sampleRef([]string{"Chang"}, []string{"Chang", "Other"})
	disjoint := sampleRef([]string{"Chang"}, []string{"Corliss"})
	q := MustParse(`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`)
	if got, _ := EvalCond(Env{"r": both}, q.Where); !got {
		t.Error("self-join should match")
	}
	if got, _ := EvalCond(Env{"r": disjoint}, q.Where); got {
		t.Error("disjoint should not match")
	}
	// Empty side.
	empty := sampleRef(nil, []string{"Chang"})
	if got, _ := EvalCond(Env{"r": empty}, q.Where); got {
		t.Error("empty side should not match")
	}
}

func TestEvalCondErrors(t *testing.T) {
	q := MustParse(`SELECT r FROM References r WHERE r.A = "x"`)
	if _, err := EvalCond(Env{}, q.Where); err == nil {
		t.Error("unbound variable in env")
	}
	qj := MustParse(`SELECT r FROM References r, Other s WHERE r.A = s.B`)
	if _, err := EvalCond(Env{"r": sampleRef(nil, nil)}, qj.Where); err == nil {
		t.Error("unbound join variable")
	}
	if ok, err := EvalCond(Env{}, nil); err != nil || !ok {
		t.Error("nil cond is true")
	}
}

func TestParsePaperQuery(t *testing.T) {
	q := MustParse(`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)
	if len(q.From) != 1 || q.From[0].Class != "References" || q.From[0].Var != "r" {
		t.Fatalf("From = %v", q.From)
	}
	if q.Select.Var != "r" || len(q.Select.Segs) != 0 {
		t.Fatalf("Select = %v", q.Select)
	}
	c, ok := q.Where.(CmpConst)
	if !ok {
		t.Fatalf("Where = %T", q.Where)
	}
	if c.Word != "Chang" || c.Path.String() != "r.Authors.Name.Last_Name" {
		t.Fatalf("cmp = %v", c)
	}
	if c.Path.HasVariables() {
		t.Error("plain path flagged as variable")
	}
	if got := c.Path.Attrs(); len(got) != 3 || got[0] != "Authors" || got[2] != "Last_Name" {
		t.Errorf("Attrs = %v", got)
	}
	if cls, ok := q.ClassOf("r"); !ok || cls != "References" {
		t.Error("ClassOf")
	}
	if _, ok := q.ClassOf("zzz"); ok {
		t.Error("ClassOf unknown")
	}
}

func TestParseProjection(t *testing.T) {
	q := MustParse(`SELECT r.Authors.Name.Last_Name FROM References r`)
	if q.Where != nil {
		t.Error("no WHERE expected")
	}
	if q.Select.String() != "r.Authors.Name.Last_Name" {
		t.Errorf("Select = %v", q.Select)
	}
}

func TestParseJoin(t *testing.T) {
	q := MustParse(`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`)
	c, ok := q.Where.(CmpPaths)
	if !ok {
		t.Fatalf("Where = %T", q.Where)
	}
	if c.L.String() != "r.Editors.Name.Last_Name" || c.R.String() != "r.Authors.Name.Last_Name" {
		t.Errorf("join = %v", c)
	}
}

func TestParseBoolean(t *testing.T) {
	q := MustParse(`SELECT r FROM References r WHERE r.Year = "1982" AND (r.Key = "a" OR NOT r.Key = "b")`)
	and, ok := q.Where.(And)
	if !ok {
		t.Fatalf("top = %T", q.Where)
	}
	or, ok := and.R.(Or)
	if !ok {
		t.Fatalf("right = %T", and.R)
	}
	if _, ok := or.R.(Not); !ok {
		t.Fatalf("or right = %T", or.R)
	}
	if got := len(Conds(q.Where)); got != 3 {
		t.Errorf("Conds = %d", got)
	}
	// Precedence: AND binds tighter than OR.
	q2 := MustParse(`SELECT r FROM R r WHERE r.A = "1" OR r.B = "2" AND r.C = "3"`)
	if _, ok := q2.Where.(Or); !ok {
		t.Errorf("top = %T, want Or", q2.Where)
	}
}

func TestParseVariables(t *testing.T) {
	q := MustParse(`SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"`)
	c := q.Where.(CmpConst)
	if len(c.Path.Segs) != 2 || !c.Path.Segs[0].Star || c.Path.Segs[0].Var != "X" {
		t.Fatalf("star path = %+v", c.Path.Segs)
	}
	if !c.Path.HasVariables() {
		t.Error("HasVariables")
	}
	if c.Path.String() != "r.*X.Last_Name" {
		t.Errorf("String = %q", c.Path)
	}
	// Anonymous star and one-step variables.
	q2 := MustParse(`SELECT r FROM References r WHERE r.*.Last_Name = "C"`)
	if !q2.Where.(CmpConst).Path.Segs[0].Star {
		t.Error("anonymous star")
	}
	q3 := MustParse(`SELECT r FROM References r WHERE r.?X.Name.Last_Name = "C"`)
	segs := q3.Where.(CmpConst).Path.Segs
	if !segs[0].Any || segs[0].Var != "X" || segs[1].Attr != "Name" {
		t.Errorf("any path = %+v", segs)
	}
	if segs[0].String() != "?X" {
		t.Errorf("seg string = %q", segs[0])
	}
}

func TestParseContains(t *testing.T) {
	q := MustParse(`SELECT r FROM References r WHERE r.Abstract CONTAINS "differentiation"`)
	c, ok := q.Where.(CmpContains)
	if !ok {
		t.Fatalf("Where = %T", q.Where)
	}
	if c.Word != "differentiation" || c.Path.String() != "r.Abstract" {
		t.Fatalf("contains = %v", c)
	}
	if !strings.Contains(q.String(), "CONTAINS") {
		t.Errorf("String = %q", q)
	}
	// Round trip.
	if MustParse(q.String()).String() != q.String() {
		t.Error("round trip")
	}
	// CONTAINS needs a string constant.
	if _, err := Parse(`SELECT r FROM R r WHERE r.A CONTAINS r.B`); err == nil {
		t.Error("CONTAINS with path accepted")
	}
}

func TestParseLimit(t *testing.T) {
	q := MustParse(`SELECT r FROM References r WHERE r.Key STARTS "C" LIMIT 7`)
	if q.Limit != 7 {
		t.Fatalf("Limit = %d, want 7", q.Limit)
	}
	if got := q.String(); !strings.HasSuffix(got, " LIMIT 7") {
		t.Errorf("String = %q", got)
	}
	if MustParse(q.String()).String() != q.String() {
		t.Error("round trip")
	}
	// LIMIT without WHERE.
	if q := MustParse(`SELECT r FROM References r LIMIT 2`); q.Limit != 2 || q.Where != nil {
		t.Errorf("bare LIMIT: %+v", q)
	}
	// No LIMIT leaves the zero value (unlimited).
	if q := MustParse(`SELECT r FROM References r`); q.Limit != 0 {
		t.Errorf("Limit = %d, want 0", q.Limit)
	}
	for _, bad := range []string{
		`SELECT r FROM References r LIMIT 0`,
		`SELECT r FROM References r LIMIT -1`,
		`SELECT r FROM References r LIMIT x`,
		`SELECT r FROM References r LIMIT "2"`,
		`SELECT r FROM References r LIMIT`,
		`SELECT r FROM References r LIMIT 2 3`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestEvalCondContains(t *testing.T) {
	env := Env{"r": NewTestTuple()}
	eval := func(src string) bool {
		t.Helper()
		q := MustParse("SELECT r FROM References r WHERE " + src)
		got, err := EvalCond(env, q.Where)
		if err != nil {
			t.Fatalf("EvalCond(%s): %v", src, err)
		}
		return got
	}
	if !eval(`r.Abstract CONTAINS "differentiation"`) {
		t.Error("word in abstract")
	}
	if eval(`r.Abstract CONTAINS "different"`) {
		t.Error("substring is not a whole word")
	}
	if !eval(`r.Abstract CONTAINS "automatic differentiation"`) {
		t.Error("phrase containment")
	}
	if eval(`r.Abstract CONTAINS "zebra"`) {
		t.Error("absent word")
	}
	q := MustParse(`SELECT r FROM R r WHERE r.A CONTAINS "x"`)
	if _, err := EvalCond(Env{}, q.Where); err == nil {
		t.Error("unbound variable")
	}
}

// NewTestTuple builds a tuple with an Abstract attribute for CONTAINS tests.
func NewTestTuple() db.Value {
	return db.NewTuple().Put("Abstract", db.String("uses automatic differentiation to solve"))
}

func TestParseMultipleFrom(t *testing.T) {
	q := MustParse(`SELECT r FROM References r, Citations c WHERE r.Key = c.Target`)
	if len(q.From) != 2 || q.From[1].Class != "Citations" || q.From[1].Var != "c" {
		t.Fatalf("From = %v", q.From)
	}
}

func TestQueryString(t *testing.T) {
	src := `SELECT r FROM References r WHERE r.Year = "1982" AND r.Key = "a"`
	q := MustParse(src)
	q2 := MustParse(q.String())
	if q2.String() != q.String() {
		t.Errorf("round trip: %q vs %q", q.String(), q2.String())
	}
	for _, want := range []string{"SELECT r", "FROM References r", "WHERE", "AND"} {
		if !strings.Contains(q.String(), want) {
			t.Errorf("String missing %q: %q", want, q)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`FROM References r`,
		`SELECT FROM References r`,
		`SELECT r References r`,
		`SELECT r FROM References`,
		`SELECT r FROM References r WHERE`,
		`SELECT r FROM References r WHERE r.A`,
		`SELECT r FROM References r WHERE r.A = `,
		`SELECT r FROM References r WHERE (r.A = "x"`,
		`SELECT r FROM References r extra`,
		`SELECT r FROM References r WHERE x.A = "c"`,        // unbound variable
		`SELECT x FROM References r`,                        // unbound select
		`SELECT r FROM References r, Other r`,               // duplicate variable
		`SELECT r FROM References r WHERE r. = "x"`,         // missing attr
		`SELECT r FROM References r WHERE r.A = "x" WHERE`,  // trailing
		`SELECT r FROM References r WHERE NOT`,              // dangling NOT
		`SELECT r FROM References r WHERE r.A = "b" AND`,    // dangling AND
		`SELECT r FROM References r WHERE r.A == "b"`,       // bad operator
		`SELECT r FROM "References" r WHERE r.A = "b"`,      // string as class
		`SELECT r FROM References r WHERE r.A = "b" OR 3 =`, // junk
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	q, err := Parse(`select r from References r where r.Key = "k"`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where == nil {
		t.Error("lowercase keywords")
	}
}

func TestCondString(t *testing.T) {
	q := MustParse(`SELECT r FROM R r WHERE NOT (r.A = "x" OR r.B = r.C)`)
	s := q.Where.String()
	for _, want := range []string{"NOT", "OR", `r.A = "x"`, "r.B = r.C"} {
		if !strings.Contains(s, want) {
			t.Errorf("Cond.String = %q missing %q", s, want)
		}
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		q, err := Parse(s)
		return err != nil || q != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Query-shaped prefixes with junk suffixes.
	for _, s := range []string{
		`SELECT r FROM R r WHERE r.A = "x" ) (`,
		`SELECT r FROM R r WHERE ((((`,
		`SELECT r..B FROM R r`,
		`SELECT r FROM R r WHERE r.A CONTAINS`,
		`SELECT r FROM R r WHERE r.A STARTS STARTS`,
		"SELECT r FROM R r WHERE r.A = \"unterminated",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}
