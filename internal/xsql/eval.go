package xsql

import (
	"fmt"
	"strings"

	"qof/internal/db"
	"qof/internal/text"
)

// Env binds range variables to the database values they currently range
// over during evaluation.
type Env map[string]db.Value

// Steps converts the path's segments into database navigation steps.
func (p Path) Steps() []db.Step {
	steps := make([]db.Step, len(p.Segs))
	for i, s := range p.Segs {
		switch {
		case s.Star:
			steps[i] = db.Step{Star: true}
		case s.Any:
			steps[i] = db.Step{Any: true}
		default:
			steps[i] = db.Step{Attr: s.Attr}
		}
	}
	return steps
}

// EvalCond decides a WHERE condition for the given variable bindings, with
// the usual existential path semantics: a comparison holds when some value
// reached by the path(s) satisfies it.
func EvalCond(env Env, c Cond) (bool, error) {
	switch c := c.(type) {
	case nil:
		return true, nil
	case CmpConst:
		v, ok := env[c.Path.Var]
		if !ok {
			return false, fmt.Errorf("xsql: unbound variable %q", c.Path.Var)
		}
		return db.HasLeaf(v, c.Path.Steps(), c.Word), nil
	case CmpContains:
		v, ok := env[c.Path.Var]
		if !ok {
			return false, fmt.Errorf("xsql: unbound variable %q", c.Path.Var)
		}
		for _, s := range db.NavigateStrings(v, c.Path.Steps()) {
			if text.ContainsWholeWord(s, c.Word) {
				return true, nil
			}
		}
		return false, nil
	case CmpStarts:
		v, ok := env[c.Path.Var]
		if !ok {
			return false, fmt.Errorf("xsql: unbound variable %q", c.Path.Var)
		}
		for _, s := range db.NavigateStrings(v, c.Path.Steps()) {
			if strings.HasPrefix(s, c.Prefix) {
				return true, nil
			}
		}
		return false, nil
	case CmpPaths:
		lv, ok := env[c.L.Var]
		if !ok {
			return false, fmt.Errorf("xsql: unbound variable %q", c.L.Var)
		}
		rv, ok := env[c.R.Var]
		if !ok {
			return false, fmt.Errorf("xsql: unbound variable %q", c.R.Var)
		}
		ls := db.NavigateStrings(lv, c.L.Steps())
		if len(ls) == 0 {
			return false, nil
		}
		rs := db.NavigateStrings(rv, c.R.Steps())
		if len(rs) == 0 {
			return false, nil
		}
		seen := make(map[string]bool, len(ls))
		for _, s := range ls {
			seen[s] = true
		}
		for _, s := range rs {
			if seen[s] {
				return true, nil
			}
		}
		return false, nil
	case And:
		l, err := EvalCond(env, c.L)
		if err != nil || !l {
			return false, err
		}
		return EvalCond(env, c.R)
	case Or:
		l, err := EvalCond(env, c.L)
		if err != nil || l {
			return l, err
		}
		return EvalCond(env, c.R)
	case Not:
		v, err := EvalCond(env, c.C)
		return !v, err
	default:
		return false, fmt.Errorf("xsql: unknown condition %T", c)
	}
}
