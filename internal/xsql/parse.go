package xsql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a query in the dialect documented in the package comment.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("xsql: unexpected %q after query", p.peek().text)
	}
	if err := q.check(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse, panicking on error.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// check validates variable scoping.
func (q *Query) check() error {
	seen := make(map[string]bool)
	for _, f := range q.From {
		if seen[f.Var] {
			return fmt.Errorf("xsql: range variable %q bound twice", f.Var)
		}
		seen[f.Var] = true
	}
	var paths []Path
	paths = append(paths, q.Select)
	for _, c := range Conds(q.Where) {
		switch c := c.(type) {
		case CmpConst:
			paths = append(paths, c.Path)
		case CmpContains:
			paths = append(paths, c.Path)
		case CmpStarts:
			paths = append(paths, c.Path)
		case CmpPaths:
			paths = append(paths, c.L, c.R)
		}
	}
	for _, p := range paths {
		if !seen[p.Var] {
			return fmt.Errorf("xsql: unbound range variable %q in path %s", p.Var, p)
		}
	}
	return nil
}

type token struct {
	text string
	str  bool // quoted string literal
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '"':
			// Find the closing quote, honoring backslash escapes, then
			// decode with the Go string-literal rules. String() renders
			// words with strconv.Quote, so lexing with strconv.Unquote
			// makes parse → String → reparse the identity.
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("xsql: unterminated string constant at offset %d", i)
			}
			word, err := strconv.Unquote(src[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("xsql: bad string constant at offset %d: %v", i, err)
			}
			toks = append(toks, token{text: word, str: true})
			i = j + 1
		case c == '.' || c == ',' || c == '=' || c == '(' || c == ')' || c == '*' || c == '?':
			toks = append(toks, token{text: string(c)})
			i++
		case isIdent(c):
			j := i
			for j < len(src) && isIdent(src[j]) {
				j++
			}
			toks = append(toks, token{text: src[i:j]})
			i = j
		default:
			toks = append(toks, token{text: string(c)})
			i++
		}
	}
	return toks, nil
}

func isIdent(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

// keyword consumes the case-insensitive keyword if present.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if !t.str && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.str || t.text == "" || !isIdent(t.text[0]) {
		return "", fmt.Errorf("xsql: expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) expect(text string) error {
	t := p.peek()
	if t.str || t.text != text {
		return fmt.Errorf("xsql: expected %q, got %q", text, t.text)
	}
	p.pos++
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if !p.keyword("SELECT") {
		return nil, fmt.Errorf("xsql: query must start with SELECT")
	}
	sel, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if !p.keyword("FROM") {
		return nil, fmt.Errorf("xsql: expected FROM, got %q", p.peek().text)
	}
	q := &Query{Select: sel}
	for {
		class, err := p.ident()
		if err != nil {
			return nil, fmt.Errorf("xsql: FROM clause: %w", err)
		}
		v, err := p.ident()
		if err != nil {
			return nil, fmt.Errorf("xsql: FROM clause needs a range variable after %q: %w", class, err)
		}
		q.From = append(q.From, FromClause{Class: class, Var: v})
		if p.peek().text != "," || p.peek().str {
			break
		}
		p.pos++
	}
	if p.keyword("WHERE") {
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = cond
	}
	if p.keyword("LIMIT") {
		t := p.peek()
		n, err := strconv.Atoi(t.text)
		if t.str || err != nil || n < 1 {
			return nil, fmt.Errorf("xsql: LIMIT expects a positive integer, got %q", t.text)
		}
		p.pos++
		q.Limit = n
	}
	return q, nil
}

func (p *parser) parseOr() (Cond, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Cond, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Cond, error) {
	if p.keyword("NOT") {
		c, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not{C: c}, nil
	}
	if p.peek().text == "(" && !p.peek().str {
		p.pos++
		c, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return c, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Cond, error) {
	l, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if p.keyword("CONTAINS") {
		t := p.peek()
		if !t.str {
			return nil, fmt.Errorf("xsql: CONTAINS expects a string constant, got %q", t.text)
		}
		p.pos++
		return CmpContains{Path: l, Word: t.text}, nil
	}
	if p.keyword("STARTS") {
		t := p.peek()
		if !t.str {
			return nil, fmt.Errorf("xsql: STARTS expects a string constant, got %q", t.text)
		}
		p.pos++
		return CmpStarts{Path: l, Prefix: t.text}, nil
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.str {
		p.pos++
		return CmpConst{Path: l, Word: t.text}, nil
	}
	r, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	return CmpPaths{L: l, R: r}, nil
}

func (p *parser) parsePath() (Path, error) {
	v, err := p.ident()
	if err != nil {
		return Path{}, err
	}
	path := Path{Var: v}
	for p.peek().text == "." && !p.peek().str {
		p.pos++
		t := p.peek()
		switch {
		case t.text == "*" && !t.str:
			p.pos++
			name := ""
			if nt := p.peek(); !nt.str && nt.text != "" && isIdent(nt.text[0]) && !isKeyword(nt.text) {
				name = nt.text
				p.pos++
			}
			path.Segs = append(path.Segs, Seg{Star: true, Var: name})
		case t.text == "?" && !t.str:
			p.pos++
			name := ""
			if nt := p.peek(); !nt.str && nt.text != "" && isIdent(nt.text[0]) && !isKeyword(nt.text) {
				name = nt.text
				p.pos++
			}
			path.Segs = append(path.Segs, Seg{Any: true, Var: name})
		default:
			a, err := p.ident()
			if err != nil {
				return Path{}, fmt.Errorf("xsql: path %s: %w", path, err)
			}
			path.Segs = append(path.Segs, Seg{Attr: a})
		}
	}
	return path, nil
}

func isKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "CONTAINS", "STARTS", "LIMIT":
		return true
	}
	return false
}
