// Package xsql implements the query-language front end: the subset of XSQL
// (Kifer, Kim & Sagiv, as used by the paper) that the paper compiles onto
// the region algebra. Supported queries have the shape
//
//	SELECT r            FROM References r WHERE r.Authors.Name.Last_Name = "Chang"
//	SELECT r.p          FROM References r                          -- projection
//	SELECT r FROM References r WHERE r.Editors.Name = r.Authors.Name  -- value join
//	SELECT r FROM References r WHERE c1 AND (c2 OR NOT c3)            -- boolean criteria
//	SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"         -- path variable
//	SELECT r FROM References r WHERE r.?X.Name.Last_Name = "Chang"    -- one-step variable
//	SELECT r FROM References r WHERE r.Abstract CONTAINS "taylor"     -- σ_w word containment
//	SELECT r FROM References r WHERE r.Key STARTS "Corl"              -- prefix search
//
// Path variables follow Section 5.3: *X matches an arbitrary path (zero or
// more steps), while ?X matches exactly one step (the paper writes bare
// variables X1…Xn; this dialect marks them with ? so they cannot be
// confused with attribute names).
package xsql

import (
	"fmt"
	"strconv"
	"strings"
)

// Seg is one segment of a path expression.
type Seg struct {
	Attr string // attribute name when Star and Any are false
	Star bool   // *X: arbitrary path (zero or more steps)
	Any  bool   // ?X: exactly one arbitrary step
	Var  string // variable name for Star/Any segments (may be empty)
}

func (s Seg) String() string {
	switch {
	case s.Star:
		return "*" + s.Var
	case s.Any:
		return "?" + s.Var
	default:
		return s.Attr
	}
}

// Path is a variable followed by segments: r.Authors.Name.Last_Name.
type Path struct {
	Var  string
	Segs []Seg
}

func (p Path) String() string {
	parts := make([]string, 0, 1+len(p.Segs))
	parts = append(parts, p.Var)
	for _, s := range p.Segs {
		parts = append(parts, s.String())
	}
	return strings.Join(parts, ".")
}

// HasVariables reports whether the path contains * or ? segments.
func (p Path) HasVariables() bool {
	for _, s := range p.Segs {
		if s.Star || s.Any {
			return true
		}
	}
	return false
}

// Attrs returns the attribute names of a variable-free path.
func (p Path) Attrs() []string {
	out := make([]string, len(p.Segs))
	for i, s := range p.Segs {
		out[i] = s.Attr
	}
	return out
}

// Cond is a boolean selection criterion.
type Cond interface {
	fmt.Stringer
	isCond()
}

// CmpConst compares a path expression to a string constant.
type CmpConst struct {
	Path Path
	Word string
}

// CmpContains tests whether a value reached by the path contains the word
// (whole-word containment) — the query-level counterpart of the region
// algebra's σ_w selection.
type CmpContains struct {
	Path Path
	Word string
}

// CmpStarts tests whether a value reached by the path starts with the
// prefix — the query-level counterpart of PAT's lexicographical search.
type CmpStarts struct {
	Path   Path
	Prefix string
}

// CmpPaths compares the values of two path expressions (a value join).
type CmpPaths struct {
	L, R Path
}

// And is conjunction.
type And struct{ L, R Cond }

// Or is disjunction.
type Or struct{ L, R Cond }

// Not is negation.
type Not struct{ C Cond }

func (CmpConst) isCond()    {}
func (CmpContains) isCond() {}
func (CmpStarts) isCond()   {}
func (CmpPaths) isCond()    {}
func (And) isCond()         {}
func (Or) isCond()          {}
func (Not) isCond()         {}

func (c CmpConst) String() string { return c.Path.String() + " = " + strconv.Quote(c.Word) }
func (c CmpContains) String() string {
	return c.Path.String() + " CONTAINS " + strconv.Quote(c.Word)
}
func (c CmpStarts) String() string {
	return c.Path.String() + " STARTS " + strconv.Quote(c.Prefix)
}
func (c CmpPaths) String() string { return c.L.String() + " = " + c.R.String() }
func (c And) String() string      { return "(" + c.L.String() + " AND " + c.R.String() + ")" }
func (c Or) String() string       { return "(" + c.L.String() + " OR " + c.R.String() + ")" }
func (c Not) String() string      { return "(NOT " + c.C.String() + ")" }

// FromClause binds a range variable to a class extent.
type FromClause struct {
	Class string
	Var   string
}

// Query is a parsed SELECT–FROM–WHERE query.
type Query struct {
	Select Path
	From   []FromClause
	Where  Cond // nil when absent
	Limit  int  // LIMIT k caps the result rows; 0 means unlimited
}

func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	sb.WriteString(q.Select.String())
	sb.WriteString(" FROM ")
	for i, f := range q.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(f.Class)
		sb.WriteByte(' ')
		sb.WriteString(f.Var)
	}
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Where.String())
	}
	if q.Limit > 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.Itoa(q.Limit))
	}
	return sb.String()
}

// ClassOf resolves a range variable to its class.
func (q *Query) ClassOf(v string) (string, bool) {
	for _, f := range q.From {
		if f.Var == v {
			return f.Class, true
		}
	}
	return "", false
}

// Conds flattens the WHERE clause into the comparisons it contains.
func Conds(c Cond) []Cond {
	var out []Cond
	var walk func(Cond)
	walk = func(c Cond) {
		switch c := c.(type) {
		case And:
			walk(c.L)
			walk(c.R)
		case Or:
			walk(c.L)
			walk(c.R)
		case Not:
			walk(c.C)
		case nil:
		default:
			out = append(out, c)
		}
	}
	walk(c)
	return out
}
