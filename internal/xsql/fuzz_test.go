package xsql

import (
	"testing"
)

// fuzzSeeds are real queries from the test suite plus edge cases around
// string escaping, path variables and operator nesting.
var fuzzSeeds = []string{
	`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`,
	`SELECT r.Key FROM References r WHERE r.Editors.Name.Last_Name = "Chang"`,
	`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`,
	`SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"`,
	`SELECT r FROM References r WHERE r.?X.Name.Last_Name = "Chang"`,
	`SELECT r FROM References r WHERE NOT r.Authors.Name.Last_Name = "Chang"`,
	`SELECT r FROM References r WHERE r.Title CONTAINS "Systems" AND r.Authors.Name.Last_Name = "Chang"`,
	`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang" OR r.Editors.Name.Last_Name = "Corliss"`,
	`SELECT r FROM References r WHERE r.Authors.Name.Last_Name STARTS "Cor"`,
	`SELECT r FROM References r`,
	`SELECT r FROM References r, References s WHERE r.Key = s.Key`,
	`SELECT s FROM Sections s WHERE s.*X.Para CONTAINS "needle"`,
	`SELECT r FROM References r WHERE r.Title = "a \"quoted\" title"`,
	`SELECT r FROM References r WHERE r.Title = "tab\tnewline\nbackslash\\"`,
	`SELECT r FROM References r WHERE r.Title = ""`,
	`SELECT`,
	`SELECT r FROM`,
	`"unterminated`,
	`SELECT r FROM References r WHERE r.Title = "\x"`,
	`SELECT r FROM References r LIMIT 10`,
	`SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = "Chang" LIMIT 1`,
	`SELECT r FROM References r LIMIT 0`,
	`SELECT r FROM References r LIMIT -3`,
	`SELECT r FROM References r LIMIT`,
	`SELECT r FROM References r LIMIT x`,
	`SELECT r FROM References r LIMIT "2"`,
	`SELECT r FROM References r LIMIT 2 LIMIT 3`,
}

// FuzzXSQLParse asserts two properties on arbitrary input: the parser
// never panics, and every accepted query round-trips — parse → String →
// reparse succeeds and re-rendering is a fixpoint.
func FuzzXSQLParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are caught by the harness
		}
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("String() of accepted query does not reparse:\n  input  %q\n  render %q\n  err    %v", src, s1, err)
		}
		if s2 := q2.String(); s2 != s1 {
			t.Fatalf("String() is not a fixpoint:\n  input   %q\n  render1 %q\n  render2 %q", src, s1, s2)
		}
	})
}
