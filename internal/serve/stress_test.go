package serve_test

// Satellite stress suite, meant to run under -race: concurrent queries
// racing hot reloads, a cancel-storm of disconnecting HTTP clients, and
// shedding under saturation — each followed by goroutine-leak accounting
// and a health check.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qof/internal/algebra"
	"qof/internal/faultinject"
	"qof/internal/serve"
)

// waitGoroutines polls until the goroutine count returns to within slack of
// base (HTTP keep-alives and pool workers park asynchronously), failing
// after a timeout with a full stack dump.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, started with %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStressReload runs a worker pool of queries against a 4-shard server
// while another goroutine republishes alternating corpus generations. Every
// answer must be complete and internally consistent with the single
// generation that served it: epoch parity determines the corpus version, so
// files and hit counts must match that version exactly — a query must never
// observe a half-swapped shard set.
func TestStressReload(t *testing.T) {
	base := runtime.NumGoroutine()
	srv := newServer(t, serve.Config{Shards: 4, Parallelism: 2})
	// Odd epochs serve v1 (3 files), even epochs v2 (5 files).
	v1, v2 := sampleFiles(3), sampleFiles(5)
	if _, err := srv.Publish(v1); err != nil {
		t.Fatal(err)
	}

	const publishes = 20
	var done atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				resp, err := srv.Execute(context.Background(), serve.Request{Query: changQuery})
				if err != nil {
					if !errors.Is(err, serve.ErrShed) {
						errc <- fmt.Errorf("query failed mid-reload: %w", err)
						return
					}
					continue
				}
				want := 3
				if resp.Epoch%2 == 0 {
					want = 5
				}
				if !resp.Complete() || resp.Files != want || len(resp.Hits) != want {
					errc <- fmt.Errorf("epoch %d: files=%d hits=%d degraded=%v, want %d complete",
						resp.Epoch, resp.Files, len(resp.Hits), resp.DegradedError(), want)
					return
				}
			}
		}()
	}
	for i := 0; i < publishes; i++ {
		files := v2
		if i%2 == 1 {
			files = v1
		}
		if _, err := srv.Publish(files); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	done.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := srv.Epoch(); got != publishes+1 {
		t.Errorf("epoch = %d after %d publishes, want %d", got, publishes, publishes+1)
	}
	waitGoroutines(t, base)
}

// TestStressCancelStorm fires a volley of HTTP queries whose clients
// disconnect almost immediately (per-file delays stretch each query so the
// cancels land mid-execution). The daemon must absorb the storm: no leaked
// goroutines, cancellations counted, and a clean answer afterwards.
func TestStressCancelStorm(t *testing.T) {
	base := runtime.NumGoroutine()
	srv := newServer(t, serve.Config{Shards: 2, MaxInflight: 128})
	if _, err := srv.Publish(sampleFiles(6)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	if err := faultinject.Configure(faultinject.CorpusFile + "=delay:30ms"); err != nil {
		t.Fatal(err)
	}
	const storm = 40
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%10)*time.Millisecond)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
				ts.URL+"/query?q="+url.QueryEscape(changQuery), nil)
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	// Clients are gone but the server is still unwinding their queries;
	// drain before reading the books.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().AdmittedInflight > 0 {
		if time.Now().After(deadline) {
			t.Fatal("inflight queries never drained after the storm")
		}
		time.Sleep(5 * time.Millisecond)
	}
	faultinject.Reset()

	if got := srv.Metrics().CanceledTotal; got == 0 {
		t.Error("cancel storm registered no canceled queries")
	}
	// Healthy and leak-free afterwards.
	resp, err := srv.Execute(context.Background(), serve.Request{Query: changQuery})
	if err != nil || !resp.Complete() || len(resp.Hits) != 6 {
		t.Fatalf("post-storm query: hits=%d err=%v", len(resp.Hits), err)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	waitGoroutines(t, base)
	if got := srv.Metrics().AdmittedInflight; got != 0 {
		t.Errorf("admitted inflight = %d after storm, want 0", got)
	}
}

// TestStressHedgeLoserCleanup forces every query to hedge — primary
// attempts sleep on an injected delay while the hedge timer fires after
// 1ms — so each answer is produced by the secondary and each primary
// becomes a canceled loser still unwinding after its group returned.
// Afterwards the books must balance exactly: goroutine count back to
// base (no detached loser lives on) and the algebra layer's open-stream
// counter back to where it started (every loser's root iterator was
// closed, not abandoned mid-pipeline).
func TestStressHedgeLoserCleanup(t *testing.T) {
	base := runtime.NumGoroutine()
	baseStreams := algebra.OpenStreams()
	srv := newServer(t, serve.Config{Shards: 2, Replicas: 2, HedgeAfter: time.Millisecond})
	if _, err := srv.Publish(sampleFiles(6)); err != nil {
		t.Fatal(err)
	}
	// Only primary attempts (serve.shard) stall; hedges (serve.hedge) run
	// unimpeded and win every race.
	if err := faultinject.Configure(faultinject.ServeShard + "=delay:25ms"); err != nil {
		t.Fatal(err)
	}
	const storm = 24
	var wg sync.WaitGroup
	errc := make(chan error, storm)
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := srv.Execute(context.Background(), serve.Request{Query: changQuery})
			if err != nil {
				errc <- err
				return
			}
			if !resp.Complete() || len(resp.Hits) != 6 {
				errc <- fmt.Errorf("hedged answer: hits=%d degraded=%v, want 6 complete",
					len(resp.Hits), resp.DegradedError())
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	faultinject.Reset()

	m := srv.Metrics()
	if m.HedgesSent == 0 || m.HedgesWon == 0 {
		t.Fatalf("hedges sent=%d won=%d; the storm never raced", m.HedgesSent, m.HedgesWon)
	}
	// Losers are still sleeping on the injected delay when Execute returns;
	// they must all unwind without leaking a goroutine or an open iterator.
	waitGoroutines(t, base)
	deadline := time.Now().Add(5 * time.Second)
	for algebra.OpenStreams() != baseStreams {
		if time.Now().After(deadline) {
			t.Fatalf("open streams = %d after storm, started with %d: hedge losers leaked iterators",
				algebra.OpenStreams(), baseStreams)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Canceled losers must not have been booked as faults.
	for sh := 0; sh < 2; sh++ {
		if st := srv.BreakerState(sh); st != "closed" {
			t.Errorf("breaker %d = %s after hedge storm, want closed", sh, st)
		}
	}
}

// TestStressShedding saturates a small server far past MaxInflight and
// checks the books afterwards: every submission either completed or was
// shed (the counts add up), a nonzero number were shed, and no capacity or
// goroutines leaked.
func TestStressShedding(t *testing.T) {
	base := runtime.NumGoroutine()
	srv := newServer(t, serve.Config{MaxInflight: 4})
	if _, err := srv.Publish(sampleFiles(2)); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure(faultinject.ServeShard + "=delay:20ms"); err != nil {
		t.Fatal(err)
	}
	const clients = 32
	var ok, shed atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%4)
			resp, err := srv.Execute(context.Background(), serve.Request{Query: changQuery, Tenant: tenant})
			switch {
			case errors.Is(err, serve.ErrShed):
				shed.Add(1)
			case err == nil && resp.Complete():
				ok.Add(1)
			default:
				t.Errorf("client %d: unexpected outcome: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	faultinject.Reset()

	if ok.Load()+shed.Load() != clients {
		t.Errorf("ok %d + shed %d != %d clients", ok.Load(), shed.Load(), clients)
	}
	if shed.Load() == 0 {
		t.Error("no submissions shed at 8x oversubscription")
	}
	if ok.Load() == 0 {
		t.Error("every submission shed; admission control served nothing")
	}
	m := srv.Metrics()
	if m.ShedTotal != shed.Load() || m.OkTotal != ok.Load() {
		t.Errorf("metrics ok=%d shed=%d, counted ok=%d shed=%d", m.OkTotal, m.ShedTotal, ok.Load(), shed.Load())
	}
	if m.AdmittedInflight != 0 || m.Inflight != 0 {
		t.Errorf("inflight admitted=%d executing=%d after drain, want 0/0", m.AdmittedInflight, m.Inflight)
	}
	waitGoroutines(t, base)
}
