// Package serve implements qofd's serving layer: a stdlib-only, sharded,
// multi-tenant HTTP/JSON query daemon over the qof facade.
//
// A published corpus is hashed by document name across N shards, each an
// independent *qof.Corpus. A query is admitted (fair-share admission
// control with load shedding under saturation), scattered to every shard
// under per-shard deadlines, and the per-shard results are gathered back
// into global document order — so a sharded answer is byte-identical to
// the answer the direct facade gives over one corpus holding every file.
// Per-shard failures degrade to partial answers with shard and file
// attribution instead of failing the query.
//
// Corpora are hot-reloaded with the swap-on-publish pattern the result
// cache already uses: Publish builds a complete new shard set off to the
// side and atomically swaps it in under a bumped epoch; in-flight queries
// keep the set they started with. See docs/SERVING.md for the full
// contract.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qof"
	"qof/internal/faultinject"
	"qof/internal/qerr"
	"qof/internal/xsql"
)

// Sentinel errors Execute returns; the HTTP layer maps them to statuses.
var (
	// ErrShed reports that admission control rejected the query because
	// the server (or the tenant's fair share) is saturated. HTTP: 429.
	ErrShed = errors.New("serve: saturated, query shed")
	// ErrNoCorpus reports that nothing has been published yet. HTTP: 503.
	ErrNoCorpus = errors.New("serve: no corpus published")
	// ErrBadQuery wraps an XSQL parse error in the request. HTTP: 400.
	ErrBadQuery = errors.New("serve: bad query")
)

// Limits are per-query resource budgets, mapped onto the facade's
// WithMaxRegions / WithMaxEvalBytes knobs. Zero means unlimited.
type Limits struct {
	MaxRegions   int
	MaxEvalBytes int
}

// Tenant configures one tenant's share of the server. The zero value means
// "defaults": the server-wide limits and a fair share of MaxInflight.
type Tenant struct {
	// Limits override the server-wide default budgets where nonzero.
	Limits Limits
	// Timeout overrides the server-wide default query deadline when > 0.
	Timeout time.Duration
	// MaxInflight is a hard cap on the tenant's concurrent queries. 0
	// means the dynamic fair share: MaxInflight / active tenants.
	MaxInflight int
}

// Config configures a Server. Schema is required; everything else has a
// serviceable default.
type Config struct {
	// Schema is the structuring schema every published file shares.
	Schema *qof.Schema
	// Shards is the number of engine shards documents are hashed across.
	// Values < 1 mean one shard.
	Shards int
	// Parallelism is each shard's corpus parallelism (files evaluated
	// concurrently within one shard, and concurrent index builds during
	// Publish). Values < 2 are sequential.
	Parallelism int
	// Materializing selects the materializing reference executor for
	// every shard, for differential testing against the streaming default.
	Materializing bool
	// SharedExecution enables cross-query work sharing within each shard:
	// batched multi-pattern scans, cross-query CSE and phase-2 parse dedup
	// (the facade's WithSharedExecution). Responses are byte-identical
	// either way; /metrics reports how much work was shared.
	SharedExecution bool

	// MaxInflight bounds the queries executing at once, server-wide;
	// admission beyond it sheds with ErrShed. Values < 1 mean 64.
	MaxInflight int
	// DefaultTimeout bounds each admitted query's wall time. Values <= 0
	// mean 10s. Tenants and requests may tighten it, never loosen it.
	DefaultTimeout time.Duration
	// ShardTimeout bounds each shard's scatter leg separately; a shard
	// exceeding it degrades to partial answers while the others complete.
	// 0 means no per-shard deadline beyond the query deadline.
	ShardTimeout time.Duration
	// FileTimeout bounds each file within a shard separately (the
	// facade's WithFileTimeout). 0 means no per-file deadline.
	FileTimeout time.Duration
	// DefaultLimits are the server-wide per-query budgets.
	DefaultLimits Limits
	// Tenants maps tenant names to their overrides. Unlisted tenants get
	// the defaults and a fair share.
	Tenants map[string]Tenant
	// RetryAfter is the backoff hint attached to shed responses. Values
	// <= 0 mean 1s.
	RetryAfter time.Duration

	// Reload, when set, enables POST /reload: it re-reads the corpus
	// sources and the server publishes the result as the next epoch.
	Reload func(context.Context) (map[string]string, error)
}

func (c *Config) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

func (c *Config) maxInflight() int {
	if c.MaxInflight < 1 {
		return 64
	}
	return c.MaxInflight
}

func (c *Config) defaultTimeout() time.Duration {
	if c.DefaultTimeout <= 0 {
		return 10 * time.Second
	}
	return c.DefaultTimeout
}

func (c *Config) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return time.Second
	}
	return c.RetryAfter
}

// shardSet is one published corpus generation: an immutable snapshot the
// server swaps atomically on Publish. Queries load it once and use it for
// their whole execution, so a concurrent reload never mixes generations
// within one answer.
type shardSet struct {
	epoch   uint64
	shards  []*qof.Corpus
	files   []string   // every published file name, sorted (global order)
	byShard [][]string // files of each shard, sorted (shard order)
}

// Server is the sharded multi-tenant query service. Create it with New,
// publish a corpus with Publish, then serve queries via Execute or the
// HTTP handler (Handler). All methods are safe for concurrent use.
type Server struct {
	cfg Config
	set atomic.Pointer[shardSet]
	adm *admission
	met *metrics

	publishMu sync.Mutex // serializes Publish; queries never take it
}

// New creates a Server. It serves ErrNoCorpus until the first Publish.
func New(cfg Config) (*Server, error) {
	if cfg.Schema == nil {
		return nil, errors.New("serve: Config.Schema is required")
	}
	return &Server{
		cfg: cfg,
		adm: newAdmission(cfg.maxInflight()),
		met: newMetrics(),
	}, nil
}

// Epoch reports the currently published corpus generation (0 before the
// first Publish).
func (s *Server) Epoch() uint64 {
	if set := s.set.Load(); set != nil {
		return set.epoch
	}
	return 0
}

// Files reports the published file names in global document order.
func (s *Server) Files() []string {
	set := s.set.Load()
	if set == nil {
		return nil
	}
	return append([]string(nil), set.files...)
}

// ShardOf reports which of n shards the named document hashes to. It is
// exported so tests and operators can predict placement.
func ShardOf(name string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(n))
}

// Publish indexes files into a fresh shard set and swaps it in under the
// next epoch. See PublishContext.
func (s *Server) Publish(files map[string]string) (uint64, error) {
	return s.PublishContext(context.Background(), files)
}

// PublishContext builds the new generation completely before anything
// becomes visible: per-shard corpora are built (concurrently, each with
// the configured intra-shard parallelism), and only if every shard builds
// does the swap happen — a failed publish leaves the previous generation
// serving untouched. Every failing shard is reported, not just the first:
// the returned error joins one attributed error per failed shard, and
// each shard's own error joins one attributed error per failed file.
func (s *Server) PublishContext(ctx context.Context, files map[string]string) (uint64, error) {
	s.publishMu.Lock()
	defer s.publishMu.Unlock()

	n := s.cfg.shards()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	byShard := make([][]string, n)
	perShard := make([]map[string]string, n)
	for i := range perShard {
		perShard[i] = make(map[string]string)
	}
	for _, name := range names {
		i := ShardOf(name, n)
		byShard[i] = append(byShard[i], name)
		perShard[i][name] = files[name]
	}

	shards := make([]*qof.Corpus, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("panic: %v: %w", p, qerr.ErrInternal)
				}
			}()
			if err := faultinject.Hit(faultinject.ServePublish); err != nil {
				errs[i] = err
				return
			}
			opts := []qof.IndexOption{qof.WithParallelism(s.cfg.Parallelism)}
			if s.cfg.Materializing {
				opts = append(opts, qof.WithMaterializing())
			}
			if s.cfg.SharedExecution {
				opts = append(opts, qof.WithSharedExecution())
			}
			c := s.cfg.Schema.NewCorpus(opts...)
			if err := c.AddAllContext(ctx, perShard[i]); err != nil {
				errs[i] = err
				return
			}
			shards[i] = c
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			errs[i] = fmt.Errorf("serve: shard %d: %w", i, errs[i])
		}
	}
	if err := errors.Join(errs...); err != nil {
		return s.Epoch(), err
	}

	epoch := uint64(1)
	if old := s.set.Load(); old != nil {
		epoch = old.epoch + 1
	}
	s.set.Store(&shardSet{epoch: epoch, shards: shards, files: names, byShard: byShard})
	return epoch, nil
}

// Request is one query submission.
type Request struct {
	// Query is the XSQL source.
	Query string
	// Tenant names the submitting tenant; empty means "anonymous".
	Tenant string
	// Timeout tightens the effective query deadline when > 0 (it can
	// never loosen the tenant's or server's deadline).
	Timeout time.Duration
	// MaxRegions / MaxEvalBytes tighten the effective budgets when > 0.
	MaxRegions   int
	MaxEvalBytes int
}

// ShardFileError attributes one file's failure to the shard that served it.
type ShardFileError struct {
	File  string
	Shard int
	Err   error
}

// Response is a query outcome. Hits and Degraded are in global document
// order, so the same corpus answers identically no matter how it is
// sharded.
type Response struct {
	// Epoch is the corpus generation that served the query.
	Epoch uint64
	// Shards is the serving shard count.
	Shards int
	// Files is the number of published files.
	Files int
	// Hits lists the files with at least one result.
	Hits []qof.CorpusHit
	// Degraded lists per-file failures (shard faults, per-file or
	// per-shard deadlines, budget violations) the rest of the answer
	// survived. Empty means the answer is complete.
	Degraded []ShardFileError
	// Stats aggregates execution statistics over the succeeded files.
	Stats qof.CorpusStats
	// Elapsed is the server-side execution wall time.
	Elapsed time.Duration
}

// Complete reports whether every published file contributed.
func (r *Response) Complete() bool { return len(r.Degraded) == 0 }

// DegradedError joins the per-file failures with shard and file
// attribution, or returns nil when the response is complete. errors.Is
// matches each underlying cause.
func (r *Response) DegradedError() error {
	if len(r.Degraded) == 0 {
		return nil
	}
	errs := make([]error, len(r.Degraded))
	for i, d := range r.Degraded {
		errs[i] = fmt.Errorf("serve: shard %d: %s: %w", d.Shard, d.File, d.Err)
	}
	return errors.Join(errs...)
}

// tenant resolves the effective configuration for a tenant name.
func (s *Server) tenant(name string) Tenant {
	t := s.cfg.Tenants[name]
	if t.Limits.MaxRegions == 0 {
		t.Limits.MaxRegions = s.cfg.DefaultLimits.MaxRegions
	}
	if t.Limits.MaxEvalBytes == 0 {
		t.Limits.MaxEvalBytes = s.cfg.DefaultLimits.MaxEvalBytes
	}
	if t.Timeout <= 0 {
		t.Timeout = s.cfg.defaultTimeout()
	}
	return t
}

// tighten returns the stricter of a cap and a requested value; zero means
// "no opinion" on either side.
func tighten(cap, req int) int {
	if req <= 0 {
		return cap
	}
	if cap <= 0 || req < cap {
		return req
	}
	return cap
}

// Execute admits, scatters and gathers one query. It returns ErrShed,
// ErrNoCorpus or an error wrapping ErrBadQuery without touching the
// shards; otherwise the response carries whatever completed, and the
// error is only non-nil when the query-level context ended (the caller
// learns the answer was cut short, with the partial answer attached).
func (s *Server) Execute(ctx context.Context, req Request) (*Response, error) {
	set := s.set.Load()
	if set == nil {
		return nil, ErrNoCorpus
	}
	if _, err := xsql.Parse(req.Query); err != nil {
		s.met.badQuery.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	ten := s.tenant(req.Tenant)
	s.met.tenant(req.Tenant).queries.Add(1)
	release, ok := s.adm.acquire(req.Tenant, ten.MaxInflight)
	if !ok {
		s.met.shed.Add(1)
		s.met.tenant(req.Tenant).shed.Add(1)
		return nil, ErrShed
	}
	defer release()
	s.met.queries.Add(1)
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	start := time.Now()
	defer func() { s.met.hist.observe(time.Since(start)) }()

	timeout := ten.Timeout
	if req.Timeout > 0 && req.Timeout < timeout {
		timeout = req.Timeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	opts := []qof.QueryOption{qof.WithPartialResults()}
	if n := tighten(ten.Limits.MaxRegions, req.MaxRegions); n > 0 {
		opts = append(opts, qof.WithMaxRegions(n))
	}
	if n := tighten(ten.Limits.MaxEvalBytes, req.MaxEvalBytes); n > 0 {
		opts = append(opts, qof.WithMaxEvalBytes(n))
	}
	if s.cfg.FileTimeout > 0 {
		opts = append(opts, qof.WithFileTimeout(s.cfg.FileTimeout))
	}

	// Scatter: one goroutine per shard (shard counts are small). Each leg
	// is panic-isolated and deadline-bounded on its own, so one bad shard
	// degrades the answer instead of failing or hanging it.
	type shardOut struct {
		res *qof.CorpusResults
		err error
	}
	outs := make([]shardOut, len(set.shards))
	var wg sync.WaitGroup
	for i := range set.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					outs[i] = shardOut{err: fmt.Errorf("panic: %v: %w", p, qerr.ErrInternal)}
				}
			}()
			if err := faultinject.Hit(faultinject.ServeShard); err != nil {
				outs[i] = shardOut{err: err}
				return
			}
			sctx := ctx
			if s.cfg.ShardTimeout > 0 {
				var scancel context.CancelFunc
				sctx, scancel = context.WithTimeout(ctx, s.cfg.ShardTimeout)
				defer scancel()
			}
			res, err := set.shards[i].ExecuteContext(sctx, req.Query, opts...)
			outs[i] = shardOut{res: res, err: err}
		}(i)
	}
	wg.Wait()

	// Gather: merge per-shard hits and failures back into global document
	// order. A leg that failed wholesale (injected fault, panic, its
	// deadline before any file ran) degrades every file it owned.
	resp := &Response{Epoch: set.epoch, Shards: len(set.shards), Files: len(set.files)}
	hits := make(map[string]qof.CorpusHit)
	degraded := make(map[string]ShardFileError)
	var interrupted error
	for i, o := range outs {
		if o.res == nil {
			err := o.err
			if err == nil {
				err = errors.New("serve: shard returned no result")
			}
			for _, f := range set.byShard[i] {
				degraded[f] = ShardFileError{File: f, Shard: i, Err: err}
			}
			continue
		}
		for _, h := range o.res.Hits {
			hits[h.File] = h
		}
		for _, fe := range o.res.Degraded {
			degraded[fe.File] = ShardFileError{File: fe.File, Shard: i, Err: fe.Err}
		}
		resp.Stats.Results += o.res.Stats.Results
		resp.Stats.Candidates += o.res.Stats.Candidates
		resp.Stats.Parsed += o.res.Stats.Parsed
		resp.Stats.ParsedBytes += o.res.Stats.ParsedBytes
		resp.Stats.Exact = resp.Stats.Exact || o.res.Stats.Exact
		resp.Stats.FullScan = resp.Stats.FullScan || o.res.Stats.FullScan
		resp.Stats.SharedScans += o.res.Stats.SharedScans
		resp.Stats.CSEHits += o.res.Stats.CSEHits
		resp.Stats.ParseDedups += o.res.Stats.ParseDedups
	}
	if n := resp.Stats.SharedScans + resp.Stats.CSEHits + resp.Stats.ParseDedups; n > 0 {
		tc := s.met.tenant(req.Tenant)
		s.met.sharedQueries.Add(1)
		tc.sharedQueries.Add(1)
		s.met.sharedScans.Add(uint64(resp.Stats.SharedScans))
		tc.sharedScans.Add(uint64(resp.Stats.SharedScans))
		s.met.cseHits.Add(uint64(resp.Stats.CSEHits))
		tc.cseHits.Add(uint64(resp.Stats.CSEHits))
		s.met.parseDedups.Add(uint64(resp.Stats.ParseDedups))
		tc.parseDedups.Add(uint64(resp.Stats.ParseDedups))
	}
	// Partial mode returns an error alongside results when the context it
	// ran under ended. A shard-local deadline is already reflected in that
	// shard's per-file degradation; only the query-level context ending
	// makes the whole call report interruption.
	if err := ctx.Err(); err != nil {
		interrupted = err
	}
	for _, f := range set.files {
		if h, ok := hits[f]; ok {
			resp.Hits = append(resp.Hits, h)
		}
		if d, ok := degraded[f]; ok {
			resp.Degraded = append(resp.Degraded, d)
		}
	}
	resp.Elapsed = time.Since(start)
	if len(resp.Degraded) > 0 {
		s.met.degraded.Add(1)
	}
	if interrupted != nil {
		if errors.Is(interrupted, context.Canceled) {
			s.met.canceled.Add(1)
		}
		return resp, interrupted
	}
	s.met.ok.Add(1)
	return resp, nil
}
