// Package serve implements qofd's serving layer: a stdlib-only, sharded,
// multi-tenant HTTP/JSON query daemon over the qof facade.
//
// A published corpus is placed by rendezvous hashing across N shards, each
// an independent *qof.Corpus, with every file on R replicas (Config.
// Replicas, default 2). A query is admitted (fair-share admission control
// with load shedding under saturation), scattered to every replica group
// under per-shard deadlines, and the per-group results are gathered back
// into global document order — so a sharded answer is byte-identical to
// the answer the direct facade gives over one corpus holding every file.
// A slow primary is hedged to the next replica after a delay derived from
// the live attempt-latency histogram; a faulted primary fails over; a
// replica that keeps failing wholesale trips its circuit breaker and is
// routed around until a half-open probe brings it back. Only when every
// replica of a group is exhausted does the group degrade to partial
// answers with shard and file attribution.
//
// Corpora are hot-reloaded with the swap-on-publish pattern the result
// cache already uses: Publish builds a complete new shard set off to the
// side and atomically swaps it in under a bumped epoch; in-flight queries
// keep the set they started with. See docs/SERVING.md for the full
// contract.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qof"
	"qof/internal/faultinject"
	"qof/internal/qerr"
	"qof/internal/xsql"
)

// Sentinel errors Execute returns; the HTTP layer maps them to statuses.
var (
	// ErrShed reports that admission control rejected the query because
	// the server (or the tenant's fair share) is saturated. HTTP: 429.
	ErrShed = errors.New("serve: saturated, query shed")
	// ErrNoCorpus reports that nothing has been published yet. HTTP: 503.
	ErrNoCorpus = errors.New("serve: no corpus published")
	// ErrBadQuery wraps an XSQL parse error in the request. HTTP: 400.
	ErrBadQuery = errors.New("serve: bad query")
)

// Limits are per-query resource budgets, mapped onto the facade's
// WithMaxRegions / WithMaxEvalBytes knobs. Zero means unlimited.
type Limits struct {
	MaxRegions   int
	MaxEvalBytes int
}

// Tenant configures one tenant's share of the server. The zero value means
// "defaults": the server-wide limits and a fair share of MaxInflight.
type Tenant struct {
	// Limits override the server-wide default budgets where nonzero.
	Limits Limits
	// Timeout overrides the server-wide default query deadline when > 0.
	Timeout time.Duration
	// MaxInflight is a hard cap on the tenant's concurrent queries. 0
	// means the dynamic fair share: MaxInflight / active tenants.
	MaxInflight int
}

// Config configures a Server. Schema is required; everything else has a
// serviceable default.
type Config struct {
	// Schema is the structuring schema every published file shares.
	Schema *qof.Schema
	// Shards is the number of engine shards documents are hashed across.
	// Values < 1 mean one shard.
	Shards int
	// Replicas is the number of engine replicas each file is placed on
	// (rendezvous hashing over the shards; see Placement). 0 means 2;
	// values are clamped to [1, Shards]. 1 disables replication, and with
	// it hedging and failover.
	Replicas int
	// HedgeAfter is how long the dispatcher waits for a primary replica
	// before hedging the attempt to the next one. 0 derives the delay
	// adaptively from the live per-attempt latency histogram (p99, clamped
	// to [1ms, 2s]); negative disables hedging. Fault-driven failover and
	// breaker routing work either way.
	HedgeAfter time.Duration
	// BreakerThreshold is the consecutive wholesale-failure count that
	// opens a replica's circuit breaker. Values < 1 mean 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects routing before
	// admitting a half-open probe. Values <= 0 mean 1s.
	BreakerCooldown time.Duration
	// Parallelism is each shard's corpus parallelism (files evaluated
	// concurrently within one shard, and concurrent index builds during
	// Publish). Values < 2 are sequential.
	Parallelism int
	// Materializing selects the materializing reference executor for
	// every shard, for differential testing against the streaming default.
	Materializing bool
	// SharedExecution enables cross-query work sharing within each shard:
	// batched multi-pattern scans, cross-query CSE and phase-2 parse dedup
	// (the facade's WithSharedExecution). Responses are byte-identical
	// either way; /metrics reports how much work was shared.
	SharedExecution bool

	// MaxInflight bounds the queries executing at once, server-wide;
	// admission beyond it sheds with ErrShed. Values < 1 mean 64.
	MaxInflight int
	// DefaultTimeout bounds each admitted query's wall time. Values <= 0
	// mean 10s. Tenants and requests may tighten it, never loosen it.
	DefaultTimeout time.Duration
	// ShardTimeout bounds each shard's scatter leg separately; a shard
	// exceeding it degrades to partial answers while the others complete.
	// 0 means no per-shard deadline beyond the query deadline.
	ShardTimeout time.Duration
	// FileTimeout bounds each file within a shard separately (the
	// facade's WithFileTimeout). 0 means no per-file deadline.
	FileTimeout time.Duration
	// DefaultLimits are the server-wide per-query budgets.
	DefaultLimits Limits
	// Tenants maps tenant names to their overrides. Unlisted tenants get
	// the defaults and a fair share.
	Tenants map[string]Tenant
	// RetryAfter is the backoff hint attached to shed responses. Values
	// <= 0 mean 1s.
	RetryAfter time.Duration

	// Reload, when set, enables POST /reload: it re-reads the corpus
	// sources and the server publishes the result as the next epoch.
	Reload func(context.Context) (map[string]string, error)
}

func (c *Config) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

func (c *Config) replicas() int {
	r := c.Replicas
	if r == 0 {
		r = 2
	}
	if r < 1 {
		r = 1
	}
	if n := c.shards(); r > n {
		r = n
	}
	return r
}

func (c *Config) breakerThreshold() int {
	if c.BreakerThreshold < 1 {
		return 5
	}
	return c.BreakerThreshold
}

func (c *Config) breakerCooldown() time.Duration {
	if c.BreakerCooldown <= 0 {
		return time.Second
	}
	return c.BreakerCooldown
}

func (c *Config) maxInflight() int {
	if c.MaxInflight < 1 {
		return 64
	}
	return c.MaxInflight
}

func (c *Config) defaultTimeout() time.Duration {
	if c.DefaultTimeout <= 0 {
		return 10 * time.Second
	}
	return c.DefaultTimeout
}

func (c *Config) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return time.Second
	}
	return c.RetryAfter
}

// shardSet is one published corpus generation: an immutable snapshot the
// server swaps atomically on Publish. Queries load it once and use it for
// their whole execution, so a concurrent reload never mixes generations
// within one answer.
type shardSet struct {
	epoch   uint64
	shards  []*qof.Corpus
	files   []string   // every published file name, sorted (global order)
	byShard [][]string // files whose primary replica is shard i, sorted
	groups  []group    // replica groups, in order of first file
}

// group is the dispatch unit of a scatter: the files sharing one ordered
// rendezvous placement. Every replica of a group holds exactly the group's
// files (among others), so any one replica can serve the whole group and
// the winner's statistics count each file exactly once.
type group struct {
	replicas []int    // ordered placement; replicas[0] is the primary
	files    []string // the group's files, sorted
}

// Server is the sharded multi-tenant query service. Create it with New,
// publish a corpus with Publish, then serve queries via Execute or the
// HTTP handler (Handler). All methods are safe for concurrent use.
type Server struct {
	cfg Config
	set atomic.Pointer[shardSet]
	adm *admission
	met *metrics

	// breakers holds one circuit breaker per engine shard. They outlive
	// publishes: a hot reload swaps corpora, not the engines' health
	// history.
	breakers []*breaker

	publishMu sync.Mutex // serializes Publish; queries never take it
}

// New creates a Server. It serves ErrNoCorpus until the first Publish.
func New(cfg Config) (*Server, error) {
	if cfg.Schema == nil {
		return nil, errors.New("serve: Config.Schema is required")
	}
	breakers := make([]*breaker, cfg.shards())
	for i := range breakers {
		breakers[i] = newBreaker(cfg.breakerThreshold(), cfg.breakerCooldown())
	}
	return &Server{
		cfg:      cfg,
		adm:      newAdmission(cfg.maxInflight()),
		met:      newMetrics(),
		breakers: breakers,
	}, nil
}

// Epoch reports the currently published corpus generation (0 before the
// first Publish).
func (s *Server) Epoch() uint64 {
	if set := s.set.Load(); set != nil {
		return set.epoch
	}
	return 0
}

// Files reports the published file names in global document order.
func (s *Server) Files() []string {
	set := s.set.Load()
	if set == nil {
		return nil
	}
	return append([]string(nil), set.files...)
}

// Publish indexes files into a fresh shard set and swaps it in under the
// next epoch. See PublishContext.
func (s *Server) Publish(files map[string]string) (uint64, error) {
	return s.PublishContext(context.Background(), files)
}

// PublishContext builds the new generation completely before anything
// becomes visible: per-shard corpora are built (concurrently, each with
// the configured intra-shard parallelism), and only if every shard builds
// does the swap happen — a failed publish leaves the previous generation
// serving untouched. Every failing shard is reported, not just the first:
// the returned error joins one attributed error per failed shard, and
// each shard's own error joins one attributed error per failed file.
func (s *Server) PublishContext(ctx context.Context, files map[string]string) (uint64, error) {
	s.publishMu.Lock()
	defer s.publishMu.Unlock()

	n := s.cfg.shards()
	r := s.cfg.replicas()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	byShard := make([][]string, n)
	perShard := make([]map[string]string, n)
	for i := range perShard {
		perShard[i] = make(map[string]string)
	}
	// Group files by their full ordered placement: every shard indexes a
	// copy of each file placed on it, and files sharing a placement form
	// one dispatch group (names are sorted, so group membership and order
	// are deterministic).
	var groups []group
	groupAt := make(map[string]int)
	for _, name := range names {
		pl := Placement(name, n, r)
		byShard[pl[0]] = append(byShard[pl[0]], name)
		for _, sh := range pl {
			perShard[sh][name] = files[name]
		}
		key := fmt.Sprint(pl)
		gi, ok := groupAt[key]
		if !ok {
			gi = len(groups)
			groupAt[key] = gi
			groups = append(groups, group{replicas: pl})
		}
		groups[gi].files = append(groups[gi].files, name)
	}

	shards := make([]*qof.Corpus, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("panic: %v: %w", p, qerr.ErrInternal)
				}
			}()
			if err := faultinject.Hit(faultinject.ServePublish); err != nil {
				errs[i] = err
				return
			}
			opts := []qof.IndexOption{qof.WithParallelism(s.cfg.Parallelism)}
			if s.cfg.Materializing {
				opts = append(opts, qof.WithMaterializing())
			}
			if s.cfg.SharedExecution {
				opts = append(opts, qof.WithSharedExecution())
			}
			c := s.cfg.Schema.NewCorpus(opts...)
			if err := c.AddAllContext(ctx, perShard[i]); err != nil {
				errs[i] = err
				return
			}
			shards[i] = c
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			errs[i] = fmt.Errorf("serve: shard %d: %w", i, errs[i])
		}
	}
	if err := errors.Join(errs...); err != nil {
		return s.Epoch(), err
	}

	epoch := uint64(1)
	if old := s.set.Load(); old != nil {
		epoch = old.epoch + 1
	}
	s.set.Store(&shardSet{epoch: epoch, shards: shards, files: names, byShard: byShard, groups: groups})
	return epoch, nil
}

// Request is one query submission.
type Request struct {
	// Query is the XSQL source.
	Query string
	// Tenant names the submitting tenant; empty means "anonymous".
	Tenant string
	// Timeout tightens the effective query deadline when > 0 (it can
	// never loosen the tenant's or server's deadline).
	Timeout time.Duration
	// MaxRegions / MaxEvalBytes tighten the effective budgets when > 0.
	MaxRegions   int
	MaxEvalBytes int
}

// ShardFileError attributes one file's failure to the shard that served it.
type ShardFileError struct {
	File  string
	Shard int
	Err   error
}

// Response is a query outcome. Hits and Degraded are in global document
// order, so the same corpus answers identically no matter how it is
// sharded.
type Response struct {
	// Epoch is the corpus generation that served the query.
	Epoch uint64
	// Shards is the serving shard count.
	Shards int
	// Files is the number of published files.
	Files int
	// Hits lists the files with at least one result.
	Hits []qof.CorpusHit
	// Degraded lists per-file failures (shard faults, per-file or
	// per-shard deadlines, budget violations) the rest of the answer
	// survived. Empty means the answer is complete.
	Degraded []ShardFileError
	// Stats aggregates execution statistics over the succeeded files.
	Stats qof.CorpusStats
	// Elapsed is the server-side execution wall time.
	Elapsed time.Duration
}

// Complete reports whether every published file contributed.
func (r *Response) Complete() bool { return len(r.Degraded) == 0 }

// DegradedError joins the per-file failures with shard and file
// attribution, or returns nil when the response is complete. errors.Is
// matches each underlying cause.
func (r *Response) DegradedError() error {
	if len(r.Degraded) == 0 {
		return nil
	}
	errs := make([]error, len(r.Degraded))
	for i, d := range r.Degraded {
		errs[i] = fmt.Errorf("serve: shard %d: %s: %w", d.Shard, d.File, d.Err)
	}
	return errors.Join(errs...)
}

// tenant resolves the effective configuration for a tenant name.
func (s *Server) tenant(name string) Tenant {
	t := s.cfg.Tenants[name]
	if t.Limits.MaxRegions == 0 {
		t.Limits.MaxRegions = s.cfg.DefaultLimits.MaxRegions
	}
	if t.Limits.MaxEvalBytes == 0 {
		t.Limits.MaxEvalBytes = s.cfg.DefaultLimits.MaxEvalBytes
	}
	if t.Timeout <= 0 {
		t.Timeout = s.cfg.defaultTimeout()
	}
	return t
}

// tighten returns the stricter of a cap and a requested value; zero means
// "no opinion" on either side.
func tighten(cap, req int) int {
	if req <= 0 {
		return cap
	}
	if cap <= 0 || req < cap {
		return req
	}
	return cap
}

// Execute admits, scatters and gathers one query. It returns ErrShed,
// ErrNoCorpus or an error wrapping ErrBadQuery without touching the
// shards; otherwise the response carries whatever completed, and the
// error is only non-nil when the query-level context ended (the caller
// learns the answer was cut short, with the partial answer attached).
func (s *Server) Execute(ctx context.Context, req Request) (*Response, error) {
	set := s.set.Load()
	if set == nil {
		return nil, ErrNoCorpus
	}
	if _, err := xsql.Parse(req.Query); err != nil {
		s.met.badQuery.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	ten := s.tenant(req.Tenant)
	s.met.tenant(req.Tenant).queries.Add(1)
	release, ok := s.adm.acquire(req.Tenant, ten.MaxInflight)
	if !ok {
		s.met.shed.Add(1)
		s.met.tenant(req.Tenant).shed.Add(1)
		return nil, ErrShed
	}
	defer release()
	s.met.queries.Add(1)
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	start := time.Now()
	defer func() { s.met.hist.observe(time.Since(start)) }()

	timeout := ten.Timeout
	if req.Timeout > 0 && req.Timeout < timeout {
		timeout = req.Timeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	opts := []qof.QueryOption{qof.WithPartialResults()}
	if n := tighten(ten.Limits.MaxRegions, req.MaxRegions); n > 0 {
		opts = append(opts, qof.WithMaxRegions(n))
	}
	if n := tighten(ten.Limits.MaxEvalBytes, req.MaxEvalBytes); n > 0 {
		opts = append(opts, qof.WithMaxEvalBytes(n))
	}
	if s.cfg.FileTimeout > 0 {
		opts = append(opts, qof.WithFileTimeout(s.cfg.FileTimeout))
	}

	// Scatter: one dispatcher goroutine per replica group (group counts
	// are small — at most the number of distinct placements). Each group's
	// dispatcher hedges, fails over and fails open among the group's
	// replicas; each attempt is panic-isolated and deadline-bounded on its
	// own, so one bad replica degrades nothing while another holds a copy.
	outs := make([]groupOut, len(set.groups))
	var wg sync.WaitGroup
	for gi := range set.groups {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					outs[gi] = groupOut{err: fmt.Errorf("panic: %v: %w", p, qerr.ErrInternal)}
				}
			}()
			outs[gi] = s.runGroup(ctx, set, set.groups[gi], req.Query, opts)
		}(gi)
	}
	wg.Wait()

	// Gather: merge per-group hits and failures back into global document
	// order. A group whose every routed replica failed wholesale (injected
	// faults, panics, a deadline before any file ran) degrades every file
	// it owned; degradations are always attributed to the file's primary
	// shard, so the answer bytes do not depend on which replica served.
	resp := &Response{Epoch: set.epoch, Shards: len(set.shards), Files: len(set.files)}
	hits := make(map[string]qof.CorpusHit)
	degraded := make(map[string]ShardFileError)
	var interrupted error
	tc := s.met.tenant(req.Tenant)
	for gi, o := range outs {
		g := set.groups[gi]
		if o.hedges > 0 {
			s.met.hedgesSent.Add(uint64(o.hedges))
			tc.hedges.Add(uint64(o.hedges))
		}
		if o.hedgeWon {
			s.met.hedgesWon.Add(1)
		}
		if o.failovers > 0 {
			s.met.failovers.Add(uint64(o.failovers))
			tc.failovers.Add(uint64(o.failovers))
		}
		if o.failedOpen {
			s.met.failedOpen.Add(1)
		}
		if o.res == nil {
			err := o.err
			if err == nil {
				err = errors.New("serve: shard returned no result")
			}
			for _, f := range g.files {
				degraded[f] = ShardFileError{File: f, Shard: g.replicas[0], Err: err}
			}
			continue
		}
		for _, h := range o.res.Hits {
			hits[h.File] = h
		}
		for _, fe := range o.res.Degraded {
			degraded[fe.File] = ShardFileError{File: fe.File, Shard: g.replicas[0], Err: fe.Err}
		}
		resp.Stats.Results += o.res.Stats.Results
		resp.Stats.Candidates += o.res.Stats.Candidates
		resp.Stats.Parsed += o.res.Stats.Parsed
		resp.Stats.ParsedBytes += o.res.Stats.ParsedBytes
		resp.Stats.Exact = resp.Stats.Exact || o.res.Stats.Exact
		resp.Stats.FullScan = resp.Stats.FullScan || o.res.Stats.FullScan
		resp.Stats.SharedScans += o.res.Stats.SharedScans
		resp.Stats.CSEHits += o.res.Stats.CSEHits
		resp.Stats.ParseDedups += o.res.Stats.ParseDedups
	}
	if n := resp.Stats.SharedScans + resp.Stats.CSEHits + resp.Stats.ParseDedups; n > 0 {
		s.met.sharedQueries.Add(1)
		tc.sharedQueries.Add(1)
		s.met.sharedScans.Add(uint64(resp.Stats.SharedScans))
		tc.sharedScans.Add(uint64(resp.Stats.SharedScans))
		s.met.cseHits.Add(uint64(resp.Stats.CSEHits))
		tc.cseHits.Add(uint64(resp.Stats.CSEHits))
		s.met.parseDedups.Add(uint64(resp.Stats.ParseDedups))
		tc.parseDedups.Add(uint64(resp.Stats.ParseDedups))
	}
	// Partial mode returns an error alongside results when the context it
	// ran under ended. A shard-local deadline is already reflected in that
	// shard's per-file degradation; only the query-level context ending
	// makes the whole call report interruption.
	if err := ctx.Err(); err != nil {
		interrupted = err
	}
	for _, f := range set.files {
		if h, ok := hits[f]; ok {
			resp.Hits = append(resp.Hits, h)
		}
		if d, ok := degraded[f]; ok {
			resp.Degraded = append(resp.Degraded, d)
		}
	}
	resp.Elapsed = time.Since(start)
	if len(resp.Degraded) > 0 {
		s.met.degraded.Add(1)
	}
	if interrupted != nil {
		if errors.Is(interrupted, context.Canceled) {
			s.met.canceled.Add(1)
		}
		return resp, interrupted
	}
	s.met.ok.Add(1)
	return resp, nil
}

// attemptOut is one replica attempt's outcome. res is nil exactly when the
// attempt failed wholesale (injected fault, panic); in partial mode a
// completed attempt always carries a result, even when some of its files
// degraded or the query context ended mid-flight.
type attemptOut struct {
	res   *qof.CorpusResults
	err   error
	shard int
	hedge bool
}

// groupOut is one group dispatch's outcome, with the counters Execute
// attributes to the server and the tenant.
type groupOut struct {
	res        *qof.CorpusResults
	err        error // non-nil only when every routed replica failed
	hedges     int   // hedged attempts sent
	hedgeWon   bool  // the winning attempt was a hedge
	failovers  int   // attempts routed to a non-primary replica
	failedOpen bool  // served with every replica's breaker open
}

// hedgeDelay resolves the configured hedge policy to a concrete delay; 0
// means hedging is off for this dispatch.
func (s *Server) hedgeDelay() time.Duration {
	if s.cfg.HedgeAfter < 0 {
		return 0
	}
	if s.cfg.HedgeAfter > 0 {
		return s.cfg.HedgeAfter
	}
	// Adaptive: hedge past the p99 of recent per-attempt latencies, so at
	// most ~1% of attempts hedge once the histogram has signal. Before it
	// does, a generous fixed delay avoids hedging warm-up noise.
	if s.met.legHist.count() < 50 {
		return 25 * time.Millisecond
	}
	d := time.Duration(s.met.legHist.quantile(0.99) * float64(time.Millisecond))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// runGroup dispatches one replica group: primary attempt first (routing
// around open breakers, failing open to the primary when every breaker is
// open), a hedged attempt on the next replica when the primary is slow, and
// failover attempts when an attempt fails wholesale. The first completed
// attempt wins and every other attempt's context is canceled immediately;
// only when every routed replica failed does the group report an error.
func (s *Server) runGroup(ctx context.Context, set *shardSet, g group, query string, opts []qof.QueryOption) groupOut {
	gopts := make([]qof.QueryOption, len(opts), len(opts)+1)
	copy(gopts, opts)
	gopts = append(gopts, qof.WithFiles(g.files...))

	// Buffered past the attempt count, so a loser finishing after the
	// dispatcher returned never blocks on its send.
	outs := make(chan attemptOut, len(g.replicas)+1)
	cancels := make([]context.CancelFunc, 0, len(g.replicas)+1)
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	// pick walks the placement order, skipping replicas whose breaker
	// rejects routing (an open breaker admits one probe per cooldown).
	next := 0
	pick := func() (int, bool) {
		for next < len(g.replicas) {
			sh := g.replicas[next]
			next++
			if s.breakers[sh].admit(s.met) {
				return sh, true
			}
		}
		return 0, false
	}

	var out groupOut
	pending := 0
	primary := g.replicas[0]
	first, routed := pick()
	point := faultinject.ServeShard
	if !routed {
		// Every replica's breaker is open: fail open to the primary rather
		// than refuse the group — an answer attempt beats certain
		// degradation, and its outcome feeds the breaker.
		first = primary
		out.failedOpen = true
	} else if first != primary {
		point = faultinject.ServeReplica
		out.failovers++
	}
	actx, cancel := context.WithCancel(ctx)
	cancels = append(cancels, cancel)
	pending++
	go s.attempt(actx, ctx, set, first, point, query, gopts, outs)

	var hedgeC <-chan time.Time
	if d := s.hedgeDelay(); d > 0 && len(g.replicas) > 1 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	for {
		select {
		case o := <-outs:
			pending--
			if o.res != nil {
				out.res = o.res
				out.hedgeWon = o.hedge
				return out
			}
			if o.err != nil {
				out.err = o.err
			}
			if sh, ok := pick(); ok {
				out.failovers++
				fctx, fcancel := context.WithCancel(ctx)
				cancels = append(cancels, fcancel)
				pending++
				go s.attempt(fctx, ctx, set, sh, faultinject.ServeReplica, query, gopts, outs)
			} else if pending == 0 {
				if out.err == nil {
					out.err = errors.New("serve: no replica answered")
				}
				return out
			}
		case <-hedgeC:
			hedgeC = nil
			if sh, ok := pick(); ok {
				out.hedges++
				hctx, hcancel := context.WithCancel(ctx)
				cancels = append(cancels, hcancel)
				pending++
				go s.attempt(hctx, ctx, set, sh, faultinject.ServeHedge, query, gopts, outs)
			}
		}
	}
}

// attempt runs one replica attempt and delivers its outcome on outs. It is
// panic-isolated, observes its own latency into the histogram driving the
// adaptive hedge delay, and feeds the replica's breaker — a completed
// result (even a partially degraded one) is a success; a wholesale failure
// counts against the replica unless the dispatcher canceled the attempt or
// the query's own context ended.
func (s *Server) attempt(actx, qctx context.Context, set *shardSet, shard int, point string, query string, opts []qof.QueryOption, outs chan<- attemptOut) {
	start := time.Now()
	out := attemptOut{shard: shard, hedge: point == faultinject.ServeHedge}
	defer func() {
		if p := recover(); p != nil {
			out.res, out.err = nil, fmt.Errorf("panic: %v: %w", p, qerr.ErrInternal)
		}
		s.met.legHist.observe(time.Since(start))
		s.recordAttempt(shard, out.res != nil, actx, qctx)
		outs <- out
	}()
	if err := faultinject.HitN(point, shard); err != nil {
		out.err = err
		return
	}
	sctx := actx
	if s.cfg.ShardTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(actx, s.cfg.ShardTimeout)
		defer cancel()
	}
	out.res, out.err = set.shards[shard].ExecuteContext(sctx, query, opts...)
}

// recordAttempt feeds one attempt outcome to the shard's breaker. A
// canceled loser and a query whose own context ended say nothing about the
// replica's health, so they count neither way.
func (s *Server) recordAttempt(shard int, ok bool, actx, qctx context.Context) {
	b := s.breakers[shard]
	if ok {
		b.success(s.met)
		return
	}
	if qctx.Err() != nil || actx.Err() != nil {
		return
	}
	b.failure(s.met)
}
