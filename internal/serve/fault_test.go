package serve_test

// Satellite fault matrix for the serving layer: per-shard failpoints must
// degrade the answer to a partial one with correct shard and file
// attribution — never fail or hang the query — and the daemon must serve
// complete answers again the moment the fault clears.

import (
	"context"
	"errors"
	"testing"
	"time"

	"qof"
	"qof/internal/faultinject"
	"qof/internal/serve"
)

// TestShardFaultDegrades injects error and panic faults into exactly one
// scatter leg (trigger @1: the first shard to reach the failpoint) and
// asserts the partial-answer contract.
func TestShardFaultDegrades(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2})
	if _, err := srv.Publish(sampleFiles(6)); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"error", "panic"} {
		if err := faultinject.Configure(faultinject.ServeShard + "=" + kind + "@1"); err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery})
		faultinject.Reset()
		if err != nil {
			t.Fatalf("%s: shard fault failed the query outright: %v", kind, err)
		}
		if resp.Complete() || len(resp.Degraded) == 0 {
			t.Fatalf("%s: faulted shard produced a complete answer", kind)
		}
		want := error(faultinject.ErrInjected)
		if kind == "panic" {
			want = qof.ErrInternal
		}
		// Every degraded file belongs to the one faulted shard, is placed
		// there by the hash, and carries the typed cause.
		faulted := resp.Degraded[0].Shard
		for _, d := range resp.Degraded {
			if d.Shard != faulted {
				t.Errorf("%s: degradation spans shards %d and %d, want one", kind, faulted, d.Shard)
			}
			if got := serve.ShardOf(d.File, 2); got != d.Shard {
				t.Errorf("%s: %s attributed to shard %d, hashes to %d", kind, d.File, d.Shard, got)
			}
			if !errors.Is(d.Err, want) {
				t.Errorf("%s: %s failed with %v, want %v", kind, d.File, d.Err, want)
			}
		}
		if got := len(resp.Hits) + len(resp.Degraded); got != 6 {
			t.Errorf("%s: hits %d + degraded %d != 6 files", kind, len(resp.Hits), len(resp.Degraded))
		}
		// The surviving shard answered correctly: every hit has the known
		// single result and hashes to the healthy shard.
		for _, h := range resp.Hits {
			if serve.ShardOf(h.File, 2) == faulted {
				t.Errorf("%s: hit %s hashes to the faulted shard %d", kind, h.File, faulted)
			}
		}
		if err := resp.DegradedError(); !errors.Is(err, want) {
			t.Errorf("%s: DegradedError = %v, want %v", kind, err, want)
		}
		// Fault cleared: the very next query is complete.
		resp, err = srv.Execute(t.Context(), serve.Request{Query: changQuery})
		if err != nil || !resp.Complete() || len(resp.Hits) != 6 {
			t.Fatalf("%s: post-fault query: hits=%d err=%v degraded=%v",
				kind, len(resp.Hits), err, resp.DegradedError())
		}
	}
}

// TestShardDelayFault: a slow shard under no deadline just makes the query
// slower — the answer stays complete.
func TestShardDelayFault(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2})
	if _, err := srv.Publish(sampleFiles(4)); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure(faultinject.ServeShard + "=delay:30ms"); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery})
	faultinject.Reset()
	if err != nil || !resp.Complete() || len(resp.Hits) != 4 {
		t.Fatalf("delayed shard: hits=%d err=%v degraded=%v", len(resp.Hits), err, resp.DegradedError())
	}
}

// TestShardDeadlineDegrades: per-file work slower than the shard deadline
// degrades those files with context.DeadlineExceeded, while the query-level
// call still succeeds — a slow shard is a partial answer, not a failed or
// interrupted query.
func TestShardDeadlineDegrades(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2, ShardTimeout: 20 * time.Millisecond})
	if _, err := srv.Publish(sampleFiles(4)); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure(faultinject.CorpusFile + "=delay:80ms"); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery})
	faultinject.Reset()
	if err != nil {
		t.Fatalf("shard deadline interrupted the query: %v", err)
	}
	if resp.Complete() {
		t.Fatal("80ms/file under a 20ms shard deadline produced a complete answer")
	}
	for _, d := range resp.Degraded {
		if !errors.Is(d.Err, context.DeadlineExceeded) {
			t.Errorf("%s degraded with %v, want DeadlineExceeded", d.File, d.Err)
		}
		if got := serve.ShardOf(d.File, 2); got != d.Shard {
			t.Errorf("%s attributed to shard %d, hashes to %d", d.File, d.Shard, got)
		}
	}
	if got := len(resp.Hits) + len(resp.Degraded); got != 4 {
		t.Errorf("hits %d + degraded %d != 4 files", len(resp.Hits), len(resp.Degraded))
	}
	// Deadlines cleared, the daemon is healthy.
	resp, err = srv.Execute(t.Context(), serve.Request{Query: changQuery})
	if err != nil || !resp.Complete() || len(resp.Hits) != 4 {
		t.Fatalf("post-deadline query: hits=%d err=%v", len(resp.Hits), err)
	}
}

// TestQueryDeadlineInterrupts: unlike a shard deadline, the query-level
// deadline expiring reports interruption to the caller (HTTP: 504), with
// the partial answer attached.
func TestQueryDeadlineInterrupts(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2})
	if _, err := srv.Publish(sampleFiles(4)); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure(faultinject.CorpusFile + "=delay:80ms"); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery, Timeout: 20 * time.Millisecond})
	faultinject.Reset()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if resp == nil {
		t.Fatal("interrupted query returned no partial response")
	}
	resp, err = srv.Execute(t.Context(), serve.Request{Query: changQuery})
	if err != nil || !resp.Complete() {
		t.Fatalf("post-interrupt query: err=%v degraded=%v", err, resp.DegradedError())
	}
}
