package serve_test

// Satellite fault matrix for the serving layer: per-shard failpoints must
// degrade the answer to a partial one with correct shard and file
// attribution — never fail or hang the query — and the daemon must serve
// complete answers again the moment the fault clears.

import (
	"context"
	"errors"
	"testing"
	"time"

	"qof"
	"qof/internal/faultinject"
	"qof/internal/serve"
)

// TestShardFaultDegrades injects error and panic faults into exactly one
// scatter leg (trigger @1: the first shard to reach the failpoint) and
// asserts the partial-answer contract. Replicas is pinned to 1: with a
// single copy per file there is no replica to fail over to, so the fault
// must surface as attributed degradation (TestShardFaultFailsOver proves
// the replicated behavior).
func TestShardFaultDegrades(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2, Replicas: 1})
	if _, err := srv.Publish(sampleFiles(6)); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"error", "panic"} {
		if err := faultinject.Configure(faultinject.ServeShard + "=" + kind + "@1"); err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery})
		faultinject.Reset()
		if err != nil {
			t.Fatalf("%s: shard fault failed the query outright: %v", kind, err)
		}
		if resp.Complete() || len(resp.Degraded) == 0 {
			t.Fatalf("%s: faulted shard produced a complete answer", kind)
		}
		want := error(faultinject.ErrInjected)
		if kind == "panic" {
			want = qof.ErrInternal
		}
		// Every degraded file belongs to the one faulted shard, is placed
		// there by the hash, and carries the typed cause.
		faulted := resp.Degraded[0].Shard
		for _, d := range resp.Degraded {
			if d.Shard != faulted {
				t.Errorf("%s: degradation spans shards %d and %d, want one", kind, faulted, d.Shard)
			}
			if got := serve.ShardOf(d.File, 2); got != d.Shard {
				t.Errorf("%s: %s attributed to shard %d, hashes to %d", kind, d.File, d.Shard, got)
			}
			if !errors.Is(d.Err, want) {
				t.Errorf("%s: %s failed with %v, want %v", kind, d.File, d.Err, want)
			}
		}
		if got := len(resp.Hits) + len(resp.Degraded); got != 6 {
			t.Errorf("%s: hits %d + degraded %d != 6 files", kind, len(resp.Hits), len(resp.Degraded))
		}
		// The surviving shard answered correctly: every hit has the known
		// single result and hashes to the healthy shard.
		for _, h := range resp.Hits {
			if serve.ShardOf(h.File, 2) == faulted {
				t.Errorf("%s: hit %s hashes to the faulted shard %d", kind, h.File, faulted)
			}
		}
		if err := resp.DegradedError(); !errors.Is(err, want) {
			t.Errorf("%s: DegradedError = %v, want %v", kind, err, want)
		}
		// Fault cleared: the very next query is complete.
		resp, err = srv.Execute(t.Context(), serve.Request{Query: changQuery})
		if err != nil || !resp.Complete() || len(resp.Hits) != 6 {
			t.Fatalf("%s: post-fault query: hits=%d err=%v degraded=%v",
				kind, len(resp.Hits), err, resp.DegradedError())
		}
	}
}

// TestShardFaultFailsOver: with the default two replicas per file, a
// primary attempt failing wholesale (error or panic) fails over to the
// secondary and the answer stays complete — replication turns what used to
// be degradation into a correct answer.
func TestShardFaultFailsOver(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2})
	if _, err := srv.Publish(sampleFiles(6)); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"error", "panic"} {
		// Every primary attempt faults; failover attempts (serve.replica)
		// are left healthy.
		if err := faultinject.Configure(faultinject.ServeShard + "=" + kind); err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery})
		hits := faultinject.Hits(faultinject.ServeShard)
		faultinject.Reset()
		if err != nil {
			t.Fatalf("%s: faulted primaries failed the query outright: %v", kind, err)
		}
		if !resp.Complete() || len(resp.Hits) != 6 {
			t.Fatalf("%s: failover did not complete the answer: hits=%d degraded=%v",
				kind, len(resp.Hits), resp.DegradedError())
		}
		if hits == 0 {
			t.Fatalf("%s: the serve.shard failpoint was never reached", kind)
		}
	}
	m := srv.Metrics()
	if m.FailoversTotal == 0 {
		t.Fatalf("failovers_total = 0 after primary faults; metrics = %+v", m)
	}
	// Faults cleared: the daemon serves complete answers directly.
	resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery})
	if err != nil || !resp.Complete() || len(resp.Hits) != 6 {
		t.Fatalf("post-fault query: hits=%d err=%v degraded=%v", len(resp.Hits), err, resp.DegradedError())
	}
}

// TestBreakerTripsAndRecovers: a replica that fails every attempt
// wholesale trips its breaker after the threshold; queries route around it
// and stay complete. Once the fault clears and the cooldown elapses, a
// half-open probe closes the breaker again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	srv := newServer(t, serve.Config{
		Shards: 2, Replicas: 2,
		BreakerThreshold: 2, BreakerCooldown: 20 * time.Millisecond,
	})
	if _, err := srv.Publish(sampleFiles(6)); err != nil {
		t.Fatal(err)
	}
	// Shard 0 fails every attempt routed to it, whatever the attempt kind.
	spec := faultinject.ServeShard + "#0=error," +
		faultinject.ServeReplica + "#0=error," +
		faultinject.ServeHedge + "#0=error"
	if err := faultinject.Configure(spec); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.BreakerState(0) != "open" {
		if time.Now().After(deadline) {
			faultinject.Reset()
			t.Fatalf("breaker 0 never opened; state = %q", srv.BreakerState(0))
		}
		resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery})
		if err != nil {
			faultinject.Reset()
			t.Fatalf("query failed while shard 0 faulted: %v", err)
		}
		if !resp.Complete() {
			faultinject.Reset()
			t.Fatalf("answer degraded while shard 1 held every file: %v", resp.DegradedError())
		}
	}
	// Open breaker: queries keep completing without touching shard 0.
	resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery})
	if err != nil || !resp.Complete() || len(resp.Hits) != 6 {
		t.Fatalf("query with breaker open: hits=%d err=%v degraded=%v",
			len(resp.Hits), err, resp.DegradedError())
	}
	faultinject.Reset()

	// Fault cleared: after the cooldown a probe closes the breaker.
	for srv.BreakerState(0) != "closed" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker 0 never closed; state = %q", srv.BreakerState(0))
		}
		time.Sleep(5 * time.Millisecond)
		if _, err := srv.Execute(t.Context(), serve.Request{Query: changQuery}); err != nil {
			t.Fatalf("recovery query: %v", err)
		}
	}
	m := srv.Metrics()
	if m.BreakerOpens == 0 || m.BreakerHalfOpens == 0 || m.BreakerCloses == 0 {
		t.Fatalf("breaker transitions missing from metrics: opens=%d half=%d closes=%d",
			m.BreakerOpens, m.BreakerHalfOpens, m.BreakerCloses)
	}
}

// TestForcedBreakerFailsOver: pinning a breaker open routes every group
// away from the shard (failover, not degradation), and successes cannot
// close a pinned breaker; releasing the pin closes it.
func TestForcedBreakerFailsOver(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2, Replicas: 2})
	if _, err := srv.Publish(sampleFiles(6)); err != nil {
		t.Fatal(err)
	}
	srv.ForceBreaker(0, true)
	resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery})
	if err != nil || !resp.Complete() || len(resp.Hits) != 6 {
		t.Fatalf("forced-open query: hits=%d err=%v degraded=%v", len(resp.Hits), err, resp.DegradedError())
	}
	if got := srv.BreakerState(0); got != "open" {
		t.Fatalf("breaker 0 state = %q after successes, want pinned open", got)
	}
	if m := srv.Metrics(); m.FailoversTotal == 0 {
		t.Fatal("forced-open breaker produced no failovers")
	}
	srv.ForceBreaker(0, false)
	if got := srv.BreakerState(0); got != "closed" {
		t.Fatalf("breaker 0 state = %q after release, want closed", got)
	}
}

// TestShardDelayFault: a slow shard under no deadline just makes the query
// slower — the answer stays complete.
func TestShardDelayFault(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2})
	if _, err := srv.Publish(sampleFiles(4)); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure(faultinject.ServeShard + "=delay:30ms"); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery})
	faultinject.Reset()
	if err != nil || !resp.Complete() || len(resp.Hits) != 4 {
		t.Fatalf("delayed shard: hits=%d err=%v degraded=%v", len(resp.Hits), err, resp.DegradedError())
	}
}

// TestShardDeadlineDegrades: per-file work slower than the shard deadline
// degrades those files with context.DeadlineExceeded, while the query-level
// call still succeeds — a slow shard is a partial answer, not a failed or
// interrupted query.
func TestShardDeadlineDegrades(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2, ShardTimeout: 20 * time.Millisecond})
	if _, err := srv.Publish(sampleFiles(4)); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure(faultinject.CorpusFile + "=delay:80ms"); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery})
	faultinject.Reset()
	if err != nil {
		t.Fatalf("shard deadline interrupted the query: %v", err)
	}
	if resp.Complete() {
		t.Fatal("80ms/file under a 20ms shard deadline produced a complete answer")
	}
	for _, d := range resp.Degraded {
		if !errors.Is(d.Err, context.DeadlineExceeded) {
			t.Errorf("%s degraded with %v, want DeadlineExceeded", d.File, d.Err)
		}
		if got := serve.ShardOf(d.File, 2); got != d.Shard {
			t.Errorf("%s attributed to shard %d, hashes to %d", d.File, d.Shard, got)
		}
	}
	if got := len(resp.Hits) + len(resp.Degraded); got != 4 {
		t.Errorf("hits %d + degraded %d != 4 files", len(resp.Hits), len(resp.Degraded))
	}
	// Deadlines cleared, the daemon is healthy.
	resp, err = srv.Execute(t.Context(), serve.Request{Query: changQuery})
	if err != nil || !resp.Complete() || len(resp.Hits) != 4 {
		t.Fatalf("post-deadline query: hits=%d err=%v", len(resp.Hits), err)
	}
}

// TestQueryDeadlineInterrupts: unlike a shard deadline, the query-level
// deadline expiring reports interruption to the caller (HTTP: 504), with
// the partial answer attached.
func TestQueryDeadlineInterrupts(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2})
	if _, err := srv.Publish(sampleFiles(4)); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure(faultinject.CorpusFile + "=delay:80ms"); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery, Timeout: 20 * time.Millisecond})
	faultinject.Reset()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if resp == nil {
		t.Fatal("interrupted query returned no partial response")
	}
	resp, err = srv.Execute(t.Context(), serve.Request{Query: changQuery})
	if err != nil || !resp.Complete() {
		t.Fatalf("post-interrupt query: err=%v degraded=%v", err, resp.DegradedError())
	}
}
