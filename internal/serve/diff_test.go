package serve_test

// The end-to-end differential leg: qgen-generated queries from all three
// domains are driven over HTTP through a sharded qofd daemon (one shard and
// four shards, streaming; plus materializing shards as the oracle-executor
// leg) and every response must be byte-identical to the envelope the direct
// qof facade produces over one corpus holding the same files. LIMIT-prefix
// legs re-run succeeding queries with LIMIT k and check both the facade
// agreement and the per-file prefix invariant.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"qof"
	"qof/internal/qgen"
	"qof/internal/serve"
)

const (
	diffCorpusSeed = 1994
	diffQuerySeed  = 733
	filesPerDomain = 4
)

// queriesPerDomain matches the acceptance floor for the HTTP differential
// leg; -short trims it for local iteration.
func queriesPerDomain(t *testing.T) int {
	if testing.Short() {
		return 100
	}
	return 600
}

// domainFiles builds a multi-file corpus for one domain by regenerating its
// document under distinct seeds.
func domainFiles(name string) map[string]string {
	files := make(map[string]string, filesPerDomain)
	for i := int64(0); i < filesPerDomain; i++ {
		var d *qgen.Domain
		switch name {
		case "bibtex":
			d = qgen.BibTeX(diffCorpusSeed + i)
		case "sgml":
			d = qgen.SGML(diffCorpusSeed + i)
		case "logs":
			d = qgen.Logs(diffCorpusSeed + i)
		default:
			panic("unknown domain " + name)
		}
		files[d.Doc.Name()] = d.Doc.Content()
	}
	return files
}

func schemaFor(name string) *qof.Schema {
	switch name {
	case "bibtex":
		return qof.BibTeX()
	case "sgml":
		return qof.SGML()
	case "logs":
		return qof.Logs()
	}
	panic("unknown domain " + name)
}

// daemonLeg is one running qofd under test.
type daemonLeg struct {
	name   string
	shards int
	srv    *serve.Server
	ts     *httptest.Server
}

func startLeg(t *testing.T, name string, schema *qof.Schema, files map[string]string, shards int, materializing, shared bool) *daemonLeg {
	t.Helper()
	return startLegCfg(t, name, files, serve.Config{
		Schema:          schema,
		Shards:          shards,
		Parallelism:     2,
		Materializing:   materializing,
		SharedExecution: shared,
	})
}

func startLegCfg(t *testing.T, name string, files map[string]string, cfg serve.Config) *daemonLeg {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish(files); err != nil {
		t.Fatalf("%s: publish: %v", name, err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &daemonLeg{name: name, shards: cfg.Shards, srv: srv, ts: ts}
}

// post drives one query over HTTP and returns the raw response body.
func (l *daemonLeg) post(t *testing.T, query string) []byte {
	t.Helper()
	return l.postReq(t, serve.QueryRequest{Query: query})
}

func (l *daemonLeg) postReq(t *testing.T, req serve.QueryRequest) []byte {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(l.ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("%s: POST /query: %v", l.name, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("%s: reading body: %v", l.name, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: query %q: status %d: %s", l.name, req.Query, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// canonical re-marshals a response body with the one timing-dependent field
// (elapsed_us) zeroed; every other byte must be reproducible.
func canonical(t *testing.T, raw []byte) []byte {
	t.Helper()
	var env serve.Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("bad envelope %s: %v", raw, err)
	}
	env.ElapsedUs = 0
	out, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// expected builds the envelope bytes the daemon must produce, from a direct
// facade execution of the same query over one corpus holding every file.
func expected(t *testing.T, res *qof.CorpusResults, epoch uint64, shards, files int) []byte {
	t.Helper()
	hits, degraded := serve.HitsFromCorpus(res, shards)
	env := serve.NewEnvelope(&serve.Response{
		Epoch: epoch, Shards: shards, Files: files,
		Hits: hits, Degraded: degraded, Stats: res.Stats,
	})
	env.ElapsedUs = 0
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestHTTPDifferential is the serving layer's differential guarantee: for
// every generated query, the daemon's HTTP answer — sharded N=1 and N=4 on
// the streaming executor, N=7 with shared execution, and sharded N=2 on
// the materializing reference — is byte-identical to the direct facade's
// answer over the same files.
func TestHTTPDifferential(t *testing.T) {
	for _, domain := range []string{"bibtex", "sgml", "logs"} {
		domain := domain
		t.Run(domain, func(t *testing.T) {
			t.Parallel()
			files := domainFiles(domain)
			nFiles := len(files)
			schema := schemaFor(domain)

			// The direct facade reference: one corpus, every file.
			direct := schema.NewCorpus(qof.WithParallelism(2))
			if err := direct.AddAll(files); err != nil {
				t.Fatal(err)
			}
			directMat := schema.NewCorpus(qof.WithParallelism(2), qof.WithMaterializing())
			if err := directMat.AddAll(files); err != nil {
				t.Fatal(err)
			}

			legs := []*daemonLeg{
				startLeg(t, domain+"/shards=1", schema, files, 1, false, false),
				startLeg(t, domain+"/shards=4", schema, files, 4, false, false),
				// Shared execution must be envelope-invisible: the leg is
				// compared against the same unshared facade reference.
				startLeg(t, domain+"/shards=7+shared", schema, files, 7, false, true),
			}
			matLeg := startLeg(t, domain+"/shards=2+materializing", schema, files, 2, true, false)

			gen := qgen.NewQueryGen(qgenDomain(domain), diffQuerySeed)
			n := queriesPerDomain(t)
			nonEmpty, limitChecked := 0, 0
			for i := 0; i < n; i++ {
				q := gen.Query()
				src := q.String()
				res, err := direct.ExecuteContext(t.Context(), src, qof.WithPartialResults())
				if err != nil {
					t.Fatalf("query %d %q: direct facade: %v", i, src, err)
				}
				for _, leg := range legs {
					got := canonical(t, leg.post(t, src))
					want := expected(t, res, leg.srv.Epoch(), leg.shards, nFiles)
					if !bytes.Equal(got, want) {
						t.Fatalf("query %d %q: %s diverges from the direct facade:\n  got  %s\n  want %s",
							i, src, leg.name, got, want)
					}
				}
				// Materializing-oracle leg: the daemon's materializing shards
				// against the facade's materializing corpus.
				matRes, err := directMat.ExecuteContext(t.Context(), src, qof.WithPartialResults())
				if err != nil {
					t.Fatalf("query %d %q: direct materializing facade: %v", i, src, err)
				}
				got := canonical(t, matLeg.post(t, src))
				want := expected(t, matRes, matLeg.srv.Epoch(), matLeg.shards, nFiles)
				if !bytes.Equal(got, want) {
					t.Fatalf("query %d %q: %s diverges from the materializing facade:\n  got  %s\n  want %s",
						i, src, matLeg.name, got, want)
				}
				if len(res.Hits) > 0 {
					nonEmpty++
				}
				// LIMIT-prefix leg: rerun succeeding queries with LIMIT k and
				// check facade agreement plus the per-file prefix invariant.
				if q.Limit == 0 && len(res.Degraded) == 0 && res.Stats.Results > 1 {
					limitChecked++
					for _, k := range []int{1, 3} {
						lsrc := fmt.Sprintf("%s LIMIT %d", src, k)
						lres, err := direct.ExecuteContext(t.Context(), lsrc, qof.WithPartialResults())
						if err != nil {
							t.Fatalf("query %d %q: direct facade: %v", i, lsrc, err)
						}
						for _, leg := range legs {
							got := canonical(t, leg.post(t, lsrc))
							want := expected(t, lres, leg.srv.Epoch(), leg.shards, nFiles)
							if !bytes.Equal(got, want) {
								t.Fatalf("query %d %q: %s diverges from the direct facade:\n  got  %s\n  want %s",
									i, lsrc, leg.name, got, want)
							}
						}
						if len(q.From) == 1 {
							projected := len(q.Select.Segs) > 0
							if err := checkLimitPrefix(res, lres, k, projected); err != nil {
								t.Fatalf("query %d %q: %v", i, lsrc, err)
							}
						}
					}
				}
			}
			if min := n / 10; nonEmpty < min {
				t.Errorf("only %d/%d queries had hits, want ≥ %d — workload too vacuous", nonEmpty, n, min)
			}
			if limitChecked == 0 {
				t.Error("no query qualified for the LIMIT-prefix leg")
			}
		})
	}
}

// qgenDomain returns the qgen domain (word pools, classes) for query
// generation; the corpus documents come from domainFiles instead.
func qgenDomain(name string) *qgen.Domain {
	switch name {
	case "bibtex":
		return qgen.BibTeX(diffCorpusSeed)
	case "sgml":
		return qgen.SGML(diffCorpusSeed)
	case "logs":
		return qgen.Logs(diffCorpusSeed)
	}
	panic("unknown domain " + name)
}

// checkLimitPrefix verifies the corpus LIMIT contract per file for
// single-variable queries: a limited hit is a document-order prefix of the
// file's full answer. For whole-object selects one span is one row, so the
// span count is exactly min(k, full spans); for projections a row may
// contribute several values and its extent regions form a set, so only the
// prefix property is asserted.
func checkLimitPrefix(full, limited *qof.CorpusResults, k int, projected bool) error {
	fullByFile := make(map[string]qof.CorpusHit, len(full.Hits))
	for _, h := range full.Hits {
		fullByFile[h.File] = h
	}
	for _, lh := range limited.Hits {
		fh, ok := fullByFile[lh.File]
		if !ok {
			return fmt.Errorf("LIMIT %d: file %s has limited hits but no full hits", k, lh.File)
		}
		if !projected {
			if want := min(k, len(fh.Spans)); len(lh.Spans) != want {
				return fmt.Errorf("LIMIT %d: file %s returned %d spans, want %d (full %d)",
					k, lh.File, len(lh.Spans), want, len(fh.Spans))
			}
		}
		for i, sp := range lh.Spans {
			if sp != fh.Spans[i] {
				return fmt.Errorf("LIMIT %d: file %s span %d is %+v, full answer has %+v — not a prefix",
					k, lh.File, i, sp, fh.Spans[i])
			}
		}
		if len(lh.Values) > len(fh.Values) {
			return fmt.Errorf("LIMIT %d: file %s returned %d values, full answer has %d",
				k, lh.File, len(lh.Values), len(fh.Values))
		}
		for i, v := range lh.Values {
			if v != fh.Values[i] {
				return fmt.Errorf("LIMIT %d: file %s value %d is %q, full answer has %q — not a prefix",
					k, lh.File, i, v, fh.Values[i])
			}
		}
	}
	return nil
}

// TestHTTPDifferentialDegraded pins the byte-identity contract on the
// degraded path too: under a one-region budget every file trips the budget
// deterministically, and the daemon's degraded envelope matches the direct
// facade's degradation file for file, error for error.
func TestHTTPDifferentialDegraded(t *testing.T) {
	files := domainFiles("bibtex")
	schema := schemaFor("bibtex")
	direct := schema.NewCorpus()
	if err := direct.AddAll(files); err != nil {
		t.Fatal(err)
	}
	leg := startLeg(t, "bibtex/shards=4", schema, files, 4, false, false)
	const src = `SELECT r FROM References r`
	res, err := direct.ExecuteContext(t.Context(), src,
		qof.WithPartialResults(), qof.WithMaxRegions(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) != len(files) {
		t.Fatalf("facade degraded %d files, want %d", len(res.Degraded), len(files))
	}
	got := canonical(t, leg.postReq(t, serve.QueryRequest{Query: src, MaxRegions: 1}))
	want := expected(t, res, leg.srv.Epoch(), 4, len(files))
	if !bytes.Equal(got, want) {
		t.Fatalf("degraded envelope diverges:\n  got  %s\n  want %s", got, want)
	}
	if !strings.Contains(string(got), `"degraded"`) {
		t.Fatalf("degraded envelope lost its degradation: %s", got)
	}
}

// TestHTTPDifferentialReplicated pins the tentpole invariant: replication
// is envelope-invisible. The full shard grid (1, 2, 4, 7) on both
// executors runs with two replicas per file, and every response must be
// byte-identical to the direct single-corpus facade — replica copies must
// never double-count hits, stats, or file totals. A final leg forces one
// shard's breaker open and replays the workload: answers must come from
// failover to the surviving replica (complete and still byte-identical),
// not from degradation.
func TestHTTPDifferentialReplicated(t *testing.T) {
	files := domainFiles("bibtex")
	nFiles := len(files)
	schema := schemaFor("bibtex")
	direct := schema.NewCorpus(qof.WithParallelism(2))
	if err := direct.AddAll(files); err != nil {
		t.Fatal(err)
	}
	directMat := schema.NewCorpus(qof.WithParallelism(2), qof.WithMaterializing())
	if err := directMat.AddAll(files); err != nil {
		t.Fatal(err)
	}

	type gridLeg struct {
		leg *daemonLeg
		mat bool
	}
	var legs []gridLeg
	for _, shards := range []int{1, 2, 4, 7} {
		for _, mat := range []bool{false, true} {
			name := fmt.Sprintf("bibtex/shards=%d+r2", shards)
			if mat {
				name += "+materializing"
			}
			legs = append(legs, gridLeg{mat: mat, leg: startLegCfg(t, name, files, serve.Config{
				Schema:        schema,
				Shards:        shards,
				Replicas:      2,
				Parallelism:   2,
				Materializing: mat,
			})})
		}
	}
	// The forced-failover leg: shard 0's breaker is pinned open, so every
	// group with primary 0 must route to its secondary replica.
	broken := startLegCfg(t, "bibtex/shards=2+r2+breaker-open", files, serve.Config{
		Schema:      schema,
		Shards:      2,
		Replicas:    2,
		Parallelism: 2,
	})
	broken.srv.ForceBreaker(0, true)

	gen := qgen.NewQueryGen(qgenDomain("bibtex"), diffQuerySeed+2)
	n := queriesPerDomain(t) / 4
	for i := 0; i < n; i++ {
		src := gen.Query().String()
		res, err := direct.ExecuteContext(t.Context(), src, qof.WithPartialResults())
		if err != nil {
			t.Fatalf("query %d %q: direct facade: %v", i, src, err)
		}
		matRes, err := directMat.ExecuteContext(t.Context(), src, qof.WithPartialResults())
		if err != nil {
			t.Fatalf("query %d %q: direct materializing facade: %v", i, src, err)
		}
		for _, gl := range legs {
			ref := res
			if gl.mat {
				ref = matRes
			}
			got := canonical(t, gl.leg.post(t, src))
			want := expected(t, ref, gl.leg.srv.Epoch(), gl.leg.shards, nFiles)
			if !bytes.Equal(got, want) {
				t.Fatalf("query %d %q: %s diverges from the direct facade:\n  got  %s\n  want %s",
					i, src, gl.leg.name, got, want)
			}
		}
		got := canonical(t, broken.post(t, src))
		want := expected(t, res, broken.srv.Epoch(), broken.shards, nFiles)
		if !bytes.Equal(got, want) {
			t.Fatalf("query %d %q: %s diverges with shard 0's breaker open:\n  got  %s\n  want %s",
				i, src, broken.name, got, want)
		}
	}
	// The broken leg must have answered by failover, never by writing off
	// the shard: the envelopes above are complete, and the failover counter
	// proves the secondary actually served.
	if got := broken.srv.Metrics().FailoversTotal; got == 0 {
		t.Error("breaker-open leg recorded no failovers; shard 0 files were never rerouted")
	}
	if st := broken.srv.BreakerState(0); st != "open" {
		t.Errorf("forced breaker reads %s after the workload, want open", st)
	}
}

// TestHTTPSharedConcurrentDifferential stampedes a shared-execution daemon
// with overlapping clients replaying a generated workload and checks every
// response byte-identical to the sequential unshared facade reference: the
// batching window, the cross-query CSE table and the parse-dedup table must
// be invisible in the envelope no matter which queries happened to overlap.
// Run under -race this is the serving layer's shared-execution gate.
func TestHTTPSharedConcurrentDifferential(t *testing.T) {
	files := domainFiles("bibtex")
	schema := schemaFor("bibtex")
	direct := schema.NewCorpus(qof.WithParallelism(2))
	if err := direct.AddAll(files); err != nil {
		t.Fatal(err)
	}
	leg := startLeg(t, "bibtex/shards=2+shared", schema, files, 2, false, true)

	const nQueries = 40
	gen := qgen.NewQueryGen(qgenDomain("bibtex"), diffQuerySeed+1)
	queries := make([]string, 0, nQueries)
	want := make(map[string][]byte, nQueries)
	for len(queries) < nQueries {
		src := gen.Query().String()
		if _, ok := want[src]; ok {
			continue
		}
		res, err := direct.ExecuteContext(t.Context(), src, qof.WithPartialResults())
		if err != nil {
			t.Fatalf("%q: direct facade: %v", src, err)
		}
		queries = append(queries, src)
		want[src] = expected(t, res, leg.srv.Epoch(), leg.shards, len(files))
	}

	const clients = 8
	const rounds = 3
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger so clients overlap on the same query and on
				// different queries of the mix.
				for off := range queries {
					src := queries[(c+r+off)%len(queries)]
					got := canonical(t, leg.post(t, src))
					if !bytes.Equal(got, want[src]) {
						errc <- fmt.Errorf("client %d: %q diverged under shared execution:\n  got  %s\n  want %s",
							c, src, got, want[src])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
