package serve_test

// Unit tests for the serving layer: publish/epoch lifecycle, admission and
// shedding over HTTP, the request decoder, and the metrics surface. The
// differential harness in diff_test.go proves answer correctness; these
// tests pin down the daemon's operational contract.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"qof"
	"qof/internal/bibtex"
	"qof/internal/faultinject"
	"qof/internal/serve"
)

const changQuery = `SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`

func sampleFiles(n int) map[string]string {
	files := make(map[string]string, n)
	for i := 0; i < n; i++ {
		files[fmt.Sprintf("doc-%02d.bib", i)] = bibtex.SampleEntry
	}
	return files
}

func newServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	if cfg.Schema == nil {
		cfg.Schema = qof.BibTeX()
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestServerRequiresSchema(t *testing.T) {
	if _, err := serve.New(serve.Config{}); err == nil {
		t.Fatal("New accepted a config without a schema")
	}
}

// TestNoCorpus: before the first publish, Execute refuses with ErrNoCorpus
// and /healthz reports 503.
func TestNoCorpus(t *testing.T) {
	srv := newServer(t, serve.Config{})
	if _, err := srv.Execute(t.Context(), serve.Request{Query: changQuery}); !errors.Is(err, serve.ErrNoCorpus) {
		t.Fatalf("Execute = %v, want ErrNoCorpus", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d before publish, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/query?q=" + url.QueryEscape(changQuery))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/query = %d before publish, want 503", resp.StatusCode)
	}
}

// TestPublishEpochs: every successful publish bumps the epoch by one, and
// queries answer from the generation current when they were admitted.
func TestPublishEpochs(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2})
	for want := uint64(1); want <= 3; want++ {
		epoch, err := srv.Publish(sampleFiles(int(want) + 1))
		if err != nil {
			t.Fatal(err)
		}
		if epoch != want {
			t.Fatalf("publish %d: epoch = %d", want, epoch)
		}
		resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Epoch != want || resp.Files != int(want)+1 || len(resp.Hits) != int(want)+1 {
			t.Fatalf("epoch %d: got epoch=%d files=%d hits=%d", want, resp.Epoch, resp.Files, len(resp.Hits))
		}
		if !resp.Complete() {
			t.Fatalf("epoch %d: degraded answer on a healthy corpus: %v", want, resp.DegradedError())
		}
	}
}

// TestPublishReportsEveryShard is the AddAll-style error-reporting fix at
// the shard level: when several shards fail to build, the publish error
// attributes every one of them, not just the first, and the previous
// generation keeps serving untouched.
func TestPublishReportsEveryShard(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 4})
	if _, err := srv.Publish(sampleFiles(8)); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure(faultinject.ServePublish + "=error"); err != nil {
		t.Fatal(err)
	}
	_, err := srv.Publish(sampleFiles(8))
	faultinject.Reset()
	if err == nil {
		t.Fatal("publish succeeded with every shard build faulted")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("publish error %v does not wrap ErrInjected", err)
	}
	for i := 0; i < 4; i++ {
		if want := fmt.Sprintf("shard %d", i); !strings.Contains(err.Error(), want) {
			t.Errorf("publish error lacks %q attribution: %v", want, err)
		}
	}
	// The failed publish must be invisible: old epoch, old answers.
	if got := srv.Epoch(); got != 1 {
		t.Fatalf("failed publish moved the epoch to %d", got)
	}
	resp, err := srv.Execute(t.Context(), serve.Request{Query: changQuery})
	if err != nil || !resp.Complete() || len(resp.Hits) != 8 {
		t.Fatalf("previous generation no longer serves: hits=%d err=%v", len(resp.Hits), err)
	}
}

// TestPublishPartialShardFailure: when only one shard build fails, exactly
// that shard is attributed and the swap still does not happen.
func TestPublishPartialShardFailure(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 3})
	if err := faultinject.Configure(faultinject.ServePublish + "=error@2"); err != nil {
		t.Fatal(err)
	}
	_, err := srv.Publish(sampleFiles(6))
	faultinject.Reset()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("publish error = %v, want ErrInjected", err)
	}
	if n := strings.Count(err.Error(), "shard "); n != 1 {
		t.Errorf("error attributes %d shards, want exactly 1: %v", n, err)
	}
	if got := srv.Epoch(); got != 0 {
		t.Fatalf("failed first publish set epoch %d", got)
	}
}

// TestExecuteBadQuery: a parse error is rejected before admission, typed
// ErrBadQuery, mapped to 400 over HTTP.
func TestExecuteBadQuery(t *testing.T) {
	srv := newServer(t, serve.Config{})
	if _, err := srv.Publish(sampleFiles(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Execute(t.Context(), serve.Request{Query: "SELECT FROM WHERE"}); !errors.Is(err, serve.ErrBadQuery) {
		t.Fatalf("Execute = %v, want ErrBadQuery", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"query":"SELECT FROM"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query = %d, want 400", resp.StatusCode)
	}
	if got := srv.Metrics().BadQueryTotal; got != 2 {
		t.Fatalf("bad_query_total = %d, want 2", got)
	}
}

// TestHTTPDecoding exercises the request decoder's surface: GET parameter
// mapping, the tenant header fallback, empty queries, bad numbers, and
// unsupported methods.
func TestHTTPDecoding(t *testing.T) {
	srv := newServer(t, serve.Config{})
	if _, err := srv.Publish(sampleFiles(2)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// GET with parameters answers like POST.
	resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(changQuery) + "&tenant=alice&timeout_ms=5000")
	if err != nil {
		t.Fatal(err)
	}
	var env serve.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(env.Hits) != 2 {
		t.Fatalf("GET query: status=%d hits=%d", resp.StatusCode, len(env.Hits))
	}

	// The tenant header is the fallback when the body names none.
	body, err := json.Marshal(serve.QueryRequest{Query: changQuery})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(string(body)))
	req.Header.Set("X-Qofd-Tenant", "header-tenant")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("header-tenant query = %d", resp.StatusCode)
	}
	if _, ok := srv.Metrics().Tenants["header-tenant"]; !ok {
		t.Error("X-Qofd-Tenant header did not attribute the query")
	}

	for _, c := range []struct {
		method, url, body string
		want              int
	}{
		{http.MethodGet, "/query", "", http.StatusBadRequest},                                                      // empty query
		{http.MethodGet, "/query?q=" + url.QueryEscape(changQuery) + "&timeout_ms=abc", "", http.StatusBadRequest}, // bad number
		{http.MethodPost, "/query", "{not json", http.StatusBadRequest},                                            // bad body
		{http.MethodDelete, "/query", "", http.StatusMethodNotAllowed},                                             // bad method
		{http.MethodGet, "/reload", "", http.StatusNotFound},                                                       // no Reload configured
	} {
		var body io.Reader
		if c.body != "" {
			body = strings.NewReader(c.body)
		}
		req, _ := http.NewRequest(c.method, ts.URL+c.url, body)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s = %d, want %d", c.method, c.url, resp.StatusCode, c.want)
		}
	}
}

// TestHTTPShed saturates a MaxInflight=1 server with a held query and
// asserts the second request is shed with 429 and the Retry-After hint.
func TestHTTPShed(t *testing.T) {
	srv := newServer(t, serve.Config{MaxInflight: 1, RetryAfter: 2 * time.Second})
	if _, err := srv.Publish(sampleFiles(2)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := faultinject.Configure(faultinject.ServeShard + "=delay:400ms"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(changQuery))
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait until the held query is admitted, then submit the one to shed.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().AdmittedInflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("held query never admitted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(changQuery))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated query = %d, want 429", resp.StatusCode)
	}
	// The hint is jittered over [base, 1.5×base] = [2s, 3s].
	if got := resp.Header.Get("Retry-After"); got != "2" && got != "3" {
		t.Errorf("Retry-After = %q, want \"2\" or \"3\"", got)
	}
	wg.Wait()
	faultinject.Reset()

	m := srv.Metrics()
	if m.ShedTotal == 0 {
		t.Error("shed_total = 0 after a shed response")
	}
	// The server is immediately healthy again.
	resp, err = http.Get(ts.URL + "/query?q=" + url.QueryEscape(changQuery))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-shed query = %d, want 200", resp.StatusCode)
	}
}

// TestTenantHardCapShedsOnlyThatTenant: a capped tenant sheds at its bound
// while another tenant still gets in.
func TestTenantHardCapShedsOnlyThatTenant(t *testing.T) {
	srv := newServer(t, serve.Config{
		MaxInflight: 8,
		Tenants:     map[string]serve.Tenant{"capped": {MaxInflight: 1}},
	})
	if _, err := srv.Publish(sampleFiles(1)); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure(faultinject.ServeShard + "=delay:300ms"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Execute(t.Context(), serve.Request{Query: changQuery, Tenant: "capped"})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().AdmittedInflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("held query never admitted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := srv.Execute(t.Context(), serve.Request{Query: changQuery, Tenant: "capped"}); !errors.Is(err, serve.ErrShed) {
		t.Fatalf("capped tenant: err = %v, want ErrShed", err)
	}
	if _, err := srv.Execute(t.Context(), serve.Request{Query: changQuery, Tenant: "other"}); err != nil {
		t.Fatalf("other tenant shed with capacity free: %v", err)
	}
	wg.Wait()
	m := srv.Metrics()
	if m.Tenants["capped"].Shed != 1 {
		t.Errorf("capped tenant shed count = %d, want 1", m.Tenants["capped"].Shed)
	}
	if m.Tenants["other"].Shed != 0 {
		t.Errorf("other tenant shed count = %d, want 0", m.Tenants["other"].Shed)
	}
}

// TestReloadEndpoint: POST /reload pulls the new corpus through
// Config.Reload and publishes it as the next epoch; GET is rejected.
func TestReloadEndpoint(t *testing.T) {
	generation := 0
	srv := newServer(t, serve.Config{
		Shards: 2,
		Reload: func(ctx context.Context) (map[string]string, error) {
			generation++
			return sampleFiles(generation + 1), nil
		},
	})
	if _, err := srv.Publish(sampleFiles(1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reload = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /reload = %d", resp.StatusCode)
	}
	if got := srv.Epoch(); got != 2 {
		t.Fatalf("epoch after reload = %d, want 2", got)
	}
	if got := len(srv.Files()); got != 2 {
		t.Fatalf("files after reload = %d, want 2", got)
	}
}

// TestMetricsEndpoint spot-checks the counter plumbing end to end.
func TestMetricsEndpoint(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2})
	if _, err := srv.Publish(sampleFiles(3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := srv.Execute(t.Context(), serve.Request{Query: changQuery, Tenant: "m"}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m serve.MetricsBody
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.QueriesTotal != 3 || m.OkTotal != 3 || m.ShedTotal != 0 {
		t.Fatalf("metrics = queries:%d ok:%d shed:%d, want 3/3/0", m.QueriesTotal, m.OkTotal, m.ShedTotal)
	}
	if m.Epoch != 1 || m.Shards != 2 || m.Files != 3 {
		t.Fatalf("metrics corpus = epoch:%d shards:%d files:%d", m.Epoch, m.Shards, m.Files)
	}
	if m.Tenants["m"].Queries != 3 {
		t.Fatalf("tenant queries = %d, want 3", m.Tenants["m"].Queries)
	}
	if m.LatencyMs["p50"] <= 0 {
		t.Error("p50 latency missing after 3 queries")
	}
}

// TestShardOf pins the placement function: deterministic, in range, and
// the single-shard case is always shard 0.
func TestShardOf(t *testing.T) {
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("doc-%02d.bib", i)
		if got := serve.ShardOf(name, 1); got != 0 {
			t.Fatalf("ShardOf(%q, 1) = %d", name, got)
		}
		got := serve.ShardOf(name, 4)
		if got < 0 || got > 3 {
			t.Fatalf("ShardOf(%q, 4) = %d out of range", name, got)
		}
		if again := serve.ShardOf(name, 4); again != got {
			t.Fatalf("ShardOf(%q, 4) unstable: %d then %d", name, got, again)
		}
	}
}

// TestSharedCountersFlowToMetrics proves the shared-execution counter
// plumbing end to end: response Stats sum exactly into the server-wide and
// per-tenant /metrics totals, and shared_queries_total counts precisely the
// responses that shared any work. The stampede runs with the result cache
// forced to miss (so every execution does its own phase 2 instead of
// reading the first answer) and per-candidate phase-2 work stretched by an
// injected delay, so the executions overlap — and therefore actually share
// — on any scheduler, including a single CPU.
func TestSharedCountersFlowToMetrics(t *testing.T) {
	srv := newServer(t, serve.Config{Shards: 2, SharedExecution: true})
	if _, err := srv.Publish(sampleFiles(4)); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure(
		faultinject.ResultCacheGet + "=error, " + faultinject.Phase2 + "=delay:2ms"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	// A value join is never index-exact, so every candidate parses.
	const joinQuery = `SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`
	const clients = 12
	responses := make([]*serve.Response, clients)
	errs := make([]error, clients)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-gate
			responses[c], errs[c] = srv.Execute(context.Background(),
				serve.Request{Query: joinQuery, Tenant: "stampede"})
		}(c)
	}
	close(gate)
	wg.Wait()
	var scans, cse, dedups, sharedQueries uint64
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			t.Fatalf("client %d: %v", c, errs[c])
		}
		st := responses[c].Stats
		scans += uint64(st.SharedScans)
		cse += uint64(st.CSEHits)
		dedups += uint64(st.ParseDedups)
		if st.SharedScans+st.CSEHits+st.ParseDedups > 0 {
			sharedQueries++
		}
	}
	m := srv.Metrics()
	if m.SharedScansTotal != scans || m.CSEHitsTotal != cse || m.ParseDedupsTotal != dedups {
		t.Errorf("server totals (scans=%d cse=%d dedups=%d) != response sums (%d, %d, %d)",
			m.SharedScansTotal, m.CSEHitsTotal, m.ParseDedupsTotal, scans, cse, dedups)
	}
	if m.SharedQueries != sharedQueries {
		t.Errorf("shared_queries_total = %d, want %d (responses with any shared work)",
			m.SharedQueries, sharedQueries)
	}
	tm, ok := m.Tenants["stampede"]
	if !ok {
		t.Fatal("tenant counters missing from /metrics")
	}
	if tm.SharedScans != scans || tm.CSEHits != cse || tm.ParseDedups != dedups || tm.SharedQueries != sharedQueries {
		t.Errorf("tenant counters %+v != response sums (scans=%d cse=%d dedups=%d shared=%d)",
			tm, scans, cse, dedups, sharedQueries)
	}
	if scans+cse+dedups == 0 {
		t.Error("stampede with forced overlap shared no work at all")
	}
}
