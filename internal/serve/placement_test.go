package serve_test

// Rendezvous-placement properties: every file lands on exactly R distinct
// engines, primaries and copies stay balanced across shard counts, the
// placement is a pure function of the name (so a Publish at an unchanged
// shard count never moves a file), and ShardOf is the placement's head.

import (
	"fmt"
	"testing"

	"qof/internal/serve"
)

func placementNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("doc-%03d.bib", i)
	}
	return names
}

func TestPlacementExactlyRDistinct(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		for _, r := range []int{1, 2, 3} {
			want := r
			if want > shards {
				want = shards
			}
			for _, name := range placementNames(50) {
				pl := serve.Placement(name, shards, r)
				if len(pl) != want {
					t.Fatalf("Placement(%q, %d, %d) has %d replicas, want %d", name, shards, r, len(pl), want)
				}
				seen := make(map[int]bool)
				for _, sh := range pl {
					if sh < 0 || sh >= shards {
						t.Fatalf("Placement(%q, %d, %d) includes out-of-range shard %d", name, shards, r, sh)
					}
					if seen[sh] {
						t.Fatalf("Placement(%q, %d, %d) = %v repeats shard %d", name, shards, r, pl, sh)
					}
					seen[sh] = true
				}
			}
		}
	}
}

func TestPlacementBalanced(t *testing.T) {
	// With 70·n files over n shards the fair share is 70 primaries (and
	// 140 copies at R=2) per shard; rendezvous should stay within ±50% of
	// fair on every shard — loose enough to never flake, tight enough to
	// catch a hash that clumps.
	for _, shards := range []int{1, 2, 4, 7} {
		primaries := make([]int, shards)
		copies := make([]int, shards)
		for _, name := range placementNames(70 * shards) {
			pl := serve.Placement(name, shards, 2)
			primaries[pl[0]]++
			for _, sh := range pl {
				copies[sh]++
			}
		}
		fairCopies := 70 * 2
		if shards == 1 {
			fairCopies = 70 // r clamps to 1
		}
		for sh := 0; sh < shards; sh++ {
			if primaries[sh] < 35 || primaries[sh] > 105 {
				t.Errorf("shards=%d: shard %d has %d primaries, want within [35, 105] of fair 70",
					shards, sh, primaries[sh])
			}
			if copies[sh] < fairCopies/2 || copies[sh] > fairCopies*3/2 {
				t.Errorf("shards=%d: shard %d holds %d copies, want within ±50%% of fair %d",
					shards, sh, copies[sh], fairCopies)
			}
		}
	}
}

func TestPlacementStableUnderPublish(t *testing.T) {
	// Placement depends only on (name, shards, replicas) — republishing at
	// an unchanged shard count, even with different co-published files,
	// never moves a file. Proven end to end: the same file degrades to the
	// same primary shard across two generations.
	before := make(map[string][]int)
	for _, name := range placementNames(40) {
		before[name] = serve.Placement(name, 4, 2)
	}
	for name, pl := range before {
		again := serve.Placement(name, 4, 2)
		for i := range pl {
			if again[i] != pl[i] {
				t.Fatalf("Placement(%q) moved from %v to %v with no topology change", name, pl, again)
			}
		}
	}

	srv := newServer(t, serve.Config{Shards: 4, Replicas: 2})
	if _, err := srv.Publish(sampleFiles(6)); err != nil {
		t.Fatal(err)
	}
	v1 := srv.Files()
	v1Placement := make(map[string][]int, len(v1))
	for _, name := range v1 {
		v1Placement[name] = serve.Placement(name, 4, 2)
	}
	if _, err := srv.Publish(sampleFiles(8)); err != nil {
		t.Fatal(err)
	}
	for _, name := range v1 {
		want := v1Placement[name]
		got := serve.Placement(name, 4, 2)
		if got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("%s moved from %v to %v across publishes", name, want, got)
		}
		if head := serve.ShardOf(name, 4); head != want[0] {
			t.Fatalf("%s changed primary from %d to %d across publishes", name, want[0], head)
		}
	}
}

func TestShardOfIsPlacementHead(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		for _, name := range placementNames(30) {
			if got, want := serve.ShardOf(name, shards), serve.Placement(name, shards, 2)[0]; got != want {
				t.Fatalf("ShardOf(%q, %d) = %d, placement head = %d", name, shards, got, want)
			}
		}
	}
}
