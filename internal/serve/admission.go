package serve

import "sync"

// admission implements fair-share admission control with load shedding.
//
// The server admits at most max queries at once. While capacity remains,
// any tenant may use it (the policy is work-conserving: a lone tenant gets
// the whole server). As tenants contend, each is capped at its fair share
// — max divided by the number of currently active tenants (tenants with at
// least one query in flight) — or at its configured hard cap, whichever is
// set. A query over either bound is shed immediately rather than queued:
// under saturation, queueing only converts overload into latency, and the
// client's Retry-After hint is cheaper than a server-side backlog.
type admission struct {
	mu        sync.Mutex
	max       int
	total     int            // guarded by mu
	perTenant map[string]int // guarded by mu; tenants with inflight > 0
}

func newAdmission(max int) *admission {
	return &admission{max: max, perTenant: make(map[string]int)}
}

// acquire admits one query for the tenant, returning its release func, or
// reports shed=false without admitting. tenantCap > 0 is a hard per-tenant
// bound; 0 means the dynamic fair share.
func (a *admission) acquire(tenant string, tenantCap int) (release func(), ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.total >= a.max {
		return nil, false
	}
	active := len(a.perTenant)
	if a.perTenant[tenant] == 0 {
		active++ // this tenant is about to become active
	}
	share := tenantCap
	if share <= 0 {
		share = a.max / active
		if share < 1 {
			share = 1
		}
	}
	if a.perTenant[tenant] >= share {
		return nil, false
	}
	a.total++
	a.perTenant[tenant]++
	released := false
	return func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		if released {
			return
		}
		released = true
		a.total--
		if a.perTenant[tenant]--; a.perTenant[tenant] == 0 {
			delete(a.perTenant, tenant)
		}
	}, true
}

// inflight reports the server-wide queries currently admitted.
func (a *admission) inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}
