package serve_test

// The chaos-soak harness: a seeded, randomized storm of injected faults,
// hot reloads, client cancels and shed bursts against a replicated daemon,
// with every survivor answer checked against a precomputed direct-facade
// oracle. The contract under chaos is honesty, not availability: a query
// may be shed, canceled, or degraded, but a response that claims to be
// complete must be byte-identical to the oracle, and a degraded response
// must still agree with the oracle on every file it does answer and name
// only real files in its degradation list. Afterwards the daemon must be
// whole again — breakers re-closed by live probes, no leaked goroutines,
// no open iterators, bounded heap.
//
// QOF_CHAOS selects the storm budget: unset runs a ~2.5s deterministic
// smoke (the default `go test` path), "smoke" a ~32s soak (the CI chaos
// job), "full" a minutes-scale soak for manual runs. QOF_CHAOS_SEED
// reseeds the storm; the default is fixed so CI runs are reproducible.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qof"
	"qof/internal/algebra"
	"qof/internal/faultinject"
	"qof/internal/qgen"
	"qof/internal/serve"
)

const chaosShards = 4

func chaosBudget(t *testing.T) time.Duration {
	switch os.Getenv("QOF_CHAOS") {
	case "", "0":
		return 2500 * time.Millisecond
	case "smoke":
		return 32 * time.Second
	case "full":
		return 150 * time.Second
	default:
		t.Fatalf("QOF_CHAOS=%q, want unset, smoke or full", os.Getenv("QOF_CHAOS"))
		return 0
	}
}

func chaosSeed() int64 {
	if s := os.Getenv("QOF_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1994
}

// chaosOracle is the precomputed truth for one corpus version: the facade's
// results for every workload query, plus the version's file set.
type chaosOracle struct {
	files   map[string]string
	results map[string]*qof.CorpusResults
}

func buildOracle(t *testing.T, schema *qof.Schema, files map[string]string, queries []string) *chaosOracle {
	t.Helper()
	direct := schema.NewCorpus(qof.WithParallelism(2))
	if err := direct.AddAll(files); err != nil {
		t.Fatal(err)
	}
	o := &chaosOracle{files: files, results: make(map[string]*qof.CorpusResults, len(queries))}
	for _, src := range queries {
		res, err := direct.ExecuteContext(context.Background(), src, qof.WithPartialResults())
		if err != nil {
			t.Fatalf("oracle %q: %v", src, err)
		}
		o.results[src] = res
	}
	return o
}

// checkChaosResponse validates one survivor answer against the oracle for
// the corpus version its epoch proves it was served from. It returns a
// non-nil error only for a genuinely wrong answer.
func checkChaosResponse(src string, resp *serve.Response, oracle *chaosOracle) error {
	res, ok := oracle.results[src]
	if !ok {
		return fmt.Errorf("no oracle for query %q", src)
	}
	if resp.Files != len(oracle.files) {
		return fmt.Errorf("response claims %d files, version has %d", resp.Files, len(oracle.files))
	}
	if resp.Complete() {
		// A complete answer must be byte-identical to the facade envelope.
		env := serve.NewEnvelope(resp)
		env.ElapsedUs = 0
		got, err := json.Marshal(env)
		if err != nil {
			return err
		}
		wantHits, wantDeg := serve.HitsFromCorpus(res, chaosShards)
		wantEnv := serve.NewEnvelope(&serve.Response{
			Epoch: resp.Epoch, Shards: chaosShards, Files: len(oracle.files),
			Hits: wantHits, Degraded: wantDeg, Stats: res.Stats,
		})
		wantEnv.ElapsedUs = 0
		want, err := json.Marshal(wantEnv)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("complete answer diverges from oracle:\n  got  %s\n  want %s", got, want)
		}
		return nil
	}
	// Degraded answer: every hit it does return must equal the oracle's hit
	// for that file exactly; every degradation must name a real file; and
	// every file the oracle has hits for must be accounted for — answered
	// or degraded, never silently dropped.
	oracleHits := make(map[string]qof.CorpusHit, len(res.Hits))
	for _, h := range res.Hits {
		oracleHits[h.File] = h
	}
	degraded := make(map[string]bool, len(resp.Degraded))
	for _, d := range resp.Degraded {
		if _, ok := oracle.files[d.File]; !ok {
			return fmt.Errorf("degraded list names %q, not a file of this version", d.File)
		}
		degraded[d.File] = true
	}
	answered := make(map[string]bool, len(resp.Hits))
	for _, h := range resp.Hits {
		want, ok := oracleHits[h.File]
		if !ok {
			return fmt.Errorf("hit for %q, but the oracle has none", h.File)
		}
		if !reflect.DeepEqual(h, want) {
			return fmt.Errorf("hit for %q diverges from oracle:\n  got  %+v\n  want %+v", h.File, h, want)
		}
		answered[h.File] = true
	}
	for f := range oracleHits {
		if !answered[f] && !degraded[f] {
			return fmt.Errorf("file %q has oracle hits but was neither answered nor degraded", f)
		}
	}
	return nil
}

// TestChaosSoak is the tentpole gate: survive the storm without ever lying.
func TestChaosSoak(t *testing.T) {
	budget := chaosBudget(t)
	seed := chaosSeed()
	base := runtime.NumGoroutine()
	baseStreams := algebra.OpenStreams()

	schema := schemaFor("bibtex")
	v2files := domainFiles("bibtex")
	names := make([]string, 0, len(v2files))
	for n := range v2files {
		names = append(names, n)
	}
	// v1 drops one file (deterministically: the lexicographically largest)
	// so reloads alternate between two observably different corpora.
	drop := ""
	for _, n := range names {
		if n > drop {
			drop = n
		}
	}
	v1files := make(map[string]string, len(v2files)-1)
	for n, c := range v2files {
		if n != drop {
			v1files[n] = c
		}
	}

	gen := qgen.NewQueryGen(qgenDomain("bibtex"), seed)
	const nQueries = 24
	seen := make(map[string]bool)
	queries := make([]string, 0, nQueries)
	for len(queries) < nQueries {
		src := gen.Query().String()
		if !seen[src] {
			seen[src] = true
			queries = append(queries, src)
		}
	}
	// Odd epochs serve v1, even epochs v2 (initial publish is epoch 1).
	oracles := [2]*chaosOracle{
		buildOracle(t, schema, v2files, queries), // parity 0
		buildOracle(t, schema, v1files, queries), // parity 1
	}

	srv := newServer(t, serve.Config{
		Schema:           schema,
		Shards:           chaosShards,
		Replicas:         2,
		Parallelism:      2,
		MaxInflight:      24,
		HedgeAfter:       time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
	})
	if _, err := srv.Publish(v1files); err != nil {
		t.Fatal(err)
	}

	var (
		done       atomic.Bool
		mismatches atomic.Uint64
		checked    atomic.Uint64
		shed       atomic.Uint64
		canceled   atomic.Uint64
		samples    = make(chan error, 8)
	)
	record := func(err error) {
		mismatches.Add(1)
		select {
		case samples <- err:
		default:
		}
	}
	classify := func(src string, resp *serve.Response, err error) {
		switch {
		case err == nil:
			checked.Add(1)
			if verr := checkChaosResponse(src, resp, oracles[resp.Epoch%2]); verr != nil {
				record(fmt.Errorf("%q: %w", src, verr))
			}
		case errors.Is(err, serve.ErrShed):
			shed.Add(1)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			canceled.Add(1)
		default:
			record(fmt.Errorf("%q: unexpected error class: %w", src, err))
		}
	}

	var wg sync.WaitGroup
	// Query workers: replay the workload, self-canceling a slice of calls.
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for !done.Load() {
				src := queries[rng.Intn(len(queries))]
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.Float64() < 0.15 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(5))*time.Millisecond)
				}
				resp, err := srv.Execute(ctx, serve.Request{Query: src, Tenant: fmt.Sprintf("t%d", w%3)})
				cancel()
				classify(src, resp, err)
			}
		}(w)
	}
	// Fault storm: cycle seeded probabilistic configurations, with fault-free
	// intervals mixed in. Panics only at the serve points, which recover.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed + 100))
		for !done.Load() {
			s := rng.Int63n(1 << 30)
			cfgs := []string{
				"", // fault-free interval
				fmt.Sprintf("%s=error%%0.3/%d", faultinject.ServeShard, s),
				fmt.Sprintf("%s=panic%%0.2/%d", faultinject.ServeShard, s),
				fmt.Sprintf("%s=delay:4ms%%0.6/%d", faultinject.ServeShard, s),
				fmt.Sprintf("%s=error%%0.35/%d,%s=error%%0.35/%d,%s=error%%0.35/%d",
					faultinject.ServeShard, s, faultinject.ServeReplica, s+1, faultinject.ServeHedge, s+2),
				fmt.Sprintf("%s=error%%0.15/%d", faultinject.CorpusFile, s),
				fmt.Sprintf("%s=delay:1ms%%0.4/%d", faultinject.CorpusFile, s),
				fmt.Sprintf("%s=error%%0.5/%d,%s=delay:2ms%%0.3/%d",
					faultinject.ServePublish, s, faultinject.ServeShard, s+1),
			}
			cfg := cfgs[rng.Intn(len(cfgs))]
			if cfg == "" {
				faultinject.Reset()
			} else if err := faultinject.Configure(cfg); err != nil {
				record(fmt.Errorf("bad chaos config %q: %w", cfg, err))
				return
			}
			time.Sleep(time.Duration(25+rng.Intn(40)) * time.Millisecond)
		}
	}()
	// Hot reloads: keep the epoch parity invariant — odd serves v1, even v2.
	// Publishes may fail under injected publish faults; a failed publish
	// does not advance the epoch, so the invariant survives.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			next := v2files
			if srv.Epoch()%2 == 0 {
				next = v1files
			}
			srv.Publish(next)
			time.Sleep(30 * time.Millisecond)
		}
	}()
	// Shed bursts: periodic stampedes past MaxInflight. Burst answers are
	// validated like any other — shedding must reject, never corrupt.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed + 200))
		for !done.Load() {
			var burst sync.WaitGroup
			src := queries[rng.Intn(len(queries))]
			for i := 0; i < 40; i++ {
				burst.Add(1)
				go func() {
					defer burst.Done()
					resp, err := srv.Execute(context.Background(), serve.Request{Query: src})
					classify(src, resp, err)
				}()
			}
			burst.Wait()
			time.Sleep(120 * time.Millisecond)
		}
	}()

	time.Sleep(budget)
	done.Store(true)
	wg.Wait()
	faultinject.Reset()

	// Recovery: publish the full file set so every shard that ever took
	// traffic is in some group again, then slow primaries just enough that
	// the 1ms hedge timer fires and probes the secondaries — every breaker
	// the storm opened sees live traffic and closes. (Open primaries are
	// probed by the queries themselves once the cooldown admits a
	// half-open attempt.)
	if srv.Epoch()%2 == 1 {
		if _, err := srv.Publish(v2files); err != nil {
			t.Fatal(err)
		}
	}
	if err := faultinject.Configure(faultinject.ServeShard + "=delay:3ms"); err != nil {
		t.Fatal(err)
	}
	recoverDeadline := time.Now().Add(20 * time.Second)
	for {
		open := 0
		for sh := 0; sh < chaosShards; sh++ {
			if srv.BreakerState(sh) != "closed" {
				open++
			}
		}
		if open == 0 {
			break
		}
		if time.Now().After(recoverDeadline) {
			states := make([]string, chaosShards)
			for sh := range states {
				states[sh] = srv.BreakerState(sh)
			}
			t.Fatalf("breakers never re-closed after the storm: %v", states)
		}
		src := queries[0]
		resp, err := srv.Execute(context.Background(), serve.Request{Query: src})
		classify(src, resp, err)
		if err != nil {
			time.Sleep(10 * time.Millisecond)
		}
	}
	faultinject.Reset()

	// Verdicts. Zero wrong answers, and enough survivors that the check
	// meant something.
	close(samples)
	for err := range samples {
		t.Error(err)
	}
	if n := mismatches.Load(); n > 0 {
		t.Fatalf("%d wrong answers during the storm (first samples above)", n)
	}
	if checked.Load() == 0 {
		t.Fatal("storm validated no answers; every query shed or canceled")
	}
	t.Logf("chaos: %d answers validated, %d shed, %d canceled, seed %d, budget %s",
		checked.Load(), shed.Load(), canceled.Load(), seed, budget)

	// A clean final answer from each parity.
	for rounds := 0; rounds < 2; rounds++ {
		resp, err := srv.Execute(context.Background(), serve.Request{Query: queries[0]})
		if err != nil || !resp.Complete() {
			t.Fatalf("post-storm query: err=%v degraded=%v", err, resp.DegradedError())
		}
		if verr := checkChaosResponse(queries[0], resp, oracles[resp.Epoch%2]); verr != nil {
			t.Fatalf("post-storm answer: %v", verr)
		}
		next := v1files
		if resp.Epoch%2 == 1 {
			next = v2files
		}
		if _, err := srv.Publish(next); err != nil {
			t.Fatal(err)
		}
	}

	// No leaked goroutines, no open iterators, bounded heap.
	waitGoroutines(t, base)
	streamDeadline := time.Now().Add(5 * time.Second)
	for algebra.OpenStreams() != baseStreams {
		if time.Now().After(streamDeadline) {
			t.Fatalf("open streams = %d after storm, started with %d", algebra.OpenStreams(), baseStreams)
		}
		time.Sleep(10 * time.Millisecond)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 256<<20 {
		t.Errorf("heap = %d MiB after the storm, want < 256 MiB", ms.HeapAlloc>>20)
	}
}
