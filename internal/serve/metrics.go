package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the server's observable state: monotonically increasing
// counters (atomics, updated on the hot path without locks), a per-tenant
// counter table, and a log-bucketed latency histogram good enough for
// p50/p99/p999 readouts on /metrics.
type metrics struct {
	queries  atomic.Uint64 // admitted queries
	ok       atomic.Uint64 // completed without interruption
	shed     atomic.Uint64 // rejected by admission control
	badQuery atomic.Uint64 // rejected by the parser
	canceled atomic.Uint64 // interrupted by client cancellation
	degraded atomic.Uint64 // completed with at least one degraded file
	inflight atomic.Int64  // admitted and still executing

	// Shared-execution counters (Config.SharedExecution): how much work
	// concurrent queries eliminated by sharing it. All zero when sharing is
	// off or every query ran alone.
	sharedQueries atomic.Uint64 // queries that shared any work
	sharedScans   atomic.Uint64 // word lookups answered by batched scans
	cseHits       atomic.Uint64 // evaluations received via cross-query CSE
	parseDedups   atomic.Uint64 // phase-2 parses shared instead of repeated

	// Replication counters: hedging, failover and breaker activity.
	hedgesSent atomic.Uint64 // hedged attempts dispatched
	hedgesWon  atomic.Uint64 // groups whose winning attempt was a hedge
	failovers  atomic.Uint64 // attempts routed to a non-primary replica
	failedOpen atomic.Uint64 // groups served with every breaker open

	breakerOpens     atomic.Uint64 // closed/half-open → open transitions
	breakerHalfOpens atomic.Uint64 // open → half-open probe admissions
	breakerCloses    atomic.Uint64 // open/half-open → closed transitions

	hist latencyHist

	// legHist observes every replica attempt (not whole queries); its p99
	// drives the adaptive hedge delay.
	legHist latencyHist

	mu      sync.Mutex
	tenants map[string]*tenantCounters // guarded by mu; values have atomic fields
}

// tenantCounters are one tenant's counters. The struct pointer is handed
// out under metrics.mu once and then updated through atomics, so the hot
// path takes the lock at most once per (tenant, query).
type tenantCounters struct {
	queries atomic.Uint64 // submissions (admitted or shed)
	shed    atomic.Uint64

	// Per-tenant shared-execution counters, mirroring the server-wide ones.
	sharedQueries atomic.Uint64
	sharedScans   atomic.Uint64
	cseHits       atomic.Uint64
	parseDedups   atomic.Uint64

	// Per-tenant replication counters.
	hedges    atomic.Uint64
	failovers atomic.Uint64
}

func newMetrics() *metrics {
	return &metrics{tenants: make(map[string]*tenantCounters)}
}

// tenant returns the tenant's counter struct, creating it on first use.
func (m *metrics) tenant(name string) *tenantCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	tc := m.tenants[name]
	if tc == nil {
		tc = &tenantCounters{}
		m.tenants[name] = tc
	}
	return tc
}

// tenantNames returns the known tenant names (for /metrics rendering).
func (m *metrics) tenantNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.tenants))
	for n := range m.tenants {
		names = append(names, n)
	}
	return names
}

// latencyHist is a lock-free histogram over power-of-two microsecond
// buckets: bucket i counts latencies in [2^i, 2^(i+1)) µs, the last bucket
// catches everything slower. Quantiles read as the upper bound of the
// bucket where the cumulative count crosses the target — at most 2×
// resolution error, plenty for saturation readouts.
type latencyHist struct {
	buckets [28]atomic.Uint64 // 2^27 µs ≈ 134 s in the top bucket
}

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	i := 0
	for us > 1 && i < len(h.buckets)-1 {
		us >>= 1
		i++
	}
	h.buckets[i].Add(1)
}

// count reports the number of observations.
func (h *latencyHist) count() uint64 {
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// quantile returns the approximate q-quantile (0 < q < 1) in milliseconds,
// or 0 when nothing was observed.
func (h *latencyHist) quantile(q float64) float64 {
	var total uint64
	var counts [len(h.buckets)]uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen > target {
			return float64(uint64(1)<<(i+1)) / 1000.0 // bucket upper bound, µs → ms
		}
	}
	return float64(uint64(1)<<len(h.buckets)) / 1000.0
}
