package serve

import "testing"

// TestAdmissionWorkConserving: a lone tenant may use the whole server —
// fairness only bites when tenants contend.
func TestAdmissionWorkConserving(t *testing.T) {
	a := newAdmission(4)
	var releases []func()
	for i := 0; i < 4; i++ {
		r, ok := a.acquire("solo", 0)
		if !ok {
			t.Fatalf("query %d shed with capacity free", i)
		}
		releases = append(releases, r)
	}
	if _, ok := a.acquire("solo", 0); ok {
		t.Fatal("admitted past MaxInflight")
	}
	if got := a.inflight(); got != 4 {
		t.Fatalf("inflight = %d, want 4", got)
	}
	for _, r := range releases {
		r()
	}
	if got := a.inflight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

// TestAdmissionFairShare: once a second tenant is active, each is capped at
// max / activeTenants, so a hog cannot starve a newcomer.
func TestAdmissionFairShare(t *testing.T) {
	a := newAdmission(8)
	// Tenant a grabs its half-share of 4 while b is active.
	rb, ok := a.acquire("b", 0)
	if !ok {
		t.Fatal("b shed on an empty server")
	}
	var ra []func()
	for i := 0; i < 4; i++ {
		r, ok := a.acquire("a", 0)
		if !ok {
			t.Fatalf("a shed at %d inflight, share should be 4", i)
		}
		ra = append(ra, r)
	}
	if _, ok := a.acquire("a", 0); ok {
		t.Fatal("a admitted past its fair share of 8/2")
	}
	// b still has room up to its own share.
	if _, ok := a.acquire("b", 0); !ok {
		t.Fatal("b shed inside its fair share")
	}
	rb()
	for _, r := range ra {
		r()
	}
}

// TestAdmissionHardCap: a configured per-tenant cap overrides the dynamic
// share in both directions.
func TestAdmissionHardCap(t *testing.T) {
	a := newAdmission(8)
	r1, ok := a.acquire("capped", 1)
	if !ok {
		t.Fatal("first query shed under cap 1")
	}
	if _, ok := a.acquire("capped", 1); ok {
		t.Fatal("admitted past hard cap 1")
	}
	r1()
	if _, ok := a.acquire("capped", 1); !ok {
		t.Fatal("shed after release freed the cap")
	}
}

// TestAdmissionReleaseIdempotent: calling a release func twice must not
// free capacity twice.
func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := newAdmission(2)
	r1, _ := a.acquire("t", 0)
	r2, _ := a.acquire("t", 0)
	r1()
	r1() // double release
	if got := a.inflight(); got != 1 {
		t.Fatalf("inflight = %d after double release, want 1", got)
	}
	r2()
	if got := a.inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
}

// TestTighten covers the cap/request lattice: zero means no opinion, and
// the stricter side always wins.
func TestTighten(t *testing.T) {
	cases := []struct{ cap, req, want int }{
		{0, 0, 0}, {5, 0, 5}, {0, 5, 5}, {5, 3, 3}, {3, 5, 3}, {4, 4, 4},
	}
	for _, c := range cases {
		if got := tighten(c.cap, c.req); got != c.want {
			t.Errorf("tighten(%d, %d) = %d, want %d", c.cap, c.req, got, c.want)
		}
	}
}

// TestLatencyHistQuantile sanity-checks the log-bucketed histogram: a known
// distribution reads back within the 2x bucket resolution.
func TestLatencyHistQuantile(t *testing.T) {
	var h latencyHist
	if got := h.quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	for i := 0; i < 90; i++ {
		h.observe(1000000) // 1 ms → 1000 µs
	}
	for i := 0; i < 10; i++ {
		h.observe(100000000) // 100 ms
	}
	p50, p999 := h.quantile(0.5), h.quantile(0.999)
	if p50 < 1 || p50 > 3 {
		t.Errorf("p50 = %v ms, want ~1-2ms bucket", p50)
	}
	if p999 < 100 || p999 > 300 {
		t.Errorf("p999 = %v ms, want ~100-200ms bucket", p999)
	}
	if p50 > p999 {
		t.Errorf("p50 %v > p999 %v", p50, p999)
	}
}
