package serve

// Replica placement by rendezvous (highest-random-weight) hashing: every
// (document, shard) pair gets an independent score and a document lives on
// the r highest-scoring shards. Unlike mod-N hashing, adding or removing a
// shard only moves the documents whose top-r set actually changed, and the
// full ranking gives each document a deterministic failover order — the
// dispatcher walks it when replicas fault or their breakers open.

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Placement returns the ordered replica list for a document: the r
// highest-scoring of n shards under rendezvous hashing, best first. The
// first entry is the document's primary. Ties break toward the lower shard
// index; r is clamped to [1, n].
func Placement(name string, n, r int) []int {
	if n < 1 {
		n = 1
	}
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	type scored struct {
		shard int
		score uint64
	}
	sc := make([]scored, n)
	var buf [4]byte
	for i := 0; i < n; i++ {
		h := fnv.New64a()
		h.Write([]byte(name))
		h.Write([]byte{0xff})
		binary.BigEndian.PutUint32(buf[:], uint32(i))
		h.Write(buf[:])
		sc[i] = scored{shard: i, score: mix64(h.Sum64())}
	}
	sort.Slice(sc, func(a, b int) bool {
		if sc[a].score != sc[b].score {
			return sc[a].score > sc[b].score
		}
		return sc[a].shard < sc[b].shard
	})
	out := make([]int, r)
	for i := range out {
		out[i] = sc[i].shard
	}
	return out
}

// mix64 finishes the per-shard score with a full-avalanche 64-bit mixer
// (the MurmurHash3 finalizer). The shard index is the last input to the
// FNV stream, and FNV-1a's single multiply only carries that difference
// into the low ~43 bits — without this step the ranking degenerates into
// comparing the index XOR the name hash's low bits, which overloads the
// highest shard at non-power-of-two shard counts.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ShardOf reports the primary shard of the named document among n shards —
// the head of its rendezvous placement. It is exported so tests and
// operators can predict placement.
func ShardOf(name string, n int) int {
	if n <= 1 {
		return 0
	}
	return Placement(name, n, 1)[0]
}
