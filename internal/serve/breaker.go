package serve

// Per-shard circuit breakers. Each engine replica has one breaker that
// trips after a run of consecutive wholesale failures (injected faults,
// panics, a replica that returns nothing) and routes traffic to the other
// replicas of each file's group. After a cooldown the breaker admits a
// single half-open probe; a successful probe closes it, a failed one
// reopens it. Per-file degradations do not count — a replica that answers,
// even partially, is healthy enough to route to.
//
// Breakers belong to the Server, not the published shard set: a hot reload
// swaps corpora but keeps the health history of the engines serving them.

import (
	"sync"
	"time"
)

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one replica's circuit breaker. All methods are safe for
// concurrent use.
type breaker struct {
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open time before a half-open probe is admitted

	mu       sync.Mutex
	state    breakerState // guarded by mu
	fails    int          // guarded by mu; consecutive wholesale failures
	openedAt time.Time    // guarded by mu; when the breaker last opened
	forced   bool         // guarded by mu; pinned open via ForceBreaker
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// admit reports whether the dispatcher may route an attempt to this
// replica. Closed admits everything. Open admits nothing until the
// cooldown elapses, then flips to half-open and admits exactly one probe;
// further attempts are rejected until that probe resolves.
func (b *breaker) admit(m *metrics) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.forced {
		return false
	}
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			m.breakerHalfOpens.Add(1)
			return true
		}
		return false
	default: // half-open: the probe is in flight
		return false
	}
}

// success records a completed attempt: the failure run ends and a non-forced
// breaker closes (resolving a half-open probe in its favor).
func (b *breaker) success(m *metrics) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.forced {
		return
	}
	if b.state != breakerClosed {
		b.state = breakerClosed
		m.breakerCloses.Add(1)
	}
}

// failure records a wholesale attempt failure: a half-open probe reopens the
// breaker immediately, a closed breaker opens once the run reaches the
// threshold.
func (b *breaker) failure(m *metrics) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.forced {
		return
	}
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = time.Now()
		m.breakerOpens.Add(1)
	case breakerClosed:
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			m.breakerOpens.Add(1)
		}
	}
}

// snapshot reads the breaker for /healthz.
func (b *breaker) snapshot() (state string, fails int, forced bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.fails, b.forced
}

// ForceBreaker pins the shard's breaker open (open=true) — no traffic is
// routed to the replica and successes cannot close it — or releases the pin
// and closes it (open=false). Out-of-range shards are ignored. The
// differential harness uses it to prove failover serves identical answers.
func (s *Server) ForceBreaker(shard int, open bool) {
	if shard < 0 || shard >= len(s.breakers) {
		return
	}
	b := s.breakers[shard]
	b.mu.Lock()
	defer b.mu.Unlock()
	b.forced = open
	if open {
		if b.state != breakerOpen {
			s.met.breakerOpens.Add(1)
		}
		b.state = breakerOpen
		b.openedAt = time.Now()
	} else {
		if b.state != breakerClosed {
			s.met.breakerCloses.Add(1)
		}
		b.state = breakerClosed
		b.fails = 0
	}
}

// BreakerState reports the shard's breaker state string ("closed", "open"
// or "half-open"), for tests and operators.
func (s *Server) BreakerState(shard int) string {
	if shard < 0 || shard >= len(s.breakers) {
		return ""
	}
	state, _, _ := s.breakers[shard].snapshot()
	return state
}
