package serve

// The HTTP/JSON surface: POST|GET /query, GET /healthz, GET /metrics and
// (when Config.Reload is set) POST /reload. The envelope is deterministic
// — hits and degradations in global document order, no map iteration —
// so the same corpus produces byte-identical result bytes regardless of
// shard count (the elapsed_us field is the one timing-dependent value).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"qof"
)

// QueryRequest is the /query request body. GET requests map q, tenant,
// timeout_ms, max_regions and max_eval_bytes query parameters onto it.
type QueryRequest struct {
	Query        string `json:"query"`
	Tenant       string `json:"tenant,omitempty"`
	TimeoutMs    int    `json:"timeout_ms,omitempty"`
	MaxRegions   int    `json:"max_regions,omitempty"`
	MaxEvalBytes int    `json:"max_eval_bytes,omitempty"`
}

// Envelope is the /query response body.
type Envelope struct {
	Epoch     uint64          `json:"epoch"`
	Shards    int             `json:"shards"`
	Files     int             `json:"files"`
	Complete  bool            `json:"complete"`
	Hits      []EnvelopeHit   `json:"hits"`
	Degraded  []EnvelopeError `json:"degraded,omitempty"`
	Stats     EnvelopeStats   `json:"stats"`
	ElapsedUs int64           `json:"elapsed_us"`
}

// EnvelopeHit is one file's results: spans for whole-object selects,
// values for projections.
type EnvelopeHit struct {
	File   string         `json:"file"`
	Spans  []EnvelopeSpan `json:"spans,omitempty"`
	Values []string       `json:"values,omitempty"`
}

// EnvelopeSpan is one matched region.
type EnvelopeSpan struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// EnvelopeError attributes one degraded file to its shard.
type EnvelopeError struct {
	File  string `json:"file"`
	Shard int    `json:"shard"`
	Error string `json:"error"`
}

// EnvelopeStats aggregates execution statistics over the succeeded files.
type EnvelopeStats struct {
	Results     int  `json:"results"`
	Candidates  int  `json:"candidates"`
	Parsed      int  `json:"parsed"`
	ParsedBytes int  `json:"parsed_bytes"`
	Exact       bool `json:"exact"`
	FullScan    bool `json:"full_scan"`
}

// NewEnvelope converts a Response into its wire form. It is exported so
// the differential harness can build the expected bytes from the direct
// facade's results through the exact same conversion.
func NewEnvelope(r *Response) *Envelope {
	env := &Envelope{
		Epoch:    r.Epoch,
		Shards:   r.Shards,
		Files:    r.Files,
		Complete: r.Complete(),
		Hits:     make([]EnvelopeHit, 0, len(r.Hits)),
		Stats: EnvelopeStats{
			Results:     r.Stats.Results,
			Candidates:  r.Stats.Candidates,
			Parsed:      r.Stats.Parsed,
			ParsedBytes: r.Stats.ParsedBytes,
			Exact:       r.Stats.Exact,
			FullScan:    r.Stats.FullScan,
		},
		ElapsedUs: r.Elapsed.Microseconds(),
	}
	for _, h := range r.Hits {
		eh := EnvelopeHit{File: h.File, Values: h.Values}
		for _, sp := range h.Spans {
			eh.Spans = append(eh.Spans, EnvelopeSpan{Start: sp.Start, End: sp.End})
		}
		env.Hits = append(env.Hits, eh)
	}
	for _, d := range r.Degraded {
		env.Degraded = append(env.Degraded, EnvelopeError{File: d.File, Shard: d.Shard, Error: d.Err.Error()})
	}
	return env
}

// HitsFromCorpus converts direct-facade corpus results into Response form,
// assigning each degraded file the shard it would live on under n shards.
// The differential harness uses it to predict a sharded daemon's envelope
// from an unsharded facade run.
func HitsFromCorpus(res *qof.CorpusResults, n int) ([]qof.CorpusHit, []ShardFileError) {
	var degraded []ShardFileError
	for _, fe := range res.Degraded {
		degraded = append(degraded, ShardFileError{File: fe.File, Shard: ShardOf(fe.File, n), Err: fe.Err})
	}
	return res.Hits, degraded
}

// errorBody is every non-200 response.
type errorBody struct {
	Error string `json:"error"`
}

// retryAfterSeconds renders the shed backoff hint with jitter — uniform over
// [base, 1.5×base], rounded up to whole seconds — so clients shed together
// don't retry together and re-stampede the admission gate (and, with shared
// execution, the batcher) in lockstep.
func (s *Server) retryAfterSeconds() int {
	base := s.cfg.retryAfter()
	d := base + time.Duration(rand.Int64N(int64(base)/2+1))
	return int((d + time.Second - 1) / time.Second)
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.cfg.Reload != nil {
		mux.HandleFunc("/reload", s.handleReload)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) // a client gone mid-write is not the server's error
}

// decodeQueryRequest accepts POST (JSON body) and GET (query parameters),
// returning the HTTP status to use when it fails.
func decodeQueryRequest(r *http.Request) (QueryRequest, int, error) {
	var req QueryRequest
	switch r.Method {
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			return req, http.StatusBadRequest, fmt.Errorf("reading body: %w", err)
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return req, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err)
		}
	case http.MethodGet:
		q := r.URL.Query()
		req.Query = q.Get("q")
		req.Tenant = q.Get("tenant")
		for _, f := range []struct {
			key string
			dst *int
		}{
			{"timeout_ms", &req.TimeoutMs},
			{"max_regions", &req.MaxRegions},
			{"max_eval_bytes", &req.MaxEvalBytes},
		} {
			if v := q.Get(f.key); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil {
					return req, http.StatusBadRequest, fmt.Errorf("bad %s %q", f.key, v)
				}
				*f.dst = n
			}
		}
	default:
		return req, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method)
	}
	if req.Tenant == "" {
		req.Tenant = r.Header.Get("X-Qofd-Tenant")
	}
	if req.Query == "" {
		return req, http.StatusBadRequest, errors.New("empty query")
	}
	return req, 0, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, status, err := decodeQueryRequest(r)
	if err != nil {
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	resp, err := s.Execute(r.Context(), Request{
		Query:        req.Query,
		Tenant:       req.Tenant,
		Timeout:      time.Duration(req.TimeoutMs) * time.Millisecond,
		MaxRegions:   req.MaxRegions,
		MaxEvalBytes: req.MaxEvalBytes,
	})
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, NewEnvelope(resp))
	case errors.Is(err, ErrShed):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrNoCorpus):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrBadQuery):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		// The query-level context ended (deadline, or the client went
		// away). The partial answer is dropped; the status says why.
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error()})
	}
}

// ReplicaHealth is one engine shard's health in /healthz: its breaker
// state, failure run, and how many files it carries.
type ReplicaHealth struct {
	Shard        int    `json:"shard"`
	Breaker      string `json:"breaker"` // closed | open | half-open
	Failures     int    `json:"consecutive_failures"`
	ForcedOpen   bool   `json:"forced_open,omitempty"`
	PrimaryFiles int    `json:"primary_files"`
	ReplicaFiles int    `json:"replica_files"` // copies held, primaries included
}

// healthBody is the /healthz response.
type healthBody struct {
	Status   string          `json:"status"`
	Epoch    uint64          `json:"epoch"`
	Shards   int             `json:"shards"`
	Files    int             `json:"files"`
	Replicas int             `json:"replicas,omitempty"`
	Shard    []ReplicaHealth `json:"shard_health,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	set := s.set.Load()
	if set == nil {
		writeJSON(w, http.StatusServiceUnavailable, healthBody{Status: "no-corpus"})
		return
	}
	copies := make([]int, len(set.shards))
	for _, g := range set.groups {
		for _, sh := range g.replicas {
			copies[sh] += len(g.files)
		}
	}
	body := healthBody{
		Status: "ok", Epoch: set.epoch, Shards: len(set.shards), Files: len(set.files),
		Replicas: s.cfg.replicas(),
	}
	for i := range set.shards {
		state, fails, forced := s.breakers[i].snapshot()
		body.Shard = append(body.Shard, ReplicaHealth{
			Shard: i, Breaker: state, Failures: fails, ForcedOpen: forced,
			PrimaryFiles: len(set.byShard[i]), ReplicaFiles: copies[i],
		})
	}
	writeJSON(w, http.StatusOK, body)
}

// MetricsBody is the /metrics response.
type MetricsBody struct {
	Epoch            uint64                   `json:"epoch"`
	Shards           int                      `json:"shards"`
	Files            int                      `json:"files"`
	QueriesTotal     uint64                   `json:"queries_total"`
	OkTotal          uint64                   `json:"ok_total"`
	ShedTotal        uint64                   `json:"shed_total"`
	BadQueryTotal    uint64                   `json:"bad_query_total"`
	CanceledTotal    uint64                   `json:"canceled_total"`
	DegradedTotal    uint64                   `json:"degraded_total"`
	Inflight         int64                    `json:"inflight"`
	SharedQueries    uint64                   `json:"shared_queries_total"`
	SharedScansTotal uint64                   `json:"shared_scans_total"`
	CSEHitsTotal     uint64                   `json:"cse_hits_total"`
	ParseDedupsTotal uint64                   `json:"parse_dedups_total"`
	Replicas         int                      `json:"replicas"`
	HedgesSent       uint64                   `json:"hedges_sent_total"`
	HedgesWon        uint64                   `json:"hedges_won_total"`
	FailoversTotal   uint64                   `json:"failovers_total"`
	FailedOpenTotal  uint64                   `json:"failed_open_total"`
	BreakerOpens     uint64                   `json:"breaker_opens_total"`
	BreakerHalfOpens uint64                   `json:"breaker_half_opens_total"`
	BreakerCloses    uint64                   `json:"breaker_closes_total"`
	HedgeDelayMs     float64                  `json:"hedge_delay_ms"`
	LatencyMs        map[string]float64       `json:"latency_ms"`
	Tenants          map[string]TenantMetrics `json:"tenants,omitempty"`
	MaxInflight      int                      `json:"max_inflight"`
	AdmittedInflight int                      `json:"admitted_inflight"`
}

// TenantMetrics are one tenant's counters.
type TenantMetrics struct {
	Queries       uint64 `json:"queries"`
	Shed          uint64 `json:"shed"`
	SharedQueries uint64 `json:"shared_queries,omitempty"`
	SharedScans   uint64 `json:"shared_scans,omitempty"`
	CSEHits       uint64 `json:"cse_hits,omitempty"`
	ParseDedups   uint64 `json:"parse_dedups,omitempty"`
	Hedges        uint64 `json:"hedges,omitempty"`
	Failovers     uint64 `json:"failovers,omitempty"`
}

// Metrics snapshots the server's counters.
func (s *Server) Metrics() MetricsBody {
	m := MetricsBody{
		QueriesTotal:     s.met.queries.Load(),
		OkTotal:          s.met.ok.Load(),
		ShedTotal:        s.met.shed.Load(),
		BadQueryTotal:    s.met.badQuery.Load(),
		CanceledTotal:    s.met.canceled.Load(),
		DegradedTotal:    s.met.degraded.Load(),
		Inflight:         s.met.inflight.Load(),
		SharedQueries:    s.met.sharedQueries.Load(),
		SharedScansTotal: s.met.sharedScans.Load(),
		CSEHitsTotal:     s.met.cseHits.Load(),
		ParseDedupsTotal: s.met.parseDedups.Load(),
		Replicas:         s.cfg.replicas(),
		HedgesSent:       s.met.hedgesSent.Load(),
		HedgesWon:        s.met.hedgesWon.Load(),
		FailoversTotal:   s.met.failovers.Load(),
		FailedOpenTotal:  s.met.failedOpen.Load(),
		BreakerOpens:     s.met.breakerOpens.Load(),
		BreakerHalfOpens: s.met.breakerHalfOpens.Load(),
		BreakerCloses:    s.met.breakerCloses.Load(),
		HedgeDelayMs:     float64(s.hedgeDelay()) / float64(time.Millisecond),
		LatencyMs: map[string]float64{
			"p50":  s.met.hist.quantile(0.50),
			"p99":  s.met.hist.quantile(0.99),
			"p999": s.met.hist.quantile(0.999),
		},
		MaxInflight:      s.cfg.maxInflight(),
		AdmittedInflight: s.adm.inflight(),
	}
	if set := s.set.Load(); set != nil {
		m.Epoch, m.Shards, m.Files = set.epoch, len(set.shards), len(set.files)
	}
	names := s.met.tenantNames()
	if len(names) > 0 {
		m.Tenants = make(map[string]TenantMetrics, len(names))
		for _, n := range names {
			tc := s.met.tenant(n)
			m.Tenants[n] = TenantMetrics{
				Queries:       tc.queries.Load(),
				Shed:          tc.shed.Load(),
				SharedQueries: tc.sharedQueries.Load(),
				SharedScans:   tc.sharedScans.Load(),
				CSEHits:       tc.cseHits.Load(),
				ParseDedups:   tc.parseDedups.Load(),
				Hedges:        tc.hedges.Load(),
				Failovers:     tc.failovers.Load(),
			}
		}
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	files, err := s.cfg.Reload(r.Context())
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	epoch, err := s.PublishContext(r.Context(), files)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, healthBody{Status: "ok", Epoch: epoch, Shards: s.cfg.shards(), Files: len(files)})
}
