// Package stats collects per-instance statistics at index time: region
// cardinalities per class, word occurrence frequencies from the inverted
// index, and nesting-depth figures from the universe forest. The figures
// feed algebra.EstimateCost — the cardinality-aware costing that orders
// operand evaluation and prices the engine's result cache — replacing the
// paper's purely static operator-count cost (Definition 3.4) with estimates
// grounded in the actual instance, in the spirit of the statistics-driven
// planners of the related file-querying systems.
package stats

import (
	"qof/internal/index"
)

// Stats summarizes one instance. A Stats value is immutable after Collect
// and may be shared by any number of concurrent readers.
type Stats struct {
	// DocLen is the document length in bytes.
	DocLen int
	// TotalTokens is the number of word occurrences in the document.
	TotalTokens int
	// DistinctWords is the vocabulary size.
	DistinctWords int
	// Regions maps each indexed region name to its cardinality.
	Regions map[string]int
	// WordOcc maps each distinct word to its occurrence count.
	WordOcc map[string]int
	// UniverseSize is the number of regions in the universe (the union of
	// all instance sets).
	UniverseSize int
	// MaxDepth is the number of nesting levels in the universe forest
	// (1 = flat, 0 = empty).
	MaxDepth int
	// Epoch is the instance epoch the statistics were collected at;
	// comparing it against Instance.Epoch detects staleness.
	Epoch uint64
}

// Collect gathers statistics from an instance. It forces the universe
// build, which the direct-inclusion operators need anyway.
func Collect(in *index.Instance) *Stats {
	doc := in.Document()
	st := &Stats{
		DocLen:        doc.Len(),
		TotalTokens:   in.Words().TokenCount(),
		DistinctWords: in.Words().WordCount(),
		Regions:       make(map[string]int),
		WordOcc:       make(map[string]int, in.Words().WordCount()),
		Epoch:         in.Epoch(),
	}
	for _, name := range in.Names() {
		st.Regions[name] = in.MustRegion(name).Len()
	}
	in.Words().ForEachWord(func(w string, occ int) {
		st.WordOcc[w] = occ
	})
	u := in.Universe()
	st.UniverseSize = u.All().Len()
	st.MaxDepth = u.MaxDepth()
	return st
}

// RegionCard returns the cardinality of a region name (0 if unindexed).
func (s *Stats) RegionCard(name string) int {
	if s == nil {
		return 0
	}
	return s.Regions[name]
}

// WordFreq returns the occurrence count of the exact word w.
func (s *Stats) WordFreq(w string) int {
	if s == nil {
		return 0
	}
	return s.WordOcc[w]
}

// Merge aggregates per-file statistics into corpus-level figures: counts
// and cardinalities sum, depth takes the maximum, and the epoch is dropped
// (a merged Stats does not describe any single instance).
func Merge(all ...*Stats) *Stats {
	out := &Stats{
		Regions: make(map[string]int),
		WordOcc: make(map[string]int),
	}
	for _, s := range all {
		if s == nil {
			continue
		}
		out.DocLen += s.DocLen
		out.TotalTokens += s.TotalTokens
		out.UniverseSize += s.UniverseSize
		out.MaxDepth = max(out.MaxDepth, s.MaxDepth)
		for name, n := range s.Regions {
			out.Regions[name] += n
		}
		for w, n := range s.WordOcc {
			out.WordOcc[w] += n
		}
	}
	out.DistinctWords = len(out.WordOcc)
	return out
}
