package stats

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"qof/internal/index"
	"qof/internal/text"
)

// Combined on-disk format: the instance's own format (index.Save) as a
// length-prefixed blob, followed by the statistics section, so statistics
// persist alongside the instance without the index format or package
// depending on this one. Integers are unsigned varints, as in the index
// format.
const statsMagic = "QOFST01\n"

var (
	// ErrBadMagic reports a stream that is not a qof index+stats file at all.
	ErrBadMagic = errors.New("stats: bad magic (not a qof index+stats file)")
	// ErrUnsupportedVersion reports a qof index+stats file written by a
	// different, incompatible format version.
	ErrUnsupportedVersion = errors.New("stats: unsupported format version")
)

// Save writes the instance and its statistics to w. When st is nil the
// statistics are collected first.
func Save(w io.Writer, in *index.Instance, st *Stats) error {
	if st == nil {
		st = Collect(in)
	}
	var blob bytes.Buffer
	if err := in.Save(&blob); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(statsMagic); err != nil {
		return err
	}
	writeUvarint(bw, uint64(blob.Len()))
	if _, err := bw.Write(blob.Bytes()); err != nil {
		return err
	}
	writeUvarint(bw, uint64(st.DocLen))
	writeUvarint(bw, uint64(st.TotalTokens))
	writeUvarint(bw, uint64(st.DistinctWords))
	writeUvarint(bw, uint64(st.UniverseSize))
	writeUvarint(bw, uint64(st.MaxDepth))
	writeUvarint(bw, st.Epoch)
	writeCountMap(bw, st.Regions)
	writeCountMap(bw, st.WordOcc)
	return bw.Flush()
}

// Load reads an instance plus statistics previously written by Save,
// re-attaching the instance to doc exactly like index.Load.
func Load(r io.Reader, doc *text.Document) (*index.Instance, *Stats, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(statsMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("stats: reading magic: %w", err)
	}
	if string(magic) != statsMagic {
		if bytes.HasPrefix(magic, []byte("QOFST")) {
			return nil, nil, fmt.Errorf("%w: got %q, want %q", ErrUnsupportedVersion, magic, statsMagic)
		}
		return nil, nil, ErrBadMagic
	}
	blobLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, fmt.Errorf("stats: reading instance blob length: %w", err)
	}
	in, err := index.Load(io.LimitReader(br, int64(blobLen)), doc)
	if err != nil {
		return nil, nil, fmt.Errorf("stats: embedded instance: %w", err)
	}
	st := &Stats{}
	fields := []struct {
		name string
		p    *int
	}{
		{"document length", &st.DocLen},
		{"token total", &st.TotalTokens},
		{"distinct words", &st.DistinctWords},
		{"universe size", &st.UniverseSize},
		{"max depth", &st.MaxDepth},
	}
	for _, f := range fields {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, nil, fmt.Errorf("stats: reading %s: %w", f.name, err)
		}
		*f.p = int(v)
	}
	if st.Epoch, err = binary.ReadUvarint(br); err != nil {
		return nil, nil, fmt.Errorf("stats: reading epoch: %w", err)
	}
	if st.Regions, err = readCountMap(br); err != nil {
		return nil, nil, fmt.Errorf("stats: reading region counts: %w", err)
	}
	if st.WordOcc, err = readCountMap(br); err != nil {
		return nil, nil, fmt.Errorf("stats: reading word occurrences: %w", err)
	}
	return in, st, nil
}

func writeCountMap(w *bufio.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	writeUvarint(w, uint64(len(keys)))
	for _, k := range keys {
		writeUvarint(w, uint64(len(k)))
		w.WriteString(k)
		writeUvarint(w, uint64(m[k]))
	}
}

func readCountMap(r *bufio.Reader) (map[string]int, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	m := make(map[string]int, n)
	for i := uint64(0); i < n; i++ {
		kl, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if kl > 1<<20 {
			return nil, errors.New("stats: unreasonable string length")
		}
		buf := make([]byte, kl)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		m[string(buf)] = int(v)
	}
	return m, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}
