package stats

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"qof/internal/index"
)

// savedStats returns a valid Save output for the shared test instance.
func savedStats(t *testing.T) (*index.Instance, []byte) {
	t.Helper()
	in := testInstance(t)
	var buf bytes.Buffer
	if err := Save(&buf, in, nil); err != nil {
		t.Fatal(err)
	}
	return in, buf.Bytes()
}

func TestLoadCorruptMagic(t *testing.T) {
	in, data := savedStats(t)
	data[0] ^= 0xff
	_, _, err := Load(bytes.NewReader(data), in.Document())
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("corrupt magic: err = %v, want ErrBadMagic", err)
	}
}

func TestLoadVersionMismatch(t *testing.T) {
	in, data := savedStats(t)
	// Same family prefix, different version digits: QOFST01 -> QOFST99.
	copy(data, "QOFST99\n")
	_, _, err := Load(bytes.NewReader(data), in.Document())
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Errorf("future version: err = %v, want ErrUnsupportedVersion", err)
	}
	if err == nil || !strings.Contains(err.Error(), "QOFST99") {
		t.Errorf("version error should name the offending magic, got %v", err)
	}
}

func TestLoadEmptyStream(t *testing.T) {
	in, _ := savedStats(t)
	_, _, err := Load(bytes.NewReader(nil), in.Document())
	if !errors.Is(err, io.EOF) {
		t.Errorf("empty stream: err = %v, want io.EOF in chain", err)
	}
}

// TestLoadTruncated replays the valid stream cut at every length and
// requires a graceful wrapped error (never a panic, never false success).
func TestLoadTruncated(t *testing.T) {
	in, data := savedStats(t)
	for cut := 0; cut < len(data); cut++ {
		_, _, err := Load(bytes.NewReader(data[:cut]), in.Document())
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes: Load succeeded", cut, len(data))
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			// Truncation inside the embedded instance blob surfaces as a
			// corrupt-table error from index.Load; anything else should
			// still carry the EOF cause.
			if !strings.Contains(err.Error(), "index:") && !strings.Contains(err.Error(), "stats:") {
				t.Errorf("truncation at %d: unhelpful error %v", cut, err)
			}
		}
	}
}

// TestLoadTruncatedTail cuts inside the statistics section (past the
// embedded instance blob) and checks the error says which field failed.
func TestLoadTruncatedTail(t *testing.T) {
	in, data := savedStats(t)
	_, _, err := Load(bytes.NewReader(data[:len(data)-1]), in.Document())
	if err == nil {
		t.Fatal("truncated tail: Load succeeded")
	}
	if !strings.Contains(err.Error(), "stats: reading") {
		t.Errorf("tail truncation should identify the field being read, got %v", err)
	}
}

func TestLoadEmbeddedInstanceError(t *testing.T) {
	in, data := savedStats(t)
	// Flip a byte of the embedded index blob's magic (starts right after
	// the stats magic and the 1-2 byte blob length varint).
	data[len(statsMagic)+1] ^= 0xff
	_, _, err := Load(bytes.NewReader(data), in.Document())
	if err == nil {
		t.Fatal("corrupt embedded instance: Load succeeded")
	}
	if !strings.Contains(err.Error(), "stats: embedded instance:") {
		t.Errorf("embedded-instance failure should be attributed, got %v", err)
	}
}
