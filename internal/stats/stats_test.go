package stats

import (
	"bytes"
	"reflect"
	"testing"

	"qof/internal/index"
	"qof/internal/region"
	"qof/internal/text"
)

func testInstance(t *testing.T) *index.Instance {
	t.Helper()
	doc := text.NewDocument("t", "alpha beta alpha gamma beta alpha")
	in := index.NewInstance(doc)
	in.Define("Outer", region.FromRegions([]region.Region{{Start: 0, End: 16}, {Start: 17, End: 33}}))
	in.Define("Inner", region.FromRegions([]region.Region{{Start: 0, End: 5}, {Start: 17, End: 22}}))
	return in
}

func TestCollect(t *testing.T) {
	in := testInstance(t)
	st := Collect(in)
	if st.DocLen != in.Document().Len() {
		t.Errorf("DocLen = %d, want %d", st.DocLen, in.Document().Len())
	}
	if st.TotalTokens != 6 {
		t.Errorf("TotalTokens = %d, want 6", st.TotalTokens)
	}
	if st.DistinctWords != 3 {
		t.Errorf("DistinctWords = %d, want 3", st.DistinctWords)
	}
	if got := st.WordFreq("alpha"); got != 3 {
		t.Errorf("WordFreq(alpha) = %d, want 3", got)
	}
	if got := st.WordFreq("absent"); got != 0 {
		t.Errorf("WordFreq(absent) = %d, want 0", got)
	}
	if got := st.RegionCard("Outer"); got != 2 {
		t.Errorf("RegionCard(Outer) = %d, want 2", got)
	}
	if got := st.RegionCard("Nope"); got != 0 {
		t.Errorf("RegionCard(Nope) = %d, want 0", got)
	}
	if st.UniverseSize != 4 {
		t.Errorf("UniverseSize = %d, want 4", st.UniverseSize)
	}
	if st.MaxDepth != 2 {
		t.Errorf("MaxDepth = %d, want 2 (Inner nests in Outer)", st.MaxDepth)
	}
	if st.Epoch != in.Epoch() {
		t.Errorf("Epoch = %d, want %d", st.Epoch, in.Epoch())
	}
}

func TestNilReceivers(t *testing.T) {
	var st *Stats
	if st.RegionCard("A") != 0 || st.WordFreq("w") != 0 {
		t.Error("nil Stats accessors must return 0")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	in := testInstance(t)
	st := Collect(in)
	var buf bytes.Buffer
	if err := Save(&buf, in, st); err != nil {
		t.Fatal(err)
	}
	in2, st2, err := Load(&buf, in.Document())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range in.Names() {
		if !in2.MustRegion(name).Equal(in.MustRegion(name)) {
			t.Errorf("region %q differs after round trip", name)
		}
	}
	if !reflect.DeepEqual(st, st2) {
		t.Errorf("stats differ after round trip:\n got %+v\nwant %+v", st2, st)
	}
}

func TestSaveCollectsWhenNil(t *testing.T) {
	in := testInstance(t)
	var buf bytes.Buffer
	if err := Save(&buf, in, nil); err != nil {
		t.Fatal(err)
	}
	_, st, err := Load(&buf, in.Document())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, Collect(in)) {
		t.Errorf("Save(nil) did not persist freshly collected stats: %+v", st)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	doc := text.NewDocument("t", "x")
	if _, _, err := Load(bytes.NewReader([]byte("not an index")), doc); err == nil {
		t.Error("expected error for bad magic")
	}
}

func TestMerge(t *testing.T) {
	a := &Stats{
		DocLen: 10, TotalTokens: 4, UniverseSize: 3, MaxDepth: 2,
		Regions: map[string]int{"A": 2, "B": 1},
		WordOcc: map[string]int{"x": 3, "y": 1},
	}
	b := &Stats{
		DocLen: 20, TotalTokens: 6, UniverseSize: 5, MaxDepth: 1,
		Regions: map[string]int{"A": 4},
		WordOcc: map[string]int{"y": 2, "z": 5},
	}
	m := Merge(a, nil, b)
	if m.DocLen != 30 || m.TotalTokens != 10 || m.UniverseSize != 8 {
		t.Errorf("sums wrong: %+v", m)
	}
	if m.MaxDepth != 2 {
		t.Errorf("MaxDepth = %d, want max(2,1)", m.MaxDepth)
	}
	if m.RegionCard("A") != 6 || m.RegionCard("B") != 1 {
		t.Errorf("region sums wrong: %+v", m.Regions)
	}
	if m.WordFreq("y") != 3 || m.DistinctWords != 3 {
		t.Errorf("word merge wrong: %+v", m.WordOcc)
	}
}
