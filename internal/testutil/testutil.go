// Package testutil provides the shared corpus and fixture builders used by
// the integration tests. Several packages (engine, compile, refeval/diff)
// previously grew their own copies of the same few lines — generate a BibTeX
// corpus, wrap it in a document, build an instance under some index spec —
// and this package is the single home for that pattern.
package testutil

import (
	"fmt"
	"testing"

	"qof/internal/bibtex"
	"qof/internal/compile"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/index"
	"qof/internal/text"
)

// BibFixture bundles everything an engine-level integration test needs:
// the catalog, the generated document with its ground-truth stats, the
// index instance, and an engine over it.
type BibFixture struct {
	Cat  *compile.Catalog
	Doc  *text.Document
	Eng  *engine.Engine
	St   bibtex.Stats
	In   *index.Instance
	Spec grammar.IndexSpec
}

// NewBibFixture generates an n-reference corpus and builds an engine over it
// under the given index spec. The target author/editor shares default to
// 0.15/0.25 so the ground-truth counts tests assert on stay non-trivial;
// mutate may adjust any config field (including the shares) before
// generation.
func NewBibFixture(t testing.TB, n int, spec grammar.IndexSpec, mutate func(*bibtex.Config)) *BibFixture {
	t.Helper()
	doc, st := BibDoc(t, "corpus.bib", n, func(cfg *bibtex.Config) {
		cfg.TargetAuthorShare = 0.15
		cfg.TargetEditorShare = 0.25
		if mutate != nil {
			mutate(cfg)
		}
	})
	cat := bibtex.Catalog()
	in, _, err := cat.Grammar.BuildInstance(doc, spec)
	if err != nil {
		t.Fatal(err)
	}
	return &BibFixture{Cat: cat, Doc: doc, Eng: engine.New(cat, in), St: st, In: in, Spec: spec}
}

// BibDoc generates one BibTeX corpus file with n references and returns it
// as a document together with its generation stats. mutate may adjust the
// config (seed, shares, …) before generation.
func BibDoc(t testing.TB, name string, n int, mutate func(*bibtex.Config)) (*text.Document, bibtex.Stats) {
	t.Helper()
	cfg := bibtex.DefaultConfig(n)
	if mutate != nil {
		mutate(&cfg)
	}
	content, st := bibtex.Generate(cfg)
	return text.NewDocument(name, content), st
}

// NewBibInstance generates an n-reference corpus and indexes it under spec,
// returning the catalog and instance — the compile-level cousin of
// NewBibFixture for tests that plan but never execute.
func NewBibInstance(t testing.TB, n int, spec grammar.IndexSpec) (*compile.Catalog, *index.Instance) {
	t.Helper()
	doc, _ := BibDoc(t, "t.bib", n, nil)
	cat := bibtex.Catalog()
	in, _, err := cat.Grammar.BuildInstance(doc, spec)
	if err != nil {
		t.Fatal(err)
	}
	return cat, in
}

// BibCorpusDocs generates files distinct BibTeX documents of refs
// references each (distinct seeds, so contents differ), for corpus-level
// tests.
func BibCorpusDocs(t testing.TB, files, refs int) []*text.Document {
	t.Helper()
	docs := make([]*text.Document, files)
	for i := range docs {
		i := i
		docs[i], _ = BibDoc(t, fmt.Sprintf("file%02d.bib", i), refs, func(cfg *bibtex.Config) {
			cfg.Seed = int64(1000 + i)
		})
	}
	return docs
}
