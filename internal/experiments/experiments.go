// Package experiments implements the reproduction harness: one function per
// experiment in EXPERIMENTS.md, each regenerating the corresponding table
// from scratch (workload generation, indexing, query execution, baselines,
// timing). The qofbench command prints the tables; the repository-level
// benchmarks reuse the same setups under testing.B.
//
// Timing methodology: every measured cell is the median of Repeats runs of
// the operation on prebuilt inputs (indexes are built once, as the paper
// assumes the PAT system maintains them); index build costs are reported
// separately where the experiment is about them.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"qof/internal/bibtex"
	"qof/internal/compile"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/index"
	"qof/internal/logs"
	"qof/internal/sgml"
	"qof/internal/text"
	"qof/internal/xsql"
)

// Options tunes experiment scale.
type Options struct {
	// Sizes are the corpus sizes (references / entries) for size sweeps.
	Sizes []int
	// Repeats is the number of timed runs per cell (median reported).
	Repeats int
}

// Default returns the standard options used by EXPERIMENTS.md.
func Default() Options {
	return Options{Sizes: []int{1000, 5000, 20000}, Repeats: 5}
}

// Quick returns reduced options for smoke runs and tests.
func Quick() Options {
	return Options{Sizes: []int{200, 1000}, Repeats: 3}
}

// Table is one regenerated result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Experiment is a runnable experiment.
type Experiment struct {
	ID    string
	Name  string
	Run   func(Options) (*Table, error)
	Bench bool // has a corresponding testing.B benchmark
}

// All lists every experiment in order.
func All() []Experiment {
	return []Experiment{
		{ID: "e1", Name: "index evaluation vs full-scan DB vs grep", Run: E1},
		{ID: "e2", Name: "optimized vs unoptimized inclusion expressions", Run: E2},
		{ID: "e3", Name: "cost of direct inclusion vs plain inclusion", Run: E3},
		{ID: "e4", Name: "partial indexing: candidates and parsing effort", Run: E4},
		{ID: "e5", Name: "exact answers under partial indexing (Section 6.3)", Run: E5},
		{ID: "e6", Name: "path variables: star translation vs enumeration", Run: E6},
		{ID: "e7", Name: "value joins with index-assisted loading", Run: E7},
		{ID: "e8", Name: "efficiency vs amount of indexing", Run: E8},
		{ID: "e9", Name: "selective (region-scoped) indexing", Run: E9},
		{ID: "e10", Name: "transitive closure via one inclusion expression", Run: E10},
		{ID: "x1", Name: "extension: incremental index maintenance vs rebuild", Run: X1},
		{ID: "x2", Name: "extension: concurrent query serving and parallel phase-2", Run: X2},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared setup helpers (exported for the benchmarks) ---

// BibtexSetup bundles a generated corpus with catalog and indexes.
type BibtexSetup struct {
	Cat      *compile.Catalog
	Doc      *text.Document
	Stats    bibtex.Stats
	Instance *index.Instance
	Engine   *engine.Engine
}

// NewBibtexSetup generates a corpus of n references and indexes it per spec.
// mutate may adjust the generator config.
func NewBibtexSetup(n int, spec grammar.IndexSpec, mutate func(*bibtex.Config)) (*BibtexSetup, error) {
	cfg := bibtex.DefaultConfig(n)
	if mutate != nil {
		mutate(&cfg)
	}
	content, st := bibtex.Generate(cfg)
	cat := bibtex.Catalog()
	doc := text.NewDocument(fmt.Sprintf("bibtex-%d.bib", n), content)
	in, _, err := cat.Grammar.BuildInstance(doc, spec)
	if err != nil {
		return nil, err
	}
	return &BibtexSetup{Cat: cat, Doc: doc, Stats: st, Instance: in, Engine: engine.New(cat, in)}, nil
}

// SgmlSetup bundles a generated document with catalog and indexes.
type SgmlSetup struct {
	Cat      *compile.Catalog
	Doc      *text.Document
	Stats    sgml.Stats
	Instance *index.Instance
	Engine   *engine.Engine
}

// NewSgmlSetup generates a document of the given depth/fanout, fully indexed.
func NewSgmlSetup(depth, fanout int) (*SgmlSetup, error) {
	content, st := sgml.Generate(sgml.DefaultConfig(depth, fanout))
	cat := sgml.Catalog()
	doc := text.NewDocument(fmt.Sprintf("doc-d%d-f%d.sgml", depth, fanout), content)
	in, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		return nil, err
	}
	return &SgmlSetup{Cat: cat, Doc: doc, Stats: st, Instance: in, Engine: engine.New(cat, in)}, nil
}

// LogsSetup bundles a generated log with catalog and indexes.
type LogsSetup struct {
	Cat      *compile.Catalog
	Doc      *text.Document
	Stats    logs.Stats
	Instance *index.Instance
	Engine   *engine.Engine
}

// NewLogsSetup generates a log of n entries, fully indexed.
func NewLogsSetup(n int) (*LogsSetup, error) {
	content, st := logs.Generate(logs.DefaultConfig(n))
	cat := logs.Catalog()
	doc := text.NewDocument(fmt.Sprintf("app-%d.log", n), content)
	in, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		return nil, err
	}
	return &LogsSetup{Cat: cat, Doc: doc, Stats: st, Instance: in, Engine: engine.New(cat, in)}, nil
}

// MedianTime runs fn repeats times and returns the median duration.
func MedianTime(repeats int, fn func() error) (time.Duration, error) {
	if repeats < 1 {
		repeats = 1
	}
	times := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0)
}

func ratio(a, b time.Duration) string {
	if a == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(b)/float64(a))
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// mustQuery parses a query, panicking on error (experiment queries are
// fixed strings).
func mustQuery(src string) *xsql.Query { return xsql.MustParse(src) }
