package experiments

import (
	"fmt"
	"strings"
	"time"

	"qof/internal/advisor"
	"qof/internal/bibtex"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/scan"
	"qof/internal/text"
	"qof/internal/xsql"
)

// E7 regenerates Section 5.2's join handling: the query "references whose
// editors include one of the authors" needs a value join, which the index
// cannot decide — but existence chains narrow what must be loaded into the
// database, versus loading every object.
func E7(opt Options) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "value join (editors ∩ authors): index-assisted loading vs full load",
		Header: []string{"refs", "index_ms", "fullload_ms", "speedup", "candidates", "parsed", "answers"},
		Notes: []string{
			"index-assisted: existence chains narrow candidates, only they are parsed and joined",
		},
	}
	q := mustQuery(`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`)
	for _, n := range opt.Sizes {
		setup, err := NewBibtexSetup(n, grammar.IndexSpec{}, nil)
		if err != nil {
			return nil, err
		}
		var cand, parsed, answers int
		indexTime, err := MedianTime(opt.Repeats, func() error {
			res, err := setup.Engine.Execute(q)
			if err != nil {
				return err
			}
			cand, parsed, answers = res.Stats.Candidates, res.Stats.Parsed, res.Stats.Results
			return nil
		})
		if err != nil {
			return nil, err
		}
		fullTime, err := MedianTime(opt.Repeats, func() error {
			res, err := scan.FullScan(setup.Cat, setup.Doc, q)
			if err != nil {
				return err
			}
			if len(res.Objects) != answers {
				return fmt.Errorf("E7: baseline disagrees: %d vs %d", len(res.Objects), answers)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if answers != setup.Stats.SelfEditedByAuth {
			return nil, fmt.Errorf("E7: wrong answer: %d vs %d", answers, setup.Stats.SelfEditedByAuth)
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), ms(indexTime), ms(fullTime), ratio(indexTime, fullTime),
			itoa(cand), itoa(parsed), itoa(answers),
		})
	}
	return t, nil
}

// E8 regenerates Section 7's central tradeoff: as the index set grows from
// minimal to full, query time falls (candidates shrink, then filtering
// disappears) while index size and build time rise. The advisor's
// recommendation marks the knee of the curve.
func E8(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "efficiency vs amount of indexing (query: Chang as author)",
		Header: []string{"spec", "names", "regions", "index_KB", "build_ms",
			"exact", "candidates", "query_ms"},
	}
	n := opt.Sizes[len(opt.Sizes)-1]

	cat := bibtex.Catalog()
	rec, err := advisor.Recommend(cat, []*xsql.Query{mustQuery(changQuery)})
	if err != nil {
		return nil, err
	}
	ladder := []struct {
		name string
		spec grammar.IndexSpec
	}{
		{"root-only", grammar.IndexSpec{Names: []string{bibtex.NTReference}}},
		{"+Last_Name", grammar.IndexSpec{Names: []string{bibtex.NTReference, bibtex.NTLastName}}},
		{"advisor(" + strings.Join(rec.Names, ",") + ")", rec.Spec()},
		{"+Editors,Name", grammar.IndexSpec{Names: []string{
			bibtex.NTReference, bibtex.NTLastName, bibtex.NTAuthors, bibtex.NTEditors, bibtex.NTName}}},
		{"full", grammar.IndexSpec{}},
	}
	cfg := bibtex.DefaultConfig(n)
	content, st := bibtex.Generate(cfg)
	doc := text.NewDocument("e8.bib", content)
	for _, step := range ladder {
		var buildTime time.Duration
		setup := &BibtexSetup{}
		buildTime, err := MedianTime(opt.Repeats, func() error {
			s, err := NewBibtexSetupFromDoc(doc, step.spec)
			if err != nil {
				return err
			}
			*setup = *s
			return nil
		})
		if err != nil {
			return nil, err
		}
		setup.Stats = st
		q := mustQuery(changQuery)
		var cand, answers int
		var exact bool
		qTime, err := MedianTime(opt.Repeats, func() error {
			res, err := setup.Engine.Execute(q)
			if err != nil {
				return err
			}
			cand, answers, exact = res.Stats.Candidates, res.Stats.Results, res.Stats.Exact
			return nil
		})
		if err != nil {
			return nil, err
		}
		if answers != st.TargetAsAuthor {
			return nil, fmt.Errorf("E8: wrong answer under %s", step.name)
		}
		t.Rows = append(t.Rows, []string{
			step.name, itoa(len(setup.Instance.Names())), itoa(setup.Instance.RegionCount()),
			itoa(setup.Instance.SizeBytes() / 1024), ms(buildTime),
			fmt.Sprintf("%v", exact), itoa(cand), ms(qTime),
		})
	}
	t.Notes = append(t.Notes,
		"build_ms includes parsing the file and extracting the region sets",
		fmt.Sprintf("advisor recommendation for the workload: %v", rec.Names))
	return t, nil
}

// NewBibtexSetupFromDoc indexes an existing document per spec (used when
// several index choices are compared over the same corpus).
func NewBibtexSetupFromDoc(doc *text.Document, spec grammar.IndexSpec) (*BibtexSetup, error) {
	cat := bibtex.Catalog()
	in, _, err := cat.Grammar.BuildInstance(doc, spec)
	if err != nil {
		return nil, err
	}
	return &BibtexSetup{Cat: cat, Doc: doc, Instance: in, Engine: engine.New(cat, in)}, nil
}

// E9 regenerates Section 7's selective indexing: indexing Last_Name only
// inside Authors regions serves author queries with a smaller index and
// tighter candidates than the global Last_Name index.
func E9(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "selective indexing: Last_Name globally vs only within Authors",
		Header: []string{"spec", "lastname_regions", "index_KB", "exact",
			"candidates", "answers", "query_ms"},
		Notes: []string{
			"both specs also index Reference; the scoped index cannot certify exactness and filters its (already tight) candidates",
		},
	}
	n := opt.Sizes[len(opt.Sizes)-1]
	specs := []struct {
		name string
		spec grammar.IndexSpec
	}{
		{"global", grammar.IndexSpec{Names: []string{bibtex.NTReference, bibtex.NTLastName}}},
		{"scoped", grammar.IndexSpec{
			Names:  []string{bibtex.NTReference},
			Scoped: []grammar.ScopedName{{Name: bibtex.NTLastName, Within: bibtex.NTAuthors}},
		}},
	}
	for _, sp := range specs {
		setup, err := NewBibtexSetup(n, sp.spec, nil)
		if err != nil {
			return nil, err
		}
		q := mustQuery(changQuery)
		var cand, answers int
		var exact bool
		d, err := MedianTime(opt.Repeats, func() error {
			res, err := setup.Engine.Execute(q)
			if err != nil {
				return err
			}
			cand, answers, exact = res.Stats.Candidates, res.Stats.Results, res.Stats.Exact
			return nil
		})
		if err != nil {
			return nil, err
		}
		if answers != setup.Stats.TargetAsAuthor {
			return nil, fmt.Errorf("E9: wrong answer under %s", sp.name)
		}
		t.Rows = append(t.Rows, []string{
			sp.name, itoa(setup.Instance.MustRegion(bibtex.NTLastName).Len()),
			itoa(setup.Instance.SizeBytes() / 1024), fmt.Sprintf("%v", exact),
			itoa(cand), itoa(answers), ms(d),
		})
	}
	return t, nil
}
