package experiments

import (
	"fmt"

	"qof/internal/algebra"
	"qof/internal/scan"
)

// E3 regenerates Section 3.1's cost claim: the direct-inclusion operator ⊃d
// is significantly more expensive than plain inclusion ⊃, and its cost
// grows with nesting depth (the layered program iterates layer by layer and
// consults every other region index).
func E3(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "cost of Section >d Section vs Section > Section as nesting deepens",
		Header: []string{"depth", "sections", "plain_ms", "direct_ms", "layered_ms",
			"direct_vs_plain", "layered_vs_plain"},
		Notes: []string{
			"plain: ⊃ sweep; direct: universe-based ⊃d; layered: the paper's while-loop program",
		},
	}
	for _, depth := range []int{3, 5, 7, 9} {
		setup, err := NewSgmlSetup(depth, 2)
		if err != nil {
			return nil, err
		}
		ev := algebra.NewEvaluator(setup.Instance)
		lay := algebra.NewEvaluator(setup.Instance)
		lay.UseLayeredDirect = true

		plain := algebra.MustParse(`Section > Section`)
		direct := algebra.MustParse(`Section >d Section`)

		plainTime, err := MedianTime(opt.Repeats, func() error {
			_, err := ev.Eval(plain)
			return err
		})
		if err != nil {
			return nil, err
		}
		var directN int
		directTime, err := MedianTime(opt.Repeats, func() error {
			s, err := ev.Eval(direct)
			directN = s.Len()
			return err
		})
		if err != nil {
			return nil, err
		}
		var layeredN int
		layeredTime, err := MedianTime(opt.Repeats, func() error {
			s, err := lay.Eval(direct)
			layeredN = s.Len()
			return err
		})
		if err != nil {
			return nil, err
		}
		if directN != layeredN {
			return nil, fmt.Errorf("E3: ⊃d implementations disagree: %d vs %d", directN, layeredN)
		}
		t.Rows = append(t.Rows, []string{
			itoa(depth), itoa(setup.Stats.Sections),
			ms(plainTime), ms(directTime), ms(layeredTime),
			ratio(plainTime, directTime), ratio(plainTime, layeredTime),
		})
	}
	return t, nil
}

// E10 regenerates the closure claim at the end of Section 5.3: a path
// regular expression with transitive closure ("sections containing, at any
// depth, a paragraph with the word") is one inclusion expression on the
// index, versus a recursive traversal in the database.
func E10(opt Options) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "transitive closure: one inclusion expression vs database traversal",
		Header: []string{"depth", "fanout", "sections", "locate_ms", "dbscan_ms", "speedup", "answers"},
		Notes: []string{
			`closure query: sections containing, at any depth, a paragraph with "needle"`,
			`locate_ms evaluates the inclusion expression Section > contains(Para, "needle")`,
			"dbscan parses the whole document, loads the extents and traverses wildcard paths",
		},
	}
	expr := algebra.MustParse(`Section > contains(Para, "needle")`)
	q := mustQuery(`SELECT s FROM Sections s WHERE s.*X.Para CONTAINS "needle"`)
	for _, shape := range [][2]int{{5, 2}, {7, 2}, {5, 4}} {
		setup, err := NewSgmlSetup(shape[0], shape[1])
		if err != nil {
			return nil, err
		}
		ev := algebra.NewEvaluator(setup.Instance)
		var answers int
		locateTime, err := MedianTime(opt.Repeats, func() error {
			s, err := ev.Eval(expr)
			answers = s.Len()
			return err
		})
		if err != nil {
			return nil, err
		}
		dbTime, err := MedianTime(opt.Repeats, func() error {
			res, err := scan.FullScan(setup.Cat, setup.Doc, q)
			if err != nil {
				return err
			}
			if len(res.Objects) != answers {
				return fmt.Errorf("E10: database traversal disagrees: %d vs %d", len(res.Objects), answers)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if answers != setup.Stats.TargetSections {
			return nil, fmt.Errorf("E10: wrong answer: %d vs %d", answers, setup.Stats.TargetSections)
		}
		t.Rows = append(t.Rows, []string{
			itoa(shape[0]), itoa(shape[1]), itoa(setup.Stats.Sections),
			ms(locateTime), ms(dbTime), ratio(locateTime, dbTime), itoa(answers),
		})
	}
	return t, nil
}
