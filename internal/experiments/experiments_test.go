package experiments_test

import (
	"strings"
	"testing"

	"qof/internal/experiments"
)

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opt := experiments.Quick()
	for _, e := range experiments.All() {
		tab, err := e.Run(opt)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
		t.Logf("\n%s", tab)
	}
}

func TestLookup(t *testing.T) {
	if _, ok := experiments.Lookup("e1"); !ok {
		t.Error("e1 missing")
	}
	if _, ok := experiments.Lookup("nope"); ok {
		t.Error("nope found")
	}
}

func TestTableString(t *testing.T) {
	tab := &experiments.Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "long_column"},
		Rows:   [][]string{{"1", "2"}, {"wider-cell", "3"}},
		Notes:  []string{"a note"},
	}
	s := tab.String()
	for _, want := range []string{"== T: demo ==", "long_column", "wider-cell", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table.String missing %q:\n%s", want, s)
		}
	}
	// Columns align: every data row has the header's column offset.
	lines := strings.Split(s, "\n")
	col := strings.Index(lines[1], "long_column")
	if !strings.HasPrefix(lines[3][col:], "3") {
		t.Errorf("misaligned:\n%s", s)
	}
}
