package experiments

import (
	"fmt"

	"qof/internal/bibtex"
	"qof/internal/engine"
	"qof/internal/grammar"
)

// editedReference is the replacement text used by X1.
const editedReference = `@INCOLLECTION{Edited01,
AUTHOR = "Y. F. Chang",
TITLE = "A Revised Entry",
BOOKTITLE = "Updates on Files",
YEAR = "1994",
EDITOR = "T. Milo",
PUBLISHER = "ACM Press",
PAGES = "1--12",
REFERRED = "",
KEYWORDS = "updates",
ABSTRACT = "an edited reference",
}`

// X1 is an extension experiment (not a claim from the paper, which defers
// index maintenance to the text system): updating one reference in place by
// splicing the region indexes and re-parsing only the replacement, versus
// rebuilding the whole index. The spliced instance is verified to equal a
// from-scratch rebuild before timing.
func X1(opt Options) (*Table, error) {
	t := &Table{
		ID:     "X1",
		Title:  "extension: incremental index maintenance vs full rebuild on a one-reference edit",
		Header: []string{"refs", "splice_ms", "rebuild_ms", "speedup", "bytes_reparsed", "file_bytes"},
		Notes: []string{
			"splice: re-parse only the replacement text, shift/stretch all other regions",
			"rebuild: parse the whole file again (what a non-incremental indexer does)",
		},
	}
	for _, n := range opt.Sizes {
		setup, err := NewBibtexSetup(n, grammar.IndexSpec{}, nil)
		if err != nil {
			return nil, err
		}
		target := setup.Instance.MustRegion(bibtex.NTReference).At(n / 2)

		// Correctness first: splice equals rebuild.
		doc2, spliced, err := engine.ReplaceRegion(setup.Cat, setup.Instance, bibtex.NTReference, target, editedReference)
		if err != nil {
			return nil, err
		}
		rebuilt, _, err := setup.Cat.Grammar.BuildInstance(doc2, grammar.IndexSpec{})
		if err != nil {
			return nil, err
		}
		for _, name := range rebuilt.Names() {
			if !spliced.MustRegion(name).Equal(rebuilt.MustRegion(name)) {
				return nil, fmt.Errorf("X1: splice diverges from rebuild on %q", name)
			}
		}

		spliceTime, err := MedianTime(opt.Repeats, func() error {
			_, _, err := engine.ReplaceRegion(setup.Cat, setup.Instance, bibtex.NTReference, target, editedReference)
			return err
		})
		if err != nil {
			return nil, err
		}
		rebuildTime, err := MedianTime(opt.Repeats, func() error {
			_, _, err := setup.Cat.Grammar.BuildInstance(doc2, grammar.IndexSpec{})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), ms(spliceTime), ms(rebuildTime), ratio(spliceTime, rebuildTime),
			itoa(len(editedReference)), itoa(setup.Doc.Len()),
		})
	}
	return t, nil
}
