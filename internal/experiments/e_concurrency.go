package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/xsql"
)

// ConcurrencyWorkers is the goroutine-count sweep used by X2 and by
// BenchmarkConcurrentExecute.
var ConcurrencyWorkers = []int{1, 2, 4, 8}

// ConcurrencyQueries is the mixed read workload for the concurrency
// experiment: an index-exact selection, a projection (parses every matching
// candidate), a conjunctive filter, a value join, and a whole-class
// enumeration. Together they exercise every execution path of the engine.
var ConcurrencyQueries = []string{
	`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`,
	`SELECT r.Key FROM References r WHERE r.Editors.Name.Last_Name = "Chang"`,
	`SELECT r FROM References r WHERE r.Title CONTAINS "Systems" AND r.Authors.Name.Last_Name = "Chang"`,
	`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`,
	`SELECT r.Key FROM References r`,
}

// ServeConcurrent drives total queries through the engine from the given
// number of client goroutines (work-stealing over a shared counter) and
// returns the wall-clock time. The queries cycle through the list in order,
// so every worker mixes all query shapes.
func ServeConcurrent(eng *engine.Engine, queries []*xsql.Query, workers, total int) (time.Duration, error) {
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	errs := make([]error, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				if _, err := eng.Execute(queries[i%len(queries)]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

// X2 is an extension experiment: concurrent query serving. Mode "clients"
// drives N goroutines of mixed queries against one shared engine and reports
// throughput (the multi-member shared-access setting of Section 2); mode
// "phase2" runs a parse-heavy projection with N phase-2 workers and reports
// single-query throughput. Speedups are relative to the 1-worker row of the
// same mode; on a single-CPU host they hover around 1.0x by construction.
func X2(opt Options) (*Table, error) {
	t := &Table{
		ID:     "X2",
		Title:  "extension: concurrent query serving (shared engine) and parallel phase-2",
		Header: []string{"mode", "workers", "queries", "elapsed_ms", "qps", "speedup"},
		Notes: []string{
			"clients: N goroutines share one Engine; work-stealing over a mixed query list",
			"phase2: one caller, Engine.Parallelism=N workers parse/filter candidates",
		},
	}
	n := opt.Sizes[0]
	setup, err := NewBibtexSetup(n, grammar.IndexSpec{}, nil)
	if err != nil {
		return nil, err
	}
	queries := make([]*xsql.Query, len(ConcurrencyQueries))
	for i, src := range ConcurrencyQueries {
		queries[i] = mustQuery(src)
	}

	total := 40 * opt.Repeats
	var base float64
	for _, w := range ConcurrencyWorkers {
		elapsed, err := ServeConcurrent(setup.Engine, queries, w, total)
		if err != nil {
			return nil, err
		}
		qps := float64(total) / elapsed.Seconds()
		if w == ConcurrencyWorkers[0] {
			base = qps
		}
		t.Rows = append(t.Rows, []string{
			"clients", itoa(w), itoa(total), ms(elapsed), fmtQPS(qps), fmtSpeedup(qps, base),
		})
	}

	// Phase-2 sweep: a projection over every reference parses each candidate,
	// so the per-query worker pool has real work to divide.
	parseHeavy := mustQuery(`SELECT r.Key FROM References r`)
	phase2Total := 4 * opt.Repeats
	base = 0
	for _, w := range ConcurrencyWorkers {
		setup.Engine.Parallelism = w
		elapsed, err := ServeConcurrent(setup.Engine, []*xsql.Query{parseHeavy}, 1, phase2Total)
		if err != nil {
			return nil, err
		}
		qps := float64(phase2Total) / elapsed.Seconds()
		if w == ConcurrencyWorkers[0] {
			base = qps
		}
		t.Rows = append(t.Rows, []string{
			"phase2", itoa(w), itoa(phase2Total), ms(elapsed), fmtQPS(qps), fmtSpeedup(qps, base),
		})
	}
	setup.Engine.Parallelism = 0

	// One more run of the mixed list: by now every plan is cached.
	hits := 0
	for _, q := range queries {
		res, err := setup.Engine.Execute(q)
		if err != nil {
			return nil, err
		}
		if res.Stats.PlanCached {
			hits++
		}
	}
	t.Notes = append(t.Notes, fmtCacheNote(hits, len(queries)))
	return t, nil
}

func fmtQPS(qps float64) string { return fmt.Sprintf("%.1f", qps) }

func fmtSpeedup(q, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", q/b)
}

func fmtCacheNote(hits, total int) string {
	return fmt.Sprintf("plan cache: %d/%d repeat queries served from cache", hits, total)
}
