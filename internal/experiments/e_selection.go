package experiments

import (
	"fmt"

	"qof/internal/algebra"
	"qof/internal/bibtex"
	"qof/internal/grammar"
	"qof/internal/scan"
)

// changQuery is the paper's running example (Section 2).
const changQuery = `SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`

// E1 regenerates the headline claim (Sections 1 and 8): evaluating a
// database query on files through the text index is significantly faster
// than the standard implementation that parses the whole file and loads the
// database, at every corpus size; a raw grep scan is timed for scale but
// cannot answer the structural query.
func E1(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Chang-as-author query: index evaluation vs full scan+load vs grep",
		Header: []string{"refs", "file_KB", "answers",
			"index_ms", "scan_ms", "grep_ms", "speedup_vs_scan", "idx_parsed_bytes"},
		Notes: []string{
			"index_ms: optimized inclusion expression + parsing only the result regions",
			"scan_ms: parse whole file, build all objects, filter in the database ([ACM93] baseline)",
			"grep answers a different (weaker) question: word occurrences, not authors",
		},
	}
	for _, n := range opt.Sizes {
		setup, err := NewBibtexSetup(n, grammar.IndexSpec{}, nil)
		if err != nil {
			return nil, err
		}
		q := mustQuery(changQuery)
		var parsedBytes, answers int
		indexTime, err := MedianTime(opt.Repeats, func() error {
			res, err := setup.Engine.Execute(q)
			if err != nil {
				return err
			}
			parsedBytes = res.Stats.ParsedBytes
			answers = res.Stats.Results
			return nil
		})
		if err != nil {
			return nil, err
		}
		scanTime, err := MedianTime(opt.Repeats, func() error {
			res, err := scan.FullScan(setup.Cat, setup.Doc, q)
			if err != nil {
				return err
			}
			if len(res.Objects) != answers {
				return fmt.Errorf("E1: baseline disagrees: %d vs %d", len(res.Objects), answers)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		grepTime, _ := MedianTime(opt.Repeats, func() error {
			scan.Grep(setup.Doc, "Chang")
			return nil
		})
		if answers != setup.Stats.TargetAsAuthor {
			return nil, fmt.Errorf("E1: wrong answer: %d vs ground truth %d", answers, setup.Stats.TargetAsAuthor)
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(setup.Doc.Len() / 1024), itoa(answers),
			ms(indexTime), ms(scanTime), ms(grepTime),
			ratio(indexTime, scanTime), itoa(parsedBytes),
		})
	}
	return t, nil
}

// E2 regenerates Section 3.2's optimization effect: the original expression
// Reference ⊃d Authors ⊃d Name ⊃d σ"Chang"(Last_Name) versus its unique
// most efficient version Reference ⊃ Authors ⊃ σ"Chang"(Last_Name).
func E2(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "region-expression optimization (Theorem 3.6): original vs optimized",
		Header: []string{"refs", "orig_ms", "orig_layered_ms", "optimized_ms",
			"speedup", "speedup_layered", "orig_cost", "opt_cost", "results"},
		Notes: []string{
			`original:  Reference >d Authors >d Name >d contains(Last_Name, "Chang")`,
			`optimized: Reference > Authors > contains(Last_Name, "Chang")`,
			"orig_layered evaluates ⊃d with the paper's layered program (the PAT-era cost)",
		},
	}
	original := algebra.MustParse(`Reference >d Authors >d Name >d contains(Last_Name, "Chang")`)
	optimized := algebra.MustParse(`Reference > Authors > contains(Last_Name, "Chang")`)
	for _, n := range opt.Sizes {
		setup, err := NewBibtexSetup(n, grammar.IndexSpec{}, nil)
		if err != nil {
			return nil, err
		}
		ev := algebra.NewEvaluator(setup.Instance)
		lay := algebra.NewEvaluator(setup.Instance)
		lay.UseLayeredDirect = true
		var results int
		origTime, err := MedianTime(opt.Repeats, func() error {
			s, err := ev.Eval(original)
			results = s.Len()
			return err
		})
		if err != nil {
			return nil, err
		}
		var layResults int
		layTime, err := MedianTime(opt.Repeats, func() error {
			s, err := lay.Eval(original)
			layResults = s.Len()
			return err
		})
		if err != nil {
			return nil, err
		}
		var optResults int
		optTime, err := MedianTime(opt.Repeats, func() error {
			s, err := ev.Eval(optimized)
			optResults = s.Len()
			return err
		})
		if err != nil {
			return nil, err
		}
		if results != optResults || results != layResults {
			return nil, fmt.Errorf("E2: expressions disagree: %d vs %d vs %d", results, layResults, optResults)
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), ms(origTime), ms(layTime), ms(optTime),
			ratio(optTime, origTime), ratio(optTime, layTime),
			itoa(algebra.Cost(original)), itoa(algebra.Cost(optimized)), itoa(results),
		})
	}
	return t, nil
}

// E4 regenerates Section 6's tradeoff: with partial indexing the index
// yields a candidate superset whose size (and hence the parsing effort)
// depends on how well the indexed names discriminate — here, on how often
// the target name appears as an editor rather than an author.
func E4(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "partial indexing: candidate supersets and parsing effort (editor share varies)",
		Header: []string{"refs", "editor_share", "spec", "exact", "candidates", "answers",
			"parsed_bytes", "file_bytes", "query_ms"},
		Notes: []string{
			"full = every non-terminal; partial = {Reference, Key, Last_Name} (Section 6.1's example)",
			"candidate inflation grows with the editor share: editors cannot be told from authors",
		},
	}
	n := opt.Sizes[len(opt.Sizes)-1]
	specs := []struct {
		name string
		spec grammar.IndexSpec
	}{
		{"full", grammar.IndexSpec{}},
		{"partial", grammar.IndexSpec{Names: []string{bibtex.NTReference, bibtex.NTKey, bibtex.NTLastName}}},
	}
	for _, share := range []float64{0.05, 0.25, 0.50} {
		for _, sp := range specs {
			setup, err := NewBibtexSetup(n, sp.spec, func(c *bibtex.Config) {
				c.TargetEditorShare = share
			})
			if err != nil {
				return nil, err
			}
			q := mustQuery(changQuery)
			var cand, answers, parsedBytes int
			var exact bool
			d, err := MedianTime(opt.Repeats, func() error {
				res, err := setup.Engine.Execute(q)
				if err != nil {
					return err
				}
				cand, answers = res.Stats.Candidates, res.Stats.Results
				parsedBytes, exact = res.Stats.ParsedBytes, res.Stats.Exact
				return nil
			})
			if err != nil {
				return nil, err
			}
			if answers != setup.Stats.TargetAsAuthor {
				return nil, fmt.Errorf("E4: wrong answer under %s", sp.name)
			}
			t.Rows = append(t.Rows, []string{
				itoa(n), fmt.Sprintf("%.0f%%", share*100), sp.name,
				fmt.Sprintf("%v", exact), itoa(cand), itoa(answers),
				itoa(parsedBytes), itoa(setup.Doc.Len()), ms(d),
			})
		}
	}
	return t, nil
}

// E5 regenerates Section 6.3: index choices that satisfy the
// unique-realizing-path condition answer queries exactly from the index
// (no filtering), while choices that violate it fall back to a parsed and
// filtered superset — with the same final answers.
func E5(opt Options) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "exactness under partial indexing (Section 6.3)",
		Header: []string{"spec", "indexed_names", "exact", "candidates", "parsed", "answers", "query_ms"},
		Notes: []string{
			"exact63 = {Reference, Authors, Editors, Last_Name}: every contracted edge has a unique realizing path",
			"superset = {Reference, Key, Last_Name}: Reference→Last_Name is realized via Authors AND Editors",
		},
	}
	n := opt.Sizes[len(opt.Sizes)-1]
	specs := []struct {
		name string
		spec grammar.IndexSpec
	}{
		{"full", grammar.IndexSpec{}},
		{"exact63", grammar.IndexSpec{Names: []string{bibtex.NTReference, bibtex.NTAuthors, bibtex.NTEditors, bibtex.NTLastName}}},
		{"superset", grammar.IndexSpec{Names: []string{bibtex.NTReference, bibtex.NTKey, bibtex.NTLastName}}},
	}
	for _, sp := range specs {
		setup, err := NewBibtexSetup(n, sp.spec, nil)
		if err != nil {
			return nil, err
		}
		q := mustQuery(changQuery)
		var st struct {
			exact                      bool
			cand, parsed, answers, nms int
		}
		d, err := MedianTime(opt.Repeats, func() error {
			res, err := setup.Engine.Execute(q)
			if err != nil {
				return err
			}
			st.exact, st.cand = res.Stats.Exact, res.Stats.Candidates
			st.parsed, st.answers = res.Stats.Parsed, res.Stats.Results
			return nil
		})
		if err != nil {
			return nil, err
		}
		if st.answers != setup.Stats.TargetAsAuthor {
			return nil, fmt.Errorf("E5: wrong answer under %s", sp.name)
		}
		t.Rows = append(t.Rows, []string{
			sp.name, itoa(len(setup.Instance.Names())), fmt.Sprintf("%v", st.exact),
			itoa(st.cand), itoa(st.parsed), itoa(st.answers), ms(d),
		})
	}
	return t, nil
}

// E6 regenerates Section 5.3's observation: a path-variable query (*X) is
// translated to a single plain inclusion, which is cheaper than enumerating
// the concrete paths — the opposite of traditional OODBMS behaviour, where
// variables force traversal of all paths. The full-scan database evaluation
// stands in for that traversal cost.
func E6(opt Options) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "extended path expressions: star translation vs enumeration vs DB traversal",
		Header: []string{"refs", "star_ms", "enum_ms", "dbscan_ms", "star_vs_enum", "answers"},
		Notes: []string{
			`star: SELECT r ... WHERE r.*X.Last_Name = "Chang"   (one ⊃)`,
			`enum: Authors-path OR Editors-path                   (two chains + union)`,
			"dbscan: full parse+load, then wildcard navigation over every object",
		},
	}
	starQ := mustQuery(`SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"`)
	enumQ := mustQuery(`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang" OR r.Editors.Name.Last_Name = "Chang"`)
	for _, n := range opt.Sizes {
		setup, err := NewBibtexSetup(n, grammar.IndexSpec{}, nil)
		if err != nil {
			return nil, err
		}
		var starAns int
		starTime, err := MedianTime(opt.Repeats, func() error {
			res, err := setup.Engine.Execute(starQ)
			starAns = res.Stats.Results
			return err
		})
		if err != nil {
			return nil, err
		}
		var enumAns int
		enumTime, err := MedianTime(opt.Repeats, func() error {
			res, err := setup.Engine.Execute(enumQ)
			enumAns = res.Stats.Results
			return err
		})
		if err != nil {
			return nil, err
		}
		dbTime, err := MedianTime(opt.Repeats, func() error {
			_, err := scan.FullScan(setup.Cat, setup.Doc, starQ)
			return err
		})
		if err != nil {
			return nil, err
		}
		if starAns != enumAns || starAns != setup.Stats.TargetAsEither {
			return nil, fmt.Errorf("E6: answers disagree: star %d enum %d truth %d",
				starAns, enumAns, setup.Stats.TargetAsEither)
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), ms(starTime), ms(enumTime), ms(dbTime),
			ratio(starTime, enumTime), itoa(starAns),
		})
	}
	return t, nil
}
