// Package compile translates XSQL queries over file-backed database views
// into optimized region-algebra expressions, implementing Sections 5 and 6
// of the paper:
//
//   - a simple selection "SELECT r FROM R r WHERE r.p = w" becomes the
//     inclusion chain A1 ⊃d A2 ⊃d … ⊃d σw(An) along the RIG path matched by
//     p, which is then optimized (Section 5.1);
//   - boolean criteria compose chains with ∪, ∩ and − (Section 5.2);
//   - value comparisons between two paths cannot be answered by the index
//     and become residual joins, with existence chains narrowing the
//     candidates (Section 5.2);
//   - path variables translate *X to plain ⊃ and enumerate ?X assignments
//     from the RIG (Section 5.3);
//   - under partial indexing the chain is contracted to the indexed names,
//     its operators still ⊃d (direct inclusion sees only indexed regions),
//     optimized against the projected RIG, and classified as exact or
//     superset via the unique-realizing-path condition (Sections 6.1, 6.3).
//
// The compiler never evaluates anything: it produces a Plan that the engine
// package executes in up to two phases (index evaluation, then parsing and
// filtering of candidate regions).
package compile

import (
	"fmt"
	"strings"

	"qof/internal/algebra"
	"qof/internal/db"
	"qof/internal/grammar"
	"qof/internal/index"
	"qof/internal/optimizer"
	"qof/internal/rig"
	"qof/internal/stats"
	"qof/internal/text"
	"qof/internal/xsql"
)

// enumCap bounds the number of concrete assignments enumerated for a ?X
// path variable; beyond it the compiler falls back to the star (superset)
// translation.
const enumCap = 64

// Catalog binds the query language to a structuring schema: the grammar,
// its derived RIG, and the mapping from class names to the non-terminals
// whose regions are the class objects. It also precomputes two grammar
// analyses the compiler needs to classify selections as exact:
//
//   - faithful(A): every production of A is a single bare terminal, so A's
//     region text IS its database value and equality selection on the
//     region is exact;
//   - literalTokens(A): the word tokens that can appear in A's region text
//     coming from production literals (of A or any non-terminal reachable
//     below it) rather than from data — a word-containment selection for a
//     word in this set may match markup, so it is only a superset.
type Catalog struct {
	Grammar *grammar.Grammar
	RIG     *rig.Graph
	classes map[string]string

	faithful  map[string]bool
	litTokens map[string]map[string]bool

	// rewrite, when non-nil, replaces the optimizer applied to candidate
	// expressions (see SetRewriter).
	rewrite func(algebra.Expr, *rig.Graph) (algebra.Expr, []optimizer.Rewrite)
}

// SetRewriter overrides the optimizer applied to candidate expressions
// during Compile; nil restores the default (optimizer.OptimizeExpr). It
// exists so the differential harness's mutation tests can flip individual
// rewrites and prove the harness detects the corruption; production code
// never calls it. Set it before the catalog serves queries — it is not
// synchronized with concurrent Compile calls.
func (c *Catalog) SetRewriter(fn func(algebra.Expr, *rig.Graph) (algebra.Expr, []optimizer.Rewrite)) {
	c.rewrite = fn
}

// optimizeExpr applies the configured or default candidate optimizer.
func (c *Catalog) optimizeExpr(e algebra.Expr, g *rig.Graph) (algebra.Expr, []optimizer.Rewrite) {
	if c.rewrite != nil {
		return c.rewrite(e, g)
	}
	return optimizer.OptimizeExpr(e, g)
}

// NewCatalog derives the RIG from the grammar and creates an empty class
// mapping.
func NewCatalog(g *grammar.Grammar) *Catalog {
	c := &Catalog{
		Grammar:   g,
		RIG:       g.DeriveRIG(),
		classes:   make(map[string]string),
		faithful:  make(map[string]bool),
		litTokens: make(map[string]map[string]bool),
	}
	for _, nt := range g.NonTerminals() {
		c.faithful[nt] = isFaithful(g, nt)
	}
	c.computeLiteralTokens()
	return c
}

// isFaithful reports whether every production of nt is a single bare
// terminal element.
func isFaithful(g *grammar.Grammar, nt string) bool {
	prods := g.Productions(nt)
	if len(prods) == 0 {
		return false
	}
	for _, p := range prods {
		if len(p.RHS) != 1 || p.RHS[0].Kind != grammar.ElemTerm {
			return false
		}
	}
	return true
}

// computeLiteralTokens propagates, for every non-terminal, the word tokens
// occurring in production literals of the non-terminal or anything
// reachable below it.
func (c *Catalog) computeLiteralTokens() {
	own := make(map[string]map[string]bool)
	for _, nt := range c.Grammar.NonTerminals() {
		own[nt] = make(map[string]bool)
		for _, p := range c.Grammar.Productions(nt) {
			for _, e := range p.RHS {
				lit := ""
				switch e.Kind {
				case grammar.ElemLit:
					lit = e.Text
				case grammar.ElemRep:
					lit = e.Text // separator
				}
				for _, tok := range text.Tokenize(lit) {
					own[nt][lit[tok.Start:tok.End]] = true
				}
			}
		}
	}
	// Fixpoint over the RIG: tokens flow from children to parents.
	for _, nt := range c.Grammar.NonTerminals() {
		c.litTokens[nt] = make(map[string]bool)
	}
	changed := true
	for changed {
		changed = false
		for _, nt := range c.Grammar.NonTerminals() {
			add := func(tok string) {
				if !c.litTokens[nt][tok] {
					c.litTokens[nt][tok] = true
					changed = true
				}
			}
			for tok := range own[nt] {
				add(tok)
			}
			for _, child := range c.RIG.Successors(nt) {
				for tok := range c.litTokens[child] {
					add(tok)
				}
			}
		}
	}
}

// Bind maps a class name to the non-terminal backing its extent, e.g.
// "References" to "Reference".
func (c *Catalog) Bind(class, nonTerminal string) { c.classes[class] = nonTerminal }

// ClassNT resolves a class name.
func (c *Catalog) ClassNT(class string) (string, bool) {
	nt, ok := c.classes[class]
	return nt, ok
}

// VarPlan is the index-level plan for one range variable.
type VarPlan struct {
	Var string
	NT  string // non-terminal backing the variable's class

	// Candidates computes a superset of the regions whose objects can
	// satisfy the WHERE conditions on this variable. nil means the index
	// offers no narrowing (evaluate by scanning the class extent).
	Candidates algebra.Expr
	// Original is the pre-optimization expression, for EXPLAIN and the
	// optimization benchmarks.
	Original algebra.Expr
	// Exact reports that Candidates computes exactly the satisfying
	// regions, so phase-2 filtering is unnecessary (Section 6.3).
	Exact bool
	// Rewrites lists the optimizer rules applied (Theorem 3.6).
	Rewrites []optimizer.Rewrite
	// Est holds the statistics-based cardinality/cost estimate for
	// Candidates when the plan was compiled with CompileStats.
	Est *algebra.Estimate
	// StreamEst is the streaming-executor estimate under the query's
	// LIMIT: cardinality capped at the limit, cost scaled to the rows a
	// stopping consumer pulls. Set by CompileStats when the query has a
	// LIMIT; nil otherwise (without a limit the estimates coincide).
	StreamEst *algebra.Estimate
}

// ProjPlan describes how to produce the SELECT output.
type ProjPlan struct {
	// Steps navigates a parsed object to the projected values.
	Steps []db.Step
	// Chain, when non-nil, extracts the projected regions directly from
	// the index (a ⊂-chain per Section 5.2); Exact reports whether its
	// results are exactly the projected regions of each object.
	Chain *optimizer.Chain
	Exact bool
}

// JoinFastPlan implements Section 5.2's evaluation of a value comparison
// between two paths of the same object: "use the region index to locate the
// regions corresponding to the attributes specified by the two paths, load
// their content into the database, join, then locate the containing
// objects". L and R extract the two attributes' regions; only their bytes
// are read, and only matching objects are parsed.
type JoinFastPlan struct {
	L, R *optimizer.Chain
}

// Plan is the compiled form of a query.
type Plan struct {
	Query      *xsql.Query
	Vars       []VarPlan
	Trivial    bool   // provably empty w.r.t. the RIG (Proposition 3.3)
	TrivialWhy string // human-readable reason
	Projection ProjPlan
	// JoinFast, when non-nil, lets the engine evaluate the (sole)
	// path-comparison condition from leaf regions without parsing the
	// candidates.
	JoinFast *JoinFastPlan
}

// Var returns the plan for the given range variable.
func (p *Plan) Var(name string) *VarPlan {
	for i := range p.Vars {
		if p.Vars[i].Var == name {
			return &p.Vars[i]
		}
	}
	return nil
}

// Explain renders a human-readable account of the plan.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\n", p.Query)
	if p.Trivial {
		fmt.Fprintf(&sb, "trivially empty: %s\n", p.TrivialWhy)
		return sb.String()
	}
	for _, v := range p.Vars {
		fmt.Fprintf(&sb, "var %s (%s):\n", v.Var, v.NT)
		if v.Candidates == nil {
			fmt.Fprintf(&sb, "  candidates: full extent scan (no index support)\n")
			continue
		}
		if v.Original != nil && !algebra.Equal(v.Original, v.Candidates) {
			fmt.Fprintf(&sb, "  original:  %s  (cost %d)\n", algebra.Pretty(v.Original), algebra.Cost(v.Original))
		}
		fmt.Fprintf(&sb, "  candidates: %s  (cost %d)\n", algebra.Pretty(v.Candidates), algebra.Cost(v.Candidates))
		if v.Est != nil {
			fmt.Fprintf(&sb, "  estimate: ≤%d regions, %.0f work units (materializing)\n", v.Est.Card, v.Est.Cost)
		}
		if v.StreamEst != nil {
			fmt.Fprintf(&sb, "  estimate: ≤%d regions, %.0f work units (streaming, stops at LIMIT %d)\n",
				v.StreamEst.Card, v.StreamEst.Cost, p.Query.Limit)
		}
		for _, rw := range v.Rewrites {
			fmt.Fprintf(&sb, "  rewrite: %s\n", rw)
		}
		if v.Exact {
			fmt.Fprintf(&sb, "  exact: index computes the answer; no filtering needed\n")
		} else {
			fmt.Fprintf(&sb, "  superset: candidate regions are parsed and filtered\n")
		}
	}
	if p.JoinFast != nil {
		fmt.Fprintf(&sb, "join: region-level (§5.2): %s ⋈ %s on leaf text\n",
			algebra.Pretty(p.JoinFast.L.Expr()), algebra.Pretty(p.JoinFast.R.Expr()))
	}
	if p.Projection.Chain != nil {
		fmt.Fprintf(&sb, "projection: %s (exact=%v)\n", algebra.Pretty(p.Projection.Chain.Expr()), p.Projection.Exact)
	} else if len(p.Projection.Steps) > 0 {
		fmt.Fprintf(&sb, "projection: navigate %v on parsed objects\n", p.Projection.Steps)
	}
	return sb.String()
}

// idxInfo captures the instance's indexing choice: which names are indexed
// and which of them are selectively (scope-restricted) indexed.
type idxInfo struct {
	has   map[string]bool
	scope map[string]string
}

func newIdxInfo(in *index.Instance) idxInfo {
	ii := idxInfo{has: make(map[string]bool), scope: make(map[string]string)}
	for _, n := range in.Names() {
		ii.has[n] = true
		if w := in.Scope(n); w != "" {
			ii.scope[n] = w
		}
	}
	return ii
}

// blockers returns the globally indexed names — the only ones guaranteed to
// sit between regions on every realization, hence usable for direct
// inclusion and path-uniqueness reasoning.
func (ii idxInfo) blockers() map[string]bool {
	out := make(map[string]bool, len(ii.has))
	for n := range ii.has {
		if ii.scope[n] == "" {
			out[n] = true
		}
	}
	return out
}

// usableAt reports whether name can serve as an indexed anchor on a path
// whose earlier concrete names are prior: a scoped name requires its scope
// to occur among them (Section 7's selective indexing).
func (ii idxInfo) usableAt(name string, prior []string) bool {
	if !ii.has[name] {
		return false
	}
	w := ii.scope[name]
	if w == "" {
		return true
	}
	for _, p := range prior {
		if p == w {
			return true
		}
	}
	return false
}

// Compile plans the query against the instance's current indexing choice.
func (c *Catalog) Compile(q *xsql.Query, in *index.Instance) (*Plan, error) {
	return c.CompileStats(q, in, nil)
}

// CompileStats plans like Compile and, when st is non-nil, additionally
// applies the statistics-driven ordering of commutative operands (cheap,
// small side first) and records cardinality/cost estimates on each
// variable plan. Plans are equivalent either way; st only steers
// evaluation order.
func (c *Catalog) CompileStats(q *xsql.Query, in *index.Instance, st *stats.Stats) (*Plan, error) {
	plan := &Plan{Query: q}
	indexed := newIdxInfo(in)
	for _, f := range q.From {
		nt, ok := c.classes[f.Class]
		if !ok {
			return nil, fmt.Errorf("compile: class %q is not bound to a non-terminal", f.Class)
		}
		vp := VarPlan{Var: f.Var, NT: nt}
		expr, orig, exact, trivial, why := c.compileCond(q.Where, f.Var, nt, in, indexed, len(q.From) == 1)
		if trivial {
			plan.Trivial = true
			plan.TrivialWhy = why
		}
		if expr == nil {
			// No narrowing from the index; all regions of the class
			// non-terminal are candidates when it is indexed.
			if in.Has(nt) {
				expr = algebra.Name{Ident: nt}
				orig = expr
			}
			vp.Exact = exact
		} else {
			vp.Exact = exact
		}
		vp.Candidates = expr
		vp.Original = orig
		if expr != nil {
			g := c.projectedRIG(indexed)
			opt, rewrites := c.optimizeExpr(expr, g)
			vp.Candidates = opt
			vp.Rewrites = rewrites
			if st != nil {
				vp.Candidates = optimizer.OrderOperands(vp.Candidates, st)
				est := algebra.EstimateCost(vp.Candidates, st)
				vp.Est = &est
				if q.Limit > 0 {
					sest := algebra.StreamEstimate(vp.Candidates, st, q.Limit)
					vp.StreamEst = &sest
				}
			}
		}
		plan.Vars = append(plan.Vars, vp)
	}
	c.compileProjection(plan, q, in, indexed)
	c.compileJoinFast(plan, q, indexed)
	return plan, nil
}

// compileJoinFast detects the Section 5.2 join pattern — a single variable
// whose only condition compares two plain paths — and prepares the
// leaf-region chains for both sides. Both must be exact, or leaf regions
// from other contexts (an editor name when the path says authors) would
// produce false matches.
func (c *Catalog) compileJoinFast(plan *Plan, q *xsql.Query, indexed idxInfo) {
	if len(q.From) != 1 || plan.Trivial {
		return
	}
	cp, ok := q.Where.(xsql.CmpPaths)
	if !ok || cp.L.Var != q.From[0].Var || cp.R.Var != q.From[0].Var ||
		cp.L.HasVariables() || cp.R.HasVariables() {
		return
	}
	nt := plan.Vars[0].NT
	lch, lex := c.projChain(nt, cp.L.Attrs(), indexed)
	rch, rex := c.projChain(nt, cp.R.Attrs(), indexed)
	if lch != nil && rch != nil && lex && rex {
		plan.JoinFast = &JoinFastPlan{L: lch, R: rch}
	}
}

// projectedRIG returns the RIG of the indexed names (Section 6.1); with
// full indexing this equals the grammar RIG restricted to its nodes.
// Scoped names are kept as nodes but are transparent for edge contraction,
// since their regions may be absent on some realizations.
func (c *Catalog) projectedRIG(indexed idxInfo) *rig.Graph {
	keep := make([]string, 0, len(indexed.has))
	var opaque []string
	for n := range indexed.has {
		keep = append(keep, n)
		if indexed.scope[n] == "" {
			opaque = append(opaque, n)
		}
	}
	return c.RIG.ProjectTransparent(keep, opaque)
}

// compileProjection fills plan.Projection from the SELECT path.
func (c *Catalog) compileProjection(plan *Plan, q *xsql.Query, in *index.Instance, indexed idxInfo) {
	plan.Projection.Steps = q.Select.Steps()
	if len(q.Select.Segs) == 0 || q.Select.HasVariables() {
		return
	}
	vp := plan.Var(q.Select.Var)
	if vp == nil {
		return
	}
	ch, exact := c.projChain(vp.NT, q.Select.Attrs(), indexed)
	if ch == nil {
		return
	}
	plan.Projection.Chain = ch
	plan.Projection.Exact = exact
}

// projChain builds the optimized ⊂-chain extracting the regions of the
// attribute path rooted at nt (Section 5.2's projection translation). The
// chain's leaf must be indexed. exact reports that the chain's results are
// exactly the attribute regions AND that their text is the attribute value
// verbatim (a bare-terminal leaf) — the condition for answering from the
// index alone.
func (c *Catalog) projChain(nt string, attrs []string, indexed idxInfo) (*optimizer.Chain, bool) {
	full := append([]string{nt}, attrs...)
	if !c.RIG.IsPath(full...) {
		return nil, false
	}
	names, gaps, scoped, ok := contract(full, indexed)
	if !ok || names[len(names)-1] != full[len(full)-1] {
		return nil, false
	}
	blockers := indexed.blockers()
	direct := make([]bool, len(names)-1)
	exact := !scoped && c.faithful[full[len(full)-1]]
	for i := range direct {
		direct[i] = !gaps[i]
		if direct[i] && c.RIG.CountRealizingPaths(names[i], names[i+1], blockers) != rig.UniquePath {
			exact = false
		}
	}
	ch, err := optimizer.NewChain(names, direct, nil, true)
	if err != nil {
		return nil, false
	}
	opt, _ := optimizer.Optimize(ch, c.projectedRIG(indexed))
	return opt, exact
}

// compileCond compiles a WHERE condition into a candidate expression for
// one range variable. It returns the (unoptimized) expression or nil for
// "no narrowing", the same expression for EXPLAIN, whether it is exact, and
// whether the condition is provably empty. single reports a single-variable
// query, where negation handling may rely on exactness.
func (c *Catalog) compileCond(cond xsql.Cond, v, nt string, in *index.Instance, indexed idxInfo, single bool) (expr, orig algebra.Expr, exact, trivial bool, why string) {
	switch cond := cond.(type) {
	case nil:
		return nil, nil, true, false, ""
	case xsql.CmpConst:
		if cond.Path.Var != v {
			return nil, nil, true, false, ""
		}
		return c.compileComparison(nt, cond.Path.Segs, cond.Word, modeEquals, indexed)
	case xsql.CmpContains:
		if cond.Path.Var != v {
			return nil, nil, true, false, ""
		}
		return c.compileComparison(nt, cond.Path.Segs, cond.Word, modeContains, indexed)
	case xsql.CmpStarts:
		if cond.Path.Var != v {
			return nil, nil, true, false, ""
		}
		return c.compileComparison(nt, cond.Path.Segs, cond.Prefix, modeStarts, indexed)
	case xsql.CmpPaths:
		// Value joins cannot be decided by the index (Section 5.2);
		// existence chains narrow the candidates.
		var exprs []algebra.Expr
		for _, p := range []xsql.Path{cond.L, cond.R} {
			if p.Var != v {
				continue
			}
			e, _, _, triv, why := c.compileComparison(nt, p.Segs, "", modeExists, indexed)
			if triv {
				return nil, nil, false, true, why
			}
			if e != nil {
				exprs = append(exprs, e)
			}
		}
		if len(exprs) == 0 {
			return nil, nil, false, false, ""
		}
		e := exprs[0]
		if len(exprs) == 2 {
			e = algebra.Binary{Op: algebra.OpIntersect, L: e, R: exprs[1]}
		}
		return e, e, false, false, ""
	case xsql.And:
		le, lo, lex, ltriv, lwhy := c.compileCond(cond.L, v, nt, in, indexed, single)
		re, ro, rex, rtriv, rwhy := c.compileCond(cond.R, v, nt, in, indexed, single)
		if ltriv {
			return nil, nil, false, true, lwhy
		}
		if rtriv {
			return nil, nil, false, true, rwhy
		}
		switch {
		case le == nil:
			return re, ro, lex && rex, false, ""
		case re == nil:
			return le, lo, lex && rex, false, ""
		default:
			return algebra.Binary{Op: algebra.OpIntersect, L: le, R: re},
				algebra.Binary{Op: algebra.OpIntersect, L: lo, R: ro},
				lex && rex, false, ""
		}
	case xsql.Or:
		le, lo, lex, ltriv, _ := c.compileCond(cond.L, v, nt, in, indexed, single)
		re, ro, rex, rtriv, _ := c.compileCond(cond.R, v, nt, in, indexed, single)
		switch {
		case ltriv && rtriv:
			return nil, nil, false, true, "both OR branches are trivially empty"
		case ltriv:
			return re, ro, rex, false, ""
		case rtriv:
			return le, lo, lex, false, ""
		case le == nil || re == nil:
			// One branch is unconstrained: the union is everything.
			return nil, nil, lex && rex && le != nil && re != nil, false, ""
		default:
			return algebra.Binary{Op: algebra.OpUnion, L: le, R: re},
				algebra.Binary{Op: algebra.OpUnion, L: lo, R: ro},
				lex && rex, false, ""
		}
	case xsql.Not:
		se, so, sex, striv, _ := c.compileCond(cond.C, v, nt, in, indexed, single)
		if striv {
			// NOT of an empty condition constrains nothing.
			return nil, nil, true, false, ""
		}
		if se == nil || !sex || !single || !in.Has(nt) {
			// Complementing a superset would lose answers; fall back
			// to filtering.
			return nil, nil, false, false, ""
		}
		e := algebra.Binary{Op: algebra.OpDiff, L: algebra.Name{Ident: nt}, R: se}
		o := algebra.Binary{Op: algebra.OpDiff, L: algebra.Name{Ident: nt}, R: so}
		return e, o, true, false, ""
	default:
		return nil, nil, false, false, ""
	}
}

// pathItem is one element of a resolved path: a concrete non-terminal name
// or a star gap.
type pathItem struct {
	name string
	star bool
}

// ResolvePaths expands a query path rooted at the given non-terminal into
// the concrete full RIG paths it matches, with "*" marking star gaps. It is
// used by the index advisor, which reasons about paths without an instance.
// complete=false reports that ?-variable enumeration was capped.
func (c *Catalog) ResolvePaths(nt string, segs []xsql.Seg) (paths [][]string, complete bool) {
	resolved, complete := c.resolve(nt, segs)
	for _, items := range resolved {
		full := []string{nt}
		for _, it := range items {
			if it.star {
				full = append(full, "*")
			} else {
				full = append(full, it.name)
			}
		}
		paths = append(paths, full)
	}
	return paths, complete
}

// cmpMode distinguishes the selection flavours a comparison compiles to.
type cmpMode int

const (
	modeExists   cmpMode = iota // bare path existence (join narrowing)
	modeEquals                  // path = "constant"
	modeContains                // path CONTAINS "word"
	modeStarts                  // path STARTS "prefix"
)

// compileComparison compiles nt.segs ⟨mode⟩ constant into a candidate
// expression rooted at nt.
func (c *Catalog) compileComparison(nt string, segs []xsql.Seg, constant string, mode cmpMode, indexed idxInfo) (expr, orig algebra.Expr, exact, trivial bool, why string) {
	if err := checkVariableNames(segs); err != nil {
		return nil, nil, false, false, ""
	}
	if len(segs) == 0 && mode != modeExists {
		// A comparison on the whole object: approximate by word
		// containment on the object region.
		if !indexed.usableAt(nt, nil) {
			return nil, nil, false, false, ""
		}
		var e algebra.Expr = algebra.Name{Ident: nt}
		for _, w := range completeWords(constant, mode == modeStarts) {
			e = algebra.Select{Mode: algebra.SelContains, W: w, Arg: e}
		}
		exact := mode == modeContains && c.containsIsExact(nt, constant)
		return e, e, exact, false, ""
	}
	resolved, complete := c.resolve(nt, segs)
	if len(resolved) == 0 {
		return nil, nil, false, true,
			fmt.Sprintf("path %s.%s matches no RIG path (Proposition 3.3)", nt, segsString(segs))
	}
	var exprs []algebra.Expr
	allExact := complete
	for _, items := range resolved {
		e, ex, ok := c.buildChain(nt, items, constant, mode, indexed)
		if !ok {
			return nil, nil, false, false, "" // index offers no help
		}
		exprs = append(exprs, e)
		allExact = allExact && ex
	}
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = algebra.Binary{Op: algebra.OpUnion, L: out, R: e}
	}
	return out, out, allExact, false, ""
}

// containsIsExact reports whether σ-containment of the constant on regions
// of nt coincides with database word containment: the constant must be one
// clean word that cannot come from production literals.
func (c *Catalog) containsIsExact(nt, constant string) bool {
	toks := text.Tokenize(constant)
	if len(toks) != 1 || constant[toks[0].Start:toks[0].End] != constant {
		return false
	}
	return !c.litTokens[nt][constant]
}

// checkVariableNames rejects repeated path-variable names, which would
// require unification across occurrences.
func checkVariableNames(segs []xsql.Seg) error {
	seen := make(map[string]bool)
	for _, s := range segs {
		if (s.Star || s.Any) && s.Var != "" {
			if seen[s.Var] {
				return fmt.Errorf("compile: path variable %q occurs twice", s.Var)
			}
			seen[s.Var] = true
		}
	}
	return nil
}

func segsString(segs []xsql.Seg) string {
	parts := make([]string, len(segs))
	for i, s := range segs {
		parts[i] = s.String()
	}
	return strings.Join(parts, ".")
}

// resolve expands the path's segments against the full RIG: attribute
// segments must follow RIG edges, ?X segments are enumerated (each
// assignment produces one resolved path), and *X segments remain symbolic
// star gaps. complete=false reports that enumeration was capped and the
// result is a superset translation.
func (c *Catalog) resolve(nt string, segs []xsql.Seg) (paths [][]pathItem, complete bool) {
	complete = true
	paths = [][]pathItem{nil}
	cur := []string{nt} // last concrete name per partial path ("" after a star)
	for _, seg := range segs {
		var nextPaths [][]pathItem
		var nextCur []string
		switch {
		case seg.Star:
			for i, p := range paths {
				nextPaths = append(nextPaths, append(clonePath(p), pathItem{star: true}))
				nextCur = append(nextCur, starMark(cur[i]))
			}
		case seg.Any:
			for i, p := range paths {
				var succ []string
				if isStar(cur[i]) {
					// A ? after a star folds into the star; the
					// star cannot express the extra mandatory
					// step, so the translation widens.
					complete = false
					nextPaths = append(nextPaths, clonePath(p))
					nextCur = append(nextCur, cur[i])
					continue
				}
				succ = c.RIG.Successors(cur[i])
				if len(succ) > enumCap || tooMany(len(nextPaths), len(succ)) {
					complete = false
					nextPaths = append(nextPaths, append(clonePath(p), pathItem{star: true}))
					nextCur = append(nextCur, starMark(cur[i]))
					continue
				}
				for _, s := range succ {
					nextPaths = append(nextPaths, append(clonePath(p), pathItem{name: s}))
					nextCur = append(nextCur, s)
				}
			}
		default:
			for i, p := range paths {
				if !isStar(cur[i]) && !c.RIG.HasEdge(cur[i], seg.Attr) {
					continue // dead branch
				}
				if isStar(cur[i]) && !c.RIG.HasNode(seg.Attr) {
					continue
				}
				nextPaths = append(nextPaths, append(clonePath(p), pathItem{name: seg.Attr}))
				nextCur = append(nextCur, seg.Attr)
			}
		}
		paths, cur = nextPaths, nextCur
		if len(paths) == 0 {
			return nil, complete
		}
	}
	return paths, complete
}

func clonePath(p []pathItem) []pathItem { return append([]pathItem(nil), p...) }

func isStar(mark string) bool { return strings.HasPrefix(mark, "*") }

func starMark(prev string) string {
	if isStar(prev) {
		return prev
	}
	return "*" + prev
}

func tooMany(existing, factor int) bool { return existing*factor > enumCap }

// contract keeps the usable indexed names of a concrete full path,
// recording for each kept pair whether the gap between them crossed a star
// (gap=true → plain ⊃). Selectively indexed names are kept only when their
// scope occurs earlier on the path; scoped reports whether any kept name is
// scope-restricted (which disables the exactness classification). ok=false
// means the root itself is unusable.
func contract(full []string, indexed idxInfo) (names []string, gaps []bool, scoped, ok bool) {
	if !indexed.usableAt(full[0], nil) {
		return nil, nil, false, false
	}
	names = []string{full[0]}
	gap := false
	for i, n := range full[1:] {
		if n == "*" {
			gap = true
			continue
		}
		if indexed.usableAt(n, full[:i+1]) {
			if indexed.scope[n] != "" {
				scoped = true
			}
			names = append(names, n)
			gaps = append(gaps, gap)
			gap = false
		}
	}
	return names, gaps, scoped, true
}

// buildChain turns one resolved path into an inclusion chain over the
// indexed names, classifying exactness per Section 6.3.
func (c *Catalog) buildChain(nt string, items []pathItem, constant string, mode cmpMode, indexed idxInfo) (algebra.Expr, bool, bool) {
	full := []string{nt}
	for _, it := range items {
		if it.star {
			full = append(full, "*")
		} else {
			full = append(full, it.name)
		}
	}
	names, gaps, scoped, ok := contract(full, indexed)
	if !ok {
		return nil, false, false
	}
	trailingStar := len(full) > 1 && full[len(full)-1] == "*"
	leafKept := !trailingStar && names[len(names)-1] == full[len(full)-1]

	// Scoped anchors narrow candidates soundly but their coverage is not
	// modelled by the RIG analyses, so exactness is forfeited.
	exact := !scoped
	blockers := indexed.blockers()
	direct := make([]bool, len(names)-1)
	for i := range direct {
		direct[i] = !gaps[i]
		if direct[i] {
			if c.RIG.CountRealizingPaths(names[i], names[i+1], blockers) != rig.UniquePath {
				exact = false
			}
		}
	}
	if !leafKept {
		exact = false
	}

	// Selection on the deepest kept name. Its exactness depends on the
	// mode and on whether the region text is faithful to the value (see
	// Catalog): equality needs a bare-terminal leaf; word containment
	// needs a clean single word that no production literal can produce.
	leaf := names[len(names)-1]
	var sel *optimizer.Selection
	selWords := []string(nil)
	switch {
	case mode == modeExists:
		// Bare existence test: no selection.
	case mode == modeEquals && leafKept && c.faithful[leaf]:
		sel = &optimizer.Selection{Mode: algebra.SelEquals, Word: constant}
	case mode == modeContains && leafKept && c.containsIsExact(leaf, constant):
		sel = &optimizer.Selection{Mode: algebra.SelContains, Word: constant}
	case mode == modeStarts && leafKept && c.faithful[leaf]:
		sel = &optimizer.Selection{Mode: algebra.SelPrefix, Word: constant}
	default:
		// Approximate with containment of the constant's complete
		// words on the deepest kept region and filter. For a prefix
		// the final word may be cut short, so it is dropped.
		selWords = completeWords(constant, mode == modeStarts)
		exact = false
	}

	ch, err := optimizer.NewChain(names, direct, sel, false)
	if err != nil {
		return nil, false, false
	}
	expr := ch.Expr()
	for _, w := range selWords {
		expr = wrapDeepestSelect(expr, w)
	}
	return expr, exact, true
}

// completeWords tokenizes a constant into the words safe to require by
// containment; when the constant is a prefix, its final word may be
// truncated and is dropped.
func completeWords(constant string, prefix bool) []string {
	toks := text.Tokenize(constant)
	var out []string
	for i, tok := range toks {
		if prefix && i == len(toks)-1 && tok.End == len(constant) {
			break // possibly cut short
		}
		out = append(out, constant[tok.Start:tok.End])
	}
	return out
}

// wrapDeepestSelect pushes a containment selection onto the deepest name of
// a selection chain.
func wrapDeepestSelect(e algebra.Expr, w string) algebra.Expr {
	switch e := e.(type) {
	case algebra.Binary:
		return algebra.Binary{Op: e.Op, L: e.L, R: wrapDeepestSelect(e.R, w)}
	default:
		return algebra.Select{Mode: algebra.SelContains, W: w, Arg: e}
	}
}
