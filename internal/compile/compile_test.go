package compile_test

import (
	"strings"
	"testing"

	"qof/internal/algebra"
	"qof/internal/bibtex"
	. "qof/internal/compile"
	"qof/internal/grammar"
	"qof/internal/index"
	"qof/internal/testutil"
	"qof/internal/xsql"
)

// setup builds the BIBTEX catalog plus an instance with the given index
// spec over a small generated corpus.
func setup(t *testing.T, spec grammar.IndexSpec) (*Catalog, *index.Instance) {
	t.Helper()
	return testutil.NewBibInstance(t, 10, spec)
}

func compileOne(t *testing.T, cat *Catalog, in *index.Instance, src string) *Plan {
	t.Helper()
	plan, err := cat.Compile(xsql.MustParse(src), in)
	if err != nil {
		t.Fatalf("Compile(%s): %v", src, err)
	}
	return plan
}

func TestCompilePaperQueryFullIndex(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	plan := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)
	vp := plan.Var("r")
	if vp == nil || vp.Candidates == nil {
		t.Fatalf("no candidates: %+v", plan)
	}
	// Optimized form per Section 5.1 (equality selection, so the deepest
	// ⊃d cannot use the rightmost rule; only-path conversions and the
	// Name shortening still apply).
	want := `Reference > Authors > equals(Last_Name, "Chang")`
	if got := vp.Candidates.String(); got != want {
		t.Fatalf("candidates = %q, want %q", got, want)
	}
	if !vp.Exact {
		t.Error("full indexing with unique paths must be exact")
	}
	if algebra.Cost(vp.Candidates) >= algebra.Cost(vp.Original) {
		t.Errorf("optimization did not reduce cost: %d vs %d",
			algebra.Cost(vp.Candidates), algebra.Cost(vp.Original))
	}
	if len(vp.Rewrites) == 0 {
		t.Error("no rewrites recorded")
	}
	if plan.Trivial {
		t.Error("plan flagged trivial")
	}
	// EXPLAIN mentions both expressions.
	exp := plan.Explain()
	for _, wantSub := range []string{"original", "candidates", "exact"} {
		if !strings.Contains(exp, wantSub) {
			t.Errorf("Explain missing %q:\n%s", wantSub, exp)
		}
	}
}

func TestCompileOriginalIsDirectChain(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	plan := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)
	want := `Reference >d Authors >d Name >d equals(Last_Name, "Chang")`
	if got := plan.Var("r").Original.String(); got != want {
		t.Errorf("original = %q, want %q", got, want)
	}
}

func TestCompilePartialIndexSuperset(t *testing.T) {
	// Section 6.1's example: only {Reference, Key, Last_Name} indexed.
	cat, in := setup(t, grammar.IndexSpec{
		Names: []string{bibtex.NTReference, bibtex.NTKey, bibtex.NTLastName},
	})
	plan := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)
	vp := plan.Var("r")
	// Section 6.1's pre-optimization expression…
	if got := vp.Original.String(); got != `Reference >d equals(Last_Name, "Chang")` {
		t.Fatalf("original = %q", got)
	}
	// …which the paper notes "can be further optimized": on the projected
	// RIG the edge is the only path, so ⊃d becomes ⊃.
	want := `Reference > equals(Last_Name, "Chang")`
	if got := vp.Candidates.String(); got != want {
		t.Fatalf("candidates = %q, want %q", got, want)
	}
	if vp.Exact {
		t.Error("two realizing paths (Authors, Editors): must be a superset")
	}
}

func TestCompilePartialIndexExact(t *testing.T) {
	// With Authors and Editors indexed, each contracted edge has a unique
	// realizing path and the leaf is indexed: Section 6.3 exactness.
	cat, in := setup(t, grammar.IndexSpec{
		Names: []string{bibtex.NTReference, bibtex.NTAuthors, bibtex.NTEditors, bibtex.NTLastName},
	})
	plan := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)
	vp := plan.Var("r")
	if !vp.Exact {
		t.Fatalf("expected exact plan, got %s", plan.Explain())
	}
	// Both projected edges are unique paths, so both ⊃d convert to ⊃.
	want := `Reference > Authors > equals(Last_Name, "Chang")`
	if got := vp.Candidates.String(); got != want {
		t.Errorf("candidates = %q, want %q", got, want)
	}
}

func TestCompileRootUnindexed(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{Names: []string{bibtex.NTLastName}})
	plan := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)
	vp := plan.Var("r")
	if vp.Candidates != nil {
		t.Fatalf("no index support expected, got %v", vp.Candidates)
	}
	if !strings.Contains(plan.Explain(), "full extent scan") {
		t.Errorf("Explain:\n%s", plan.Explain())
	}
}

func TestCompileTrivialPath(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	plan := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"`)
	if !plan.Trivial {
		t.Fatalf("Title.Last_Name should be trivial: %s", plan.Explain())
	}
	if !strings.Contains(plan.Explain(), "trivially empty") {
		t.Errorf("Explain:\n%s", plan.Explain())
	}
}

func TestCompileBooleanComposition(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	plan := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang" AND r.Key = "Key000002"`)
	vp := plan.Var("r")
	if vp.Candidates == nil || !vp.Exact {
		t.Fatalf("AND: %s", plan.Explain())
	}
	if b, ok := vp.Candidates.(algebra.Binary); !ok || b.Op != algebra.OpIntersect {
		t.Errorf("AND compiles to %v", vp.Candidates)
	}
	// OR.
	plan2 := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang" OR r.Editors.Name.Last_Name = "Corliss"`)
	if b, ok := plan2.Var("r").Candidates.(algebra.Binary); !ok || b.Op != algebra.OpUnion {
		t.Errorf("OR compiles to %v", plan2.Var("r").Candidates)
	}
	if !plan2.Var("r").Exact {
		t.Error("OR of exact chains is exact")
	}
	// NOT of an exact chain.
	plan3 := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE NOT r.Authors.Name.Last_Name = "Chang"`)
	vp3 := plan3.Var("r")
	if b, ok := vp3.Candidates.(algebra.Binary); !ok || b.Op != algebra.OpDiff {
		t.Errorf("NOT compiles to %v", vp3.Candidates)
	}
	if !vp3.Exact {
		t.Error("NOT of exact is exact")
	}
	// NOT of an inexact chain falls back to the full extent.
	cat2, in2 := setup(t, grammar.IndexSpec{
		Names: []string{bibtex.NTReference, bibtex.NTKey, bibtex.NTLastName},
	})
	plan4 := compileOne(t, cat2, in2,
		`SELECT r FROM References r WHERE NOT r.Authors.Name.Last_Name = "Chang"`)
	vp4 := plan4.Var("r")
	if vp4.Exact {
		t.Error("NOT of superset cannot be exact")
	}
	if vp4.Candidates.String() != "Reference" {
		t.Errorf("NOT fallback = %v", vp4.Candidates)
	}
}

func TestCompileStarVariable(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	// Section 5.3: r.*X.Last_Name compiles to a single plain inclusion.
	plan := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"`)
	vp := plan.Var("r")
	want := `Reference > equals(Last_Name, "Chang")`
	if got := vp.Candidates.String(); got != want {
		t.Fatalf("star candidates = %q, want %q", got, want)
	}
	if !vp.Exact {
		t.Error("star over a fully indexed leaf is exact")
	}
	// The star plan is cheaper than enumerating both concrete paths.
	enumCost := 2 * algebra.Cost(algebra.MustParse(`Reference > Authors > equals(Last_Name, "x")`))
	if algebra.Cost(vp.Candidates) >= enumCost {
		t.Errorf("star cost %d !< enumeration cost %d", algebra.Cost(vp.Candidates), enumCost)
	}
}

func TestCompileAnyVariable(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	// r.?X.Name.Last_Name enumerates X ∈ {Authors, Editors}.
	plan := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.?X.Name.Last_Name = "Chang"`)
	vp := plan.Var("r")
	got := vp.Candidates.String()
	if !strings.Contains(got, "Authors") || !strings.Contains(got, "Editors") {
		t.Fatalf("enumeration = %q", got)
	}
	if b, ok := vp.Candidates.(algebra.Binary); !ok || b.Op != algebra.OpUnion {
		t.Fatalf("expected union, got %v", vp.Candidates)
	}
	if !vp.Exact {
		t.Error("complete enumeration is exact")
	}
}

func TestCompileJoinCondition(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	plan := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`)
	vp := plan.Var("r")
	if vp.Exact {
		t.Error("joins cannot be computed by the index (Section 5.2)")
	}
	got := vp.Candidates.String()
	// Existence chains for both sides, intersected.
	if !strings.Contains(got, "Editors") || !strings.Contains(got, "Authors") || !strings.Contains(got, "&") {
		t.Errorf("join candidates = %q", got)
	}
}

func TestCompileProjection(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	plan := compileOne(t, cat, in,
		`SELECT r.Authors.Name.Last_Name FROM References r`)
	pp := plan.Projection
	if pp.Chain == nil {
		t.Fatalf("no projection chain: %s", plan.Explain())
	}
	// Optimized per Section 5.2: Last_Name ⊂ Authors ⊂ Reference.
	want := `Last_Name < Authors < Reference`
	if got := pp.Chain.Expr().String(); got != want {
		t.Errorf("projection = %q, want %q", got, want)
	}
	if !pp.Exact {
		t.Error("fully indexed projection is exact")
	}
	if len(pp.Steps) != 3 {
		t.Errorf("steps = %v", pp.Steps)
	}
	// Unindexed leaf: no index-side projection.
	cat2, in2 := setup(t, grammar.IndexSpec{Names: []string{bibtex.NTReference, bibtex.NTAuthors}})
	plan2 := compileOne(t, cat2, in2, `SELECT r.Authors.Name.Last_Name FROM References r`)
	if plan2.Projection.Chain != nil {
		t.Error("projection chain without an indexed leaf")
	}
}

func TestCompileNoWhere(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	plan := compileOne(t, cat, in, `SELECT r FROM References r`)
	vp := plan.Var("r")
	if vp.Candidates == nil || vp.Candidates.String() != "Reference" {
		t.Fatalf("candidates = %v", vp.Candidates)
	}
	if !vp.Exact {
		t.Error("no WHERE: all regions, exact")
	}
}

func TestCompileUnboundClass(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	_, err := cat.Compile(xsql.MustParse(`SELECT x FROM Unknown x`), in)
	if err == nil || !strings.Contains(err.Error(), "not bound") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileWholeObjectComparison(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	plan := compileOne(t, cat, in, `SELECT r FROM References r WHERE r = "Chang"`)
	vp := plan.Var("r")
	if vp.Exact {
		t.Error("whole-object comparison must filter")
	}
	if !strings.Contains(vp.Candidates.String(), `contains`) {
		t.Errorf("candidates = %v", vp.Candidates)
	}
}

func TestCompileContains(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	// Single clean word on an unfaithful leaf (Abstract is quoted): still
	// exact because word containment is insensitive to the quotes as long
	// as the word cannot come from literals.
	plan := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Abstract CONTAINS "differentiation"`)
	vp := plan.Var("r")
	if !vp.Exact {
		t.Fatalf("single-word CONTAINS should be exact:\n%s", plan.Explain())
	}
	want := `Reference > contains(Abstract, "differentiation")`
	if got := vp.Candidates.String(); got != want {
		t.Errorf("candidates = %q, want %q", got, want)
	}
	// Multi-word constants are supersets.
	plan2 := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Abstract CONTAINS "automatic differentiation"`)
	if plan2.Var("r").Exact {
		t.Error("phrase CONTAINS cannot be exact")
	}
	got := plan2.Var("r").Candidates.String()
	if !strings.Contains(got, `"automatic"`) || !strings.Contains(got, `"differentiation"`) {
		t.Errorf("phrase candidates = %q", got)
	}
	// A word that occurs in production literals (INCOLLECTION markup)
	// must not be certified exact.
	plan3 := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Abstract CONTAINS "x"`)
	if !plan3.Var("r").Exact {
		t.Log("sanity: 'x' is not a literal token")
	}
	plan4 := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r CONTAINS "INCOLLECTION"`)
	if plan4.Var("r").Exact {
		t.Error("literal-token CONTAINS must not be exact")
	}
	// Whole-object CONTAINS with a clean data word is exact.
	plan5 := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r CONTAINS "Chang"`)
	if !plan5.Var("r").Exact {
		t.Errorf("whole-object CONTAINS should be exact:\n%s", plan5.Explain())
	}
}

func TestCompileJoinFastPlan(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	plan := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`)
	if plan.JoinFast == nil {
		t.Fatalf("expected JoinFast plan:\n%s", plan.Explain())
	}
	l := plan.JoinFast.L.Expr().String()
	r := plan.JoinFast.R.Expr().String()
	if !strings.Contains(l, "Editors") || !strings.Contains(r, "Authors") {
		t.Errorf("chains: L=%q R=%q", l, r)
	}
	// Unfaithful leaves (Name is a tuple) disable the fast join.
	plan2 := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Editors.Name = r.Authors.Name`)
	if plan2.JoinFast != nil {
		t.Error("tuple-valued join leaf must not use JoinFast")
	}
	// Extra conditions disable it (the pattern covers the sole-condition case).
	plan3 := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name AND r.Key = "k"`)
	if plan3.JoinFast != nil {
		t.Error("JoinFast with extra conditions")
	}
}

func TestResolvePaths(t *testing.T) {
	cat, _ := setup(t, grammar.IndexSpec{})
	paths, complete := cat.ResolvePaths(bibtex.NTReference, xsql.MustParse(
		`SELECT r FROM References r WHERE r.?X.Name.Last_Name = "c"`).Where.(xsql.CmpConst).Path.Segs)
	if !complete || len(paths) != 2 {
		t.Fatalf("paths = %v complete=%v", paths, complete)
	}
	star, _ := cat.ResolvePaths(bibtex.NTReference, xsql.MustParse(
		`SELECT r FROM References r WHERE r.*X.Last_Name = "c"`).Where.(xsql.CmpConst).Path.Segs)
	if len(star) != 1 || star[0][1] != "*" {
		t.Fatalf("star paths = %v", star)
	}
}

func TestCompileMultiVar(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	plan := compileOne(t, cat, in,
		`SELECT r FROM References r, References s WHERE r.Authors.Name.Last_Name = "Chang" AND s.Key = r.Key`)
	if len(plan.Vars) != 2 {
		t.Fatalf("vars = %d", len(plan.Vars))
	}
	vr, vs := plan.Var("r"), plan.Var("s")
	if vr.Candidates == nil || !strings.Contains(vr.Candidates.String(), "Authors") {
		t.Errorf("r candidates = %v", vr.Candidates)
	}
	// s is narrowed only by the join existence chain.
	if vs.Candidates == nil {
		t.Errorf("s candidates = %v", vs.Candidates)
	}
	if vs.Exact {
		t.Error("join var cannot be exact")
	}
}

func TestCompileTrivialOrBranchPruned(t *testing.T) {
	cat, in := setup(t, grammar.IndexSpec{})
	// The left branch is trivially empty (Title has no Last_Name); the
	// union must collapse to the right branch alone.
	plan := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Title.Last_Name = "x" OR r.Key = "Key000001"`)
	vp := plan.Var("r")
	if plan.Trivial {
		t.Fatal("whole plan flagged trivial")
	}
	got := vp.Candidates.String()
	if strings.Contains(got, "Title") || strings.Contains(got, "+") {
		t.Errorf("trivial branch not pruned: %q", got)
	}
	if !vp.Exact {
		t.Errorf("pruned OR should stay exact:\n%s", plan.Explain())
	}
	// Both branches trivial → plan trivial.
	plan2 := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE r.Title.Last_Name = "x" OR r.Key.Authors = "y"`)
	if !plan2.Trivial {
		t.Errorf("both-trivial OR:\n%s", plan2.Explain())
	}
	// NOT of a trivial condition constrains nothing but is exact.
	plan3 := compileOne(t, cat, in,
		`SELECT r FROM References r WHERE NOT r.Title.Last_Name = "x"`)
	if plan3.Trivial || !plan3.Var("r").Exact {
		t.Errorf("NOT trivial:\n%s", plan3.Explain())
	}
	if plan3.Var("r").Candidates.String() != "Reference" {
		t.Errorf("candidates = %v", plan3.Var("r").Candidates)
	}
}
