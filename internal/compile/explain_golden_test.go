package compile_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qof/internal/qgen"
	"qof/internal/stats"
	"qof/internal/xsql"
)

var update = flag.Bool("update", false, "rewrite the Explain golden files")

// explainCorpusSeed pins the generated corpora so plans (and their printed
// costs) are stable across runs.
const explainCorpusSeed = 1994

// explainWorkload lists, per domain, queries whose plans cover the
// interesting shapes: exact index chains, superset candidates under partial
// indexing, boolean composition, star/any variables, index-only projection,
// region-level joins, and trivially empty paths.
var explainWorkload = map[string][]string{
	"bibtex": {
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`,
		`SELECT r FROM References r WHERE r.Year = "1982" OR r.Authors.Name.Last_Name = "Corliss"`,
		`SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`,
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = r.Editors.Name.Last_Name`,
		`SELECT r FROM References r WHERE r.*X.Last_Name = "Tompa"`,
		`SELECT r FROM References r WHERE r.Key.Authors = "x"`,
		`SELECT r FROM References r LIMIT 3`,
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang" LIMIT 1`,
	},
	"sgml": {
		`SELECT s FROM Sections s WHERE s.Title = "section 1-1"`,
		`SELECT s FROM Sections s WHERE s.*X.Para CONTAINS "needle"`,
		`SELECT s.Title FROM Sections s WHERE s.Para CONTAINS "needle"`,
		`SELECT d FROM Docs d WHERE d.Section.Title STARTS "section"`,
		`SELECT s FROM Sections s WHERE s.*X.Para CONTAINS "needle" LIMIT 2`,
	},
	"logs": {
		`SELECT e FROM Entries e WHERE e.Level = "ERROR"`,
		`SELECT e FROM Entries e WHERE e.Level = "ERROR" AND e.Proc.Program = "nginx"`,
		`SELECT e.Message FROM Entries e WHERE e.Proc.Program = "nginx"`,
		`SELECT e FROM Entries e WHERE e.?X.Pid = "100"`,
		`SELECT e FROM Entries e WHERE e.Level = "ERROR" LIMIT 5`,
	},
}

// TestExplainGolden renders Plan.Explain for a fixed workload per domain
// under every index specification and compares against golden files. Plans
// are compiled with statistics so the goldens pin the estimate lines too —
// including the streaming, limit-capped estimates of LIMIT queries. Run
// with -update to regenerate them after an intentional planner change.
func TestExplainGolden(t *testing.T) {
	for _, d := range qgen.Domains(explainCorpusSeed) {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			var sb strings.Builder
			for si, spec := range d.Specs {
				in, _, err := d.Cat.Grammar.BuildInstance(d.Doc, spec)
				if err != nil {
					t.Fatalf("spec %d: %v", si, err)
				}
				st := stats.Collect(in)
				fmt.Fprintf(&sb, "==== spec %d: %s\n", si, specLabel(spec.Names, spec.Scoped != nil))
				for _, src := range explainWorkload[d.Name] {
					plan, err := d.Cat.CompileStats(xsql.MustParse(src), in, st)
					if err != nil {
						t.Fatalf("spec %d: CompileStats(%s): %v", si, src, err)
					}
					sb.WriteString(plan.Explain())
					sb.WriteString("\n")
				}
			}
			got := sb.String()

			path := filepath.Join("testdata", "explain", d.Name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (run `go test ./internal/compile -run TestExplainGolden -update` to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("Explain output drifted from %s:\n%s\nrerun with -update if the change is intentional", path, firstDiff(got, string(want)))
			}
		})
	}
}

// specLabel summarizes an index spec for the golden file headers.
func specLabel(names []string, scoped bool) string {
	if len(names) == 0 && !scoped {
		return "full indexing"
	}
	label := strings.Join(names, ",")
	if scoped {
		label += " (+scoped)"
	}
	return label
}

// firstDiff points at the first line where got and want diverge.
func firstDiff(got, want string) string {
	gl := strings.Split(got, "\n")
	wl := strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			return fmt.Sprintf("line %d:\n  got:  %q\n  want: %q", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d lines", len(gl), len(wl))
}
