package compile

import (
	"fmt"
	"sync"
	"testing"
)

func TestPlanCacheLRU(t *testing.T) {
	pc := NewPlanCache(2)
	a, b, c := &Plan{}, &Plan{}, &Plan{}
	pc.Put("a", a)
	pc.Put("b", b)
	if got, ok := pc.Get("a"); !ok || got != a {
		t.Fatal("a missing after insert")
	}
	pc.Put("c", c) // evicts b, the least recently used
	if _, ok := pc.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if got, ok := pc.Get("a"); !ok || got != a {
		t.Error("a should survive: it was used after b")
	}
	if got, ok := pc.Get("c"); !ok || got != c {
		t.Error("c missing")
	}
	if pc.Len() != 2 {
		t.Errorf("len = %d, want 2", pc.Len())
	}
	hits, misses := pc.Counters()
	if hits != 3 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 3/1", hits, misses)
	}
}

func TestPlanCacheRefresh(t *testing.T) {
	pc := NewPlanCache(1)
	p1, p2 := &Plan{}, &Plan{}
	pc.Put("k", p1)
	pc.Put("k", p2)
	if got, _ := pc.Get("k"); got != p2 {
		t.Error("refresh did not replace the plan")
	}
	if pc.Len() != 1 {
		t.Errorf("len = %d, want 1", pc.Len())
	}
}

func TestPlanCacheTinyCapacity(t *testing.T) {
	pc := NewPlanCache(0) // clamped to 1
	pc.Put("a", &Plan{})
	pc.Put("b", &Plan{})
	if pc.Len() != 1 {
		t.Errorf("len = %d, want 1", pc.Len())
	}
}

// TestPlanCacheConcurrent hammers the cache from many goroutines; run under
// -race it proves Get/Put/Len/Counters are safe to share.
func TestPlanCacheConcurrent(t *testing.T) {
	pc := NewPlanCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("q%d", (g+i)%16)
				if _, ok := pc.Get(key); !ok {
					pc.Put(key, &Plan{})
				}
				pc.Len()
			}
		}(g)
	}
	wg.Wait()
	if pc.Len() > 8 {
		t.Errorf("len = %d exceeds capacity", pc.Len())
	}
}
