package compile

import (
	"container/list"
	"sync"

	"qof/internal/faultinject"
)

// PlanCache is a bounded LRU cache of compiled plans keyed by normalized
// query text (Query.String()). Compilation — parse resolution against the
// RIG, optimization, exactness classification — is pure with respect to one
// instance's indexing choice, so a cached plan is valid for as long as the
// instance's set of indexed names is unchanged; the engine keys one cache
// per instance and discards it on reindexing.
//
// Plans are immutable after compilation, so a cached *Plan may be shared by
// any number of concurrent executions. The cache itself is safe for
// concurrent use.
type PlanCache struct {
	mu  sync.Mutex
	cap int                      // immutable after construction
	ll  *list.List               // guarded by mu; front = most recently used
	m   map[string]*list.Element // guarded by mu

	hits, misses int // guarded by mu
}

type planEntry struct {
	key  string
	plan *Plan
}

// NewPlanCache creates a cache holding at most capacity plans; capacity < 1
// is treated as 1.
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the cached plan for the key, marking it most recently used.
// An injected plancache.get fault degrades to a miss — the query recompiles
// instead of failing.
func (pc *PlanCache) Get(key string) (*Plan, bool) {
	if err := faultinject.Hit(faultinject.PlanCacheGet); err != nil {
		return nil, false
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.m[key]
	if !ok {
		pc.misses++
		return nil, false
	}
	pc.hits++
	pc.ll.MoveToFront(el)
	return el.Value.(*planEntry).plan, true
}

// Put inserts (or refreshes) the plan under the key, evicting the least
// recently used entry when the cache is full. An injected plancache.put
// fault drops the entry rather than caching a possibly-torn plan.
func (pc *PlanCache) Put(key string, p *Plan) {
	if err := faultinject.Hit(faultinject.PlanCachePut); err != nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.m[key]; ok {
		el.Value.(*planEntry).plan = p
		pc.ll.MoveToFront(el)
		return
	}
	pc.m[key] = pc.ll.PushFront(&planEntry{key: key, plan: p})
	for pc.ll.Len() > pc.cap {
		oldest := pc.ll.Back()
		pc.ll.Remove(oldest)
		delete(pc.m, oldest.Value.(*planEntry).key)
	}
}

// Len reports the number of cached plans.
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.ll.Len()
}

// Counters reports cumulative hit and miss counts, for throughput reports.
func (pc *PlanCache) Counters() (hits, misses int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses
}
