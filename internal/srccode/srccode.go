// Package srccode provides the fourth domain from the paper's motivation
// list ("electronic documents, programs, log files…"): a structuring schema
// for source files in a small imperative language, with function and
// struct declarations — the software-engineering-data scenario the paper
// reports for the Hy+ system. Declarations are disjunctive (a Decl is a
// function or a struct), exercising grammars with alternatives.
//
// A file looks like:
//
//	func compute(alpha int, beta str) {
//	  do helper(alpha);
//	  # computes the thing quickly
//	  do log(beta, alpha);
//	}
//	struct Point {
//	  x int; y int
//	}
package srccode

import (
	"fmt"
	"math/rand"
	"strings"

	"qof/internal/compile"
	"qof/internal/grammar"
)

// Non-terminal names of the schema.
const (
	NTSrcFile   = "SrcFile"
	NTDecl      = "Decl"
	NTFuncName  = "FuncName"
	NTParam     = "Param"
	NTParamName = "ParamName"
	NTParamType = "ParamType"
	NTStmt      = "Stmt"
	NTCallee    = "Callee"
	NTArg       = "Arg"
	NTComment   = "Comment"
	NTTypeName  = "TypeName"
	NTField     = "Field"
	NTFieldName = "FieldName"
	NTFieldType = "FieldType"
)

// ClassDecls is the XSQL class bound to Decl regions (functions and
// structs alike; the attributes present distinguish them).
const ClassDecls = "Decls"

// Grammar builds the source-code structuring schema.
func Grammar() *grammar.Grammar {
	g := grammar.NewGrammar(NTSrcFile)
	g.MustAddTerminal("Ident", `[A-Za-z_][A-Za-z0-9_]*`)
	g.MustAddTerminal("Line", `[^\n]+`)

	g.AddProduction(NTSrcFile, grammar.Rep(NTDecl, ""))
	// Alternative 1: function declarations.
	g.AddProduction(NTDecl,
		grammar.Lit("func "), grammar.NT(NTFuncName),
		grammar.Lit("("), grammar.Rep(NTParam, ","), grammar.Lit(")"),
		grammar.Lit("{"), grammar.Rep(NTStmt, ""), grammar.Lit("}"))
	// Alternative 2: struct declarations.
	g.AddProduction(NTDecl,
		grammar.Lit("struct "), grammar.NT(NTTypeName),
		grammar.Lit("{"), grammar.Rep(NTField, ";"), grammar.Lit("}"))

	g.AddProduction(NTFuncName, grammar.Term("Ident"))
	g.AddProduction(NTTypeName, grammar.Term("Ident"))
	g.AddProduction(NTParam, grammar.NT(NTParamName), grammar.NT(NTParamType))
	g.AddProduction(NTParamName, grammar.Term("Ident"))
	g.AddProduction(NTParamType, grammar.Term("Ident"))
	g.AddProduction(NTField, grammar.NT(NTFieldName), grammar.NT(NTFieldType))
	g.AddProduction(NTFieldName, grammar.Term("Ident"))
	g.AddProduction(NTFieldType, grammar.Term("Ident"))
	// Statements: calls or comments.
	g.AddProduction(NTStmt,
		grammar.Lit("do "), grammar.NT(NTCallee),
		grammar.Lit("("), grammar.Rep(NTArg, ","), grammar.Lit(")"), grammar.Lit(";"))
	g.AddProduction(NTStmt, grammar.Lit("#"), grammar.NT(NTComment))
	g.AddProduction(NTCallee, grammar.Term("Ident"))
	g.AddProduction(NTArg, grammar.Term("Ident"))
	g.AddProduction(NTComment, grammar.Term("Line"))
	if err := g.Validate(); err != nil {
		panic("srccode: invalid grammar: " + err.Error())
	}
	return g
}

// Catalog builds the compile catalog with the standard class binding.
func Catalog() *compile.Catalog {
	cat := compile.NewCatalog(Grammar())
	cat.Bind(ClassDecls, NTDecl)
	return cat
}

// Config controls the source generator.
type Config struct {
	NumFuncs   int
	NumStructs int
	Seed       int64
	// TargetCallee is called by TargetShare of the functions.
	TargetCallee string
	TargetShare  float64
}

// DefaultConfig generates n functions and n/4 structs; 10% of functions
// call "parse".
func DefaultConfig(n int) Config {
	return Config{
		NumFuncs:     n,
		NumStructs:   n / 4,
		Seed:         1994,
		TargetCallee: "parse",
		TargetShare:  0.10,
	}
}

// Stats is the generator's ground truth.
type Stats struct {
	Decls         int
	FuncsCalling  int // functions calling TargetCallee
	StructsWithID int // structs having a field of type "id"
}

// Generate produces a deterministic synthetic source file.
func Generate(cfg Config) (string, Stats) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sb strings.Builder
	var st Stats
	types := []string{"int", "str", "vector", "matrix", "id"}
	callees := []string{"helper", "log", "emit", "reduce", "walk", "hash"}
	words := []string{"computes", "fast", "slow", "caches", "recursive", "helper", "lookup"}

	ident := func(prefix string, i int) string { return fmt.Sprintf("%s%03d", prefix, i) }
	for i := 0; i < cfg.NumFuncs; i++ {
		fmt.Fprintf(&sb, "func %s(", ident("fn", i))
		params := 1 + rng.Intn(3)
		for p := 0; p < params; p++ {
			if p > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s %s", ident("arg", p), types[rng.Intn(len(types))])
		}
		sb.WriteString(") {\n")
		calls := cfg.TargetShare > 0 && rng.Float64() < cfg.TargetShare
		if calls {
			st.FuncsCalling++
		}
		stmts := 1 + rng.Intn(4)
		targetAt := -1
		if calls {
			targetAt = rng.Intn(stmts)
		}
		for s := 0; s < stmts; s++ {
			if rng.Intn(4) == 0 {
				fmt.Fprintf(&sb, "  # %s %s %s\n",
					words[rng.Intn(len(words))], words[rng.Intn(len(words))], words[rng.Intn(len(words))])
			}
			callee := callees[rng.Intn(len(callees))]
			if s == targetAt {
				callee = cfg.TargetCallee
			}
			fmt.Fprintf(&sb, "  do %s(%s);\n", callee, ident("arg", rng.Intn(2)))
		}
		sb.WriteString("}\n")
		st.Decls++
	}
	for i := 0; i < cfg.NumStructs; i++ {
		fmt.Fprintf(&sb, "struct %s {\n", ident("Type", i))
		fields := 1 + rng.Intn(4)
		hasID := false
		for f := 0; f < fields; f++ {
			if f > 0 {
				sb.WriteString(";\n")
			}
			ft := types[rng.Intn(len(types))]
			if ft == "id" {
				hasID = true
			}
			fmt.Fprintf(&sb, "  %s %s", ident("field", f), ft)
		}
		sb.WriteString("\n}\n")
		if hasID {
			st.StructsWithID++
		}
		st.Decls++
	}
	return sb.String(), st
}
