package srccode_test

import (
	"testing"

	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/scan"
	"qof/internal/srccode"
	"qof/internal/text"
	"qof/internal/xsql"
)

func build(t *testing.T, n int) (*engine.Engine, *text.Document, srccode.Stats) {
	t.Helper()
	content, st := srccode.Generate(srccode.DefaultConfig(n))
	cat := srccode.Catalog()
	doc := text.NewDocument("prog.src", content)
	in, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	return engine.New(cat, in), doc, st
}

func TestGeneratedSourceParses(t *testing.T) {
	eng, _, st := build(t, 60)
	in := eng.Instance()
	if got := in.MustRegion(srccode.NTDecl).Len(); got != st.Decls {
		t.Fatalf("decls = %d, want %d", got, st.Decls)
	}
	if !in.Universe().ProperlyNested() {
		t.Error("regions must nest")
	}
	if err := eng.Catalog().Grammar.DeriveRIG().Satisfies(in); err != nil {
		t.Errorf("RIG violated: %v", err)
	}
	// The disjunctive Decl produces edges for both alternatives.
	rig := eng.Catalog().RIG
	if !rig.HasEdge(srccode.NTDecl, srccode.NTFuncName) || !rig.HasEdge(srccode.NTDecl, srccode.NTTypeName) {
		t.Error("disjunctive edges missing")
	}
}

func TestSourceQueries(t *testing.T) {
	eng, doc, st := build(t, 120)
	cases := []struct {
		src  string
		want int
	}{
		{`SELECT d FROM Decls d WHERE d.Stmt.Callee = "parse"`, st.FuncsCalling},
		{`SELECT d FROM Decls d WHERE d.Field.FieldType = "id"`, st.StructsWithID},
		{`SELECT d FROM Decls d WHERE d.*X.Callee = "parse"`, st.FuncsCalling},
	}
	for _, tc := range cases {
		q := xsql.MustParse(tc.src)
		res, err := eng.Execute(q)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if res.Stats.Results != tc.want {
			t.Errorf("%s: results = %d, want %d\n%s", tc.src, res.Stats.Results, tc.want, res.Plan.Explain())
		}
		base, err := scan.FullScan(eng.Catalog(), doc, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(base.Objects) != tc.want {
			t.Errorf("%s: baseline = %d, want %d", tc.src, len(base.Objects), tc.want)
		}
	}
}

func TestCommentSearch(t *testing.T) {
	eng, _, _ := build(t, 80)
	res, err := eng.Execute(xsql.MustParse(
		`SELECT d.FuncName FROM Decls d WHERE d.Stmt.Comment CONTAINS "recursive"`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Results == 0 {
		t.Fatal("no recursive comments found; generator vocabulary changed?")
	}
	if !res.Stats.Exact {
		t.Errorf("comment CONTAINS should be exact:\n%s", res.Plan.Explain())
	}
}

func TestDisjunctiveValues(t *testing.T) {
	// Function attributes are absent on structs and vice versa.
	eng, _, _ := build(t, 8)
	res, err := eng.Execute(xsql.MustParse(`SELECT d.TypeName FROM Decls d`))
	if err != nil {
		t.Fatal(err)
	}
	// Only struct declarations contribute type names.
	if got := len(res.Strings); got != 2 { // 8/4 structs
		t.Fatalf("TypeName projection = %v", res.Strings)
	}
}
