// Package text provides the document and tokenization layer underneath the
// indexing engine. A document is an immutable byte string; words are maximal
// runs of letters and digits, identified by byte offsets. All higher layers
// (word index, region algebra, structuring schemas) address text exclusively
// through byte offsets into a document, mirroring how the PAT system
// addresses its indexed text through positions.
package text

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// Token is one word occurrence in a document: the half-open byte range
// [Start, End) holding the word.
type Token struct {
	Start int
	End   int
}

// Len reports the byte length of the token.
func (t Token) Len() int { return t.End - t.Start }

// Document is an immutable piece of indexed text. The zero value is an empty
// document.
type Document struct {
	name    string
	content string
}

// NewDocument creates a document with the given name (typically a file path)
// and content.
func NewDocument(name, content string) *Document {
	return &Document{name: name, content: content}
}

// Name returns the document's name.
func (d *Document) Name() string { return d.name }

// Content returns the full text of the document.
func (d *Document) Content() string { return d.content }

// Len returns the length of the document in bytes.
func (d *Document) Len() int { return len(d.content) }

// Slice returns the text in the half-open byte range [start, end).
// It panics if the range is out of bounds or inverted.
func (d *Document) Slice(start, end int) string {
	if start < 0 || end > len(d.content) || start > end {
		panic(fmt.Sprintf("text: slice [%d,%d) out of range (doc %q, len %d)", start, end, d.name, len(d.content)))
	}
	return d.content[start:end]
}

// Token reports the token text for the given token.
func (d *Document) Token(t Token) string { return d.Slice(t.Start, t.End) }

// IsWordRune reports whether r is part of a word. Words are maximal runs of
// letters and digits; everything else (punctuation, whitespace, markup)
// separates words.
func IsWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Tokenize splits s into word tokens. Offsets are byte offsets into s.
func Tokenize(s string) []Token {
	var toks []Token
	start := -1
	for i := 0; i < len(s); {
		r, size := rune(s[i]), 1
		if r >= utf8.RuneSelf {
			r, size = utf8.DecodeRuneInString(s[i:])
		}
		if IsWordRune(r) {
			if start < 0 {
				start = i
			}
		} else if start >= 0 {
			toks = append(toks, Token{Start: start, End: i})
			start = -1
		}
		i += size
	}
	if start >= 0 {
		toks = append(toks, Token{Start: start, End: len(s)})
	}
	return toks
}

// Tokens tokenizes the whole document.
func (d *Document) Tokens() []Token { return Tokenize(d.content) }

// ContainsWholeWord reports whether w occurs in s delimited by word
// boundaries on both sides. w may be a phrase (internal separators are
// matched literally); only its ends must fall on word boundaries.
func ContainsWholeWord(s, w string) bool {
	if w == "" {
		return false
	}
	for i := 0; i+len(w) <= len(s); i++ {
		if s[i:i+len(w)] != w {
			continue
		}
		if r, _ := utf8.DecodeLastRuneInString(s[:i]); i > 0 && IsWordRune(r) && startsWithWordRune(w) {
			continue
		}
		end := i + len(w)
		if r, _ := utf8.DecodeRuneInString(s[end:]); end < len(s) && IsWordRune(r) && endsWithWordRune(w) {
			continue
		}
		return true
	}
	return false
}

func startsWithWordRune(s string) bool {
	r, _ := utf8.DecodeRuneInString(s)
	return IsWordRune(r)
}

func endsWithWordRune(s string) bool {
	r, _ := utf8.DecodeLastRuneInString(s)
	return IsWordRune(r)
}

// IsWord reports whether the byte range [start, end) of s holds a whole word:
// the content is a run of word runes and the range is not extendable on
// either side. It is the primitive behind whole-word selection.
func IsWord(s string, start, end int) bool {
	if start < 0 || end > len(s) || start >= end {
		return false
	}
	for i := start; i < end; {
		r, size := utf8.DecodeRuneInString(s[i:])
		if !IsWordRune(r) {
			return false
		}
		i += size
	}
	if r, _ := utf8.DecodeLastRuneInString(s[:start]); start > 0 && IsWordRune(r) {
		return false
	}
	if r, _ := utf8.DecodeRuneInString(s[end:]); end < len(s) && IsWordRune(r) {
		return false
	}
	return true
}
