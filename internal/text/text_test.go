package text

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeSimple(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   ", nil},
		{"hello", []string{"hello"}},
		{"hello world", []string{"hello", "world"}},
		{"G. F. Corliss and Y. F. Chang", []string{"G", "F", "Corliss", "and", "Y", "F", "Chang"}},
		{"114--144", []string{"114", "144"}},
		{"@INCOLLECTION{Corl82a,", []string{"INCOLLECTION", "Corl82a"}},
		{"point algorithm; Taylor series;", []string{"point", "algorithm", "Taylor", "series"}},
		{"naïve café", []string{"naïve", "café"}},
		{"a", []string{"a"}},
		{"a b", []string{"a", "b"}},
		{"...!!!", nil},
		{"x1y2", []string{"x1y2"}},
	}
	for _, tc := range tests {
		toks := Tokenize(tc.in)
		var got []string
		for _, tok := range toks {
			got = append(got, tc.in[tok.Start:tok.End])
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTokenizeOffsets(t *testing.T) {
	s := "  Chang, and Corliss "
	toks := Tokenize(s)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3", len(toks))
	}
	if toks[0].Start != 2 || toks[0].End != 7 {
		t.Errorf("token 0 = [%d,%d), want [2,7)", toks[0].Start, toks[0].End)
	}
	if s[toks[2].Start:toks[2].End] != "Corliss" {
		t.Errorf("token 2 text = %q", s[toks[2].Start:toks[2].End])
	}
}

func TestTokenizeTrailingWord(t *testing.T) {
	toks := Tokenize("end")
	if len(toks) != 1 || toks[0].Start != 0 || toks[0].End != 3 {
		t.Fatalf("Tokenize(\"end\") = %v", toks)
	}
}

func TestTokensAreWords(t *testing.T) {
	// Property: every token produced by Tokenize satisfies IsWord, and
	// tokens are non-overlapping and in order.
	f := func(s string) bool {
		toks := Tokenize(s)
		prev := -1
		for _, tok := range toks {
			if tok.Start <= prev {
				return false
			}
			if !IsWord(s, tok.Start, tok.End) {
				return false
			}
			prev = tok.End - 1
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsWord(t *testing.T) {
	s := "the Changing of Chang"
	chang := strings.LastIndex(s, "Chang")
	if !IsWord(s, chang, chang+5) {
		t.Errorf("IsWord final Chang = false, want true")
	}
	// "Chang" inside "Changing" is not a whole word.
	first := strings.Index(s, "Chang")
	if IsWord(s, first, first+5) {
		t.Errorf("IsWord Chang-in-Changing = true, want false")
	}
	if IsWord(s, 0, 0) {
		t.Errorf("empty range is not a word")
	}
	if IsWord(s, 3, 5) { // "e C": contains a separator
		t.Errorf("range with separator is not a word")
	}
	if IsWord(s, -1, 2) || IsWord(s, 0, len(s)+1) {
		t.Errorf("out-of-range must be false")
	}
}

func TestContainsWholeWord(t *testing.T) {
	cases := []struct {
		s, w string
		want bool
	}{
		{"the Changing of Chang", "Chang", true},
		{"the Changing of others", "Chang", false}, // substring only
		{"Chang", "Chang", true},
		{"", "Chang", false},
		{"Chang", "", false},
		{"a b c", "b", true},
		{"ab c", "b", false},
		{"uses automatic differentiation to", "automatic differentiation", true}, // phrase
		{"semiautomatic differentiation", "automatic differentiation", false},
		{"automatic differentiations", "automatic differentiation", false},
		{"G. F. Corliss", "G. F.", true}, // phrase ending in punctuation
		{"e.g. G. F. problem", "G. F.", true},
		{"e.g. FG. F. problem", "G. F.", false}, // G is not word-initial there
		{"[1982]", "1982", true},
		{"x1982y", "1982", false},
		{"naïve café", "café", true},
		{"naïvecafé", "café", false}, // unicode word boundary
	}
	for _, tc := range cases {
		if got := ContainsWholeWord(tc.s, tc.w); got != tc.want {
			t.Errorf("ContainsWholeWord(%q, %q) = %v, want %v", tc.s, tc.w, got, tc.want)
		}
	}
}

func TestContainsWholeWordMatchesTokenization(t *testing.T) {
	// Property: for single clean words, ContainsWholeWord agrees with
	// token equality.
	f := func(s string) bool {
		toks := Tokenize(s)
		for _, tok := range toks {
			if !ContainsWholeWord(s, s[tok.Start:tok.End]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDocument(t *testing.T) {
	d := NewDocument("bib.bib", "AUTHOR = \"Chang\"")
	if d.Name() != "bib.bib" {
		t.Errorf("Name = %q", d.Name())
	}
	if d.Len() != 16 {
		t.Errorf("Len = %d", d.Len())
	}
	if got := d.Slice(10, 15); got != "Chang" {
		t.Errorf("Slice = %q", got)
	}
	toks := d.Tokens()
	if len(toks) != 2 || d.Token(toks[1]) != "Chang" {
		t.Errorf("Tokens = %v", toks)
	}
}

func TestDocumentSlicePanics(t *testing.T) {
	d := NewDocument("x", "abc")
	for _, rng := range [][2]int{{-1, 2}, {0, 4}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slice(%d,%d) did not panic", rng[0], rng[1])
				}
			}()
			d.Slice(rng[0], rng[1])
		}()
	}
}

func TestTokenLen(t *testing.T) {
	if (Token{Start: 3, End: 10}).Len() != 7 {
		t.Error("Token.Len")
	}
}
