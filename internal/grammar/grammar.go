// Package grammar implements structuring schemas (Section 4 of the paper):
// annotated grammars that specify how a file is interpreted in a database.
// A Grammar couples a context-free grammar (with PEG-style ordered choice
// and repetition, in the spirit of the paper's Yacc-based schemas) with
// database construction rules. From a grammar the package derives
//
//   - a parser producing parse trees whose nodes carry byte-offset regions,
//   - the database image of a parse (natural structuring schemas, §4.2:
//     repetitions become sets, sequences become tuples whose attribute
//     names are the non-terminal names, terminals become strings),
//   - the region inclusion graph (§4.2: an edge (A, B) iff B occurs on the
//     right-hand side of a production of A), and
//   - region-index instances for full, partial and selective indexing.
//
// Because the PAT algebra identifies a region with its pair of positions,
// a parent and child region must never coincide: Validate rejects unit
// productions (a right-hand side that is exactly one non-terminal), except
// for the root symbol, which is never indexed. Practical formats satisfy
// this naturally — fields are wrapped in delimiters.
package grammar

import (
	"fmt"
	"regexp"
	"strings"

	"qof/internal/db"
)

// ElemKind discriminates right-hand-side elements.
type ElemKind int

// Element kinds.
const (
	ElemLit  ElemKind = iota // literal text
	ElemTerm                 // terminal class (regexp)
	ElemNT                   // non-terminal
	ElemRep                  // repetition of a non-terminal with a separator
)

// Elem is one element of a production right-hand side.
type Elem struct {
	Kind ElemKind
	Text string // literal text (ElemLit) or separator (ElemRep)
	Name string // terminal class or non-terminal name
}

// Lit builds a literal element.
func Lit(text string) Elem { return Elem{Kind: ElemLit, Text: text} }

// Term builds a terminal-class element.
func Term(name string) Elem { return Elem{Kind: ElemTerm, Name: name} }

// NT builds a non-terminal element.
func NT(name string) Elem { return Elem{Kind: ElemNT, Name: name} }

// Rep builds a repetition element: zero or more name occurrences separated
// by sep (the paper's A → B* form, with an optional separator).
func Rep(name, sep string) Elem { return Elem{Kind: ElemRep, Name: name, Text: sep} }

func (e Elem) String() string {
	switch e.Kind {
	case ElemLit:
		return fmt.Sprintf("%q", e.Text)
	case ElemTerm:
		return "<" + e.Name + ">"
	case ElemNT:
		return "(" + e.Name + ")"
	default:
		if e.Text == "" {
			return "(" + e.Name + ")*"
		}
		return fmt.Sprintf("(%s)* sep %q", e.Name, e.Text)
	}
}

// Action converts the matched children of a production into a database
// value, overriding the natural construction. kids holds the values of the
// non-literal elements in right-hand-side order ($1…$n in the paper's
// Yacc-like notation; a repetition contributes one *db.Set). matched is the
// full matched text.
type Action func(kids []db.Value, matched string) db.Value

// Production is one alternative for a non-terminal.
type Production struct {
	LHS    string
	RHS    []Elem
	Action Action // nil selects the natural construction of §4.2
}

func (p *Production) String() string {
	parts := make([]string, len(p.RHS))
	for i, e := range p.RHS {
		parts[i] = e.String()
	}
	return "(" + p.LHS + ") -> " + strings.Join(parts, " ")
}

// Grammar is a structuring schema: terminal classes, productions and a root
// symbol. Build one with NewGrammar and the Add* methods, then call
// Validate (Parse validates on first use).
type Grammar struct {
	root      string
	prods     map[string][]*Production
	ntOrder   []string
	terms     map[string]matcher
	termOrder []string

	// SkipSpace makes the parser skip ASCII whitespace before every
	// element, which suits free-format files; offsets of matched elements
	// are unaffected. Default true.
	SkipSpace bool

	validated bool
}

// NewGrammar creates an empty grammar with the given root symbol.
func NewGrammar(root string) *Grammar {
	return &Grammar{
		root:      root,
		prods:     make(map[string][]*Production),
		terms:     make(map[string]matcher),
		SkipSpace: true,
	}
}

// Root returns the root symbol.
func (g *Grammar) Root() string { return g.root }

// AddTerminal defines a terminal class by an RE2 pattern matched at the
// current input position. Simple patterns — concatenations of ASCII
// character classes and literals with * or + quantifiers — are compiled to
// direct byte scanners, which dominate parsing speed; anything else runs
// through the regexp engine.
func (g *Grammar) AddTerminal(name, pattern string) error {
	if _, ok := g.terms[name]; ok {
		return fmt.Errorf("grammar: terminal %q redefined", name)
	}
	re, err := regexp.Compile("^(?:" + pattern + ")")
	if err != nil {
		return fmt.Errorf("grammar: terminal %q: %w", name, err)
	}
	if m := compileSimple(pattern); m != nil {
		g.terms[name] = m
	} else {
		g.terms[name] = regexpMatcher(re)
	}
	g.termOrder = append(g.termOrder, name)
	g.validated = false
	return nil
}

// MustAddTerminal is AddTerminal, panicking on error; for fixed grammars.
func (g *Grammar) MustAddTerminal(name, pattern string) {
	if err := g.AddTerminal(name, pattern); err != nil {
		panic(err)
	}
}

// AddProduction appends an alternative for the non-terminal lhs.
// Alternatives are tried in insertion order with PEG semantics: the first
// that matches wins.
func (g *Grammar) AddProduction(lhs string, rhs ...Elem) *Production {
	p := &Production{LHS: lhs, RHS: rhs}
	if _, ok := g.prods[lhs]; !ok {
		g.ntOrder = append(g.ntOrder, lhs)
	}
	g.prods[lhs] = append(g.prods[lhs], p)
	g.validated = false
	return p
}

// NonTerminals returns the non-terminal names in definition order.
func (g *Grammar) NonTerminals() []string {
	out := make([]string, len(g.ntOrder))
	copy(out, g.ntOrder)
	return out
}

// Productions returns the alternatives of a non-terminal.
func (g *Grammar) Productions(name string) []*Production { return g.prods[name] }

// Validate checks the grammar is well formed:
//
//   - the root symbol and every referenced non-terminal have productions,
//   - every referenced terminal class is defined,
//   - no non-terminal occurs twice in one right-hand side (the paper's
//     requirement so that attribute names are unambiguous),
//   - no unit production outside the root (coincident parent/child spans
//     are indistinguishable to the position-pair region model).
func (g *Grammar) Validate() error {
	if len(g.prods[g.root]) == 0 {
		return fmt.Errorf("grammar: root %q has no productions", g.root)
	}
	for _, lhs := range g.ntOrder {
		for _, p := range g.prods[lhs] {
			seen := make(map[string]bool)
			nonLit := 0
			for _, e := range p.RHS {
				switch e.Kind {
				case ElemTerm:
					nonLit++
					if g.terms[e.Name] == nil {
						return fmt.Errorf("grammar: %s references undefined terminal %q", p, e.Name)
					}
				case ElemNT, ElemRep:
					nonLit++
					if len(g.prods[e.Name]) == 0 {
						return fmt.Errorf("grammar: %s references undefined non-terminal %q", p, e.Name)
					}
					if seen[e.Name] {
						return fmt.Errorf("grammar: %s uses non-terminal %q twice in one right-hand side", p, e.Name)
					}
					seen[e.Name] = true
				}
			}
			if lhs != g.root && len(p.RHS) == 1 &&
				(p.RHS[0].Kind == ElemNT || p.RHS[0].Kind == ElemRep) {
				return fmt.Errorf("grammar: %s is a unit production; wrap the child in delimiters so parent and child regions cannot coincide", p)
			}
		}
	}
	g.validated = true
	return nil
}
