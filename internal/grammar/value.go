package grammar

import (
	"qof/internal/db"
)

// BuildValue computes the database image of a parse tree (the paper's $$
// values). Productions with a custom Action use it; otherwise the natural
// construction of Section 4.2 applies:
//
//   - a repetition child contributes a set value under the child's
//     non-terminal name,
//   - non-terminal children make the node a tuple whose attribute names are
//     the non-terminal names,
//   - a node with only terminal children becomes the string they matched.
//
// src must be the full document content the tree was parsed from.
func BuildValue(n *Node, src string) db.Value {
	if n.Term {
		return db.String(n.Text(src))
	}
	if n.Prod != nil && n.Prod.Action != nil {
		return n.Prod.Action(childValues(n, src), n.Text(src))
	}
	return naturalValue(n, src)
}

// childValues evaluates the non-literal children in RHS order, folding
// repetition children into one set per the Rep element.
func childValues(n *Node, src string) []db.Value {
	var out []db.Value
	k := 0
	for _, e := range n.Prod.RHS {
		switch e.Kind {
		case ElemTerm, ElemNT:
			if k < len(n.Kids) {
				out = append(out, BuildValue(n.Kids[k], src))
				k++
			}
		case ElemRep:
			set := db.NewSet()
			for k < len(n.Kids) && n.Kids[k].Sym == e.Name && !n.Kids[k].Term {
				set.Add(BuildValue(n.Kids[k], src))
				k++
			}
			out = append(out, set)
		}
	}
	return out
}

func naturalValue(n *Node, src string) db.Value {
	// Count non-terminal children (including repetitions).
	hasNT := false
	for _, k := range n.Kids {
		if !k.Term {
			hasNT = true
			break
		}
	}
	if !hasNT {
		// Terminal-only production: the matched terminal text. With
		// several terminals, concatenate their exact matches.
		if len(n.Kids) == 1 {
			return db.String(n.Kids[0].Text(src))
		}
		s := ""
		for _, k := range n.Kids {
			s += k.Text(src)
		}
		return db.String(s)
	}
	t := db.NewTuple()
	for _, k := range n.Kids {
		if k.Term {
			continue
		}
		v := BuildValue(k, src)
		if prev, ok := t.Get(k.Sym); ok {
			// Repetition children accumulate into a set.
			if set, isSet := prev.(*db.Set); isSet {
				set.Add(v)
			} else {
				t.Put(k.Sym, db.NewSet(prev, v))
			}
			continue
		}
		if n.isRepChild(k.Sym) {
			t.Put(k.Sym, db.NewSet(v))
		} else {
			t.Put(k.Sym, v)
		}
	}
	// Repetitions that matched zero elements still contribute empty sets.
	if n.Prod != nil {
		for _, e := range n.Prod.RHS {
			if e.Kind == ElemRep {
				if _, ok := t.Get(e.Name); !ok {
					t.Put(e.Name, db.NewSet())
				}
			}
		}
	}
	return t
}

// isRepChild reports whether sym appears as a repetition element of the
// node's production.
func (n *Node) isRepChild(sym string) bool {
	if n.Prod == nil {
		return false
	}
	for _, e := range n.Prod.RHS {
		if e.Kind == ElemRep && e.Name == sym {
			return true
		}
	}
	return false
}
