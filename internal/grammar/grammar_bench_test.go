package grammar

import (
	"strings"
	"testing"

	"qof/internal/text"
)

// benchGrammar builds the mini-bibtex grammar, optionally forcing every
// terminal through the regexp engine (the ablation for the byte-scanner
// matcher compiler).
func benchGrammar(b *testing.B, forceRegexp bool) *Grammar {
	b.Helper()
	g := NewGrammar("Ref_Set")
	add := func(name, pattern string) {
		if forceRegexp {
			// A harmless group makes compileSimple reject the
			// pattern without changing the language.
			pattern = "(?:" + pattern + ")"
		}
		g.MustAddTerminal(name, pattern)
	}
	add("Ident", `[A-Za-z][A-Za-z0-9]*`)
	add("Initials", `[A-Z]\.(?: [A-Z]\.)*`)
	add("Word", `[A-Za-z][A-Za-z0-9'-]*`)
	add("Text", `[^"]*`)
	add("Num", `[0-9]+`)
	g.AddProduction("Ref_Set", Rep("Reference", ""))
	g.AddProduction("Reference",
		Lit("@INCOLLECTION{"), NT("Key"), Lit(","),
		Lit("AUTHOR ="), NT("Authors"), Lit(","),
		Lit("TITLE ="), NT("Title"), Lit(","),
		Lit("YEAR ="), NT("Year"), Lit(","),
		Lit("EDITOR ="), NT("Editors"), Lit(","),
		Lit("}"))
	g.AddProduction("Key", Term("Ident"))
	g.AddProduction("Authors", Lit(`"`), Rep("Name", "and"), Lit(`"`))
	g.AddProduction("Editors", Lit(`"`), Rep("Name", "and"), Lit(`"`))
	g.AddProduction("Name", NT("First_Name"), NT("Last_Name"))
	g.AddProduction("First_Name", Term("Initials"))
	g.AddProduction("Last_Name", Term("Word"))
	g.AddProduction("Title", Lit(`"`), Term("Text"), Lit(`"`))
	g.AddProduction("Year", Lit(`"`), Term("Num"), Lit(`"`))
	if err := g.Validate(); err != nil {
		b.Fatal(err)
	}
	return g
}

func benchParse(b *testing.B, forceRegexp bool) {
	g := benchGrammar(b, forceRegexp)
	doc := text.NewDocument("bench.bib", strings.Repeat(miniDoc, 200))
	b.SetBytes(int64(doc.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Parse(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseCompiledMatchers and BenchmarkParseRegexpMatchers ablate the
// terminal matcher compiler: identical grammar and input, scanners vs the
// regexp engine.
func BenchmarkParseCompiledMatchers(b *testing.B) { benchParse(b, false) }

func BenchmarkParseRegexpMatchers(b *testing.B) { benchParse(b, true) }

func BenchmarkBuildValue(b *testing.B) {
	g := benchGrammar(b, false)
	doc := text.NewDocument("bench.bib", strings.Repeat(miniDoc, 200))
	tree, err := g.Parse(doc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildValue(tree, doc.Content())
	}
}

func BenchmarkExtractRegions(b *testing.B) {
	g := benchGrammar(b, false)
	doc := text.NewDocument("bench.bib", strings.Repeat(miniDoc, 200))
	tree, err := g.Parse(doc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractRegions(tree)
	}
}

func BenchmarkParseAsOneReference(b *testing.B) {
	g := benchGrammar(b, false)
	doc := text.NewDocument("bench.bib", strings.Repeat(miniDoc, 200))
	tree, err := g.Parse(doc)
	if err != nil {
		b.Fatal(err)
	}
	ref := tree.Find("Reference")[10]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ParseAs(doc, "Reference", ref.Start, ref.End); err != nil {
			b.Fatal(err)
		}
	}
}
