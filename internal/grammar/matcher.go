package grammar

// Terminal matcher compilation. Most terminal classes in structuring
// schemas are simple concatenations of character classes with * or +
// quantifiers (identifiers, numbers, free text up to a delimiter). Running
// those through the regexp NFA dominates parsing time, so AddTerminal
// compiles them to direct byte scanners and keeps the regexp only for
// patterns the mini-compiler cannot express (groups, alternation, counted
// repetition, Unicode classes).

import (
	"regexp"
	"strings"
)

// matcher reports the length of the match of a terminal at the start of s,
// or -1 when there is no match.
type matcher func(s string) int

// regexpMatcher wraps an anchored regexp.
func regexpMatcher(re *regexp.Regexp) matcher {
	return func(s string) int {
		loc := re.FindStringIndex(s)
		if loc == nil {
			return -1
		}
		return loc[1]
	}
}

// byteClass is a 256-entry membership table (ASCII byte classes; patterns
// with non-ASCII literals fall back to regexp).
type byteClass [256]bool

// classItem is one element of a compiled simple pattern.
type classItem struct {
	class byteClass
	min   int // 0 for *, 1 for single or +
	many  bool
}

// compileSimple builds a byte scanner for patterns of the form
// item+ where item := (class | char | escaped char) quantifier? and
// quantifier ∈ {*, +}. It returns nil when the pattern is not of this form.
func compileSimple(pattern string) matcher {
	var items []classItem
	i := 0
	for i < len(pattern) {
		var cls byteClass
		switch c := pattern[i]; {
		case c == '[':
			end, ok := parseClass(pattern[i:], &cls)
			if !ok {
				return nil
			}
			i += end
		case c == '\\':
			if i+1 >= len(pattern) {
				return nil
			}
			b, ok := escapedByte(pattern[i+1])
			if !ok {
				return nil
			}
			cls[b] = true
			i += 2
		case strings.ContainsRune("()|.^$?{}*+", rune(c)):
			return nil // structure beyond the simple form
		case c < 0x80:
			cls[c] = true
			i++
		default:
			return nil // non-ASCII literal
		}
		item := classItem{class: cls, min: 1}
		if i < len(pattern) {
			switch pattern[i] {
			case '*':
				item.min, item.many = 0, true
				i++
			case '+':
				item.min, item.many = 1, true
				i++
			case '?', '{':
				return nil
			}
		}
		items = append(items, item)
	}
	if len(items) == 0 {
		return nil
	}
	return func(s string) int {
		pos := 0
		for _, it := range items {
			n := 0
			for pos < len(s) && it.class[s[pos]] && (it.many || n < 1) {
				pos++
				n++
			}
			if n < it.min {
				return -1
			}
		}
		return pos
	}
}

// parseClass parses a [...] class at the start of s into cls, returning the
// number of bytes consumed. Supports negation, ranges and escapes; rejects
// non-ASCII content.
func parseClass(s string, cls *byteClass) (int, bool) {
	if len(s) < 2 || s[0] != '[' {
		return 0, false
	}
	i := 1
	negate := false
	if s[i] == '^' {
		negate = true
		i++
	}
	var member [256]bool
	first := true
	for i < len(s) && (s[i] != ']' || first) {
		first = false
		var lo byte
		switch {
		case s[i] == '\\' && i+1 < len(s):
			b, ok := escapedByte(s[i+1])
			if !ok {
				return 0, false
			}
			lo = b
			i += 2
		case s[i] < 0x80:
			lo = s[i]
			i++
		default:
			return 0, false
		}
		hi := lo
		if i+1 < len(s) && s[i] == '-' && s[i+1] != ']' {
			i++
			switch {
			case s[i] == '\\' && i+1 < len(s):
				b, ok := escapedByte(s[i+1])
				if !ok {
					return 0, false
				}
				hi = b
				i += 2
			case s[i] < 0x80:
				hi = s[i]
				i++
			default:
				return 0, false
			}
		}
		if hi < lo {
			return 0, false
		}
		for b := int(lo); b <= int(hi); b++ {
			member[b] = true
		}
	}
	if i >= len(s) || s[i] != ']' {
		return 0, false
	}
	i++
	if negate {
		// Negated ASCII classes behave byte-wise like RE2's rune-wise
		// [^...] over valid UTF-8: every byte of a non-excluded rune
		// (including each byte of a multi-byte rune) is accepted, so
		// the matched span is identical.
		for b := 0; b < 256; b++ {
			member[b] = !member[b]
		}
	}
	*cls = member
	return i, true
}

func escapedByte(c byte) (byte, bool) {
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '\\', '.', '[', ']', '(', ')', '*', '+', '?', '^', '$', '{', '}', '|', '-', '/', '\'', '"':
		return c, true
	}
	return 0, false
}
