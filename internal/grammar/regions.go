package grammar

import (
	"context"
	"fmt"

	"qof/internal/faultinject"
	"qof/internal/index"
	"qof/internal/region"
	"qof/internal/text"
)

// ExtractRegions collects the regions of the given non-terminal names from
// a parse tree: one region per occurrence, exactly "the set of all regions
// corresponding to occurrences of Ai in the parse tree of the file"
// (Section 4.2). With no names, every non-terminal in the tree is
// extracted.
func ExtractRegions(tree *Node, names ...string) map[string]region.Set {
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		keep[n] = true
	}
	groups := make(map[string][]region.Region)
	tree.Walk(func(n *Node) bool {
		if !n.Term && (len(keep) == 0 || keep[n.Sym]) {
			groups[n.Sym] = append(groups[n.Sym], region.Region{Start: n.Start, End: n.End})
		}
		return true
	})
	out := make(map[string]region.Set, len(groups))
	for name, rs := range groups {
		out[name] = region.FromRegions(rs)
	}
	// Names requested but absent in the tree index as empty sets.
	for _, n := range names {
		if _, ok := out[n]; !ok {
			out[n] = region.Empty
		}
	}
	return out
}

// ExtractScopedRegions collects regions of name occurring inside an
// occurrence of within — the paper's selective indexing ("instead of
// indexing all the Name regions ... index only those that reside in some
// Authors region", Section 7).
func ExtractScopedRegions(tree *Node, name, within string) region.Set {
	var rs []region.Region
	var walk func(n *Node, inside bool)
	walk = func(n *Node, inside bool) {
		if !n.Term {
			if inside && n.Sym == name {
				rs = append(rs, region.Region{Start: n.Start, End: n.End})
			}
			if n.Sym == within {
				inside = true
			}
		}
		for _, k := range n.Kids {
			walk(k, inside)
		}
	}
	walk(tree, false)
	return region.FromRegions(rs)
}

// IndexSpec describes which regions to index. Nil Names means "all
// non-terminals except the root" (full indexing, Section 5); otherwise only
// the listed names are indexed (partial indexing, Section 6). Scoped adds
// selectively indexed names restricted to a surrounding region (Section 7);
// a scoped entry overrides a global entry of the same name.
type IndexSpec struct {
	Names  []string
	Scoped []ScopedName
}

// ScopedName selectively indexes Name only inside Within regions.
type ScopedName struct {
	Name   string
	Within string
}

// FullIndexSpec returns the specification indexing every non-terminal
// except the root.
func (g *Grammar) FullIndexSpec() IndexSpec {
	var names []string
	for _, n := range g.ntOrder {
		if n != g.root {
			names = append(names, n)
		}
	}
	return IndexSpec{Names: names}
}

// BuildInstance parses the document and builds the region-index instance
// described by spec (plus the word index, which index.NewInstance always
// provides). It returns the instance and the parse tree, which callers use
// for the full-scan baseline and for loading candidate objects.
func (g *Grammar) BuildInstance(doc *text.Document, spec IndexSpec) (*index.Instance, *Node, error) {
	return g.BuildInstanceContext(context.Background(), doc, spec)
}

// BuildInstanceContext is BuildInstance under a context: cancellation is
// checked at stage boundaries (before the parse, before region extraction,
// and between index definitions), so an abandoned build stops promptly
// without ever publishing a partially defined instance.
func (g *Grammar) BuildInstanceContext(ctx context.Context, doc *text.Document, spec IndexSpec) (*index.Instance, *Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := faultinject.Hit(faultinject.IndexBuild); err != nil {
		return nil, nil, fmt.Errorf("grammar: building index for %s: %w", doc.Name(), err)
	}
	tree, err := g.Parse(doc)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	in := index.NewInstance(doc)
	names := spec.Names
	if names == nil {
		names = g.FullIndexSpec().Names
	}
	for name, set := range ExtractRegions(tree, names...) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		in.Define(name, set)
	}
	for _, sc := range spec.Scoped {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		in.DefineScoped(sc.Name, sc.Within, ExtractScopedRegions(tree, sc.Name, sc.Within))
	}
	return in, tree, nil
}
