package grammar

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"qof/internal/text"
)

// TestParseNeverPanics drives the parser with arbitrary garbage: it must
// return errors, never panic, and never mis-report success.
func TestParseNeverPanics(t *testing.T) {
	g := miniBibtex(t)
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		doc := text.NewDocument("fuzz", s)
		tree, err := g.Parse(doc)
		if err == nil && tree == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestParseMutatedCorpus mutates a valid corpus at random positions; every
// outcome must be a clean parse or a positioned error.
func TestParseMutatedCorpus(t *testing.T) {
	g := miniBibtex(t)
	rng := rand.New(rand.NewSource(77))
	base := strings.Repeat(miniDoc, 2)
	for trial := 0; trial < 200; trial++ {
		mutated := []byte(base)
		for k := 0; k < 1+rng.Intn(4); k++ {
			mutated[rng.Intn(len(mutated))] = byte(32 + rng.Intn(95))
		}
		doc := text.NewDocument("mut", string(mutated))
		tree, err := g.Parse(doc)
		if err != nil {
			perr, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("trial %d: error type %T: %v", trial, err, err)
			}
			if perr.Offset < 0 || perr.Offset > len(mutated) {
				t.Fatalf("trial %d: offset %d out of range", trial, perr.Offset)
			}
			continue
		}
		// Successful parses must produce sane, strictly nested regions.
		bad := false
		tree.Walk(func(n *Node) bool {
			if n.Start < 0 || n.End > len(mutated) || n.Start > n.End {
				bad = true
			}
			for _, k := range n.Kids {
				if k.Start < n.Start || k.End > n.End {
					bad = true
				}
			}
			return !bad
		})
		if bad {
			t.Fatalf("trial %d: malformed spans in successful parse", trial)
		}
	}
}

// TestParseAsArbitraryRanges parses random subranges as random symbols:
// errors are fine, panics and span escapes are not.
func TestParseAsArbitraryRanges(t *testing.T) {
	g := miniBibtex(t)
	doc := text.NewDocument("mini", miniDoc)
	syms := append(g.NonTerminals(), "Unknown")
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 300; trial++ {
		a := rng.Intn(doc.Len() + 1)
		b := a + rng.Intn(doc.Len()-a+1)
		sym := syms[rng.Intn(len(syms))]
		node, err := g.ParseAs(doc, sym, a, b)
		if err != nil {
			continue
		}
		if node.Start < a || node.End > b {
			t.Fatalf("trial %d: span [%d,%d) escapes [%d,%d)", trial, node.Start, node.End, a, b)
		}
	}
}
