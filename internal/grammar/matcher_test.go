package grammar

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
)

// TestCompileSimpleAgainstRegexp checks the byte-scanner compiler against
// the regexp engine on every terminal pattern the built-in schemas use,
// over randomized inputs.
func TestCompileSimpleAgainstRegexp(t *testing.T) {
	patterns := []string{
		`[A-Za-z][A-Za-z0-9]*`,
		`[A-Za-z][A-Za-z0-9'-]*`,
		`[A-Za-z_][A-Za-z0-9_]*`,
		`[a-z][a-z0-9_-]*`,
		`[^"]*`,
		`[^\n]+`,
		`[^<]+`,
		`[0-9]+`,
		`[A-Za-z0-9][A-Za-z0-9 '-]*`,
		`x`,
		`\.`,
		`abc`,
		`a[0-9]*z`,
	}
	pieces := []string{
		"", "abc", "ABC09", "_id", "x-y'z", `with "quote"`, "line\nnext",
		"<tag>", "123", "0", " lead", "trail ", "naïve", "a.b", ".", "abcz",
		"a99z", "az", "az9",
	}
	rng := rand.New(rand.NewSource(17))
	for _, pat := range patterns {
		m := compileSimple(pat)
		if m == nil {
			t.Errorf("compileSimple(%q) = nil, want a scanner", pat)
			continue
		}
		re := regexp.MustCompile("^(?:" + pat + ")")
		check := func(input string) {
			t.Helper()
			got := m(input)
			want := -1
			if loc := re.FindStringIndex(input); loc != nil {
				want = loc[1]
			}
			if got != want {
				t.Errorf("pattern %q on %q: scanner %d, regexp %d", pat, input, got, want)
			}
		}
		for _, p := range pieces {
			check(p)
		}
		for trial := 0; trial < 200; trial++ {
			var sb strings.Builder
			for k := 0; k < rng.Intn(4); k++ {
				sb.WriteString(pieces[rng.Intn(len(pieces))])
			}
			check(sb.String())
		}
	}
}

func TestCompileSimpleRejectsComplex(t *testing.T) {
	for _, pat := range []string{
		`INFO|WARN`,
		`[A-Z]\.(?: [A-Z]\.)*`,
		`[0-9]{4}`,
		`a?b`,
		`(ab)+`,
		`.`,
		`^x`,
		`x$`,
		`[é]`,
		`é`,
		`[a-`,
		`[]`,
		`\q`,
		``,
	} {
		if compileSimple(pat) != nil {
			t.Errorf("compileSimple(%q) compiled, want regexp fallback", pat)
		}
	}
}

func TestClassEdgeCases(t *testing.T) {
	// ']' first in a class is a literal member per RE2.
	m := compileSimple(`[]a]+`)
	if m == nil {
		t.Fatal("leading-] class rejected")
	}
	re := regexp.MustCompile(`^(?:[]a]+)`)
	for _, in := range []string{"]a]", "b", "a]", ""} {
		want := -1
		if loc := re.FindStringIndex(in); loc != nil {
			want = loc[1]
		}
		if got := m(in); got != want {
			t.Errorf("[]a]+ on %q: %d vs %d", in, got, want)
		}
	}
	// Trailing '-' is a literal.
	m2 := compileSimple(`[a-]+`)
	if m2 == nil {
		t.Fatal("trailing-dash class rejected")
	}
	if got := m2("a-b"); got != 2 {
		t.Errorf("[a-]+ on a-b = %d", got)
	}
	// Negated class matches multi-byte runes byte-wise with equal spans.
	m3 := compileSimple(`[^"]*`)
	if got := m3(`naïve"x`); got != len(`naïve`) {
		t.Errorf("[^\"]* on naïve\"x = %d, want %d", got, len(`naïve`))
	}
}

func TestBuiltinSchemasStillParse(t *testing.T) {
	// The schema packages exercise the scanners end to end; here just
	// confirm the mini-compiler handles the mini-bibtex fixture.
	_, _, tree := parseMini(t)
	if len(tree.Find("Reference")) != 2 {
		t.Fatal("references")
	}
}
