package grammar

import (
	"fmt"
	"strings"
)

// Node is a parse-tree node. Non-terminal nodes record which production
// matched and their non-literal children; terminal nodes are leaves. Every
// node carries the half-open byte region [Start, End) it matched, which is
// what the region indices are extracted from.
type Node struct {
	Sym   string // non-terminal name, or terminal class for leaves
	Term  bool   // true for terminal leaves
	Start int
	End   int
	Prod  *Production // matched production (nil for terminals)
	Kids  []*Node     // non-literal children in RHS order; Rep children are inlined
}

// Text returns the matched text given the full source.
func (n *Node) Text(src string) string { return src[n.Start:n.End] }

// Find returns the descendants (including n itself) with the given
// non-terminal or terminal symbol, in document order.
func (n *Node) Find(sym string) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.Sym == sym {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Walk visits n and its descendants in document order (pre-order). The
// visitor returns false to prune a subtree.
func (n *Node) Walk(visit func(*Node) bool) {
	if !visit(n) {
		return
	}
	for _, k := range n.Kids {
		k.Walk(visit)
	}
}

// Count reports the number of nodes in the subtree.
func (n *Node) Count() int {
	total := 0
	n.Walk(func(*Node) bool { total++; return true })
	return total
}

// Dump renders the subtree as an indented outline with regions — the form
// used to reproduce the paper's parse-tree figures (Figures 2 and 3). When
// src is non-empty, terminal leaves include their matched text.
func (n *Node) Dump(src string) string {
	var sb strings.Builder
	n.dump(&sb, src, 0)
	return sb.String()
}

func (n *Node) dump(sb *strings.Builder, src string, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	if n.Term {
		fmt.Fprintf(sb, "<%s> [%d,%d)", n.Sym, n.Start, n.End)
		if src != "" {
			fmt.Fprintf(sb, " %q", n.Text(src))
		}
	} else {
		fmt.Fprintf(sb, "%s [%d,%d)", n.Sym, n.Start, n.End)
	}
	sb.WriteByte('\n')
	for _, k := range n.Kids {
		k.dump(sb, src, depth+1)
	}
}
