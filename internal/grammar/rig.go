package grammar

import (
	"qof/internal/rig"
)

// DeriveRIG computes the region inclusion graph of the grammar per
// Section 4.2: nodes are the non-terminals and there is an edge (A, B) iff
// some production of A has B on its right-hand side (directly or as a
// repetition). Instances extracted from parse trees of this grammar always
// satisfy the derived graph.
func (g *Grammar) DeriveRIG() *rig.Graph {
	graph := rig.New(g.ntOrder...)
	for _, lhs := range g.ntOrder {
		for _, p := range g.prods[lhs] {
			for _, e := range p.RHS {
				if e.Kind == ElemNT || e.Kind == ElemRep {
					graph.AddEdge(lhs, e.Name)
				}
			}
		}
	}
	return graph
}
