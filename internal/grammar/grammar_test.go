package grammar

import (
	"strings"
	"testing"

	"qof/internal/db"
	"qof/internal/text"
)

// miniBibtex builds a compact BIBTEX structuring schema mirroring the
// paper's example (Section 4.1).
func miniBibtex(t testing.TB) *Grammar {
	t.Helper()
	g := NewGrammar("Ref_Set")
	g.MustAddTerminal("Ident", `[A-Za-z][A-Za-z0-9]*`)
	g.MustAddTerminal("Initials", `[A-Z]\.(?: [A-Z]\.)*`)
	g.MustAddTerminal("Word", `[A-Za-z][A-Za-z0-9'-]*`)
	g.MustAddTerminal("Text", `[^"]*`)
	g.MustAddTerminal("Num", `[0-9]+`)

	g.AddProduction("Ref_Set", Rep("Reference", ""))
	g.AddProduction("Reference",
		Lit("@INCOLLECTION{"), NT("Key"), Lit(","),
		Lit("AUTHOR ="), NT("Authors"), Lit(","),
		Lit("TITLE ="), NT("Title"), Lit(","),
		Lit("YEAR ="), NT("Year"), Lit(","),
		Lit("EDITOR ="), NT("Editors"), Lit(","),
		Lit("}"))
	g.AddProduction("Key", Term("Ident"))
	g.AddProduction("Authors", Lit(`"`), Rep("Name", "and"), Lit(`"`))
	g.AddProduction("Editors", Lit(`"`), Rep("Name", "and"), Lit(`"`))
	g.AddProduction("Name", NT("First_Name"), NT("Last_Name"))
	g.AddProduction("First_Name", Term("Initials"))
	g.AddProduction("Last_Name", Term("Word"))
	g.AddProduction("Title", Lit(`"`), Term("Text"), Lit(`"`))
	g.AddProduction("Year", Lit(`"`), Term("Num"), Lit(`"`))
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

const miniDoc = `@INCOLLECTION{Corl82a,
AUTHOR = "G. F. Corliss and Y. F. Chang",
TITLE = "Solving Ordinary Differential Equations",
YEAR = "1982",
EDITOR = "A. Griewank",
}
@INCOLLECTION{Grie89b,
AUTHOR = "A. Griewank",
TITLE = "On Automatic Differentiation",
YEAR = "1989",
EDITOR = "Y. F. Chang",
}
`

func parseMini(t testing.TB) (*Grammar, *text.Document, *Node) {
	t.Helper()
	g := miniBibtex(t)
	doc := text.NewDocument("mini.bib", miniDoc)
	tree, err := g.Parse(doc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return g, doc, tree
}

func TestParseTreeShape(t *testing.T) {
	_, doc, tree := parseMini(t)
	if tree.Sym != "Ref_Set" {
		t.Fatalf("root = %q", tree.Sym)
	}
	refs := tree.Find("Reference")
	if len(refs) != 2 {
		t.Fatalf("references = %d", len(refs))
	}
	// First reference has two author names, one editor name.
	authors := refs[0].Find("Authors")
	if len(authors) != 1 {
		t.Fatalf("authors nodes = %d", len(authors))
	}
	names := authors[0].Find("Name")
	if len(names) != 2 {
		t.Fatalf("author names = %d", len(names))
	}
	if got := names[1].Find("Last_Name")[0].Text(doc.Content()); got != "Chang" {
		t.Errorf("second author last name = %q", got)
	}
	// Node spans nest strictly.
	ref := refs[0]
	au := authors[0]
	if !(ref.Start < au.Start && au.End < ref.End) {
		t.Errorf("Reference [%d,%d) vs Authors [%d,%d)", ref.Start, ref.End, au.Start, au.End)
	}
	nm := names[0]
	if !(au.Start < nm.Start && nm.End < au.End) {
		t.Errorf("Authors [%d,%d) vs Name [%d,%d)", au.Start, au.End, nm.Start, nm.End)
	}
	if tree.Count() < 20 {
		t.Errorf("Count = %d", tree.Count())
	}
}

func TestDumpFigure(t *testing.T) {
	_, doc, tree := parseMini(t)
	dump := tree.Dump(doc.Content())
	for _, want := range []string{"Ref_Set", "Reference", "Authors", "Name", "Last_Name", `"Chang"`} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q:\n%s", want, dump)
		}
	}
	// Indentation reflects nesting: Name under Authors.
	lines := strings.Split(dump, "\n")
	var authorIndent, nameIndent int
	for _, l := range lines {
		trimmed := strings.TrimLeft(l, " ")
		switch {
		case strings.HasPrefix(trimmed, "Authors"):
			authorIndent = len(l) - len(trimmed)
		case strings.HasPrefix(trimmed, "Name") && nameIndent == 0:
			nameIndent = len(l) - len(trimmed)
		}
	}
	if nameIndent <= authorIndent {
		t.Errorf("indents: Authors %d, Name %d", authorIndent, nameIndent)
	}
}

func TestNaturalValue(t *testing.T) {
	_, doc, tree := parseMini(t)
	v := BuildValue(tree, doc.Content())
	// Root: tuple{Reference: set(...)}.
	root, ok := v.(*db.Tuple)
	if !ok {
		t.Fatalf("root value %T", v)
	}
	refsV, _ := root.Get("Reference")
	refs := refsV.(*db.Set)
	if refs.Len() != 2 {
		t.Fatalf("references = %d", refs.Len())
	}
	r0 := refs.Elems()[0].(*db.Tuple)
	if key, _ := r0.Get("Key"); key.(db.String) != "Corl82a" {
		t.Errorf("Key = %v", key)
	}
	if title, _ := r0.Get("Title"); title.(db.String) != "Solving Ordinary Differential Equations" {
		t.Errorf("Title = %v", title)
	}
	if year, _ := r0.Get("Year"); year.(db.String) != "1982" {
		t.Errorf("Year = %v", year)
	}
	// The paper's path: Authors.Name.Last_Name.
	lasts := db.NavigateStrings(r0, db.PathOf("Authors", "Name", "Last_Name"))
	if len(lasts) != 2 || lasts[0] != "Corliss" || lasts[1] != "Chang" {
		t.Errorf("author last names = %v", lasts)
	}
	firsts := db.NavigateStrings(r0, db.PathOf("Authors", "Name", "First_Name"))
	if len(firsts) != 2 || firsts[0] != "G. F." {
		t.Errorf("author first names = %v", firsts)
	}
	eds := db.NavigateStrings(r0, db.PathOf("Editors", "Name", "Last_Name"))
	if len(eds) != 1 || eds[0] != "Griewank" {
		t.Errorf("editors = %v", eds)
	}
}

func TestCustomAction(t *testing.T) {
	g := NewGrammar("S")
	g.MustAddTerminal("Num", `[0-9]+`)
	p := g.AddProduction("S", Lit("["), Term("Num"), Lit(":"), Term("Num"), Lit("]"))
	p.Action = func(kids []db.Value, matched string) db.Value {
		return db.NewTuple().Put("lo", kids[0]).Put("hi", kids[1])
	}
	doc := text.NewDocument("d", "[3:42]")
	tree, err := g.Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	v := BuildValue(tree, doc.Content()).(*db.Tuple)
	if lo, _ := v.Get("lo"); lo.(db.String) != "3" {
		t.Errorf("lo = %v", lo)
	}
	if hi, _ := v.Get("hi"); hi.(db.String) != "42" {
		t.Errorf("hi = %v", hi)
	}
}

func TestCustomActionWithRepetition(t *testing.T) {
	// $-style positional children: a repetition contributes one set value.
	g := NewGrammar("List")
	g.MustAddTerminal("W", `[a-z]+`)
	p := g.AddProduction("List", Lit("("), Term("W"), Lit(":"), Rep("Item", ","), Lit(")"))
	p.Action = func(kids []db.Value, matched string) db.Value {
		return db.NewTuple().Put("head", kids[0]).Put("items", kids[1])
	}
	g.AddProduction("Item", Lit("<"), Term("W"), Lit(">"))
	doc := text.NewDocument("d", "(label: <a>, <b>, <c>)")
	tree, err := g.Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	v := BuildValue(tree, doc.Content()).(*db.Tuple)
	if head, _ := v.Get("head"); head.(db.String) != "label" {
		t.Errorf("head = %v", head)
	}
	items, _ := v.Get("items")
	if items.(*db.Set).Len() != 3 {
		t.Errorf("items = %v", items)
	}
	// Zero repetitions still produce an (empty) set.
	doc2 := text.NewDocument("d", "(label: )")
	tree2, err := g.Parse(doc2)
	if err != nil {
		t.Fatal(err)
	}
	v2 := BuildValue(tree2, doc2.Content()).(*db.Tuple)
	items2, _ := v2.Get("items")
	if items2.(*db.Set).Len() != 0 {
		t.Errorf("empty items = %v", items2)
	}
}

func TestNaturalValueMultiTerminal(t *testing.T) {
	// A production with several terminals and no non-terminals
	// concatenates the matched texts.
	g := NewGrammar("Pair")
	g.MustAddTerminal("N", `[0-9]+`)
	g.AddProduction("Pair", Term("N"), Lit("-"), Term("N"))
	doc := text.NewDocument("d", "114-144")
	tree, err := g.Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := BuildValue(tree, doc.Content()).(db.String); got != "114144" {
		t.Errorf("value = %q", got)
	}
}

func TestDeriveRIG(t *testing.T) {
	g := miniBibtex(t)
	graph := g.DeriveRIG()
	wantEdges := [][2]string{
		{"Ref_Set", "Reference"},
		{"Reference", "Key"}, {"Reference", "Authors"}, {"Reference", "Title"},
		{"Reference", "Year"}, {"Reference", "Editors"},
		{"Authors", "Name"}, {"Editors", "Name"},
		{"Name", "First_Name"}, {"Name", "Last_Name"},
	}
	for _, e := range wantEdges {
		if !graph.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	if graph.EdgeCount() != len(wantEdges) {
		t.Errorf("EdgeCount = %d, want %d:\n%s", graph.EdgeCount(), len(wantEdges), graph)
	}
	if graph.HasEdge("Title", "Last_Name") {
		t.Error("spurious edge")
	}
}

func TestBuildInstanceSatisfiesRIG(t *testing.T) {
	g := miniBibtex(t)
	doc := text.NewDocument("mini.bib", miniDoc)
	in, tree, err := g.BuildInstance(doc, IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if tree == nil {
		t.Fatal("nil tree")
	}
	// Full indexing: every non-terminal except the root.
	if in.Has("Ref_Set") {
		t.Error("root must not be indexed")
	}
	for _, n := range []string{"Reference", "Key", "Authors", "Title", "Year", "Editors", "Name", "First_Name", "Last_Name"} {
		if !in.Has(n) {
			t.Errorf("missing region index %q", n)
		}
	}
	if got := in.MustRegion("Reference").Len(); got != 2 {
		t.Errorf("Reference regions = %d", got)
	}
	if got := in.MustRegion("Name").Len(); got != 5 {
		t.Errorf("Name regions = %d", got)
	}
	if !in.Universe().ProperlyNested() {
		t.Error("parse-tree regions must nest properly")
	}
	if err := g.DeriveRIG().Satisfies(in); err != nil {
		t.Errorf("instance must satisfy derived RIG: %v", err)
	}
}

func TestPartialAndScopedIndexing(t *testing.T) {
	g := miniBibtex(t)
	doc := text.NewDocument("mini.bib", miniDoc)
	in, tree, err := g.BuildInstance(doc, IndexSpec{
		Names:  []string{"Reference", "Key", "Last_Name"},
		Scoped: []ScopedName{{Name: "Name", Within: "Authors"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.Has("Authors") || in.Has("Title") {
		t.Error("partial index has extra names")
	}
	// All 5 last names are indexed, but only the 3 author names.
	if got := in.MustRegion("Last_Name").Len(); got != 5 {
		t.Errorf("Last_Name = %d", got)
	}
	if got := in.MustRegion("Name").Len(); got != 3 {
		t.Errorf("scoped Name = %d", got)
	}
	// Scoped extraction from the tree directly.
	if got := ExtractScopedRegions(tree, "Last_Name", "Editors").Len(); got != 2 {
		t.Errorf("editor last names = %d", got)
	}
	if got := ExtractScopedRegions(tree, "Last_Name", "Nope").Len(); got != 0 {
		t.Errorf("scoped within unknown = %d", got)
	}
}

func TestExtractRegionsExplicitNames(t *testing.T) {
	_, _, tree := parseMini(t)
	m := ExtractRegions(tree, "Reference", "Ghost")
	if m["Reference"].Len() != 2 {
		t.Errorf("Reference = %v", m["Reference"])
	}
	if got, ok := m["Ghost"]; !ok || !got.IsEmpty() {
		t.Errorf("Ghost = %v %v", got, ok)
	}
	if _, ok := m["Name"]; ok {
		t.Error("unrequested name extracted")
	}
}

func TestParseAsRegion(t *testing.T) {
	g, doc, tree := parseMini(t)
	ref := tree.Find("Reference")[1]
	sub, err := g.ParseAs(doc, "Reference", ref.Start, ref.End)
	if err != nil {
		t.Fatalf("ParseAs: %v", err)
	}
	if sub.Start != ref.Start || sub.End != ref.End {
		t.Errorf("span [%d,%d) vs [%d,%d)", sub.Start, sub.End, ref.Start, ref.End)
	}
	v := BuildValue(sub, doc.Content()).(*db.Tuple)
	if key, _ := v.Get("Key"); key.(db.String) != "Grie89b" {
		t.Errorf("Key = %v", key)
	}
	// Unknown symbol.
	if _, err := g.ParseAs(doc, "Nope", 0, doc.Len()); err == nil {
		t.Error("unknown symbol accepted")
	}
}

func TestParseErrors(t *testing.T) {
	g := miniBibtex(t)
	// Truncated input.
	doc := text.NewDocument("bad.bib", `@INCOLLECTION{Corl82a, AUTHOR = "G. F. Corliss`)
	_, err := g.Parse(doc)
	if err == nil {
		t.Fatal("truncated input accepted")
	}
	perr, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Offset == 0 || !strings.Contains(perr.Error(), "bad.bib") {
		t.Errorf("error = %v", perr)
	}
	// Trailing garbage.
	doc2 := text.NewDocument("t.bib", miniDoc+"garbage")
	if _, err := g.Parse(doc2); err == nil {
		t.Error("trailing garbage accepted")
	}
	// Empty input parses as zero references.
	doc3 := text.NewDocument("e.bib", "  \n ")
	tree, err := g.Parse(doc3)
	if err != nil {
		t.Fatalf("empty: %v", err)
	}
	if len(tree.Find("Reference")) != 0 {
		t.Error("phantom references")
	}
}

func TestValidateErrors(t *testing.T) {
	// Missing root.
	g := NewGrammar("S")
	if err := g.Validate(); err == nil {
		t.Error("missing root accepted")
	}
	// Undefined non-terminal reference.
	g2 := NewGrammar("S")
	g2.AddProduction("S", Lit("x"), NT("Missing"))
	if err := g2.Validate(); err == nil || !strings.Contains(err.Error(), "Missing") {
		t.Errorf("undefined NT: %v", err)
	}
	// Undefined terminal.
	g3 := NewGrammar("S")
	g3.AddProduction("S", Term("T"))
	if err := g3.Validate(); err == nil {
		t.Error("undefined terminal accepted")
	}
	// Duplicate non-terminal in one RHS.
	g4 := NewGrammar("S")
	g4.MustAddTerminal("N", `[0-9]+`)
	g4.AddProduction("S", Lit("a"), NT("A"), Lit("b"), NT("A"))
	g4.AddProduction("A", Term("N"))
	if err := g4.Validate(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate NT: %v", err)
	}
	// Unit production outside the root.
	g5 := NewGrammar("S")
	g5.MustAddTerminal("N", `[0-9]+`)
	g5.AddProduction("S", Lit("a"), NT("A"))
	g5.AddProduction("A", NT("B"))
	g5.AddProduction("B", Term("N"))
	if err := g5.Validate(); err == nil || !strings.Contains(err.Error(), "unit production") {
		t.Errorf("unit production: %v", err)
	}
	// Redefined terminal.
	g6 := NewGrammar("S")
	g6.MustAddTerminal("N", `[0-9]+`)
	if err := g6.AddTerminal("N", `x`); err == nil {
		t.Error("terminal redefinition accepted")
	}
	// Bad terminal pattern.
	if err := g6.AddTerminal("Bad", `[`); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestSkipSpaceOff(t *testing.T) {
	g := NewGrammar("S")
	g.MustAddTerminal("N", `[0-9]+`)
	g.AddProduction("S", Lit("a"), Term("N"))
	g.SkipSpace = false
	if _, err := g.Parse(text.NewDocument("d", "a 1")); err == nil {
		t.Error("space accepted with SkipSpace off")
	}
	if _, err := g.Parse(text.NewDocument("d", "a1")); err != nil {
		t.Errorf("exact match failed: %v", err)
	}
}

func TestAlternatives(t *testing.T) {
	g := NewGrammar("S")
	g.MustAddTerminal("N", `[0-9]+`)
	g.MustAddTerminal("W", `[a-z]+`)
	g.AddProduction("S", Lit("#"), Term("N"))
	g.AddProduction("S", Lit("#"), Term("W"))
	for _, input := range []string{"#42", "#abc"} {
		tree, err := g.Parse(text.NewDocument("d", input))
		if err != nil {
			t.Errorf("Parse(%q): %v", input, err)
			continue
		}
		if tree.End != len(input) {
			t.Errorf("Parse(%q) span end = %d", input, tree.End)
		}
	}
}

func TestProductionString(t *testing.T) {
	g := miniBibtex(t)
	s := g.Productions("Authors")[0].String()
	if !strings.Contains(s, "(Authors)") || !strings.Contains(s, "(Name)* sep") {
		t.Errorf("Production.String = %q", s)
	}
	if got := Rep("X", "").String(); got != "(X)*" {
		t.Errorf("Rep = %q", got)
	}
}
