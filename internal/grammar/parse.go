package grammar

import (
	"fmt"

	"qof/internal/text"
)

// ParseError reports a parse failure with the furthest position reached and
// what was expected there.
type ParseError struct {
	Doc      string
	Offset   int
	Expected []string
}

func (e *ParseError) Error() string {
	if len(e.Expected) == 0 {
		return fmt.Sprintf("grammar: %s: parse error at offset %d", e.Doc, e.Offset)
	}
	return fmt.Sprintf("grammar: %s: parse error at offset %d: expected %v",
		e.Doc, e.Offset, e.Expected)
}

// Parse parses the whole document as the root symbol, returning the parse
// tree. Trailing whitespace is permitted; any other trailing content is an
// error.
func (g *Grammar) Parse(doc *text.Document) (*Node, error) {
	return g.ParseAs(doc, g.root, 0, doc.Len())
}

// ParseAs parses the byte range [from, to) of the document as the given
// non-terminal. It is the entry point for the partial-indexing engine,
// which parses only candidate regions (Section 6.2). The region must be
// fully consumed up to trailing whitespace.
func (g *Grammar) ParseAs(doc *text.Document, sym string, from, to int) (*Node, error) {
	if !g.validated {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	if len(g.prods[sym]) == 0 {
		return nil, fmt.Errorf("grammar: unknown non-terminal %q", sym)
	}
	p := &runner{g: g, src: doc.Content()[:to], memo: make(map[memoKey]memoVal)}
	node, end, ok := p.parseNT(sym, from)
	if ok {
		if rest := p.skip(end); rest == to {
			return node, nil
		}
		// Partial match: report the furthest progress for diagnosis.
		if end > p.furthest {
			p.furthest = end
			p.expected = []string{"end of region"}
		}
	}
	return nil, &ParseError{Doc: doc.Name(), Offset: p.furthest, Expected: dedupe(p.expected)}
}

type memoKey struct {
	sym string
	pos int
}

type memoVal struct {
	node *Node
	end  int
	ok   bool
}

type runner struct {
	g        *Grammar
	src      string
	memo     map[memoKey]memoVal
	furthest int
	expected []string
	depth    int
}

const maxDepth = 10000

// skip advances past ASCII whitespace when the grammar says so.
func (r *runner) skip(pos int) int {
	if !r.g.SkipSpace {
		return pos
	}
	for pos < len(r.src) {
		switch r.src[pos] {
		case ' ', '\t', '\n', '\r':
			pos++
		default:
			return pos
		}
	}
	return pos
}

func (r *runner) fail(pos int, expected string) {
	if pos > r.furthest {
		r.furthest = pos
		r.expected = r.expected[:0]
	}
	if pos == r.furthest {
		r.expected = append(r.expected, expected)
	}
}

// parseNT parses the non-terminal at pos, with packrat memoization.
func (r *runner) parseNT(sym string, pos int) (*Node, int, bool) {
	key := memoKey{sym, pos}
	if v, ok := r.memo[key]; ok {
		return v.node, v.end, v.ok
	}
	r.depth++
	if r.depth > maxDepth {
		panic(fmt.Sprintf("grammar: recursion depth exceeded parsing %q at offset %d (left recursion?)", sym, pos))
	}
	var out memoVal
	for _, p := range r.g.prods[sym] {
		if node, end, ok := r.parseProd(p, pos); ok {
			out = memoVal{node: node, end: end, ok: true}
			break
		}
	}
	r.depth--
	r.memo[key] = out
	return out.node, out.end, out.ok
}

// parseProd matches one production at pos.
func (r *runner) parseProd(p *Production, pos int) (*Node, int, bool) {
	cur := r.skip(pos)
	start := cur
	node := &Node{Sym: p.LHS, Prod: p, Start: start}
	for _, e := range p.RHS {
		cur = r.skip(cur)
		switch e.Kind {
		case ElemLit:
			if !hasPrefixAt(r.src, cur, e.Text) {
				r.fail(cur, fmt.Sprintf("%q", e.Text))
				return nil, 0, false
			}
			cur += len(e.Text)
		case ElemTerm:
			n := r.g.terms[e.Name](r.src[cur:])
			if n <= 0 {
				r.fail(cur, "<"+e.Name+">")
				return nil, 0, false
			}
			node.Kids = append(node.Kids, &Node{
				Sym: e.Name, Term: true, Start: cur, End: cur + n,
			})
			cur += n
		case ElemNT:
			kid, end, ok := r.parseNT(e.Name, cur)
			if !ok {
				return nil, 0, false
			}
			node.Kids = append(node.Kids, kid)
			cur = end
		case ElemRep:
			kid, end, ok := r.parseNT(e.Name, cur)
			if !ok {
				break // zero repetitions
			}
			node.Kids = append(node.Kids, kid)
			cur = end
			for {
				after := r.skip(cur)
				if e.Text != "" {
					if !hasPrefixAt(r.src, after, e.Text) {
						break
					}
					after += len(e.Text)
				}
				kid, end, ok := r.parseNT(e.Name, after)
				if !ok {
					break
				}
				node.Kids = append(node.Kids, kid)
				cur = end
			}
		}
	}
	node.End = cur
	if node.End < node.Start {
		node.End = node.Start
	}
	return node, cur, true
}

func hasPrefixAt(s string, pos int, prefix string) bool {
	return pos+len(prefix) <= len(s) && s[pos:pos+len(prefix)] == prefix
}

func dedupe(ss []string) []string {
	seen := make(map[string]bool, len(ss))
	var out []string
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
