package refeval_test

import (
	"errors"
	"testing"

	"qof/internal/algebra"
	"qof/internal/bibtex"
	"qof/internal/index"
	"qof/internal/refeval"
	"qof/internal/region"
	"qof/internal/text"
	"qof/internal/xsql"
)

// handInstance builds a small instance with hand-placed regions:
//
//	content: "alpha beta gamma alpha delta beta"
//	          0     6    11    17    23    29
//	A = whole document, B = two halves, C = the two alpha words
func handInstance(t *testing.T) *index.Instance {
	t.Helper()
	doc := text.NewDocument("hand.txt", "alpha beta gamma alpha delta beta")
	in := index.NewInstance(doc)
	in.Define("A", region.FromRegions([]region.Region{{Start: 0, End: 33}}))
	in.Define("B", region.FromRegions([]region.Region{
		{Start: 0, End: 16}, {Start: 17, End: 33},
	}))
	in.Define("C", region.FromRegions([]region.Region{
		{Start: 0, End: 5}, {Start: 17, End: 22},
	}))
	return in
}

// TestEvalAgainstFastEvaluator checks the naive evaluator against the real
// one on every operator over the hand instance. This is the base case the
// differential harness scales up.
func TestEvalAgainstFastEvaluator(t *testing.T) {
	in := handInstance(t)
	ref := refeval.New(in)
	fast := algebra.NewEvaluator(in)

	exprs := []string{
		`word("alpha")`,
		`word("beta")`,
		`word("missing")`,
		`prefix("al")`,
		`prefix("gam")`,
		`match("a b")`,
		`match("alpha")`,
		`A + B`,
		`A & B`,
		`A - B`,
		`B - A`,
		`A > C`,
		`B > C`,
		`C < A`,
		`C < B`,
		`A >d C`,
		`A >d B`,
		`B >d C`,
		`C <d A`,
		`C <d B`,
		`innermost(A + B + C)`,
		`outermost(A + B + C)`,
		`innermost(B)`,
		`contains(B, "alpha")`,
		`contains(B, "gamma")`,
		`equals(C, "alpha")`,
		`equals(B, "alpha beta gamma")`,
		`starts(B, "alpha")`,
		`starts(B, "xy")`,
		`near(C, word("beta"), 1)`,
		`near(C, word("gamma"), 0)`,
		`near(C, word("delta"), 30)`,
		`freq(B, "beta", 1)`,
		`freq(B, "beta", 2)`,
		`freq(B, "beta", 0)`,
		`(A > C) + contains(B, "delta")`,
		`innermost((A + B) > C)`,
	}
	for _, src := range exprs {
		e := algebra.MustParse(src)
		want, err := fast.Eval(e)
		if err != nil {
			t.Fatalf("fast eval %s: %v", src, err)
		}
		got, err := ref.Eval(e)
		if err != nil {
			t.Fatalf("ref eval %s: %v", src, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s:\n  fast: %v\n  ref:  %v", src, want, got)
		}
	}
}

// TestEvalNotIndexed checks error parity with the fast evaluator on
// unindexed names.
func TestEvalNotIndexed(t *testing.T) {
	in := handInstance(t)
	ref := refeval.New(in)
	fast := algebra.NewEvaluator(in)
	e := algebra.MustParse(`A > Missing`)
	if _, err := ref.Eval(e); !errors.Is(err, algebra.ErrNotIndexed) {
		t.Fatalf("ref error = %v, want ErrNotIndexed", err)
	}
	if _, err := fast.Eval(e); !errors.Is(err, algebra.ErrNotIndexed) {
		t.Fatalf("fast error = %v, want ErrNotIndexed", err)
	}
}

// TestDirectInclusionUsesUniverse pins the defining property of ⊃d: a region
// of a third indexed set strictly between the pair breaks directness.
func TestDirectInclusionUsesUniverse(t *testing.T) {
	doc := text.NewDocument("u.txt", "aaaaaaaaaa")
	in := index.NewInstance(doc)
	in.Define("Outer", region.FromRegions([]region.Region{{Start: 0, End: 10}}))
	in.Define("Mid", region.FromRegions([]region.Region{{Start: 1, End: 9}}))
	in.Define("Inner", region.FromRegions([]region.Region{{Start: 2, End: 8}}))
	ref := refeval.New(in)

	got, err := ref.Eval(algebra.MustParse(`Outer >d Inner`))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsEmpty() {
		t.Errorf("Outer >d Inner = %v, want empty (Mid intervenes)", got)
	}
	got, err = ref.Eval(algebra.MustParse(`Outer >d Mid`))
	if err != nil {
		t.Fatal(err)
	}
	want := region.FromRegions([]region.Region{{Start: 0, End: 10}})
	if !got.Equal(want) {
		t.Errorf("Outer >d Mid = %v, want %v", got, want)
	}
}

// TestOracleAgainstEngineSmoke runs the oracle on a real BibTeX corpus and a
// couple of hand queries; the full workout lives in refeval/diff.
func TestOracleAgainstEngineSmoke(t *testing.T) {
	cfg := bibtex.DefaultConfig(8)
	cfg.Seed = 7
	src, _ := bibtex.Generate(cfg)
	doc := text.NewDocument("smoke.bib", src)
	cat := bibtex.Catalog()
	o, err := refeval.NewOracle(cat, doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, qs := range []string{
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`,
		`SELECT r.Title FROM References r WHERE r.Year = "1990"`,
		`SELECT r FROM References r`,
	} {
		q := xsql.MustParse(qs)
		res, err := o.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if res.Projected != (len(q.Select.Segs) > 0) {
			t.Errorf("%s: Projected = %v", qs, res.Projected)
		}
		if !res.Projected && len(res.Objects) != res.Regions.Len() {
			t.Errorf("%s: %d objects but %d regions", qs, len(res.Objects), res.Regions.Len())
		}
	}
	if _, err := o.Query(xsql.MustParse(`SELECT x FROM Nope x`)); err == nil {
		t.Error("unbound class: want error")
	}
}
