// Package refeval is the differential-testing oracle of the system: a naive
// reference evaluator that computes every region-algebra operation and every
// XSQL query by direct definition-chasing, with none of the machinery the
// real pipeline relies on — no sweep algorithms, no optimizer, no CSE memo,
// no plan cache, no parallelism, no index-only shortcuts.
//
// The implementations here are deliberately quadratic (cubic for the direct
// inclusion operators): each operator is a literal transcription of its
// set-builder definition from Section 3 of the paper, so the code is easy to
// audit by eye. The diff subpackage runs randomly generated queries through
// both this oracle and the full engine and fails on any disagreement, which
// is how Theorem 3.6 — every rewrite is semantics-preserving — is checked on
// far more inputs than the hand-written tests cover.
package refeval

import (
	"fmt"
	"strings"

	"qof/internal/algebra"
	"qof/internal/index"
	"qof/internal/region"
	"qof/internal/text"
)

// Evaluator evaluates region-algebra expressions against an index instance
// by brute force. It reads only the instance's named region sets and the
// document text; the word index, the region Universe and the sweep
// implementations are never consulted.
type Evaluator struct {
	in     *index.Instance
	tokens []text.Token // document tokenization, computed once
}

// New creates a reference evaluator over the instance.
func New(in *index.Instance) *Evaluator {
	return &Evaluator{
		in:     in,
		tokens: text.Tokenize(in.Document().Content()),
	}
}

// Eval evaluates e by definition-chasing. Errors match the real evaluator's
// contract: an unindexed region name yields an error wrapping
// algebra.ErrNotIndexed.
func (ev *Evaluator) Eval(e algebra.Expr) (region.Set, error) {
	rs, err := ev.eval(e)
	if err != nil {
		return region.Empty, err
	}
	return region.FromRegions(rs), nil
}

// eval returns an unordered region slice (with possible duplicates); Eval
// normalizes at the end so intermediate steps stay definition-shaped.
func (ev *Evaluator) eval(e algebra.Expr) ([]region.Region, error) {
	switch e := e.(type) {
	case algebra.Name:
		s, ok := ev.in.Region(e.Ident)
		if !ok {
			return nil, fmt.Errorf("refeval: region %q: %w", e.Ident, algebra.ErrNotIndexed)
		}
		return s.Regions(), nil
	case algebra.Word:
		return ev.wordRegions(e.W), nil
	case algebra.Prefix:
		content := ev.in.Document().Content()
		var out []region.Region
		for _, tok := range ev.tokens {
			if strings.HasPrefix(content[tok.Start:tok.End], e.P) {
				out = append(out, region.Region{Start: tok.Start, End: tok.End})
			}
		}
		return out, nil
	case algebra.Match:
		if e.S == "" {
			return nil, nil
		}
		content := ev.in.Document().Content()
		var out []region.Region
		for i := 0; i+len(e.S) <= len(content); i++ {
			if content[i:i+len(e.S)] == e.S {
				out = append(out, region.Region{Start: i, End: i + len(e.S)})
			}
		}
		return out, nil
	case algebra.Select:
		arg, err := ev.eval(e.Arg)
		if err != nil {
			return nil, err
		}
		return ev.selectRegions(arg, e.Mode, e.W), nil
	case algebra.Unary:
		arg, err := ev.eval(e.Arg)
		if err != nil {
			return nil, err
		}
		if e.Op == algebra.OpInnermost {
			return innermost(arg), nil
		}
		return outermost(arg), nil
	case algebra.Near:
		l, err := ev.eval(e.E)
		if err != nil {
			return nil, err
		}
		to, err := ev.eval(e.To)
		if err != nil {
			return nil, err
		}
		return near(l, to, e.K), nil
	case algebra.Freq:
		arg, err := ev.eval(e.Arg)
		if err != nil {
			return nil, err
		}
		return ev.freq(arg, e.W, e.N), nil
	case algebra.Binary:
		l, err := ev.eval(e.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.eval(e.R)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case algebra.OpUnion:
			return append(append([]region.Region(nil), l...), r...), nil
		case algebra.OpDiff:
			return diff(l, r), nil
		case algebra.OpIntersect:
			return intersect(l, r), nil
		case algebra.OpIncluding:
			return including(l, r), nil
		case algebra.OpIncluded:
			return included(l, r), nil
		case algebra.OpDirIncluding:
			return directlyIncluding(l, r, ev.universe()), nil
		case algebra.OpDirIncluded:
			return directlyIncluded(l, r, ev.universe()), nil
		default:
			return nil, fmt.Errorf("refeval: unknown operator %v", e.Op)
		}
	default:
		return nil, fmt.Errorf("refeval: unknown expression %T", e)
	}
}

// universe is every indexed region of every name — the "other regions" a
// direct inclusion must rule out. It is recomputed per use: correctness over
// speed.
func (ev *Evaluator) universe() []region.Region {
	var out []region.Region
	for _, name := range ev.in.Names() {
		out = append(out, ev.in.MustRegion(name).Regions()...)
	}
	return out
}

// wordRegions returns a word-width region for every token whose text is
// exactly w.
func (ev *Evaluator) wordRegions(w string) []region.Region {
	content := ev.in.Document().Content()
	var out []region.Region
	for _, tok := range ev.tokens {
		if content[tok.Start:tok.End] == w {
			out = append(out, region.Region{Start: tok.Start, End: tok.End})
		}
	}
	return out
}

// selectRegions applies σ by scanning every token for every region.
func (ev *Evaluator) selectRegions(arg []region.Region, mode algebra.SelMode, w string) []region.Region {
	content := ev.in.Document().Content()
	var out []region.Region
	for _, r := range arg {
		keep := false
		switch mode {
		case algebra.SelContains:
			for _, tok := range ev.tokens {
				if tok.Start >= r.Start && tok.End <= r.End && content[tok.Start:tok.End] == w {
					keep = true
					break
				}
			}
		case algebra.SelEquals:
			keep = content[r.Start:r.End] == w
		default: // SelPrefix
			keep = strings.HasPrefix(content[r.Start:r.End], w)
		}
		if keep {
			out = append(out, r)
		}
	}
	return out
}

// freq keeps the regions containing at least n whole-token occurrences of w;
// n ≤ 0 keeps everything (every region trivially has ≥ 0 occurrences).
func (ev *Evaluator) freq(arg []region.Region, w string, n int) []region.Region {
	if n <= 0 {
		return arg
	}
	content := ev.in.Document().Content()
	var out []region.Region
	for _, r := range arg {
		count := 0
		for _, tok := range ev.tokens {
			if tok.Start >= r.Start && tok.End <= r.End && content[tok.Start:tok.End] == w {
				count++
			}
		}
		if count >= n {
			out = append(out, r)
		}
	}
	return out
}

// near keeps the regions of E within k bytes of some region of To, where the
// distance of overlapping or touching regions is 0.
func near(E, To []region.Region, k int) []region.Region {
	var out []region.Region
	for _, r := range E {
		for _, t := range To {
			gap := 0
			switch {
			case t.Start >= r.End:
				gap = t.Start - r.End
			case r.Start >= t.End:
				gap = r.Start - t.End
			}
			if gap <= k {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

func contains(rs []region.Region, r region.Region) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}

func diff(l, r []region.Region) []region.Region {
	var out []region.Region
	for _, x := range l {
		if !contains(r, x) {
			out = append(out, x)
		}
	}
	return out
}

func intersect(l, r []region.Region) []region.Region {
	var out []region.Region
	for _, x := range l {
		if contains(r, x) {
			out = append(out, x)
		}
	}
	return out
}

// including computes R ⊃ S: {r ∈ R : ∃s ∈ S, r ⊋ s} with the strict
// position-pair reading of inclusion.
func including(R, S []region.Region) []region.Region {
	var out []region.Region
	for _, r := range R {
		for _, s := range S {
			if r.StrictlyIncludes(s) {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// included computes R ⊂ S: {r ∈ R : ∃s ∈ S, s ⊋ r}.
func included(R, S []region.Region) []region.Region {
	var out []region.Region
	for _, r := range R {
		for _, s := range S {
			if s.StrictlyIncludes(r) {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// directlyIncluding computes R ⊃d S: r qualifies when it strictly includes
// some s with no universe region strictly in between.
func directlyIncluding(R, S, universe []region.Region) []region.Region {
	var out []region.Region
	for _, r := range R {
		if directWitness(r, S, universe, true) {
			out = append(out, r)
		}
	}
	return out
}

// directlyIncluded computes R ⊂d S: r qualifies when some s strictly
// includes it with no universe region strictly in between.
func directlyIncluded(R, S, universe []region.Region) []region.Region {
	var out []region.Region
	for _, r := range R {
		if directWitness(r, S, universe, false) {
			out = append(out, r)
		}
	}
	return out
}

// directWitness looks for an s ∈ S forming a direct pair with r: outer ⊋
// inner with no t strictly between them. including selects which side r is
// on.
func directWitness(r region.Region, S, universe []region.Region, including bool) bool {
	for _, s := range S {
		outer, inner := r, s
		if !including {
			outer, inner = s, r
		}
		if !outer.StrictlyIncludes(inner) {
			continue
		}
		between := false
		for _, t := range universe {
			if outer.StrictlyIncludes(t) && t.StrictlyIncludes(inner) {
				between = true
				break
			}
		}
		if !between {
			return true
		}
	}
	return false
}

// innermost computes ι(R): the regions of R including no other region of R.
func innermost(R []region.Region) []region.Region {
	var out []region.Region
	for _, r := range R {
		minimal := true
		for _, other := range R {
			if other != r && r.Includes(other) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, r)
		}
	}
	return out
}

// outermost computes ω(R): the regions of R included in no other region of R.
func outermost(R []region.Region) []region.Region {
	var out []region.Region
	for _, r := range R {
		maximal := true
		for _, other := range R {
			if other != r && other.Includes(r) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, r)
		}
	}
	return out
}
