package refeval

import (
	"fmt"
	"sync"

	"qof/internal/compile"
	"qof/internal/db"
	"qof/internal/grammar"
	"qof/internal/region"
	"qof/internal/text"
	"qof/internal/xsql"
)

// Oracle answers XSQL queries by the dumbest correct strategy: parse the
// whole document once, enumerate every object of every class extent, bind
// range variables by exhaustive nested loops, and evaluate the WHERE clause
// in the database for every assignment. There is no phase 1, no candidate
// narrowing, no exactness shortcut and no plan: the index never enters the
// picture, which is exactly what makes a disagreement with the engine
// meaningful.
type Oracle struct {
	cat *compile.Catalog
	doc *text.Document

	mu      sync.Mutex
	tree    *grammar.Node
	extents map[string]*extent // guarded by mu; lazily filled per class
}

// extent is one class's objects in document order.
type extent struct {
	regions []region.Region
	objects []db.Value
}

// QueryResult mirrors the engine's observable result: the selected objects
// and their regions, or the projected strings.
type QueryResult struct {
	Objects   []db.Value
	Regions   region.Set
	Strings   []string
	Projected bool
}

// NewOracle parses the document with the catalog's grammar. The parse tree
// is the oracle's only data source.
func NewOracle(cat *compile.Catalog, doc *text.Document) (*Oracle, error) {
	tree, err := cat.Grammar.Parse(doc)
	if err != nil {
		return nil, fmt.Errorf("refeval: oracle parse: %w", err)
	}
	return &Oracle{
		cat:     cat,
		doc:     doc,
		tree:    tree,
		extents: make(map[string]*extent),
	}, nil
}

// classExtent materializes (once) every object of the class non-terminal.
func (o *Oracle) classExtent(nt string) *extent {
	o.mu.Lock()
	defer o.mu.Unlock()
	if ext, ok := o.extents[nt]; ok {
		return ext
	}
	ext := &extent{}
	for _, node := range o.tree.Find(nt) {
		ext.regions = append(ext.regions, region.Region{Start: node.Start, End: node.End})
		ext.objects = append(ext.objects, grammar.BuildValue(node, o.doc.Content()))
	}
	o.extents[nt] = ext
	return ext
}

// Query evaluates q by exhaustive nested loops over the full class extents.
// The result matches Engine.Execute up to order: Regions is a canonical set,
// and Objects/Strings are produced once per distinct region of the select
// variable, as the engine does.
func (o *Oracle) Query(q *xsql.Query) (*QueryResult, error) {
	res := &QueryResult{Projected: len(q.Select.Segs) > 0}
	exts := make([]*extent, len(q.From))
	for i, f := range q.From {
		nt, ok := o.cat.ClassNT(f.Class)
		if !ok {
			return nil, fmt.Errorf("refeval: class %q is not bound to a non-terminal", f.Class)
		}
		exts[i] = o.classExtent(nt)
	}
	steps := q.Select.Steps()
	selVar := q.Select.Var
	seen := make(map[region.Region]bool)
	var kept []region.Region
	env := make(xsql.Env, len(q.From))
	idx := make([]int, len(q.From))
	var loop func(i int) error
	loop = func(i int) error {
		if i < len(q.From) {
			for k := range exts[i].objects {
				idx[i] = k
				env[q.From[i].Var] = exts[i].objects[k]
				if err := loop(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		ok, err := xsql.EvalCond(env, q.Where)
		if err != nil || !ok {
			return err
		}
		for j, f := range q.From {
			if f.Var != selVar {
				continue
			}
			r := exts[j].regions[idx[j]]
			if seen[r] {
				continue
			}
			seen[r] = true
			kept = append(kept, r)
			obj := exts[j].objects[idx[j]]
			if res.Projected {
				res.Strings = append(res.Strings, db.NavigateStrings(obj, steps)...)
			} else {
				res.Objects = append(res.Objects, obj)
			}
		}
		return nil
	}
	if err := loop(0); err != nil {
		return nil, err
	}
	res.Regions = region.FromRegions(kept)
	return res, nil
}
