package diff_test

import (
	"sync"
	"testing"

	"qof/internal/qgen"
	"qof/internal/refeval/diff"
)

// The fuzz fixtures are built once per process: three domains, each with a
// full-indexing harness and a partial-indexing one. The fuzzer's inputs
// (domain selector + generator seed) then deterministically expand into one
// query and one expression per iteration, so every crashing input replays.
var (
	fuzzOnce     sync.Once
	fuzzDomains  []*qgen.Domain
	fuzzHarness  [][]*diff.Harness
	fuzzBuildErr error
)

func fuzzSetup() {
	fuzzDomains = qgen.Domains(corpusSeed)
	for _, d := range fuzzDomains {
		var hs []*diff.Harness
		for _, si := range []int{0, 1} {
			h, err := diff.New(d, si, d.Specs[si])
			if err != nil {
				fuzzBuildErr = err
				return
			}
			hs = append(hs, h)
		}
		fuzzHarness = append(fuzzHarness, hs)
	}
}

// FuzzDifferential drives the differential harness from fuzzer-chosen
// generator seeds: each input picks a domain, an index spec, and a seed that
// generates one query and one algebra expression to cross-check.
func FuzzDifferential(f *testing.F) {
	f.Add(byte('b'), uint64(1))
	f.Add(byte('s'), uint64(2))
	f.Add(byte('l'), uint64(3))
	f.Fuzz(func(t *testing.T, domain byte, seed uint64) {
		fuzzOnce.Do(fuzzSetup)
		if fuzzBuildErr != nil {
			t.Fatal(fuzzBuildErr)
		}
		d := fuzzDomains[int(domain)%len(fuzzDomains)]
		hs := fuzzHarness[int(domain)%len(fuzzDomains)]
		h := hs[int(seed%2)]
		qg := qgen.NewQueryGen(d, int64(seed))
		if err := h.CheckQuery(qg.Query()); err != nil {
			t.Fatal(err)
		}
		eg := qgen.ExprGenFor(d, h.In.Names(), int64(seed))
		if err := h.CheckExpr(eg.Expr()); err != nil {
			t.Fatal(err)
		}
	})
}
