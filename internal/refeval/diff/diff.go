// Package diff wires the full engine and the refeval oracle into a
// differential-testing harness: every generated query runs through both and
// any disagreement fails with a report that names the query, the plan and
// both results. The engine side deliberately exercises its whole machinery —
// optimized plans, the plan cache (every query executes twice), and the
// parallel phase-2 worker pool — while the oracle side uses none of it.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"qof/internal/algebra"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/index"
	"qof/internal/qgen"
	"qof/internal/refeval"
	"qof/internal/region"
	"qof/internal/xsql"
)

// Harness runs queries and expressions through the engine and the oracle.
type Harness struct {
	Name   string // e.g. "bibtex/spec1", for reports
	In     *index.Instance
	Eng    *engine.Engine
	Oracle *refeval.Oracle
	Ref    *refeval.Evaluator
}

// New builds a harness for one domain under one index specification. The
// engine runs with phase-2 parallelism enabled so the worker pool is under
// test too.
func New(d *qgen.Domain, specIdx int, spec grammar.IndexSpec) (*Harness, error) {
	in, _, err := d.Cat.Grammar.BuildInstance(d.Doc, spec)
	if err != nil {
		return nil, fmt.Errorf("diff: building instance for %s/spec%d: %w", d.Name, specIdx, err)
	}
	oracle, err := refeval.NewOracle(d.Cat, d.Doc)
	if err != nil {
		return nil, err
	}
	eng := engine.New(d.Cat, in)
	eng.Parallelism = 3
	return &Harness{
		Name:   fmt.Sprintf("%s/spec%d", d.Name, specIdx),
		In:     in,
		Eng:    eng,
		Oracle: oracle,
		Ref:    refeval.New(in),
	}, nil
}

// Harnesses builds one harness per index specification of the domain.
func Harnesses(d *qgen.Domain) ([]*Harness, error) {
	out := make([]*Harness, 0, len(d.Specs))
	for i, spec := range d.Specs {
		h, err := New(d, i, spec)
		if err != nil {
			return nil, err
		}
		out = append(out, h)
	}
	return out, nil
}

// CheckQuery executes q on the engine three times — the second and third
// runs must come from the plan cache, and by the third the cross-query
// result cache is warm, so both cache layers are under differential test —
// and on the oracle, and returns a mismatch report as an error, or nil when
// all runs agree.
func (h *Harness) CheckQuery(q *xsql.Query) error {
	want, oerr := h.Oracle.Query(q)
	for run := 0; run < 3; run++ {
		got, err := h.Eng.Execute(q)
		if (err != nil) != (oerr != nil) {
			return fmt.Errorf("%s: error disagreement on %s (run %d):\n  engine: %v\n  oracle: %v",
				h.Name, q, run, err, oerr)
		}
		if err != nil {
			continue // both sides reject the query the same way
		}
		if run >= 1 && !got.Stats.PlanCached {
			return fmt.Errorf("%s: run %d of %s did not hit the plan cache", h.Name, run, q)
		}
		if msg := h.compare(q, got, want); msg != "" {
			return fmt.Errorf("%s: mismatch on %s (run %d):\n%s\nplan:\n%s",
				h.Name, q, run, msg, indent(got.Plan.Explain()))
		}
	}
	return nil
}

// compare checks the engine result against the oracle result. Regions are
// compared as sets; projected strings and selected objects as multisets,
// since the engine's output order is document order while the oracle's is
// nested-loop order.
func (h *Harness) compare(q *xsql.Query, got *engine.Result, want *refeval.QueryResult) string {
	if got.Projected != want.Projected {
		return fmt.Sprintf("  projected: engine %v, oracle %v", got.Projected, want.Projected)
	}
	if got.Projected {
		if msg := compareMultiset("strings", got.Strings, want.Strings); msg != "" {
			return msg
		}
		return ""
	}
	if !got.Regions.Equal(want.Regions) {
		return fmt.Sprintf("  regions: engine %v\n           oracle %v\n           engine-only %v, oracle-only %v",
			got.Regions, want.Regions,
			setMinus(got.Regions, want.Regions), setMinus(want.Regions, got.Regions))
	}
	gs := make([]string, len(got.Objects))
	for i, o := range got.Objects {
		gs[i] = o.String()
	}
	ws := make([]string, len(want.Objects))
	for i, o := range want.Objects {
		ws[i] = o.String()
	}
	return compareMultiset("objects", gs, ws)
}

// CheckExpr evaluates e with the production evaluator — in both its
// universe-based and layered ⊃d configurations — and with the naive
// reference evaluator, and reports any disagreement. Errors must agree too
// (all sides reject unindexed names).
func (h *Harness) CheckExpr(e algebra.Expr) error {
	want, werr := h.Ref.Eval(e)
	for _, layered := range []bool{false, true} {
		ev := algebra.NewEvaluator(h.In)
		ev.UseLayeredDirect = layered
		got, err := ev.Eval(e)
		if (err != nil) != (werr != nil) {
			return fmt.Errorf("%s: error disagreement on %s (layered=%v):\n  engine: %v\n  refeval: %v",
				h.Name, e, layered, err, werr)
		}
		if err != nil {
			continue
		}
		if !got.Equal(want) {
			return fmt.Errorf("%s: mismatch on %s (layered=%v):\n  engine:  %v\n  refeval: %v\n  engine-only %v, refeval-only %v",
				h.Name, e, layered, got, want, setMinus(got, want), setMinus(want, got))
		}
	}
	return nil
}

// compareMultiset compares two string slices up to order.
func compareMultiset(what string, got, want []string) string {
	g := append([]string(nil), got...)
	w := append([]string(nil), want...)
	sort.Strings(g)
	sort.Strings(w)
	if len(g) == len(w) {
		same := true
		for i := range g {
			if g[i] != w[i] {
				same = false
				break
			}
		}
		if same {
			return ""
		}
	}
	return fmt.Sprintf("  %s: engine %d %v\n  %s  oracle %d %v",
		what, len(got), g, strings.Repeat(" ", len(what)), len(want), w)
}

func setMinus(a, b region.Set) region.Set {
	return a.Filter(func(r region.Region) bool { return !b.Contains(r) })
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
