// Package diff wires the full engine and the refeval oracle into a
// differential-testing harness: every generated query runs through both and
// any disagreement fails with a report that names the query, the plan and
// both results. The engine side deliberately exercises its whole machinery —
// optimized plans, the plan cache (every query executes twice), and the
// parallel phase-2 worker pool — while the oracle side uses none of it.
package diff

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"qof/internal/algebra"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/index"
	"qof/internal/qgen"
	"qof/internal/refeval"
	"qof/internal/region"
	"qof/internal/xsql"
)

// Harness runs queries and expressions through both engine executors — the
// default streaming pipeline and the materializing reference — and the
// oracle.
type Harness struct {
	Name      string // e.g. "bibtex/spec1", for reports
	In        *index.Instance
	Eng       *engine.Engine // streaming executor (the default)
	EngMat    *engine.Engine // materializing reference executor
	EngShared *engine.Engine // streaming executor with shared execution on
	Oracle    *refeval.Oracle
	Ref       *refeval.Evaluator
}

// limitLegKs are the LIMIT values the prefix leg re-runs every query with.
var limitLegKs = []int{1, 3}

// New builds a harness for one domain under one index specification. Both
// engines run with phase-2 parallelism enabled so the worker pools —
// including the streaming feeder/collector pipeline — are under test too.
func New(d *qgen.Domain, specIdx int, spec grammar.IndexSpec) (*Harness, error) {
	in, _, err := d.Cat.Grammar.BuildInstance(d.Doc, spec)
	if err != nil {
		return nil, fmt.Errorf("diff: building instance for %s/spec%d: %w", d.Name, specIdx, err)
	}
	oracle, err := refeval.NewOracle(d.Cat, d.Doc)
	if err != nil {
		return nil, err
	}
	eng := engine.New(d.Cat, in)
	eng.Parallelism = 3
	mat := engine.New(d.Cat, in)
	mat.Parallelism = 3
	mat.Materializing = true
	shared := engine.New(d.Cat, in)
	shared.Parallelism = 3
	shared.EnableSharedExecution()
	return &Harness{
		Name:      fmt.Sprintf("%s/spec%d", d.Name, specIdx),
		In:        in,
		Eng:       eng,
		EngMat:    mat,
		EngShared: shared,
		Oracle:    oracle,
		Ref:       refeval.New(in),
	}, nil
}

// Harnesses builds one harness per index specification of the domain.
func Harnesses(d *qgen.Domain) ([]*Harness, error) {
	out := make([]*Harness, 0, len(d.Specs))
	for i, spec := range d.Specs {
		h, err := New(d, i, spec)
		if err != nil {
			return nil, err
		}
		out = append(out, h)
	}
	return out, nil
}

// CheckQuery executes q on each engine three times — the second and third
// runs must come from the plan cache, and by the third the cross-query
// result cache is warm, so both cache layers of every executor (streaming,
// materializing, and streaming with shared execution) are under
// differential test — and on the oracle, and returns a mismatch report as
// an error, or nil when all runs agree. When the query succeeds, the LIMIT
// leg re-runs it with LIMIT k on both executors and checks the limited
// answer against the full one.
func (h *Harness) CheckQuery(q *xsql.Query) error {
	want, oerr := h.Oracle.Query(q)
	var full *engine.Result
	for _, leg := range []struct {
		mode string
		eng  *engine.Engine
	}{{"streaming", h.Eng}, {"materializing", h.EngMat}, {"shared", h.EngShared}} {
		for run := 0; run < 3; run++ {
			got, err := leg.eng.Execute(q)
			if (err != nil) != (oerr != nil) {
				return fmt.Errorf("%s: error disagreement on %s (%s run %d):\n  engine: %v\n  oracle: %v",
					h.Name, q, leg.mode, run, err, oerr)
			}
			if err != nil {
				continue // both sides reject the query the same way
			}
			if run >= 1 && !got.Stats.PlanCached {
				return fmt.Errorf("%s: %s run %d of %s did not hit the plan cache", h.Name, leg.mode, run, q)
			}
			if msg := h.compare(q, got, want); msg != "" {
				return fmt.Errorf("%s: mismatch on %s (%s run %d):\n%s\nplan:\n%s",
					h.Name, q, leg.mode, run, msg, indent(got.Plan.Explain()))
			}
			full = got
		}
	}
	if oerr != nil || full == nil {
		return nil
	}
	for _, k := range limitLegKs {
		if err := h.checkLimit(q, k, full); err != nil {
			return err
		}
	}
	return nil
}

// checkLimit runs q with LIMIT k through both executors and verifies the
// three LIMIT invariants: the executors agree exactly, the limited regions
// are a document-order prefix of the full sorted answer, and the row count
// is min(k, full). For single-variable queries the projected strings are a
// prefix of the full strings too; multi-variable emission order without a
// limit is nested-loop order, so only the region and count invariants apply
// there.
func (h *Harness) checkLimit(q *xsql.Query, k int, full *engine.Result) error {
	lq := *q
	lq.Limit = k
	stream, serr := h.Eng.Execute(&lq)
	mat, merr := h.EngMat.Execute(&lq)
	shared, sherr := h.EngShared.Execute(&lq)
	if serr != nil || merr != nil || sherr != nil {
		return fmt.Errorf("%s: LIMIT %d on %s failed:\n  streaming: %v\n  materializing: %v\n  shared: %v",
			h.Name, k, q, serr, merr, sherr)
	}
	if stream.Projected != mat.Projected ||
		!stream.Regions.Equal(mat.Regions) ||
		!equalStrings(stream.Strings, mat.Strings) {
		return fmt.Errorf("%s: LIMIT %d executor disagreement on %s:\n  streaming:     %v %v\n  materializing: %v %v",
			h.Name, k, q, stream.Regions, stream.Strings, mat.Regions, mat.Strings)
	}
	if stream.Projected != shared.Projected ||
		!stream.Regions.Equal(shared.Regions) ||
		!equalStrings(stream.Strings, shared.Strings) {
		return fmt.Errorf("%s: LIMIT %d shared-executor disagreement on %s:\n  streaming: %v %v\n  shared:    %v %v",
			h.Name, k, q, stream.Regions, stream.Strings, shared.Regions, shared.Strings)
	}
	// Row count: exactly k rows unless the full answer is smaller.
	rows, fullRows := stream.Stats.Results, full.Stats.Results
	if wantRows := min(k, fullRows); rows != wantRows {
		return fmt.Errorf("%s: LIMIT %d on %s returned %d rows, want %d (full %d)",
			h.Name, k, q, rows, wantRows, fullRows)
	}
	// Regions: a prefix of the full sorted answer.
	lr, fr := stream.Regions.Regions(), full.Regions.Regions()
	if len(lr) > len(fr) {
		return fmt.Errorf("%s: LIMIT %d on %s kept %d regions, full answer has %d",
			h.Name, k, q, len(lr), len(fr))
	}
	for i := range lr {
		if lr[i] != fr[i] {
			return fmt.Errorf("%s: LIMIT %d on %s: region %d is %v, full answer has %v — not a prefix",
				h.Name, k, q, i, lr[i], fr[i])
		}
	}
	if stream.Projected && len(q.From) == 1 {
		for i, s := range stream.Strings {
			if i >= len(full.Strings) || s != full.Strings[i] {
				return fmt.Errorf("%s: LIMIT %d on %s: strings are not a prefix of the full answer:\n  limited %v\n  full    %v",
					h.Name, k, q, stream.Strings, full.Strings)
			}
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compare checks the engine result against the oracle result. Regions are
// compared as sets; projected strings and selected objects as multisets,
// since the engine's output order is document order while the oracle's is
// nested-loop order.
func (h *Harness) compare(q *xsql.Query, got *engine.Result, want *refeval.QueryResult) string {
	if got.Projected != want.Projected {
		return fmt.Sprintf("  projected: engine %v, oracle %v", got.Projected, want.Projected)
	}
	if got.Projected {
		if msg := compareMultiset("strings", got.Strings, want.Strings); msg != "" {
			return msg
		}
		return ""
	}
	if !got.Regions.Equal(want.Regions) {
		return fmt.Sprintf("  regions: engine %v\n           oracle %v\n           engine-only %v, oracle-only %v",
			got.Regions, want.Regions,
			setMinus(got.Regions, want.Regions), setMinus(want.Regions, got.Regions))
	}
	gs := make([]string, len(got.Objects))
	for i, o := range got.Objects {
		gs[i] = o.String()
	}
	ws := make([]string, len(want.Objects))
	for i, o := range want.Objects {
		ws[i] = o.String()
	}
	return compareMultiset("objects", gs, ws)
}

// CheckExpr evaluates e with the production evaluator — materializing and
// streaming, each in both its universe-based and layered ⊃d configurations
// — and with the naive reference evaluator, and reports any disagreement.
// Errors must agree too (all sides reject unindexed names).
func (h *Harness) CheckExpr(e algebra.Expr) error {
	want, werr := h.Ref.Eval(e)
	for _, layered := range []bool{false, true} {
		for _, mode := range []string{"materializing", "streaming"} {
			ev := algebra.NewEvaluator(h.In)
			ev.UseLayeredDirect = layered
			var got region.Set
			var err error
			if mode == "streaming" {
				got, err = ev.StreamEval(context.Background(), e, nil, nil)
			} else {
				got, err = ev.Eval(e)
			}
			if (err != nil) != (werr != nil) {
				return fmt.Errorf("%s: error disagreement on %s (%s, layered=%v):\n  engine: %v\n  refeval: %v",
					h.Name, e, mode, layered, err, werr)
			}
			if err != nil {
				continue
			}
			if !got.Equal(want) {
				return fmt.Errorf("%s: mismatch on %s (%s, layered=%v):\n  engine:  %v\n  refeval: %v\n  engine-only %v, refeval-only %v",
					h.Name, e, mode, layered, got, want, setMinus(got, want), setMinus(want, got))
			}
		}
	}
	return nil
}

// compareMultiset compares two string slices up to order.
func compareMultiset(what string, got, want []string) string {
	g := append([]string(nil), got...)
	w := append([]string(nil), want...)
	sort.Strings(g)
	sort.Strings(w)
	if len(g) == len(w) {
		same := true
		for i := range g {
			if g[i] != w[i] {
				same = false
				break
			}
		}
		if same {
			return ""
		}
	}
	return fmt.Sprintf("  %s: engine %d %v\n  %s  oracle %d %v",
		what, len(got), g, strings.Repeat(" ", len(what)), len(want), w)
}

func setMinus(a, b region.Set) region.Set {
	return a.Filter(func(r region.Region) bool { return !b.Contains(r) })
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
