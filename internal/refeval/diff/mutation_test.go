package diff_test

import (
	"testing"

	"qof/internal/algebra"
	"qof/internal/optimizer"
	"qof/internal/qgen"
	"qof/internal/refeval/diff"
	"qof/internal/rig"
	"qof/internal/xsql"
)

// mutationWorkload is a small fixed query set with known-interesting plans
// under full indexing: exact selection chains on the author and editor
// paths, and an index-only projection.
var mutationWorkload = []string{
	`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`,
	`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = "Chang"`,
	`SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`,
	`SELECT r FROM References r WHERE r.Year = "1982" OR r.Authors.Name.Last_Name = "Corliss"`,
}

// mutant corrupts the optimizer's output in one specific way. Each mutant
// models a distinct bug class: unsound ⊃→⊃d strengthening (over-applying
// rule 3.5(a)), unconditional chain shortening (over-applying rule 3.5(b),
// superset on exact plans), lost selections (superset), and an
// operator-direction typo (subset).
type mutant struct {
	name    string
	corrupt func(algebra.Expr) algebra.Expr
}

var mutants = []mutant{
	{"plain-to-direct", func(e algebra.Expr) algebra.Expr {
		return mapBinOps(e, func(op algebra.BinOp) algebra.BinOp {
			if op == algebra.OpIncluding {
				return algebra.OpDirIncluding
			}
			return op
		})
	}},
	{"swap-inclusion", func(e algebra.Expr) algebra.Expr {
		return mapBinOps(e, func(op algebra.BinOp) algebra.BinOp {
			if op == algebra.OpIncluding {
				return algebra.OpIncluded
			}
			return op
		})
	}},
	{"drop-selection", stripSelects},
	{"shorten-always", dropMiddleName},
}

// runWorkload compiles-and-checks the workload on a fresh BibTeX domain
// whose catalog optimizes candidates through rewriter, returning how many
// queries the harness flags.
func runWorkload(t *testing.T, rewriter func(algebra.Expr, *rig.Graph) (algebra.Expr, []optimizer.Rewrite)) int {
	t.Helper()
	d := qgen.BibTeX(corpusSeed) // fresh catalog: plans must not leak across mutants
	if rewriter != nil {
		d.Cat.SetRewriter(rewriter)
	}
	h, err := diff.New(d, 0, d.Specs[0])
	if err != nil {
		t.Fatal(err)
	}
	mismatches := 0
	for _, src := range mutationWorkload {
		if err := h.CheckQuery(xsql.MustParse(src)); err != nil {
			t.Logf("detected: %v", err)
			mismatches++
		}
	}
	return mismatches
}

// TestMutationsDetected proves the harness has teeth: with the real
// optimizer the workload is clean, and every corrupted rewrite is flagged.
func TestMutationsDetected(t *testing.T) {
	if got := runWorkload(t, nil); got != 0 {
		t.Fatalf("unmutated engine: %d mismatches, want 0", got)
	}
	for _, m := range mutants {
		m := m
		t.Run(m.name, func(t *testing.T) {
			rewriter := func(e algebra.Expr, g *rig.Graph) (algebra.Expr, []optimizer.Rewrite) {
				opt, rws := optimizer.OptimizeExpr(e, g)
				return m.corrupt(opt), rws
			}
			if got := runWorkload(t, rewriter); got == 0 {
				t.Errorf("mutation %s: no query detected the corruption", m.name)
			}
		})
	}
}

// mapBinOps rewrites every binary operator bottom-up.
func mapBinOps(e algebra.Expr, f func(algebra.BinOp) algebra.BinOp) algebra.Expr {
	switch e := e.(type) {
	case algebra.Binary:
		return algebra.Binary{Op: f(e.Op), L: mapBinOps(e.L, f), R: mapBinOps(e.R, f)}
	case algebra.Unary:
		return algebra.Unary{Op: e.Op, Arg: mapBinOps(e.Arg, f)}
	case algebra.Select:
		return algebra.Select{Mode: e.Mode, W: e.W, Arg: mapBinOps(e.Arg, f)}
	case algebra.Near:
		return algebra.Near{E: mapBinOps(e.E, f), To: mapBinOps(e.To, f), K: e.K}
	case algebra.Freq:
		return algebra.Freq{Arg: mapBinOps(e.Arg, f), W: e.W, N: e.N}
	default:
		return e
	}
}

// stripSelects removes every σ node, widening the candidate set.
func stripSelects(e algebra.Expr) algebra.Expr {
	switch e := e.(type) {
	case algebra.Select:
		return stripSelects(e.Arg)
	case algebra.Binary:
		return algebra.Binary{Op: e.Op, L: stripSelects(e.L), R: stripSelects(e.R)}
	case algebra.Unary:
		return algebra.Unary{Op: e.Op, Arg: stripSelects(e.Arg)}
	case algebra.Near:
		return algebra.Near{E: stripSelects(e.E), To: stripSelects(e.To), K: e.K}
	case algebra.Freq:
		return algebra.Freq{Arg: stripSelects(e.Arg), W: e.W, N: e.N}
	default:
		return e
	}
}

// dropMiddleName deletes the middle name of any ≥3-name inclusion chain, as
// if rule 3.5(b) fired without its all-paths-through precondition.
func dropMiddleName(e algebra.Expr) algebra.Expr {
	if c, ok := optimizer.FromExpr(e); ok && len(c.Names) >= 3 {
		m := len(c.Names) / 2
		names := append(append([]string(nil), c.Names[:m]...), c.Names[m+1:]...)
		direct := make([]bool, 0, len(names)-1)
		for i := 0; i+1 < len(c.Names); i++ {
			if i == m-1 {
				direct = append(direct, false) // merged pair: plain inclusion
				continue
			}
			if i == m {
				continue
			}
			direct = append(direct, c.Direct[i])
		}
		nc, err := optimizer.NewChain(names, direct, c.Sel, c.Asc)
		if err != nil {
			return e
		}
		return nc.Expr()
	}
	switch e := e.(type) {
	case algebra.Binary:
		return algebra.Binary{Op: e.Op, L: dropMiddleName(e.L), R: dropMiddleName(e.R)}
	case algebra.Unary:
		return algebra.Unary{Op: e.Op, Arg: dropMiddleName(e.Arg)}
	case algebra.Select:
		return algebra.Select{Mode: e.Mode, W: e.W, Arg: dropMiddleName(e.Arg)}
	default:
		return e
	}
}
