package diff_test

import (
	"testing"

	"qof/internal/qgen"
	"qof/internal/refeval/diff"
)

// Fixed seeds: a failure reproduces from the seed and query index alone.
const (
	corpusSeed = 1994
	querySeed  = 317
	exprSeed   = 631
)

// queriesPerDomain is the differential workload size per domain (the
// acceptance floor is 500).
const queriesPerDomain = 600

// exprsPerHarness sizes the algebra-level sweep per (domain, spec) pair.
const exprsPerHarness = 150

// TestDifferentialQueries runs the randomly generated query workload through
// the full engine (optimized, plan-cached, parallel phase 2) and the naive
// oracle across every index specification of every domain.
func TestDifferentialQueries(t *testing.T) {
	for _, d := range qgen.Domains(corpusSeed) {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			hs, err := diff.Harnesses(d)
			if err != nil {
				t.Fatal(err)
			}
			gen := qgen.NewQueryGen(d, querySeed)
			nonEmpty := 0
			for i := 0; i < queriesPerDomain; i++ {
				q := gen.Query()
				h := hs[i%len(hs)]
				if err := h.CheckQuery(q); err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				if res, err := h.Oracle.Query(q); err == nil &&
					(len(res.Objects) > 0 || len(res.Strings) > 0) {
					nonEmpty++
				}
			}
			// Guard against a vacuous workload: agreement on empty results
			// only would prove nothing.
			if min := queriesPerDomain / 10; nonEmpty < min {
				t.Errorf("only %d/%d queries had non-empty answers, want ≥ %d",
					nonEmpty, queriesPerDomain, min)
			}
		})
	}
}

// TestDifferentialExprs runs randomly generated algebra expressions through
// the production evaluator (universe-based and layered ⊃d) and the naive
// reference evaluator on every index specification.
func TestDifferentialExprs(t *testing.T) {
	for _, d := range qgen.Domains(corpusSeed) {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			hs, err := diff.Harnesses(d)
			if err != nil {
				t.Fatal(err)
			}
			for hi, h := range hs {
				gen := qgen.ExprGenFor(d, h.In.Names(), exprSeed+int64(hi))
				for i := 0; i < exprsPerHarness; i++ {
					e := gen.Expr()
					if err := h.CheckExpr(e); err != nil {
						t.Fatalf("spec %d expr %d: %v", hi, i, err)
					}
				}
			}
		})
	}
}
