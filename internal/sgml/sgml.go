// Package sgml provides the third domain: SGML-like documents with
// arbitrarily nested sections. Its RIG is cyclic (Section → Section), which
// exercises the self-nesting aspects of the paper: the layered cost of ⊃d
// versus ⊃ (Section 3.1), the rightmost optimization rule on cyclic graphs
// (Proposition 3.5), and transitive-closure path queries answered by a
// single inclusion expression (Section 5.3).
package sgml

import (
	"fmt"
	"math/rand"
	"strings"

	"qof/internal/compile"
	"qof/internal/grammar"
)

// Non-terminal names of the schema.
const (
	NTDoc     = "Doc"
	NTSection = "Section"
	NTTitle   = "Title"
	NTPara    = "Para"
)

// ClassSections is the XSQL class bound to Section regions; ClassDocs to
// the top-level document bodies.
const (
	ClassSections = "Sections"
	ClassDocs     = "Docs"
)

// Grammar builds the nested-document structuring schema:
//
//	Doc     → <doc> Section* </doc>
//	Section → <sec> Title Section* Para* </sec>
//	Title   → <t> text </t>
//	Para    → <p> text </p>
func Grammar() *grammar.Grammar {
	g := grammar.NewGrammar(NTDoc)
	g.MustAddTerminal("Text", `[^<]+`)
	g.AddProduction(NTDoc, grammar.Lit("<doc>"), grammar.Rep(NTSection, ""), grammar.Lit("</doc>"))
	g.AddProduction(NTSection,
		grammar.Lit("<sec>"), grammar.NT(NTTitle),
		grammar.Rep(NTSection, ""), grammar.Rep(NTPara, ""),
		grammar.Lit("</sec>"))
	g.AddProduction(NTTitle, grammar.Lit("<t>"), grammar.Term("Text"), grammar.Lit("</t>"))
	g.AddProduction(NTPara, grammar.Lit("<p>"), grammar.Term("Text"), grammar.Lit("</p>"))
	if err := g.Validate(); err != nil {
		panic("sgml: invalid grammar: " + err.Error())
	}
	return g
}

// Catalog builds the compile catalog with the standard class bindings.
func Catalog() *compile.Catalog {
	cat := compile.NewCatalog(Grammar())
	cat.Bind(ClassDocs, NTDoc)
	cat.Bind(ClassSections, NTSection)
	return cat
}

// Config controls the document generator.
type Config struct {
	Seed int64
	// Depth is the section nesting depth; Fanout the subsections per
	// section at each level above the leaves.
	Depth  int
	Fanout int
	// ParasPerSection and WordsPerPara size the text.
	ParasPerSection int
	WordsPerPara    int
	// TargetWord is planted in TargetShare of the leaf paragraphs.
	TargetWord  string
	TargetShare float64
}

// DefaultConfig generates a balanced document of the given depth and
// fanout with the target word "needle" in 5% of the leaf paragraphs.
func DefaultConfig(depth, fanout int) Config {
	return Config{
		Seed:            1994,
		Depth:           depth,
		Fanout:          fanout,
		ParasPerSection: 2,
		WordsPerPara:    8,
		TargetWord:      "needle",
		TargetShare:     0.05,
	}
}

// Stats is the generator's ground truth.
type Stats struct {
	Sections       int
	Paras          int
	TargetParas    int // paragraphs containing the target word
	TargetSections int // sections containing (at any depth) the target word
	MaxDepth       int
}

// Generate produces a deterministic nested document and its ground truth.
func Generate(cfg Config) (string, Stats) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sb strings.Builder
	var st Stats
	sb.WriteString("<doc>")
	var section func(depth int) bool // reports whether the subtree contains the target
	section = func(depth int) bool {
		st.Sections++
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		sb.WriteString("<sec><t>")
		fmt.Fprintf(&sb, "section %d-%d", depth, st.Sections)
		sb.WriteString("</t>")
		hasTarget := false
		if depth < cfg.Depth {
			for i := 0; i < cfg.Fanout; i++ {
				if section(depth + 1) {
					hasTarget = true
				}
			}
		}
		for i := 0; i < cfg.ParasPerSection; i++ {
			st.Paras++
			sb.WriteString("<p>")
			words := make([]string, cfg.WordsPerPara)
			for j := range words {
				words[j] = fmt.Sprintf("w%02d", rng.Intn(60))
			}
			if cfg.TargetWord != "" && rng.Float64() < cfg.TargetShare {
				words[rng.Intn(len(words))] = cfg.TargetWord
				st.TargetParas++
				hasTarget = true
			}
			sb.WriteString(strings.Join(words, " "))
			sb.WriteString("</p>")
		}
		sb.WriteString("</sec>")
		if hasTarget {
			st.TargetSections++
		}
		return hasTarget
	}
	section(1)
	sb.WriteString("</doc>")
	return sb.String(), st
}
