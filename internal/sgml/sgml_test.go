package sgml_test

import (
	"fmt"
	"strings"
	"testing"

	"qof/internal/algebra"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/scan"
	"qof/internal/sgml"
	"qof/internal/text"
	"qof/internal/xsql"
)

func build(t *testing.T, cfg sgml.Config) (*engine.Engine, *text.Document, sgml.Stats) {
	t.Helper()
	content, st := sgml.Generate(cfg)
	cat := sgml.Catalog()
	doc := text.NewDocument("doc.sgml", content)
	in, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	return engine.New(cat, in), doc, st
}

func TestGeneratedDocParses(t *testing.T) {
	cfg := sgml.DefaultConfig(4, 3)
	eng, _, st := build(t, cfg)
	in := eng.Instance()
	if got := in.MustRegion(sgml.NTSection).Len(); got != st.Sections {
		t.Fatalf("sections = %d, want %d", got, st.Sections)
	}
	if got := in.MustRegion(sgml.NTPara).Len(); got != st.Paras {
		t.Fatalf("paras = %d, want %d", got, st.Paras)
	}
	if !in.Universe().ProperlyNested() {
		t.Error("regions must nest")
	}
	if err := eng.Catalog().Grammar.DeriveRIG().Satisfies(in); err != nil {
		t.Errorf("RIG violated: %v", err)
	}
	// The RIG is cyclic.
	if !eng.Catalog().RIG.HasEdge(sgml.NTSection, sgml.NTSection) {
		t.Error("Section self-edge missing")
	}
}

func TestClosureQueryViaSingleInclusion(t *testing.T) {
	// Section 5.3: "sections containing (at any depth) the target word"
	// is a transitive-closure query in the database but one inclusion
	// expression on the index.
	eng, doc, st := build(t, sgml.DefaultConfig(4, 3))
	q := xsql.MustParse(`SELECT s FROM Sections s WHERE s.*X.Para CONTAINS "needle"`)
	res, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Results != st.TargetSections {
		t.Fatalf("results = %d, target sections = %d\n%s",
			res.Stats.Results, st.TargetSections, res.Plan.Explain())
	}
	if !res.Stats.Exact {
		t.Errorf("closure CONTAINS should be exact:\n%s", res.Plan.Explain())
	}
	// The baseline agrees.
	base, err := scan.FullScan(eng.Catalog(), doc, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Objects) != res.Stats.Results {
		t.Fatalf("engine %d, baseline %d", res.Stats.Results, len(base.Objects))
	}
}

func TestClosureCountsMatchGroundTruth(t *testing.T) {
	// Via the region algebra directly: sections ⊃ needle-paras plus the
	// needle-paras' own sections equals the ground-truth count.
	eng, _, st := build(t, sgml.DefaultConfig(4, 3))
	ev := algebra.NewEvaluator(eng.Instance())
	needleParas, err := ev.Eval(algebra.MustParse(`contains(Para, "needle")`))
	if err != nil {
		t.Fatal(err)
	}
	if needleParas.Len() != st.TargetParas {
		t.Fatalf("needle paras = %d, want %d", needleParas.Len(), st.TargetParas)
	}
	containing, err := ev.Eval(algebra.MustParse(`Section > contains(Para, "needle")`))
	if err != nil {
		t.Fatal(err)
	}
	if containing.Len() != st.TargetSections {
		t.Fatalf("sections with needle = %d, want %d", containing.Len(), st.TargetSections)
	}
}

func TestDirectVsTransitiveSubsections(t *testing.T) {
	eng, _, _ := build(t, sgml.DefaultConfig(4, 2))
	ev := algebra.NewEvaluator(eng.Instance())
	direct, err := ev.Eval(algebra.MustParse(`Section >d Section`))
	if err != nil {
		t.Fatal(err)
	}
	all, err := ev.Eval(algebra.MustParse(`Section > Section`))
	if err != nil {
		t.Fatal(err)
	}
	// Depth 4, fanout 2: sections at depths 1..3 have children; all of
	// them include some section both directly and transitively.
	if !direct.Equal(all) {
		t.Fatalf("direct %d vs transitive %d parents", direct.Len(), all.Len())
	}
	// Grandparent-only inclusion differs: sections containing a section
	// that contains a section (depth 1..2 only).
	grand, err := ev.Eval(algebra.MustParse(`Section > Section > Section`))
	if err != nil {
		t.Fatal(err)
	}
	if grand.Len() >= all.Len() {
		t.Fatalf("grandparents %d should be fewer than parents %d", grand.Len(), all.Len())
	}
	// Innermost sections are the leaves.
	inner, err := ev.Eval(algebra.MustParse(`innermost(Section)`))
	if err != nil {
		t.Fatal(err)
	}
	if inner.Len() != 8 { // fanout 2, depth 4 → 8 leaves
		t.Fatalf("leaves = %d", inner.Len())
	}
}

func TestTitleQueries(t *testing.T) {
	eng, doc, _ := build(t, sgml.DefaultConfig(3, 2))
	q := xsql.MustParse(`SELECT s.Title FROM Sections s WHERE s.Title = "section 1-1"`)
	res, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strings) != 1 || res.Strings[0] != "section 1-1" {
		t.Fatalf("strings = %v", res.Strings)
	}
	base, err := scan.FullScan(eng.Catalog(), doc, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Strings) != 1 {
		t.Fatalf("baseline = %v", base.Strings)
	}
}

func TestVeryDeepNesting(t *testing.T) {
	// A pathological linear chain of 800 nested sections parses, nests,
	// and supports direct inclusion.
	var sb strings.Builder
	sb.WriteString("<doc>")
	const depth = 800
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&sb, "<sec><t>lvl%d</t>", i)
	}
	sb.WriteString("<p>bottom needle</p>")
	for i := 0; i < depth; i++ {
		sb.WriteString("</sec>")
	}
	sb.WriteString("</doc>")
	cat := sgml.Catalog()
	doc := text.NewDocument("deep.sgml", sb.String())
	in, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.MustRegion(sgml.NTSection).Len(); got != depth {
		t.Fatalf("sections = %d", got)
	}
	ev := algebra.NewEvaluator(in)
	direct, err := ev.Eval(algebra.MustParse(`Section >d Section`))
	if err != nil {
		t.Fatal(err)
	}
	if direct.Len() != depth-1 {
		t.Fatalf("direct parents = %d, want %d", direct.Len(), depth-1)
	}
	all, err := ev.Eval(algebra.MustParse(`Section > contains(Para, "needle")`))
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != depth {
		t.Fatalf("closure = %d, want %d", all.Len(), depth)
	}
}
