// Package lint hosts qof's project-specific static analyzers and the glue
// that runs them: a registry, a per-package runner, and the
// "qoflint:allow" suppression convention. The analyzers mechanically
// enforce invariants that PRs 1–3 left to hand-maintained discipline:
// mutex-guarded state, epoch bumps on index mutation, pooled-buffer
// lifetimes, and canonical region-set construction. See docs/LINTING.md.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"qof/internal/lint/analysis"
	"qof/internal/lint/loader"
)

// All returns every qoflint analyzer in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		LockCheck,
		EpochBump,
		PoolEscape,
		RegionOrder,
		CtxPoll,
		IterClose,
		GoRecover,
		BudgetCharge,
	}
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Finding is one diagnostic resolved to a printable position.
type Finding struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// RunPackage applies the analyzers to one loaded package and returns the
// surviving findings (after qoflint:allow suppression) in a fully
// deterministic order: position, then analyzer, then message — total, so
// repeated runs (and -json artifact diffs) are byte-stable even when one
// line carries several findings.
//
// Analyzers listed in Requires run first and exactly once per package;
// their results are shared with every dependent through pass.ResultOf.
func RunPackage(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	sup := collectSuppressions(pkg)
	var out []Finding
	results := make(map[*analysis.Analyzer]any)
	ran := make(map[*analysis.Analyzer]bool)

	var run func(a *analysis.Analyzer, report bool) error
	run = func(a *analysis.Analyzer, report bool) error {
		if ran[a] {
			return nil
		}
		ran[a] = true
		for _, req := range a.Requires {
			if err := run(req, false); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			ResultOf:  make(map[*analysis.Analyzer]any, len(a.Requires)),
		}
		for _, req := range a.Requires {
			pass.ResultOf[req] = results[req]
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			if !report {
				return
			}
			pos := pkg.Fset.Position(d.Pos)
			if sup.allows(name, pos) {
				return
			}
			out = append(out, Finding{Pos: pos, Message: d.Message, Analyzer: name})
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
		results[a] = res
		return nil
	}
	for _, a := range analyzers {
		if err := run(a, true); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// allowRx matches suppression comments: "//qoflint:allow name1,name2 reason".
var allowRx = regexp.MustCompile(`qoflint:allow\s+([\w,]+)`)

// suppression is one allow range: diagnostics from the named analyzers are
// dropped on lines [from, to] of the file.
type suppression struct {
	file     string
	from, to int
	names    map[string]bool
}

type suppressions []suppression

// collectSuppressions gathers qoflint:allow comments. A comment suppresses
// its own line and the next line; a comment in a function's doc comment
// suppresses the whole function.
func collectSuppressions(pkg *loader.Package) suppressions {
	var out suppressions
	add := func(file string, from, to int, names string) {
		set := make(map[string]bool)
		for _, n := range strings.Split(names, ",") {
			if n = strings.TrimSpace(n); n != "" {
				set[n] = true
			}
		}
		out = append(out, suppression{file: file, from: from, to: to, names: set})
	}
	for _, f := range pkg.Files {
		// Function-doc suppressions cover the whole declaration.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			if m := allowRx.FindStringSubmatch(fd.Doc.Text()); m != nil {
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				add(start.Filename, start.Line, end.Line, m[1])
			}
		}
		// Line suppressions cover the comment's line and the next.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := allowRx.FindStringSubmatch(c.Text); m != nil {
					pos := pkg.Fset.Position(c.Pos())
					add(pos.Filename, pos.Line, pos.Line+1, m[1])
				}
			}
		}
	}
	return out
}

func (s suppressions) allows(analyzer string, pos token.Position) bool {
	for _, sup := range s {
		if sup.file == pos.Filename && sup.from <= pos.Line && pos.Line <= sup.to && sup.names[analyzer] {
			return true
		}
	}
	return false
}
