// Package analysis is a minimal, dependency-free core of the
// golang.org/x/tools/go/analysis API, sufficient for qof's project-specific
// analyzers. The shapes (Analyzer, Pass, Diagnostic) mirror the upstream
// package deliberately: if the real module ever becomes available, the
// analyzers compile against it by swapping this import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis: a name, documentation, and a Run
// function applied to one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -run selections and
	// qoflint:allow suppression comments. By convention it is a short
	// lowercase word.
	Name string

	// Doc is the analyzer's documentation: first line is a one-sentence
	// summary, the rest elaborates the rule and its escape hatches.
	Doc string

	// Requires lists analyzers whose results this one consumes. The driver
	// runs each requirement once per package — regardless of how many
	// analyzers require it — and delivers its Run result through
	// pass.ResultOf. Requirements must form a DAG.
	Requires []*Analyzer

	// Run applies the analysis to a package. Findings are delivered through
	// pass.Report; the error return is for operational failures only
	// (malformed package, impossible state), not for findings. The return
	// value is exposed to dependents via Pass.ResultOf.
	Run func(*Pass) (any, error)
}

// Pass is the interface between one run of an analyzer and the driver: one
// type-checked package plus a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver owns filtering
	// (suppression comments) and formatting.
	Report func(Diagnostic)

	// ResultOf holds the Run results of the analyzers listed in
	// Analyzer.Requires, keyed by the required analyzer. Shared facts (a
	// package's control-flow graphs, say) are computed once per package
	// and handed to every dependent through this map.
	ResultOf map[*Analyzer]any
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
