package analysis

import (
	"go/token"
	"testing"
)

func TestReportf(t *testing.T) {
	var got []Diagnostic
	p := &Pass{Report: func(d Diagnostic) { got = append(got, d) }}
	p.Reportf(token.Pos(7), "bad %s in %s", "thing", "place")
	if len(got) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(got))
	}
	if got[0].Pos != token.Pos(7) || got[0].Message != "bad thing in place" {
		t.Errorf("diagnostic = %+v", got[0])
	}
}
