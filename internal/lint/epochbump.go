package lint

import (
	"go/ast"
	"go/types"

	"qof/internal/lint/analysis"
)

// EpochBump protects the engine's cross-query result cache: cached region
// sets are keyed by (instance epoch, expression), so any mutation of an
// instance's region-class maps that does not bump the epoch makes the
// cache serve stale sets — silently, and only under the right query mix.
//
// The rule: on any struct type that has an "epoch"/"Epoch" field, an
// exported method that mutates a map-typed field of the receiver (index
// assignment, delete, or wholesale reassignment) — directly or via
// unexported sibling methods — must also bump the epoch on that receiver
// (epoch.Add/Store for atomics, ++ or assignment for plain integers),
// directly or via a sibling such as invalidateUniverse. The check is
// path-insensitive: bumping on some path and mutating on another still
// counts, which matches the codebase convention of bumping unconditionally.
var EpochBump = &analysis.Analyzer{
	Name: "epochbump",
	Doc: "reports exported methods that mutate region-class maps of an " +
		"epoch-carrying struct without bumping its epoch",
	Run: runEpochBump,
}

// methodFacts is what one method body does to its receiver.
type methodFacts struct {
	decl    *ast.FuncDecl
	mutates bool            // writes a map-typed receiver field
	bumps   bool            // bumps the receiver's epoch field
	calls   map[string]bool // sibling methods invoked on the receiver
}

func runEpochBump(pass *analysis.Pass) (any, error) {
	epochTypes := collectEpochTypes(pass)
	if len(epochTypes) == 0 {
		return nil, nil
	}
	// Gather per-method facts for each epoch-carrying type.
	byType := make(map[*types.Named]map[string]*methodFacts)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) != 1 {
				continue
			}
			named := receiverNamed(pass, fd)
			if named == nil || !epochTypes[named] {
				continue
			}
			if byType[named] == nil {
				byType[named] = make(map[string]*methodFacts)
			}
			byType[named][fd.Name.Name] = methodFactsFor(pass, fd)
		}
	}
	// Close facts over intra-type calls, then report exported methods whose
	// effective mutation is not matched by an effective bump.
	for _, methods := range byType {
		effMutates := closure(methods, func(m *methodFacts) bool { return m.mutates })
		effBumps := closure(methods, func(m *methodFacts) bool { return m.bumps })
		for name, m := range methods {
			if !ast.IsExported(name) {
				continue
			}
			if effMutates[name] && !effBumps[name] {
				pass.Reportf(m.decl.Name.Pos(),
					"exported method %s mutates region-class maps without bumping the epoch (result caches will serve stale sets)", name)
			}
		}
	}
	return nil, nil
}

// collectEpochTypes finds named struct types declaring an epoch field.
func collectEpochTypes(pass *analysis.Pass) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if fn := st.Field(i).Name(); fn == "epoch" || fn == "Epoch" {
				out[named] = true
				break
			}
		}
	}
	return out
}

// receiverNamed resolves a method's receiver to its named type, looking
// through a pointer.
func receiverNamed(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	var obj types.Object
	if names := fd.Recv.List[0].Names; len(names) == 1 {
		obj = pass.TypesInfo.Defs[names[0]]
	}
	if obj == nil {
		return nil
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// methodFactsFor scans one method body for receiver-map mutations, epoch
// bumps and sibling calls.
func methodFactsFor(pass *analysis.Pass, fd *ast.FuncDecl) *methodFacts {
	recv := fd.Recv.List[0].Names[0]
	recvObj := pass.TypesInfo.Defs[recv]
	facts := &methodFacts{decl: fd, calls: make(map[string]bool)}

	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == recvObj
	}
	// recvField matches `recv.<name>` and returns the field's type.
	recvField := func(e ast.Expr) (string, types.Type, bool) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || !isRecv(sel.X) {
			return "", nil, false
		}
		tv, ok := pass.TypesInfo.Types[sel]
		if !ok {
			return "", nil, false
		}
		return sel.Sel.Name, tv.Type, true
	}
	isEpochField := func(e ast.Expr) bool {
		name, _, ok := recvField(e)
		return ok && (name == "epoch" || name == "Epoch")
	}
	isMapField := func(e ast.Expr) bool {
		_, t, ok := recvField(e)
		if !ok {
			return false
		}
		_, isMap := t.Underlying().(*types.Map)
		return isMap
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok && isMapField(idx.X) {
					facts.mutates = true // recv.m[k] = v
				}
				if isMapField(lhs) {
					facts.mutates = true // recv.m = ...
				}
				if isEpochField(lhs) {
					facts.bumps = true // recv.epoch = ...
				}
			}
		case *ast.IncDecStmt:
			if isEpochField(n.X) {
				facts.bumps = true // recv.epoch++
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				// delete(recv.m, k)
				if fun.Name == "delete" && len(n.Args) == 2 && isMapField(n.Args[0]) {
					facts.mutates = true
				}
			case *ast.SelectorExpr:
				// recv.sibling(...)
				if isRecv(fun.X) {
					facts.calls[fun.Sel.Name] = true
				}
				// recv.epoch.Add(...) / recv.epoch.Store(...)
				if inner, ok := fun.X.(*ast.SelectorExpr); ok && isEpochField(inner) {
					if fun.Sel.Name == "Add" || fun.Sel.Name == "Store" {
						facts.bumps = true
					}
				}
			}
		}
		return true
	})
	return facts
}

// closure propagates a per-method property through the intra-type call
// graph to a fixed point: a method has the property effectively if it has
// it directly or calls a sibling that effectively has it.
func closure(methods map[string]*methodFacts, direct func(*methodFacts) bool) map[string]bool {
	eff := make(map[string]bool, len(methods))
	for name, m := range methods {
		eff[name] = direct(m)
	}
	for changed := true; changed; {
		changed = false
		for name, m := range methods {
			if eff[name] {
				continue
			}
			for callee := range m.calls {
				if eff[callee] {
					eff[name] = true
					changed = true
					break
				}
			}
		}
	}
	return eff
}
