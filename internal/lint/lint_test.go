package lint_test

import (
	"testing"

	"qof/internal/lint"
	"qof/internal/lint/analysis"
	"qof/internal/lint/cfg"
	"qof/internal/lint/linttest"
	"qof/internal/lint/loader"
)

func TestLockCheckFixture(t *testing.T) {
	linttest.Run(t, lint.LockCheck, "testdata/lockcheck")
}

func TestEpochBumpFixture(t *testing.T) {
	linttest.Run(t, lint.EpochBump, "testdata/epochbump")
}

func TestPoolEscapeFixture(t *testing.T) {
	linttest.Run(t, lint.PoolEscape, "testdata/poolescape")
}

func TestRegionOrderFixture(t *testing.T) {
	linttest.Run(t, lint.RegionOrder, "testdata/regionorder")
}

func TestCtxPollFixture(t *testing.T) {
	linttest.Run(t, lint.CtxPoll, "testdata/ctxpoll")
}

func TestIterCloseFixture(t *testing.T) {
	linttest.Run(t, lint.IterClose, "testdata/iterclose")
}

func TestGoRecoverFixture(t *testing.T) {
	linttest.Run(t, lint.GoRecover, "testdata/gorecover")
}

func TestBudgetChargeFixture(t *testing.T) {
	linttest.Run(t, lint.BudgetCharge, "testdata/budgetcharge")
}

// TestRepoIsClean runs the whole suite over the real tree: the invariants
// the analyzers encode are supposed to hold in shipped code, so any
// finding here is either a real bug or a missing annotation.
func TestRepoIsClean(t *testing.T) {
	l, err := loader.New("../../")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, pkg := range pkgs {
		findings, err := lint.RunPackage(pkg, lint.All())
		if err != nil {
			t.Errorf("%s: %v", pkg.Path, err)
			continue
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}

// TestFactSharedAcrossAnalyzers pins the Requires contract: the CFG fact is
// built once per package and every dependent receives the same result
// object through pass.ResultOf.
func TestFactSharedAcrossAnalyzers(t *testing.T) {
	l, err := loader.New("../../")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load("./internal/lint/testdata/ctxpoll")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	var seen []any
	mk := func(name string) *analysis.Analyzer {
		return &analysis.Analyzer{
			Name:     name,
			Doc:      "records the shared CFG fact",
			Requires: []*analysis.Analyzer{cfg.FactAnalyzer},
			Run: func(pass *analysis.Pass) (any, error) {
				seen = append(seen, pass.ResultOf[cfg.FactAnalyzer])
				return nil, nil
			},
		}
	}
	if _, err := lint.RunPackage(pkgs[0], []*analysis.Analyzer{mk("facta"), mk("factb")}); err != nil {
		t.Fatalf("RunPackage: %v", err)
	}
	if len(seen) != 2 {
		t.Fatalf("dependents run = %d, want 2", len(seen))
	}
	first, ok := seen[0].(*cfg.PackageCFGs)
	if !ok || first == nil {
		t.Fatalf("ResultOf[cfgfact] = %T, want *cfg.PackageCFGs", seen[0])
	}
	if seen[0] != seen[1] {
		t.Errorf("dependents got distinct fact results %p and %p; the fact must run once per package", seen[0], seen[1])
	}
}

func TestLookup(t *testing.T) {
	for _, a := range lint.All() {
		if got := lint.Lookup(a.Name); got != a {
			t.Errorf("Lookup(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if lint.Lookup("nosuch") != nil {
		t.Error("Lookup(nosuch) should be nil")
	}
}
