package lint_test

import (
	"testing"

	"qof/internal/lint"
	"qof/internal/lint/linttest"
	"qof/internal/lint/loader"
)

func TestLockCheckFixture(t *testing.T) {
	linttest.Run(t, lint.LockCheck, "testdata/lockcheck")
}

func TestEpochBumpFixture(t *testing.T) {
	linttest.Run(t, lint.EpochBump, "testdata/epochbump")
}

func TestPoolEscapeFixture(t *testing.T) {
	linttest.Run(t, lint.PoolEscape, "testdata/poolescape")
}

func TestRegionOrderFixture(t *testing.T) {
	linttest.Run(t, lint.RegionOrder, "testdata/regionorder")
}

// TestRepoIsClean runs the whole suite over the real tree: the invariants
// the analyzers encode are supposed to hold in shipped code, so any
// finding here is either a real bug or a missing annotation.
func TestRepoIsClean(t *testing.T) {
	l, err := loader.New("../../")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, pkg := range pkgs {
		findings, err := lint.RunPackage(pkg, lint.All())
		if err != nil {
			t.Errorf("%s: %v", pkg.Path, err)
			continue
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, a := range lint.All() {
		if got := lint.Lookup(a.Name); got != a {
			t.Errorf("Lookup(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if lint.Lookup("nosuch") != nil {
		t.Error("Lookup(nosuch) should be nil")
	}
}
