// Package linttest is a self-contained analogue of
// golang.org/x/tools/go/analysis/analysistest: it loads a fixture package
// from a testdata directory, runs one analyzer over it, and checks the
// produced diagnostics against "// want" expectations embedded in the
// fixture source.
//
// An expectation is written on the line the diagnostic is reported on:
//
//	return c.m[k] // want `access to c.m without holding c.mu`
//
// Each quoted (or backquoted) fragment after "want" is a regular
// expression that must match the message of a distinct diagnostic on that
// line. Diagnostics without a matching expectation, and expectations
// without a matching diagnostic, both fail the test. Suppression comments
// (qoflint:allow) are honored exactly as in the real driver, so fixtures
// can also pin the escape hatch's behavior.
package linttest

import (
	"fmt"
	"regexp"
	"testing"

	"qof/internal/lint"
	"qof/internal/lint/analysis"
	"qof/internal/lint/loader"
)

// wantRx matches the expectation directive; quotedRx pulls out its pieces.
var (
	wantRx   = regexp.MustCompile(`//.*\bwant\s+(.+)$`)
	quotedRx = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

type expectation struct {
	rx   *regexp.Regexp
	used bool
}

type lineKey struct {
	file string
	line int
}

// Run loads the fixture package in dir, applies the analyzer, and reports
// any mismatch between diagnostics and // want expectations as test
// failures.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	l, err := loader.New(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("linttest: loading fixture %s: %v", dir, err)
	}

	wants := make(map[lineKey][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{file: pos.Filename, line: pos.Line}
				for _, q := range quotedRx.FindAllStringSubmatch(m[1], -1) {
					pat := q[1]
					if pat == "" {
						pat = q[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}

	findings, err := lint.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: running %s: %v", a.Name, err)
	}

	for _, f := range findings {
		key := lineKey{file: f.Pos.Filename, line: f.Pos.Line}
		if !claim(wants[key], f.Message) {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.used {
				t.Errorf("%s: no %s diagnostic matching %q", fmt.Sprintf("%s:%d", key.file, key.line), a.Name, e.rx)
			}
		}
	}
}

// claim marks the first unused expectation matching the message.
func claim(exps []*expectation, msg string) bool {
	for _, e := range exps {
		if !e.used && e.rx.MatchString(msg) {
			e.used = true
			return true
		}
	}
	return false
}
