package linttest_test

import (
	"testing"

	"qof/internal/lint"
	"qof/internal/lint/linttest"
)

// TestRunMatchesFixture drives the harness itself over a real fixture: a
// passing run proves expectations are parsed, claimed, and exhausted.
func TestRunMatchesFixture(t *testing.T) {
	linttest.Run(t, lint.RegionOrder, "../testdata/regionorder")
}
