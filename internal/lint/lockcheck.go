package lint

import (
	"go/ast"
	"go/types"
	"regexp"

	"qof/internal/lint/analysis"
)

// LockCheck enforces the "// guarded by <mu>" annotation convention: a
// struct field carrying the annotation may only be read or written while
// the named sibling mutex of the same value is held.
//
// The check is flow-approximate on purpose (a full lockset analysis needs
// an SSA form the standard library does not provide): within each function
// the statements are scanned in source order, Lock/RLock raise and
// Unlock/RUnlock lower a per-(owner, mutex) counter, and a deferred unlock
// leaves the counter raised until the function returns. Conditional
// locking therefore confuses it — the engine's invariant is that guarded
// state is locked unconditionally at the top of each accessor, and code
// that must deviate documents itself with a qoflint:allow suppression.
var LockCheck = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "reports accesses to '// guarded by mu' annotated struct fields " +
		"outside the annotated mutex",
	Run: runLockCheck,
}

var guardedRx = regexp.MustCompile(`guarded by (\w+)`)

// guardInfo describes one annotated field: the mutex field name that must
// be held, resolved per struct.
type guardInfo struct {
	mutex string // sibling field name of the mutex
	field string // annotated field name, for messages
}

func runLockCheck(pass *analysis.Pass) (any, error) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBody(pass, fd.Body, guards)
		}
	}
	return nil, nil
}

// collectGuards finds annotated fields and maps their types.Var objects to
// the guard description. An annotation naming a non-existent sibling field
// is itself reported.
func collectGuards(pass *analysis.Pass) map[types.Object]guardInfo {
	guards := make(map[types.Object]guardInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				text := ""
				if fld.Doc != nil {
					text += fld.Doc.Text()
				}
				if fld.Comment != nil {
					text += fld.Comment.Text()
				}
				m := guardedRx.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				mutex := m[1]
				if !fieldNames[mutex] {
					pass.Reportf(fld.Pos(), "guarded-by annotation names %q, which is not a field of this struct", mutex)
					continue
				}
				for _, name := range fld.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guardInfo{mutex: mutex, field: name.Name}
					}
				}
			}
			return true
		})
	}
	return guards
}

// lockKey identifies one held mutex: the printed owner expression plus the
// mutex field name, so "rc.mu" and "other.mu" are distinct locks.
type lockKey struct {
	owner string
	mutex string
}

var lockMethods = map[string]int{"Lock": +1, "RLock": +1, "Unlock": -1, "RUnlock": -1}

// checkLockBody scans one function body in source order, tracking which
// (owner, mutex) pairs are held and reporting guarded-field accesses made
// while the matching mutex is not.
func checkLockBody(pass *analysis.Pass, body *ast.BlockStmt, guards map[types.Object]guardInfo) {
	held := make(map[lockKey]int)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held for the rest of the
			// function, so it must not lower the counter; skip the call
			// (an unlock call has no other guarded subexpressions).
			if _, delta, ok := lockOp(pass, n.Call); ok && delta < 0 {
				return false
			}
		case *ast.CallExpr:
			if key, delta, ok := lockOp(pass, n); ok {
				held[key] += delta
				return false // rc.mu in rc.mu.Lock() is not a guarded access
			}
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[n]
			if !ok {
				return true
			}
			g, guarded := guards[sel.Obj()]
			if !guarded {
				return true
			}
			owner := types.ExprString(n.X)
			if held[lockKey{owner: owner, mutex: g.mutex}] <= 0 {
				pass.Reportf(n.Sel.Pos(), "access to %s.%s without holding %s.%s (field is guarded by %s)",
					owner, g.field, owner, g.mutex, g.mutex)
			}
		}
		return true
	})
}

// lockOp recognizes <owner>.<mutex>.Lock/RLock/Unlock/RUnlock() calls on a
// sync.Mutex or sync.RWMutex value and returns the lock key and the held
// delta (+1 lock, -1 unlock).
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (lockKey, int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	delta, ok := lockMethods[sel.Sel.Name]
	if !ok {
		return lockKey{}, 0, false
	}
	recv, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	if !isSyncLocker(pass.TypesInfo.Types[recv].Type) {
		return lockKey{}, 0, false
	}
	return lockKey{owner: types.ExprString(recv.X), mutex: recv.Sel.Name}, delta, true
}

// isSyncLocker reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isSyncLocker(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
