package lint

import (
	"go/ast"
	"go/types"
	"regexp"

	"qof/internal/lint/analysis"
	"qof/internal/lint/cfg"
)

// LockCheck enforces the "// guarded by <mu>" annotation convention: a
// struct field carrying the annotation may only be read or written while
// the named sibling mutex of the same value is held.
//
// The analysis is a path-sensitive must-hold lockset over the function's
// control-flow graph: Lock/RLock raise and Unlock/RUnlock lower a
// per-(owner, mutex) counter, states merge at joins by pointwise minimum
// (the mutex is held after a join only if it is held on every incoming
// path), and a deferred unlock leaves the counter raised until the
// function returns. A lock taken on only one branch therefore does not
// cover an access after the join — the source-order scan this replaces
// missed exactly that case. Function literals are analyzed with the
// lockset at their creation point.
var LockCheck = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "reports accesses to '// guarded by mu' annotated struct fields " +
		"outside the annotated mutex",
	Requires: []*analysis.Analyzer{cfg.FactAnalyzer},
	Run:      runLockCheck,
}

var guardedRx = regexp.MustCompile(`guarded by (\w+)`)

// guardInfo describes one annotated field: the mutex field name that must
// be held, resolved per struct.
type guardInfo struct {
	mutex string // sibling field name of the mutex
	field string // annotated field name, for messages
}

func runLockCheck(pass *analysis.Pass) (any, error) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	cfgs := pass.ResultOf[cfg.FactAnalyzer].(*cfg.PackageCFGs)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBody(pass, cfgs, fd.Body, lockState{}, guards)
		}
	}
	return nil, nil
}

// collectGuards finds annotated fields and maps their types.Var objects to
// the guard description. An annotation naming a non-existent sibling field
// is itself reported.
func collectGuards(pass *analysis.Pass) map[types.Object]guardInfo {
	guards := make(map[types.Object]guardInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				text := ""
				if fld.Doc != nil {
					text += fld.Doc.Text()
				}
				if fld.Comment != nil {
					text += fld.Comment.Text()
				}
				m := guardedRx.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				mutex := m[1]
				if !fieldNames[mutex] {
					pass.Reportf(fld.Pos(), "guarded-by annotation names %q, which is not a field of this struct", mutex)
					continue
				}
				for _, name := range fld.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guardInfo{mutex: mutex, field: name.Name}
					}
				}
			}
			return true
		})
	}
	return guards
}

// lockKey identifies one held mutex: the printed owner expression plus the
// mutex field name, so "rc.mu" and "other.mu" are distinct locks.
type lockKey struct {
	owner string
	mutex string
}

var lockMethods = map[string]int{"Lock": +1, "RLock": +1, "Unlock": -1, "RUnlock": -1}

// lockState maps each held mutex to its hold depth. A nil map is the
// dataflow Bottom ("no path has reached this block"); zero entries are
// normalized away so Equal can compare by length.
type lockState map[lockKey]int

// lockFlow is the must-hold lockset problem: forward, pointwise-minimum
// merge (held after a join only if held on every path in).
type lockFlow struct {
	pass  *analysis.Pass
	entry lockState
}

func (lockFlow) Bottom() lockState { return nil }

func (lf lockFlow) Boundary() lockState {
	out := make(lockState, len(lf.entry))
	for k, v := range lf.entry {
		out[k] = v
	}
	return out
}

func (lf lockFlow) Transfer(b *cfg.Block, s lockState) lockState {
	if s == nil {
		return nil
	}
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	for _, n := range b.Nodes {
		applyLockOps(lf.pass, n, out)
	}
	return out
}

func (lockFlow) Merge(a, b lockState) lockState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(lockState)
	keep := func(k lockKey, v, w int) {
		if w < v {
			v = w
		}
		if v != 0 {
			out[k] = v
		}
	}
	for k, v := range a {
		keep(k, v, b[k])
	}
	for k, v := range b {
		if _, ok := a[k]; !ok {
			keep(k, 0, v)
		}
	}
	return out
}

func (lockFlow) Equal(a, b lockState) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Widen stops the downward spiral of an unlock inside a loop (the counter
// would otherwise decrease without bound): negative counters are clamped
// away, which is semantically neutral — any value <= 0 means "not held".
func (lockFlow) Widen(_, merged lockState) lockState {
	out := make(lockState, len(merged))
	for k, v := range merged {
		if v > 0 {
			out[k] = v
		}
	}
	return out
}

// applyLockOps folds one block node's lock operations into held: Lock/RLock
// raise, Unlock/RUnlock lower, a deferred unlock is skipped (it keeps the
// lock held until return), and function literals are opaque (their bodies
// run at some other time and are analyzed separately).
func applyLockOps(pass *analysis.Pass, node ast.Node, held lockState) {
	cfg.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if _, delta, ok := lockOp(pass, n.Call); ok && delta < 0 {
				return false
			}
		case *ast.CallExpr:
			if key, delta, ok := lockOp(pass, n); ok {
				if held[key] += delta; held[key] == 0 {
					delete(held, key)
				}
				return false
			}
		}
		return true
	})
}

// checkLockBody solves the must-hold problem on body's CFG (entered with
// the given lockset) and replays each reachable block to report guarded
// accesses made while the matching mutex is not held on every path. A
// function literal encountered during replay is checked recursively with a
// snapshot of the lockset at its creation point.
func checkLockBody(pass *analysis.Pass, cfgs *cfg.PackageCFGs, body *ast.BlockStmt, entry lockState, guards map[types.Object]guardInfo) {
	g := cfgs.Of(body)
	flow := lockFlow{pass: pass, entry: entry}
	res := cfg.Solve[lockState](g, cfg.Forward, flow)
	for _, b := range g.Blocks {
		in := res.In[b]
		if in == nil || !b.Reachable() {
			continue
		}
		held := make(lockState, len(in))
		for k, v := range in {
			held[k] = v
		}
		for _, node := range b.Nodes {
			replayNode(pass, cfgs, node, held, guards)
		}
	}
}

// replayNode walks one block node with the current lockset, reporting
// guarded accesses and applying lock operations in evaluation order.
func replayNode(pass *analysis.Pass, cfgs *cfg.PackageCFGs, node ast.Node, held lockState, guards map[types.Object]guardInfo) {
	cfg.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			snap := make(lockState, len(held))
			for k, v := range held {
				snap[k] = v
			}
			checkLockBody(pass, cfgs, n.Body, snap, guards)
			return false
		case *ast.DeferStmt:
			if _, delta, ok := lockOp(pass, n.Call); ok && delta < 0 {
				return false
			}
		case *ast.CallExpr:
			if key, delta, ok := lockOp(pass, n); ok {
				if held[key] += delta; held[key] == 0 {
					delete(held, key)
				}
				return false // rc.mu in rc.mu.Lock() is not a guarded access
			}
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[n]
			if !ok {
				return true
			}
			g, guarded := guards[sel.Obj()]
			if !guarded {
				return true
			}
			owner := types.ExprString(n.X)
			if held[lockKey{owner: owner, mutex: g.mutex}] <= 0 {
				pass.Reportf(n.Sel.Pos(), "access to %s.%s without holding %s.%s (field is guarded by %s)",
					owner, g.field, owner, g.mutex, g.mutex)
			}
		}
		return true
	})
}

// lockOp recognizes <owner>.<mutex>.Lock/RLock/Unlock/RUnlock() calls on a
// sync.Mutex or sync.RWMutex value and returns the lock key and the held
// delta (+1 lock, -1 unlock).
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (lockKey, int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	delta, ok := lockMethods[sel.Sel.Name]
	if !ok {
		return lockKey{}, 0, false
	}
	recv, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	if !isSyncLocker(pass.TypesInfo.Types[recv].Type) {
		return lockKey{}, 0, false
	}
	return lockKey{owner: types.ExprString(recv.X), mutex: recv.Sel.Name}, delta, true
}

// isSyncLocker reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isSyncLocker(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
