// Loader fixture: generic declarations and instantiations must type-check.
package generics

type Number interface{ ~int | ~float64 }

func Sum[T Number](xs []T) T {
	var s T
	for _, x := range xs {
		s += x
	}
	return s
}

type Pair[K comparable, V any] struct {
	Key K
	Val V
}

func First[K comparable, V any](ps []Pair[K, V]) (K, bool) {
	if len(ps) == 0 {
		var zero K
		return zero, false
	}
	return ps[0].Key, true
}

func useInstantiations() (int, float64, string) {
	a := Sum([]int{1, 2, 3})                  // inferred instantiation
	b := Sum[float64]([]float64{1.5, 2.5})    // explicit instantiation
	p := Pair[string, int]{Key: "k", Val: 42} // generic type instantiation
	k, _ := First([]Pair[string, int]{p})
	return a, b, k
}
