// Loader fixture: deliberately fails type-checking. The loader must report
// the error, not panic.
package typeerror

var X int = "definitely not an int"

func mismatched() bool {
	return X
}
