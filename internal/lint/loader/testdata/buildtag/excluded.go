//go:build qof_never_enabled_tag

// Loader fixture: constrained out of every build. If the loader parsed it
// anyway, the duplicate Active constant would fail type-checking.
package buildtag

const Active = "excluded"
