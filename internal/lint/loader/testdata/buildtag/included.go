// Loader fixture: this file is always in the build.
package buildtag

const Active = "included"
