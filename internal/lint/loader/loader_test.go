package loader

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := New(".")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

func TestNewFindsModule(t *testing.T) {
	l := newTestLoader(t)
	if _, err := os.Stat(filepath.Join(l.ModuleRoot(), "go.mod")); err != nil {
		t.Errorf("ModuleRoot %q has no go.mod: %v", l.ModuleRoot(), err)
	}
	if l.modPath != "qof" {
		t.Errorf("module path = %q, want qof", l.modPath)
	}
}

func TestNewOutsideModule(t *testing.T) {
	if _, err := New(t.TempDir()); err == nil {
		t.Error("New outside any module should fail")
	}
}

func TestLoadDir(t *testing.T) {
	l := newTestLoader(t)
	pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot(), "internal", "region"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg.Path != "qof/internal/region" {
		t.Errorf("Path = %q, want qof/internal/region", pkg.Path)
	}
	if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
		t.Error("LoadDir returned an incomplete package")
	}
	if pkg.Types.Scope().Lookup("Set") == nil {
		t.Error("type-checked region package lacks Set")
	}
	// Full types.Info is the loader's whole point: the analyzers need
	// selections and uses resolved.
	if len(pkg.Info.Uses) == 0 || len(pkg.Info.Selections) == 0 {
		t.Error("types.Info not populated")
	}
}

func TestLoadDirNoGoFiles(t *testing.T) {
	l := newTestLoader(t)
	_, err := l.LoadDir(t.TempDir())
	if err == nil {
		t.Fatal("LoadDir on an empty dir should fail")
	}
	if !isNoGo(err) {
		t.Errorf("expected a no-Go-files error, got %v", err)
	}
}

func TestLoadPatternForms(t *testing.T) {
	l := newTestLoader(t)
	pkgs, err := l.Load("./internal/region", "qof/internal/text")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("Load returned %d packages, want 2", len(pkgs))
	}
	// Deterministic path order.
	if pkgs[0].Path != "qof/internal/region" || pkgs[1].Path != "qof/internal/text" {
		t.Errorf("got %q, %q", pkgs[0].Path, pkgs[1].Path)
	}
}

func TestLoadRecursivePattern(t *testing.T) {
	l := newTestLoader(t)
	pkgs, err := l.Load("./internal/lint/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	seen := make(map[string]bool)
	for _, p := range pkgs {
		seen[p.Path] = true
		if filepath.Base(filepath.Dir(p.Dir)) == "testdata" {
			t.Errorf("recursive load descended into testdata: %s", p.Dir)
		}
	}
	for _, want := range []string{"qof/internal/lint", "qof/internal/lint/loader", "qof/internal/lint/analysis"} {
		if !seen[want] {
			t.Errorf("recursive load missed %s (got %v)", want, seen)
		}
	}
}

func TestLoadDirGenerics(t *testing.T) {
	l := newTestLoader(t)
	pkg, err := l.LoadDir("testdata/generics")
	if err != nil {
		t.Fatalf("LoadDir on generic code: %v", err)
	}
	for _, name := range []string{"Sum", "Pair", "First"} {
		if pkg.Types.Scope().Lookup(name) == nil {
			t.Errorf("generic package lacks %s", name)
		}
	}
	// Instantiated calls must resolve like any other expression: the
	// analyzers lean on Uses and Types being complete.
	if len(pkg.Info.Uses) == 0 {
		t.Error("types.Info.Uses not populated for generic code")
	}
}

func TestLoadDirBuildTagExcluded(t *testing.T) {
	l := newTestLoader(t)
	pkg, err := l.LoadDir("testdata/buildtag")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	// The constrained-out file must not be parsed; if it were, the
	// duplicate Active constant would have failed type-checking above.
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (excluded.go is constrained out)", len(pkg.Files))
	}
	obj := pkg.Types.Scope().Lookup("Active")
	if obj == nil {
		t.Fatal("buildtag package lacks Active")
	}
}

func TestLoadDirTypeErrorReportsNotPanics(t *testing.T) {
	l := newTestLoader(t)
	_, err := l.LoadDir("testdata/typeerror")
	if err == nil {
		t.Fatal("LoadDir on a type-broken package should fail")
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("error %q should attribute the failure to type-checking", err)
	}
}

func TestImporterCaches(t *testing.T) {
	l := newTestLoader(t)
	p1, err := l.imp.Import("sort")
	if err != nil {
		t.Fatalf("import sort: %v", err)
	}
	p2, err := l.imp.Import("sort")
	if err != nil {
		t.Fatalf("import sort again: %v", err)
	}
	if p1 != p2 {
		t.Error("importer did not cache the sort package")
	}
	if _, err := l.imp.Import("unsafe"); err != nil {
		t.Errorf("unsafe must resolve: %v", err)
	}
	if _, err := l.imp.Import("no/such/pkg"); err == nil {
		t.Error("unresolvable import should fail")
	}
}

func TestResolveDir(t *testing.T) {
	l := newTestLoader(t)
	root := l.ModuleRoot()
	cases := map[string]string{
		".":                   root,
		"./internal/region":   filepath.Join(root, "internal", "region"),
		"qof":                 root,
		"qof/internal/region": filepath.Join(root, "internal", "region"),
	}
	for pat, want := range cases {
		if got := l.resolveDir(pat); got != want {
			t.Errorf("resolveDir(%q) = %q, want %q", pat, got, want)
		}
	}
}
