// Package loader parses and type-checks packages of the enclosing module
// for analysis, using only the standard library. It exists because the
// analyzers need full *types.Info for the package under analysis, and the
// canonical loader (golang.org/x/tools/go/packages) is an external
// dependency this repository does not take.
//
// Dependencies — standard-library packages and other packages of the module
// — are type-checked from source with function bodies ignored, which is all
// the analyzers need from an import and keeps a whole-module load in the
// low seconds.
package loader

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked package: the parsed files (with
// comments), the type-checker's package object and the full types.Info the
// analyzers consume.
type Package struct {
	Path  string // import path ("qof/internal/region")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages of one module. It caches import-only dependency
// checks, so loading many packages shares the work of type-checking the
// standard library once.
type Loader struct {
	Fset    *token.FileSet
	modRoot string
	modPath string
	ctxt    build.Context
	imp     *sourceImporter
}

// New creates a loader for the module enclosing dir (dir and its parents
// are searched for go.mod).
func New(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, path, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	// The analyzers reason about pure Go; never pull in cgo variants of
	// standard-library packages (they do not type-check without a C
	// toolchain pass).
	ctxt.CgoEnabled = false
	l := &Loader{Fset: token.NewFileSet(), modRoot: root, modPath: path, ctxt: ctxt}
	l.imp = &sourceImporter{l: l, pkgs: make(map[string]*types.Package)}
	return l, nil
}

// ModuleRoot returns the absolute directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// findModule walks up from dir to the directory holding go.mod and reads
// the module path from its first "module" directive.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("loader: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("loader: no go.mod above %s", dir)
		}
	}
}

// Load resolves the patterns ("./...", "./internal/region", import paths)
// against the module and returns the matched packages, fully type-checked,
// in deterministic path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.modRoot, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := l.resolveDir(strings.TrimSuffix(pat, "/..."))
			if err := l.walk(base, dirs); err != nil {
				return nil, err
			}
		default:
			dirs[l.resolveDir(pat)] = true
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	var out []*Package
	for _, dir := range sorted {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			if isNoGo(err) {
				continue
			}
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// resolveDir maps a pattern to an absolute directory: "./x" is
// module-root-relative, "qof/x" is resolved as an import path of the
// module, anything else is taken as a filesystem path.
func (l *Loader) resolveDir(pat string) string {
	if pat == "." || strings.HasPrefix(pat, "./") {
		return filepath.Join(l.modRoot, strings.TrimPrefix(pat, "./"))
	}
	if pat == l.modPath {
		return l.modRoot
	}
	if rest, ok := strings.CutPrefix(pat, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, rest)
	}
	if abs, err := filepath.Abs(pat); err == nil {
		return abs
	}
	return pat
}

// walk collects every package directory under base, skipping testdata,
// hidden directories and the module's own tooling artifacts.
func (l *Loader) walk(base string, dirs map[string]bool) error {
	return filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs[p] = true
		return nil
	})
}

// isNoGo reports whether err is go/build's "no buildable Go source files".
func isNoGo(err error) bool {
	var noGo *build.NoGoError
	return errors.As(err, &noGo)
}

// LoadDir parses and fully type-checks the single package in dir
// (non-test files only). Fixture directories under testdata load the same
// way as real packages.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctxt.ImportDir(abs, 0)
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	path := l.importPath(abs)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l.imp, FakeImportC: true}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: abs, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// importPath derives the import path for a directory inside the module;
// directories outside it (or under testdata) get their directory path,
// which is only used for labeling.
func (l *Loader) importPath(abs string) string {
	if rel, err := filepath.Rel(l.modRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.modPath
		}
		return l.modPath + "/" + filepath.ToSlash(rel)
	}
	return abs
}

// sourceImporter type-checks imports from source with function bodies
// ignored, resolving module-internal paths against the module root and
// everything else against GOROOT/src (with the std vendor directory as
// fallback). Results are cached for the life of the loader.
type sourceImporter struct {
	l    *Loader
	pkgs map[string]*types.Package
}

func (im *sourceImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	dir, err := im.dirFor(path)
	if err != nil {
		return nil, err
	}
	bp, err := im.l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("loader: import %q: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(im.l.Fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:         im,
		FakeImportC:      true,
		IgnoreFuncBodies: true,
		// Imports only need a consistent public surface; body-level
		// oddities in far corners of the standard library must not sink
		// an analysis run.
		Error: func(error) {},
	}
	pkg, err := conf.Check(path, im.l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking import %q: %w", path, err)
	}
	im.pkgs[path] = pkg
	return pkg, nil
}

func (im *sourceImporter) dirFor(path string) (string, error) {
	if path == im.l.modPath {
		return im.l.modRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, im.l.modPath+"/"); ok {
		return filepath.Join(im.l.modRoot, rest), nil
	}
	goroot := im.l.ctxt.GOROOT
	dir := filepath.Join(goroot, "src", path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir, nil
	}
	vendored := filepath.Join(goroot, "src", "vendor", path)
	if st, err := os.Stat(vendored); err == nil && st.IsDir() {
		return vendored, nil
	}
	return "", fmt.Errorf("loader: cannot resolve import %q (not in module %s or GOROOT)", path, im.l.modPath)
}
