package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"qof/internal/lint/analysis"
	"qof/internal/lint/cfg"
)

// CtxPoll enforces the streaming era's cancellation contract: a kernel that
// accepts a Checker (region's *Ctl entry points and their helpers) and an
// Iterator's Next method must not run a data-proportional loop without
// polling for cancellation. "Polling" is calling the Checker (directly or
// through the poll helper, or passing it onward to a callee), or — in a
// Next method — pulling from an upstream iterator via Next/head, which
// propagates the upstream's own polling.
//
// The check is per loop, on the function's control-flow graph: every cycle
// through a loop head must pass a polling block. Loops whose trip count is
// structurally bounded by local data already in memory (ranging over a
// fixed-size array or an integer constant, or a for condition built only
// from len/cap-derived locals) are exempt — those are the small trim loops
// of the merge kernels, not scans.
var CtxPoll = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc: "reports loops in Checker-accepting kernels and Iterator.Next " +
		"methods that can complete an iteration without polling for cancellation",
	Requires: []*analysis.Analyzer{cfg.FactAnalyzer},
	Run:      runCtxPoll,
}

func runCtxPoll(pass *analysis.Pass) (any, error) {
	cfgs := pass.ResultOf[cfg.FactAnalyzer].(*cfg.PackageCFGs)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isNext := isNextMethod(pass, fd)
			if !isNext && !hasCheckerParam(pass, fd) {
				continue
			}
			checkPollLoops(pass, cfgs, fd.Body, isNext)
		}
	}
	return nil, nil
}

// checkPollLoops verifies every loop in body: a back edge that can be
// reached from its head without passing a polling block means some
// iteration runs unpolled.
func checkPollLoops(pass *analysis.Pass, cfgs *cfg.PackageCFGs, body *ast.BlockStmt, isNext bool) {
	g := cfgs.Of(body)
	edges := g.BackEdges()
	if len(edges) == 0 {
		return
	}
	bounded := boundedVars(pass, body)
	sources := make(map[*cfg.Block][]*cfg.Block)
	for _, e := range edges {
		sources[e.To] = append(sources[e.To], e.From)
	}
	polls := make(map[*cfg.Block]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		polls[b] = blockPolls(pass, b, isNext)
	}
	for _, head := range g.Blocks {
		srcs := sources[head]
		if len(srcs) == 0 || exemptLoop(pass, head.Stmt, bounded) {
			continue
		}
		if !unpolledCycle(head, srcs, polls) {
			continue
		}
		pos := loopPos(head, srcs)
		if pos == token.NoPos {
			continue
		}
		pass.Reportf(pos, "loop can complete an iteration without polling the Checker (call check/poll, or pull via Next, on every path)")
	}
}

// unpolledCycle reports whether any back-edge source in srcs is reachable
// from head without entering a polling block.
func unpolledCycle(head *cfg.Block, srcs []*cfg.Block, polls map[*cfg.Block]bool) bool {
	if polls[head] {
		return false
	}
	isSrc := make(map[*cfg.Block]bool, len(srcs))
	for _, s := range srcs {
		isSrc[s] = true
	}
	seen := map[*cfg.Block]bool{head: true}
	queue := []*cfg.Block{head}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if isSrc[b] {
			return true
		}
		for _, s := range b.Succs {
			if !seen[s] && !polls[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return false
}

// loopPos picks the position to report a loop at: the loop statement when
// the head came from one, else the head's first node, else the back-edge
// source's last node (goto-formed loops).
func loopPos(head *cfg.Block, srcs []*cfg.Block) token.Pos {
	if head.Stmt != nil {
		return head.Stmt.Pos()
	}
	if len(head.Nodes) > 0 {
		return head.Nodes[0].Pos()
	}
	for _, s := range srcs {
		if n := len(s.Nodes); n > 0 {
			return s.Nodes[n-1].Pos()
		}
	}
	return token.NoPos
}

// blockPolls reports whether executing b polls for cancellation: a call of
// a Checker-typed expression, a call forwarding a Checker argument, a call
// of the poll helper, or (under the Next pull rule) a Next/head call that
// delegates polling to the upstream iterator. A block whose branch
// condition tests a Checker against nil also counts — it is the standard
// "if check != nil { check() }" gate and the guarded call sits on its true
// edge only.
func blockPolls(pass *analysis.Pass, b *cfg.Block, isNext bool) bool {
	found := false
	for _, node := range b.Nodes {
		cfg.Inspect(node, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if isPollCall(pass, n, isNext) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	if cond, ok := b.Cond.(*ast.BinaryExpr); ok && (cond.Op == token.NEQ || cond.Op == token.EQL) {
		if isNilCheckerTest(pass, cond.X, cond.Y) || isNilCheckerTest(pass, cond.Y, cond.X) {
			return true
		}
	}
	return false
}

func isNilCheckerTest(pass *analysis.Pass, checker, nilSide ast.Expr) bool {
	id, ok := nilSide.(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	return isCheckerType(pass.TypesInfo.Types[checker].Type)
}

func isPollCall(pass *analysis.Pass, call *ast.CallExpr, isNext bool) bool {
	if isCheckerType(pass.TypesInfo.Types[call.Fun].Type) {
		return true
	}
	for _, arg := range call.Args {
		if isCheckerType(pass.TypesInfo.Types[arg].Type) {
			return true
		}
	}
	name := calleeName(call)
	if name == "poll" {
		return true
	}
	if isNext && (name == "Next" || name == "head") {
		return true
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isCheckerType reports whether t is a named type Checker with underlying
// func() error — region.Checker, or a fixture's local equivalent.
func isCheckerType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Checker" {
		return false
	}
	sig, ok := named.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	return sig.Results().At(0).Type().String() == "error"
}

// hasCheckerParam reports whether fd takes a Checker parameter.
func hasCheckerParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, fld := range fd.Type.Params.List {
		if isCheckerType(pass.TypesInfo.Types[fld.Type].Type) {
			return true
		}
	}
	return false
}

// isNextMethod reports whether fd implements the Iterator contract's Next:
// a method with no parameters returning (T, bool, error).
func isNextMethod(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Next" {
		return false
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 0 || sig.Results().Len() != 3 {
		return false
	}
	return types.Identical(sig.Results().At(1).Type(), types.Typ[types.Bool]) &&
		sig.Results().At(2).Type().String() == "error"
}

// boundedVars computes the local variables whose value is derived only from
// integer constants and len/cap of in-memory data — the trip-count
// variables of the small trim loops. The computation is a fixpoint over
// plain assignments (x := len(s); x--; keep := x - cut), treating a
// variable's self-reference in its own update as bounded so i++ converges.
func boundedVars(pass *analysis.Pass, body *ast.BlockStmt) map[*types.Var]bool {
	assigns := make(map[*types.Var][]ast.Expr)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := objOf(pass, id).(*types.Var)
		if !ok {
			return
		}
		assigns[v] = append(assigns[v], rhs)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			} else {
				for i := range n.Lhs {
					record(n.Lhs[i], nil) // multi-value: conservatively unbounded
				}
			}
		case *ast.IncDecStmt:
			record(n.X, n.X) // i++ derives from i itself
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						record(name, vs.Values[i])
					}
				}
			}
		}
		return true
	})

	bounded := make(map[*types.Var]bool)
	for changed := true; changed; {
		changed = false
		for v, rhss := range assigns {
			if bounded[v] {
				continue
			}
			ok := true
			for _, rhs := range rhss {
				if rhs == nil || !boundedExpr(pass, rhs, bounded, v) {
					ok = false
					break
				}
			}
			if ok {
				bounded[v] = true
				changed = true
			}
		}
	}
	return bounded
}

// boundedExpr reports whether e is built only from integer constants,
// len/cap calls, and already-bounded variables (self counts as bounded so
// updates like i++ and keep -= cut converge).
func boundedExpr(pass *analysis.Pass, e ast.Expr, bounded map[*types.Var]bool, self *types.Var) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return e.Kind == token.INT
	case *ast.Ident:
		obj := objOf(pass, e)
		if _, ok := obj.(*types.Const); ok {
			return true
		}
		if v, ok := obj.(*types.Var); ok {
			return v == self || bounded[v]
		}
		return false
	case *ast.ParenExpr:
		return boundedExpr(pass, e.X, bounded, self)
	case *ast.UnaryExpr:
		return boundedExpr(pass, e.X, bounded, self)
	case *ast.BinaryExpr:
		return boundedExpr(pass, e.X, bounded, self) && boundedExpr(pass, e.Y, bounded, self)
	case *ast.CallExpr:
		name := calleeName(e)
		return name == "len" || name == "cap"
	}
	return false
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// exemptLoop reports whether the loop's trip count is structurally bounded:
// ranging over a fixed-size array or an integer constant or bounded local,
// or a for condition referencing only bounded locals and constants. Data
// scans (ranging over a slice or map, conditions on iterator state) are
// never exempt.
func exemptLoop(pass *analysis.Pass, stmt ast.Stmt, bounded map[*types.Var]bool) bool {
	switch s := stmt.(type) {
	case *ast.RangeStmt:
		t := pass.TypesInfo.Types[s.X].Type
		if t == nil {
			return false
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if _, ok := t.Underlying().(*types.Array); ok {
			return true
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return boundedExpr(pass, s.X, bounded, nil) || pass.TypesInfo.Types[s.X].Value != nil
		}
		return false
	case *ast.ForStmt:
		if s.Cond == nil {
			return false
		}
		// The trim loops of the merge kernels pair a bounded conjunct with
		// a data comparison ("cut < len(p) && p[cut].End <= s.Start"):
		// short-circuit && means any one bounded conjunct caps the trip
		// count, so one is enough.
		for _, c := range conjuncts(s.Cond) {
			if boundedExpr(pass, c, bounded, nil) {
				return true
			}
		}
		return false
	}
	return false
}

// conjuncts splits e on top-level && operators.
func conjuncts(e ast.Expr) []ast.Expr {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return conjuncts(e.X)
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return append(conjuncts(e.X), conjuncts(e.Y)...)
		}
	}
	return []ast.Expr{e}
}
