// Fixture for the poolescape analyzer: pooled memory must stay inside the
// function that got it (or inside unexported wrapper plumbing), and must
// not be touched after Put.
package poolescape

import "sync"

type buf struct{ s []int }

var pool = sync.Pool{New: func() any { return new(buf) }}

func getBuf() *buf  { return pool.Get().(*buf) }
func putBuf(b *buf) { pool.Put(b) }

// ints returns a length-n view of the pooled buffer.
func (b *buf) ints(n int) []int {
	if cap(b.s) < n {
		b.s = make([]int, n)
	}
	return b.s[:n]
}

// Sum is the compliant shape: get, use, put, return a scalar.
func Sum(n int) int {
	b := getBuf()
	s := b.ints(n)
	t := 0
	for i := range s {
		t += s[i]
	}
	putBuf(b)
	return t
}

// BadReturn leaks pooled memory across the package boundary.
func BadReturn(n int) []int {
	b := getBuf()
	return b.ints(n) // want `pooled memory returned from exported BadReturn`
}

type holder struct{ s []int }

// BadStore parks pooled memory in a field that outlives the call.
func BadStore(h *holder, n int) {
	b := getBuf()
	h.s = b.ints(n) // want `pooled memory stored in field s`
	putBuf(b)
}

// BadGo hands pooled memory to a goroutine that may outlive the Put.
func BadGo(n int) {
	b := getBuf()
	go func() {
		_ = b.ints(n) // want `pooled memory "b" captured by goroutine`
	}()
	putBuf(b)
}

// BadUseAfterPut touches a derived view after the buffer went back.
func BadUseAfterPut(n int) int {
	b := getBuf()
	s := b.ints(n)
	putBuf(b)
	return s[0] // want `use of pooled memory "s" after it was returned with Put`
}

// table mirrors the region kernels' minTable: a struct that carries
// pooled memory from an unexported constructor to an explicit release.
type table struct {
	rows []int
	b    *buf
}

// newTable is unexported, so returning pooled memory classifies it as a
// getter instead of flagging it; its callers are tracked in turn.
func newTable(n int) table {
	b := getBuf()
	return table{rows: b.ints(n), b: b}
}

// release returns the table's buffer to the pool, making it a putter for
// its receiver.
func (t table) release() { putBuf(t.b) }

// GoodTable releases only after the last read.
func GoodTable(n int) int {
	t := newTable(n)
	v := t.rows[0]
	t.release()
	return v
}

// BadTable reads the table after releasing it.
func BadTable(n int) int {
	t := newTable(n)
	t.release()
	return t.rows[0] // want `use of pooled memory "t" after it was returned with Put`
}

// Reacquired shows that a fresh Get clears the earlier Put.
func Reacquired(n int) int {
	b := getBuf()
	putBuf(b)
	b = getBuf()
	s := b.ints(n)
	v := s[0]
	putBuf(b)
	return v
}
