// Fixture for the gorecover analyzer: goroutine panic isolation and
// structured join, as required in the engine and serve packages. The
// package name ends in "gorecover", which puts it in the analyzer's scope.
package gorecover

import (
	"errors"
	"sync"
)

var errInternal = errors.New("internal error")

type item struct{ n int }

// parse is project code with no guard of its own: calling it from a bare
// goroutine is risky.
func parse(it item) (int, error) {
	if it.n < 0 {
		panic("negative")
	}
	return it.n, nil
}

// guardedParse installs the canonical recover guard.
func guardedParse(it item) (out int, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = errInternal
		}
	}()
	return parse(it)
}

// GoodDirectGuard: the goroutine body installs its own guard.
func GoodDirectGuard(items []item) error {
	var wg sync.WaitGroup
	errs := make([]error, len(items))
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[i] = errInternal
				}
			}()
			_, errs[i] = parse(items[i])
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// GoodDelegated: every risky call resolves to a guarded function.
func GoodDelegated(items []item) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = guardedParse(items[i])
		}(i)
	}
	wg.Wait()
}

// GoodClosureChain: the risky call goes through a local closure that
// delegates to a guarded function — the worker→process→processCandidate
// shape of the engine.
func GoodClosureChain(items []item) {
	process := func(i int) error {
		_, err := guardedParse(items[i])
		return err
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range items {
				_ = process(i)
			}
		}()
	}
	wg.Wait()
}

// GoodJoiner makes no risky calls at all: closing over stdlib sync and
// builtins is trusted.
func GoodJoiner(out chan int) {
	var wg sync.WaitGroup
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(out)
	}()
	<-done
}

// BadNoGuard launches project code with no recover anywhere between the
// panic and the runtime.
func BadNoGuard(items []item) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) { // want `goroutine can panic without a recover guard`
			defer wg.Done()
			_, _ = parse(items[i])
		}(i)
	}
	wg.Wait()
}

// BadInterfaceCall pulls from an interface: the implementation is unknown,
// so the guard must sit here — and does not.
type source interface {
	Next() (item, bool, error)
}

func BadInterfaceCall(src source, out chan<- item) {
	done := make(chan struct{})
	go func() { // want `goroutine can panic without a recover guard`
		defer close(done)
		for {
			it, ok, err := src.Next()
			if err != nil || !ok {
				return
			}
			out <- it
		}
	}()
	<-done
}

// GoodInterfaceCall is the same feeder with the guard installed.
func GoodInterfaceCall(src source, out chan<- item) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			if p := recover(); p != nil {
				_ = errInternal
			}
		}()
		for {
			it, ok, err := src.Next()
			if err != nil || !ok {
				return
			}
			out <- it
		}
	}()
	<-done
}

// BadNotJoined spawns and returns without any join: the goroutine outlives
// the call.
func BadNotJoined(items []item) {
	go func() { // want `goroutine is not joined on every return path`
		defer func() {
			if p := recover(); p != nil {
				_ = errInternal
			}
		}()
		for range items {
			_, _ = guardedParse(item{})
		}
	}()
}

// BadJoinSkippedOnError joins on the happy path but returns early without
// waiting when validation fails.
func BadJoinSkippedOnError(items []item, bad bool) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine is not joined on every return path`
		defer wg.Done()
		defer func() {
			if p := recover(); p != nil {
				_ = errInternal
			}
		}()
		_, _ = guardedParse(item{})
	}()
	if bad {
		return errInternal
	}
	wg.Wait()
	return nil
}

// GoodJoinAllPaths waits before every return.
func GoodJoinAllPaths(items []item, bad bool) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if p := recover(); p != nil {
				_ = errInternal
			}
		}()
		_, _ = guardedParse(item{})
	}()
	if bad {
		wg.Wait()
		return errInternal
	}
	wg.Wait()
	return nil
}

// GoodRangeJoin drains a results channel instead of a WaitGroup.
func GoodRangeJoin(items []item) int {
	out := make(chan int, len(items))
	go func() {
		defer close(out)
		defer func() {
			if p := recover(); p != nil {
				_ = errInternal
			}
		}()
		for _, it := range items {
			n, err := guardedParse(it)
			if err == nil {
				out <- n
			}
		}
	}()
	total := 0
	for n := range out {
		total += n
	}
	return total
}

// Suppressed documents a fire-and-forget goroutine.
func Suppressed() {
	//qoflint:allow gorecover detached metrics flusher, owns no query state
	go func() {
		defer func() {
			if p := recover(); p != nil {
				_ = errInternal
			}
		}()
		_, _ = guardedParse(item{})
	}()
}
