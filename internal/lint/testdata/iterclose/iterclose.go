// Fixture for the iterclose analyzer: locally acquired Iterators must be
// closed or handed off on every path to return.
package iterclose

import "errors"

type Region struct{ Start, End int }

// Iterator mirrors region.Iterator.
type Iterator interface {
	Next() (Region, bool, error)
	Close()
}

type nopIter struct{}

func (nopIter) Next() (Region, bool, error) { return Region{}, false, nil }
func (nopIter) Close()                      {}

func open() Iterator { return nopIter{} }
func openErr(ok bool) (Iterator, error) {
	if !ok {
		return nil, errors.New("no")
	}
	return nopIter{}, nil
}
func wrap(it Iterator) Iterator { return it }
func drain(it Iterator) error {
	defer it.Close()
	for {
		_, ok, err := it.Next()
		if err != nil || !ok {
			return err
		}
	}
}

type holder struct{ it Iterator }

// GoodDeferClose closes via defer on every path.
func GoodDeferClose() error {
	it := open()
	defer it.Close()
	_, _, err := it.Next()
	return err
}

// GoodExplicitClose pairs the acquisition with a close before return.
func GoodExplicitClose() {
	it := open()
	it.Close()
}

// GoodReturned hands the iterator to the caller.
func GoodReturned() Iterator {
	it := open()
	return it
}

// GoodWrapped hands ownership to a wrapping constructor.
func GoodWrapped() Iterator {
	it := open()
	return wrap(it)
}

// GoodPassed hands ownership to a consuming call.
func GoodPassed() error {
	it := open()
	return drain(it)
}

// GoodStored escapes into a struct.
func GoodStored() *holder {
	it := open()
	return &holder{it: it}
}

// GoodCaptured escapes into a closure.
func GoodCaptured() func() {
	it := open()
	return func() { it.Close() }
}

// GoodErrPath: on the error path the constructor returned nil — nothing to
// close; the success path hands off.
func GoodErrPath(ok bool) (Iterator, error) {
	it, err := openErr(ok)
	if err != nil {
		return nil, err
	}
	return wrap(it), nil
}

// GoodCloseOnLaterError mirrors the streaming evaluator: a second
// acquisition fails, the first is closed before bailing out.
func GoodCloseOnLaterError(ok bool) (Iterator, error) {
	l := open()
	r, err := openErr(ok)
	if err != nil {
		l.Close()
		return nil, err
	}
	return wrap(wrapPair(l, r)), nil
}

func wrapPair(l, r Iterator) Iterator { return l }

// BadNoClose acquires and forgets.
func BadNoClose() {
	it := open() // want `iterator it is not closed or handed off on every path`
	_, _, _ = it.Next()
}

// BadLeakOnError closes on the happy path but leaks when the later step
// fails.
func BadLeakOnError(ok bool) (Iterator, error) {
	l := open() // want `iterator l is not closed or handed off on every path`
	r, err := openErr(ok)
	if err != nil {
		return nil, err // l leaks here
	}
	return wrapPair(l, r), nil
}

// BadBranchLeak closes on one branch only.
func BadBranchLeak(cond bool) {
	it := open() // want `iterator it is not closed or handed off on every path`
	if cond {
		it.Close()
	}
}

// GoodBranchClose closes on both branches.
func GoodBranchClose(cond bool) {
	it := open()
	if cond {
		it.Close()
	} else {
		it.Close()
	}
}

// BadClosureLeak acquires inside a literal and drops it there; the
// literal's own body is analyzed.
func BadClosureLeak() func() {
	return func() {
		it := open() // want `iterator it is not closed or handed off on every path`
		_, _, _ = it.Next()
	}
}

// Suppressed documents a deliberate leak (process-lifetime iterator).
func Suppressed() {
	it := open() //qoflint:allow iterclose process-lifetime stream, closed at shutdown
	_, _, _ = it.Next()
}
