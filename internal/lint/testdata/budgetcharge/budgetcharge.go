// Fixture for the budgetcharge analyzer: region-accumulating loops in
// budgeted kernels must charge the budget before a successful return.
package budgetcharge

import "errors"

type Region struct{ Start, End int }

type Budget struct{ left int }

func (b *Budget) charge(n int) error {
	if b.left < n {
		return errors.New("budget exhausted")
	}
	b.left -= n
	return nil
}

type streamCtx struct {
	budget *Budget
	used   int
}

func (sc *streamCtx) meter(n int) { sc.used += n }

func containers(r Region) []Region { return []Region{{r.Start - 1, r.End + 1}} }

// GoodMeterAfterLoop accumulates, then meters the buffer before returning —
// the streamBinary shape.
func GoodMeterAfterLoop(sc *streamCtx, in []Region) ([]Region, error) {
	var cand []Region
	for _, s := range in {
		cand = append(cand, containers(s)...)
	}
	sc.meter(len(cand))
	return cand, nil
}

// GoodChargeInLoop charges per appended batch inside the loop.
func GoodChargeInLoop(b *Budget, in []Region) ([]Region, error) {
	var out []Region
	for _, s := range in {
		cs := containers(s)
		if err := b.charge(len(cs)); err != nil {
			return nil, err
		}
		out = append(out, cs...)
	}
	return out, nil
}

// GoodErrorPathsUncharged: error returns after the loop need no charge —
// nothing is delivered.
func GoodErrorPathsUncharged(sc *streamCtx, in []Region, ok bool) ([]Region, error) {
	var cand []Region
	for _, s := range in {
		cand = append(cand, containers(s)...)
	}
	if !ok {
		return nil, errors.New("validation failed")
	}
	sc.meter(len(cand))
	return cand, nil
}

// BadNoCharge builds the buffer and returns it unmetered.
func BadNoCharge(sc *streamCtx, in []Region) ([]Region, error) {
	var cand []Region
	for _, s := range in { // want `loop accumulates regions but a successful return is reachable without charging`
		cand = append(cand, containers(s)...)
	}
	return cand, nil
}

// BadChargeSkippedOnBranch meters on one branch but a successful return on
// the other slips through.
func BadChargeSkippedOnBranch(sc *streamCtx, in []Region, fast bool) ([]Region, error) {
	var cand []Region
	for _, s := range in { // want `loop accumulates regions but a successful return is reachable without charging`
		cand = append(cand, containers(s)...)
	}
	if fast {
		return cand, nil
	}
	sc.meter(len(cand))
	return cand, nil
}

// BadVoidFallThrough drops off the end of a void kernel uncharged.
func BadVoidFallThrough(sc *streamCtx, in []Region) {
	var cand []Region
	for _, s := range in { // want `loop accumulates regions but a successful return is reachable without charging`
		cand = append(cand, containers(s)...)
	}
	sc.used = len(cand)
}

// NotBudgeted has no budget in scope: someone upstream meters.
func NotBudgeted(in []Region) []Region {
	var out []Region
	for _, s := range in {
		out = append(out, containers(s)...)
	}
	return out
}

// GoodNonRegionAppend accumulates ints, not regions.
func GoodNonRegionAppend(sc *streamCtx, in []Region) []int {
	var starts []int
	for _, s := range in {
		starts = append(starts, s.Start)
	}
	return starts
}

// Suppressed documents an intentionally uncharged accumulation.
func Suppressed(sc *streamCtx, in []Region) []Region {
	var out []Region
	//qoflint:allow budgetcharge scratch buffer is bounded by the operand already metered
	for _, s := range in {
		out = append(out, containers(s)...)
	}
	return out
}
