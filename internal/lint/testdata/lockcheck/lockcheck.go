// Fixture for the lockcheck analyzer: seeded violations carry // want
// expectations; the compliant accessors must produce no diagnostics.
package lockcheck

import "sync"

type Cache struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	m     map[string]int // guarded by mu
	n     int            // guarded by rw
	plain int
}

// Good locks with the canonical defer pattern.
func (c *Cache) Good(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[k]
}

// GoodExplicit uses paired Lock/Unlock around the access.
func (c *Cache) GoodExplicit(k string, v int) {
	c.mu.Lock()
	c.m[k] = v
	c.mu.Unlock()
}

// GoodRead holds the read side of an RWMutex.
func (c *Cache) GoodRead() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.n
}

// Bad reads a guarded map with no lock at all.
func (c *Cache) Bad(k string) int {
	return c.m[k] // want `access to c.m without holding c.mu`
}

// BadAfterUnlock releases the lock and keeps reading.
func (c *Cache) BadAfterUnlock(k string) int {
	c.mu.Lock()
	v := c.m[k]
	c.mu.Unlock()
	return v + c.m[k] // want `access to c.m without holding c.mu`
}

// BadWrongMutex holds mu while the field is guarded by rw.
func (c *Cache) BadWrongMutex() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n // want `access to c.n without holding c.rw`
}

// BadWrite stores without the lock.
func (c *Cache) BadWrite(k string, v int) {
	c.m[k] = v // want `access to c.m without holding c.mu`
}

// Plain accesses an unguarded field: no lock needed.
func (c *Cache) Plain() int { return c.plain }

// Suppressed documents a deliberate single-goroutine access.
func (c *Cache) Suppressed(k string) int {
	return c.m[k] //qoflint:allow lockcheck build phase runs single-goroutine
}

// Broken demonstrates annotation validation: the named mutex must exist.
type Broken struct {
	x int // guarded by nosuch // want `guarded-by annotation names "nosuch"`
}
