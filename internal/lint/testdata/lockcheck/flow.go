// Path-sensitivity fixtures for the CFG-based lockcheck: cases the PR 4
// source-order scan got wrong (or could not express) and the dataflow
// rewrite must handle. BadConditionalLock in particular pins the old false
// negative — a scan in source order sees the Lock before the access and
// stays silent; the must-hold lockset merges the unlocked path in.
package lockcheck

import "sync"

type Flow struct {
	mu   sync.Mutex
	data int // guarded by mu
}

// BadConditionalLock takes the lock on only one path; the access after the
// join is unprotected when cond is false.
func (f *Flow) BadConditionalLock(cond bool) int {
	if cond {
		f.mu.Lock()
		defer f.mu.Unlock()
	}
	return f.data // want `access to f.data without holding f.mu`
}

// GoodBothBranches locks on every path before the join.
func (f *Flow) GoodBothBranches(cond bool) int {
	if cond {
		f.mu.Lock()
	} else {
		f.mu.Lock()
	}
	defer f.mu.Unlock()
	return f.data
}

// GoodDeferAcrossReturns holds the deferred unlock across every early
// return.
func (f *Flow) GoodDeferAcrossReturns(cond bool) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cond {
		return f.data
	}
	if f.data > 10 {
		return 10
	}
	return f.data
}

// BadBranchUnlock releases on one branch and keeps reading after the join.
func (f *Flow) BadBranchUnlock(cond bool) int {
	f.mu.Lock()
	if cond {
		f.mu.Unlock()
	}
	v := f.data // want `access to f.data without holding f.mu`
	if !cond {
		f.mu.Unlock()
	}
	return v
}

// GoodLoopAccess locks before the loop; the back edge keeps it held.
func (f *Flow) GoodLoopAccess(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for i := 0; i < n; i++ {
		total += f.data
	}
	return total
}

// BadLoopEntry reaches the access before any Lock on the first iteration.
func (f *Flow) BadLoopEntry(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += f.data // want `access to f.data without holding f.mu`
		f.mu.Lock()
		f.mu.Unlock()
	}
	return total
}

// GoodSwitch locks in every case, including default.
func (f *Flow) GoodSwitch(k int) int {
	switch k {
	case 0:
		f.mu.Lock()
	default:
		f.mu.Lock()
	}
	defer f.mu.Unlock()
	return f.data
}

// BadSwitchMissingCase leaves one case unlocked.
func (f *Flow) BadSwitchMissingCase(k int) int {
	switch k {
	case 0:
		f.mu.Lock()
	case 1:
	default:
		f.mu.Lock()
	}
	return f.data // want `access to f.data without holding f.mu`
}

// GoodClosureLocks: a function literal is analyzed on its own; this one
// takes its own lock.
func (f *Flow) GoodClosureLocks() func() int {
	return func() int {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.data
	}
}

// BadClosureNoLock: the literal is entered with the lockset at its
// creation point — empty here.
func (f *Flow) BadClosureNoLock() func() int {
	return func() int {
		return f.data // want `access to f.data without holding f.mu`
	}
}

// GoodClosureSnapshot is created and called while the lock is held.
func (f *Flow) GoodClosureSnapshot() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	get := func() int { return f.data }
	return get()
}
