// Fixture for the ctxpoll analyzer: Checker-accepting kernels and
// Iterator.Next methods whose loops must poll for cancellation.
package ctxpoll

// Checker mirrors region.Checker.
type Checker func() error

const pollStride = 1024

func poll(check Checker, i int) error {
	if check == nil || i&(pollStride-1) != 0 {
		return nil
	}
	return check()
}

type Region struct{ Start, End int }

// GoodPollHelper polls through the canonical helper every iteration.
func GoodPollHelper(check Checker, rs []Region) (int, error) {
	total := 0
	for i, r := range rs {
		if err := poll(check, i); err != nil {
			return 0, err
		}
		total += r.End - r.Start
	}
	return total, nil
}

// GoodDirectCall invokes the checker itself.
func GoodDirectCall(check Checker, rs []Region) error {
	for range rs {
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
	}
	return nil
}

// GoodNilGate polls behind the standard nil gate.
func GoodNilGate(check Checker, n int) error {
	for i := 0; i < n; i++ {
		if check != nil {
			_ = check
		}
	}
	return nil
}

// GoodForward hands the checker to a callee that polls.
func GoodForward(check Checker, rs []Region) (int, error) {
	total := 0
	for range rs {
		n, err := GoodPollHelper(check, rs)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// BadNoPoll scans without ever consulting the checker.
func BadNoPoll(check Checker, rs []Region) int {
	total := 0
	for _, r := range rs { // want `loop can complete an iteration without polling`
		total += r.End - r.Start
	}
	return total
}

// BadBranchSkipsPoll polls on only one branch of the loop body.
func BadBranchSkipsPoll(check Checker, rs []Region) (int, error) {
	total := 0
	for i, r := range rs { // want `loop can complete an iteration without polling`
		if r.Start > 0 {
			if err := poll(check, i); err != nil {
				return 0, err
			}
		}
		total += r.End
	}
	return total, nil
}

// BadContinueSkipsPoll lets continue bypass the poll at the bottom.
func BadContinueSkipsPoll(check Checker, rs []Region) error {
	for i, r := range rs { // want `loop can complete an iteration without polling`
		if r.Start == r.End {
			continue
		}
		if err := poll(check, i); err != nil {
			return err
		}
	}
	return nil
}

// GoodBoundedTrim: a for condition built from len-derived locals is a trim
// loop over in-memory data, exempt by design.
func GoodBoundedTrim(check Checker, rs []Region) []Region {
	keep := len(rs)
	for keep > 0 && rs[keep-1].Start == 0 {
		keep--
	}
	return rs[:keep]
}

// GoodConstRange: counting to a constant is bounded.
func GoodConstRange(check Checker) int {
	total := 0
	for i := 0; i < 64; i++ {
		total += i
	}
	return total
}

// GoodArrayRange: fixed-size arrays are bounded.
func GoodArrayRange(check Checker, buckets *[16]int) int {
	total := 0
	for _, b := range buckets {
		total += b
	}
	return total
}

// BadUnboundedFor: condition on mutable non-len state is a scan.
func BadUnboundedFor(check Checker, next func() bool) {
	for next() { // want `loop can complete an iteration without polling`
	}
}

// NotInScope has no Checker parameter; its loops are someone else's
// problem (the caller's kernel polls around it).
func NotInScope(rs []Region) int {
	total := 0
	for _, r := range rs {
		total += r.End - r.Start
	}
	return total
}

// --- Iterator.Next pull rule ---

type iter struct {
	check Checker
	src   []Region
	pos   int
	child *iter
}

func (it *iter) Close() {}

// Next for sliceLike: advances one element per call, no loop at all.
func (it *iter) Next() (Region, bool, error) {
	if it.pos >= len(it.src) {
		return Region{}, false, nil
	}
	r := it.src[it.pos]
	it.pos++
	return r, true, nil
}

type mergeIter struct {
	check Checker
	child *iter
}

func (it *mergeIter) Close() {}

// Next pulls from the child stream each trip: cancellation propagates
// through the child's own polling, so the pull rule accepts it.
func (it *mergeIter) Next() (Region, bool, error) {
	for {
		r, ok, err := it.child.Next()
		if err != nil || !ok {
			return Region{}, false, err
		}
		if r.Start < r.End {
			return r, true, nil
		}
	}
}

type spinIter struct {
	check Checker
	n     int
}

func (it *spinIter) Close() {}

// Next spins on internal state without pulling or polling.
func (it *spinIter) Next() (Region, bool, error) {
	for it.n > 0 { // want `loop can complete an iteration without polling`
		it.n--
		if it.n%2 == 0 {
			return Region{Start: it.n}, true, nil
		}
	}
	return Region{}, false, nil
}

type pollIter struct {
	check Checker
	n     int
	i     int
}

func (it *pollIter) Close() {}

// Next polls its own checker through the helper.
func (it *pollIter) Next() (Region, bool, error) {
	for it.n > 0 {
		if err := poll(it.check, it.i); err != nil {
			return Region{}, false, err
		}
		it.i++
		it.n--
		if it.n%2 == 0 {
			return Region{Start: it.n}, true, nil
		}
	}
	return Region{}, false, nil
}

// Suppressed documents a deliberately unpolled loop.
func Suppressed(check Checker, rs []Region) int {
	total := 0
	//qoflint:allow ctxpoll nesting depth is bounded by the grammar
	for _, r := range rs {
		total += r.Start
	}
	return total
}
