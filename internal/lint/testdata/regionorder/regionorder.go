// Fixture for the regionorder analyzer: region sets must be built through
// marked canonicalizers, and exported functions must not hand out raw
// []Region slices whose ordering nobody checked.
package regionorder

import "sort"

type Region struct{ Start, End int }

// Before orders regions by (Start asc, End desc).
func (r Region) Before(s Region) bool {
	if r.Start != s.Start {
		return r.Start < s.Start
	}
	return r.End > s.End
}

type Set struct{ regions []Region }

// Empty is allowed: an empty literal cannot violate the ordering.
var Empty = Set{}

// FromRegions sorts and wraps arbitrary input.
//
// qoflint:canonicalizer
func FromRegions(rs []Region) Set {
	out := make([]Region, len(rs))
	copy(out, rs)
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return Set{regions: out}
}

// fromSorted wraps an already-ordered slice.
//
// qoflint:canonicalizer
func fromSorted(rs []Region) Set { return Set{regions: rs} }

// Regions is an accessor: exposing the stored (canonical) field is fine.
func (s Set) Regions() []Region { return s.regions }

// GoodUnion builds a scratch slice but routes it through a canonicalizer.
func GoodUnion(a, b Set) Set {
	out := append(append([]Region{}, a.regions...), b.regions...)
	return FromRegions(out)
}

// GoodEmpty returns the zero set.
func GoodEmpty() Set { return Set{} }

// GoodDelegate returns another kernel's (already canonical) result.
func GoodDelegate(a, b Set) Set { return GoodUnion(a, b) }

// BadLiteral wraps an unchecked slice directly.
func BadLiteral(rs []Region) Set {
	return Set{regions: rs} // want `raw Set literal populates the backing slice`
}

// BadRawReturn exports an append-built slice nobody canonicalized.
func BadRawReturn(a, b Set) []Region {
	out := append(append([]Region{}, a.regions...), b.regions...)
	return out // want `exported BadRawReturn returns a raw \[\]Region`
}

// sortedMerge is unexported plumbing: raw []Region may flow inside the
// package as long as the exported surface stays canonical.
func sortedMerge(a, b Set) []Region {
	out := append(append([]Region{}, a.regions...), b.regions...)
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// GoodMerge wraps the unexported plumbing's output.
func GoodMerge(a, b Set) Set { return fromSorted(sortedMerge(a, b)) }
