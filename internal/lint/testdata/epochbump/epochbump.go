// Fixture for the epochbump analyzer: structs carrying an epoch field
// must bump it in every exported method that mutates a map-typed field of
// the receiver (directly or through unexported helpers).
package epochbump

import "sync/atomic"

type Set []int

type Instance struct {
	regions map[string]Set
	scopes  map[string]string
	epoch   uint64
	note    string
}

// bump is the shared helper exported mutators are expected to reach.
func (in *Instance) bump() { in.epoch++ }

// GoodDefine mutates and bumps through the helper.
func (in *Instance) GoodDefine(name string, s Set) {
	in.regions[name] = s
	in.bump()
}

// GoodDrop mutates two maps and bumps inline.
func (in *Instance) GoodDrop(name string) {
	delete(in.regions, name)
	delete(in.scopes, name)
	in.epoch++
}

// GoodAssign replaces a whole map and bumps by assignment.
func (in *Instance) GoodAssign(m map[string]Set) {
	in.regions = m
	in.epoch = in.epoch + 1
}

// BadDefine mutates a region-class map and forgets the bump.
func (in *Instance) BadDefine(name string, s Set) { // want `BadDefine mutates region-class maps without bumping the epoch`
	in.regions[name] = s
}

// BadViaHelper hides the mutation in an unexported helper.
func (in *Instance) BadViaHelper(name string) { // want `BadViaHelper mutates region-class maps without bumping the epoch`
	in.dropRaw(name)
}

func (in *Instance) dropRaw(name string) { delete(in.regions, name) }

// SetNote writes a non-map field: no bump required.
func (in *Instance) SetNote(s string) { in.note = s }

// Restrict mutates a freshly built instance, not the receiver: no bump
// required (the new instance starts its own epoch).
func (in *Instance) Restrict(names ...string) *Instance {
	out := &Instance{regions: make(map[string]Set), scopes: make(map[string]string)}
	for _, n := range names {
		if s, ok := in.regions[n]; ok {
			out.regions[n] = s
		}
	}
	return out
}

// AtomicInstance mirrors the real index.Instance: an atomic epoch bumped
// with Add or Store.
type AtomicInstance struct {
	classes map[string]int
	epoch   atomic.Uint64
}

// GoodAtomic bumps through the atomic's Add.
func (a *AtomicInstance) GoodAtomic(k string) {
	a.classes[k] = 1
	a.epoch.Add(1)
}

// BadAtomic mutates without touching the atomic epoch.
func (a *AtomicInstance) BadAtomic(k string) { // want `BadAtomic mutates region-class maps without bumping the epoch`
	delete(a.classes, k)
}
