package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"qof/internal/lint/analysis"
	"qof/internal/lint/cfg"
)

// GoRecover enforces the resilience era's goroutine discipline in the
// engine and serve packages, where a panic on a worker goroutine would
// crash the whole daemon instead of failing one query:
//
//  1. Panic isolation — a goroutine must not run code that can panic
//     without a recover guard between the panic and the runtime. A
//     goroutine complies if its body installs "defer func() { recover()
//     ... }" itself, if every risky call it makes resolves (recursively)
//     to a function or closure that installs one, or if it makes no risky
//     calls at all (pure join/close helpers). Risky means project code —
//     same-package calls, qof cross-package calls, interface methods,
//     function values; the standard library and builtins are trusted.
//
//  2. Structured join — every path from the go statement to the enclosing
//     function's return must pass a join operation (WaitGroup.Wait, a
//     channel receive, or ranging over a channel), so no goroutine
//     outlives the call that spawned it.
var GoRecover = &analysis.Analyzer{
	Name: "gorecover",
	Doc: "reports goroutines in engine/serve that can panic without a " +
		"recover guard or that are not joined on every return path",
	Requires: []*analysis.Analyzer{cfg.FactAnalyzer},
	Run:      runGoRecover,
}

func runGoRecover(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if !strings.HasSuffix(path, "internal/engine") && !strings.HasSuffix(path, "internal/serve") &&
		!strings.HasSuffix(path, "gorecover") {
		return nil, nil
	}
	cfgs := pass.ResultOf[cfg.FactAnalyzer].(*cfg.PackageCFGs)
	r := &recoverChecker{
		pass:     pass,
		cfgs:     cfgs,
		decls:    make(map[types.Object]*ast.FuncDecl),
		closures: make(map[types.Object]*ast.FuncLit),
		safe:     make(map[ast.Node]int),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					r.decls[obj] = fd
				}
			}
		}
		// Closures bound to a single-assignment local ("process := func...")
		// are resolvable call targets for the delegation rule.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						r.bindClosure(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						r.bindClosure(name, n.Values[i])
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					r.checkGoStmt(fd, gs)
				}
				return true
			})
		}
	}
	return nil, nil
}

type recoverChecker struct {
	pass     *analysis.Pass
	cfgs     *cfg.PackageCFGs
	decls    map[types.Object]*ast.FuncDecl
	closures map[types.Object]*ast.FuncLit
	safe     map[ast.Node]int // FuncDecl/FuncLit body → safety memo
}

const (
	safetyUnknown = 0 // not yet computed
	safetyInWork  = 1 // on the recursion stack: optimistic (cycles are safe)
	safetySafe    = 2
	safetyUnsafe  = 3
)

func (r *recoverChecker) bindClosure(lhs, rhs ast.Expr) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return
	}
	lit, ok := rhs.(*ast.FuncLit)
	if !ok {
		return
	}
	if obj := objOf(r.pass, id); obj != nil {
		if _, dup := r.closures[obj]; dup {
			// Rebound variable: ambiguous target. The nil entry poisons the
			// binding so later assignments cannot resurrect it.
			r.closures[obj] = nil
			return
		}
		r.closures[obj] = lit
	}
}

func (r *recoverChecker) checkGoStmt(enclosing *ast.FuncDecl, gs *ast.GoStmt) {
	// Rule 1: panic isolation.
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		if !r.bodySafe(lit.Body) {
			r.pass.Reportf(gs.Pos(), "goroutine can panic without a recover guard (install defer recover or call only guarded functions)")
		}
	} else if !r.callSafe(gs.Call) {
		r.pass.Reportf(gs.Pos(), "goroutine can panic without a recover guard (install defer recover or call only guarded functions)")
	}

	// Rule 2: structured join on every return path.
	if !r.joinedOnAllPaths(enclosing.Body, gs) {
		r.pass.Reportf(gs.Pos(), "goroutine is not joined on every return path (join via WaitGroup.Wait, channel receive, or ranging over a channel)")
	}
}

// bodySafe reports whether the function body is panic-isolated: it installs
// its own recover guard, or every risky call it makes targets a safe
// function.
func (r *recoverChecker) bodySafe(body *ast.BlockStmt) bool {
	switch r.safe[body] {
	case safetySafe, safetyInWork:
		return true
	case safetyUnsafe:
		return false
	}
	r.safe[body] = safetyInWork
	ok := r.computeBodySafe(body)
	if ok {
		r.safe[body] = safetySafe
	} else {
		r.safe[body] = safetyUnsafe
	}
	return ok
}

func (r *recoverChecker) computeBodySafe(body *ast.BlockStmt) bool {
	if hasRecoverGuard(body) {
		return true
	}
	safe := true
	ast.Inspect(body, func(n ast.Node) bool {
		if !safe {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs at some other time; checked where it is launched or called
		case *ast.CallExpr:
			// An explicit panic with no guard above it is exactly the bug.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				safe = false
				return false
			}
			if r.riskyCall(n) && !r.callSafe(n) {
				safe = false
				return false
			}
		}
		return true
	})
	return safe
}

// hasRecoverGuard reports whether the body directly installs
// "defer func() { ... recover() ... }()".
func hasRecoverGuard(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		ds, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		lit, ok := ds.Call.Fun.(*ast.FuncLit)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// riskyCall reports whether the call targets project code that could
// panic. Builtins, conversions, and standard-library callees are trusted.
func (r *recoverChecker) riskyCall(call *ast.CallExpr) bool {
	switch obj := r.calleeObj(call).(type) {
	case nil:
		// Conversion or unresolved: a conversion has a type as its Fun.
		if tv, ok := r.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return false
		}
		return true // function value we could not resolve
	case *types.Builtin:
		return false
	case *types.TypeName:
		return false // conversion, e.g. int(x)
	case *types.Func:
		return r.projectObj(obj)
	case *types.Var:
		return true // function-typed variable or parameter
	}
	return true
}

// projectObj reports whether the object belongs to this project (the
// package under analysis or another qof package) rather than the standard
// library.
func (r *recoverChecker) projectObj(obj types.Object) bool {
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	return pkg == r.pass.Pkg || pkg.Path() == "qof" || strings.HasPrefix(pkg.Path(), "qof/") ||
		strings.Contains(pkg.Path(), "testdata")
}

// callSafe reports whether the call's target is known to be panic-safe:
// resolvable to a same-package declaration or local closure whose body is
// safe. Unresolvable risky targets (interface methods, cross-package
// calls, opaque function values) are unsafe — the guard must sit in this
// package, where the goroutine is.
func (r *recoverChecker) callSafe(call *ast.CallExpr) bool {
	if !r.riskyCall(call) {
		return true
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return r.bodySafe(lit.Body)
	}
	obj := r.calleeObj(call)
	if obj == nil {
		return false
	}
	if fd, ok := r.decls[obj]; ok && fd.Body != nil {
		return r.bodySafe(fd.Body)
	}
	if lit, ok := r.closures[obj]; ok && lit != nil {
		return r.bodySafe(lit.Body)
	}
	return false
}

func (r *recoverChecker) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return objOf(r.pass, fun)
	case *ast.SelectorExpr:
		if sel, ok := r.pass.TypesInfo.Selections[fun]; ok {
			return sel.Obj()
		}
		return objOf(r.pass, fun.Sel) // package-qualified call
	}
	return nil
}

// joinedOnAllPaths reports whether every path from the go statement to the
// enclosing function's exit passes a join operation.
func (r *recoverChecker) joinedOnAllPaths(body *ast.BlockStmt, gs *ast.GoStmt) bool {
	g := r.cfgs.Of(body)
	var home *cfg.Block
	idx := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == gs {
				home, idx = b, i
				break
			}
		}
		if home != nil {
			break
		}
	}
	if home == nil {
		// The go statement sits inside a nested function literal; its CFG
		// home is that literal's graph. Find it there.
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			if found {
				return false
			}
			if lit, ok := n.(*ast.FuncLit); ok {
				inner := false
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if m == gs {
						inner = true
					}
					return !inner
				})
				if inner {
					found = r.joinedOnAllPaths(lit.Body, gs)
					return false
				}
			}
			return true
		})
		return found
	}
	// Joins later in the same block cover every path through it.
	for _, n := range home.Nodes[idx+1:] {
		if r.nodeJoins(n) {
			return true
		}
	}
	// Otherwise: no path may reach Exit without passing a joining block.
	seen := map[*cfg.Block]bool{home: true}
	queue := []*cfg.Block{home}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, s := range b.Succs {
			if seen[s] {
				continue
			}
			if s == g.Exit {
				return false
			}
			if r.blockJoins(s) {
				continue
			}
			seen[s] = true
			queue = append(queue, s)
		}
	}
	return true
}

func (r *recoverChecker) blockJoins(b *cfg.Block) bool {
	for _, n := range b.Nodes {
		if r.nodeJoins(n) {
			return true
		}
	}
	return false
}

// nodeJoins recognizes join operations: WaitGroup.Wait (any method named
// Wait), a channel receive, or ranging over a channel.
func (r *recoverChecker) nodeJoins(node ast.Node) bool {
	if rs, ok := node.(*ast.RangeStmt); ok {
		if t := r.pass.TypesInfo.Types[rs.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return true
			}
		}
	}
	joins := false
	cfg.Inspect(node, func(n ast.Node) bool {
		if joins {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				joins = true
				return false
			}
		case *ast.CallExpr:
			if calleeName(n) == "Wait" {
				joins = true
				return false
			}
		}
		return true
	})
	return joins
}
