package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"qof/internal/lint/analysis"
)

// PoolEscape tracks memory recycled through sync.Pool (the region kernels'
// integer scratch, the evaluator's context pool) and reports lifetime
// violations: pooled memory returned from an exported function, stored
// into a field of a non-pooled value, captured by a goroutine, or used
// after it was handed back with Put.
//
// Wrappers are inferred per package, to a fixed point: a function whose
// return value carries pooled memory is a getter (its callers' results are
// tainted in turn — but an *exported* getter is a violation, because
// pooled memory must not cross the package boundary); a function that
// passes a parameter, its receiver, or a receiver field to Put (or to
// another putter) is a putter, and calling it kills the argument's taint
// root. Taint flows through assignments, selectors, index/slice
// expressions, composite literals, append, and method calls on tainted
// receivers whose results can carry memory — not through ordinary call
// arguments, so passing a pooled context to a function does not taint
// that function's unrelated results.
var PoolEscape = &analysis.Analyzer{
	Name: "poolescape",
	Doc: "reports sync.Pool-backed memory escaping its function: returned " +
		"from exported functions, stored in fields, captured by goroutines, " +
		"or used after Put",
	Run: runPoolEscape,
}

// receiverParam is the pseudo-index identifying a method's receiver in a
// putter's put-parameter list.
const receiverParam = -1

type poolFacts struct {
	pass    *analysis.Pass
	getters map[types.Object]bool
	putters map[types.Object]map[int]bool // func -> put param indices
}

func runPoolEscape(pass *analysis.Pass) (any, error) {
	facts := &poolFacts{
		pass:    pass,
		getters: make(map[types.Object]bool),
		putters: make(map[types.Object]map[int]bool),
	}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Classification fixpoint: discovering one wrapper can reveal another
	// (release -> putIntBuf -> sync.Pool.Put). Monotone, so it terminates;
	// the bound only caps pathological chains.
	for i := 0; i < 8; i++ {
		changed := false
		for _, fd := range decls {
			if facts.analyzeFunc(fd, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fd := range decls {
		facts.analyzeFunc(fd, true)
	}
	return nil, nil
}

// analyzeFunc walks one function in source order, tracking pooled-memory
// taint. In classification mode (report=false) it records getter/putter
// facts and reports whether anything new was learned; in report mode it
// emits diagnostics.
func (pf *poolFacts) analyzeFunc(fd *ast.FuncDecl, report bool) (changed bool) {
	info := pf.pass.TypesInfo
	fnObj := info.Defs[fd.Name]

	// Parameter objects, for putter classification: receiver is -1.
	paramIndex := make(map[types.Object]int)
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		paramIndex[info.Defs[fd.Recv.List[0].Names[0]]] = receiverParam
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			paramIndex[info.Defs[name]] = i
			i++
		}
	}

	taintRoot := make(map[types.Object]types.Object)
	dead := make(map[types.Object]token.Pos) // taint root -> position of its Put

	objOf := func(id *ast.Ident) types.Object {
		if o := info.Uses[id]; o != nil {
			return o
		}
		return info.Defs[id]
	}

	// rootObj resolves an expression to its base variable, independent of
	// taint (t.buf -> t), for put-target identification.
	var rootObj func(e ast.Expr) types.Object
	rootObj = func(e ast.Expr) types.Object {
		switch e := e.(type) {
		case *ast.Ident:
			return objOf(e)
		case *ast.SelectorExpr:
			return rootObj(e.X)
		case *ast.IndexExpr:
			return rootObj(e.X)
		case *ast.SliceExpr:
			return rootObj(e.X)
		case *ast.ParenExpr:
			return rootObj(e.X)
		case *ast.StarExpr:
			return rootObj(e.X)
		case *ast.TypeAssertExpr:
			return rootObj(e.X)
		case *ast.UnaryExpr:
			return rootObj(e.X)
		}
		return nil
	}

	// tainted reports whether the expression's value carries pooled
	// memory, and the root variable it is derived from (nil for a fresh
	// source such as a Get call).
	var tainted func(e ast.Expr) (types.Object, bool)
	tainted = func(e ast.Expr) (types.Object, bool) {
		switch e := e.(type) {
		case *ast.Ident:
			if root, ok := taintRoot[objOf(e)]; ok {
				return root, true
			}
		case *ast.SelectorExpr:
			if root, ok := tainted(e.X); ok && carriesMemory(info.Types[e].Type) {
				return root, true
			}
		case *ast.IndexExpr:
			if root, ok := tainted(e.X); ok && carriesMemory(info.Types[e].Type) {
				return root, true
			}
		case *ast.SliceExpr:
			return tainted(e.X)
		case *ast.ParenExpr:
			return tainted(e.X)
		case *ast.TypeAssertExpr:
			return tainted(e.X)
		case *ast.StarExpr:
			return tainted(e.X)
		case *ast.UnaryExpr:
			return tainted(e.X)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if root, ok := tainted(v); ok {
					return root, true
				}
			}
		case *ast.CallExpr:
			if isPoolGet(info, e) {
				return nil, true
			}
			switch fun := e.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					for _, a := range e.Args {
						if root, ok := tainted(a); ok {
							return root, true
						}
					}
					return nil, false
				}
				if pf.getters[objOf(fun)] {
					return nil, true
				}
			case *ast.SelectorExpr:
				if callee := selCallee(info, fun); callee != nil && pf.getters[callee] {
					return nil, true
				}
				// Method call on a tainted receiver: the result is a view
				// of pooled memory when its type can carry memory.
				if root, ok := tainted(fun.X); ok && carriesMemory(info.Types[e].Type) {
					return root, true
				}
			}
		}
		return nil, false
	}

	// killRoots processes a Put-like call: taint roots reached by the put
	// arguments die; in classification mode, putting a parameter marks
	// this function as a putter for it.
	killRoots := func(call *ast.CallExpr, args []ast.Expr) {
		for _, a := range args {
			root := rootObj(a)
			if root == nil {
				continue
			}
			if idx, isParam := paramIndex[root]; isParam && fnObj != nil {
				if pf.putters[fnObj] == nil {
					pf.putters[fnObj] = make(map[int]bool)
				}
				if !pf.putters[fnObj][idx] {
					pf.putters[fnObj][idx] = true
					changed = true
				}
			}
			if r, ok := taintRoot[root]; ok && r != nil {
				root = r
			}
			dead[root] = call.End()
		}
	}

	markGetter := func() {
		if fnObj != nil && !pf.getters[fnObj] {
			pf.getters[fnObj] = true
			changed = true
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			// Use of a variable whose pooled backing store was returned
			// to the pool earlier in the function.
			obj := objOf(n)
			putPos, isDead := dead[obj]
			if !isDead {
				if root, ok := taintRoot[obj]; ok {
					putPos, isDead = dead[root]
				}
			}
			if isDead && n.Pos() > putPos && report {
				pf.pass.Reportf(n.Pos(), "use of pooled memory %q after it was returned with Put", n.Name)
			}

		case *ast.AssignStmt:
			rhs := func(i int) ast.Expr {
				if len(n.Rhs) == len(n.Lhs) {
					return n.Rhs[i]
				}
				return n.Rhs[0]
			}
			for i, lhs := range n.Lhs {
				root, ok := tainted(rhs(i))
				switch lhs := lhs.(type) {
				case *ast.Ident:
					obj := objOf(lhs)
					if obj == nil {
						continue
					}
					if ok {
						if root == nil {
							root = obj
						}
						taintRoot[obj] = root
						delete(dead, obj)
					} else if n.Tok == token.ASSIGN {
						delete(taintRoot, obj)
					}
				case *ast.SelectorExpr:
					if _, baseTainted := tainted(lhs.X); ok && !baseTainted && report {
						pf.pass.Reportf(lhs.Pos(), "pooled memory stored in field %s of a non-pooled value (escapes the pool's lifetime)", lhs.Sel.Name)
					}
				case *ast.IndexExpr:
					// Storing pooled memory into a container makes the
					// container itself carry pooled memory.
					if baseRoot := rootObj(lhs.X); ok && baseRoot != nil {
						if _, baseTainted := taintRoot[baseRoot]; !baseTainted {
							if root == nil {
								root = baseRoot
							}
							taintRoot[baseRoot] = root
						}
					}
				}
			}

		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if _, ok := tainted(res); !ok {
					continue
				}
				if fd.Name.IsExported() {
					if report {
						pf.pass.Reportf(res.Pos(), "pooled memory returned from exported %s (leaves the package without an owner to Put it back)", fd.Name.Name)
					}
				} else {
					markGetter()
				}
				break
			}

		case *ast.GoStmt:
			if report {
				ast.Inspect(n.Call, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if _, isTainted := taintRoot[objOf(id)]; isTainted {
							pf.pass.Reportf(id.Pos(), "pooled memory %q captured by goroutine (may outlive the pool owner's Put)", id.Name)
							return false
						}
					}
					return true
				})
			}

		case *ast.CallExpr:
			if isPoolPut(info, n) {
				killRoots(n, n.Args)
				return true
			}
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if puts := pf.putters[objOf(fun)]; puts != nil {
					var args []ast.Expr
					for idx := range puts {
						if idx >= 0 && idx < len(n.Args) {
							args = append(args, n.Args[idx])
						}
					}
					killRoots(n, args)
				}
			case *ast.SelectorExpr:
				if callee := selCallee(info, fun); callee != nil {
					if puts := pf.putters[callee]; puts != nil {
						var args []ast.Expr
						for idx := range puts {
							if idx == receiverParam {
								args = append(args, fun.X)
							} else if idx < len(n.Args) {
								args = append(args, n.Args[idx])
							}
						}
						killRoots(n, args)
					}
				}
			}
		}
		return true
	})
	return changed
}

// selCallee resolves a selector call's callee object (method or
// package-qualified function).
func selCallee(info *types.Info, sel *ast.SelectorExpr) types.Object {
	if s, ok := info.Selections[sel]; ok {
		return s.Obj()
	}
	return info.Uses[sel.Sel]
}

// isPoolGet matches <sync.Pool value>.Get().
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	return isPoolMethod(info, call, "Get")
}

// isPoolPut matches <sync.Pool value>.Put(x).
func isPoolPut(info *types.Info, call *ast.CallExpr) bool {
	return isPoolMethod(info, call, "Put")
}

func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := info.Types[sel.X].Type
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// carriesMemory reports whether a value of type t can reference heap
// memory (so taint should propagate to it). Numerics, booleans and
// strings cannot alias a pooled buffer (string conversions copy).
func carriesMemory(t types.Type) bool {
	if t == nil {
		return true // missing type info: stay conservative
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if carriesMemory(u.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return true
}
