package lint

import (
	"go/ast"
	"go/types"

	"qof/internal/lint/analysis"
	"qof/internal/lint/cfg"
)

// BudgetCharge enforces the streaming executor's metering invariant: a
// kernel working under a budget (a streamCtx or Budget parameter or
// receiver) that accumulates regions in a loop must charge the budget for
// them before any successful return — otherwise the buffer it built is
// invisible to admission control. Error returns are exempt: the charge
// models delivered work, and a failed path delivers nothing.
//
// Concretely: for every loop that appends to a []Region value, every path
// from the loop's exit to a non-error return must pass a charge call
// (meter, charge, or tap).
var BudgetCharge = &analysis.Analyzer{
	Name: "budgetcharge",
	Doc: "reports region-accumulating loops in budgeted kernels whose " +
		"buffers can reach a successful return without a budget charge",
	Requires: []*analysis.Analyzer{cfg.FactAnalyzer},
	Run:      runBudgetCharge,
}

func runBudgetCharge(pass *analysis.Pass) (any, error) {
	cfgs := pass.ResultOf[cfg.FactAnalyzer].(*cfg.PackageCFGs)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isBudgetedFunc(pass, fd) {
				continue
			}
			checkBudgetCharges(pass, cfgs, fd.Body)
		}
	}
	return nil, nil
}

// isBudgetedFunc reports whether fd works under admission control: a
// parameter or receiver of (pointer to) named type streamCtx or Budget.
func isBudgetedFunc(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	check := func(fields *ast.FieldList) bool {
		if fields == nil {
			return false
		}
		for _, fld := range fields.List {
			if isBudgetType(pass.TypesInfo.Types[fld.Type].Type) {
				return true
			}
		}
		return false
	}
	return check(fd.Recv) || check(fd.Type.Params)
}

func isBudgetType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "streamCtx" || name == "Budget"
}

func checkBudgetCharges(pass *analysis.Pass, cfgs *cfg.PackageCFGs, body *ast.BlockStmt) {
	g := cfgs.Of(body)
	edges := g.BackEdges()
	if len(edges) == 0 {
		return
	}
	sources := make(map[*cfg.Block][]*cfg.Block)
	for _, e := range edges {
		sources[e.To] = append(sources[e.To], e.From)
	}
	for _, head := range g.Blocks {
		srcs := sources[head]
		if len(srcs) == 0 || head.Stmt == nil || len(head.Succs) < 2 {
			continue
		}
		bodyBlocks := loopBody(head, srcs)
		if !appendsRegions(pass, head, bodyBlocks) {
			continue
		}
		// A charge inside the loop (per-batch metering) already covers the
		// buffer; only charge-free loops must meter after.
		if loopCharges(pass, head, bodyBlocks) {
			continue
		}
		// The loop's structural exit edge: Succs[1] for both range heads
		// and condition heads (break edges land in the same after block
		// for structured loops).
		after := head.Succs[1]
		if uncharged(pass, after, g.Exit) {
			pass.Reportf(head.Stmt.Pos(),
				"loop accumulates regions but a successful return is reachable without charging the budget (call meter/charge/tap)")
		}
	}
}

// loopBody collects the blocks on cycles through head: reachable from the
// head's body edge without re-entering head, and able to reach a back-edge
// source the same way.
func loopBody(head *cfg.Block, srcs []*cfg.Block) map[*cfg.Block]bool {
	fwd := make(map[*cfg.Block]bool)
	var walk func(*cfg.Block)
	walk = func(b *cfg.Block) {
		if b == head || fwd[b] {
			return
		}
		fwd[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	if len(head.Succs) > 0 {
		walk(head.Succs[0])
	}
	// Backward pass: keep only blocks that can reach a back-edge source.
	keep := make(map[*cfg.Block]bool)
	var back func(*cfg.Block)
	back = func(b *cfg.Block) {
		if !fwd[b] || keep[b] {
			return
		}
		keep[b] = true
		for _, p := range b.Preds {
			back(p)
		}
	}
	for _, s := range srcs {
		back(s)
	}
	return keep
}

// appendsRegions reports whether the loop (head plus body blocks) grows a
// []Region value via append.
func appendsRegions(pass *analysis.Pass, head *cfg.Block, body map[*cfg.Block]bool) bool {
	blocks := []*cfg.Block{head}
	for b := range body {
		blocks = append(blocks, b)
	}
	for _, b := range blocks {
		for _, node := range b.Nodes {
			found := false
			cfg.Inspect(node, func(n ast.Node) bool {
				if found {
					return false
				}
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					return true
				}
				if t := pass.TypesInfo.Types[call].Type; t != nil && isRegionSlice(t) {
					found = true
					return false
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}

// loopCharges reports whether any block of the loop makes a charge call.
func loopCharges(pass *analysis.Pass, head *cfg.Block, body map[*cfg.Block]bool) bool {
	blocks := []*cfg.Block{head}
	for b := range body {
		blocks = append(blocks, b)
	}
	for _, b := range blocks {
		if charged, _ := scanChargeBlock(pass, b); charged {
			return true
		}
	}
	return false
}

func isRegionSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Region"
}

// uncharged reports whether a successful (non-error) return is reachable
// from start without passing a charge call. Error returns and panics may
// reach Exit uncharged — they deliver no result; the implicit
// fall-off-the-end return of a void kernel may not.
func uncharged(pass *analysis.Pass, start, exit *cfg.Block) bool {
	seen := make(map[*cfg.Block]bool)
	queue := []*cfg.Block{start}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] || b == exit {
			continue
		}
		seen[b] = true
		charged, badExit := scanChargeBlock(pass, b)
		if badExit {
			return true
		}
		if charged {
			continue
		}
		for _, s := range b.Succs {
			if s != exit {
				queue = append(queue, s)
				continue
			}
			// Only terminating statements may take the exit edge without a
			// charge: an error return (success returns already tripped
			// badExit) or a panic. A plain fall-through is a successful
			// void return.
			if n := len(b.Nodes); n > 0 {
				last := b.Nodes[n-1]
				if _, ok := last.(*ast.ReturnStmt); ok {
					continue
				}
				if es, ok := last.(*ast.ExprStmt); ok {
					if call, ok := es.X.(*ast.CallExpr); ok && calleeName(call) == "panic" {
						continue
					}
				}
			}
			return true
		}
	}
	return false
}

// scanChargeBlock walks one block in order: charged means a charge call
// runs before control leaves through any return in this block; badExit
// means the block performs a successful return before any charge.
func scanChargeBlock(pass *analysis.Pass, b *cfg.Block) (charged, badExit bool) {
	for _, node := range b.Nodes {
		if ret, ok := node.(*ast.ReturnStmt); ok {
			if !isErrorReturn(pass, ret) {
				return false, true
			}
			continue
		}
		found := false
		cfg.Inspect(node, func(n ast.Node) bool {
			if found {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				switch calleeName(call) {
				case "meter", "charge", "tap":
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true, false
		}
	}
	return false, false
}

// isErrorReturn reports whether the return delivers a non-nil error: some
// result expression has type error and is not the nil literal.
func isErrorReturn(pass *analysis.Pass, ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		if id, ok := res.(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		if t := pass.TypesInfo.Types[res].Type; t != nil && t.String() == "error" {
			return true
		}
	}
	return false
}
