package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"qof/internal/lint/analysis"
)

// RegionOrder enforces the region-set representation invariant the whole
// algebra rests on: a Set's backing slice is sorted by (Start asc, End
// desc) and duplicate-free. Every kernel assumes it of its operands, so a
// single raw construction poisons every operator downstream.
//
// Mechanically: in a package that declares both a `Region` type and a
// `Set` struct wrapping a []Region field, (1) composite literals that
// populate the backing slice field may only appear inside functions whose
// doc comment carries a `qoflint:canonicalizer` marker — the audited
// constructors that sort/dedup (FromRegions) or take responsibility for
// an already-canonical slice (fromSorted, trimmed); (2) exported
// functions and methods must not return a raw []Region value built
// locally — they return a Set (canonical by induction) or expose a stored
// field (an accessor like Regions()), never an append-built slice whose
// ordering nobody checked.
var RegionOrder = &analysis.Analyzer{
	Name: "regionorder",
	Doc: "reports region-set constructions that bypass the canonicalizing " +
		"constructors (sorted, duplicate-free order is the algebra's invariant)",
	Run: runRegionOrder,
}

const canonicalizerMarker = "qoflint:canonicalizer"

func runRegionOrder(pass *analysis.Pass) (any, error) {
	regionType, setType, sliceField := findRegionTypes(pass)
	if setType == nil {
		return nil, nil
	}
	sliceOfRegion := types.NewSlice(regionType)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			blessed := fd.Doc != nil && strings.Contains(fd.Doc.Text(), canonicalizerMarker)

			// (1) Raw Set literals with a populated backing slice.
			if !blessed {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					cl, ok := n.(*ast.CompositeLit)
					if !ok {
						return true
					}
					tv, ok := pass.TypesInfo.Types[cl]
					if !ok || !isType(tv.Type, setType) || len(cl.Elts) == 0 {
						return true
					}
					for _, el := range cl.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							if key, ok := kv.Key.(*ast.Ident); ok && key.Name != sliceField {
								continue
							}
						}
						pass.Reportf(cl.Pos(), "raw Set literal populates the backing slice outside a qoflint:canonicalizer function (ordering invariant unchecked)")
						return true
					}
					return true
				})
			}

			// (2) Exported functions returning locally built []Region.
			if !fd.Name.IsExported() || blessed {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // a closure's returns are not the exported boundary
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					tv, ok := pass.TypesInfo.Types[res]
					if !ok || !types.Identical(tv.Type, sliceOfRegion) {
						continue
					}
					if isAccessorExpr(res) {
						continue
					}
					pass.Reportf(res.Pos(), "exported %s returns a raw []Region; route it through a canonicalizing constructor or return a Set", fd.Name.Name)
				}
				return true
			})
		}
	}
	return nil, nil
}

// findRegionTypes locates the package's Region type and the Set struct
// wrapping a []Region field, returning the backing field's name.
func findRegionTypes(pass *analysis.Pass) (regionType types.Type, setType types.Type, sliceField string) {
	scope := pass.Pkg.Scope()
	regionObj, ok := scope.Lookup("Region").(*types.TypeName)
	if !ok {
		return nil, nil, ""
	}
	setObj, ok := scope.Lookup("Set").(*types.TypeName)
	if !ok {
		return nil, nil, ""
	}
	st, ok := setObj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, nil, ""
	}
	want := types.NewSlice(regionObj.Type())
	for i := 0; i < st.NumFields(); i++ {
		if types.Identical(st.Field(i).Type(), want) {
			return regionObj.Type(), setObj.Type(), st.Field(i).Name()
		}
	}
	return nil, nil, ""
}

// isType reports whether t is the named type (or a pointer to it).
func isType(t, want types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.Identical(t, want)
}

// isAccessorExpr reports whether a return expression merely exposes stored
// state or delegates: a field selector, a call (the callee is checked on
// its own), or nil.
func isAccessorExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.CallExpr:
		return true
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.ParenExpr:
		return isAccessorExpr(e.X)
	}
	return false
}
