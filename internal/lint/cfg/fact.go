package cfg

import (
	"go/ast"

	"qof/internal/lint/analysis"
)

// FactAnalyzer is the shared-fact producer for control-flow graphs: it
// reports nothing itself, but any analyzer listing it in Requires receives
// a *PackageCFGs in pass.ResultOf and gets each function's CFG built at
// most once per package, no matter how many analyzers ask.
var FactAnalyzer = &analysis.Analyzer{
	Name: "cfgfact",
	Doc:  "builds per-function control-flow graphs shared by flow-aware analyzers",
	Run: func(pass *analysis.Pass) (any, error) {
		return &PackageCFGs{m: make(map[*ast.BlockStmt]*CFG)}, nil
	},
}

// PackageCFGs memoizes one CFG per function body. Bodies are keyed by
// their *ast.BlockStmt, which identifies FuncDecl bodies and FuncLit
// bodies alike. Construction is lazy: analyzers that inspect only a few
// functions don't pay for the rest of the package.
type PackageCFGs struct {
	m map[*ast.BlockStmt]*CFG
}

// Of returns the CFG for body, building it on first request.
func (p *PackageCFGs) Of(body *ast.BlockStmt) *CFG {
	if g, ok := p.m[body]; ok {
		return g
	}
	g := New(body)
	p.m[body] = g
	return g
}
