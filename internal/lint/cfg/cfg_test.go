package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as a file containing one function and returns its
// body.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func build(t *testing.T, body string) *CFG {
	t.Helper()
	return New(parseBody(t, body))
}

// reaches reports whether to is reachable from from over Succs.
func reaches(from, to *Block) bool {
	seen := make(map[*Block]bool)
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\ny := x\n_ = y")
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry has %d nodes, want 3\n%s", len(g.Entry.Nodes), g)
	}
	if !reaches(g.Entry, g.Exit) {
		t.Errorf("exit unreachable\n%s", g)
	}
}

func TestIfElse(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n x = 2\n} else {\n x = 3\n}\n_ = x")
	// Entry ends with the condition: two successors, then/else.
	if g.Entry.Cond == nil || len(g.Entry.Succs) != 2 {
		t.Fatalf("entry: cond=%v succs=%d\n%s", g.Entry.Cond, len(g.Entry.Succs), g)
	}
	then, els := g.Entry.Succs[0], g.Entry.Succs[1]
	if len(then.Nodes) != 1 || len(els.Nodes) != 1 {
		t.Errorf("branch blocks: %d/%d nodes, want 1/1\n%s", len(then.Nodes), len(els.Nodes), g)
	}
	if !reaches(then, g.Exit) || !reaches(els, g.Exit) {
		t.Errorf("branches must rejoin and exit\n%s", g)
	}
}

func TestIfWithoutElseFallsThrough(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n x = 2\n}\n_ = x")
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("entry succs = %d, want 2 (then + fallthrough)\n%s", len(g.Entry.Succs), g)
	}
	if g.Entry.Succs[0] == g.Entry.Succs[1] {
		t.Errorf("true and false edges must differ\n%s", g)
	}
}

func TestForLoop(t *testing.T) {
	g := build(t, "for i := 0; i < 10; i++ {\n _ = i\n}\n_ = 1")
	var head *Block
	for _, b := range g.Blocks {
		if b.Head {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no loop head marked\n%s", g)
	}
	if head.Cond == nil || len(head.Succs) != 2 {
		t.Errorf("loop head: cond=%v succs=%d, want cond + 2 succs\n%s", head.Cond, len(head.Succs), g)
	}
	if !reaches(head.Succs[0], head) {
		t.Errorf("body must loop back to head\n%s", g)
	}
	if !reaches(g.Entry, g.Exit) {
		t.Errorf("exit unreachable\n%s", g)
	}
}

func TestInfiniteLoopWithBreak(t *testing.T) {
	g := build(t, "for {\n if true {\n  break\n }\n}\n_ = 1")
	if !reaches(g.Entry, g.Exit) {
		t.Errorf("break must reach exit\n%s", g)
	}
	// Without the break the after-block is dead.
	g2 := build(t, "for {\n _ = 1\n}\n_ = 2")
	dead := 0
	for _, b := range g2.Blocks {
		if !b.Reachable() {
			dead++
		}
	}
	if dead == 0 {
		t.Errorf("code after for{} should be unreachable\n%s", g2)
	}
}

func TestRangeLoop(t *testing.T) {
	g := build(t, "xs := []int{1}\nfor i := range xs {\n _ = i\n}\n_ = 1")
	var head *Block
	for _, b := range g.Blocks {
		if b.Head {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no loop head for range\n%s", g)
	}
	if len(head.Succs) != 2 {
		t.Errorf("range head has %d succs, want 2 (body, after)\n%s", len(head.Succs), g)
	}
}

func TestContinueTargetsPost(t *testing.T) {
	g := build(t, "for i := 0; i < 10; i++ {\n if i == 3 {\n  continue\n }\n _ = i\n}")
	// Every cycle must pass through the post statement (i++): find the post
	// block (single node, single succ = head) and check the continue edge
	// lands there, not on the head.
	var head *Block
	for _, b := range g.Blocks {
		if b.Head {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no head")
	}
	for _, p := range head.Preds {
		if p == g.Entry {
			continue
		}
		if len(p.Nodes) == 0 {
			t.Errorf("head pred b%d has no nodes; continue should route through post\n%s", p.Index, g)
		}
	}
}

func TestSwitchWithFallthroughAndDefault(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\n x = 10\n fallthrough\ncase 2:\n x = 20\ndefault:\n x = 30\n}\n_ = x")
	// Entry must fan out to all three case blocks but not to after (there
	// is a default).
	if len(g.Entry.Succs) != 3 {
		t.Errorf("switch dispatch has %d succs, want 3\n%s", len(g.Entry.Succs), g)
	}
	if !reaches(g.Entry, g.Exit) {
		t.Errorf("exit unreachable\n%s", g)
	}
}

func TestSwitchWithoutDefaultHasSkipEdge(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\n x = 10\n}\n_ = x")
	if len(g.Entry.Succs) != 2 {
		t.Errorf("switch without default: %d succs, want 2 (case + skip)\n%s", len(g.Entry.Succs), g)
	}
}

func TestSelect(t *testing.T) {
	g := build(t, "a := make(chan int)\nb := make(chan int)\nselect {\ncase <-a:\n _ = 1\ncase b <- 2:\n _ = 2\n}\n_ = 3")
	if len(g.Entry.Succs) != 2 {
		t.Errorf("select has %d succs, want one per comm clause\n%s", len(g.Entry.Succs), g)
	}
}

func TestGotoFormsLoop(t *testing.T) {
	g := build(t, "i := 0\nagain:\ni++\nif i < 10 {\n goto again\n}")
	var heads int
	for _, b := range g.Blocks {
		if b.Head {
			heads++
		}
	}
	if heads == 0 {
		t.Errorf("goto loop must mark a head\n%s", g)
	}
	if !reaches(g.Entry, g.Exit) {
		t.Errorf("exit unreachable\n%s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, "outer:\nfor {\n for {\n  break outer\n }\n}\n_ = 1")
	if !reaches(g.Entry, g.Exit) {
		t.Errorf("labeled break must escape both loops\n%s", g)
	}
}

func TestReturnCutsFlow(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n return\n}\n_ = x")
	// The then-branch must edge to Exit and the code after the return (none
	// here beyond the synthesized block) must not re-enter the join.
	then := g.Entry.Succs[0]
	found := false
	for _, s := range then.Succs {
		if s == g.Exit {
			found = true
		}
	}
	if !found {
		t.Errorf("return must edge to exit\n%s", g)
	}
}

func TestPanicCutsFlow(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n panic(\"no\")\n}\n_ = x")
	then := g.Entry.Succs[0]
	found := false
	for _, s := range then.Succs {
		if s == g.Exit {
			found = true
		}
	}
	if !found {
		t.Errorf("panic must edge to exit\n%s", g)
	}
}

func TestDefersRecorded(t *testing.T) {
	g := build(t, "defer f1()\nif true {\n defer f2()\n}")
	if len(g.Defers) != 2 {
		t.Errorf("recorded %d defers, want 2", len(g.Defers))
	}
	// The defer statements also appear as nodes at their registration
	// points.
	nodes := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				nodes++
			}
		}
	}
	if nodes != 2 {
		t.Errorf("defer nodes in blocks = %d, want 2", nodes)
	}
}

func TestFuncLitIsOpaque(t *testing.T) {
	g := build(t, "f := func() {\n for {\n }\n}\nf()")
	for _, b := range g.Blocks {
		if b.Head {
			t.Errorf("function literal body must not contribute blocks\n%s", g)
		}
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if !reaches(g.Entry, g.Exit) {
		t.Errorf("nil body: entry must reach exit")
	}
}

func TestStringRendering(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	s := g.String()
	if !strings.Contains(s, "entry") || !strings.Contains(s, "exit") {
		t.Errorf("String() = %q, want entry/exit markers", s)
	}
}

// --- dataflow solver tests ---

// reachFlow is a trivial forward may-analysis: "has a call to poll() been
// seen on some path". States: 0 bottom, 1 no, 2 yes, merge = max.
type reachFlow struct{}

func (reachFlow) Bottom() int   { return 0 }
func (reachFlow) Boundary() int { return 1 }
func (reachFlow) Merge(a, b int) int {
	if a > b {
		return a
	}
	return b
}
func (reachFlow) Equal(a, b int) bool { return a == b }
func (reachFlow) Widen(_, m int) int  { return m }
func (reachFlow) Transfer(b *Block, s int) int {
	if s == 0 {
		return 0
	}
	for _, n := range b.Nodes {
		seen := false
		ast.Inspect(n, func(x ast.Node) bool {
			if c, ok := x.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "poll" {
					seen = true
				}
			}
			return true
		})
		if seen {
			return 2
		}
	}
	return s
}

func TestForwardSolve(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n poll()\n}\n_ = x")
	res := Solve[int](g, Forward, reachFlow{})
	// Exit merges the polled and unpolled paths: may-analysis says 2.
	if got := res.In[g.Exit]; got != 2 {
		t.Errorf("may-reach at exit = %d, want 2\n%s", got, g)
	}
}

// mustFlow is the must-variant: merge = min (with bottom as identity).
type mustFlow struct{ reachFlow }

func (mustFlow) Merge(a, b int) int {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	if a < b {
		return a
	}
	return b
}

func TestMustSolveJoins(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n poll()\n}\n_ = x")
	res := Solve[int](g, Forward, mustFlow{})
	if got := res.In[g.Exit]; got != 1 {
		t.Errorf("must-reach at exit = %d, want 1 (one path unpolled)\n%s", got, g)
	}
	g2 := build(t, "x := 1\nif x > 0 {\n poll()\n} else {\n poll()\n}\n_ = x")
	res2 := Solve[int](g2, Forward, mustFlow{})
	if got := res2.In[g2.Exit]; got != 2 {
		t.Errorf("must-reach at exit = %d, want 2 (both paths polled)\n%s", got, g2)
	}
}

func TestSolveLoopFixpoint(t *testing.T) {
	g := build(t, "for i := 0; i < 10; i++ {\n poll()\n}\n_ = 1")
	res := Solve[int](g, Forward, reachFlow{})
	if got := res.In[g.Exit]; got != 2 {
		t.Errorf("loop poll must reach exit: got %d\n%s", got, g)
	}
}

// counterFlow counts Lock-like calls without an upper bound; only widening
// terminates it on a loop. Widen caps at 99.
type counterFlow struct{}

func (counterFlow) Bottom() int         { return -1 }
func (counterFlow) Boundary() int       { return 0 }
func (counterFlow) Equal(a, b int) bool { return a == b }
func (counterFlow) Merge(a, b int) int {
	if a == -1 {
		return b
	}
	if b == -1 {
		return a
	}
	if a > b {
		return a
	}
	return b
}
func (counterFlow) Widen(_, _ int) int { return 99 }
func (counterFlow) Transfer(b *Block, s int) int {
	if s == -1 {
		return -1
	}
	for _, n := range b.Nodes {
		cnt := 0
		ast.Inspect(n, func(x ast.Node) bool {
			if c, ok := x.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "lock" {
					cnt++
				}
			}
			return true
		})
		s += cnt
	}
	return s
}

func TestWideningTerminates(t *testing.T) {
	// lock() inside an unconditional loop: the counter grows every trip;
	// without widening the solver would iterate forever. The head is
	// widened to 99 and the body's lock() bumps it once more on the way
	// out, so the stable exit state is 100.
	g := build(t, "for {\n lock()\n if done() {\n  break\n }\n}\n_ = 1")
	res := Solve[int](g, Forward, counterFlow{})
	if got := res.In[g.Exit]; got != 100 {
		t.Errorf("widened counter at exit = %d, want 100", got)
	}
}

func TestBackwardSolve(t *testing.T) {
	// Backward must-analysis: "every path from here reaches a poll before
	// exit". Transfer in a backward problem sees the block after its
	// successors.
	g := build(t, "x := 1\nif x > 0 {\n poll()\n}\n_ = x")
	res := Solve[int](g, Backward, mustFlow{})
	// From the entry, one path (the else edge) exits without polling.
	if got := res.Out[g.Entry]; got != 1 {
		t.Errorf("backward must-poll from entry = %d, want 1\n%s", got, g)
	}
	g2 := build(t, "poll()\n_ = 1")
	res2 := Solve[int](g2, Backward, mustFlow{})
	if got := res2.Out[g2.Entry]; got != 2 {
		t.Errorf("backward must-poll from entry = %d, want 2\n%s", got, g2)
	}
}
