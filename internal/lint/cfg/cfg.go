// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and solves dataflow problems on them, using only the
// standard library. It is the flow-analysis substrate of the qoflint
// analyzers: PR 4's checks were syntax-level (source-order scans), which
// cannot see that a lock is released on only one branch or that an
// iterator leaks on an early error return. A CFG makes "on all paths"
// questions answerable.
//
// The graph is deliberately modest — basic blocks of statements with
// edges for if/for/range/switch/select/goto/break/continue/return — and
// stops at function-literal boundaries: a FuncLit appearing inside a
// statement is an opaque value here (its body runs at some other time);
// analyzers that care recurse into it with its own CFG.
//
// Defer is modeled two ways at once: the DeferStmt appears as an ordinary
// node at its registration point (so forward analyses know *from when* a
// deferred effect is pending on a path), and the graph records every
// DeferStmt in Defers so exit-time reasoning (deferred unlocks, deferred
// closes) can apply their effects at the virtual Exit block.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: a maximal straight-line sequence of nodes with
// edges only at the end. Nodes holds statements and the control expressions
// (if/for/switch conditions, range operands) in execution order, so a
// transfer function sees every evaluated expression exactly once per pass
// through the block.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block

	// Cond, when non-nil, is the branch condition evaluated at the end of
	// the block: Succs[0] is the true edge and Succs[1] the false edge.
	// Blocks ending in unconditional control flow leave it nil.
	Cond ast.Expr

	// Head marks loop heads (targets of a back edge); the dataflow solver
	// applies widening here.
	Head bool

	// Stmt, set on loop heads built from a for or range statement, is that
	// statement — so analyzers can apply per-loop-kind policy (exemptions,
	// report positions) without re-deriving the AST context. Heads of
	// goto-formed loops leave it nil.
	Stmt ast.Stmt

	// unreachable marks blocks synthesized after a terminating statement
	// (return, break, goto ...) purely to hold any dead code that follows.
	unreachable bool
}

// Reachable reports whether the block is reachable from the entry.
func (b *Block) Reachable() bool { return !b.unreachable }

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block // virtual: every return and the final fallthrough edge here
	Blocks []*Block

	// Defers lists every defer statement in the body (outside nested
	// function literals), in source order. Whether a given defer is live at
	// Exit on a given path is a dataflow question; the list is the catalog.
	Defers []*ast.DeferStmt
}

// New builds the CFG for a function body. A nil body yields a two-block
// graph (entry → exit), which keeps callers uniform over declared-only
// functions.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{}
	b.graph = &CFG{}
	b.graph.Entry = b.newBlock()
	b.graph.Exit = b.newBlock()
	cur := b.graph.Entry
	if body != nil {
		cur = b.stmtList(cur, body.List)
	}
	b.edge(cur, b.graph.Exit) // implicit return / fallthrough off the end
	b.resolveGotos()
	b.markLoopHeads()
	return b.graph
}

// builder carries the construction state: the growing graph, the stack of
// enclosing loop/switch targets for break and continue, and pending gotos.
type builder struct {
	graph *CFG

	// breakTargets / continueTargets are stacks; label is "" for the
	// innermost unlabeled form.
	breaks    []branchTarget
	continues []branchTarget

	labels  map[string]*Block   // label → block starting the labeled stmt
	gotos   []pendingGoto       // resolved after the walk (forward gotos)
	labeled map[string]ast.Stmt // label → the labeled statement, for break/continue LABEL
}

type branchTarget struct {
	label string
	block *Block
	stmt  ast.Stmt // the loop/switch statement this target belongs to
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.graph.Blocks)}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

// newDeadBlock starts a block for statements following a terminator; it has
// no predecessors and is marked unreachable (a later label can still make
// it live — resolveGotos and markLoopHeads clear the flag when edges
// arrive).
func (b *builder) newDeadBlock() *Block {
	blk := b.newBlock()
	blk.unreachable = true
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// stmtList threads the statements through cur, returning the block control
// falls out of.
func (b *builder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.LabeledStmt:
		// The labeled statement starts its own block so goto/break/continue
		// with the label have a target.
		start := b.newBlock()
		b.edge(cur, start)
		if b.labels == nil {
			b.labels = make(map[string]*Block)
			b.labeled = make(map[string]ast.Stmt)
		}
		b.labels[s.Label.Name] = start
		b.labeled[s.Label.Name] = s.Stmt
		return b.stmtWithLabel(start, s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.graph.Exit)
		return b.newDeadBlock()

	case *ast.BranchStmt:
		return b.branch(cur, s)

	case *ast.IfStmt:
		return b.ifStmt(cur, s)

	case *ast.ForStmt:
		return b.forStmt(cur, s, "")

	case *ast.RangeStmt:
		return b.rangeStmt(cur, s, "")

	case *ast.SwitchStmt:
		return b.switchStmt(cur, s, "")

	case *ast.TypeSwitchStmt:
		return b.typeSwitchStmt(cur, s, "")

	case *ast.SelectStmt:
		return b.selectStmt(cur, s, "")

	case *ast.DeferStmt:
		b.graph.Defers = append(b.graph.Defers, s)
		cur.Nodes = append(cur.Nodes, s)
		return cur

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if isPanicCall(s.X) {
			b.edge(cur, b.graph.Exit)
			return b.newDeadBlock()
		}
		return cur

	default:
		// Assignments, declarations, go statements, sends, inc/dec, empty
		// statements: straight-line nodes.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// stmtWithLabel dispatches a labeled loop/switch so its break/continue
// targets register under the label.
func (b *builder) stmtWithLabel(cur *Block, s ast.Stmt, label string) *Block {
	switch s := s.(type) {
	case *ast.ForStmt:
		return b.forStmt(cur, s, label)
	case *ast.RangeStmt:
		return b.rangeStmt(cur, s, label)
	case *ast.SwitchStmt:
		return b.switchStmt(cur, s, label)
	case *ast.TypeSwitchStmt:
		return b.typeSwitchStmt(cur, s, label)
	case *ast.SelectStmt:
		return b.selectStmt(cur, s, label)
	default:
		return b.stmt(cur, s)
	}
}

func (b *builder) branch(cur *Block, s *ast.BranchStmt) *Block {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.findTarget(b.breaks, label); t != nil {
			b.edge(cur, t)
		}
	case token.CONTINUE:
		if t := b.findTarget(b.continues, label); t != nil {
			b.edge(cur, t)
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: cur, label: label})
	case token.FALLTHROUGH:
		// Handled structurally by switchStmt (the case body's fallthrough
		// edge); reaching here means a stray fallthrough — ignore.
		return cur
	}
	return b.newDeadBlock()
}

func (b *builder) findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) ifStmt(cur *Block, s *ast.IfStmt) *Block {
	if s.Init != nil {
		cur.Nodes = append(cur.Nodes, s.Init)
	}
	cur.Nodes = append(cur.Nodes, s.Cond)
	cur.Cond = s.Cond

	after := b.newBlock()
	then := b.newBlock()
	b.edge(cur, then) // Succs[0]: true edge
	thenEnd := b.stmtList(then, s.Body.List)
	b.edge(thenEnd, after)

	if s.Else != nil {
		els := b.newBlock()
		b.edge(cur, els) // Succs[1]: false edge
		elsEnd := b.stmt(els, s.Else)
		b.edge(elsEnd, after)
	} else {
		b.edge(cur, after) // Succs[1]: false edge falls through
	}
	return after
}

func (b *builder) forStmt(cur *Block, s *ast.ForStmt, label string) *Block {
	if s.Init != nil {
		cur.Nodes = append(cur.Nodes, s.Init)
	}
	head := b.newBlock()
	head.Stmt = s
	b.edge(cur, head)
	after := b.newDeadBlock() // live only if the loop can exit
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		head.Cond = s.Cond
	}

	// continue targets the post statement when present, else the head.
	contTarget := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		contTarget = post
	}

	b.breaks = append(b.breaks, branchTarget{label: label, block: after, stmt: s})
	b.continues = append(b.continues, branchTarget{label: label, block: contTarget, stmt: s})

	body := b.newBlock()
	b.edge(head, body) // Succs[0]: condition true (or unconditional)
	if s.Cond != nil {
		b.edge(head, after) // Succs[1]: condition false
	}
	bodyEnd := b.stmtList(body, s.Body.List)
	b.edge(bodyEnd, contTarget)

	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	return after
}

func (b *builder) rangeStmt(cur *Block, s *ast.RangeStmt, label string) *Block {
	head := b.newBlock()
	head.Stmt = s
	// The range statement itself is the head's node: it evaluates the
	// operand and assigns the iteration variables each trip.
	head.Nodes = append(head.Nodes, s)
	b.edge(cur, head)
	after := b.newBlock()

	b.breaks = append(b.breaks, branchTarget{label: label, block: after, stmt: s})
	b.continues = append(b.continues, branchTarget{label: label, block: head, stmt: s})

	body := b.newBlock()
	b.edge(head, body)  // Succs[0]: next element
	b.edge(head, after) // Succs[1]: exhausted
	bodyEnd := b.stmtList(body, s.Body.List)
	b.edge(bodyEnd, head)

	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	return after
}

func (b *builder) switchStmt(cur *Block, s *ast.SwitchStmt, label string) *Block {
	if s.Init != nil {
		cur.Nodes = append(cur.Nodes, s.Init)
	}
	if s.Tag != nil {
		cur.Nodes = append(cur.Nodes, s.Tag)
	}
	return b.caseClauses(cur, s.Body.List, s, label, func(clause *ast.CaseClause, blk *Block) {
		for _, e := range clause.List {
			blk.Nodes = append(blk.Nodes, e)
		}
	})
}

func (b *builder) typeSwitchStmt(cur *Block, s *ast.TypeSwitchStmt, label string) *Block {
	if s.Init != nil {
		cur.Nodes = append(cur.Nodes, s.Init)
	}
	cur.Nodes = append(cur.Nodes, s.Assign)
	return b.caseClauses(cur, s.Body.List, s, label, nil)
}

// caseClauses builds the dispatch structure shared by expression and type
// switches: an edge from cur to every case block, fallthrough edges between
// consecutive case bodies, and a default edge to after when no default
// clause exists.
func (b *builder) caseClauses(cur *Block, clauses []ast.Stmt, s ast.Stmt, label string, noteExprs func(*ast.CaseClause, *Block)) *Block {
	after := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label: label, block: after, stmt: s})

	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.edge(cur, blocks[i])
		if cc, ok := c.(*ast.CaseClause); ok {
			if cc.List == nil {
				hasDefault = true
			}
			if noteExprs != nil {
				noteExprs(cc, blocks[i])
			}
		}
	}
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		body := cc.Body
		ft := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				body, ft = body[:n-1], true
			}
		}
		end := b.stmtList(blocks[i], body)
		if ft && i+1 < len(blocks) {
			b.edge(end, blocks[i+1])
		} else {
			b.edge(end, after)
		}
	}
	if !hasDefault {
		b.edge(cur, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	return after
}

func (b *builder) selectStmt(cur *Block, s *ast.SelectStmt, label string) *Block {
	after := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label: label, block: after, stmt: s})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(cur, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		end := b.stmtList(blk, cc.Body)
		b.edge(end, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	return after
}

func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok {
			b.edge(g.from, t)
		}
	}
}

// markLoopHeads finds targets of back edges with a DFS: an edge u→v with v
// still on the DFS stack closes a cycle, making v a loop head. goto-formed
// loops are caught the same way as structured ones. The same walk settles
// reachability: blocks the DFS never visits are dead (the builder's
// incremental flags are provisional — a goto resolved late can revive a
// block created after a terminator).
func (b *builder) markLoopHeads() {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(b.graph.Blocks))
	var dfs func(*Block)
	dfs = func(blk *Block) {
		color[blk.Index] = grey
		for _, s := range blk.Succs {
			switch color[s.Index] {
			case white:
				dfs(s)
			case grey:
				s.Head = true
			}
		}
		color[blk.Index] = black
	}
	dfs(b.graph.Entry)
	for _, blk := range b.graph.Blocks {
		blk.unreachable = color[blk.Index] == white
	}
}

// BackEdge is one loop-closing edge: From jumps back to the loop head To.
type BackEdge struct {
	From, To *Block
}

// BackEdges returns the loop-closing edges, found by the same grey-stack
// DFS that marks heads: an edge into a block still on the DFS stack closes
// a cycle. For the reducible graphs Go's structured statements produce,
// the result is independent of visit order.
func (g *CFG) BackEdges() []BackEdge {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(g.Blocks))
	var out []BackEdge
	var dfs func(*Block)
	dfs = func(blk *Block) {
		color[blk.Index] = grey
		for _, s := range blk.Succs {
			switch color[s.Index] {
			case white:
				dfs(s)
			case grey:
				out = append(out, BackEdge{From: blk, To: s})
			}
		}
		color[blk.Index] = black
	}
	dfs(g.Entry)
	return out
}

// Inspect walks one block node like ast.Inspect, visiting only what the
// block actually evaluates. The one composite node a block can hold is a
// *ast.RangeStmt (a range loop's head evaluates the operand and assigns the
// iteration variables); its body lives in other blocks, so Inspect stops at
// the operand and the iteration variables instead of descending into it.
func Inspect(n ast.Node, fn func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		if r.Key != nil {
			ast.Inspect(r.Key, fn)
		}
		if r.Value != nil {
			ast.Inspect(r.Value, fn)
		}
		ast.Inspect(r.X, fn)
		return
	}
	ast.Inspect(n, fn)
}

// isPanicCall reports whether e is a call of the builtin panic. The builder
// treats it as function exit; analyses that distinguish panicking exits
// from returns can inspect the node.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// String renders the graph for tests and debugging: one line per block with
// its successor indices.
func (g *CFG) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d", blk.Index)
		switch blk {
		case g.Entry:
			sb.WriteString("(entry)")
		case g.Exit:
			sb.WriteString("(exit)")
		}
		if blk.Head {
			sb.WriteString("(head)")
		}
		if blk.unreachable {
			sb.WriteString("(dead)")
		}
		fmt.Fprintf(&sb, " [%d nodes] ->", len(blk.Nodes))
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
