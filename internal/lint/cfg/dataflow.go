package cfg

// A generic worklist dataflow solver over a CFG: meet-over-paths
// approximated by a fixpoint, forward or backward, with widening applied at
// loop heads so lattices of unbounded height (counters) still terminate.
//
// The state type S is supplied by the analysis along with the lattice
// operations. States must be treated as immutable values: Transfer and
// Merge return fresh states rather than mutating their inputs, because the
// solver retains states across iterations.

// Dir selects the direction of a dataflow problem.
type Dir int

const (
	// Forward propagates states along edges: In(b) = merge of Out(preds),
	// Out(b) = Transfer(b, In(b)); the boundary state enters at Entry.
	Forward Dir = iota
	// Backward propagates against edges: Out(b) = merge of In(succs),
	// In(b) = Transfer(b, Out(b)); the boundary state enters at Exit.
	Backward
)

// Flow is one dataflow problem: the lattice and transfer function.
type Flow[S any] interface {
	// Bottom is the state of a block no path has reached yet; it is the
	// identity of Merge.
	Bottom() S

	// Boundary is the state at the graph boundary: Entry's input for a
	// forward problem, Exit's input for a backward one.
	Boundary() S

	// Transfer pushes a state through a block's nodes (in execution order
	// for Forward problems; the solver calls it with the block regardless
	// of direction, the implementation reverses iteration for Backward).
	Transfer(b *Block, s S) S

	// Merge joins two states where paths meet. It must be monotone,
	// commutative, and have Bottom as identity.
	Merge(a, b S) S

	// Equal reports whether two states coincide (fixpoint detection).
	Equal(a, b S) bool

	// Widen accelerates convergence at loop heads: called with the
	// previous and the newly merged state once a head has been revisited
	// often enough, it must return an upper bound of both. Lattices of
	// finite height can simply return merged.
	Widen(prev, merged S) S
}

// EdgeRefiner is an optional Flow extension for path-sensitive problems: a
// flow that implements it has Refine called as states propagate along the
// out-edges of a branching block (Forward direction only), letting the
// analysis narrow the state with what the branch condition established —
// "err != nil was true on this edge, so the paired iterator is nil". from
// is the branching block (its Cond is the condition) and branch is the
// successor index: 0 for the true edge, 1 for the false edge.
type EdgeRefiner[S any] interface {
	Refine(from *Block, branch int, s S) S
}

// widenAfter is how many times a loop head is revisited before the solver
// starts widening its input state.
const widenAfter = 3

// Result holds the solved states per block.
type Result[S any] struct {
	// In is the state entering each block: before its first node (Forward)
	// or after its last (Backward).
	In map[*Block]S
	// Out is Transfer applied to In — the state leaving the block.
	Out map[*Block]S
}

// Solve runs the worklist algorithm to fixpoint and returns the per-block
// states. Unreachable blocks keep Bottom.
func Solve[S any](g *CFG, dir Dir, f Flow[S]) *Result[S] {
	res := &Result[S]{In: make(map[*Block]S), Out: make(map[*Block]S)}
	for _, b := range g.Blocks {
		res.In[b] = f.Bottom()
		res.Out[b] = f.Bottom()
	}
	start := g.Entry
	if dir == Backward {
		start = g.Exit
	}
	res.In[start] = f.Boundary()

	next := func(b *Block) []*Block {
		if dir == Forward {
			return b.Succs
		}
		return b.Preds
	}

	refiner, _ := any(f).(EdgeRefiner[S])

	visits := make(map[*Block]int)
	queue := []*Block{start}
	queued := map[*Block]bool{start: true}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false

		out := f.Transfer(b, res.In[b])
		res.Out[b] = out
		for i, s := range next(b) {
			eff := out
			if refiner != nil && dir == Forward && b.Cond != nil && i < 2 {
				eff = refiner.Refine(b, i, out)
			}
			merged := f.Merge(res.In[s], eff)
			if s.Head {
				visits[s]++
				if visits[s] > widenAfter {
					merged = f.Widen(res.In[s], merged)
				}
			}
			if f.Equal(merged, res.In[s]) {
				continue
			}
			res.In[s] = merged
			if !queued[s] {
				queued[s] = true
				queue = append(queue, s)
			}
		}
	}
	return res
}
