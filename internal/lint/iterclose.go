package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"qof/internal/lint/analysis"
	"qof/internal/lint/cfg"
)

// IterClose enforces the Iterator ownership contract of the streaming
// executor: a locally acquired Iterator must, on every path to return, be
// either Closed or handed off (returned, passed to a call that assumes
// ownership — wrapping constructors, Materialize — stored into a struct,
// or captured by a closure). A path on which the acquisition's paired
// error was non-nil is exempt: by the constructor contract the iterator is
// nil there.
//
// The analysis is a forward may-leak problem per acquired variable on the
// function's CFG, with edge refinement on "err != nil" and "it == nil"
// branches.
var IterClose = &analysis.Analyzer{
	Name: "iterclose",
	Doc: "reports locally acquired Iterators that are neither closed nor " +
		"handed off on some path to return",
	Requires: []*analysis.Analyzer{cfg.FactAnalyzer},
	Run:      runIterClose,
}

func runIterClose(pass *analysis.Pass) (any, error) {
	cfgs := pass.ResultOf[cfg.FactAnalyzer].(*cfg.PackageCFGs)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkIterClose(pass, cfgs, fd.Body)
			// Function literals own their acquisitions too.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkIterClose(pass, cfgs, lit.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// Per-variable lifecycle states. Merge is max, so a leak on any path
// dominates.
const (
	iterReleased = 0 // closed or ownership handed off
	iterNotAcq   = 1 // not acquired on this path (also the absent default)
	iterLive     = 2 // acquired and still owned
)

type iterState map[types.Object]int

type iterFlow struct {
	pass *analysis.Pass
	fn   *iterFuncInfo
}

// iterFuncInfo is the syntactic pre-pass over one body: acquisition sites
// and the error variables paired with them.
type iterFuncInfo struct {
	acq  map[types.Object]token.Pos // iterator var → first acquisition
	name map[types.Object]string    // iterator var → source name
	// errFor records every (iterator, acquisition position) an error var is
	// assigned alongside. Error vars are routinely reused across successive
	// acquisitions ("l, err := ...; it, err := ..."), so a nil test on err
	// speaks for the nearest acquisition above it, found by position.
	errFor map[types.Object][]iterPair
}

type iterPair struct {
	obj types.Object
	pos token.Pos
}

func (iterFlow) Bottom() iterState   { return nil }
func (iterFlow) Boundary() iterState { return iterState{} }

func (f iterFlow) Transfer(b *cfg.Block, s iterState) iterState {
	if s == nil {
		return nil
	}
	out := make(iterState, len(s))
	for k, v := range s {
		out[k] = v
	}
	for _, n := range b.Nodes {
		applyIterOps(f.pass, f.fn, n, out)
	}
	return out
}

func (iterFlow) Merge(a, b iterState) iterState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(iterState)
	get := func(m iterState, k types.Object) int {
		if v, ok := m[k]; ok {
			return v
		}
		return iterNotAcq
	}
	put := func(k types.Object, v int) {
		if v != iterNotAcq {
			out[k] = v
		}
	}
	for k := range a {
		va, vb := get(a, k), get(b, k)
		if vb > va {
			va = vb
		}
		put(k, va)
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			va, vb := iterNotAcq, get(b, k)
			if vb > va {
				va = vb
			}
			put(k, va)
		}
	}
	return out
}

func (iterFlow) Equal(a, b iterState) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (iterFlow) Widen(_, merged iterState) iterState { return merged }

// Refine narrows the state on branch edges: after "err != nil" the paired
// iterator is nil (constructor contract), and after "it == nil" the
// variable holds no iterator at all.
func (f iterFlow) Refine(from *cfg.Block, branch int, s iterState) iterState {
	if s == nil {
		return nil
	}
	cond, ok := from.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.NEQ && cond.Op != token.EQL) {
		return s
	}
	obj, viaErr := f.nilTestSubject(cond)
	if obj == nil {
		return s
	}
	// Which edge concludes "the iterator is nil"? Testing the iterator
	// itself: "it == nil" true, or "it != nil" false. Testing the paired
	// error inverts: "err != nil" true means the constructor failed and
	// returned a nil iterator.
	nilBranch := 1
	if (cond.Op == token.EQL) != viaErr {
		nilBranch = 0
	}
	if branch != nilBranch {
		return s
	}
	out := make(iterState, len(s))
	for k, v := range s {
		out[k] = v
	}
	delete(out, obj) // back to the notAcquired default
	return out
}

// nilTestSubject resolves the iterator variable a nil comparison speaks
// for: the compared variable itself if tracked, or (viaErr) the iterator
// paired with a compared error variable.
func (f iterFlow) nilTestSubject(cond *ast.BinaryExpr) (obj types.Object, viaErr bool) {
	expr := cond.X
	if id, ok := cond.X.(*ast.Ident); ok && id.Name == "nil" {
		expr = cond.Y
	} else if id, ok := cond.Y.(*ast.Ident); ok && id.Name == "nil" {
		expr = cond.X
	} else {
		return nil, false
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil, false
	}
	o := objOf(f.pass, id)
	if o == nil {
		return nil, false
	}
	if _, tracked := f.fn.acq[o]; tracked {
		return o, false
	}
	// The most recent acquisition paired with this error var above the test
	// is the one the test speaks for.
	var best types.Object
	bestPos := token.NoPos
	for _, p := range f.fn.errFor[o] {
		if p.pos < cond.Pos() && p.pos > bestPos {
			best, bestPos = p.obj, p.pos
		}
	}
	if best != nil {
		return best, true
	}
	return nil, false
}

// applyIterOps folds one block node into the state: acquisitions go live,
// Close releases, and any other use of the variable — argument, return
// value, store, send, closure capture — transfers ownership.
func applyIterOps(pass *analysis.Pass, fn *iterFuncInfo, node ast.Node, s iterState) {
	// receiverOf marks idents consumed as method-call receivers so the
	// general use rule below skips them; parents are visited before
	// children in Inspect, so the set fills in time.
	receivers := make(map[*ast.Ident]bool)
	assignees := make(map[*ast.Ident]bool)
	cfg.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				assignees[id] = true
				obj := objOf(pass, id)
				if obj == nil {
					continue
				}
				if _, tracked := fn.acq[obj]; tracked && acquiresIter(pass, n, i) {
					s[obj] = iterLive
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if obj := objOf(pass, id); obj != nil {
						if _, tracked := fn.acq[obj]; tracked {
							receivers[id] = true
							if sel.Sel.Name == "Close" {
								s[obj] = iterReleased
							}
						}
					}
				}
			}
		case *ast.FuncLit:
			// Captured variables escape into the closure.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := objOf(pass, id); obj != nil {
						if _, tracked := fn.acq[obj]; tracked && s[obj] == iterLive {
							s[obj] = iterReleased
						}
					}
				}
				return true
			})
			return false
		case *ast.Ident:
			if receivers[n] || assignees[n] {
				return true
			}
			obj := objOf(pass, n)
			if obj == nil {
				return true
			}
			if _, tracked := fn.acq[obj]; tracked && s[obj] == iterLive {
				s[obj] = iterReleased // used as a value: ownership handed off
			}
		}
		return true
	})
}

// acquiresIter reports whether position i of the assignment receives an
// Iterator from a call.
func acquiresIter(pass *analysis.Pass, as *ast.AssignStmt, i int) bool {
	var rhs ast.Expr
	var resultIdx int
	if len(as.Lhs) == len(as.Rhs) {
		rhs, resultIdx = as.Rhs[i], 0
	} else if len(as.Rhs) == 1 {
		rhs, resultIdx = as.Rhs[0], i
	} else {
		return false
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	t := pass.TypesInfo.Types[call].Type
	if tup, ok := t.(*types.Tuple); ok {
		if resultIdx >= tup.Len() {
			return false
		}
		t = tup.At(resultIdx).Type()
	} else if resultIdx != 0 {
		return false
	}
	return isIteratorType(t)
}

// isIteratorType reports whether t is a named interface "Iterator" with
// Next and Close methods — region.Iterator or a fixture's equivalent.
func isIteratorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Iterator" {
		return false
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	hasNext, hasClose := false, false
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Next":
			hasNext = true
		case "Close":
			hasClose = true
		}
	}
	return hasNext && hasClose
}

// collectIterInfo finds the acquisitions in one body: assignments whose
// RHS call returns an Iterator into a local variable, plus the error
// variable assigned alongside (for the nil-on-error refinement).
func collectIterInfo(pass *analysis.Pass, body *ast.BlockStmt) *iterFuncInfo {
	fn := &iterFuncInfo{
		acq:    make(map[types.Object]token.Pos),
		name:   make(map[types.Object]string),
		errFor: make(map[types.Object][]iterPair),
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals run their own analysis
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objOf(pass, id)
			if obj == nil || !acquiresIter(pass, as, i) {
				continue
			}
			if _, seen := fn.acq[obj]; !seen {
				fn.acq[obj] = id.Pos()
				fn.name[obj] = id.Name
			}
			// A sibling error result pairs with this acquisition.
			for j, other := range as.Lhs {
				oid, ok := other.(*ast.Ident)
				if !ok || j == i || oid.Name == "_" {
					continue
				}
				oobj := objOf(pass, oid)
				if oobj != nil && oobj.Type() != nil && oobj.Type().String() == "error" {
					fn.errFor[oobj] = append(fn.errFor[oobj], iterPair{obj: obj, pos: as.Pos()})
				}
			}
		}
		return true
	})
	return fn
}

func checkIterClose(pass *analysis.Pass, cfgs *cfg.PackageCFGs, body *ast.BlockStmt) {
	fn := collectIterInfo(pass, body)
	if len(fn.acq) == 0 {
		return
	}
	g := cfgs.Of(body)
	res := cfg.Solve[iterState](g, cfg.Forward, iterFlow{pass: pass, fn: fn})
	final := res.In[g.Exit]
	for obj, state := range final {
		if state == iterLive {
			pass.Reportf(fn.acq[obj],
				"iterator %s is not closed or handed off on every path to return", fn.name[obj])
		}
	}
}
