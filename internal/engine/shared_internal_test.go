package engine

// White-box tests of the shared-execution coordinator: batch formation is
// driven by hand (the window stretched far beyond the orchestration delays)
// so they are deterministic on any scheduler, including a single CPU where
// free-running queries rarely overlap.

import (
	"context"
	"testing"
	"time"

	"qof/internal/bibtex"
	"qof/internal/mpm"
	"qof/internal/text"
	"qof/internal/xsql"
)

const sharedScanQuery = `SELECT r FROM References r WHERE r.Title CONTAINS "Taylor"`

// TestBatchScanDeterministic forms a batch by hand: one query keeps the
// engine busy, a second becomes the leader of a stretched window, a third
// joins as a member — both leader and member must receive a scan that
// answers their word atom with exactly the index's postings.
func TestBatchScanDeterministic(t *testing.T) {
	g := bibtex.Grammar()
	doc := text.NewDocument("shared.bib", bibtex.SampleEntry)
	in, _, err := g.BuildInstance(doc, g.FullIndexSpec())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(bibtex.Catalog(), in)
	eng.EnableSharedExecution()
	sh := eng.shared
	sh.window = 100 * time.Millisecond

	plan, err := eng.cat.Compile(xsql.MustParse(sharedScanQuery), in)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Query 1 occupies the engine so later arrivals batch.
	scan1, release1 := sh.enter(ctx, plan)
	if scan1 != nil {
		t.Fatal("a query entering an idle engine must not receive a scan")
	}

	// Query 2 leads the batch; it blocks in enter for the window, so run it
	// aside and give it a moment to take the leader slot.
	type entered struct {
		scan    *mpm.Result
		release func()
	}
	leaderc := make(chan entered, 1)
	go func() {
		s, r := sh.enter(ctx, plan)
		leaderc <- entered{s, r}
	}()
	time.Sleep(10 * time.Millisecond)

	// Query 3 joins as a member and waits for the leader's scan.
	scan3, release3 := sh.enter(ctx, plan)
	lead := <-leaderc

	for name, scan := range map[string]*mpm.Result{"leader": lead.scan, "member": scan3} {
		if scan == nil {
			t.Fatalf("%s received no scan", name)
		}
		pts, ok := scan.Lookup("Taylor")
		if !ok {
			t.Fatalf("%s scan does not answer the plan's word atom", name)
		}
		want := in.Words().MatchPoints("Taylor")
		if !pts.Equal(want) {
			t.Errorf("%s scan postings = %v, want %v", name, pts.Regions(), want.Regions())
		}
	}
	release1()
	lead.release()
	release3()

	// The busy period ended: the engine is idle again and the next query
	// runs unbatched.
	if got := sh.inflight; got != 0 {
		t.Fatalf("inflight = %d after all releases, want 0", got)
	}
	scan4, release4 := sh.enter(ctx, plan)
	if scan4 != nil {
		t.Error("query after the busy period still received a scan")
	}
	release4()
}

// TestBatchLoneLeaderSkipsScan checks the members >= 2 gate: a leader whose
// window expires with no member does not pay for a scan.
func TestBatchLoneLeaderSkipsScan(t *testing.T) {
	g := bibtex.Grammar()
	doc := text.NewDocument("shared.bib", bibtex.SampleEntry)
	in, _, err := g.BuildInstance(doc, g.FullIndexSpec())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(bibtex.Catalog(), in)
	eng.EnableSharedExecution()
	sh := eng.shared
	sh.window = time.Millisecond

	plan, err := eng.cat.Compile(xsql.MustParse(sharedScanQuery), in)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, release1 := sh.enter(ctx, plan)
	scan2, release2 := sh.enter(ctx, plan) // leader; window expires alone
	if scan2 != nil {
		t.Error("lone leader received a scan")
	}
	release1()
	release2()
}

// TestBatchCanceledLeader checks that a leader whose context dies during
// the window releases the group without scanning and without hanging any
// member.
func TestBatchCanceledLeader(t *testing.T) {
	g := bibtex.Grammar()
	doc := text.NewDocument("shared.bib", bibtex.SampleEntry)
	in, _, err := g.BuildInstance(doc, g.FullIndexSpec())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(bibtex.Catalog(), in)
	eng.EnableSharedExecution()
	sh := eng.shared
	sh.window = time.Hour // only cancellation can end the window

	plan, err := eng.cat.Compile(xsql.MustParse(sharedScanQuery), in)
	if err != nil {
		t.Fatal(err)
	}
	_, release1 := sh.enter(context.Background(), plan)
	cctx, cancel := context.WithCancel(context.Background())
	leaderc := make(chan *mpm.Result, 1)
	go func() {
		s, r := sh.enter(cctx, plan)
		r()
		leaderc <- s
	}()
	time.Sleep(10 * time.Millisecond)
	memberc := make(chan *mpm.Result, 1)
	go func() {
		s, r := sh.enter(context.Background(), plan)
		r()
		memberc <- s
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case s := <-leaderc:
		if s != nil {
			t.Error("canceled leader still scanned")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled leader hung in enter")
	}
	select {
	case s := <-memberc:
		if s != nil {
			t.Error("member of a canceled batch received a scan")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("member hung after the leader was canceled")
	}
	release1()
}

// TestSharedExecutionAccessor covers the enabled/disabled report.
func TestSharedExecutionAccessor(t *testing.T) {
	g := bibtex.Grammar()
	doc := text.NewDocument("acc.bib", bibtex.SampleEntry)
	in, _, err := g.BuildInstance(doc, g.FullIndexSpec())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(bibtex.Catalog(), in)
	if eng.SharedExecution() {
		t.Error("shared execution reported enabled before EnableSharedExecution")
	}
	eng.EnableSharedExecution()
	if !eng.SharedExecution() {
		t.Error("shared execution reported disabled after EnableSharedExecution")
	}
}

// TestBatchDetach covers the panic-unwind path of lead: detaching the
// forming batch must let the next arrival start a fresh group, and
// detaching a group that is no longer current must be a no-op.
func TestBatchDetach(t *testing.T) {
	g := bibtex.Grammar()
	doc := text.NewDocument("detach.bib", bibtex.SampleEntry)
	in, _, err := g.BuildInstance(doc, g.FullIndexSpec())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(bibtex.Catalog(), in)
	eng.EnableSharedExecution()
	sh := eng.shared
	plan, err := eng.cat.Compile(xsql.MustParse(sharedScanQuery), in)
	if err != nil {
		t.Fatal(err)
	}
	_, release1 := sh.enter(context.Background(), plan)
	defer release1()
	grp, leader := sh.join(plan)
	if grp == nil || !leader {
		t.Fatalf("second arrival: group=%v leader=%v, want a fresh group led", grp, leader)
	}
	sh.detach(grp)
	if sh.cur != nil {
		t.Error("detach left the group current")
	}
	grp2, leader2 := sh.join(plan)
	if grp2 == nil || !leader2 || grp2 == grp {
		t.Errorf("arrival after detach: group=%p leader=%v, want a fresh led group (old %p)", grp2, leader2, grp)
	}
	sh.detach(grp) // stale detach must not clobber the new group
	if sh.cur != grp2 {
		t.Error("stale detach removed the new group")
	}
	sh.release()
	sh.release()
}

// TestParseTableAbort covers the leader-abort path: an aborted flight is
// removed from the table, waiters are released with ok=false, and the next
// join for the same key leads a fresh parse.
func TestParseTableAbort(t *testing.T) {
	pt := newParseTable()
	key := parseKey{epoch: 1, nt: "Reference", start: 0, end: 10}
	fl, leader := pt.join(key)
	if !leader {
		t.Fatal("first join must lead")
	}
	done := make(chan bool, 1)
	go func() {
		_, _, ok := fl.wait(context.Background())
		done <- ok
	}()
	pt.abort(key, fl)
	select {
	case ok := <-done:
		if ok {
			t.Error("waiter of an aborted flight got ok=true")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung on an aborted flight")
	}
	fl2, leader := pt.join(key)
	if !leader {
		t.Error("join after abort did not lead a fresh parse")
	}
	if fl2 == fl {
		t.Error("join after abort returned the aborted flight")
	}
}

// TestParseFlightWaitCancel covers the waiter-context-death branch.
func TestParseFlightWaitCancel(t *testing.T) {
	pt := newParseTable()
	fl, _ := pt.join(parseKey{epoch: 2, nt: "Reference", start: 0, end: 5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err, ok := fl.wait(ctx); ok || err == nil {
		t.Errorf("wait on a dead context: ok=%v err=%v, want ok=false with the context error", ok, err)
	}
}
