package engine_test

import (
	"strings"
	"testing"

	"qof/internal/algebra"
	"qof/internal/bibtex"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/region"
	"qof/internal/sgml"
	"qof/internal/testutil"
	"qof/internal/text"
	"qof/internal/xsql"
)

// editedReference is a replacement reference whose author is Chang.
const editedReference = `@INCOLLECTION{Edited01,
AUTHOR = "Y. F. Chang",
TITLE = "A Revised Entry",
BOOKTITLE = "Updates on Files",
YEAR = "1994",
EDITOR = "T. Milo",
PUBLISHER = "ACM Press",
PAGES = "1--12",
REFERRED = "",
KEYWORDS = "updates",
ABSTRACT = "an edited reference",
}`

func TestReplaceRegionMatchesRebuild(t *testing.T) {
	for _, spec := range []grammar.IndexSpec{
		{},
		{Names: []string{bibtex.NTReference, bibtex.NTKey, bibtex.NTLastName}},
		{
			Names:  []string{bibtex.NTReference},
			Scoped: []grammar.ScopedName{{Name: bibtex.NTLastName, Within: bibtex.NTAuthors}},
		},
	} {
		f := testutil.NewBibFixture(t, 20, spec, nil)
		refs := f.In.MustRegion(bibtex.NTReference)
		target := refs.At(7)

		doc2, in2, err := engine.ReplaceRegion(f.Cat, f.In, bibtex.NTReference, target, editedReference)
		if err != nil {
			t.Fatalf("spec %v: ReplaceRegion: %v", spec, err)
		}
		// Ground truth: rebuild from scratch over the edited document.
		rebuilt, _, err := f.Cat.Grammar.BuildInstance(doc2, spec)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		if got, want := in2.Names(), rebuilt.Names(); strings.Join(got, ",") != strings.Join(want, ",") {
			t.Fatalf("names: %v vs %v", got, want)
		}
		for _, name := range rebuilt.Names() {
			if !in2.MustRegion(name).Equal(rebuilt.MustRegion(name)) {
				t.Errorf("spec %v: spliced %q differs from rebuild:\n spliced %v\n rebuilt %v",
					spec, name, in2.MustRegion(name), rebuilt.MustRegion(name))
			}
			if in2.Scope(name) != rebuilt.Scope(name) {
				t.Errorf("scope %q: %q vs %q", name, in2.Scope(name), rebuilt.Scope(name))
			}
		}
		// Queries over the edited corpus see the new data.
		eng := engine.New(f.Cat, in2)
		res, err := eng.Execute(xsql.MustParse(`SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, s := range res.Strings {
			if s == "Edited01" {
				found = true
			}
		}
		if !found {
			t.Errorf("spec %v: edited reference not found: %v", spec, res.Strings)
		}
	}
}

func TestReplaceRegionNested(t *testing.T) {
	// Replace a deeply nested section: enclosing sections must stretch.
	content, _ := sgml.Generate(sgml.DefaultConfig(4, 2))
	cat := sgml.Catalog()
	doc := text.NewDocument("d.sgml", content)
	in, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := algebra.NewEvaluator(in).Eval(algebra.MustParse(`innermost(Section)`))
	if err != nil {
		t.Fatal(err)
	}
	target := inner.At(inner.Len() / 2)
	replacement := `<sec><t>patched</t><p>fresh needle text</p><p>and more words here</p></sec>`
	doc2, in2, err := engine.ReplaceRegion(cat, in, sgml.NTSection, target, replacement)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, _, err := cat.Grammar.BuildInstance(doc2, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range rebuilt.Names() {
		if !in2.MustRegion(name).Equal(rebuilt.MustRegion(name)) {
			t.Errorf("spliced %q differs from rebuild", name)
		}
	}
	// The patched section is findable.
	eng := engine.New(cat, in2)
	res, err := eng.Execute(xsql.MustParse(`SELECT s.Title FROM Sections s WHERE s.Title = "patched"`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strings) != 1 {
		t.Errorf("patched section: %v", res.Strings)
	}
}

func TestReplaceRegionErrors(t *testing.T) {
	f := testutil.NewBibFixture(t, 5, grammar.IndexSpec{}, nil)
	refs := f.In.MustRegion(bibtex.NTReference)
	// Replacement that does not parse.
	if _, _, err := engine.ReplaceRegion(f.Cat, f.In, bibtex.NTReference, refs.At(0), "garbage"); err == nil {
		t.Error("garbage replacement accepted")
	}
	// Not an indexed region.
	bogus := refs.At(0)
	bogus.Start++
	if _, _, err := engine.ReplaceRegion(f.Cat, f.In, bibtex.NTReference, bogus, editedReference); err == nil {
		t.Error("non-indexed region accepted")
	}
	// Unknown name.
	if _, _, err := engine.ReplaceRegion(f.Cat, f.In, "Nope", refs.At(0), editedReference); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestInsertAndDeleteMatchRebuild(t *testing.T) {
	f := testutil.NewBibFixture(t, 15, grammar.IndexSpec{}, nil)
	refs := f.In.MustRegion(bibtex.NTReference)

	// Insert a new reference after the 4th (newline-prefixed to keep the
	// layout tidy; whitespace is insignificant to the grammar).
	doc2, in2, err := engine.InsertAfter(f.Cat, f.In, bibtex.NTReference, refs.At(4), "\n"+editedReference)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, _, err := f.Cat.Grammar.BuildInstance(doc2, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range rebuilt.Names() {
		if !in2.MustRegion(name).Equal(rebuilt.MustRegion(name)) {
			t.Errorf("insert: spliced %q differs from rebuild", name)
		}
	}
	if got := in2.MustRegion(bibtex.NTReference).Len(); got != 16 {
		t.Fatalf("references after insert = %d", got)
	}
	// The new reference is queryable.
	res, err := engine.New(f.Cat, in2).Execute(xsql.MustParse(
		`SELECT r.Key FROM References r WHERE r.Key = "Edited01"`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Results != 1 {
		t.Fatalf("inserted reference not found")
	}

	// Delete the 8th reference from the updated corpus.
	refs2 := in2.MustRegion(bibtex.NTReference)
	target := refs2.At(8)
	doc3, in3, err := engine.DeleteRegion(f.Cat, in2, bibtex.NTReference, target)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt3, _, err := f.Cat.Grammar.BuildInstance(doc3, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range rebuilt3.Names() {
		if !in3.MustRegion(name).Equal(rebuilt3.MustRegion(name)) {
			t.Errorf("delete: spliced %q differs from rebuild", name)
		}
	}
	if got := in3.MustRegion(bibtex.NTReference).Len(); got != 15 {
		t.Fatalf("references after delete = %d", got)
	}
}

func TestInsertDeleteNestedSections(t *testing.T) {
	content, _ := sgml.Generate(sgml.DefaultConfig(3, 2))
	cat := sgml.Catalog()
	doc := text.NewDocument("d.sgml", content)
	in, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	secs := in.MustRegion(sgml.NTSection)
	mid := secs.At(secs.Len() / 2)
	// Insert a sibling section right after a nested one: ancestors stretch.
	doc2, in2, err := engine.InsertAfter(cat, in, sgml.NTSection, mid,
		`<sec><t>inserted</t><p>fresh words</p></sec>`)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, _, err := cat.Grammar.BuildInstance(doc2, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range rebuilt.Names() {
		if !in2.MustRegion(name).Equal(rebuilt.MustRegion(name)) {
			t.Fatalf("insert nested: %q differs from rebuild", name)
		}
	}
	// Delete it again: back to a rebuild of the shrunk doc.
	var inserted region.Region
	for _, r := range in2.MustRegion(sgml.NTSection).Regions() {
		if doc2.Slice(r.Start, r.End) == `<sec><t>inserted</t><p>fresh words</p></sec>` {
			inserted = r
		}
	}
	if inserted == (region.Region{}) {
		t.Fatal("inserted section not found")
	}
	doc3, in3, err := engine.DeleteRegion(cat, in2, sgml.NTSection, inserted)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt3, _, err := cat.Grammar.BuildInstance(doc3, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range rebuilt3.Names() {
		if !in3.MustRegion(name).Equal(rebuilt3.MustRegion(name)) {
			t.Fatalf("delete nested: %q differs from rebuild", name)
		}
	}
}

func TestInsertDeleteErrors(t *testing.T) {
	f := testutil.NewBibFixture(t, 3, grammar.IndexSpec{}, nil)
	refs := f.In.MustRegion(bibtex.NTReference)
	if _, _, err := engine.InsertAfter(f.Cat, f.In, bibtex.NTReference, refs.At(0), "garbage"); err == nil {
		t.Error("garbage insertion accepted")
	}
	if _, _, err := engine.InsertAfter(f.Cat, f.In, "Nope", refs.At(0), editedReference); err == nil {
		t.Error("unknown name accepted")
	}
	bogus := refs.At(0)
	bogus.End--
	if _, _, err := engine.DeleteRegion(f.Cat, f.In, bibtex.NTReference, bogus); err == nil {
		t.Error("non-indexed region delete accepted")
	}
	if _, _, err := engine.DeleteRegion(f.Cat, f.In, "Nope", refs.At(0)); err == nil {
		t.Error("unknown name delete accepted")
	}
}
