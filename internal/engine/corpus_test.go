package engine_test

import (
	"fmt"
	"testing"

	"qof/internal/bibtex"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/testutil"
	"qof/internal/text"
	"qof/internal/xsql"
)

func TestCorpusQuery(t *testing.T) {
	cat := bibtex.Catalog()
	corpus := engine.NewCorpus(cat)
	wantTotal := 0
	for i := 0; i < 4; i++ {
		doc, st := testutil.BibDoc(t, fmt.Sprintf("lib%d.bib", i), 25, func(cfg *bibtex.Config) {
			cfg.Seed = int64(100 + i)
			cfg.TargetAuthorShare = 0.2
		})
		if err := corpus.Add(doc, grammar.IndexSpec{}); err != nil {
			t.Fatal(err)
		}
		wantTotal += st.TargetAsAuthor
	}
	if corpus.Len() != 4 {
		t.Fatalf("Len = %d", corpus.Len())
	}
	res, err := corpus.Execute(xsql.MustParse(changAuthorQuery))
	if err != nil {
		t.Fatal(err)
	}
	if res.Results() != wantTotal {
		t.Fatalf("results = %d, want %d", res.Results(), wantTotal)
	}
	if len(res.Hits) == 0 || len(res.Hits) > 4 {
		t.Fatalf("hits = %d", len(res.Hits))
	}
	for _, h := range res.Hits {
		if h.Stats.Results != len(h.Objects) || h.Stats.Results == 0 {
			t.Errorf("file %s: results %d objects %d", h.File, h.Stats.Results, len(h.Objects))
		}
	}
	if !res.Stats.Exact {
		t.Error("full indexing should be exact")
	}
}

func TestCorpusProjection(t *testing.T) {
	cat := bibtex.Catalog()
	corpus := engine.NewCorpus(cat)
	for i := 0; i < 2; i++ {
		doc, _ := testutil.BibDoc(t, fmt.Sprintf("l%d.bib", i), 10, func(cfg *bibtex.Config) {
			cfg.Seed = int64(i)
		})
		if err := corpus.Add(doc, grammar.IndexSpec{}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := corpus.Execute(xsql.MustParse(`SELECT r.Key FROM References r`))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Projected || len(res.AllStrings()) != 20 {
		t.Fatalf("projection: %d strings", len(res.AllStrings()))
	}
}

// TestCorpusAddAll checks that the parallel bulk build produces a corpus
// identical to sequential Adds: same order, same per-file results.
func TestCorpusAddAll(t *testing.T) {
	cat := bibtex.Catalog()
	var docs []*text.Document
	seq := engine.NewCorpus(cat)
	for i := 0; i < 6; i++ {
		mut := func(cfg *bibtex.Config) {
			cfg.Seed = int64(i)
			cfg.TargetAuthorShare = 0.3
		}
		doc, _ := testutil.BibDoc(t, fmt.Sprintf("b%d.bib", i), 20, mut)
		docs = append(docs, doc)
		doc2, _ := testutil.BibDoc(t, fmt.Sprintf("b%d.bib", i), 20, mut)
		if err := seq.Add(doc2, grammar.IndexSpec{}); err != nil {
			t.Fatal(err)
		}
	}
	bulk := engine.NewCorpus(cat)
	bulk.Parallelism = 4
	if err := bulk.AddAll(docs, grammar.IndexSpec{}); err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != seq.Len() {
		t.Fatalf("Len = %d, want %d", bulk.Len(), seq.Len())
	}
	q := xsql.MustParse(changAuthorQuery)
	a, err := seq.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bulk.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Results() != b.Results() || len(a.Hits) != len(b.Hits) {
		t.Fatalf("sequential %d/%d vs bulk %d/%d",
			a.Results(), len(a.Hits), b.Results(), len(b.Hits))
	}
	for i := range a.Hits {
		if a.Hits[i].File != b.Hits[i].File || !a.Hits[i].Regions.Equal(b.Hits[i].Regions) {
			t.Errorf("hit %d differs (order or contents)", i)
		}
	}
}

// TestCorpusAddAllError checks that a bad document fails the whole bulk add
// and leaves the corpus unchanged.
func TestCorpusAddAllError(t *testing.T) {
	corpus := engine.NewCorpus(bibtex.Catalog())
	corpus.Parallelism = 4
	good, _ := testutil.BibDoc(t, "ok.bib", 5, nil)
	docs := []*text.Document{good, text.NewDocument("bad.bib", "not bibtex")}
	if err := corpus.AddAll(docs, grammar.IndexSpec{}); err == nil {
		t.Fatal("unparseable file accepted")
	}
	if corpus.Len() != 0 {
		t.Fatalf("failed AddAll left %d engines behind", corpus.Len())
	}
}

func TestCorpusAddError(t *testing.T) {
	corpus := engine.NewCorpus(bibtex.Catalog())
	err := corpus.Add(text.NewDocument("bad.bib", "not bibtex"), grammar.IndexSpec{})
	if err == nil {
		t.Fatal("unparseable file accepted")
	}
}

func TestCorpusParallel(t *testing.T) {
	cat := bibtex.Catalog()
	seq := engine.NewCorpus(cat)
	par := engine.NewCorpus(cat)
	par.Parallelism = 4
	for i := 0; i < 6; i++ {
		mut := func(cfg *bibtex.Config) {
			cfg.Seed = int64(i)
			cfg.TargetAuthorShare = 0.3
		}
		doc, _ := testutil.BibDoc(t, fmt.Sprintf("p%d.bib", i), 20, mut)
		doc2, _ := testutil.BibDoc(t, fmt.Sprintf("p%d.bib", i), 20, mut)
		if err := seq.Add(doc, grammar.IndexSpec{}); err != nil {
			t.Fatal(err)
		}
		if err := par.Add(doc2, grammar.IndexSpec{}); err != nil {
			t.Fatal(err)
		}
	}
	q := xsql.MustParse(changAuthorQuery)
	a, err := seq.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Results() != b.Results() || len(a.Hits) != len(b.Hits) {
		t.Fatalf("sequential %d/%d vs parallel %d/%d",
			a.Results(), len(a.Hits), b.Results(), len(b.Hits))
	}
	for i := range a.Hits {
		if a.Hits[i].File != b.Hits[i].File || !a.Hits[i].Regions.Equal(b.Hits[i].Regions) {
			t.Errorf("hit %d differs", i)
		}
	}
}
