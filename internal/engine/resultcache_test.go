package engine_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"qof/internal/bibtex"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/region"
	"qof/internal/testutil"
	"qof/internal/xsql"
)

const cacheProbeQuery = `SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`

// TestResultCacheLRU exercises the cache mechanics directly: bounded
// capacity, least-recently-used eviction, and refresh on Get and Put.
func TestResultCacheLRU(t *testing.T) {
	rc := engine.NewResultCache(2)
	set := func(start int) region.Set {
		return region.FromRegions([]region.Region{{Start: start, End: start + 1}})
	}
	rc.Put("a", set(0))
	rc.Put("b", set(1))
	if _, ok := rc.Get("a"); !ok { // refresh a: now b is oldest
		t.Fatal("a missing")
	}
	rc.Put("c", set(2)) // evicts b
	if _, ok := rc.Get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if _, ok := rc.Get("a"); !ok {
		t.Error("refreshed entry a was evicted")
	}
	rc.Put("a", set(9)) // refresh with new contents
	if s, ok := rc.Get("a"); !ok || s.At(0).Start != 9 {
		t.Errorf("Put did not refresh existing entry: %v %v", s, ok)
	}
	if rc.Len() != 2 {
		t.Errorf("Len = %d, want 2", rc.Len())
	}
	if hits, misses := rc.Counters(); hits == 0 || misses == 0 {
		t.Errorf("counters: hits=%d misses=%d", hits, misses)
	}
	if engine.NewResultCache(0).Len() != 0 {
		t.Error("zero-capacity cache should clamp, not panic")
	}
}

// TestResultCacheRepeatedQuery asserts that a repeated query's candidate set
// is served from the cross-query result cache and reported via Stats.
func TestResultCacheRepeatedQuery(t *testing.T) {
	f := testutil.NewBibFixture(t, 40, grammar.IndexSpec{}, nil)
	q := xsql.MustParse(cacheProbeQuery)
	first, err := f.Eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.ResultCached {
		t.Error("first execution cannot be a result-cache hit")
	}
	second, err := f.Eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.ResultCached || second.Stats.ResultCacheHits == 0 {
		t.Errorf("repeat execution should hit the result cache: %+v", second.Stats)
	}
	if !second.Regions.Equal(first.Regions) {
		t.Errorf("cached result diverged:\n got %v\nwant %v", second.Regions, first.Regions)
	}
	_, _, hits, misses := f.Eng.CacheCounters()
	if hits == 0 || misses == 0 {
		t.Errorf("counters should show both hits and misses: hits=%d misses=%d", hits, misses)
	}
}

// TestLimitStoppedStreamNeverCached: a streaming execution that LIMIT stops
// early drains only a prefix of the candidate stream, so it must never
// publish to the cross-query result cache — only a complete drain is a
// cacheable answer. A later full run still publishes, after which a limited
// run may legitimately read the cached set (and clamp it).
func TestLimitStoppedStreamNeverCached(t *testing.T) {
	f := testutil.NewBibFixture(t, 40, grammar.IndexSpec{}, nil)
	full := xsql.MustParse(cacheProbeQuery)
	probe, err := f.Eng.Execute(full)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Stats.Results < 2 {
		t.Fatalf("fixture too small: %d results, need >= 2 for LIMIT to truncate", probe.Stats.Results)
	}
	// Fresh engine so the probe's published result doesn't serve the
	// limited runs.
	f = testutil.NewBibFixture(t, 40, grammar.IndexSpec{}, nil)
	lq := *full
	lq.Limit = 1
	for run := 0; run < 3; run++ {
		res, err := f.Eng.Execute(&lq)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if res.Stats.Results != 1 {
			t.Fatalf("run %d: %d results, want 1", run, res.Stats.Results)
		}
		if res.Stats.ResultCached {
			t.Errorf("run %d: truncated stream served from the result cache", run)
		}
	}
	if _, _, hits, _ := f.Eng.CacheCounters(); hits != 0 {
		t.Errorf("result cache served %d hits after only LIMIT-stopped runs", hits)
	}
	// A complete drain publishes as usual...
	if _, err := f.Eng.Execute(full); err != nil {
		t.Fatal(err)
	}
	res, err := f.Eng.Execute(full)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.ResultCached {
		t.Error("full run after LIMIT runs did not publish to the result cache")
	}
	// ...and the warm cache legitimately serves a subsequent limited run,
	// still clamped to the limit.
	res, err = f.Eng.Execute(&lq)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.ResultCached || res.Stats.Results != 1 {
		t.Errorf("limited run on warm cache: cached=%v results=%d, want cached 1 row",
			res.Stats.ResultCached, res.Stats.Results)
	}
}

// TestResultCacheInvalidation drives every index-mutating operation and
// checks that the warm result cache is bypassed afterwards (the epoch in the
// key changed) yet results stay correct, and that the recomputed set is
// re-cached under the new epoch.
func TestResultCacheInvalidation(t *testing.T) {
	extra := region.FromRegions([]region.Region{{Start: 0, End: 5}})
	for _, tc := range []struct {
		name   string
		mutate func(t *testing.T, f *testutil.BibFixture)
	}{
		{"define", func(t *testing.T, f *testutil.BibFixture) {
			f.In.Define("Extra", extra)
		}},
		{"define-scoped", func(t *testing.T, f *testutil.BibFixture) {
			f.In.DefineScoped("ExtraScoped", bibtex.NTReference, extra)
		}},
		{"drop", func(t *testing.T, f *testutil.BibFixture) {
			f.In.Define("Doomed", extra)
			f.In.Drop("Doomed")
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := testutil.NewBibFixture(t, 40, grammar.IndexSpec{}, nil)
			q := xsql.MustParse(cacheProbeQuery)
			warm, err := f.Eng.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			if res, err := f.Eng.Execute(q); err != nil || !res.Stats.ResultCached {
				t.Fatalf("cache not warm before mutation: %+v err=%v", res.Stats, err)
			}
			tc.mutate(t, f)
			after, err := f.Eng.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			if after.Stats.ResultCached {
				t.Error("mutation did not invalidate the result cache")
			}
			if !after.Regions.Equal(warm.Regions) {
				t.Errorf("recomputed result diverged:\n got %v\nwant %v", after.Regions, warm.Regions)
			}
			again, err := f.Eng.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			if !again.Stats.ResultCached {
				t.Error("recomputed result was not re-cached under the new epoch")
			}
		})
	}
}

// TestResultCacheSplice checks the splice path: the engine over the spliced
// instance recomputes — its epoch is past the parent's, so no stale set can
// be served — and sees the edited data.
func TestResultCacheSplice(t *testing.T) {
	f := testutil.NewBibFixture(t, 20, grammar.IndexSpec{}, nil)
	q := xsql.MustParse(cacheProbeQuery)
	if _, err := f.Eng.Execute(q); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Eng.Execute(q); err != nil {
		t.Fatal(err)
	}
	refs := f.In.MustRegion(bibtex.NTReference)
	_, in2, err := engine.ReplaceRegion(f.Cat, f.In, bibtex.NTReference, refs.At(3), editedReference)
	if err != nil {
		t.Fatal(err)
	}
	if in2.Epoch() <= f.In.Epoch()-1 {
		t.Fatalf("spliced epoch %d not past parent %d", in2.Epoch(), f.In.Epoch())
	}
	eng2 := engine.New(f.Cat, in2)
	res, err := eng2.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ResultCached {
		t.Error("fresh engine over spliced instance cannot hit the result cache")
	}
	if res.Regions.Len() == 0 {
		t.Error("edited reference (author Chang) not visible after splice")
	}
}

// TestResultCacheDisabled checks the benchmarking knob: with the cache off,
// repeated queries recompute and report no cache activity.
func TestResultCacheDisabled(t *testing.T) {
	f := testutil.NewBibFixture(t, 40, grammar.IndexSpec{}, nil)
	f.Eng.DisableResultCache()
	q := xsql.MustParse(cacheProbeQuery)
	first, err := f.Eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := f.Eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.ResultCached || second.Stats.ResultCacheHits != 0 {
		t.Errorf("disabled cache still reported hits: %+v", second.Stats)
	}
	if !second.Regions.Equal(first.Regions) {
		t.Errorf("results diverged without cache:\n got %v\nwant %v", second.Regions, first.Regions)
	}
}

// TestResultCacheStress interleaves concurrent query execution with index
// updates to let the race detector examine the epoch counter and the cache's
// locking. Updates follow the supported concurrency pattern: Define/Drop and
// splices are applied to a not-yet-published instance, then an engine over
// it is swapped in atomically; in-flight queries finish against the old
// engine. Results are checked for errors only; correctness under mutation is
// covered by the invalidation tests above.
func TestResultCacheStress(t *testing.T) {
	f := testutil.NewBibFixture(t, 30, grammar.IndexSpec{}, nil)
	var cur atomic.Pointer[engine.Engine]
	cur.Store(f.Eng)

	queries := []*xsql.Query{
		xsql.MustParse(cacheProbeQuery),
		xsql.MustParse(`SELECT r.Key FROM References r WHERE r.Title CONTAINS "Systems"`),
		xsql.MustParse(`SELECT r FROM References r WHERE r.Year = "1991"`),
	}
	const readers = 4
	const iters = 40
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := cur.Load().Execute(queries[(w+i)%len(queries)]); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		extra := region.FromRegions([]region.Region{{Start: 0, End: 5}})
		for i := 0; i < 10; i++ {
			in := cur.Load().Instance()
			refs := in.MustRegion(bibtex.NTReference)
			_, in2, err := engine.ReplaceRegion(f.Cat, in, bibtex.NTReference, refs.At(i%refs.Len()), editedReference)
			if err != nil {
				errc <- err
				return
			}
			// Mutate the new instance before it becomes visible; readers
			// never observe an instance mid-mutation.
			in2.Define("Stress", extra)
			in2.Drop("Stress")
			cur.Store(engine.New(f.Cat, in2))
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
