package engine

import (
	"container/list"
	"sync"

	"qof/internal/faultinject"
	"qof/internal/region"
)

// resultCacheCap bounds the per-engine cross-query result cache. Entries
// are whole region sets, so the cap is larger than the plan cache's (more
// distinct subexpressions than query texts) but still small enough that a
// burst of one-off queries cannot pin unbounded memory.
const resultCacheCap = 256

// ResultCache is a bounded LRU cache of evaluated region sets keyed by
// (instance epoch, canonical expression string) — the evaluator builds the
// keys, embedding the epoch so Define/Drop/Splice invalidate by construction
// (stale entries age out of the LRU rather than being swept). It is the
// cross-query sibling of compile.PlanCache: the plan cache skips parsing
// and optimization for repeated query texts, this cache skips phase-1 index
// evaluation for repeated subexpressions, including ones shared between
// different queries.
//
// Region sets are immutable, so a cached set is shared by any number of
// concurrent executions; the cache itself is safe for concurrent use. It
// implements algebra.ResultCache.
type ResultCache struct {
	mu  sync.Mutex
	cap int                      // immutable after construction
	ll  *list.List               // guarded by mu; front = most recently used
	m   map[string]*list.Element // guarded by mu

	hits, misses int // guarded by mu
}

type resultEntry struct {
	key string
	set region.Set
}

// NewResultCache creates a cache holding at most capacity result sets;
// capacity < 1 is treated as 1.
func NewResultCache(capacity int) *ResultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ResultCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the cached set for the key, marking it most recently used.
// An injected resultcache.get fault degrades to a miss: the cache is an
// accelerator, so losing it must never fail a query.
func (rc *ResultCache) Get(key string) (region.Set, bool) {
	if err := faultinject.Hit(faultinject.ResultCacheGet); err != nil {
		return region.Empty, false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el, ok := rc.m[key]
	if !ok {
		rc.misses++
		return region.Empty, false
	}
	rc.hits++
	rc.ll.MoveToFront(el)
	return el.Value.(*resultEntry).set, true
}

// Put inserts (or refreshes) the set under the key, evicting the least
// recently used entry when the cache is full. An injected resultcache.put
// fault drops the entry — an incomplete or torn set is never published.
func (rc *ResultCache) Put(key string, s region.Set) {
	if err := faultinject.Hit(faultinject.ResultCachePut); err != nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.m[key]; ok {
		el.Value.(*resultEntry).set = s
		rc.ll.MoveToFront(el)
		return
	}
	rc.m[key] = rc.ll.PushFront(&resultEntry{key: key, set: s})
	for rc.ll.Len() > rc.cap {
		oldest := rc.ll.Back()
		rc.ll.Remove(oldest)
		delete(rc.m, oldest.Value.(*resultEntry).key)
	}
}

// Len reports the number of cached sets.
func (rc *ResultCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.ll.Len()
}

// Counters reports cumulative hit and miss counts, for throughput reports.
func (rc *ResultCache) Counters() (hits, misses int) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.hits, rc.misses
}
