package engine_test

import (
	"math/rand"
	"reflect"
	"testing"

	"qof/internal/bibtex"
	"qof/internal/db"
	"qof/internal/grammar"
	"qof/internal/scan"
	"qof/internal/testutil"
	"qof/internal/xsql"
)

const changAuthorQuery = `SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`

func TestPaperQueryFullIndexing(t *testing.T) {
	f := testutil.NewBibFixture(t, 60, grammar.IndexSpec{}, nil)
	res, err := f.Eng.Execute(xsql.MustParse(changAuthorQuery))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Results != f.St.TargetAsAuthor {
		t.Fatalf("results = %d, ground truth %d", res.Stats.Results, f.St.TargetAsAuthor)
	}
	if !res.Stats.Exact {
		t.Error("full indexing should be exact")
	}
	// Exact plans parse only the final results.
	if res.Stats.Parsed != res.Stats.Results {
		t.Errorf("parsed %d regions for %d results", res.Stats.Parsed, res.Stats.Results)
	}
	if res.Stats.ParsedBytes >= f.Doc.Len()/2 {
		t.Errorf("parsed %d of %d bytes; expected a small fraction", res.Stats.ParsedBytes, f.Doc.Len())
	}
	if res.Stats.FullScan {
		t.Error("full scan flagged")
	}
}

func TestPartialIndexingSuperset(t *testing.T) {
	// Section 6.1: {Reference, Key, Last_Name} cannot distinguish authors
	// from editors; candidates are the Chang-anywhere references, then
	// parsing filters.
	f := testutil.NewBibFixture(t, 60, grammar.IndexSpec{
		Names: []string{bibtex.NTReference, bibtex.NTKey, bibtex.NTLastName},
	}, nil)
	res, err := f.Eng.Execute(xsql.MustParse(changAuthorQuery))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Results != f.St.TargetAsAuthor {
		t.Fatalf("results = %d, ground truth %d", res.Stats.Results, f.St.TargetAsAuthor)
	}
	if res.Stats.Exact {
		t.Error("partial plan must not be exact")
	}
	if res.Stats.Candidates != f.St.TargetAsEither {
		t.Errorf("candidates = %d, want %d (Chang as author or editor)",
			res.Stats.Candidates, f.St.TargetAsEither)
	}
	if res.Stats.Parsed != res.Stats.Candidates {
		t.Errorf("parsed %d != candidates %d", res.Stats.Parsed, res.Stats.Candidates)
	}
	// Far less than the whole file was parsed.
	if res.Stats.ParsedBytes >= f.Doc.Len() {
		t.Error("parsed the whole file")
	}
}

func TestPartialIndexingExactPerSection63(t *testing.T) {
	f := testutil.NewBibFixture(t, 60, grammar.IndexSpec{
		Names: []string{bibtex.NTReference, bibtex.NTAuthors, bibtex.NTEditors, bibtex.NTLastName},
	}, nil)
	res, err := f.Eng.Execute(xsql.MustParse(changAuthorQuery))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Exact {
		t.Fatal("Section 6.3 conditions hold; plan must be exact")
	}
	if res.Stats.Results != f.St.TargetAsAuthor {
		t.Fatalf("results = %d, want %d", res.Stats.Results, f.St.TargetAsAuthor)
	}
}

func TestFullScanFallback(t *testing.T) {
	f := testutil.NewBibFixture(t, 30, grammar.IndexSpec{Names: []string{bibtex.NTKey}}, nil)
	res, err := f.Eng.Execute(xsql.MustParse(changAuthorQuery))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.FullScan {
		t.Error("expected full-scan fallback")
	}
	if res.Stats.Results != f.St.TargetAsAuthor {
		t.Fatalf("results = %d, want %d", res.Stats.Results, f.St.TargetAsAuthor)
	}
}

func TestIndexOnlyProjection(t *testing.T) {
	f := testutil.NewBibFixture(t, 40, grammar.IndexSpec{}, nil)
	const q = `SELECT r.Authors.Name.Last_Name FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`
	res, err := f.Eng.Execute(xsql.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.IndexOnly {
		t.Fatalf("expected index-only execution: %+v\n%s", res.Stats, res.Plan.Explain())
	}
	if res.Stats.Parsed != 0 || res.Stats.ParsedBytes != 0 {
		t.Errorf("index-only run parsed %d regions", res.Stats.Parsed)
	}
	// Cross-check against the full-scan baseline.
	base, err := scan.FullScan(f.Cat, f.Doc, xsql.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db.SortedUnique(res.Strings), db.SortedUnique(base.Strings)) {
		t.Errorf("projection mismatch: engine %v, baseline %v", res.Strings, base.Strings)
	}
}

// TestEngineMatchesFullScan is the central integration property: for every
// query and indexing choice, the engine's answers equal the full-scan
// baseline's.
func TestEngineMatchesFullScan(t *testing.T) {
	queries := []string{
		changAuthorQuery,
		`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = "Chang"`,
		`SELECT r FROM References r WHERE r.Key = "Key000003"`,
		`SELECT r FROM References r WHERE r.Year = "1982"`,
		`SELECT r FROM References r WHERE r.Keywords.Keyword = "taylor series"`,
		`SELECT r FROM References r WHERE r.Abstract CONTAINS "differentiation"`,
		`SELECT r FROM References r WHERE r CONTAINS "Chang"`,
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name STARTS "Cor"`,
		`SELECT r FROM References r WHERE r.Title STARTS "On the"`,
		`SELECT r FROM References r WHERE r.Title CONTAINS "Systems" AND r.Authors.Name.Last_Name = "Chang"`,
		`SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"`,
		`SELECT r FROM References r WHERE r.?X.Name.Last_Name = "Chang"`,
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang" AND r.Editors.Name.Last_Name = "Chang"`,
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang" OR r.Editors.Name.Last_Name = "Corliss"`,
		`SELECT r FROM References r WHERE NOT r.Authors.Name.Last_Name = "Chang"`,
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang" AND NOT r.Editors.Name.Last_Name = "Corliss"`,
		`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`,
		`SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"`, // trivial
		`SELECT r FROM References r`,
		`SELECT r.Authors.Name.Last_Name FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`,
		`SELECT r.Key FROM References r WHERE r.Editors.Name.Last_Name = "Chang"`,
		`SELECT r.*X.Last_Name FROM References r WHERE r.Year = "1975"`,
	}
	specs := map[string]grammar.IndexSpec{
		"full":    {},
		"partial": {Names: []string{bibtex.NTReference, bibtex.NTKey, bibtex.NTLastName}},
		"exact63": {Names: []string{bibtex.NTReference, bibtex.NTAuthors, bibtex.NTEditors, bibtex.NTLastName}},
		"minimal": {Names: []string{bibtex.NTReference}},
		"scoped": {
			Names:  []string{bibtex.NTReference, bibtex.NTAuthors},
			Scoped: []grammar.ScopedName{{Name: bibtex.NTLastName, Within: bibtex.NTAuthors}},
		},
	}
	for specName, spec := range specs {
		f := testutil.NewBibFixture(t, 40, spec, nil)
		for _, src := range queries {
			q := xsql.MustParse(src)
			res, err := f.Eng.Execute(q)
			if err != nil {
				t.Errorf("[%s] %s: engine error: %v", specName, src, err)
				continue
			}
			base, err := scan.FullScan(f.Cat, f.Doc, q)
			if err != nil {
				t.Errorf("[%s] %s: baseline error: %v", specName, src, err)
				continue
			}
			if res.Projected {
				got := db.SortedUnique(append([]string(nil), res.Strings...))
				want := db.SortedUnique(append([]string(nil), base.Strings...))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("[%s] %s:\n engine   %v\n baseline %v\n%s",
						specName, src, got, want, res.Plan.Explain())
				}
			} else if len(res.Objects) != len(base.Objects) {
				t.Errorf("[%s] %s: engine %d objects, baseline %d\n%s",
					specName, src, len(res.Objects), len(base.Objects), res.Plan.Explain())
			} else {
				for i := range res.Objects {
					if !db.Equal(res.Objects[i], base.Objects[i]) {
						t.Errorf("[%s] %s: object %d differs", specName, src, i)
						break
					}
				}
			}
		}
	}
}

// TestEngineMatchesFullScanRandomSpecs stresses the compiler's
// exactness/superset classification: random index subsets must never change
// query answers, only how much work phase 2 does.
func TestEngineMatchesFullScanRandomSpecs(t *testing.T) {
	all := bibtex.Grammar().FullIndexSpec().Names
	queries := []string{
		changAuthorQuery,
		`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = "Chang" OR r.Year = "1982"`,
		`SELECT r.Key FROM References r WHERE r.*X.Last_Name = "Chang"`,
		`SELECT r FROM References r WHERE r.Abstract CONTAINS "taylor"`,
		`SELECT r FROM References r WHERE NOT r.Keywords.Keyword CONTAINS "algorithm"`,
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		// Random subset of names; always give Reference a 50% chance so
		// both index-backed and full-scan paths are exercised.
		var names []string
		for _, n := range all {
			if rng.Intn(3) > 0 {
				names = append(names, n)
			}
		}
		spec := grammar.IndexSpec{Names: names}
		f := testutil.NewBibFixture(t, 25, spec, nil)
		for _, src := range queries {
			q := xsql.MustParse(src)
			res, err := f.Eng.Execute(q)
			if err != nil {
				t.Fatalf("trial %d %v: %s: %v", trial, names, src, err)
			}
			base, err := scan.FullScan(f.Cat, f.Doc, q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Projected {
				got := db.SortedUnique(append([]string(nil), res.Strings...))
				want := db.SortedUnique(append([]string(nil), base.Strings...))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("trial %d (%v): %s:\n engine %v\n base   %v\n%s",
						trial, names, src, got, want, res.Plan.Explain())
				}
			} else if len(res.Objects) != len(base.Objects) {
				t.Errorf("trial %d (%v): %s: %d vs %d\n%s",
					trial, names, src, len(res.Objects), len(base.Objects), res.Plan.Explain())
			}
		}
	}
}

func TestScopedIndexingAnswersScopedQuery(t *testing.T) {
	// Index Last_Name only inside Authors (Section 7): the author query
	// still gets index support, with Last_Name candidates already
	// restricted to author names.
	f := testutil.NewBibFixture(t, 60, grammar.IndexSpec{
		Names:  []string{bibtex.NTReference},
		Scoped: []grammar.ScopedName{{Name: bibtex.NTLastName, Within: bibtex.NTAuthors}},
	}, nil)
	res, err := f.Eng.Execute(xsql.MustParse(changAuthorQuery))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FullScan {
		t.Fatal("scoped index should support the query")
	}
	if res.Stats.Results != f.St.TargetAsAuthor {
		t.Fatalf("results = %d, want %d", res.Stats.Results, f.St.TargetAsAuthor)
	}
	// Candidate narrowing is tighter than the unscoped partial index:
	// editor-only Changs are not even candidates.
	if res.Stats.Candidates != f.St.TargetAsAuthor {
		t.Errorf("candidates = %d, want %d (scoped index excludes editor names)",
			res.Stats.Candidates, f.St.TargetAsAuthor)
	}
}

func TestSelfJoinQuery(t *testing.T) {
	f := testutil.NewBibFixture(t, 50, grammar.IndexSpec{}, nil)
	res, err := f.Eng.Execute(xsql.MustParse(
		`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Results != f.St.SelfEditedByAuth {
		t.Fatalf("results = %d, ground truth %d", res.Stats.Results, f.St.SelfEditedByAuth)
	}
}

// TestPaperFlagshipQuery approximates the paper's Section 2 showcase —
// "editors who never wrote a paper with any of the keywords occurring in a
// book that they edited" — via its positive core: pairs of references where
// an editor of r authored s and r, s share a keyword. The engine's
// nested-loop evaluation must agree with the full-scan baseline.
func TestPaperFlagshipQuery(t *testing.T) {
	f := testutil.NewBibFixture(t, 15, grammar.IndexSpec{}, func(c *bibtex.Config) {
		c.TargetAuthorShare = 0.4
		c.TargetEditorShare = 0.4
		c.MaxKeywords = 2
	})
	q := xsql.MustParse(`SELECT r FROM References r, References s WHERE ` +
		`r.Editors.Name.Last_Name = s.Authors.Name.Last_Name AND ` +
		`r.Keywords.Keyword = s.Keywords.Keyword`)
	res, err := f.Eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	base, err := scan.FullScan(f.Cat, f.Doc, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != len(base.Objects) {
		t.Fatalf("engine %d, baseline %d", len(res.Objects), len(base.Objects))
	}
	// The "never" form: books whose editors all avoid that pattern.
	qNeg := xsql.MustParse(`SELECT r FROM References r, References s WHERE ` +
		`NOT (r.Editors.Name.Last_Name = s.Authors.Name.Last_Name AND ` +
		`r.Keywords.Keyword = s.Keywords.Keyword) AND r.Key = r.Key`)
	resNeg, err := f.Eng.Execute(qNeg)
	if err != nil {
		t.Fatal(err)
	}
	baseNeg, err := scan.FullScan(f.Cat, f.Doc, qNeg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resNeg.Objects) != len(baseNeg.Objects) {
		t.Fatalf("negated: engine %d, baseline %d", len(resNeg.Objects), len(baseNeg.Objects))
	}
}

func TestMultiVarJoin(t *testing.T) {
	f := testutil.NewBibFixture(t, 12, grammar.IndexSpec{}, nil)
	// References whose key is referred to by some other reference.
	q := xsql.MustParse(
		`SELECT r FROM References r, References s WHERE s.Referred.RefKey = r.Key`)
	res, err := f.Eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	base, err := scan.FullScan(f.Cat, f.Doc, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != len(base.Objects) {
		t.Fatalf("engine %d, baseline %d", len(res.Objects), len(base.Objects))
	}
}

func TestTrivialQueryShortCircuits(t *testing.T) {
	f := testutil.NewBibFixture(t, 20, grammar.IndexSpec{}, nil)
	res, err := f.Eng.Execute(xsql.MustParse(
		`SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Results != 0 || res.Stats.Parsed != 0 || res.Stats.Candidates != 0 {
		t.Fatalf("trivial query did work: %+v", res.Stats)
	}
	if !res.Plan.Trivial {
		t.Error("plan not flagged trivial")
	}
}

func TestGrepBaseline(t *testing.T) {
	f := testutil.NewBibFixture(t, 40, grammar.IndexSpec{}, nil)
	g := scan.Grep(f.Doc, "Chang")
	if g.BytesScanned != f.Doc.Len() {
		t.Error("grep must scan the whole file")
	}
	// Grep counts occurrences (authors + editors), which is at least the
	// number of matching references and cannot equal the author-only
	// ground truth in this corpus.
	if g.Occurrences < f.St.TargetAsEither {
		t.Errorf("occurrences = %d < %d", g.Occurrences, f.St.TargetAsEither)
	}
	if got := scan.Grep(f.Doc, ""); got.Occurrences != 0 {
		t.Error("empty word")
	}
}

func TestEngineAccessors(t *testing.T) {
	f := testutil.NewBibFixture(t, 5, grammar.IndexSpec{}, nil)
	if f.Eng.Instance() != f.In || f.Eng.Catalog() != f.Cat {
		t.Error("accessors")
	}
}

func TestStartsQueries(t *testing.T) {
	f := testutil.NewBibFixture(t, 40, grammar.IndexSpec{}, nil)
	// Last_Name is faithful: STARTS on it is index-exact.
	res, err := f.Eng.Execute(xsql.MustParse(
		`SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name STARTS "Chan"`))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Exact {
		t.Errorf("STARTS on faithful leaf should be exact:\n%s", res.Plan.Explain())
	}
	if res.Stats.Results != f.St.TargetAsAuthor {
		t.Errorf("results = %d, want %d (only Chang starts with Chan here)",
			res.Stats.Results, f.St.TargetAsAuthor)
	}
	// Cross-check against the baseline, also for an unfaithful leaf.
	for _, src := range []string{
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name STARTS "Cha"`,
		`SELECT r FROM References r WHERE r.Title STARTS "On the"`,
		`SELECT r FROM References r WHERE r.Abstract STARTS "term"`,
	} {
		q := xsql.MustParse(src)
		res, err := f.Eng.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		base, err := scan.FullScan(f.Cat, f.Doc, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Objects) != len(base.Objects) {
			t.Errorf("%s: engine %d vs baseline %d\n%s",
				src, len(res.Objects), len(base.Objects), res.Plan.Explain())
		}
	}
}

func TestMultiVarSelectUnconstrained(t *testing.T) {
	// The selected variable has no own conditions: every r pairs with the
	// matching s objects; r qualifies iff some s exists.
	f := testutil.NewBibFixture(t, 10, grammar.IndexSpec{}, nil)
	q := xsql.MustParse(`SELECT r FROM References r, References s WHERE s.Authors.Name.Last_Name = "Chang"`)
	res, err := f.Eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	base, err := scan.FullScan(f.Cat, f.Doc, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != len(base.Objects) {
		t.Fatalf("engine %d vs baseline %d", len(res.Objects), len(base.Objects))
	}
	// Some Chang-author exists in this corpus, so every r qualifies.
	want := 0
	if f.St.TargetAsAuthor > 0 {
		want = 10
	}
	if len(res.Objects) != want {
		t.Fatalf("results = %d, want %d", len(res.Objects), want)
	}
}

func TestExecuteTimings(t *testing.T) {
	f := testutil.NewBibFixture(t, 30, grammar.IndexSpec{}, nil)
	res, err := f.Eng.Execute(xsql.MustParse(changAuthorQuery))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CompileTime <= 0 || res.Stats.Phase1Time <= 0 {
		t.Errorf("timings not recorded: %+v", res.Stats)
	}
	if res.Stats.Phase2Time < 0 {
		t.Errorf("negative phase-2 time: %v", res.Stats.Phase2Time)
	}
}
