package engine_test

// Cancellation, budget, and cache-safety tests. The -race stress tests
// cancel contexts while parallel phase-2 workers and AddAll builders are
// mid-flight, then prove the engine still serves correctly and no worker
// goroutines leaked.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"qof/internal/engine"
	"qof/internal/faultinject"
	"qof/internal/grammar"
	"qof/internal/qerr"
	"qof/internal/testutil"
	"qof/internal/xsql"
)

func TestExecuteContextPreCanceled(t *testing.T) {
	f := testutil.NewBibFixture(t, 40, grammar.IndexSpec{}, nil)
	q := xsql.MustParse(changAuthorQuery)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Eng.ExecuteContext(ctx, q, engine.Limits{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled execute: %v, want context.Canceled", err)
	}
	// The engine still serves correctly afterwards.
	res, err := f.Eng.Execute(q)
	if err != nil {
		t.Fatalf("execute after cancel: %v", err)
	}
	if res.Stats.Results == 0 {
		t.Fatal("execute after cancel returned no results")
	}
}

func TestExecuteContextExpiredDeadline(t *testing.T) {
	f := testutil.NewBibFixture(t, 40, grammar.IndexSpec{}, nil)
	q := xsql.MustParse(changAuthorQuery)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := f.Eng.ExecuteContext(ctx, q, engine.Limits{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: %v, want context.DeadlineExceeded", err)
	}
}

func TestExecuteContextRegionBudget(t *testing.T) {
	f := testutil.NewBibFixture(t, 60, grammar.IndexSpec{}, nil)
	q := xsql.MustParse(changAuthorQuery)
	_, err := f.Eng.ExecuteContext(context.Background(), q, engine.Limits{MaxRegions: 1})
	if !errors.Is(err, qerr.ErrBudgetExceeded) {
		t.Fatalf("MaxRegions=1: %v, want ErrBudgetExceeded", err)
	}
	res, err := f.Eng.ExecuteContext(context.Background(), q, engine.Limits{MaxRegions: 1 << 30})
	if err != nil {
		t.Fatalf("generous region budget: %v", err)
	}
	want, err := f.Eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regions.Equal(want.Regions) {
		t.Fatal("budgeted execution diverged from unbudgeted")
	}
}

// TestBudgetIgnoresWarmCache pins the budget/cache interaction: a result
// cache warmed by an unbudgeted run must not let a budgeted rerun dodge
// phase-1 accounting (budgeted queries bypass cache reads entirely).
func TestBudgetIgnoresWarmCache(t *testing.T) {
	f := testutil.NewBibFixture(t, 60, grammar.IndexSpec{}, nil)
	q := xsql.MustParse(changAuthorQuery)
	for i := 0; i < 2; i++ { // warm plan and result caches
		if _, err := f.Eng.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	res, err := f.Eng.Execute(q)
	if err != nil || !res.Stats.ResultCached {
		t.Fatalf("cache not warm (stats=%+v, err=%v)", res.Stats, err)
	}
	_, err = f.Eng.ExecuteContext(context.Background(), q, engine.Limits{MaxRegions: 1})
	if !errors.Is(err, qerr.ErrBudgetExceeded) {
		t.Fatalf("MaxRegions=1 on warm cache: %v, want ErrBudgetExceeded", err)
	}
	// The unbudgeted path still serves from cache afterwards.
	res, err = f.Eng.Execute(q)
	if err != nil || !res.Stats.ResultCached {
		t.Fatalf("cache lost after budgeted run (stats=%+v, err=%v)", res.Stats, err)
	}
}

func TestExecuteContextByteBudget(t *testing.T) {
	// A filtering query (non-exact plan) must parse candidates, so a
	// one-byte parse budget trips in phase 2.
	f := testutil.NewBibFixture(t, 60, grammar.IndexSpec{Names: []string{"Reference"}}, nil)
	q := xsql.MustParse(changAuthorQuery)
	_, err := f.Eng.ExecuteContext(context.Background(), q, engine.Limits{MaxEvalBytes: 1})
	if !errors.Is(err, qerr.ErrBudgetExceeded) {
		t.Fatalf("MaxEvalBytes=1: %v, want ErrBudgetExceeded", err)
	}
	if _, err := f.Eng.ExecuteContext(context.Background(), q, engine.Limits{MaxEvalBytes: 1 << 30}); err != nil {
		t.Fatalf("generous byte budget: %v", err)
	}
}

// TestKilledExecutionNeverCached is the cache-safety invariant (the
// result cache must not serve answers computed by an evaluation that was
// canceled, timed out, or budget-killed): after a killed execution, the
// next successful run must compute its candidates fresh — Stats.ResultCached
// would be true if the killed run had published anything.
func TestKilledExecutionNeverCached(t *testing.T) {
	q := xsql.MustParse(cacheProbeQuery)
	kills := map[string]func(eng *engine.Engine) error{
		"canceled": func(eng *engine.Engine) error {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := eng.ExecuteContext(ctx, q, engine.Limits{})
			return err
		},
		"timed-out": func(eng *engine.Engine) error {
			ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
			defer cancel()
			_, err := eng.ExecuteContext(ctx, q, engine.Limits{})
			return err
		},
		"budget-killed": func(eng *engine.Engine) error {
			_, err := eng.ExecuteContext(context.Background(), q, engine.Limits{MaxRegions: 1})
			return err
		},
	}
	for name, kill := range kills {
		f := testutil.NewBibFixture(t, 40, grammar.IndexSpec{}, nil)
		if err := kill(f.Eng); err == nil {
			t.Fatalf("%s: killed execution unexpectedly succeeded", name)
		}
		res, err := f.Eng.Execute(q)
		if err != nil {
			t.Fatalf("%s: execute after kill: %v", name, err)
		}
		if res.Stats.ResultCached {
			t.Errorf("%s: killed execution polluted the result cache", name)
		}
		_, _, hits, _ := f.Eng.CacheCounters()
		if hits != 0 {
			t.Errorf("%s: result cache served %d hits after only killed+first runs", name, hits)
		}
		// And the cache still works: the next repeat is a hit.
		res, err = f.Eng.Execute(q)
		if err != nil {
			t.Fatalf("%s: repeat after kill: %v", name, err)
		}
		if !res.Stats.ResultCached {
			t.Errorf("%s: cache did not recover after a killed execution", name)
		}
	}
}

// waitGoroutines polls until the goroutine count returns to within slack of
// base (workers park asynchronously after Wait), failing after a timeout.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, started with %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelMidParallelPhase2 hammers a parallel-phase-2 engine while
// another goroutine cancels each query's context mid-flight. Run under
// -race. Every outcome must be either a complete, correct result or a clean
// context.Canceled — and afterwards the engine must serve correctly with no
// leaked workers.
func TestCancelMidParallelPhase2(t *testing.T) {
	base := runtime.NumGoroutine()
	f := testutil.NewBibFixture(t, 400, grammar.IndexSpec{Names: []string{"Reference"}}, nil)
	f.Eng.Parallelism = 4
	q := xsql.MustParse(changAuthorQuery)
	want, err := f.Eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	// Hold every phase-2 candidate open briefly so the cancels land while
	// the worker pool is genuinely mid-flight rather than racing a query
	// that finishes in microseconds.
	if err := faultinject.Configure("engine.phase2=delay:500us"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	var canceledRuns, completedRuns int
	for round := 0; round < 30; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			// Stagger the cancel across rounds so it lands in
			// different execution phases.
			time.Sleep(time.Duration(round%10) * 100 * time.Microsecond)
			cancel()
		}(round)
		res, err := f.Eng.ExecuteContext(ctx, q, engine.Limits{})
		wg.Wait()
		cancel()
		switch {
		case err == nil:
			completedRuns++
			if !res.Regions.Equal(want.Regions) {
				t.Fatalf("round %d: completed run diverged", round)
			}
		case errors.Is(err, context.Canceled):
			canceledRuns++
		default:
			t.Fatalf("round %d: unexpected error: %v", round, err)
		}
	}
	t.Logf("canceled=%d completed=%d", canceledRuns, completedRuns)
	if canceledRuns == 0 {
		t.Error("no run was canceled mid-flight; the storm exercised nothing")
	}
	faultinject.Reset()
	// The engine is fully usable after the storm.
	res, err := f.Eng.Execute(q)
	if err != nil {
		t.Fatalf("execute after cancel storm: %v", err)
	}
	if !res.Regions.Equal(want.Regions) {
		t.Fatal("post-storm result diverged")
	}
	waitGoroutines(t, base)
}

// TestLimitStopsParallelStream: a LIMIT query on the parallel streaming
// pipeline stops the feeder and workers early — and when a cancel storm
// overlaps the early stop, every run still either completes with the exact
// document-order prefix or fails with a clean context.Canceled. No
// goroutines may survive the storm. Run under -race.
func TestLimitStopsParallelStream(t *testing.T) {
	base := runtime.NumGoroutine()
	f := testutil.NewBibFixture(t, 400, grammar.IndexSpec{Names: []string{"Reference"}}, nil)
	f.Eng.Parallelism = 4
	full, err := f.Eng.Execute(xsql.MustParse(changAuthorQuery))
	if err != nil {
		t.Fatal(err)
	}
	const limit = 3
	if full.Regions.Len() <= limit {
		t.Fatalf("fixture too small: %d results, need > %d", full.Regions.Len(), limit)
	}
	wantPrefix := full.Regions.Regions()[:limit]
	lq := xsql.MustParse(changAuthorQuery)
	lq.Limit = limit

	if err := faultinject.Configure("engine.phase2=delay:500us"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	var canceledRuns, completedRuns int
	for round := 0; round < 30; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			time.Sleep(time.Duration(round%10) * 100 * time.Microsecond)
			cancel()
		}(round)
		res, err := f.Eng.ExecuteContext(ctx, lq, engine.Limits{})
		wg.Wait()
		cancel()
		switch {
		case err == nil:
			completedRuns++
			got := res.Regions.Regions()
			if len(got) != limit {
				t.Fatalf("round %d: %d regions, want %d", round, len(got), limit)
			}
			for i, r := range got {
				if r != wantPrefix[i] {
					t.Fatalf("round %d: region %d = %v, want prefix %v", round, i, r, wantPrefix)
				}
			}
		case errors.Is(err, context.Canceled):
			canceledRuns++
		default:
			t.Fatalf("round %d: unexpected error: %v", round, err)
		}
	}
	t.Logf("canceled=%d completed=%d", canceledRuns, completedRuns)
	faultinject.Reset()
	// Early-stopped and canceled runs left the engine fully usable.
	res, err := f.Eng.Execute(xsql.MustParse(changAuthorQuery))
	if err != nil {
		t.Fatalf("execute after storm: %v", err)
	}
	if !res.Regions.Equal(full.Regions) {
		t.Fatal("post-storm result diverged")
	}
	waitGoroutines(t, base)
}

// TestCancelMidAddAll cancels a parallel corpus ingest mid-build. The
// corpus must either ingest everything or be left unchanged with every
// unbuilt file attributed in the joined error; no goroutines may leak.
func TestCancelMidAddAll(t *testing.T) {
	base := runtime.NumGoroutine()
	cat := testutil.NewBibFixture(t, 1, grammar.IndexSpec{}, nil).Cat
	docs := testutil.BibCorpusDocs(t, 12, 40)
	for round := 0; round < 10; round++ {
		c := engine.NewCorpus(cat)
		c.Parallelism = 4
		ctx, cancel := context.WithCancel(context.Background())
		go func(round int) {
			time.Sleep(time.Duration(round) * 200 * time.Microsecond)
			cancel()
		}(round)
		err := c.AddAllContext(ctx, docs, grammar.IndexSpec{})
		cancel()
		if err == nil {
			if c.Len() != len(docs) {
				t.Fatalf("round %d: nil error but %d/%d files added", round, c.Len(), len(docs))
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: unexpected error: %v", round, err)
		}
		if c.Len() != 0 {
			t.Fatalf("round %d: failed AddAll left %d engines in the corpus", round, c.Len())
		}
		// Attribution: the joined error names each unbuilt file.
		if !strings.Contains(err.Error(), ".bib") {
			t.Fatalf("round %d: error lacks file attribution: %v", round, err)
		}
	}
	waitGoroutines(t, base)
}

// TestCorpusExecuteContextCancel cancels corpus queries running across
// parallel per-file goroutines.
func TestCorpusExecuteContextCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	cat := testutil.NewBibFixture(t, 1, grammar.IndexSpec{}, nil).Cat
	c := engine.NewCorpus(cat)
	c.Parallelism = 4
	if err := c.AddAll(testutil.BibCorpusDocs(t, 8, 60), grammar.IndexSpec{}); err != nil {
		t.Fatal(err)
	}
	q := xsql.MustParse(changAuthorQuery)
	want, err := c.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 15; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func(round int) {
			time.Sleep(time.Duration(round) * 150 * time.Microsecond)
			cancel()
		}(round)
		res, err := c.ExecuteContext(ctx, q, engine.ExecOptions{})
		cancel()
		switch {
		case err == nil:
			if res.Stats.Results != want.Stats.Results {
				t.Fatalf("round %d: completed run diverged", round)
			}
		case errors.Is(err, context.Canceled):
		default:
			t.Fatalf("round %d: unexpected error: %v", round, err)
		}
	}
	// Still serving, and identically.
	res, err := c.Execute(q)
	if err != nil {
		t.Fatalf("corpus execute after cancel storm: %v", err)
	}
	if res.Stats.Results != want.Stats.Results {
		t.Fatal("post-storm corpus result diverged")
	}
	waitGoroutines(t, base)
}

// TestCorpusFileTimeoutPartial exercises graceful degradation: with an
// impossible per-file timeout and Partial set, every file fails with an
// attributed DeadlineExceeded and the call still returns a (fully degraded)
// result rather than an error.
func TestCorpusFileTimeoutPartial(t *testing.T) {
	cat := testutil.NewBibFixture(t, 1, grammar.IndexSpec{}, nil).Cat
	c := engine.NewCorpus(cat)
	if err := c.AddAll(testutil.BibCorpusDocs(t, 3, 30), grammar.IndexSpec{}); err != nil {
		t.Fatal(err)
	}
	q := xsql.MustParse(changAuthorQuery)
	res, err := c.ExecuteContext(context.Background(), q, engine.ExecOptions{
		FileTimeout: time.Nanosecond, // expires before any file's first poll
		Partial:     true,
	})
	if err != nil {
		t.Fatalf("partial mode returned error: %v", err)
	}
	if len(res.Degraded) != 3 {
		t.Fatalf("Degraded has %d entries, want 3", len(res.Degraded))
	}
	derr := res.DegradedError()
	if !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("DegradedError = %v, want DeadlineExceeded", derr)
	}
	for _, fail := range res.Degraded {
		if fail.File == "" || fail.Err == nil {
			t.Fatalf("degraded entry lacks attribution: %+v", fail)
		}
		if !strings.Contains(derr.Error(), fail.File) {
			t.Fatalf("DegradedError does not name %s: %v", fail.File, derr)
		}
	}
	// Without Partial the same failure is an error naming every file.
	_, err = c.ExecuteContext(context.Background(), q, engine.ExecOptions{FileTimeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("non-partial: %v, want DeadlineExceeded", err)
	}
	for _, d := range res.Degraded {
		if !strings.Contains(err.Error(), d.File) {
			t.Fatalf("joined error does not name %s: %v", d.File, err)
		}
	}
}

// TestCorpusExecuteAggregatesErrors proves Execute reports every failing
// file, not only the first (per-file budget violations here).
func TestCorpusExecuteAggregatesErrors(t *testing.T) {
	cat := testutil.NewBibFixture(t, 1, grammar.IndexSpec{}, nil).Cat
	c := engine.NewCorpus(cat)
	docs := testutil.BibCorpusDocs(t, 3, 30)
	if err := c.AddAll(docs, grammar.IndexSpec{}); err != nil {
		t.Fatal(err)
	}
	q := xsql.MustParse(changAuthorQuery)
	_, err := c.ExecuteContext(context.Background(), q, engine.ExecOptions{
		Limits: engine.Limits{MaxRegions: 1},
	})
	if !errors.Is(err, qerr.ErrBudgetExceeded) {
		t.Fatalf("budget corpus run: %v, want ErrBudgetExceeded", err)
	}
	for _, d := range docs {
		if !strings.Contains(err.Error(), d.Name()) {
			t.Fatalf("joined error missing file %s: %v", d.Name(), err)
		}
	}
}

var _ = fmt.Sprintf // keep fmt imported for debug edits
