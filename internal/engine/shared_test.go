package engine_test

// Shared-execution integration tests: a shared engine hammered by
// overlapping queries must produce byte-identical results and result-facing
// statistics to an unshared engine over the same instance. The white-box
// batching mechanics live in shared_internal_test.go.

import (
	"testing"

	"qof/internal/bibtex"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/testutil"
)

// TestEngineSharedMatchesUnshared computes every query's baseline on an
// unshared engine, then runs the concurrent stress against a shared engine
// over the same instance: snapshots (results + result-facing stats, with
// the observational shared counters masked) must match exactly.
func TestEngineSharedMatchesUnshared(t *testing.T) {
	specs := map[string]grammar.IndexSpec{
		"FullIndex": {},
		// Partial indexing forces phase-2 parsing, putting the parse-dedup
		// table in play alongside the batch scans and the CSE table.
		"PartialIndex": {Names: []string{bibtex.NTReference, bibtex.NTKey, bibtex.NTLastName}},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			f := testutil.NewBibFixture(t, 80, spec, nil)
			queries := parseAll(t, concurrentQueries)
			want := make([]string, len(queries))
			for i, q := range queries {
				res, err := f.Eng.Execute(q)
				if err != nil {
					t.Fatalf("unshared baseline %s: %v", q, err)
				}
				want[i] = snapshot(res)
			}

			shared := engine.New(f.Cat, f.In)
			shared.Parallelism = 4 // phase-2 workers give queries yield points to overlap on
			shared.EnableSharedExecution()
			runEngineConcurrent(t, shared, queries, 8, 4)

			// The concurrent run's own baseline already matched; cross-check
			// the warm shared engine against the unshared baselines too.
			for i, q := range queries {
				res, err := shared.Execute(q)
				if err != nil {
					t.Fatalf("shared %s: %v", q, err)
				}
				if got := snapshot(res); got != want[i] {
					t.Errorf("shared %s diverged from unshared:\n got %s\nwant %s", q, got, want[i])
				}
			}
		})
	}
}
