package engine

// Shared execution: when enabled, an engine batches its in-flight queries
// and eliminates redundant work across them through three mechanisms.
//
//  1. Batched multi-pattern scans: the word literals of every query in a
//     batch are compiled into one Aho-Corasick automaton (internal/mpm)
//     whose single pass over the document answers all of their Word-leaf
//     postings lookups. The batching window is work-conserving: a query
//     arriving at an idle engine runs immediately and never waits.
//  2. Cross-query CSE: cache-worthy subexpressions join a singleflight
//     in-flight table (algebra.Inflight) keyed on the epoch-prefixed
//     canonical expression, so identical subexpressions of concurrent
//     queries evaluate once. The streaming executor additionally shares
//     whole candidate sets at the engine level.
//  3. Phase-2 parse dedup: a candidate region requested by several
//     concurrent queries is parsed once per epoch per busy period; the
//     parse table drains when the engine goes idle.
//
// None of the mechanisms changes any query's results or its result-facing
// statistics (Candidates, Parsed, ParsedBytes, Results): waiters receive
// complete sets, every query still charges its own budgets, and limited
// queries bypass the candidate-set sharing entirely. The differential
// harness proves shared and unshared execution byte-identical.

import (
	"context"
	"sync"
	"time"

	"qof/internal/algebra"
	"qof/internal/compile"
	"qof/internal/db"
	"qof/internal/mpm"
	"qof/internal/region"
)

// batchWindow is how long a batch leader waits for more queries to join
// before scanning: long enough to collect a stampede's worth of word atoms,
// far below any query's execution time. Only queries that arrive at an
// already-busy engine ever wait it.
const batchWindow = 200 * time.Microsecond

// parseTableCap bounds the retained parse table; crossing it drops the
// table rather than evicting, keeping the hot path lock-cheap.
const parseTableCap = 8192

// sharedState is the per-engine shared-execution coordinator.
type sharedState struct {
	eng    *Engine
	cse    *algebra.Inflight
	parses *parseTable
	window time.Duration

	mu       sync.Mutex
	inflight int         // guarded by mu
	cur      *batchGroup // guarded by mu
}

// batchGroup is one forming batch. words and members are written under the
// owning sharedState's mutex while the group is current; scan is written
// only by the leader before ready closes and read by members only after.
type batchGroup struct {
	ready   chan struct{}
	words   map[string]bool
	members int
	scan    *mpm.Result
}

func newSharedState(e *Engine) *sharedState {
	return &sharedState{
		eng:    e,
		cse:    algebra.NewInflight(),
		parses: newParseTable(),
		window: batchWindow,
	}
}

// EnableSharedExecution turns on cross-query work sharing for this engine.
// It is configuration, like Parallelism: call it before the engine starts
// serving.
func (e *Engine) EnableSharedExecution() {
	e.shared = newSharedState(e)
	e.ev.Shared = e.shared.cse
}

// SharedExecution reports whether shared execution is enabled.
func (e *Engine) SharedExecution() bool { return e.shared != nil }

// enter registers one query execution with the shared-execution layer and
// returns the batch scan result to evaluate against (nil when the query
// runs unbatched) plus the release to defer. A query entering an idle
// engine proceeds immediately; a query entering a busy engine joins the
// forming batch, and the first joiner leads it: it waits the batching
// window, compiles every member's word atoms into one automaton, scans, and
// releases the group.
func (sh *sharedState) enter(ctx context.Context, plan *compile.Plan) (*mpm.Result, func()) {
	g, leader := sh.join(plan)
	if g == nil {
		// Work-conserving: a lone query never waits and never scans —
		// probing the index directly is strictly cheaper for one query.
		return nil, sh.release
	}
	if leader {
		// The caller has not registered release yet, so a panic out of the
		// scan (an injected fault) must give the slot back on the way up or
		// the engine would count a phantom in-flight query forever.
		led := false
		defer func() {
			if !led {
				sh.release()
			}
		}()
		sh.lead(ctx, g)
		led = true
		return g.scan, sh.release
	}
	select {
	case <-g.ready:
		return g.scan, sh.release
	case <-ctx.Done():
		// A canceled member leaves without waiting for the scan; its own
		// execution will observe ctx at the next poll point.
		return nil, sh.release
	}
}

// join registers one query execution and adds its word atoms to the
// forming batch. It returns nil when the engine was idle (the query runs
// unbatched); otherwise it returns the group and whether the caller leads
// it (the first joiner of a new group does).
func (sh *sharedState) join(plan *compile.Plan) (*batchGroup, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.inflight++
	if sh.inflight == 1 {
		return nil, false
	}
	g := sh.cur
	leader := g == nil
	if leader {
		g = &batchGroup{ready: make(chan struct{}), words: make(map[string]bool)}
		sh.cur = g
	}
	g.members++
	planWords(plan, g.words)
	return g, leader
}

// lead runs the leader side of one batch: wait the window, snapshot the
// group (detaching it so later arrivals form a new batch), scan, publish,
// release. The group is always released — also when the scan panics — so
// members can never hang on it.
func (sh *sharedState) lead(ctx context.Context, g *batchGroup) {
	released := false
	defer func() {
		if !released {
			sh.detach(g)
			close(g.ready)
		}
	}()
	t := time.NewTimer(sh.window)
	select {
	case <-t.C:
	case <-ctx.Done():
		t.Stop()
	}
	sh.mu.Lock()
	if sh.cur == g {
		sh.cur = nil
	}
	members := g.members
	words := make([]string, 0, len(g.words))
	for w := range g.words {
		words = append(words, w)
	}
	sh.mu.Unlock()
	if members >= 2 && ctx.Err() == nil {
		if a := mpm.Compile(words); a != nil {
			r, err := a.Scan(sh.eng.in.Document().Content())
			if err == nil {
				// An injected scan fault leaves r nil and the whole batch
				// degrades to per-query index probes.
				g.scan = r
			}
		}
	}
	released = true
	close(g.ready)
}

// detach removes g as the forming batch (panic-unwind path of lead).
func (sh *sharedState) detach(g *batchGroup) {
	sh.mu.Lock()
	if sh.cur == g {
		sh.cur = nil
	}
	sh.mu.Unlock()
}

// release retires one query execution; the last one out drops the retained
// parse table, ending the busy period the dedup entries were scoped to.
func (sh *sharedState) release() {
	sh.mu.Lock()
	sh.inflight--
	idle := sh.inflight == 0
	sh.mu.Unlock()
	if idle {
		sh.parses.drop()
	}
}

// planWords collects the σ_w word literals of every candidate, projection
// and fast-join expression in the plan — the atoms the batch scan answers.
func planWords(plan *compile.Plan, into map[string]bool) {
	collect := func(x algebra.Expr) {
		if x == nil {
			return
		}
		algebra.Walk(x, func(e algebra.Expr) {
			switch n := e.(type) {
			case algebra.Word:
				if mpm.Scannable(n.W) {
					into[n.W] = true
				}
			case algebra.Select:
				// σ_contains probes the same postings a Word leaf does; the
				// other select modes filter region content, not postings.
				if n.Mode == algebra.SelContains && mpm.Scannable(n.W) {
					into[n.W] = true
				}
			}
		})
	}
	for i := range plan.Vars {
		collect(plan.Vars[i].Candidates)
	}
	if plan.Projection.Chain != nil {
		collect(plan.Projection.Chain.Expr())
	}
	if plan.JoinFast != nil {
		collect(plan.JoinFast.L.Expr())
		collect(plan.JoinFast.R.Expr())
	}
}

// parseKey identifies one phase-2 parse: epoch-prefixed like the result
// cache, so index mutations orphan every entry.
type parseKey struct {
	epoch      uint64
	nt         string
	start, end int
}

// parseFlight is one in-flight or retained parse. val and err are written
// exactly once, before done closes; readers wait on done first.
type parseFlight struct {
	done    chan struct{}
	val     db.Value
	err     error
	aborted bool
}

// parseTable is the singleflight-plus-retention table behind phase-2 parse
// dedup: the first query to need a (nonterminal, region) parse performs it,
// concurrent and later queries of the same busy period share the value.
type parseTable struct {
	mu sync.Mutex
	m  map[parseKey]*parseFlight // guarded by mu
}

func newParseTable() *parseTable {
	return &parseTable{m: make(map[parseKey]*parseFlight)}
}

// join returns the flight for key and whether the caller leads it. The
// table is dropped rather than evicted when it outgrows parseTableCap.
func (pt *parseTable) join(key parseKey) (*parseFlight, bool) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if fl, ok := pt.m[key]; ok {
		return fl, false
	}
	if len(pt.m) >= parseTableCap {
		pt.m = make(map[parseKey]*parseFlight)
	}
	fl := &parseFlight{done: make(chan struct{})}
	pt.m[key] = fl
	return fl, true
}

// complete publishes the leader's parse. The entry stays in the table —
// that retention is what dedups later, non-overlapping queries of the same
// busy period; parse results (including errors) are deterministic per key.
func (pt *parseTable) complete(fl *parseFlight, val db.Value, err error) {
	fl.val, fl.err = val, err
	close(fl.done)
}

// abort completes the flight as failed-by-leader and removes it so later
// queries parse fresh; waiters fall back to their own parse.
func (pt *parseTable) abort(key parseKey, fl *parseFlight) {
	pt.mu.Lock()
	if pt.m[key] == fl {
		delete(pt.m, key)
	}
	pt.mu.Unlock()
	fl.aborted = true
	close(fl.done)
}

// wait blocks for the flight or the caller's context. ok is false when the
// caller must parse for itself (leader aborted or context died, in which
// case err carries the context error).
func (fl *parseFlight) wait(ctx context.Context) (db.Value, error, bool) {
	if ctx.Done() == nil {
		<-fl.done
	} else {
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, ctx.Err(), false
		}
	}
	if fl.aborted {
		return nil, nil, false
	}
	return fl.val, fl.err, true
}

// drop clears the retained table at the end of a busy period.
func (pt *parseTable) drop() {
	pt.mu.Lock()
	pt.m = make(map[parseKey]*parseFlight)
	pt.mu.Unlock()
}

// parse is the shared phase-2 parse path: singleflight plus busy-period
// retention. Every caller has already polled its context and charged its
// own byte budget, so dedup never changes budget or cancellation behavior.
func (sh *sharedState) parse(es *execEnv, nt string, r region.Region) (db.Value, error) {
	key := parseKey{epoch: sh.eng.in.Epoch(), nt: nt, start: r.Start, end: r.End}
	fl, leader := sh.parses.join(key)
	if leader {
		completed := false
		defer func() {
			if !completed {
				sh.parses.abort(key, fl)
			}
		}()
		val, err := sh.eng.parseValueRaw(nt, r)
		completed = true
		sh.parses.complete(fl, val, err)
		return val, err
	}
	val, err, ok := fl.wait(es.ctx)
	if !ok {
		if err != nil {
			return nil, err
		}
		// Leader aborted (panic unwind): parse solo rather than re-joining,
		// parses are bounded and deterministic.
		return sh.eng.parseValueRaw(nt, r)
	}
	es.parseDedups.Add(1)
	return val, err
}
