package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qof/internal/compile"
	"qof/internal/db"
	"qof/internal/faultinject"
	"qof/internal/grammar"
	"qof/internal/qerr"
	"qof/internal/region"
	"qof/internal/text"
	"qof/internal/xsql"
)

// Corpus evaluates queries over many files sharing one structuring schema —
// the paper's actual setting ("a multitude of bibliographic files ... all
// of the members may share access"). Each file carries its own index
// instance; a query runs against every file and the results are merged,
// so only the candidate regions of each file are ever parsed.
type Corpus struct {
	cat     *compile.Catalog
	engines []*Engine

	// Parallelism bounds the number of files queried concurrently: 0 and
	// 1 evaluate sequentially, N > 1 runs at most N files at a time.
	// Engines are independent per file, so parallel execution needs no
	// locking. Set it before the corpus starts serving; Execute itself is
	// safe to call from many goroutines at once.
	Parallelism int

	// Materializing selects the materializing reference executor for every
	// file added afterwards (see Engine.Materializing). Set it before
	// adding files.
	Materializing bool

	// Shared enables shared execution (batched scans, cross-query CSE,
	// phase-2 parse dedup; see shared.go) on every file added afterwards.
	// Set it before adding files.
	Shared bool
}

// NewCorpus creates an empty corpus over the catalog.
func NewCorpus(cat *compile.Catalog) *Corpus {
	return &Corpus{cat: cat}
}

// Add indexes a document per spec and adds it to the corpus.
func (c *Corpus) Add(doc *text.Document, spec grammar.IndexSpec) error {
	in, _, err := c.cat.Grammar.BuildInstance(doc, spec)
	if err != nil {
		return fmt.Errorf("engine: indexing %s: %w", doc.Name(), err)
	}
	eng := New(c.cat, in)
	eng.Materializing = c.Materializing
	if c.Shared {
		eng.EnableSharedExecution()
	}
	c.engines = append(c.engines, eng)
	return nil
}

// AddAll indexes the documents and adds them to the corpus in the given
// order. When Parallelism is set, the per-document index builds (parse,
// region extraction, word index, statistics) run concurrently — they are
// independent per file — but the corpus always ends up identical to
// sequential Adds: engines are appended in document order, and on error the
// corpus is left unchanged. Every failing file is reported, not just the
// first: the returned error joins one attributed error per failed document
// (errors.Is still matches each underlying cause).
func (c *Corpus) AddAll(docs []*text.Document, spec grammar.IndexSpec) error {
	return c.AddAllContext(context.Background(), docs, spec)
}

// AddAllContext is AddAll under a context. Cancellation is checked before
// every document build (and inside each build, at its stage boundaries), so
// a canceled bulk ingest stops promptly; the corpus is left unchanged
// whenever any document fails. A panic while indexing one document is
// isolated and reported as that document's error, wrapping qerr.ErrInternal.
func (c *Corpus) AddAllContext(ctx context.Context, docs []*text.Document, spec grammar.IndexSpec) error {
	engines := make([]*Engine, len(docs))
	errs := make([]error, len(docs))
	build := func(i int) {
		defer func() {
			if p := recover(); p != nil {
				errs[i] = fmt.Errorf("engine: indexing %s: panic: %v: %w",
					docs[i].Name(), p, qerr.ErrInternal)
			}
		}()
		in, _, err := c.cat.Grammar.BuildInstanceContext(ctx, docs[i], spec)
		if err != nil {
			errs[i] = fmt.Errorf("engine: indexing %s: %w", docs[i].Name(), err)
			return
		}
		engines[i] = New(c.cat, in)
		engines[i].Materializing = c.Materializing
		if c.Shared {
			engines[i].EnableSharedExecution()
		}
	}
	if c.Parallelism > 1 {
		sem := make(chan struct{}, c.Parallelism)
		var wg sync.WaitGroup
		for i := range docs {
			if err := ctx.Err(); err != nil {
				errs[i] = fmt.Errorf("engine: indexing %s: %w", docs[i].Name(), err)
				continue
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				build(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range docs {
			if err := ctx.Err(); err != nil {
				errs[i] = fmt.Errorf("engine: indexing %s: %w", docs[i].Name(), err)
				continue
			}
			build(i)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	c.engines = append(c.engines, engines...)
	return nil
}

// Len reports the number of files in the corpus.
func (c *Corpus) Len() int { return len(c.engines) }

// FileHit is one file's contribution to a corpus result.
type FileHit struct {
	File    string
	Regions region.Set
	Objects []db.Value
	Strings []string
	Stats   Stats
}

// FileFailure attributes one file's failure within a degraded corpus
// result.
type FileFailure struct {
	File string
	Err  error
}

// CorpusResult is the merged outcome of a corpus query.
type CorpusResult struct {
	Hits      []FileHit // files with at least one result, in corpus order
	Projected bool
	Stats     Stats // aggregated over every file

	// Degraded lists the files whose evaluation failed when the query ran
	// with ExecOptions.Partial; Hits and Stats then cover only the files
	// that succeeded. Empty means the result is complete.
	Degraded []FileFailure
}

// DegradedError joins the per-file failures of a degraded result into one
// error with file attribution, or nil when the result is complete.
// errors.Is matches each underlying cause (e.g. context.DeadlineExceeded).
func (r *CorpusResult) DegradedError() error {
	if len(r.Degraded) == 0 {
		return nil
	}
	errs := make([]error, len(r.Degraded))
	for i, f := range r.Degraded {
		errs[i] = fmt.Errorf("%s: %w", f.File, f.Err)
	}
	return errors.Join(errs...)
}

// Results reports the total number of results across files.
func (r *CorpusResult) Results() int { return r.Stats.Results }

// AllStrings concatenates projected strings across files.
func (r *CorpusResult) AllStrings() []string {
	var out []string
	for _, h := range r.Hits {
		out = append(out, h.Strings...)
	}
	return out
}

// ExecOptions configure a corpus execution beyond the query itself. The
// zero value means no budgets, no per-file timeout, all-or-nothing error
// reporting.
type ExecOptions struct {
	// Limits applies per-file resource budgets (each file's engine gets
	// its own budget, since files are evaluated independently).
	Limits Limits
	// FileTimeout bounds each file's evaluation separately; a file that
	// exceeds it fails with context.DeadlineExceeded while the others run
	// to completion. 0 means no per-file deadline.
	FileTimeout time.Duration
	// Partial degrades instead of failing: files whose evaluation errors
	// are recorded in CorpusResult.Degraded with attribution and the
	// remaining files are merged normally. Without Partial, any failure
	// makes the whole Execute fail (reporting every failed file, joined).
	Partial bool
	// Files restricts the execution to the named files, preserving corpus
	// order; names not present in the corpus are ignored. Nil means every
	// file. The serving layer uses this to run one replica group's files
	// against a shard that also holds copies of other groups' files.
	Files []string
}

// Execute runs the query against every file (in parallel when Parallelism
// is set), merging the per-file results in corpus order. Queries with
// several range variables range over objects of the same file (cross-file
// joins are out of scope, as in the paper).
func (c *Corpus) Execute(q *xsql.Query) (*CorpusResult, error) {
	return c.ExecuteContext(context.Background(), q, ExecOptions{})
}

// ExecuteContext is Execute under a context and per-file execution options.
// Canceling ctx stops every file's evaluation at its next poll point. A
// panic while evaluating one file is isolated to that file's error
// (wrapping qerr.ErrInternal); the corpus and its engines stay usable. When
// any file fails without opts.Partial, the returned error joins one
// attributed error per failed file.
func (c *Corpus) ExecuteContext(ctx context.Context, q *xsql.Query, opts ExecOptions) (*CorpusResult, error) {
	engines := c.engines
	if opts.Files != nil {
		want := make(map[string]bool, len(opts.Files))
		for _, f := range opts.Files {
			want[f] = true
		}
		sel := make([]*Engine, 0, len(opts.Files))
		for _, eng := range c.engines {
			if want[eng.Instance().Document().Name()] {
				sel = append(sel, eng)
			}
		}
		engines = sel
	}
	results := make([]*Result, len(engines))
	errs := make([]error, len(engines))
	run := func(eng *Engine) (res *Result, err error) {
		defer func() {
			if p := recover(); p != nil {
				res, err = nil, fmt.Errorf("panic: %v: %w", p, qerr.ErrInternal)
			}
		}()
		if err := faultinject.Hit(faultinject.CorpusFile); err != nil {
			return nil, err
		}
		fctx := ctx
		if opts.FileTimeout > 0 {
			var cancel context.CancelFunc
			fctx, cancel = context.WithTimeout(ctx, opts.FileTimeout)
			defer cancel()
		}
		return eng.ExecuteContext(fctx, q, opts.Limits)
	}
	if c.Parallelism > 1 {
		// Acquire the semaphore before spawning, so at most Parallelism
		// goroutines exist at any moment — launching one goroutine per
		// file would defeat the bound on large corpora.
		sem := make(chan struct{}, c.Parallelism)
		var wg sync.WaitGroup
		for i, eng := range engines {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int, eng *Engine) {
				defer wg.Done()
				defer func() { <-sem }()
				results[i], errs[i] = run(eng)
			}(i, eng)
		}
		wg.Wait()
	} else {
		for i, eng := range engines {
			results[i], errs[i] = run(eng)
		}
	}
	out := &CorpusResult{}
	var failed []error
	for i, eng := range engines {
		name := eng.Instance().Document().Name()
		if errs[i] != nil {
			if opts.Partial {
				out.Degraded = append(out.Degraded, FileFailure{File: name, Err: errs[i]})
			} else {
				failed = append(failed, fmt.Errorf("engine: %s: %w", name, errs[i]))
			}
			continue
		}
		res := results[i]
		out.Projected = res.Projected
		st := res.Stats
		out.Stats.Candidates += st.Candidates
		out.Stats.Parsed += st.Parsed
		out.Stats.ParsedBytes += st.ParsedBytes
		out.Stats.Results += st.Results
		out.Stats.Exact = out.Stats.Exact || st.Exact
		out.Stats.FullScan = out.Stats.FullScan || st.FullScan
		out.Stats.PlanCached = out.Stats.PlanCached || st.PlanCached
		out.Stats.ResultCached = out.Stats.ResultCached || st.ResultCached
		out.Stats.ResultCacheHits += st.ResultCacheHits
		out.Stats.SharedScans += st.SharedScans
		out.Stats.CSEHits += st.CSEHits
		out.Stats.ParseDedups += st.ParseDedups
		if st.Results == 0 {
			continue
		}
		out.Hits = append(out.Hits, FileHit{
			File:    name,
			Regions: res.Regions,
			Objects: res.Objects,
			Strings: res.Strings,
			Stats:   st,
		})
	}
	if len(failed) > 0 {
		return nil, errors.Join(failed...)
	}
	if opts.Partial {
		// The caller still learns the whole call was cut short: a done
		// parent context is reported alongside whatever completed.
		if err := ctx.Err(); err != nil {
			return out, err
		}
	}
	return out, nil
}
