package engine

import (
	"fmt"
	"sync"

	"qof/internal/compile"
	"qof/internal/db"
	"qof/internal/grammar"
	"qof/internal/region"
	"qof/internal/text"
	"qof/internal/xsql"
)

// Corpus evaluates queries over many files sharing one structuring schema —
// the paper's actual setting ("a multitude of bibliographic files ... all
// of the members may share access"). Each file carries its own index
// instance; a query runs against every file and the results are merged,
// so only the candidate regions of each file are ever parsed.
type Corpus struct {
	cat     *compile.Catalog
	engines []*Engine

	// Parallelism bounds the number of files queried concurrently: 0 and
	// 1 evaluate sequentially, N > 1 runs at most N files at a time.
	// Engines are independent per file, so parallel execution needs no
	// locking. Set it before the corpus starts serving; Execute itself is
	// safe to call from many goroutines at once.
	Parallelism int
}

// NewCorpus creates an empty corpus over the catalog.
func NewCorpus(cat *compile.Catalog) *Corpus {
	return &Corpus{cat: cat}
}

// Add indexes a document per spec and adds it to the corpus.
func (c *Corpus) Add(doc *text.Document, spec grammar.IndexSpec) error {
	in, _, err := c.cat.Grammar.BuildInstance(doc, spec)
	if err != nil {
		return fmt.Errorf("engine: indexing %s: %w", doc.Name(), err)
	}
	c.engines = append(c.engines, New(c.cat, in))
	return nil
}

// AddAll indexes the documents and adds them to the corpus in the given
// order. When Parallelism is set, the per-document index builds (parse,
// region extraction, word index, statistics) run concurrently — they are
// independent per file — but the corpus always ends up identical to
// sequential Adds: engines are appended in document order, and on error the
// corpus is left unchanged.
func (c *Corpus) AddAll(docs []*text.Document, spec grammar.IndexSpec) error {
	engines := make([]*Engine, len(docs))
	errs := make([]error, len(docs))
	build := func(i int) {
		in, _, err := c.cat.Grammar.BuildInstance(docs[i], spec)
		if err != nil {
			errs[i] = fmt.Errorf("engine: indexing %s: %w", docs[i].Name(), err)
			return
		}
		engines[i] = New(c.cat, in)
	}
	if c.Parallelism > 1 {
		sem := make(chan struct{}, c.Parallelism)
		var wg sync.WaitGroup
		for i := range docs {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				build(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range docs {
			build(i)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	c.engines = append(c.engines, engines...)
	return nil
}

// Len reports the number of files in the corpus.
func (c *Corpus) Len() int { return len(c.engines) }

// FileHit is one file's contribution to a corpus result.
type FileHit struct {
	File    string
	Regions region.Set
	Objects []db.Value
	Strings []string
	Stats   Stats
}

// CorpusResult is the merged outcome of a corpus query.
type CorpusResult struct {
	Hits      []FileHit // files with at least one result, in corpus order
	Projected bool
	Stats     Stats // aggregated over every file
}

// Results reports the total number of results across files.
func (r *CorpusResult) Results() int { return r.Stats.Results }

// AllStrings concatenates projected strings across files.
func (r *CorpusResult) AllStrings() []string {
	var out []string
	for _, h := range r.Hits {
		out = append(out, h.Strings...)
	}
	return out
}

// Execute runs the query against every file (in parallel when Parallelism
// is set), merging the per-file results in corpus order. Queries with
// several range variables range over objects of the same file (cross-file
// joins are out of scope, as in the paper).
func (c *Corpus) Execute(q *xsql.Query) (*CorpusResult, error) {
	results := make([]*Result, len(c.engines))
	errs := make([]error, len(c.engines))
	if c.Parallelism > 1 {
		// Acquire the semaphore before spawning, so at most Parallelism
		// goroutines exist at any moment — launching one goroutine per
		// file would defeat the bound on large corpora.
		sem := make(chan struct{}, c.Parallelism)
		var wg sync.WaitGroup
		for i, eng := range c.engines {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int, eng *Engine) {
				defer wg.Done()
				defer func() { <-sem }()
				results[i], errs[i] = eng.Execute(q)
			}(i, eng)
		}
		wg.Wait()
	} else {
		for i, eng := range c.engines {
			results[i], errs[i] = eng.Execute(q)
		}
	}
	out := &CorpusResult{}
	for i, eng := range c.engines {
		if errs[i] != nil {
			return nil, fmt.Errorf("engine: %s: %w", eng.Instance().Document().Name(), errs[i])
		}
		res := results[i]
		out.Projected = res.Projected
		st := res.Stats
		out.Stats.Candidates += st.Candidates
		out.Stats.Parsed += st.Parsed
		out.Stats.ParsedBytes += st.ParsedBytes
		out.Stats.Results += st.Results
		out.Stats.Exact = out.Stats.Exact || st.Exact
		out.Stats.FullScan = out.Stats.FullScan || st.FullScan
		out.Stats.PlanCached = out.Stats.PlanCached || st.PlanCached
		out.Stats.ResultCached = out.Stats.ResultCached || st.ResultCached
		out.Stats.ResultCacheHits += st.ResultCacheHits
		if st.Results == 0 {
			continue
		}
		out.Hits = append(out.Hits, FileHit{
			File:    eng.Instance().Document().Name(),
			Regions: res.Regions,
			Objects: res.Objects,
			Strings: res.Strings,
			Stats:   st,
		})
	}
	return out, nil
}
