package engine

import (
	"fmt"

	"qof/internal/compile"
	"qof/internal/grammar"
	"qof/internal/index"
	"qof/internal/region"
	"qof/internal/text"
)

// ReplaceRegion applies an in-place edit to the document: the text of one
// indexed region occurrence (say, one Reference) is replaced by newText,
// which must parse as the same non-terminal. It returns a new document and
// a new index instance reflecting the edit.
//
// The paper defers index maintenance to the underlying text system ("we
// assume that this is a service given by the underlying text indexing
// system", §1); this is that service: only the replacement text is parsed
// and re-tokenized — regions before the edit are kept, regions after it
// are shifted, enclosing regions are widened or narrowed, and word-index
// posting lists are adjusted index-wise — so the dominant costs of
// indexing stay proportional to the edit, not to the file. (The sistring
// and suffix arrays, whose order after an edit changes globally exactly as
// in PAT, are lazy and rebuild on first prefix/substring search.)
func ReplaceRegion(cat *compile.Catalog, in *index.Instance, nt string, r region.Region, newText string) (*text.Document, *index.Instance, error) {
	set, ok := in.Region(nt)
	if !ok {
		return nil, nil, fmt.Errorf("engine: region name %q is not indexed", nt)
	}
	if !set.Contains(r) {
		return nil, nil, fmt.Errorf("engine: %v is not an indexed %s region", r, nt)
	}
	oldDoc := in.Document()
	content := oldDoc.Content()
	newContent := content[:r.Start] + newText + content[r.End:]
	newDoc := text.NewDocument(oldDoc.Name(), newContent)
	delta := len(newText) - r.Len()

	// Parse only the replacement, at its final position.
	subtree, err := cat.Grammar.ParseAs(newDoc, nt, r.Start, r.Start+len(newText))
	if err != nil {
		return nil, nil, fmt.Errorf("engine: replacement does not parse as %s: %w", nt, err)
	}
	return spliceInstance(cat, in, newDoc, subtree, r, delta)
}

// InsertAfter inserts newText immediately after an indexed region of the
// given name, parsing only the insertion. The text must be a complete
// occurrence of the same non-terminal valid in that position (for
// repetition contexts with a separator, the caller includes it). Like
// ReplaceRegion it returns a new document and instance; correctness is
// guaranteed by construction for separator-free repetitions and verified in
// general by the caller's tests against a rebuild.
func InsertAfter(cat *compile.Catalog, in *index.Instance, nt string, r region.Region, newText string) (*text.Document, *index.Instance, error) {
	set, ok := in.Region(nt)
	if !ok {
		return nil, nil, fmt.Errorf("engine: region name %q is not indexed", nt)
	}
	if !set.Contains(r) {
		return nil, nil, fmt.Errorf("engine: %v is not an indexed %s region", r, nt)
	}
	oldDoc := in.Document()
	content := oldDoc.Content()
	at := r.End
	newContent := content[:at] + newText + content[at:]
	newDoc := text.NewDocument(oldDoc.Name(), newContent)

	subtree, err := cat.Grammar.ParseAs(newDoc, nt, at, at+len(newText))
	if err != nil {
		return nil, nil, fmt.Errorf("engine: insertion does not parse as %s: %w", nt, err)
	}
	// An insertion is a replacement of the empty region [at, at).
	return spliceInstance(cat, in, newDoc, subtree, region.Region{Start: at, End: at}, len(newText))
}

// DeleteRegion removes an indexed region's text entirely (plus nothing
// else: callers own separator hygiene). No parsing happens at all — removal
// cannot introduce new structure; regions inside the deleted span vanish,
// later regions shift, and enclosing regions shrink.
func DeleteRegion(cat *compile.Catalog, in *index.Instance, nt string, r region.Region) (*text.Document, *index.Instance, error) {
	set, ok := in.Region(nt)
	if !ok {
		return nil, nil, fmt.Errorf("engine: region name %q is not indexed", nt)
	}
	if !set.Contains(r) {
		return nil, nil, fmt.Errorf("engine: %v is not an indexed %s region", r, nt)
	}
	oldDoc := in.Document()
	content := oldDoc.Content()
	newDoc := text.NewDocument(oldDoc.Name(), content[:r.Start]+content[r.End:])
	return spliceInstance(cat, in, newDoc, nil, r, -r.Len())
}

// spliceInstance rebuilds the instance around an edit: the word index is
// spliced (only the edit window is re-tokenized), regions are spliced per
// spliceSet, and the (possibly nil) freshly parsed subtree contributes the
// replacement regions.
func spliceInstance(cat *compile.Catalog, in *index.Instance, newDoc *text.Document, subtree *grammar.Node, edit region.Region, delta int) (*text.Document, *index.Instance, error) {
	newIn := index.SpliceInstance(in, newDoc, edit.Start, edit.End, edit.End+delta)
	var fresh map[string]region.Set
	if subtree != nil {
		fresh = grammar.ExtractRegions(subtree, in.Names()...)
	}
	for _, name := range in.Names() {
		spliced, err := spliceSet(in.MustRegion(name), edit, delta)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: region index %q: %w", name, err)
		}
		var add region.Set
		if subtree != nil {
			add = fresh[name]
			if within := in.Scope(name); within != "" {
				add = scopedSubtreeRegions(in, subtree, name, within, edit)
			}
		}
		merged := spliced.Union(add)
		if within := in.Scope(name); within != "" {
			newIn.DefineScoped(name, within, merged)
		} else {
			newIn.Define(name, merged)
		}
	}
	return newDoc, newIn, nil
}

// spliceSet maps one region set across the edit: keep regions before, drop
// regions inside the replaced region (the subtree re-supplies them), shift
// regions after, and stretch regions enclosing the edit.
func spliceSet(s region.Set, edit region.Region, delta int) (region.Set, error) {
	var out []region.Region
	for _, x := range s.Regions() {
		switch {
		case x.End <= edit.Start:
			out = append(out, x)
		case x.Start >= edit.End:
			out = append(out, region.Region{Start: x.Start + delta, End: x.End + delta})
		case edit.Includes(x):
			// Inside the replaced region (including the region itself):
			// superseded by the re-parsed subtree.
		case x.StrictlyIncludes(edit):
			out = append(out, region.Region{Start: x.Start, End: x.End + delta})
		default:
			return region.Empty, fmt.Errorf("region %v partially overlaps the edit %v", x, edit)
		}
	}
	return region.FromRegions(out), nil
}

// scopedSubtreeRegions extracts the scoped name's regions from the
// replacement subtree: if the edit already sits inside a scope region, the
// whole subtree is in scope; otherwise only occurrences under scope
// regions inside the subtree qualify.
func scopedSubtreeRegions(in *index.Instance, subtree *grammar.Node, name, within string, edit region.Region) region.Set {
	if ws, ok := in.Region(within); ok {
		for _, w := range ws.Regions() {
			if w.StrictlyIncludes(edit) {
				return grammar.ExtractRegions(subtree, name)[name]
			}
		}
	}
	// The scope container may itself be part of the subtree; also cover
	// the case where the scope is not separately indexed by locating
	// scope occurrences syntactically.
	return grammar.ExtractScopedRegions(subtree, name, within)
}
