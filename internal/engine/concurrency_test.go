package engine_test

// Concurrency stress tests: many goroutines share one Engine (or Corpus)
// and every result must match the sequential baseline exactly. Run them
// under `go test -race` to prove the engine serves overlapping Execute
// calls without data races — the acceptance test of the concurrency work.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"qof/internal/bibtex"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/testutil"
	"qof/internal/xsql"
)

// concurrentQueries mixes every execution path: index-exact selection,
// projection (parses candidates), value join, path variables, negation,
// conjunctive filtering and whole-class enumeration.
var concurrentQueries = []string{
	changAuthorQuery,
	`SELECT r.Key FROM References r WHERE r.Editors.Name.Last_Name = "Chang"`,
	`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`,
	`SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"`,
	`SELECT r FROM References r WHERE NOT r.Authors.Name.Last_Name = "Chang"`,
	`SELECT r.Authors.Name.Last_Name FROM References r WHERE r.Title CONTAINS "Systems"`,
	`SELECT r FROM References r`,
}

// maskNondet zeroes the fields that legitimately differ run to run:
// PlanCached and the result-cache fields flip after the first execution,
// and the timings are wall clock. Everything else must be bit-identical
// across runs.
func maskNondet(st engine.Stats) engine.Stats {
	st.PlanCached = false
	st.ResultCached, st.ResultCacheHits = false, 0
	st.CompileTime, st.Phase1Time, st.Phase2Time = 0, 0, 0
	// PeakBytes depends on cache warmth (a cached candidate set skips the
	// intermediate buffers), so it is as nondeterministic as the cache
	// flags above under concurrent execution.
	st.PeakBytes = 0
	// The shared-execution counters are observational: they depend on
	// which queries happened to overlap, not on what was computed.
	st.SharedScans, st.CSEHits, st.ParseDedups = 0, 0, 0
	return st
}

// snapshot renders a result into a comparable form.
func snapshot(res *engine.Result) string {
	return fmt.Sprintf("%v|%v|%v|%+v", res.Regions.Regions(), res.Strings, res.Projected, maskNondet(res.Stats))
}

// runEngineConcurrent computes the sequential baseline for every query,
// then hammers the engine from workers goroutines and compares.
func runEngineConcurrent(t *testing.T, eng *engine.Engine, queries []*xsql.Query, workers, rounds int) {
	t.Helper()
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := eng.Execute(q)
		if err != nil {
			t.Fatalf("baseline %s: %v", q, err)
		}
		want[i] = snapshot(res)
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger the starting query so goroutines overlap on
				// different plans as well as on the same plan.
				for off := range queries {
					i := (w + r + off) % len(queries)
					res, err := eng.Execute(queries[i])
					if err != nil {
						errc <- fmt.Errorf("worker %d: %s: %w", w, queries[i], err)
						return
					}
					if got := snapshot(res); got != want[i] {
						errc <- fmt.Errorf("worker %d: %s:\n got %s\nwant %s", w, queries[i], got, want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func parseAll(t *testing.T, srcs []string) []*xsql.Query {
	t.Helper()
	out := make([]*xsql.Query, len(srcs))
	for i, s := range srcs {
		out[i] = xsql.MustParse(s)
	}
	return out
}

func TestEngineExecuteConcurrent(t *testing.T) {
	queries := parseAll(t, concurrentQueries)

	t.Run("FullIndex", func(t *testing.T) {
		f := testutil.NewBibFixture(t, 80, grammar.IndexSpec{}, nil)
		runEngineConcurrent(t, f.Eng, queries, 8, 4)
	})

	t.Run("FullIndexParallelPhase2", func(t *testing.T) {
		f := testutil.NewBibFixture(t, 80, grammar.IndexSpec{}, nil)
		f.Eng.Parallelism = 4 // overlapping calls each spin up worker pools
		runEngineConcurrent(t, f.Eng, queries, 8, 4)
	})

	t.Run("PartialIndex", func(t *testing.T) {
		// {Reference, Key, Last_Name} forces candidate parsing + filtering.
		f := testutil.NewBibFixture(t, 80, grammar.IndexSpec{
			Names: []string{bibtex.NTReference, bibtex.NTKey, bibtex.NTLastName},
		}, nil)
		runEngineConcurrent(t, f.Eng, queries, 8, 4)
	})

	t.Run("FullScan", func(t *testing.T) {
		// Only Key indexed: the author query cannot be narrowed at all, so
		// concurrent executions exercise the full-scan path.
		f := testutil.NewBibFixture(t, 40, grammar.IndexSpec{Names: []string{bibtex.NTKey}}, nil)
		fullScanQueries := parseAll(t, []string{
			changAuthorQuery,
			`SELECT r.Key FROM References r WHERE r.Editors.Name.Last_Name = "Chang"`,
		})
		runEngineConcurrent(t, f.Eng, fullScanQueries, 8, 3)
	})
}

// corpusSnapshot renders a corpus result comparably, masking PlanCached in
// the aggregate and in every per-file stats block.
func corpusSnapshot(res *engine.CorpusResult) string {
	var sb strings.Builder
	for _, h := range res.Hits {
		fmt.Fprintf(&sb, "%s|%v|%v|%+v;", h.File, h.Regions.Regions(), h.Strings, maskNondet(h.Stats))
	}
	fmt.Fprintf(&sb, "%+v|%v", maskNondet(res.Stats), res.Projected)
	return sb.String()
}

func TestCorpusExecuteConcurrent(t *testing.T) {
	cat := bibtex.Catalog()
	corpus := engine.NewCorpus(cat)
	for i := 0; i < 6; i++ {
		doc, _ := testutil.BibDoc(t, fmt.Sprintf("file%d.bib", i), 30+7*i, func(cfg *bibtex.Config) {
			cfg.Seed = int64(i + 1)
		})
		if err := corpus.Add(doc, grammar.IndexSpec{}); err != nil {
			t.Fatal(err)
		}
	}
	corpus.Parallelism = 4

	queries := parseAll(t, concurrentQueries)
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := corpus.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = corpusSnapshot(res)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				for off := range queries {
					i := (w + r + off) % len(queries)
					res, err := corpus.Execute(queries[i])
					if err != nil {
						errc <- fmt.Errorf("worker %d: %s: %w", w, queries[i], err)
						return
					}
					if got := corpusSnapshot(res); got != want[i] {
						errc <- fmt.Errorf("worker %d: %s: corpus result diverged", w, queries[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestPhase2ParallelMatchesSequential pins down the worker-pool merge: for
// every parallelism degree the result set, the result order and the parsing
// statistics must be identical to the sequential run.
func TestPhase2ParallelMatchesSequential(t *testing.T) {
	f := testutil.NewBibFixture(t, 80, grammar.IndexSpec{
		Names: []string{bibtex.NTReference, bibtex.NTKey, bibtex.NTLastName},
	}, nil)
	queries := parseAll(t, concurrentQueries)
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := f.Eng.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = snapshot(res)
	}
	for _, par := range []int{0, 1, 2, 3, 4, 8, 64} {
		f.Eng.Parallelism = par
		for i, q := range queries {
			res, err := f.Eng.Execute(q)
			if err != nil {
				t.Fatalf("parallelism %d: %s: %v", par, q, err)
			}
			if got := snapshot(res); got != want[i] {
				t.Errorf("parallelism %d: %s:\n got %s\nwant %s", par, q, got, want[i])
			}
		}
	}
}

// TestExecutePlanCache asserts that a repeated query is served from the
// plan cache and reports it via Stats.PlanCached.
func TestExecutePlanCache(t *testing.T) {
	f := testutil.NewBibFixture(t, 40, grammar.IndexSpec{}, nil)
	q := xsql.MustParse(changAuthorQuery)
	first, err := f.Eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.PlanCached {
		t.Error("first execution cannot be a cache hit")
	}
	// A semantically identical query parsed from different text normalizes
	// to the same key.
	q2 := xsql.MustParse("SELECT r FROM References r\n WHERE r.Authors.Name.Last_Name = \"Chang\"")
	second, err := f.Eng.Execute(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.PlanCached {
		t.Error("repeat execution should hit the plan cache")
	}
	if snapshot(first) != snapshot(second) {
		t.Errorf("cached result diverged:\n got %s\nwant %s", snapshot(second), snapshot(first))
	}
}
