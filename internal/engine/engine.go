// Package engine executes compiled query plans against an indexed document,
// implementing the paper's evaluation strategy end to end:
//
//  1. evaluate the optimized inclusion expression on the indexing engine to
//     obtain candidate regions (Sections 5.1 and 6.1);
//  2. when the plan is not exact, parse only the candidate regions with the
//     structuring schema and filter the resulting objects in the database
//     (Section 6.2) — the whole file is never scanned;
//  3. produce the SELECT output, using the index alone when the projection
//     chain is exact (no file access beyond the projected regions).
//
// The engine reports detailed statistics (candidates, parsed regions and
// bytes, filtering) that the benchmarks and EXPLAIN output rely on.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qof/internal/algebra"
	"qof/internal/compile"
	"qof/internal/db"
	"qof/internal/faultinject"
	"qof/internal/grammar"
	"qof/internal/index"
	"qof/internal/mpm"
	"qof/internal/qerr"
	"qof/internal/region"
	"qof/internal/stats"
	"qof/internal/xsql"
)

// planCacheCap bounds the per-engine compiled-plan cache. Query texts are
// short and plans small, so a few dozen entries cover any realistic
// interactive or serving workload while keeping eviction cheap.
const planCacheCap = 64

// Engine evaluates queries over one indexed document.
//
// An Engine is safe for concurrent use: Execute may be called from any
// number of goroutines. The catalog, instance and evaluator are read-only
// during execution, per-query state lives in the Result, and the plan cache
// synchronizes internally. The Parallelism field is configuration — set it
// before the engine starts serving.
type Engine struct {
	cat     *compile.Catalog
	in      *index.Instance
	ev      *algebra.Evaluator
	plans   *compile.PlanCache
	results *ResultCache
	st      *stats.Stats

	// Parallelism bounds the number of worker goroutines parsing and
	// filtering phase-2 candidate regions within one Execute call; values
	// < 2 parse sequentially. Results and statistics are identical either
	// way: candidates are merged back in document order.
	Parallelism int

	// Materializing selects the reference executor: phase 1 materializes
	// every operator result before phase 2 starts, exactly as in the
	// original implementation. The default (false) streams candidates
	// through a pull-based iterator pipeline into phase 2, so LIMIT,
	// budgets and cancellation stop the work early. Results are identical;
	// the materializing path exists as the oracle for the differential
	// harness and the peak-memory benchmarks. Configuration, like
	// Parallelism: set it before the engine starts serving.
	Materializing bool

	// shared, when non-nil, is the cross-query shared-execution
	// coordinator (batched scans, CSE, parse dedup); see shared.go.
	// Enabled by EnableSharedExecution before serving starts.
	shared *sharedState
}

// New creates an engine over the catalog and instance. Construction
// collects index statistics (region cardinalities, word frequencies,
// nesting depth) that drive cardinality-aware operand ordering, and sets up
// the cross-query result cache.
func New(cat *compile.Catalog, in *index.Instance) *Engine {
	e := &Engine{
		cat:     cat,
		in:      in,
		ev:      algebra.NewEvaluator(in),
		plans:   compile.NewPlanCache(planCacheCap),
		results: NewResultCache(resultCacheCap),
		st:      stats.Collect(in),
	}
	e.ev.Results = e.results
	e.ev.CostStats = e.st
	return e
}

// Instance returns the engine's index instance.
func (e *Engine) Instance() *index.Instance { return e.in }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *compile.Catalog { return e.cat }

// IndexStats returns the statistics collected over the instance when the
// engine was built.
func (e *Engine) IndexStats() *stats.Stats { return e.st }

// DisableResultCache turns off the cross-query result cache. It is
// configuration, like Parallelism: call it before the engine starts
// serving. Benchmarks use it to isolate the cache's contribution.
func (e *Engine) DisableResultCache() {
	e.ev.Results = nil
	e.results = nil
}

// CacheCounters reports cumulative plan- and result-cache hits and misses,
// for throughput reports.
func (e *Engine) CacheCounters() (planHits, planMisses, resultHits, resultMisses int) {
	planHits, planMisses = e.plans.Counters()
	if e.results != nil {
		resultHits, resultMisses = e.results.Counters()
	}
	return
}

// Stats describes how a query was executed.
type Stats struct {
	Candidates  int  // candidate regions after phase 1
	Parsed      int  // regions parsed in phase 2 (including result materialization)
	ParsedBytes int  // bytes covered by parsed regions
	Results     int  // final result size
	Exact       bool // phase-2 filtering was skipped (Section 6.3)
	IndexOnly   bool // answered without parsing anything
	FullScan    bool // the index offered no narrowing
	JoinFast    bool // the Section 5.2 region-level join was used
	PlanCached  bool // the compiled plan came from the plan cache

	// ResultCached reports that the candidate set itself was served from
	// the cross-query result cache (phase 1 skipped); ResultCacheHits
	// counts every subexpression answered from it, candidates included.
	ResultCached    bool
	ResultCacheHits int

	// Shared-execution counters (zero unless EnableSharedExecution):
	// SharedScans counts word leaves answered from a batched multi-pattern
	// scan, CSEHits subexpressions (or whole candidate sets) received from
	// another query's in-flight evaluation, and ParseDedups phase-2 parses
	// served by the shared parse table. Purely observational — the fields
	// above (Candidates, Parsed, ParsedBytes, Results) are unchanged by
	// sharing.
	SharedScans int
	CSEHits     int
	ParseDedups int

	// PeakBytes approximates the high-water mark of region-buffer memory
	// the execution held: materialized operator results (all of them on
	// the materializing path, only the unavoidable buffers — proximity
	// targets, direct-operator sides — on the streaming path) plus the
	// engine's candidate and result buffers, at 16 bytes per region. The
	// peak-memory benchmarks compare the two executors through it.
	PeakBytes int

	// Wall-clock breakdown: query compilation + optimization, index
	// evaluation (phase 1), and candidate parsing + filtering +
	// projection (phase 2). On the streaming path phase 1 is pipeline
	// construction and the two phases overlap; Phase2Time then covers the
	// interleaved drain.
	CompileTime time.Duration
	Phase1Time  time.Duration
	Phase2Time  time.Duration
}

// regionBytes is the in-memory footprint of one region (two ints), the unit
// of PeakBytes accounting.
const regionBytes = 16

// Result is the outcome of a query.
type Result struct {
	// Objects holds the selected objects for whole-object selects, in
	// document order; Regions holds their regions.
	Objects []db.Value
	Regions region.Set
	// Strings holds the projected values for path selects, in document
	// order (duplicates preserved).
	Strings []string
	// Projected reports whether Strings is the result form.
	Projected bool
	Plan      *compile.Plan
	Stats     Stats
}

// Limits are per-query resource budgets, enforced at the same poll points
// as cancellation. The zero value is unlimited. Budget violations surface
// as errors wrapping qerr.ErrBudgetExceeded and are deterministic: the same
// query over the same index trips at the same point every time.
type Limits struct {
	// MaxRegions caps the cumulative number of regions produced by
	// phase-1 operator applications (leaves included), bounding the work
	// a hostile inclusion chain can do on the indexing engine.
	MaxRegions int
	// MaxEvalBytes caps the document bytes parsed in phase 2, full scans
	// included, bounding structured-parsing work and memory.
	MaxEvalBytes int
}

// execEnv carries one execution's cancellation and budget state across the
// engine's phases. The byte budget is atomic because parallel phase-2
// workers charge it concurrently.
type execEnv struct {
	ctx    context.Context
	lim    Limits
	budget *algebra.Budget // phase-1 region budget; nil = unlimited

	bytesUsed   atomic.Int64 // phase-2 parsed bytes so far
	parseDedups atomic.Int64 // phase-2 parses served by the shared table
}

// poll returns the context error once the execution's context is done.
func (es *execEnv) poll() error {
	if es.ctx.Done() == nil {
		return nil
	}
	return es.ctx.Err()
}

// chargeBytes deducts n parsed bytes from the byte budget.
func (es *execEnv) chargeBytes(n int) error {
	if es.lim.MaxEvalBytes <= 0 {
		return nil
	}
	if es.bytesUsed.Add(int64(n)) > int64(es.lim.MaxEvalBytes) {
		return fmt.Errorf("engine: eval-bytes budget of %d exceeded: %w",
			es.lim.MaxEvalBytes, qerr.ErrBudgetExceeded)
	}
	return nil
}

// Execute compiles and runs the query. Plans are cached by normalized query
// text, so repeat queries skip parsing, compilation and optimization; the
// cached plan is immutable and shared by concurrent executions.
func (e *Engine) Execute(q *xsql.Query) (*Result, error) {
	return e.ExecuteContext(context.Background(), q, Limits{})
}

// ExecuteContext is Execute under a context and per-query resource budgets.
// Cancellation and deadlines are polled cooperatively at every phase-1
// operator application, inside the region kernels, and per phase-2
// candidate, so they take effect mid-evaluation; the returned error is then
// ctx.Err() (context.Canceled or context.DeadlineExceeded). Budget
// violations wrap qerr.ErrBudgetExceeded. A failed execution is never
// cached — neither its candidate sets nor partial results — and leaves the
// engine fully usable.
func (e *Engine) ExecuteContext(ctx context.Context, q *xsql.Query, lim Limits) (*Result, error) {
	es := &execEnv{ctx: ctx, lim: lim, budget: algebra.NewBudget(lim.MaxRegions)}
	if err := es.poll(); err != nil {
		return nil, err
	}
	start := time.Now()
	key := q.String()
	plan, cached := e.plans.Get(key)
	if cached {
		// Execute against the query the plan was compiled from: same
		// normalized text means the same parse tree, and keeping the
		// pair together makes the plan/query state all-immutable.
		q = plan.Query
	} else {
		var err error
		plan, err = e.cat.CompileStats(q, e.in, e.st)
		if err != nil {
			return nil, err
		}
		e.plans.Put(key, plan)
	}
	res := &Result{Plan: plan, Projected: len(q.Select.Segs) > 0}
	res.Stats.PlanCached = cached
	res.Stats.CompileTime = time.Since(start)
	if plan.Trivial {
		return res, nil
	}
	if e.shared != nil {
		scan, release := e.shared.enter(ctx, plan)
		defer release()
		if scan != nil {
			es.ctx = mpm.NewContext(ctx, scan)
		}
		defer func() { res.Stats.ParseDedups = int(es.parseDedups.Load()) }()
	}
	if len(q.From) == 1 {
		if err := e.executeSingle(es, q, plan, res); err != nil {
			return nil, err
		}
	} else {
		if err := e.executeMulti(es, q, plan, res); err != nil {
			return nil, err
		}
	}
	if res.Projected {
		res.Stats.Results = len(res.Strings)
	} else {
		res.Stats.Results = res.Regions.Len()
	}
	return res, nil
}

// evalExpr runs an algebra expression through the evaluator under the
// execution's context and region budget, and folds the per-call evaluator
// statistics (result-cache hits) into the result's stats.
func (e *Engine) evalExpr(es *execEnv, x algebra.Expr, res *Result) (region.Set, error) {
	var ast algebra.Stats
	s, err := e.ev.EvalContext(es.ctx, x, &ast, es.budget)
	res.Stats.ResultCacheHits += ast.ResultCacheHits
	res.Stats.SharedScans += ast.SharedScans
	res.Stats.CSEHits += ast.CSEHits
	// Materializing evaluation keeps every operator result in its memo
	// until the call ends, so the regions touched are the buffer peak.
	res.Stats.PeakBytes += ast.PeakBytes + regionBytes*ast.RegionsTouched
	return s, err
}

// executeSingle runs the one-range-variable fast path.
func (e *Engine) executeSingle(es *execEnv, q *xsql.Query, plan *compile.Plan, res *Result) error {
	vp := &plan.Vars[0]
	res.Stats.Exact = vp.Exact
	phase1 := time.Now()
	defer func() { res.Stats.Phase2Time = time.Since(phase1) - res.Stats.Phase1Time }()

	// Streaming executor (the default): pull candidates off an iterator
	// pipeline and parse them as they arrive, so LIMIT, budgets and
	// cancellation stop the whole query early. The index-only projection
	// and the fast join need the complete candidate set up front, so those
	// plans keep the materializing phase 1 below.
	indexOnly := res.Projected && vp.Exact && plan.Projection.Chain != nil && plan.Projection.Exact
	if !e.Materializing && vp.Candidates != nil && plan.JoinFast == nil && !indexOnly {
		return e.streamSingle(es, q, plan, vp, res, phase1)
	}

	// Phase 1: candidate regions from the index.
	var candidates region.Set
	switch {
	case vp.Candidates != nil:
		// A region budget must meter the actual phase-1 work, so budgeted
		// queries bypass the cross-query cache: a warm cache would
		// otherwise decide whether the budget applies at all.
		if s, ok := e.ev.CachedResult(vp.Candidates); ok && es.budget == nil {
			// The whole candidate expression was answered by the
			// cross-query result cache: phase 1 is a lookup.
			candidates = s
			res.Stats.ResultCached = true
			res.Stats.ResultCacheHits++
		} else {
			var err error
			candidates, err = e.evalExpr(es, vp.Candidates, res)
			if err != nil {
				return fmt.Errorf("engine: evaluating candidates: %w", err)
			}
		}
	default:
		// The index offers nothing: parse the whole document and use
		// every object region as a candidate.
		res.Stats.FullScan = true
		doc := e.in.Document()
		if err := es.chargeBytes(doc.Len()); err != nil {
			return err
		}
		tree, err := e.cat.Grammar.Parse(doc)
		if err != nil {
			return fmt.Errorf("engine: full scan parse: %w", err)
		}
		res.Stats.ParsedBytes += doc.Len()
		candidates = grammar.ExtractRegions(tree, vp.NT)[vp.NT]
		res.Stats.Parsed += candidates.Len()
	}
	res.Stats.Candidates = candidates.Len()
	res.Stats.Phase1Time = time.Since(phase1)

	// Index-only projection: exact candidates plus an exact projection
	// chain answer the query without touching the file.
	if res.Projected && vp.Exact && plan.Projection.Chain != nil && plan.Projection.Exact && !res.Stats.FullScan {
		projected, err := e.evalExpr(es, plan.Projection.Chain.Expr(), res)
		if err != nil {
			return fmt.Errorf("engine: evaluating projection: %w", err)
		}
		within := projected.Included(candidates)
		content := e.in.Document().Content()
		for _, r := range within.Regions() {
			if q.Limit > 0 && len(res.Strings) >= q.Limit {
				break
			}
			// The projection plan is only exact for faithful leaves,
			// whose region text is the database value verbatim.
			res.Strings = append(res.Strings, content[r.Start:r.End])
		}
		res.Stats.IndexOnly = true
		return nil
	}

	// Section 5.2 fast join: decide the path comparison from the leaf
	// regions alone, then parse only the matching objects.
	if plan.JoinFast != nil && !res.Stats.FullScan {
		matched, ok, err := e.joinFastCandidates(es, plan.JoinFast, candidates, res)
		if err != nil {
			return err
		}
		if ok {
			res.Stats.JoinFast = true
			candidates = matched
			vp = &compile.VarPlan{Var: vp.Var, NT: vp.NT, Exact: true}
		}
	}

	// Phase 2: parse candidates, filter unless exact, project.
	return e.phase2(es, q, plan, vp, candidates, res)
}

// phase2 parses every candidate region, filters non-exact plans through the
// WHERE clause, and projects, optionally fanning the per-candidate work out
// to Parallelism worker goroutines. Parsing and filtering are independent
// per candidate, so the fan-out needs no locks: worker i writes only slot i.
// The merge runs in document order afterwards, so results and statistics
// are identical to the sequential evaluation.
func (e *Engine) phase2(es *execEnv, q *xsql.Query, plan *compile.Plan, vp *compile.VarPlan, candidates region.Set, res *Result) error {
	cands := candidates.Regions()
	type candOut struct {
		obj  db.Value
		keep bool
	}
	outs := make([]candOut, len(cands))
	process := func(i int) error {
		obj, keep, err := e.processCandidate(es, q, vp, cands[i])
		if err != nil {
			return err
		}
		if keep {
			outs[i] = candOut{obj: obj, keep: true}
		}
		return nil
	}

	workers := e.Parallelism
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers > 1 {
		var next atomic.Int64
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cands) {
						return
					}
					if err := process(i); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	} else {
		for i := range cands {
			if err := process(i); err != nil {
				return err
			}
		}
	}

	// Deterministic merge in document order. The reference semantics of
	// LIMIT are "full evaluation, then clamp": every candidate is parsed
	// and counted, and only the emission stops after k rows, truncating
	// the kept regions at the same candidate where the streaming executor
	// stops pulling — the two executors agree row for row and region for
	// region.
	em := newEmitter(q, plan, res)
	for i, out := range outs {
		res.Stats.Parsed++
		res.Stats.ParsedBytes += cands[i].Len()
		if !out.keep || em.full() {
			continue
		}
		em.emit(cands[i], out.obj)
	}
	em.finish()
	return nil
}

// processCandidate does the per-candidate phase-2 work — poll, fault
// injection, byte budget, parse, build, filter — shared by the sequential,
// parallel, materializing and streaming paths. Per-candidate panics (a
// grammar or filter bug, or an injected fault) are isolated into a typed
// error so one poisoned candidate fails the query instead of killing the
// process — essential when the caller is a worker goroutine.
func (e *Engine) processCandidate(es *execEnv, q *xsql.Query, vp *compile.VarPlan, r region.Region) (obj db.Value, keep bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("engine: phase 2 panic on candidate %v: %v: %w", r, p, qerr.ErrInternal)
		}
	}()
	if err := es.poll(); err != nil {
		return nil, false, err
	}
	if err := faultinject.Hit(faultinject.Phase2); err != nil {
		return nil, false, fmt.Errorf("engine: phase 2: %w", err)
	}
	if err := es.chargeBytes(r.Len()); err != nil {
		return nil, false, err
	}
	obj, err = e.parseValue(es, vp.NT, r)
	if err != nil {
		return nil, false, err
	}
	if !vp.Exact {
		ok, err := xsql.EvalCond(xsql.Env{vp.Var: obj}, q.Where)
		if err != nil {
			return nil, false, fmt.Errorf("engine: filtering: %w", err)
		}
		if !ok {
			return obj, false, nil
		}
	}
	return obj, true, nil
}

// emitter accumulates kept candidates into the result with uniform LIMIT
// clamping: once the row count reaches the limit no further candidate is
// admitted, and a projected candidate straddling the boundary keeps its
// region with its strings clamped to exactly k. Both executors emit through
// it, which is what makes a limited answer a prefix of the full one.
type emitter struct {
	plan  *compile.Plan
	res   *Result
	limit int
	rows  int
	kept  []region.Region
}

func newEmitter(q *xsql.Query, plan *compile.Plan, res *Result) *emitter {
	return &emitter{plan: plan, res: res, limit: q.Limit}
}

// full reports that the limit is reached and emission has stopped.
func (em *emitter) full() bool { return em.limit > 0 && em.rows >= em.limit }

// emit admits one kept candidate. The caller checks full() first.
func (em *emitter) emit(r region.Region, obj db.Value) {
	em.kept = append(em.kept, r)
	if em.res.Projected {
		strs := db.NavigateStrings(obj, em.plan.Projection.Steps)
		if em.limit > 0 && len(strs) > em.limit-em.rows {
			strs = strs[:em.limit-em.rows]
		}
		em.res.Strings = append(em.res.Strings, strs...)
		em.rows += len(strs)
	} else {
		em.res.Objects = append(em.res.Objects, obj)
		em.rows++
	}
}

// finish publishes the kept regions into the result.
func (em *emitter) finish() {
	em.res.Regions = region.FromRegions(em.kept)
	em.res.Stats.PeakBytes += regionBytes * len(em.kept)
}

// streamSingle is the streaming single-variable executor: phase 1 is an
// iterator pipeline over the index (algebra.Stream) and phase 2 pulls
// candidates off it, parsing and filtering while phase 1 is still
// producing. The pipeline stops as soon as the LIMIT is satisfied, a budget
// trips, or the context is done; only a complete successful drain publishes
// the candidate set to the cross-query result cache.
func (e *Engine) streamSingle(es *execEnv, q *xsql.Query, plan *compile.Plan, vp *compile.VarPlan, res *Result, phase1 time.Time) error {
	var ast algebra.Stats
	var src region.Iterator
	fromCache := false
	// Worthiness and the epoch-prefixed key are computed once and shared by
	// the cache read, the CSE join and the publish below.
	key, worthy := e.ev.SharedKey(vp.Candidates)
	var shFlight *algebra.Flight
	// A region budget must meter the actual phase-1 work, so budgeted
	// queries bypass the cross-query cache and the CSE join, exactly like
	// the materializing path.
	if es.budget == nil && worthy {
		if s, ok := e.ev.CachedResultKey(key); ok {
			res.Stats.ResultCached = true
			res.Stats.ResultCacheHits++
			src = s.Iter()
			fromCache = true
		} else if e.shared != nil && q.Limit == 0 {
			// Whole-candidate-set CSE: concurrent streaming queries with the
			// same candidate expression share one evaluation and drain.
			// Limited queries bypass it — a limit-stopped leader cannot
			// produce the full set — which also keeps their behavior
			// byte-identical to unshared execution.
			if ferr := faultinject.Hit(faultinject.EngineCSE); ferr == nil {
				for src == nil {
					fl, leader := e.shared.cse.Join(key)
					if leader {
						shFlight = fl
						break
					}
					s, werr := fl.Wait(es.ctx)
					if werr == nil {
						res.Stats.CSEHits++
						src = s.Iter()
						fromCache = true // the leader already published it
					} else if cerr := es.poll(); cerr != nil {
						return cerr
					}
					// The leader failed (canceled, faulted, or panicked out)
					// while this query is live: loop and take over.
				}
			}
		}
	}
	// The flight must complete on every exit — error, cancel or panic
	// unwind — so waiters never hang; success completes it below.
	leaderDone := false
	defer func() {
		if shFlight != nil && !leaderDone {
			e.shared.cse.Abort(key, shFlight)
		}
	}()
	if src == nil {
		it, err := e.ev.Stream(es.ctx, vp.Candidates, &ast, es.budget)
		if err != nil {
			return fmt.Errorf("engine: evaluating candidates: %w", err)
		}
		src = it
	}
	defer src.Close()
	res.Stats.Phase1Time = time.Since(phase1)

	all, complete, err := e.streamPhase2(es, q, plan, vp, src, res)
	res.Stats.ResultCacheHits += ast.ResultCacheHits
	res.Stats.SharedScans += ast.SharedScans
	res.Stats.Candidates = len(all)
	res.Stats.PeakBytes += ast.PeakBytes + regionBytes*(ast.RegionsTouched+len(all))
	if err != nil {
		return err
	}
	if complete && !fromCache && worthy {
		// The stream was drained in full, so the accumulated candidates
		// are the exact phase-1 answer — safe to publish. A limit-stopped
		// or failed drain never reaches this point, preserving the
		// killed-runs-never-publish invariant for cache and waiters alike.
		set := region.FromRegions(all)
		e.ev.PublishResultKey(key, set)
		if shFlight != nil {
			leaderDone = true
			e.shared.cse.Complete(key, shFlight, set, nil)
		}
	}
	return nil
}

// streamPhase2 drains the candidate iterator through phase 2, sequentially
// or with a worker pool, and reports the candidates pulled and whether the
// stream was consumed to exhaustion (false when the LIMIT stopped it).
func (e *Engine) streamPhase2(es *execEnv, q *xsql.Query, plan *compile.Plan, vp *compile.VarPlan, src region.Iterator, res *Result) (all []region.Region, complete bool, err error) {
	em := newEmitter(q, plan, res)
	defer em.finish()
	if e.Parallelism > 1 {
		return e.streamPhase2Parallel(es, q, plan, vp, src, res, em)
	}
	for !em.full() {
		r, ok, err := src.Next()
		if err != nil {
			return all, false, fmt.Errorf("engine: evaluating candidates: %w", err)
		}
		if !ok {
			return all, true, nil
		}
		all = append(all, r)
		obj, keep, err := e.processCandidate(es, q, vp, r)
		if err != nil {
			return all, false, err
		}
		res.Stats.Parsed++
		res.Stats.ParsedBytes += r.Len()
		if keep {
			em.emit(r, obj)
		}
	}
	return all, false, nil
}

// streamPhase2Parallel overlaps candidate production and parsing: a feeder
// goroutine (the iterator's only consumer) streams candidates to a worker
// pool, and the collector merges worker output back in document order, so
// results are identical to the sequential drain. Early termination closes
// done; every goroutine selects on it, and the drain loops below join them
// all before returning — no goroutine outlives the call.
//
// Under a LIMIT the feeder may have read ahead of the stop point, so the
// Candidates/Parsed statistics of a limited parallel run can exceed the
// sequential ones; results are still deterministic because emission is
// strictly in document order.
func (e *Engine) streamPhase2Parallel(es *execEnv, q *xsql.Query, plan *compile.Plan, vp *compile.VarPlan, src region.Iterator, res *Result, em *emitter) (all []region.Region, complete bool, err error) {
	type feedItem struct {
		i int
		r region.Region
	}
	type outItem struct {
		i    int
		r    region.Region
		obj  db.Value
		keep bool
		err  error
	}
	workers := e.Parallelism
	feed := make(chan feedItem, workers)
	outc := make(chan outItem, workers)
	done := make(chan struct{})
	var stopOnce sync.Once
	stop := func() { stopOnce.Do(func() { close(done) }) }
	defer stop()

	var feedErr error
	feedComplete := false
	feederDone := make(chan struct{})
	go func() {
		defer close(feederDone)
		defer close(feed)
		// Registered last so it runs first: feedErr must be set before the
		// channel closes release the collector.
		defer func() {
			if p := recover(); p != nil {
				feedErr = fmt.Errorf("engine: phase 2 feeder panic: %v: %w", p, qerr.ErrInternal)
			}
		}()
		for i := 0; ; i++ {
			r, ok, err := src.Next()
			if err != nil {
				feedErr = err
				return
			}
			if !ok {
				feedComplete = true
				return
			}
			all = append(all, r)
			select {
			case feed <- feedItem{i: i, r: r}:
			case <-done:
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range feed {
				obj, keep, err := e.processCandidate(es, q, vp, it.r)
				select {
				case outc <- outItem{i: it.i, r: it.r, obj: obj, keep: keep, err: err}:
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(outc)
	}()

	// In-order collector: workers finish out of order, so completed items
	// wait in pending until their document-order turn comes up.
	pending := make(map[int]outItem)
	nextIdx := 0
	var procErr error
collect:
	for oi := range outc {
		pending[oi.i] = oi
		for {
			cur, ok := pending[nextIdx]
			if !ok {
				continue collect
			}
			delete(pending, nextIdx)
			nextIdx++
			if cur.err != nil {
				procErr = cur.err
				break collect
			}
			res.Stats.Parsed++
			res.Stats.ParsedBytes += cur.r.Len()
			if cur.keep {
				em.emit(cur.r, cur.obj)
			}
			if em.full() {
				break collect
			}
		}
	}
	// Join everything: closing done releases blocked senders, draining outc
	// lets the workers finish their in-flight items, and feederDone
	// guarantees the iterator has no concurrent consumer once we return.
	stop()
	for range outc {
	}
	<-feederDone

	if procErr != nil {
		return all, false, procErr
	}
	if feedErr != nil {
		return all, false, fmt.Errorf("engine: evaluating candidates: %w", feedErr)
	}
	if em.full() && q.Limit > 0 {
		return all, false, nil
	}
	// No error and no early stop: the feeder ran to exhaustion and every
	// item passed through the collector.
	return all, feedComplete, nil
}

// joinFastCandidates implements Section 5.2's join strategy: locate the
// leaf regions of both paths through the index, read only their bytes, and
// hash-join the values per candidate. It requires candidates to be
// non-nested (so every leaf has a unique container); ok=false means the
// caller must fall back to parsing.
func (e *Engine) joinFastCandidates(es *execEnv, jf *compile.JoinFastPlan, candidates region.Set, res *Result) (region.Set, bool, error) {
	cands := candidates.Regions()
	for i := 1; i < len(cands); i++ {
		if cands[i-1].End > cands[i].Start {
			return region.Empty, false, nil // nested or overlapping candidates
		}
	}
	content := e.in.Document().Content()
	groups := func(ch algebra.Expr) (map[int]map[string]bool, error) {
		leaves, err := e.evalExpr(es, ch, res)
		if err != nil {
			return nil, err
		}
		out := make(map[int]map[string]bool)
		for _, leaf := range leaves.Regions() {
			i := sort.Search(len(cands), func(i int) bool { return cands[i].Start > leaf.Start }) - 1
			if i < 0 || !cands[i].Includes(leaf) {
				continue
			}
			if out[i] == nil {
				out[i] = make(map[string]bool)
			}
			out[i][content[leaf.Start:leaf.End]] = true
		}
		return out, nil
	}
	lGroups, err := groups(jf.L.Expr())
	if err != nil {
		return region.Empty, false, err
	}
	rGroups, err := groups(jf.R.Expr())
	if err != nil {
		return region.Empty, false, err
	}
	var matched []region.Region
	for i, ls := range lGroups {
		rs := rGroups[i]
		for v := range ls {
			if rs[v] {
				matched = append(matched, cands[i])
				break
			}
		}
	}
	return region.FromRegions(matched), true, nil
}

// executeMulti runs multi-variable queries with a nested-loop join over
// per-variable candidates; comparisons are evaluated in the database
// (Section 5.2: joins are beyond the indexing engine).
func (e *Engine) executeMulti(es *execEnv, q *xsql.Query, plan *compile.Plan, res *Result) error {
	type binding struct {
		regions []region.Region
		objects []db.Value
	}
	bindings := make([]binding, len(plan.Vars))
	for i := range plan.Vars {
		if err := es.poll(); err != nil {
			return err
		}
		vp := &plan.Vars[i]
		var cands region.Set
		if vp.Candidates != nil {
			var err error
			cands, err = e.evalExpr(es, vp.Candidates, res)
			if err != nil {
				return fmt.Errorf("engine: candidates for %s: %w", vp.Var, err)
			}
		} else {
			res.Stats.FullScan = true
			if err := es.chargeBytes(e.in.Document().Len()); err != nil {
				return err
			}
			tree, err := e.cat.Grammar.Parse(e.in.Document())
			if err != nil {
				return err
			}
			res.Stats.ParsedBytes += e.in.Document().Len()
			cands = grammar.ExtractRegions(tree, vp.NT)[vp.NT]
		}
		res.Stats.Candidates += cands.Len()
		b := binding{regions: cands.Regions()}
		for _, r := range cands.Regions() {
			obj, err := e.parseRegion(es, vp.NT, r, &res.Stats)
			if err != nil {
				return err
			}
			b.objects = append(b.objects, obj)
		}
		bindings[i] = b
	}
	// Nested-loop join with residual evaluation. Each assignment binds
	// every variable, then the WHERE clause decides; the select
	// variable's distinct matches form the result.
	selVar := q.Select.Var
	seen := make(map[region.Region]bool)
	type match struct {
		r   region.Region
		obj db.Value
	}
	var matches []match
	env := make(xsql.Env, len(plan.Vars))
	idx := make([]int, len(plan.Vars))
	var loop func(i int) error
	loop = func(i int) error {
		if i < len(plan.Vars) {
			for k := range bindings[i].objects {
				idx[i] = k
				env[plan.Vars[i].Var] = bindings[i].objects[k]
				if err := loop(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		// Poll per assignment: the cross product can dwarf any single
		// binding, so the join itself must be cancelable.
		if err := es.poll(); err != nil {
			return err
		}
		ok, err := xsql.EvalCond(env, q.Where)
		if err != nil || !ok {
			return err
		}
		for j := range plan.Vars {
			if plan.Vars[j].Var != selVar {
				continue
			}
			r := bindings[j].regions[idx[j]]
			if seen[r] {
				continue
			}
			seen[r] = true
			matches = append(matches, match{r: r, obj: bindings[j].objects[idx[j]]})
		}
		return nil
	}
	if err := loop(0); err != nil {
		return err
	}
	// A LIMIT on a join truncates in document order — the matches are
	// re-sorted first, so the limited answer is a prefix of the full sorted
	// answer regardless of nested-loop enumeration order. Without a limit,
	// emission keeps the historical loop order.
	if q.Limit > 0 {
		sort.Slice(matches, func(i, j int) bool { return matches[i].r.Before(matches[j].r) })
	}
	em := newEmitter(q, plan, res)
	for _, m := range matches {
		if em.full() {
			break
		}
		em.emit(m.r, m.obj)
	}
	em.finish()
	return nil
}

// parseRegion parses one candidate region as the non-terminal and builds
// its database value, updating statistics.
func (e *Engine) parseRegion(es *execEnv, nt string, r region.Region, st *Stats) (db.Value, error) {
	if err := es.chargeBytes(r.Len()); err != nil {
		return nil, err
	}
	v, err := e.parseValue(es, nt, r)
	if err != nil {
		return nil, err
	}
	st.Parsed++
	st.ParsedBytes += r.Len()
	return v, nil
}

// parseValue parses one candidate region into its database value, through
// the shared parse table when shared execution is on. The caller has
// already polled cancellation and charged its byte budget. Shared values
// are immutable by the same contract as cached region sets: every consumer
// (filtering, projection, result conversion) only reads them.
func (e *Engine) parseValue(es *execEnv, nt string, r region.Region) (db.Value, error) {
	if e.shared == nil {
		return e.parseValueRaw(nt, r)
	}
	return e.shared.parse(es, nt, r)
}

// parseValueRaw is the unshared parse: grammar parse plus value build.
func (e *Engine) parseValueRaw(nt string, r region.Region) (db.Value, error) {
	doc := e.in.Document()
	node, err := e.cat.Grammar.ParseAs(doc, nt, r.Start, r.End)
	if err != nil {
		return nil, fmt.Errorf("engine: parsing candidate %v as %s: %w", r, nt, err)
	}
	return grammar.BuildValue(node, doc.Content()), nil
}
