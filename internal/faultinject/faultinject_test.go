package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// Failpoint configuration is process-global, so none of these tests may run
// in parallel; each resets on exit.

func TestDisabledIsNoop(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("Active() = true with no configuration")
	}
	for _, name := range Catalog() {
		if err := Hit(name); err != nil {
			t.Fatalf("Hit(%s) with injection disabled: %v", name, err)
		}
	}
	if got := String(); got != "<disabled>" {
		t.Fatalf("String() = %q, want <disabled>", got)
	}
}

func TestErrorKind(t *testing.T) {
	defer Reset()
	if err := Configure("persist.load=error"); err != nil {
		t.Fatal(err)
	}
	err := Hit(PersistLoad)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit(persist.load) = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), PersistLoad) {
		t.Fatalf("error %q does not name the failpoint", err)
	}
	// Unconfigured failpoints stay silent even while injection is active.
	if err := Hit(PersistSave); err != nil {
		t.Fatalf("Hit(persist.save) unconfigured: %v", err)
	}
}

func TestPanicKind(t *testing.T) {
	defer Reset()
	if err := Configure("engine.phase2=panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		p := recover()
		ip, ok := p.(InjectedPanic)
		if !ok || ip.Name != Phase2 {
			t.Fatalf("recovered %v, want InjectedPanic{engine.phase2}", p)
		}
	}()
	Hit(Phase2)
	t.Fatal("Hit did not panic")
}

func TestDelayKind(t *testing.T) {
	defer Reset()
	if err := Configure("index.build=delay:30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit(IndexBuild); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delayed hit returned after %v, want >= 30ms", d)
	}
}

func TestNthHitTrigger(t *testing.T) {
	defer Reset()
	if err := Configure("resultcache.put=error@3"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Hit(ResultCachePut)
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err = %v, want firing only on hit 3", i, err)
		}
	}
	if got := Hits(ResultCachePut); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
}

func TestFromHitTrigger(t *testing.T) {
	defer Reset()
	if err := Configure("plancache.get=error@2+"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		err := Hit(PlanCacheGet)
		if (i >= 2) != (err != nil) {
			t.Fatalf("hit %d: err = %v, want firing from hit 2 on", i, err)
		}
	}
}

func TestProbabilityTriggerIsSeeded(t *testing.T) {
	defer Reset()
	run := func() []bool {
		if err := Configure("corpus.file=error%0.5/42"); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 20)
		for i := range out {
			out[i] = Hit(CorpusFile) != nil
		}
		Reset()
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identically seeded runs", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("probability 0.5 fired %d/%d times; trigger not probabilistic", fired, len(a))
	}
}

func TestConfigureMultipleDirectives(t *testing.T) {
	defer Reset()
	if err := Configure("persist.save=error, engine.phase2=delay:1ms@2"); err != nil {
		t.Fatal(err)
	}
	if err := Hit(PersistSave); !errors.Is(err, ErrInjected) {
		t.Fatalf("persist.save: %v", err)
	}
	s := String()
	for _, want := range []string{"persist.save=error", "engine.phase2=delay:1ms@2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func TestConfigureRejectsBadSpecs(t *testing.T) {
	defer Reset()
	for _, spec := range []string{
		"",                        // empty
		"noequals",                // missing kind
		"a=explode",               // unknown kind
		"a=delay:xyz",             // bad duration
		"a=error@0",               // zero trigger
		"a=error@x",               // non-numeric trigger
		"a=error%2/7",             // probability out of range
		"a=error%0.5",             // missing seed
		"persist.load=error,,b=?", // bad tail directive
	} {
		if err := Configure(spec); err == nil {
			t.Errorf("Configure(%q) accepted a bad spec", spec)
			Reset()
		}
	}
	if Active() {
		t.Fatal("failed Configure left injection active")
	}
}

func TestHitNInstanceSelector(t *testing.T) {
	defer Reset()
	// Only instance 2 is configured: other instances and plain Hit stay
	// silent, and the instance-scoped rule counts its own hits.
	if err := Configure("serve.shard#2=error"); err != nil {
		t.Fatal(err)
	}
	if err := HitN(ServeShard, 0); err != nil {
		t.Fatalf("HitN(serve.shard, 0): %v", err)
	}
	if err := HitN(ServeShard, 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("HitN(serve.shard, 2) = %v, want ErrInjected", err)
	}
	if err := Hit(ServeShard); err != nil {
		t.Fatalf("Hit(serve.shard) with only #2 configured: %v", err)
	}
	if got := Hits("serve.shard#2"); got != 1 {
		t.Fatalf("Hits(serve.shard#2) = %d, want 1", got)
	}
}

func TestHitNPlainRuleCoversAllInstances(t *testing.T) {
	defer Reset()
	if err := Configure("serve.replica=error"); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		if err := HitN(ServeReplica, n); !errors.Is(err, ErrInjected) {
			t.Fatalf("HitN(serve.replica, %d) = %v, want ErrInjected", n, err)
		}
	}
	// n < 0 skips the instance selector entirely.
	if err := HitN(ServeHedge, -1); err != nil {
		t.Fatalf("HitN(serve.hedge, -1) unconfigured: %v", err)
	}
	if got := Hits(ServeReplica); got != 3 {
		t.Fatalf("Hits(serve.replica) = %d, want 3", got)
	}
}

func TestCatalogIsStable(t *testing.T) {
	names := Catalog()
	if len(names) != 15 {
		t.Fatalf("Catalog has %d names, want 15", len(names))
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate catalog name %s", n)
		}
		seen[n] = true
	}
}
