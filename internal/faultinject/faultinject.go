// Package faultinject provides deterministic, seedable failpoints for the
// fault-matrix test suite. Production code calls Hit(name) at the places
// where real systems fail — index builds, persistence, caches, worker pools
// — and the package decides whether that call errors, panics, or stalls.
//
// Failpoints are off by default and cost one atomic load when disabled, so
// shipping the hooks in production paths is free. Tests enable them with
// Configure and must Reset afterwards; configuration is process-global, so
// tests that configure failpoints must not run in parallel with each other.
//
// A configuration is a comma-separated list of directives:
//
//	name=kind[:arg][@trigger]
//
// where kind is one of
//
//	error        Hit returns an error wrapping ErrInjected
//	panic        Hit panics with an InjectedPanic value
//	delay:DUR    Hit sleeps for DUR (e.g. delay:20ms), then returns nil
//
// and the optional trigger selects which hits fire:
//
//	@N      only the N-th hit of this failpoint (1-based)
//	@N+     every hit from the N-th on
//	%P/S    each hit independently with probability P from a PRNG seeded
//	        with S (e.g. %0.3/42) — seeded, so runs are reproducible
//
// With no trigger, every hit fires. Examples:
//
//	faultinject.Configure("persist.load=error")
//	faultinject.Configure("engine.phase2=panic@2, index.build=delay:50ms")
//	faultinject.Configure("resultcache.put=error%0.5/7")
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is wrapped by every error a failpoint returns, so tests can
// assert with errors.Is that a failure came from injection and production
// code can never confuse it with a real error.
var ErrInjected = errors.New("faultinject: injected fault")

// InjectedPanic is the value a panic-kind failpoint panics with; recovery
// boundaries may inspect it, and its presence in a recovered value
// distinguishes injected panics from real bugs in tests.
type InjectedPanic struct{ Name string }

func (p InjectedPanic) String() string { return "injected panic at " + p.Name }

// The failpoint catalog. Every Hit call site uses one of these names; the
// fault-matrix suite iterates Catalog to prove each is exercised.
const (
	IndexBuild     = "index.build"     // grammar.BuildInstance: parse + region extraction
	PersistSave    = "persist.save"    // index.Instance.Save
	PersistLoad    = "persist.load"    // index.Load
	PlanCacheGet   = "plancache.get"   // compile.PlanCache.Get (fires = forced miss)
	PlanCachePut   = "plancache.put"   // compile.PlanCache.Put (fires = entry dropped)
	ResultCacheGet = "resultcache.get" // engine.ResultCache.Get (fires = forced miss)
	ResultCachePut = "resultcache.put" // engine.ResultCache.Put (fires = entry dropped)
	Phase2         = "engine.phase2"   // per-candidate work in the phase-2 pool
	CorpusFile     = "corpus.file"     // per-file evaluation in Corpus.Execute*
	ServeShard     = "serve.shard"     // primary-replica attempt in serve.Server.Execute
	ServePublish   = "serve.publish"   // per-shard corpus build in serve.Server.Publish
	ServeReplica   = "serve.replica"   // failover attempt on a secondary replica
	ServeHedge     = "serve.hedge"     // hedged attempt fired by the tail-latency timer
	EngineCSE      = "engine.cse"      // cross-query CSE join (fires = bypass sharing, solo eval)
	ScanMPM        = "scan.mpm"        // batched multi-pattern scan (fires = batch falls back to probes)
)

// Catalog lists every failpoint name in stable order.
func Catalog() []string {
	return []string{
		IndexBuild, PersistSave, PersistLoad,
		PlanCacheGet, PlanCachePut, ResultCacheGet, ResultCachePut,
		Phase2, CorpusFile, ServeShard, ServePublish,
		ServeReplica, ServeHedge,
		EngineCSE, ScanMPM,
	}
}

type kind int

const (
	kindError kind = iota
	kindPanic
	kindDelay
)

// rule is one configured failpoint.
type rule struct {
	kind  kind
	delay time.Duration

	// trigger selection: exactly-N, from-N-on, or seeded probability.
	at   uint64 // fire only on hit at (0 = unused)
	from uint64 // fire on every hit >= from (0 = unused)
	prob float64

	hits atomic.Uint64

	rngMu sync.Mutex
	rng   *rand.Rand // guarded by rngMu; nil unless prob > 0
}

var (
	active atomic.Bool // fast gate: false means Hit is a no-op

	mu    sync.Mutex
	rules map[string]*rule // guarded by mu
)

// Configure replaces the failpoint configuration with the parsed spec and
// activates injection. An empty spec is an error; use Reset to disable.
func Configure(spec string) error {
	parsed := make(map[string]*rule)
	any := false
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, r, err := parseDirective(part)
		if err != nil {
			return err
		}
		parsed[name] = r
		any = true
	}
	if !any {
		return fmt.Errorf("faultinject: empty configuration %q", spec)
	}
	mu.Lock()
	rules = parsed
	mu.Unlock()
	active.Store(true)
	return nil
}

// parseDirective parses one "name=kind[:arg][@trigger]" directive.
func parseDirective(s string) (string, *rule, error) {
	name, rest, ok := strings.Cut(s, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" || rest == "" {
		return "", nil, fmt.Errorf("faultinject: bad directive %q (want name=kind[:arg][@trigger])", s)
	}
	r := &rule{}

	// Split off the trigger suffix: @N, @N+ or %P/S.
	body := rest
	if i := strings.IndexAny(rest, "@%"); i >= 0 {
		body = rest[:i]
		trig := rest[i:]
		switch trig[0] {
		case '@':
			numeric := strings.TrimSuffix(trig[1:], "+")
			n, err := strconv.ParseUint(numeric, 10, 64)
			if err != nil || n == 0 {
				return "", nil, fmt.Errorf("faultinject: bad trigger %q in %q", trig, s)
			}
			if strings.HasSuffix(trig, "+") {
				r.from = n
			} else {
				r.at = n
			}
		case '%':
			probStr, seedStr, ok := strings.Cut(trig[1:], "/")
			if !ok {
				return "", nil, fmt.Errorf("faultinject: bad probability trigger %q in %q (want %%P/SEED)", trig, s)
			}
			p, err := strconv.ParseFloat(probStr, 64)
			if err != nil || p <= 0 || p > 1 {
				return "", nil, fmt.Errorf("faultinject: bad probability %q in %q", probStr, s)
			}
			seed, err := strconv.ParseInt(seedStr, 10, 64)
			if err != nil {
				return "", nil, fmt.Errorf("faultinject: bad seed %q in %q", seedStr, s)
			}
			r.prob = p
			r.rngMu.Lock()
			r.rng = rand.New(rand.NewSource(seed))
			r.rngMu.Unlock()
		}
	}

	kindStr, arg, _ := strings.Cut(strings.TrimSpace(body), ":")
	switch kindStr {
	case "error":
		r.kind = kindError
	case "panic":
		r.kind = kindPanic
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return "", nil, fmt.Errorf("faultinject: bad delay %q in %q", arg, s)
		}
		r.kind = kindDelay
		r.delay = d
	default:
		return "", nil, fmt.Errorf("faultinject: unknown kind %q in %q (want error, panic or delay:DUR)", kindStr, s)
	}
	return name, r, nil
}

// Reset disables every failpoint and clears the configuration.
func Reset() {
	active.Store(false)
	mu.Lock()
	rules = nil
	mu.Unlock()
}

// Active reports whether any failpoint configuration is installed.
func Active() bool { return active.Load() }

// Hits reports how many times the named failpoint has been reached since it
// was configured (fired or not), for test observability.
func Hits(name string) uint64 {
	mu.Lock()
	r := rules[name]
	mu.Unlock()
	if r == nil {
		return 0
	}
	return r.hits.Load()
}

// Hit is the instrumentation point: production code calls it where a real
// failure could occur. When the named failpoint is configured and its
// trigger matches, Hit returns an error wrapping ErrInjected, panics with an
// InjectedPanic, or sleeps, per the configured kind. Disabled, it is a
// single atomic load.
func Hit(name string) error {
	if !active.Load() {
		return nil
	}
	return hitSlow(name)
}

// HitN is Hit with an instance selector: it evaluates both the plain
// failpoint name and the instance-scoped "name#n" directive, so a test can
// target one member of a replicated set ("serve.shard#2=delay:40ms" stalls
// only shard 2's primary attempts) while "serve.shard=..." still covers all
// of them. The plain rule is consulted first; n < 0 skips the selector.
func HitN(name string, n int) error {
	if !active.Load() {
		return nil
	}
	if err := hitSlow(name); err != nil {
		return err
	}
	if n < 0 {
		return nil
	}
	return hitSlow(name + "#" + strconv.Itoa(n))
}

func hitSlow(name string) error {
	mu.Lock()
	r := rules[name]
	mu.Unlock()
	if r == nil {
		return nil
	}
	n := r.hits.Add(1)
	if !r.fires(n) {
		return nil
	}
	switch r.kind {
	case kindPanic:
		panic(InjectedPanic{Name: name})
	case kindDelay:
		time.Sleep(r.delay)
		return nil
	default:
		return fmt.Errorf("%s: %w", name, ErrInjected)
	}
}

// fires decides whether the n-th hit triggers the rule.
func (r *rule) fires(n uint64) bool {
	switch {
	case r.at > 0:
		return n == r.at
	case r.from > 0:
		return n >= r.from
	case r.prob > 0:
		r.rngMu.Lock()
		v := r.rng.Float64()
		r.rngMu.Unlock()
		return v < r.prob
	default:
		return true
	}
}

// String renders the installed configuration (for error messages and the
// faults CI job log), one directive per failpoint in name order.
func String() string {
	mu.Lock()
	defer mu.Unlock()
	if len(rules) == 0 {
		return "<disabled>"
	}
	names := make([]string, 0, len(rules))
	for n := range rules {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, n+"="+rules[n].describe())
	}
	return strings.Join(parts, ",")
}

func (r *rule) describe() string {
	var b strings.Builder
	switch r.kind {
	case kindPanic:
		b.WriteString("panic")
	case kindDelay:
		fmt.Fprintf(&b, "delay:%s", r.delay)
	default:
		b.WriteString("error")
	}
	switch {
	case r.at > 0:
		fmt.Fprintf(&b, "@%d", r.at)
	case r.from > 0:
		fmt.Fprintf(&b, "@%d+", r.from)
	case r.prob > 0:
		fmt.Fprintf(&b, "%%%g", r.prob)
	}
	return b.String()
}
